lib/faults/fault.ml: Array Dfm_cellmodel Dfm_netlist List Printf

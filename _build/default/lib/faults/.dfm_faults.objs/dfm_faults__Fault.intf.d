lib/faults/fault.mli: Dfm_cellmodel Dfm_netlist

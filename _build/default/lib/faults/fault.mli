(** Gate-level fault models for DFM-predicted systematic defects.

    Following Section II of the paper, violations of DFM guidelines are
    translated into likely shorts and opens inside and outside cells, and
    those into stuck-at faults, transition faults, bridging faults and
    cell-aware faults modeled by UDFM.  A fault is *internal* when it is
    inside a standard cell (UDFM) and *external* otherwise.

    Detection semantics (used consistently by the fault simulator and the
    SAT ATPG):
    - stuck-at: classic single-fault D-propagation to an observable point;
    - transition: enhanced-scan two-frame — the site must be controllable to
      the initial value in frame 1, and the corresponding stuck-at must be
      detectable in frame 2;
    - bridging: wired-AND / wired-OR of the two bridged nets, both nets take
      the resolved value, difference must reach an observable point;
    - internal (UDFM): the cell's inputs must match one of the activation
      patterns and the resulting output flip must reach an observable point.
      For flip-flop internal faults the activation is over the D net and the
      flip is observed directly on the scan path. *)

type polarity = Sa0 | Sa1

type transition = Slow_to_rise | Slow_to_fall

type bridge_kind = Wired_and | Wired_or

type site_loc =
  | On_net of int
      (** on a net, at its driver: affects every sink *)
  | On_pin of int * int
      (** (gate, input-pin index): affects only that gate input *)

type kind =
  | Stuck of site_loc * polarity
  | Transition of site_loc * transition
  | Bridge of int * int * bridge_kind  (** two distinct net ids *)
  | Internal of int * int
      (** (gate id, UDFM entry index into [Udfm.for_cell]) *)

type origin = {
  category : Dfm_cellmodel.Defect.category;
  guideline_index : int;
}
(** The DFM guideline whose violation predicted this fault. *)

type t = {
  fault_id : int;  (** dense within one fault list *)
  kind : kind;
  origin : origin;
}

val is_internal : t -> bool

val corresponding_gates : Dfm_netlist.Netlist.t -> t -> int list
(** The gates that correspond to the fault in the sense of Section II: the
    single host gate of an internal fault; driver and sink gates of the
    net(s) an external fault sits on. *)

val site_net : Dfm_netlist.Netlist.t -> kind -> int
(** The primary net a fault lives on (output net for internal faults, the
    first net for bridges); used for layout-based reporting. *)

val describe : Dfm_netlist.Netlist.t -> t -> string

val same_kind : kind -> kind -> bool

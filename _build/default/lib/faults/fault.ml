module N = Dfm_netlist.Netlist

type polarity = Sa0 | Sa1

type transition = Slow_to_rise | Slow_to_fall

type bridge_kind = Wired_and | Wired_or

type site_loc = On_net of int | On_pin of int * int

type kind =
  | Stuck of site_loc * polarity
  | Transition of site_loc * transition
  | Bridge of int * int * bridge_kind
  | Internal of int * int

type origin = {
  category : Dfm_cellmodel.Defect.category;
  guideline_index : int;
}

type t = { fault_id : int; kind : kind; origin : origin }

let is_internal f = match f.kind with Internal _ -> true | Stuck _ | Transition _ | Bridge _ -> false

let gates_of_net t n =
  let nn = N.net t n in
  let sinks = List.map fst nn.N.sinks in
  let d = match nn.N.driver with N.Gate_out g -> [ g ] | N.Pi _ | N.Const _ -> [] in
  d @ sinks

let gates_of_loc t = function
  | On_net n -> gates_of_net t n
  | On_pin (g, pin) -> (
      let net = (N.gate t g).N.fanins.(pin) in
      g :: (match (N.net t net).N.driver with N.Gate_out d -> [ d ] | N.Pi _ | N.Const _ -> []))

let corresponding_gates t f =
  let gs =
    match f.kind with
    | Internal (g, _) -> [ g ]
    | Stuck (loc, _) | Transition (loc, _) -> gates_of_loc t loc
    | Bridge (n1, n2, _) -> gates_of_net t n1 @ gates_of_net t n2
  in
  List.sort_uniq compare gs

let site_net t = function
  | Stuck (On_net n, _) | Transition (On_net n, _) -> n
  | Stuck (On_pin (g, pin), _) | Transition (On_pin (g, pin), _) -> (N.gate t g).N.fanins.(pin)
  | Bridge (n, _, _) -> n
  | Internal (g, _) -> (N.gate t g).N.fanout

let loc_to_string t = function
  | On_net n -> Printf.sprintf "net %s" (N.net t n).N.net_name
  | On_pin (g, pin) ->
      let gg = N.gate t g in
      Printf.sprintf "%s/%s" gg.N.gate_name gg.N.cell.Dfm_netlist.Cell.inputs.(pin)

let describe t f =
  let body =
    match f.kind with
    | Stuck (loc, p) ->
        Printf.sprintf "SA%d %s" (match p with Sa0 -> 0 | Sa1 -> 1) (loc_to_string t loc)
    | Transition (loc, tr) ->
        Printf.sprintf "%s %s"
          (match tr with Slow_to_rise -> "STR" | Slow_to_fall -> "STF")
          (loc_to_string t loc)
    | Bridge (n1, n2, k) ->
        Printf.sprintf "BR-%s %s~%s"
          (match k with Wired_and -> "AND" | Wired_or -> "OR")
          (N.net t n1).N.net_name (N.net t n2).N.net_name
    | Internal (g, e) ->
        let gg = N.gate t g in
        Printf.sprintf "UDFM %s(%s)#%d" gg.N.gate_name gg.N.cell.Dfm_netlist.Cell.name e
  in
  Printf.sprintf "[%d] %s (%s G%d)" f.fault_id body
    (Dfm_cellmodel.Defect.category_to_string f.origin.category)
    f.origin.guideline_index

let same_kind a b = a = b

type t = {
  name : string;
  inputs : string array;
  output : string;
  func : Dfm_logic.Truthtable.t;
  area : float;
  width : float;
  height : float;
  intrinsic_delay : float;
  drive_res : float;
  input_cap : float;
  leakage : float;
  transistors : int;
  is_seq : bool;
}

let arity c = Array.length c.inputs

let make ~name ~inputs ?(output = "Y") ~func ~area ~width ?(height = 5.0)
    ~intrinsic_delay ~drive_res ~input_cap ~leakage ~transistors
    ?(is_seq = false) () =
  let inputs = Array.of_list inputs in
  if Dfm_logic.Truthtable.arity func <> Array.length inputs then
    invalid_arg (Printf.sprintf "Cell.make %s: function arity mismatch" name);
  {
    name;
    inputs;
    output;
    func;
    area;
    width;
    height;
    intrinsic_delay;
    drive_res;
    input_cap;
    leakage;
    transistors;
    is_seq;
  }

let pp ppf c =
  Format.fprintf ppf "%s(%s) area=%.1f tr=%d" c.name
    (String.concat "," (Array.to_list c.inputs))
    c.area c.transistors

lib/netlist/cell.mli: Dfm_logic Format

lib/netlist/netlist_io.ml: Array Buffer Cell Format Hashtbl List Netlist Printf String

lib/netlist/verilog.mli: Format Library Netlist

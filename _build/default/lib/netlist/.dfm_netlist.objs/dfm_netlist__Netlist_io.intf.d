lib/netlist/netlist_io.mli: Format Library Netlist

lib/netlist/equiv.mli: Dfm_logic Netlist

lib/netlist/netlist.mli: Cell Format Library

lib/netlist/cell.ml: Array Dfm_logic Format Printf String

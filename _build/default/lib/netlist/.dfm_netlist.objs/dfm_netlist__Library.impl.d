lib/netlist/library.ml: Array Cell Dfm_logic Float Hashtbl List Printf

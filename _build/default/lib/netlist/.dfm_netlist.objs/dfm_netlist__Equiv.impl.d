lib/netlist/equiv.ml: Array Cell Dfm_logic Hashtbl List Netlist

lib/netlist/verilog.ml: Array Buffer Bytes Cell Format Hashtbl Library List Netlist Printf String

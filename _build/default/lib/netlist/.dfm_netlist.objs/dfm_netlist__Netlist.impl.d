lib/netlist/netlist.ml: Array Cell Format Hashtbl Int Library List Printf Queue Set

lib/netlist/library.mli: Cell

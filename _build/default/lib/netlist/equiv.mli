(** BDD-based combinational equivalence checking of two netlists.

    Two netlists are compared on the full-scan combinational view: the
    controllable points ({!Netlist.input_nets}) are matched by label and the
    observable points ({!Netlist.observe_nets}) must compute identical
    functions.  This is the independent oracle used in tests to confirm that
    technology mapping and the resynthesis procedure preserve circuit
    function (the SAT miter in [dfm_atpg] is the production check). *)

type verdict =
  | Equivalent
  | Different of string  (** label of a mismatching observable point *)
  | Interface_mismatch of string

val check : Netlist.t -> Netlist.t -> verdict

val output_function : Netlist.t -> (string * Dfm_logic.Truthtable.t) list
(** Truth tables of all observable points of a netlist with at most 6
    controllable points; raises [Invalid_argument] above that. *)

module Builder = Netlist.Builder

exception Parse_error of int * string

(* ------------------------------------------------------------------ *)
(* Writing                                                              *)
(* ------------------------------------------------------------------ *)

let legal_ident s =
  let ok_first c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let ok c = ok_first c || (c >= '0' && c <= '9') || c = '$' in
  s <> ""
  && ok_first s.[0]
  && String.for_all ok s

let sanitize used s =
  let base =
    if legal_ident s then s
    else begin
      let b = Bytes.of_string s in
      Bytes.iteri
        (fun i c ->
          let ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' in
          if not ok then Bytes.set b i '_')
        b;
      let s' = Bytes.to_string b in
      if s' = "" || not (legal_ident s') then "n_" ^ s' else s'
    end
  in
  let rec unique candidate k =
    if Hashtbl.mem used candidate then unique (Printf.sprintf "%s_%d" base k) (k + 1)
    else begin
      Hashtbl.add used candidate ();
      candidate
    end
  in
  unique base 0

let write ppf (t : Netlist.t) =
  let used = Hashtbl.create 256 in
  List.iter (fun k -> Hashtbl.add used k ())
    [ "module"; "endmodule"; "input"; "output"; "wire"; "assign" ];
  (* stable names for nets, ports, instances *)
  let net_name = Array.make (Netlist.num_nets t) "" in
  Array.iter
    (fun (nn : Netlist.net) ->
      net_name.(nn.Netlist.net_id) <-
        (match nn.Netlist.driver with
        | Netlist.Const false -> "1'b0"
        | Netlist.Const true -> "1'b1"
        | Netlist.Pi _ | Netlist.Gate_out _ -> sanitize used nn.Netlist.net_name))
    t.Netlist.nets;
  let pi_port k = net_name.(snd t.Netlist.pis.(k)) in
  let po_ports = Array.map (fun (p, _) -> sanitize used p) t.Netlist.pos in
  let inst_names =
    Array.map (fun (g : Netlist.gate) -> sanitize used g.Netlist.gate_name) t.Netlist.gates
  in
  let mname = if legal_ident t.Netlist.name then t.Netlist.name else "top" in
  let ports =
    Array.to_list (Array.mapi (fun k _ -> pi_port k) t.Netlist.pis)
    @ Array.to_list po_ports
  in
  Format.fprintf ppf "module %s (%s);@." mname (String.concat ", " ports);
  Array.iteri (fun k _ -> Format.fprintf ppf "  input %s;@." (pi_port k)) t.Netlist.pis;
  Array.iter (fun p -> Format.fprintf ppf "  output %s;@." p) po_ports;
  Array.iter
    (fun (nn : Netlist.net) ->
      match nn.Netlist.driver with
      | Netlist.Gate_out _ -> Format.fprintf ppf "  wire %s;@." net_name.(nn.Netlist.net_id)
      | Netlist.Pi _ | Netlist.Const _ -> ())
    t.Netlist.nets;
  Array.iteri
    (fun gi (g : Netlist.gate) ->
      let c = g.Netlist.cell in
      let conns =
        Array.to_list
          (Array.mapi
             (fun pin fn -> Printf.sprintf ".%s(%s)" c.Cell.inputs.(pin) net_name.(fn))
             g.Netlist.fanins)
        @ [ Printf.sprintf ".%s(%s)" c.Cell.output net_name.(g.Netlist.fanout) ]
      in
      Format.fprintf ppf "  %s %s (%s);@." c.Cell.name inst_names.(gi) (String.concat ", " conns))
    t.Netlist.gates;
  Array.iteri
    (fun k (_, nid) -> Format.fprintf ppf "  assign %s = %s;@." po_ports.(k) net_name.(nid))
    t.Netlist.pos;
  Format.fprintf ppf "endmodule@."

let to_string t =
  let buf = Buffer.create 8192 in
  let ppf = Format.formatter_of_buffer buf in
  write ppf t;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reading                                                              *)
(* ------------------------------------------------------------------ *)

type token = Ident of string | Punct of char | Const of bool

let tokenize text =
  let tokens = ref [] in
  let line = ref 1 in
  let n = String.length text in
  let i = ref 0 in
  let fail msg = raise (Parse_error (!line, msg)) in
  while !i < n do
    let c = text.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '/' then begin
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i + 1 < n do
        if text.[!i] = '\n' then incr line;
        if text.[!i] = '*' && text.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then fail "unterminated comment"
    end
    else if c = '1' && !i + 3 < n && String.sub text !i 3 = "1'b" then begin
      let v = text.[!i + 3] in
      if v <> '0' && v <> '1' then fail "bad constant literal";
      tokens := (!line, Const (v = '1')) :: !tokens;
      i := !i + 4
    end
    else if
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '\\'
    then begin
      (* escaped identifiers: \foo..<space> *)
      let start = !i + if c = '\\' then 1 else 0 in
      let j = ref start in
      if c = '\\' then begin
        while !j < n && text.[!j] <> ' ' && text.[!j] <> '\n' do
          incr j
        done
      end
      else
        while
          !j < n
          && ((text.[!j] >= 'a' && text.[!j] <= 'z')
             || (text.[!j] >= 'A' && text.[!j] <= 'Z')
             || (text.[!j] >= '0' && text.[!j] <= '9')
             || text.[!j] = '_' || text.[!j] = '$')
        do
          incr j
        done;
      tokens := (!line, Ident (String.sub text start (!j - start))) :: !tokens;
      i := !j + if c = '\\' then 1 else 0
    end
    else if String.contains "(),;.=" c then begin
      tokens := (!line, Punct c) :: !tokens;
      incr i
    end
    else fail (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !tokens

type instance = {
  i_line : int;
  i_cell : string;
  i_name : string;
  i_conns : (string * [ `Net of string | `Const of bool ]) list;
}

let read ~library text =
  let tokens = ref (tokenize text) in
  let fail line msg = raise (Parse_error (line, msg)) in
  let peek () = match !tokens with [] -> None | t :: _ -> Some t in
  let next () =
    match !tokens with
    | [] -> fail 0 "unexpected end of file"
    | t :: rest ->
        tokens := rest;
        t
  in
  let expect_punct c =
    match next () with
    | _, Punct c' when c' = c -> ()
    | line, _ -> fail line (Printf.sprintf "expected %C" c)
  in
  let expect_ident () =
    match next () with
    | _, Ident s -> s
    | line, _ -> fail line "expected identifier"
  in
  (* header *)
  (match next () with
  | _, Ident "module" -> ()
  | line, _ -> fail line "expected module");
  let _module_name = expect_ident () in
  expect_punct '(';
  let rec port_list acc =
    match next () with
    | _, Punct ')' -> List.rev acc
    | _, Ident p -> (
        match peek () with
        | Some (_, Punct ',') ->
            ignore (next ());
            port_list (p :: acc)
        | _ -> port_list (p :: acc))
    | line, _ -> fail line "bad port list"
  in
  let _ports = port_list [] in
  expect_punct ';';
  (* body *)
  let inputs = ref [] and outputs = ref [] and wires = ref [] in
  let instances = ref [] and assigns = ref [] in
  let rec decl_list acc =
    let name = expect_ident () in
    match next () with
    | _, Punct ',' -> decl_list (name :: acc)
    | _, Punct ';' -> List.rev (name :: acc)
    | line, _ -> fail line "bad declaration list"
  in
  let rec body () =
    match next () with
    | _, Ident "endmodule" -> ()
    | _, Ident "input" ->
        inputs := !inputs @ decl_list [];
        body ()
    | _, Ident "output" ->
        outputs := !outputs @ decl_list [];
        body ()
    | _, Ident "wire" ->
        wires := !wires @ decl_list [];
        body ()
    | line, Ident "assign" ->
        let lhs = expect_ident () in
        (match next () with
        | _, Punct '=' -> ()
        | l, _ -> fail l "expected =");
        let rhs =
          match next () with
          | _, Ident r -> `Net r
          | _, Const b -> `Const b
          | l, _ -> fail l "expected net or constant"
        in
        expect_punct ';';
        assigns := (line, lhs, rhs) :: !assigns;
        body ()
    | line, Ident cell ->
        let inst = expect_ident () in
        expect_punct '(';
        let rec conns acc =
          match next () with
          | _, Punct ')' -> List.rev acc
          | _, Punct ',' -> conns acc
          | _, Punct '.' ->
              let pin = expect_ident () in
              expect_punct '(';
              let target =
                match next () with
                | _, Ident nm -> `Net nm
                | _, Const b -> `Const b
                | l, _ -> fail l "expected net or constant"
              in
              expect_punct ')';
              conns ((pin, target) :: acc)
          | l, _ -> fail l "bad connection list"
        in
        let cs = conns [] in
        expect_punct ';';
        instances := { i_line = line; i_cell = cell; i_name = inst; i_conns = cs } :: !instances;
        body ()
    | line, _ -> fail line "unexpected token in module body"
  in
  body ();
  let instances = List.rev !instances in
  (* Resolve assign aliases: canonical name per net name. *)
  let alias = Hashtbl.create 16 in
  List.iter
    (fun (line, lhs, rhs) ->
      match rhs with
      | `Net r ->
          if Hashtbl.mem alias lhs then fail line ("multiple assigns to " ^ lhs);
          Hashtbl.add alias lhs r
      | `Const b -> Hashtbl.add alias lhs (if b then "1'b1" else "1'b0"))
    !assigns;
  let rec canonical seen name =
    if List.mem name seen then fail 0 ("assign cycle through " ^ name);
    match Hashtbl.find_opt alias name with
    | Some next_name -> canonical (name :: seen) next_name
    | None -> name
  in
  (* Build the netlist. *)
  let b = Builder.create ~name:_module_name library in
  let nets = Hashtbl.create 256 in
  let net_of name =
    let name = canonical [] name in
    if name = "1'b0" then Builder.const_net b false
    else if name = "1'b1" then Builder.const_net b true
    else
      match Hashtbl.find_opt nets name with
      | Some n -> n
      | None ->
          let n = Builder.declare_net b name in
          Hashtbl.add nets name n;
          n
  in
  List.iter
    (fun p ->
      let n = Builder.add_pi b p in
      if Hashtbl.mem nets p then raise (Parse_error (0, "duplicate input " ^ p));
      Hashtbl.add nets p n)
    !inputs;
  List.iter
    (fun inst ->
      match Library.find_opt library inst.i_cell with
      | None -> fail inst.i_line ("unknown cell " ^ inst.i_cell)
      | Some cell ->
          let pin_target name =
            match List.assoc_opt name inst.i_conns with
            | Some t -> t
            | None -> fail inst.i_line (Printf.sprintf "%s: missing pin %s" inst.i_name name)
          in
          let fanins =
            Array.map
              (fun pin ->
                match pin_target pin with
                | `Net nm -> net_of nm
                | `Const v -> Builder.const_net b v)
              cell.Cell.inputs
          in
          (match pin_target cell.Cell.output with
          | `Const _ -> fail inst.i_line (inst.i_name ^ ": output tied to a constant")
          | `Net nm ->
              let out = net_of nm in
              (try Builder.add_gate_driving b ~name:inst.i_name ~cell:inst.i_cell fanins out
               with Invalid_argument msg -> fail inst.i_line msg));
          if List.length inst.i_conns <> Array.length cell.Cell.inputs + 1 then
            fail inst.i_line (inst.i_name ^ ": unexpected extra connections"))
    instances;
  List.iter (fun p -> Builder.mark_po b p (net_of p)) !outputs;
  try Builder.finish b with Failure msg -> raise (Parse_error (0, msg))

let read_file ~library path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  read ~library text

(** Reading and writing netlists in a simple structural text format.

    The format is line-based:
    {v
    circuit <name>
    input <port>
    gate <cell> <instance> <out-net> <in-net> ...
    output <port> <net>
    end
    v}
    Net names are arbitrary tokens; the reserved tokens [const0] and [const1]
    denote constant nets.  Gates may appear in any order (forward references
    are resolved), so sequential feedback loops round-trip. *)

val write : Format.formatter -> Netlist.t -> unit

val to_string : Netlist.t -> string

val read : library:Library.t -> string -> Netlist.t
(** Parse from a string.  @raise Failure with a line number on syntax or
    consistency errors. *)

val read_file : library:Library.t -> string -> Netlist.t

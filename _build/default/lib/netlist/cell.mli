(** Standard-cell descriptions.

    A cell is a single-output library element: its logic function (a truth
    table over the input pins in order), electrical parameters for the
    timing/power models, and a physical footprint for placement.  Sequential
    cells (D flip-flops) carry [is_seq = true]; their [func] is the identity
    on the D pin and they are split into pseudo-PI/PO pairs by the scan view
    (see {!Netlist.comb_view}). *)

type t = {
  name : string;
  inputs : string array;        (** input pin names, in truth-table order *)
  output : string;              (** output pin name *)
  func : Dfm_logic.Truthtable.t;
  area : float;                 (** footprint area, um^2 *)
  width : float;                (** placement-row width, um *)
  height : float;               (** row height, um (uniform per library) *)
  intrinsic_delay : float;      (** ns *)
  drive_res : float;            (** ns per pF of load *)
  input_cap : float;            (** pF per input pin *)
  leakage : float;              (** nW *)
  transistors : int;            (** switch-level device count *)
  is_seq : bool;
}

val arity : t -> int

val make :
  name:string ->
  inputs:string list ->
  ?output:string ->
  func:Dfm_logic.Truthtable.t ->
  area:float ->
  width:float ->
  ?height:float ->
  intrinsic_delay:float ->
  drive_res:float ->
  input_cap:float ->
  leakage:float ->
  transistors:int ->
  ?is_seq:bool ->
  unit ->
  t
(** [make] checks that the truth-table arity matches the pin count.
    [output] defaults to ["Y"]; [height] to [5.0]; [is_seq] to [false]. *)

val pp : Format.formatter -> t -> unit

module Tt = Dfm_logic.Truthtable

type t = { name : string; cells : Cell.t list; by_name : (string, Cell.t) Hashtbl.t }

let make ~name cells =
  let by_name = Hashtbl.create 32 in
  List.iter
    (fun (c : Cell.t) ->
      if Hashtbl.mem by_name c.Cell.name then
        invalid_arg (Printf.sprintf "Library.make: duplicate cell %s" c.Cell.name);
      Hashtbl.add by_name c.Cell.name c)
    cells;
  { name; cells; by_name }

let name t = t.name
let cells t = t.cells
let size t = List.length t.cells

let find t n =
  match Hashtbl.find_opt t.by_name n with Some c -> c | None -> raise Not_found

let find_opt t n = Hashtbl.find_opt t.by_name n
let mem t n = Hashtbl.mem t.by_name n

let combinational t = List.filter (fun c -> not c.Cell.is_seq) t.cells
let sequential t = List.filter (fun c -> c.Cell.is_seq) t.cells

let restrict t ~excluded =
  let keep c = not (List.mem c.Cell.name excluded) in
  make ~name:t.name (List.filter keep t.cells)

let filter t p = make ~name:t.name (List.filter p t.cells)

(* Exact completeness test via Post's criterion: a set of Boolean functions
   is functionally complete iff it contains, for each of the five Post
   classes (0-preserving, 1-preserving, monotone, self-dual, affine), at
   least one function outside that class. *)
let preserves_0 f = not (Tt.eval_index f 0)

let preserves_1 f = Tt.eval_index f ((1 lsl Tt.arity f) - 1)

let monotone f =
  let n = Tt.arity f in
  let exception Violation in
  try
    for m = 0 to (1 lsl n) - 1 do
      for k = 0 to n - 1 do
        if (m lsr k) land 1 = 0 then begin
          let m1 = m lor (1 lsl k) in
          if Tt.eval_index f m && not (Tt.eval_index f m1) then raise Violation
        end
      done
    done;
    true
  with Violation -> false

let self_dual f =
  let n = Tt.arity f in
  let all = (1 lsl n) - 1 in
  let exception Violation in
  try
    for m = 0 to all do
      if Tt.eval_index f m = Tt.eval_index f (all - m) then raise Violation
    done;
    true
  with Violation -> false

(* A function is affine iff its algebraic normal form has no monomial of
   degree >= 2.  Compute the ANF with the Moebius transform. *)
let affine f =
  let n = Tt.arity f in
  let sz = 1 lsl n in
  let a = Array.init sz (fun m -> if Tt.eval_index f m then 1 else 0) in
  for k = 0 to n - 1 do
    for m = 0 to sz - 1 do
      if (m lsr k) land 1 = 1 then a.(m) <- a.(m) lxor a.(m lxor (1 lsl k))
    done
  done;
  let degree_of m =
    let rec pop m acc = if m = 0 then acc else pop (m lsr 1) (acc + (m land 1)) in
    pop m 0
  in
  let exception Violation in
  try
    for m = 0 to sz - 1 do
      if a.(m) = 1 && degree_of m >= 2 then raise Violation
    done;
    true
  with Violation -> false

let functionally_complete t =
  let fs = List.map (fun c -> c.Cell.func) (combinational t) in
  List.exists (fun f -> not (preserves_0 f)) fs
  && List.exists (fun f -> not (preserves_1 f)) fs
  && List.exists (fun f -> not (monotone f)) fs
  && List.exists (fun f -> not (self_dual f)) fs
  && List.exists (fun f -> not (affine f)) fs

let row_height t =
  List.fold_left (fun acc c -> Float.max acc c.Cell.height) 0.0 t.cells

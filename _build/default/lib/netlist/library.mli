(** A standard-cell library: an ordered collection of {!Cell.t}.

    The resynthesis procedure of the paper orders cells by decreasing number
    of internal DFM faults and repeatedly re-maps subcircuits with prefixes of
    that order excluded; {!restrict} produces the restricted libraries. *)

type t

val make : name:string -> Cell.t list -> t
(** Cell names must be unique. *)

val name : t -> string
val cells : t -> Cell.t list
val size : t -> int

val find : t -> string -> Cell.t
(** @raise Not_found if no cell has that name. *)

val find_opt : t -> string -> Cell.t option
val mem : t -> string -> bool

val combinational : t -> Cell.t list
val sequential : t -> Cell.t list

val restrict : t -> excluded:string list -> t
(** Library without the named cells. *)

val filter : t -> (Cell.t -> bool) -> t

val functionally_complete : t -> bool
(** True when the combinational cells can express any Boolean function:
    there is an inverting function and a nontrivial 2-input function
    (NAND2 or NOR2 alone suffice; INV plus AND/OR also works). *)

val row_height : t -> float
(** Common cell height used by the placer (max over cells). *)

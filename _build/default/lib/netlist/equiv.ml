module Tt = Dfm_logic.Truthtable
module Bdd = Dfm_logic.Bdd

type verdict =
  | Equivalent
  | Different of string
  | Interface_mismatch of string

(* Build BDDs for every net of [t], with controllable points mapped to BDD
   variables via [var_of_label]. *)
let build_bdds man t var_of_label =
  let nets = Array.make (Netlist.num_nets t) None in
  let set n v = nets.(n) <- Some v in
  List.iter
    (fun (label, n) -> set n (Bdd.var man (var_of_label label)))
    (Netlist.input_nets t);
  Array.iter
    (fun (nn : Netlist.net) ->
      match nn.Netlist.driver with
      | Netlist.Const v -> set nn.Netlist.net_id (if v then Bdd.one man else Bdd.zero man)
      | Netlist.Pi _ | Netlist.Gate_out _ -> ())
    t.Netlist.nets;
  let order = Netlist.topo_order t in
  Array.iter
    (fun gid ->
      let g = Netlist.gate t gid in
      let fanin_bdds =
        Array.map
          (fun n ->
            match nets.(n) with
            | Some v -> v
            | None -> failwith "Equiv: fanin not computed (cycle through logic?)")
          g.Netlist.fanins
      in
      (* Shannon-expand the cell truth table over the fanin BDDs. *)
      let f = g.Netlist.cell.Cell.func in
      let arity = Tt.arity f in
      let acc = ref (Bdd.zero man) in
      for m = 0 to (1 lsl arity) - 1 do
        if Tt.eval_index f m then begin
          let cube = ref (Bdd.one man) in
          for k = 0 to arity - 1 do
            let v = fanin_bdds.(k) in
            let lit = if (m lsr k) land 1 = 1 then v else Bdd.bnot man v in
            cube := Bdd.band man !cube lit
          done;
          acc := Bdd.bor man !acc !cube
        end
      done;
      if arity = 0 then
        acc := (if Tt.eval_index f 0 then Bdd.one man else Bdd.zero man);
      set g.Netlist.fanout !acc)
    order;
  nets

let check t1 t2 =
  let labels l = List.map fst l |> List.sort compare in
  let in1 = labels (Netlist.input_nets t1) and in2 = labels (Netlist.input_nets t2) in
  let out1 = labels (Netlist.observe_nets t1) and out2 = labels (Netlist.observe_nets t2) in
  if in1 <> in2 then Interface_mismatch "inputs"
  else if out1 <> out2 then Interface_mismatch "outputs"
  else begin
    let var_tbl = Hashtbl.create 64 in
    List.iteri (fun i l -> Hashtbl.add var_tbl l i) in1;
    let var_of_label l = Hashtbl.find var_tbl l in
    let man = Bdd.man () in
    let nets1 = build_bdds man t1 var_of_label in
    let nets2 = build_bdds man t2 var_of_label in
    let value nets (_, n) = match nets.(n) with Some v -> v | None -> assert false in
    let rec compare_outputs = function
      | [] -> Equivalent
      | (label, _) :: rest -> (
          let o1 = List.find (fun (l, _) -> l = label) (Netlist.observe_nets t1) in
          let o2 = List.find (fun (l, _) -> l = label) (Netlist.observe_nets t2) in
          if Bdd.equal (value nets1 o1) (value nets2 o2) then compare_outputs rest
          else Different label)
    in
    compare_outputs (Netlist.observe_nets t1)
  end

let output_function t =
  let ins = Netlist.input_nets t in
  let n = List.length ins in
  if n > 6 then invalid_arg "Equiv.output_function: more than 6 inputs";
  List.map
    (fun (label, onet) ->
      let tt =
        Tt.create n (fun assignment ->
            (* Evaluate the netlist on one input assignment. *)
            let values = Array.make (Netlist.num_nets t) None in
            List.iteri
              (fun i (_, nid) -> values.(nid) <- Some assignment.(i))
              ins;
            Array.iter
              (fun (nn : Netlist.net) ->
                match nn.Netlist.driver with
                | Netlist.Const v -> values.(nn.Netlist.net_id) <- Some v
                | Netlist.Pi _ | Netlist.Gate_out _ -> ())
              t.Netlist.nets;
            let order = Netlist.topo_order t in
            Array.iter
              (fun gid ->
                let g = Netlist.gate t gid in
                let a =
                  Array.map
                    (fun fn ->
                      match values.(fn) with Some v -> v | None -> assert false)
                    g.Netlist.fanins
                in
                values.(g.Netlist.fanout) <- Some (Tt.eval g.Netlist.cell.Cell.func a))
              order;
            match values.(onet) with Some v -> v | None -> assert false)
      in
      (label, tt))
    (Netlist.observe_nets t)

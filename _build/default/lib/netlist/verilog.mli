(** Structural Verilog interchange.

    Writes a netlist as a flat gate-level Verilog module with named port
    connections (the format every commercial P&R / ATPG tool consumes), and
    reads the same subset back:

    {v
    module tv80 (di0, di1, ..., alu0, ...);
      input di0;
      output alu0;
      wire n42;
      NAND2X1 g17 (.A(n42), .B(di0), .Y(n43));
      DFFPOSX1 acc_q0 (.D(n91), .Q(acc0));
      ...
    endmodule
    v}

    Supported on read: one module; [input]/[output]/[wire] declarations
    (scalar, comma-separated); instances of library cells with named
    connections; [1'b0]/[1'b1] constant connections; [//] and [/* */]
    comments.  Unsupported constructs raise {!Parse_error} with a line
    number. *)

exception Parse_error of int * string

val write : Format.formatter -> Netlist.t -> unit

val to_string : Netlist.t -> string

val read : library:Library.t -> string -> Netlist.t
(** @raise Parse_error on syntax errors, unknown cells or pins,
    multiply-driven or undriven wires. *)

val read_file : library:Library.t -> string -> Netlist.t

(** Union-find over dense integer keys [0 .. n-1], with path compression and
    union by rank.  Used to partition undetectable faults into structural
    clusters (Section II of the paper). *)

type t

val create : int -> t
(** [create n] makes [n] singleton classes. *)

val size : t -> int
(** Number of elements (not classes). *)

val find : t -> int -> int
(** Canonical representative of the class of an element. *)

val union : t -> int -> int -> unit
(** Merge the classes of two elements. *)

val same : t -> int -> int -> bool

val class_size : t -> int -> int
(** Number of elements in the class of an element. *)

val classes : t -> (int * int list) list
(** All classes as [(representative, members)] pairs; members are sorted. *)

val count_classes : t -> int

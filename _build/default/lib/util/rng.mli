(** Deterministic pseudo-random number generation.

    All randomness in the project flows through named [Rng.t] streams seeded
    with splitmix64 so that every run of every experiment is reproducible
    bit-for-bit.  The stdlib [Random] module is never used. *)

type t
(** A mutable pseudo-random stream. *)

val create : int -> t
(** [create seed] makes an independent stream from an integer seed. *)

val of_name : string -> t
(** [of_name s] derives a stream from a string label (FNV-1a hash of [s]),
    so that unrelated subsystems get decorrelated streams without having to
    coordinate integer seeds. *)

val split : t -> t
(** [split t] draws a fresh independent stream from [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n).  Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] draws [min k (length xs)] distinct elements of [xs],
    preserving no particular order. *)

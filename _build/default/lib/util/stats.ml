let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percent num den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let ratio a b = if b = 0.0 then 0.0 else a /. b

let clamp ~min ~max x = if x < min then min else if x > max then max else x

let fmt_pct p = Printf.sprintf "%.2f%%" p

let fmt_ratio_pct r = Printf.sprintf "%.2f%%" (100.0 *. r)

(** Binary min-heap over values with float priorities.  Used by the placer's
    legalizer and the router's maze expansion. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push h prio v] inserts [v] with priority [prio]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element. *)

val peek : 'a t -> (float * 'a) option

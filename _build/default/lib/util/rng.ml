type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let of_name name = { state = fnv1a name }

let bits64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = bits64 t }

let int t n =
  assert (n > 0);
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p = float t 1.0 < p

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample t k xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  if n = 0 || k <= 0 then []
  else begin
    shuffle t a;
    Array.to_list (Array.sub a 0 (min k n))
  end

lib/util/heap.mli:

lib/util/stats.mli:

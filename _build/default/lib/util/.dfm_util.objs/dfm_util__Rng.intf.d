lib/util/rng.mli:

(** Small numeric helpers shared by the benchmark harness and reports. *)

val mean : float list -> float
(** Mean of a list; 0 for the empty list. *)

val percent : int -> int -> float
(** [percent num den] is [100 * num / den] as a float; 0 when [den = 0]. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b]; 0 when [b = 0]. *)

val clamp : min:float -> max:float -> float -> float

val fmt_pct : float -> string
(** Render a percentage like the paper's tables, e.g. ["93.62%"]. *)

val fmt_ratio_pct : float -> string
(** Render a ratio as a percentage, e.g. [1.0327 -> "103.27%"]. *)

type 'a t = { mutable data : (float * 'a) array; mutable len : int }

let create () = { data = [||]; len = 0 }

let is_empty h = h.len = 0

let length h = h.len

let grow h x =
  let cap = Array.length h.data in
  if h.len = cap then begin
    let ncap = max 8 (2 * cap) in
    let nd = Array.make ncap x in
    Array.blit h.data 0 nd 0 h.len;
    h.data <- nd
  end

let push h prio v =
  grow h (prio, v);
  h.data.(h.len) <- (prio, v);
  h.len <- h.len + 1;
  (* sift up *)
  let i = ref (h.len - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    let pi, _ = h.data.(p) and ci, _ = h.data.(!i) in
    if ci < pi then begin
      let tmp = h.data.(p) in
      h.data.(p) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := p
    end
    else continue := false
  done

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
        if r < h.len && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.data.(!i) in
          h.data.(!i) <- h.data.(!smallest);
          h.data.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some top
  end

let peek h = if h.len = 0 then None else Some h.data.(0)

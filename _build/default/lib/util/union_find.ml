type t = { parent : int array; rank : int array; csize : int array }

let create n =
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; csize = Array.make n 1 }

let size t = Array.length t.parent

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let r = find t p in
    t.parent.(i) <- r;
    r
  end

let union t i j =
  let ri = find t i and rj = find t j in
  if ri <> rj then begin
    let a, b = if t.rank.(ri) < t.rank.(rj) then rj, ri else ri, rj in
    t.parent.(b) <- a;
    t.csize.(a) <- t.csize.(a) + t.csize.(b);
    if t.rank.(a) = t.rank.(b) then t.rank.(a) <- t.rank.(a) + 1
  end

let same t i j = find t i = find t j

let class_size t i = t.csize.(find t i)

let classes t =
  let tbl = Hashtbl.create 16 in
  for i = size t - 1 downto 0 do
    let r = find t i in
    Hashtbl.replace tbl r (i :: (try Hashtbl.find tbl r with Not_found -> []))
  done;
  Hashtbl.fold (fun r members acc -> (r, members) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let count_classes t =
  let n = size t in
  let c = ref 0 in
  for i = 0 to n - 1 do
    if find t i = i then incr c
  done;
  !c

type t =
  | Transistor_stuck_off of int
  | Drain_source_short of int
  | Node_short of Switch.node * Switch.node
  | Pin_open of string

let to_condition (c : Switch.circuit) = function
  | Transistor_stuck_off i -> { Switch.healthy with Switch.stuck_off = [ i ] }
  | Drain_source_short i ->
      let d = List.find (fun (t : Switch.transistor) -> t.Switch.t_id = i) c.Switch.devices in
      { Switch.healthy with Switch.shorted = [ (d.Switch.a, d.Switch.b) ] }
  | Node_short (a, b) -> { Switch.healthy with Switch.shorted = [ (a, b) ] }
  | Pin_open p -> { Switch.healthy with Switch.open_pins = [ p ] }

let node_to_string = function
  | Switch.Vdd -> "VDD"
  | Switch.Gnd -> "GND"
  | Switch.Out -> "OUT"
  | Switch.Pin p -> p
  | Switch.Mid m -> Printf.sprintf "mid%d" m

let describe = function
  | Transistor_stuck_off i -> Printf.sprintf "open device M%d" i
  | Drain_source_short i -> Printf.sprintf "channel short M%d" i
  | Node_short (a, b) -> Printf.sprintf "short %s-%s" (node_to_string a) (node_to_string b)
  | Pin_open p -> Printf.sprintf "open pin %s" p

type category = Via | Metal | Density

let category_to_string = function Via -> "Via" | Metal -> "Metal" | Density -> "Density"

type site = {
  site_id : int;
  category : category;
  guideline_index : int;
  defect : t;
}

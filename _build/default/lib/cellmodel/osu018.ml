module Tt = Dfm_logic.Truthtable

type model = {
  cell : Dfm_netlist.Cell.t;
  network : Switch.circuit option;
  sites : Defect.site list;
}

(* ------------------------------------------------------------------ *)
(* Transistor-network construction DSL                                 *)
(* ------------------------------------------------------------------ *)

type nb = {
  mutable devs : Switch.transistor list;  (* reversed *)
  mutable n_devs : int;
  mutable n_mids : int;
}

let nb () = { devs = []; n_devs = 0; n_mids = 0 }

let mid b =
  let m = b.n_mids in
  b.n_mids <- m + 1;
  Switch.Mid m

let dev b mos g a bn =
  let t = { Switch.t_id = b.n_devs; mos; g; a; b = bn } in
  b.devs <- t :: b.devs;
  b.n_devs <- b.n_devs + 1

(* A series chain of devices of one type, gates given in order, between two
   nodes. *)
let series b mos gates from_node to_node =
  let rec go cur = function
    | [] -> assert false
    | [ g ] -> dev b mos g cur to_node
    | g :: rest ->
        let m = mid b in
        dev b mos g cur m;
        go m rest
  in
  go from_node gates

let parallel b mos gates from_node to_node =
  List.iter (fun g -> dev b mos g from_node to_node) gates

let finish name b =
  let c = { Switch.c_name = name; devices = List.rev b.devs; n_mids = b.n_mids } in
  Switch.validate c;
  c

let pin p = Switch.Pin p

(* ------------------------------------------------------------------ *)
(* Networks for each combinational cell                                 *)
(* ------------------------------------------------------------------ *)

let inv_network name mult =
  let b = nb () in
  for _ = 1 to mult do
    dev b Switch.Pmos (pin "A") Switch.Vdd Switch.Out;
    dev b Switch.Nmos (pin "A") Switch.Gnd Switch.Out
  done;
  finish name b

let buf_network name =
  let b = nb () in
  let m = mid b in
  dev b Switch.Pmos (pin "A") Switch.Vdd m;
  dev b Switch.Nmos (pin "A") Switch.Gnd m;
  dev b Switch.Pmos m Switch.Vdd Switch.Out;
  dev b Switch.Nmos m Switch.Gnd Switch.Out;
  finish name b

let nand_network name inputs =
  let b = nb () in
  let gates = List.map pin inputs in
  series b Switch.Nmos gates Switch.Gnd Switch.Out;
  parallel b Switch.Pmos gates Switch.Vdd Switch.Out;
  finish name b

let nor_network name inputs =
  let b = nb () in
  let gates = List.map pin inputs in
  parallel b Switch.Nmos gates Switch.Gnd Switch.Out;
  series b Switch.Pmos gates Switch.Vdd Switch.Out;
  finish name b

(* NAND/NOR stage driving an output inverter. *)
let staged_network name stage =
  let b = nb () in
  let m = mid b in
  (match stage with
  | `Nand inputs ->
      let gates = List.map pin inputs in
      series b Switch.Nmos gates Switch.Gnd m;
      parallel b Switch.Pmos gates Switch.Vdd m
  | `Nor inputs ->
      let gates = List.map pin inputs in
      parallel b Switch.Nmos gates Switch.Gnd m;
      series b Switch.Pmos gates Switch.Vdd m);
  dev b Switch.Pmos m Switch.Vdd Switch.Out;
  dev b Switch.Nmos m Switch.Gnd Switch.Out;
  finish name b

let xor_like_network name ~xnor =
  let b = nb () in
  let na = mid b and nbn = mid b in
  dev b Switch.Pmos (pin "A") Switch.Vdd na;
  dev b Switch.Nmos (pin "A") Switch.Gnd na;
  dev b Switch.Pmos (pin "B") Switch.Vdd nbn;
  dev b Switch.Nmos (pin "B") Switch.Gnd nbn;
  (* Pull-down conducts when the output should be 0; pull-up when 1. *)
  let pd1, pd2, pu1, pu2 =
    if xnor then
      (* XNOR = 0 when a <> b *)
      ([ pin "A"; nbn ], [ na; pin "B" ], [ pin "A"; pin "B" ], [ na; nbn ])
    else
      (* XOR = 0 when a = b *)
      ([ pin "A"; pin "B" ], [ na; nbn ], [ pin "A"; nbn ], [ na; pin "B" ])
  in
  series b Switch.Nmos pd1 Switch.Gnd Switch.Out;
  series b Switch.Nmos pd2 Switch.Gnd Switch.Out;
  (* P devices conduct on gate = 0, so a pull-up series for (x & y) uses the
     complemented controls. *)
  series b Switch.Pmos pu1 Switch.Vdd Switch.Out;
  series b Switch.Pmos pu2 Switch.Vdd Switch.Out;
  finish name b

let aoi21_network name =
  (* Y = !((A & B) | C) *)
  let b = nb () in
  series b Switch.Nmos [ pin "A"; pin "B" ] Switch.Gnd Switch.Out;
  dev b Switch.Nmos (pin "C") Switch.Gnd Switch.Out;
  let m = mid b in
  parallel b Switch.Pmos [ pin "A"; pin "B" ] Switch.Vdd m;
  dev b Switch.Pmos (pin "C") m Switch.Out;
  finish name b

let aoi22_network name =
  (* Y = !((A & B) | (C & D)) *)
  let b = nb () in
  series b Switch.Nmos [ pin "A"; pin "B" ] Switch.Gnd Switch.Out;
  series b Switch.Nmos [ pin "C"; pin "D" ] Switch.Gnd Switch.Out;
  let m = mid b in
  parallel b Switch.Pmos [ pin "A"; pin "B" ] Switch.Vdd m;
  parallel b Switch.Pmos [ pin "C"; pin "D" ] m Switch.Out;
  finish name b

let aoi211_network name =
  (* Y = !((A & B) | C | D) *)
  let b = nb () in
  series b Switch.Nmos [ pin "A"; pin "B" ] Switch.Gnd Switch.Out;
  dev b Switch.Nmos (pin "C") Switch.Gnd Switch.Out;
  dev b Switch.Nmos (pin "D") Switch.Gnd Switch.Out;
  let m1 = mid b in
  let m2 = mid b in
  parallel b Switch.Pmos [ pin "A"; pin "B" ] Switch.Vdd m1;
  dev b Switch.Pmos (pin "C") m1 m2;
  dev b Switch.Pmos (pin "D") m2 Switch.Out;
  finish name b

let oai21_network name =
  (* Y = !((A | B) & C) *)
  let b = nb () in
  let m = mid b in
  parallel b Switch.Nmos [ pin "A"; pin "B" ] Switch.Gnd m;
  dev b Switch.Nmos (pin "C") m Switch.Out;
  series b Switch.Pmos [ pin "A"; pin "B" ] Switch.Vdd Switch.Out;
  dev b Switch.Pmos (pin "C") Switch.Vdd Switch.Out;
  finish name b

let oai22_network name =
  (* Y = !((A | B) & (C | D)) *)
  let b = nb () in
  let m = mid b in
  parallel b Switch.Nmos [ pin "A"; pin "B" ] Switch.Gnd m;
  parallel b Switch.Nmos [ pin "C"; pin "D" ] m Switch.Out;
  series b Switch.Pmos [ pin "A"; pin "B" ] Switch.Vdd Switch.Out;
  series b Switch.Pmos [ pin "C"; pin "D" ] Switch.Vdd Switch.Out;
  finish name b

let mux2_network name =
  (* Y = S ? B : A, transmission gates plus select inverter *)
  let b = nb () in
  let sn = mid b in
  dev b Switch.Pmos (pin "S") Switch.Vdd sn;
  dev b Switch.Nmos (pin "S") Switch.Gnd sn;
  (* A path conducts when S = 0. *)
  dev b Switch.Nmos sn (pin "A") Switch.Out;
  dev b Switch.Pmos (pin "S") (pin "A") Switch.Out;
  (* B path conducts when S = 1. *)
  dev b Switch.Nmos (pin "S") (pin "B") Switch.Out;
  dev b Switch.Pmos sn (pin "B") Switch.Out;
  finish name b

(* ------------------------------------------------------------------ *)
(* DFM-violation sites derived from the network structure               *)
(* ------------------------------------------------------------------ *)

let hash_name s =
  let h = ref 5381 in
  String.iter (fun c -> h := (!h * 33) + Char.code c) s;
  abs !h

(* Paper, Section IV: 19 Via guidelines, 29 Metal guidelines, 11 Density
   guidelines. *)
let n_via = 19
let n_metal = 29
let n_density = 11

let sites_of_network (c : Switch.circuit) =
  let h = hash_name c.Switch.c_name in
  let sites = ref [] in
  let n = ref 0 in
  let add category guideline_index defect =
    sites := { Defect.site_id = !n; category; guideline_index; defect } :: !sites;
    incr n
  in
  List.iter
    (fun (t : Switch.transistor) ->
      (* Contact via on every device: an open disables the device. *)
      add Defect.Via ((h + t.Switch.t_id) mod n_via) (Defect.Transistor_stuck_off t.Switch.t_id);
      (* Channel-region density hotspot on every other device: a short. *)
      if t.Switch.t_id mod 2 = 0 then
        add Defect.Density ((h + t.Switch.t_id) mod n_density)
          (Defect.Drain_source_short t.Switch.t_id))
    c.Switch.devices;
  for m = 0 to c.Switch.n_mids - 1 do
    (* Narrow metal between a series-stack node and the output rail. *)
    add Defect.Metal ((h + m) mod n_metal) (Defect.Node_short (Switch.Mid m, Switch.Out));
    if m + 1 < c.Switch.n_mids then
      add Defect.Metal ((h + (3 * m) + 1) mod n_metal)
        (Defect.Node_short (Switch.Mid m, Switch.Mid (m + 1)))
  done;
  List.iter
    (fun p -> add Defect.Via ((h + hash_name p) mod n_via) (Defect.Pin_open p))
    (Switch.pins c);
  (* Output rail running next to the supply rails. *)
  add Defect.Metal ((h + 7) mod n_metal) (Defect.Node_short (Switch.Out, Switch.Vdd));
  add Defect.Metal ((h + 11) mod n_metal) (Defect.Node_short (Switch.Out, Switch.Gnd));
  List.rev !sites

(* Hand-written sites for the flip-flop (not switch-simulated; see Udfm). *)
let dff_sites =
  let mk i category gi defect = { Defect.site_id = i; category; guideline_index = gi; defect } in
  [
    mk 0 Defect.Via 2 (Defect.Pin_open "D");
    mk 1 Defect.Via 6 (Defect.Transistor_stuck_off 0);
    mk 2 Defect.Via 9 (Defect.Transistor_stuck_off 1);
    mk 3 Defect.Via 13 (Defect.Transistor_stuck_off 2);
    mk 4 Defect.Via 17 (Defect.Transistor_stuck_off 3);
    mk 5 Defect.Metal 3 (Defect.Node_short (Switch.Mid 0, Switch.Out));
    mk 6 Defect.Metal 8 (Defect.Node_short (Switch.Mid 1, Switch.Out));
    mk 7 Defect.Metal 15 (Defect.Node_short (Switch.Out, Switch.Vdd));
    mk 8 Defect.Metal 22 (Defect.Node_short (Switch.Out, Switch.Gnd));
    mk 9 Defect.Density 4 (Defect.Drain_source_short 4);
    mk 10 Defect.Density 7 (Defect.Drain_source_short 5);
    mk 11 Defect.Via 5 (Defect.Pin_open "CLK");
  ]

(* ------------------------------------------------------------------ *)
(* Cell metadata                                                        *)
(* ------------------------------------------------------------------ *)

let tt_inputs = [| "A"; "B"; "C"; "D" |]

let mk_cell ~name ~arity ~f ~strength ~transistors ?(is_seq = false) () =
  let inputs =
    if name = "MUX2X1" then [ "A"; "B"; "S" ]
    else if is_seq then [ "D" ]
    else List.init arity (fun i -> tt_inputs.(i))
  in
  let func = Tt.create arity f in
  let area = 8.0 +. (2.5 *. float_of_int transistors) in
  Dfm_netlist.Cell.make ~name ~inputs ~func ~area ~width:(area /. 5.0)
    ~intrinsic_delay:(0.02 +. (0.008 *. float_of_int arity) +. (0.002 *. float_of_int transistors))
    ~drive_res:(2.4 /. strength)
    ~input_cap:(0.002 *. Float.max 1.0 (strength /. 1.5))
    ~leakage:(0.04 *. float_of_int transistors)
    ~transistors ~is_seq ()

let comb name network ~arity ~f ~strength =
  let transistors = List.length network.Switch.devices in
  {
    cell = mk_cell ~name ~arity ~f ~strength ~transistors ();
    network = Some network;
    sites = sites_of_network network;
  }

let dff_name = "DFFPOSX1"

let models =
  [
    comb "INVX1" (inv_network "INVX1" 1) ~arity:1 ~f:(fun a -> not a.(0)) ~strength:1.0;
    comb "INVX2" (inv_network "INVX2" 2) ~arity:1 ~f:(fun a -> not a.(0)) ~strength:2.0;
    comb "INVX4" (inv_network "INVX4" 4) ~arity:1 ~f:(fun a -> not a.(0)) ~strength:4.0;
    comb "BUFX2" (buf_network "BUFX2") ~arity:1 ~f:(fun a -> a.(0)) ~strength:2.0;
    comb "NAND2X1" (nand_network "NAND2X1" [ "A"; "B" ]) ~arity:2
      ~f:(fun a -> not (a.(0) && a.(1))) ~strength:1.0;
    comb "NAND3X1" (nand_network "NAND3X1" [ "A"; "B"; "C" ]) ~arity:3
      ~f:(fun a -> not (a.(0) && a.(1) && a.(2))) ~strength:1.0;
    comb "NAND4X1" (nand_network "NAND4X1" [ "A"; "B"; "C"; "D" ]) ~arity:4
      ~f:(fun a -> not (a.(0) && a.(1) && a.(2) && a.(3))) ~strength:1.0;
    comb "NOR2X1" (nor_network "NOR2X1" [ "A"; "B" ]) ~arity:2
      ~f:(fun a -> not (a.(0) || a.(1))) ~strength:1.0;
    comb "NOR3X1" (nor_network "NOR3X1" [ "A"; "B"; "C" ]) ~arity:3
      ~f:(fun a -> not (a.(0) || a.(1) || a.(2))) ~strength:1.0;
    comb "NOR4X1" (nor_network "NOR4X1" [ "A"; "B"; "C"; "D" ]) ~arity:4
      ~f:(fun a -> not (a.(0) || a.(1) || a.(2) || a.(3))) ~strength:1.0;
    comb "AND2X2" (staged_network "AND2X2" (`Nand [ "A"; "B" ])) ~arity:2
      ~f:(fun a -> a.(0) && a.(1)) ~strength:2.0;
    comb "OR2X2" (staged_network "OR2X2" (`Nor [ "A"; "B" ])) ~arity:2
      ~f:(fun a -> a.(0) || a.(1)) ~strength:2.0;
    comb "XOR2X1" (xor_like_network "XOR2X1" ~xnor:false) ~arity:2
      ~f:(fun a -> a.(0) <> a.(1)) ~strength:1.0;
    comb "XNOR2X1" (xor_like_network "XNOR2X1" ~xnor:true) ~arity:2
      ~f:(fun a -> a.(0) = a.(1)) ~strength:1.0;
    comb "AOI21X1" (aoi21_network "AOI21X1") ~arity:3
      ~f:(fun a -> not ((a.(0) && a.(1)) || a.(2))) ~strength:1.0;
    comb "AOI22X1" (aoi22_network "AOI22X1") ~arity:4
      ~f:(fun a -> not ((a.(0) && a.(1)) || (a.(2) && a.(3)))) ~strength:1.0;
    comb "OAI21X1" (oai21_network "OAI21X1") ~arity:3
      ~f:(fun a -> not ((a.(0) || a.(1)) && a.(2))) ~strength:1.0;
    comb "OAI22X1" (oai22_network "OAI22X1") ~arity:4
      ~f:(fun a -> not ((a.(0) || a.(1)) && (a.(2) || a.(3)))) ~strength:1.0;
    comb "AOI211X1" (aoi211_network "AOI211X1") ~arity:4
      ~f:(fun a -> not ((a.(0) && a.(1)) || a.(2) || a.(3))) ~strength:1.0;
    comb "MUX2X1" (mux2_network "MUX2X1") ~arity:3
      ~f:(fun a -> if a.(2) then a.(1) else a.(0)) ~strength:1.0;
    {
      cell = mk_cell ~name:dff_name ~arity:1 ~f:(fun a -> a.(0)) ~strength:1.0
               ~transistors:16 ~is_seq:true ();
      network = None;
      sites = dff_sites;
    };
  ]

let by_name =
  let tbl = Hashtbl.create 32 in
  List.iter (fun m -> Hashtbl.add tbl m.cell.Dfm_netlist.Cell.name m) models;
  tbl

let model name =
  match Hashtbl.find_opt by_name name with Some m -> m | None -> raise Not_found

let library = Dfm_netlist.Library.make ~name:"osu018" (List.map (fun m -> m.cell) models)

(** The 21-cell standard-cell library used throughout the reproduction.

    Modeled after the OSU 0.18um TSMC kit the paper uses (21 cells): inverters
    and buffers in several drive strengths, NAND/NOR stacks up to 4 inputs,
    AND/OR, XOR/XNOR, AND-OR-INVERT and OR-AND-INVERT compounds, a
    transmission-gate multiplexer and a positive-edge D flip-flop.

    Every combinational cell carries a switch-level transistor network, and
    every cell carries a list of internal DFM-violation {!Defect.site}s
    derived from its structure (contacts, series-stack metal, channel
    density).  Larger cells have more sites — the property the resynthesis
    procedure exploits. *)

type model = {
  cell : Dfm_netlist.Cell.t;
  network : Switch.circuit option;  (** [None] for the flip-flop *)
  sites : Defect.site list;
}

val models : model list
(** All 21 cells, in catalog order. *)

val model : string -> model
(** Look up by cell name.  @raise Not_found for unknown names. *)

val library : Dfm_netlist.Library.t
(** The library view (metadata only) of {!models}. *)

val dff_name : string
(** Name of the flip-flop cell (["DFFPOSX1"]). *)

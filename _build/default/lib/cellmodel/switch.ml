type node = Vdd | Gnd | Pin of string | Out | Mid of int

type mos = Nmos | Pmos

type transistor = { t_id : int; mos : mos; g : node; a : node; b : node }

type circuit = { c_name : string; devices : transistor list; n_mids : int }

type v4 = V0 | V1 | VX | VZ

let v4_to_string = function V0 -> "0" | V1 -> "1" | VX -> "X" | VZ -> "Z"

type condition = {
  stuck_off : int list;
  shorted : (node * node) list;
  open_pins : string list;
}

let healthy = { stuck_off = []; shorted = []; open_pins = [] }

let pins c =
  let tbl = Hashtbl.create 8 in
  let note = function Pin p -> Hashtbl.replace tbl p () | Vdd | Gnd | Out | Mid _ -> () in
  List.iter
    (fun t ->
      note t.g;
      note t.a;
      note t.b)
    c.devices;
  Hashtbl.fold (fun p () acc -> p :: acc) tbl [] |> List.sort compare

let validate c =
  let fail fmt = Printf.ksprintf (fun s -> failwith ("Switch.validate " ^ c.c_name ^ ": " ^ s)) fmt in
  List.iteri
    (fun i t ->
      if t.t_id <> i then fail "device id %d out of order" t.t_id;
      let chk = function
        | Mid m -> if m < 0 || m >= c.n_mids then fail "bad mid node %d" m
        | Vdd | Gnd | Pin _ | Out -> ()
      in
      chk t.g;
      chk t.a;
      chk t.b)
    c.devices

(* Dense node numbering for one evaluation: 0 = Vdd, 1 = Gnd, 2 = Out,
   3..2+n_mids = mids, then pins in sorted order. *)
type idx = {
  n_nodes : int;
  of_node : node -> int;
  pin_names : string list;
}

let index c =
  let pin_names = pins c in
  let pin_tbl = Hashtbl.create 8 in
  List.iteri (fun i p -> Hashtbl.add pin_tbl p (3 + c.n_mids + i)) pin_names;
  let of_node = function
    | Vdd -> 0
    | Gnd -> 1
    | Out -> 2
    | Mid m -> 3 + m
    | Pin p -> (
        match Hashtbl.find_opt pin_tbl p with
        | Some i -> i
        | None -> failwith ("Switch: unknown pin " ^ p))
  in
  { n_nodes = 3 + c.n_mids + List.length pin_names; of_node; pin_names }

type dev_state = On | Off | Maybe

let eval_node c cond pin_values target =
  let ix = index c in
  let value = Array.make ix.n_nodes VX in
  value.(0) <- V1;
  value.(1) <- V0;
  let pin_value p =
    if List.mem p cond.open_pins then VZ
    else
      match List.assoc_opt p pin_values with
      | Some true -> V1
      | Some false -> V0
      | None -> failwith ("Switch.eval " ^ c.c_name ^ ": pin " ^ p ^ " not driven")
  in
  List.iter (fun p -> value.(ix.of_node (Pin p)) <- pin_value p) ix.pin_names;
  (* Sources: Vdd, Gnd and non-open pins. *)
  let is_source = Array.make ix.n_nodes false in
  is_source.(0) <- true;
  is_source.(1) <- true;
  List.iter
    (fun p -> if not (List.mem p cond.open_pins) then is_source.(ix.of_node (Pin p)) <- true)
    ix.pin_names;
  let devices = List.filter (fun t -> not (List.mem t.t_id cond.stuck_off)) c.devices in
  let short_edges = List.map (fun (x, y) -> (ix.of_node x, ix.of_node y)) cond.shorted in
  let dev_state t =
    let gv = value.(ix.of_node t.g) in
    match t.mos, gv with
    | Nmos, V1 | Pmos, V0 -> On
    | Nmos, V0 | Pmos, V1 -> Off
    | _, (VX | VZ) -> Maybe
  in
  (* Reachability from sources of a given polarity through a set of edges. *)
  let reach ~include_maybe ~source_val =
    let edges =
      List.filter_map
        (fun t ->
          match dev_state t with
          | On -> Some (ix.of_node t.a, ix.of_node t.b)
          | Maybe when include_maybe -> Some (ix.of_node t.a, ix.of_node t.b)
          | Maybe | Off -> None)
        devices
      @ short_edges
    in
    let adj = Array.make ix.n_nodes [] in
    List.iter
      (fun (x, y) ->
        adj.(x) <- y :: adj.(x);
        adj.(y) <- x :: adj.(y))
      edges;
    let seen = Array.make ix.n_nodes false in
    let rec dfs n =
      if not seen.(n) then begin
        seen.(n) <- true;
        (* Conduction does not pass *through* another strong source: a path
           entering a driven node is terminated there (the source dominates). *)
        if not is_source.(n) then List.iter dfs adj.(n)
      end
    in
    for n = 0 to ix.n_nodes - 1 do
      if is_source.(n) && value.(n) = source_val then begin
        seen.(n) <- true;
        List.iter dfs adj.(n)
      end
    done;
    seen
  in
  let stable = ref false in
  let iterations = ref 0 in
  while (not !stable) && !iterations < ix.n_nodes + 5 do
    incr iterations;
    let d1 = reach ~include_maybe:false ~source_val:V1 in
    let d0 = reach ~include_maybe:false ~source_val:V0 in
    let p1 = reach ~include_maybe:true ~source_val:V1 in
    let p0 = reach ~include_maybe:true ~source_val:V0 in
    stable := true;
    for n = 0 to ix.n_nodes - 1 do
      if not is_source.(n) then begin
        let v =
          if d1.(n) && d0.(n) then VX
          else if d1.(n) then if p0.(n) then VX else V1
          else if d0.(n) then if p1.(n) then VX else V0
          else if p1.(n) || p0.(n) then VX
          else VZ
        in
        if value.(n) <> v then begin
          value.(n) <- v;
          stable := false
        end
      end
    done
  done;
  if not !stable then VX else value.(ix.of_node target)

let eval c cond pin_values = eval_node c cond pin_values Out

lib/cellmodel/defect.mli: Switch

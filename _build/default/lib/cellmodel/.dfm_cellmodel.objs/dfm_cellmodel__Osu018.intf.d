lib/cellmodel/osu018.mli: Defect Dfm_netlist Switch

lib/cellmodel/osu018.ml: Array Char Defect Dfm_logic Dfm_netlist Float Hashtbl List String Switch

lib/cellmodel/udfm.ml: Array Defect Dfm_logic Dfm_netlist Hashtbl Lazy List Osu018 Printf Switch

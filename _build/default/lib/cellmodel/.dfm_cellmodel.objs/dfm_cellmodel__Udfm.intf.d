lib/cellmodel/udfm.mli: Defect Osu018

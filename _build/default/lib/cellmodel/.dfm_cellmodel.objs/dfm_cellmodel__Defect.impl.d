lib/cellmodel/defect.ml: List Printf Switch

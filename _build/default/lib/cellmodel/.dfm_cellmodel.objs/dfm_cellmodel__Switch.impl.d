lib/cellmodel/switch.ml: Array Hashtbl List Printf

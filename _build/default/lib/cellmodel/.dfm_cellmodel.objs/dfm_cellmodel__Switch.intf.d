lib/cellmodel/switch.mli:

(** Switch-level (transistor-network) simulation of standard cells.

    A cell is a network of N/P MOS devices between circuit nodes.  Evaluation
    is a static, charge-free conduction analysis: the strong sources are VDD,
    GND and the externally driven input pins; a node's logic value is derived
    from which sources it (definitely or possibly) conducts to through ON
    transistors.  Unknown transistor gate values make devices "maybe-ON" and
    the analysis resolves pessimistically to [VX].

    This is how intra-cell defects are translated to user-defined fault model
    (UDFM) activation patterns, following the cell-aware methodology the
    paper builds on [9-11]. *)

type node =
  | Vdd
  | Gnd
  | Pin of string   (** an input pin, externally driven *)
  | Out             (** the single output node *)
  | Mid of int      (** internal node *)

type mos = Nmos | Pmos

type transistor = {
  t_id : int;
  mos : mos;
  g : node;   (** gate terminal *)
  a : node;   (** channel terminal *)
  b : node;   (** channel terminal *)
}

type circuit = {
  c_name : string;
  devices : transistor list;
  n_mids : int;  (** number of distinct [Mid] nodes *)
}

type v4 = V0 | V1 | VX | VZ

val v4_to_string : v4 -> string

type condition = {
  stuck_off : int list;        (** devices removed (open channel) *)
  shorted : (node * node) list;(** permanently conducting node pairs *)
  open_pins : string list;     (** pins with broken contact: gates driven by
                                   them float and the pin stops sourcing *)
}

val healthy : condition

val eval : circuit -> condition -> (string * bool) list -> v4
(** [eval c cond pins] is the value of [Out] for the given input-pin
    assignment under the given defect condition. *)

val eval_node : circuit -> condition -> (string * bool) list -> node -> v4

val pins : circuit -> string list
(** Input pins appearing in the network, sorted. *)

val validate : circuit -> unit
(** Sanity checks: device ids dense, mid indices in range.
    @raise Failure on violation. *)

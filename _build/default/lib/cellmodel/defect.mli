(** Intra-cell defects and the DFM-guideline sites that predict them.

    Each standard cell carries a list of {!site}s: locations in its (abstract)
    layout where a DFM guideline is violated and a systematic defect is
    therefore anticipated.  A site names the guideline category it violates
    and the physical defect it would produce; {!Udfm} turns the defect into
    gate-level activation patterns by switch-level simulation. *)

type t =
  | Transistor_stuck_off of int
      (** broken contact / open channel: the device never conducts *)
  | Drain_source_short of int
      (** lithography short across a device channel: always conducts *)
  | Node_short of Switch.node * Switch.node
      (** metal short between two cell nodes *)
  | Pin_open of string
      (** broken input-pin contact: driven gates float, pin stops sourcing *)

val to_condition : Switch.circuit -> t -> Switch.condition
(** The simulation condition representing one defect in a given cell network
    (the circuit is needed to resolve a device's channel terminals). *)

val describe : t -> string

type category = Via | Metal | Density

val category_to_string : category -> string

type site = {
  site_id : int;          (** dense per cell *)
  category : category;    (** violated DFM guideline category *)
  guideline_index : int;  (** index of the guideline within its category *)
  defect : t;
}

(** Event-driven single-fault simulation over 64-pattern words.

    Given the fault-free value words of every net ({!Logic_sim.run}), a fault
    is injected as one or two seed overrides and the difference is propagated
    through the transitive fanout only, stopping when it dies out.  The
    result is the set of the 64 patterns (as a bit word) that detect the
    fault at an observable point.

    Transition faults need cross-pattern bookkeeping (an independent frame
    establishing the initial value — the enhanced-scan assumption documented
    in [Fault]); {!init_word} exposes the frame-1 condition so a campaign
    driver can accumulate both sides. *)

type t

val prepare : Dfm_netlist.Netlist.t -> t

val sim : t -> Logic_sim.t
(** The underlying prepared logic simulator. *)

val detect_word : t -> good:int64 array -> Dfm_faults.Fault.t -> int64
(** Patterns (bits) on which the fault effect reaches an observable point.
    For a transition fault this is the frame-2 (stuck-at) component only. *)

val init_word : t -> good:int64 array -> Dfm_faults.Fault.t -> int64
(** For a transition fault: patterns establishing the initial value at the
    site (frame 1).  [-1L] (all patterns) for other fault kinds. *)

val activation_word : t -> good:int64 array -> gate:int -> int list -> int64
(** Patterns matching one of the given cell-input minterms at a gate; the
    activation condition of internal (UDFM) faults. *)

val syndrome : t -> good:int64 array -> Dfm_faults.Fault.t -> (int * int64) list
(** Per observable point: (net id, word of patterns on which that point
    differs from the fault-free value).  The union of the words equals
    {!detect_word}.  This is the per-output failure signature diagnosis
    matches against tester data. *)

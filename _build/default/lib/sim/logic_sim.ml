module N = Dfm_netlist.Netlist
module Tt = Dfm_logic.Truthtable

type t = {
  nl : N.t;
  ins : (string * int) list;
  obs : (string * int) list;
  order : int array;
}

let prepare nl =
  { nl; ins = N.input_nets nl; obs = N.observe_nets nl; order = N.topo_order nl }

let netlist t = t.nl
let inputs t = t.ins
let observes t = t.obs
let num_inputs t = List.length t.ins
let topo t = t.order

(* One fresh block seed per call; each input's word is derived from the
   block seed and the input's *label*, so the pattern a given flip-flop or
   primary input sees does not depend on how many other inputs exist or on
   gate numbering.  This keeps fault statuses stable across the small
   netlist edits of the resynthesis loop. *)
let random_words t rng =
  let block = Dfm_util.Rng.bits64 rng in
  let ins = Array.of_list t.ins in
  Array.map
    (fun (label, _) ->
      let label_rng = Dfm_util.Rng.of_name label in
      let seed = Int64.logxor (Dfm_util.Rng.bits64 label_rng) block in
      Dfm_util.Rng.bits64 (Dfm_util.Rng.create (Int64.to_int seed)))
    ins

let words_of_pattern pattern =
  Array.map (fun b -> if b then -1L else 0L) pattern

let pattern_of_words words b =
  Array.map (fun w -> Int64.logand (Int64.shift_right_logical w b) 1L = 1L) words

(* Evaluate a truth table over fanin words by minterm expansion: for each
   1-minterm, AND together the fanin words (complemented where the minterm
   has a 0) and OR into the result. *)
let eval_tt (f : Tt.t) (ws : int64 array) =
  let n = Tt.arity f in
  let out = ref 0L in
  for m = 0 to (1 lsl n) - 1 do
    if Tt.eval_index f m then begin
      let term = ref (-1L) in
      for k = 0 to n - 1 do
        let w = ws.(k) in
        term := Int64.logand !term (if (m lsr k) land 1 = 1 then w else Int64.lognot w)
      done;
      out := Int64.logor !out !term
    end
  done;
  !out

let eval_gate (g : N.gate) ws = eval_tt g.N.cell.Dfm_netlist.Cell.func ws

let run t ins =
  let values = Array.make (N.num_nets t.nl) 0L in
  List.iteri (fun i (_, nid) -> values.(nid) <- ins.(i)) t.ins;
  Array.iter
    (fun (nn : N.net) ->
      match nn.N.driver with
      | N.Const v -> values.(nn.N.net_id) <- (if v then -1L else 0L)
      | N.Pi _ | N.Gate_out _ -> ())
    t.nl.N.nets;
  let scratch = Array.make 8 0L in
  Array.iter
    (fun gid ->
      let g = t.nl.N.gates.(gid) in
      let n = Array.length g.N.fanins in
      for k = 0 to n - 1 do
        scratch.(k) <- values.(g.N.fanins.(k))
      done;
      (* [eval_tt] only reads the first [arity] entries of the scratch. *)
      values.(g.N.fanout) <- eval_tt g.N.cell.Dfm_netlist.Cell.func scratch)
    t.order;
  values

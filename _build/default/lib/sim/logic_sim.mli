(** Bit-parallel (64 patterns per word) logic simulation.

    The controllable points of the netlist ({!Dfm_netlist.Netlist.input_nets}:
    primary inputs and flip-flop Q nets, full-scan style) are driven with one
    64-bit word each; gate evaluation propagates whole words through the
    truth tables in topological order. *)

type t

val prepare : Dfm_netlist.Netlist.t -> t

val netlist : t -> Dfm_netlist.Netlist.t

val inputs : t -> (string * int) list
(** Labels and net ids of the controllable points, in word order. *)

val observes : t -> (string * int) list
(** Labels and net ids of the observable points. *)

val num_inputs : t -> int

val random_words : t -> Dfm_util.Rng.t -> int64 array
(** One fresh random word per controllable point. *)

val words_of_pattern : bool array -> int64 array
(** Broadcast a single pattern to all 64 bit positions. *)

val pattern_of_words : int64 array -> int -> bool array
(** Extract bit position [b] of each word as one pattern. *)

val run : t -> int64 array -> int64 array
(** [run t ins] simulates and returns one value word per net
    (indexed by net id). *)

val eval_gate : Dfm_netlist.Netlist.gate -> int64 array -> int64
(** Evaluate one gate's truth table over fanin words. *)

val topo : t -> int array
(** Cached topological order of combinational gates. *)

module N = Dfm_netlist.Netlist
module F = Dfm_faults.Fault
module Cell = Dfm_netlist.Cell

type t = {
  ls : Logic_sim.t;
  topo_pos : int array;     (* gate id -> position in topo order; -1 for seq *)
  is_observe : bool array;  (* per net *)
  (* Scratch state, reset after each fault: *)
  override_ : int64 array;  (* per net: faulty value when touched *)
  touched : bool array;     (* per net: override valid *)
  scheduled : bool array;   (* per gate *)
}

let prepare nl =
  let ls = Logic_sim.prepare nl in
  let topo = Logic_sim.topo ls in
  let topo_pos = Array.make (N.num_gates nl) (-1) in
  Array.iteri (fun pos gid -> topo_pos.(gid) <- pos) topo;
  let is_observe = Array.make (N.num_nets nl) false in
  List.iter (fun (_, n) -> is_observe.(n) <- true) (Logic_sim.observes ls);
  {
    ls;
    topo_pos;
    is_observe;
    override_ = Array.make (N.num_nets nl) 0L;
    touched = Array.make (N.num_nets nl) false;
    scheduled = Array.make (N.num_gates nl) false;
  }

let sim t = t.ls

let value t ~good n = if t.touched.(n) then t.override_.(n) else good.(n)

(* Activation word for a set of cell-input minterms at a gate. *)
let activation_word t ~good ~gate minterms =
  let nl = Logic_sim.netlist t.ls in
  let g = N.gate nl gate in
  let n = Array.length g.N.fanins in
  let acc = ref 0L in
  List.iter
    (fun m ->
      let term = ref (-1L) in
      for k = 0 to n - 1 do
        let w = good.(g.N.fanins.(k)) in
        term := Int64.logand !term (if (m lsr k) land 1 = 1 then w else Int64.lognot w)
      done;
      acc := Int64.logor !acc !term)
    minterms;
  !acc

(* Propagate seeded differences through the fanout cones and return the word
   of patterns with a difference at an observable point, plus the per-point
   difference words.  [pin_force] is an optional (gate, pin, word) triple
   overriding a single gate input. *)
let propagate_full t ~good ~seeds ~pin_force =
  let nl = Logic_sim.netlist t.ls in
  let heap : int Dfm_util.Heap.t = Dfm_util.Heap.create () in
  let touched_list = ref [] in
  let scheduled_list = ref [] in
  let detect = ref 0L in
  let per_point : (int, int64) Hashtbl.t = Hashtbl.create 8 in
  let set_net n w =
    if not t.touched.(n) then begin
      t.touched.(n) <- true;
      touched_list := n :: !touched_list
    end;
    t.override_.(n) <- w;
    if t.is_observe.(n) then begin
      let diff = Int64.logxor w good.(n) in
      Hashtbl.replace per_point n diff;
      detect := Int64.logor !detect diff
    end
  in
  let schedule_gate g =
    if t.topo_pos.(g) >= 0 && not t.scheduled.(g) then begin
      t.scheduled.(g) <- true;
      scheduled_list := g :: !scheduled_list;
      Dfm_util.Heap.push heap (float_of_int t.topo_pos.(g)) g
    end
  in
  List.iter
    (fun (n, w) ->
      if w <> good.(n) || true then begin
        set_net n w;
        if w <> good.(n) then
          List.iter (fun (g, _) -> schedule_gate g) (N.net nl n).N.sinks
      end)
    seeds;
  let scratch = Array.make 8 0L in
  let continue = ref true in
  while !continue do
    match Dfm_util.Heap.pop heap with
    | None -> continue := false
    | Some (_, gid) ->
        t.scheduled.(gid) <- false;
        let g = N.gate nl gid in
        let arity = Array.length g.N.fanins in
        for k = 0 to arity - 1 do
          scratch.(k) <- value t ~good g.N.fanins.(k)
        done;
        (match pin_force with
        | Some (fg, fp, w) when fg = gid -> scratch.(fp) <- w
        | Some _ | None -> ());
        let out = ref 0L in
        let f = g.N.cell.Cell.func in
        for m = 0 to (1 lsl arity) - 1 do
          if Dfm_logic.Truthtable.eval_index f m then begin
            let term = ref (-1L) in
            for k = 0 to arity - 1 do
              term :=
                Int64.logand !term
                  (if (m lsr k) land 1 = 1 then scratch.(k) else Int64.lognot scratch.(k))
            done;
            out := Int64.logor !out !term
          end
        done;
        let onet = g.N.fanout in
        if !out <> value t ~good onet then begin
          set_net onet !out;
          List.iter (fun (sg, _) -> schedule_gate sg) (N.net nl onet).N.sinks
        end
  done;
  (* Reset scratch state. *)
  List.iter (fun n -> t.touched.(n) <- false) !touched_list;
  List.iter (fun g -> t.scheduled.(g) <- false) !scheduled_list;
  let points =
    Hashtbl.fold (fun n w acc -> if w <> 0L then (n, w) :: acc else acc) per_point []
    |> List.sort compare
  in
  (!detect, points)

let propagate t ~good ~seeds ~pin_force =
  fst (propagate_full t ~good ~seeds ~pin_force)

let forced_word = function F.Sa0 -> 0L | F.Sa1 -> -1L

let is_seq_gate nl g = (N.gate nl g).N.cell.Cell.is_seq

(* Stuck-at component shared by stuck and transition faults. *)
let stuck_detect t ~good loc pol =
  let nl = Logic_sim.netlist t.ls in
  let w = forced_word pol in
  match loc with
  | F.On_net n -> propagate t ~good ~seeds:[ (n, w) ] ~pin_force:None
  | F.On_pin (g, pin) ->
      if is_seq_gate nl g then
        (* The flop captures the forced value; the scan-out difference is
           simply good-vs-forced on the D net. *)
        Int64.logxor good.((N.gate nl g).N.fanins.(pin)) w
      else begin
        (* Re-evaluate the host gate with the pin forced, then propagate from
           its output. *)
        let g' = N.gate nl g in
        let arity = Array.length g'.N.fanins in
        let scratch = Array.init arity (fun k -> good.(g'.N.fanins.(k))) in
        scratch.(pin) <- w;
        let out = Logic_sim.eval_gate g' scratch in
        if out = good.(g'.N.fanout) then 0L
        else propagate t ~good ~seeds:[ (g'.N.fanout, out) ] ~pin_force:(Some (g, pin, w))
      end

let transition_stuck = function
  | F.Slow_to_rise -> F.Sa0  (* frame 2: the site fails to rise *)
  | F.Slow_to_fall -> F.Sa1

let transition_init = function F.Slow_to_rise -> F.Sa0 | F.Slow_to_fall -> F.Sa1
(* Frame 1 must put the site at the initial (pre-transition) value:
   0 before a rise, 1 before a fall — the same polarity word as the
   frame-2 stuck-at. *)

let loc_net nl = function
  | F.On_net n -> n
  | F.On_pin (g, pin) -> (N.gate nl g).N.fanins.(pin)

let detect_word t ~good (f : F.t) =
  let nl = Logic_sim.netlist t.ls in
  match f.F.kind with
  | F.Stuck (loc, pol) -> stuck_detect t ~good loc pol
  | F.Transition (loc, tr) -> stuck_detect t ~good loc (transition_stuck tr)
  | F.Bridge (n1, n2, k) ->
      let a = good.(n1) and b = good.(n2) in
      let resolved =
        match k with F.Wired_and -> Int64.logand a b | F.Wired_or -> Int64.logor a b
      in
      if resolved = a && resolved = b then 0L
      else propagate t ~good ~seeds:[ (n1, resolved); (n2, resolved) ] ~pin_force:None
  | F.Internal (g, entry_idx) ->
      let gg = N.gate nl g in
      let u = Dfm_cellmodel.Udfm.for_cell gg.N.cell.Cell.name in
      let entry = List.nth u.Dfm_cellmodel.Udfm.entries entry_idx in
      let act = activation_word t ~good ~gate:g entry.Dfm_cellmodel.Udfm.activation in
      if act = 0L then 0L
      else if gg.N.cell.Cell.is_seq then
        (* Flop-internal defect: the corrupted captured value is observed
           directly on the scan path whenever the defect is activated. *)
        act
      else begin
        let flipped = Int64.logxor good.(gg.N.fanout) act in
        propagate t ~good ~seeds:[ (gg.N.fanout, flipped) ] ~pin_force:None
      end

(* Per-observable-point difference words; mirrors [detect_word] case by
   case. *)
let syndrome t ~good (f : F.t) =
  let nl = Logic_sim.netlist t.ls in
  let single net w = if w = 0L then [] else [ (net, w) ] in
  match f.F.kind with
  | F.Stuck (loc, pol) -> (
      let w = forced_word pol in
      match loc with
      | F.On_net n -> snd (propagate_full t ~good ~seeds:[ (n, w) ] ~pin_force:None)
      | F.On_pin (g, pin) ->
          if is_seq_gate nl g then begin
            let dnet = (N.gate nl g).N.fanins.(pin) in
            single dnet (Int64.logxor good.(dnet) w)
          end
          else begin
            let g' = N.gate nl g in
            let arity = Array.length g'.N.fanins in
            let scratch = Array.init arity (fun k -> good.(g'.N.fanins.(k))) in
            scratch.(pin) <- w;
            let out = Logic_sim.eval_gate g' scratch in
            if out = good.(g'.N.fanout) then []
            else
              snd
                (propagate_full t ~good ~seeds:[ (g'.N.fanout, out) ]
                   ~pin_force:(Some (g, pin, w)))
          end)
  | F.Transition (loc, tr) -> (
      (* frame-2 component only; gating by frame-1 is the caller's job *)
      let pol = transition_stuck tr in
      let w = forced_word pol in
      match loc with
      | F.On_net n -> snd (propagate_full t ~good ~seeds:[ (n, w) ] ~pin_force:None)
      | F.On_pin (g, pin) ->
          if is_seq_gate nl g then begin
            let dnet = (N.gate nl g).N.fanins.(pin) in
            single dnet (Int64.logxor good.(dnet) w)
          end
          else begin
            let g' = N.gate nl g in
            let arity = Array.length g'.N.fanins in
            let scratch = Array.init arity (fun k -> good.(g'.N.fanins.(k))) in
            scratch.(pin) <- w;
            let out = Logic_sim.eval_gate g' scratch in
            if out = good.(g'.N.fanout) then []
            else
              snd
                (propagate_full t ~good ~seeds:[ (g'.N.fanout, out) ]
                   ~pin_force:(Some (g, pin, w)))
          end)
  | F.Bridge (n1, n2, k) ->
      let a = good.(n1) and b = good.(n2) in
      let resolved =
        match k with F.Wired_and -> Int64.logand a b | F.Wired_or -> Int64.logor a b
      in
      if resolved = a && resolved = b then []
      else snd (propagate_full t ~good ~seeds:[ (n1, resolved); (n2, resolved) ] ~pin_force:None)
  | F.Internal (g, entry_idx) ->
      let gg = N.gate nl g in
      let u = Dfm_cellmodel.Udfm.for_cell gg.N.cell.Cell.name in
      let entry = List.nth u.Dfm_cellmodel.Udfm.entries entry_idx in
      let act = activation_word t ~good ~gate:g entry.Dfm_cellmodel.Udfm.activation in
      if act = 0L then []
      else if gg.N.cell.Cell.is_seq then single gg.N.fanins.(0) act
      else begin
        let flipped = Int64.logxor good.(gg.N.fanout) act in
        snd (propagate_full t ~good ~seeds:[ (gg.N.fanout, flipped) ] ~pin_force:None)
      end

let init_word t ~good (f : F.t) =
  let nl = Logic_sim.netlist t.ls in
  match f.F.kind with
  | F.Transition (loc, tr) ->
      let site = good.(loc_net nl loc) in
      (match transition_init tr with
      | F.Sa0 -> Int64.lognot site  (* patterns where the site is 0 *)
      | F.Sa1 -> site)
  | F.Stuck _ | F.Bridge _ | F.Internal _ -> -1L

lib/sim/logic_sim.ml: Array Dfm_logic Dfm_netlist Dfm_util Int64 List

lib/sim/logic_sim.mli: Dfm_netlist Dfm_util

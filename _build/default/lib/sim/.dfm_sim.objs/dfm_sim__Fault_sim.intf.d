lib/sim/fault_sim.mli: Dfm_faults Dfm_netlist Logic_sim

lib/sim/fault_sim.ml: Array Dfm_cellmodel Dfm_faults Dfm_logic Dfm_netlist Dfm_util Hashtbl Int64 List Logic_sim

(** Metal-density analysis over fixed windows.

    The die is divided into square windows and the routed metal area per
    layer is accumulated per window.  Foundry DFM guidelines recommend a
    density band per layer; windows below it risk dishing during CMP and
    windows above it risk shorts — the Density guideline category of the
    paper's Section IV. *)

type window = {
  win : Geom.rect;
  density : (Geom.layer * float) list;  (** metal area / window area *)
}

type t = { windows : window array; window_size : float }

val analyze : ?window_size:float -> Route.t -> t
(** Default window size 12 um, clamped so there are at least 2x2 windows. *)

val low_threshold : float
val high_threshold : float

type t = {
  die : Geom.rect;
  row_height : float;
  rows : int;
  row_capacity : float;
  utilization : float;
}

let create ?(utilization = 0.70) nl =
  let cell_area = Dfm_netlist.Netlist.total_area nl in
  let row_height = Dfm_netlist.Library.row_height nl.Dfm_netlist.Netlist.library in
  let die_area = cell_area /. utilization in
  let side = sqrt die_area in
  (* Snap the height to a whole number of rows. *)
  let rows = max 1 (int_of_float (ceil (side /. row_height))) in
  let height = float_of_int rows *. row_height in
  let width = die_area /. height in
  {
    die = { Geom.lx = 0.0; ly = 0.0; hx = width; hy = height };
    row_height;
    rows;
    row_capacity = width;
    utilization;
  }

let capacity_area t = float_of_int t.rows *. t.row_capacity *. t.row_height

let fits t ~cell_area = cell_area <= capacity_area t

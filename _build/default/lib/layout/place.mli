(** Row-based standard-cell placement inside a fixed floorplan.

    A breadth-first seeded initial placement (logic levels map to columns, so
    connected gates start near each other) is refined by simulated annealing
    on total half-perimeter wirelength (HPWL).  Placement fails — as the
    paper's [PDesign()] can — when the netlist's cell area no longer fits
    the frozen floorplan. *)

exception Does_not_fit of string

type t = {
  fp : Floorplan.t;
  nl : Dfm_netlist.Netlist.t;
  row_of : int array;     (** gate id -> row index *)
  x_of : float array;     (** gate id -> left edge *)
  pin_of_pi : Geom.point array;  (** PI pad locations (west edge) *)
  pin_of_po : Geom.point array;  (** PO pad locations (east edge) *)
}

val place :
  ?seed:int -> ?sa_moves:int -> ?previous:t -> Dfm_netlist.Netlist.t -> Floorplan.t -> t
(** @raise Does_not_fit when the area constraint is violated.

    With [previous], placement is incremental (ECO style): gates present in
    the previous placement (matched by instance name) stay in their row and
    relative order, only the gates introduced by resynthesis are placed into
    the rows with the most slack, and no annealing is run.  This mirrors how
    the paper's [PDesign()] preserves the floorplan and disturbs the layout
    as little as possible. *)

val gate_center : t -> int -> Geom.point

val net_pins : t -> int -> Geom.point list
(** All pin locations of a net (driver output, sink inputs, pads). *)

val net_hpwl : t -> int -> float

val total_hpwl : t -> float

val check_legal : t -> unit
(** @raise Failure if any row overflows or cells overlap. *)

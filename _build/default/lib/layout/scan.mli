(** Scan-chain stitching.

    The full-scan assumption behind every analysis in this project implies a
    physical scan chain through the flip-flops.  The chain is stitched in
    placement order (a row-major serpentine, the standard low-wirelength
    heuristic) and its length is what turns a test-pattern count |T| into
    tester time — the cost the paper's Section I argues must not explode,
    and the reason it resynthesizes instead of just adding patterns. *)

type t = {
  order : int list;        (** gate ids of the flip-flops, scan-in → scan-out *)
  wirelength : float;      (** estimated stitching wirelength, um *)
  chain_length : int;
}

val stitch : Place.t -> t
(** Serpentine over (row, x) positions of the sequential cells. *)

val test_cycles : t -> patterns:int -> int
(** Scan cycles to apply a test set: [(patterns + 1) * (chain_length + 1)]
    (load/unload overlapped, one capture per pattern). *)

val test_time_ms : t -> patterns:int -> shift_mhz:float -> float

type point = { x : float; y : float }

type rect = { lx : float; ly : float; hx : float; hy : float }

let rect_width r = r.hx -. r.lx
let rect_height r = r.hy -. r.ly
let rect_area r = rect_width r *. rect_height r
let contains r p = p.x >= r.lx && p.x <= r.hx && p.y >= r.ly && p.y <= r.hy

let overlap a b = a.lx < b.hx && b.lx < a.hx && a.ly < b.hy && b.ly < a.hy

type layer = M1 | M2 | M3

let layer_to_string = function M1 -> "M1" | M2 -> "M2" | M3 -> "M3"

type segment = {
  seg_net : int;
  seg_layer : layer;
  seg_a : point;
  seg_b : point;
  seg_width : float;
}

let segment_length s = Float.abs (s.seg_b.x -. s.seg_a.x) +. Float.abs (s.seg_b.y -. s.seg_a.y)

type via = {
  via_net : int;
  via_at : point;
  via_lower : layer;
  via_redundant : bool;
  via_sink : (int * int) option;
}

let dist a b = Float.hypot (a.x -. b.x) (a.y -. b.y)

let ordered a b = if a <= b then (a, b) else (b, a)

let segments_parallel_gap s1 s2 =
  if s1.seg_layer <> s2.seg_layer then None
  else begin
    let h1 = s1.seg_a.y = s1.seg_b.y and h2 = s2.seg_a.y = s2.seg_b.y in
    if h1 && h2 then begin
      (* Horizontal pair: spans must overlap in x. *)
      let a1, b1 = ordered s1.seg_a.x s1.seg_b.x and a2, b2 = ordered s2.seg_a.x s2.seg_b.x in
      if Float.min b1 b2 > Float.max a1 a2 then
        Some (Float.abs (s1.seg_a.y -. s2.seg_a.y) -. ((s1.seg_width +. s2.seg_width) /. 2.0))
      else None
    end
    else if (not h1) && not h2 then begin
      let a1, b1 = ordered s1.seg_a.y s1.seg_b.y and a2, b2 = ordered s2.seg_a.y s2.seg_b.y in
      if Float.min b1 b2 > Float.max a1 a2 then
        Some (Float.abs (s1.seg_a.x -. s2.seg_a.x) -. ((s1.seg_width +. s2.seg_width) /. 2.0))
      else None
    end
    else None
  end

(** Design-rule checking.

    Design *rules* are the hard legality constraints (unlike DFM
    *guidelines*, which are recommendations — Section I of the paper).  The
    paper reports that every resynthesized layout closed "within the
    original floorplans without design rule violations"; this checker
    establishes the same property for the layouts produced here.

    Rules checked as errors:
    - R1: every metal segment at least the minimum width (0.22 um);
    - R2: all routed geometry inside the die;
    - R3: standard cells inside their rows, non-overlapping (placement
      legality);
    - R4: every via sits on routed geometry of its own net;
    - R5: a net's segments are electrically connected to its pins.

    Same-track crossings between nets are inherent to the global-routing
    abstraction (a detailed router would assign distinct tracks) and are
    reported as warnings, not errors. *)

type severity = Error | Warning

type violation = {
  rule : string;         (** e.g. ["R1-min-width"] *)
  severity : severity;
  at : Geom.point;
  detail : string;
}

type report = {
  violations : violation list;
  errors : int;
  warnings : int;
}

val min_width : float

val check : Route.t -> report

val clean : report -> bool
(** No errors (warnings allowed). *)

(** Layout geometry primitives shared by placement, routing and the DFM
    guideline scanner.  Dimensions are in micrometers of the modeled 0.18um
    process. *)

type point = { x : float; y : float }

type rect = { lx : float; ly : float; hx : float; hy : float }

val rect_width : rect -> float
val rect_height : rect -> float
val rect_area : rect -> float
val contains : rect -> point -> bool
val overlap : rect -> rect -> bool

type layer = M1 | M2 | M3
(** M1: intra-cell / pin hookups (horizontal); M2: vertical routing;
    M3: horizontal routing. *)

val layer_to_string : layer -> string

type segment = {
  seg_net : int;       (** net id *)
  seg_layer : layer;
  seg_a : point;
  seg_b : point;       (** axis-parallel: a.x = b.x or a.y = b.y *)
  seg_width : float;
}

val segment_length : segment -> float

type via = {
  via_net : int;
  via_at : point;
  via_lower : layer;   (** connects [via_lower] to the layer above *)
  via_redundant : bool; (** doubled via (immune to single-via opens) *)
  via_sink : (int * int) option;
      (** the (gate, pin) this via serves when it sits on a branch to one
          specific sink; [None] for driver-side and pad vias *)
}

val dist : point -> point -> float

val segments_parallel_gap : segment -> segment -> float option
(** For two parallel same-layer segments whose spans overlap, their
    edge-to-edge distance; [None] otherwise. *)

module N = Dfm_netlist.Netlist
module Cell = Dfm_netlist.Cell
module Rng = Dfm_util.Rng

exception Does_not_fit of string

type t = {
  fp : Floorplan.t;
  nl : N.t;
  row_of : int array;
  x_of : float array;
  pin_of_pi : Geom.point array;
  pin_of_po : Geom.point array;
}

let gate_width (nl : N.t) gid = nl.N.gates.(gid).N.cell.Cell.width

let gate_center t gid =
  let g = t.nl.N.gates.(gid) in
  {
    Geom.x = t.x_of.(gid) +. (g.N.cell.Cell.width /. 2.0);
    Geom.y = (float_of_int t.row_of.(gid) +. 0.5) *. t.fp.Floorplan.row_height;
  }

let edge_pins die n east =
  let h = Geom.rect_height die in
  Array.init n (fun i ->
      {
        Geom.x = (if east then die.Geom.hx else die.Geom.lx);
        Geom.y = die.Geom.ly +. (h *. (float_of_int i +. 1.0) /. (float_of_int n +. 1.0));
      })

let net_pins t nid =
  let nn = t.nl.N.nets.(nid) in
  let driver =
    match nn.N.driver with
    | N.Gate_out g -> [ gate_center t g ]
    | N.Pi k -> [ t.pin_of_pi.(k) ]
    | N.Const _ -> []
  in
  let sinks = List.map (fun (g, _) -> gate_center t g) nn.N.sinks in
  let pads =
    Array.to_list t.pin_of_po
    |> List.filteri (fun k _ -> snd t.nl.N.pos.(k) = nid)
  in
  driver @ sinks @ pads

let hpwl_of_pins = function
  | [] | [ _ ] -> 0.0
  | pins ->
      let xs = List.map (fun (p : Geom.point) -> p.Geom.x) pins in
      let ys = List.map (fun (p : Geom.point) -> p.Geom.y) pins in
      let mn = List.fold_left Float.min infinity and mx = List.fold_left Float.max neg_infinity in
      mx xs -. mn xs +. (mx ys -. mn ys)

let net_hpwl t nid = hpwl_of_pins (net_pins t nid)

let total_hpwl t =
  let acc = ref 0.0 in
  Array.iter (fun (nn : N.net) -> acc := !acc +. net_hpwl t nn.N.net_id) t.nl.N.nets;
  !acc

(* Re-pack one row: cells keep their order, x = running sum plus an even
   share of the slack so the row spreads across the floorplan. *)
let repack t (rows : int list array) r =
  let members = rows.(r) in
  let used = List.fold_left (fun acc g -> acc +. gate_width t.nl g) 0.0 members in
  let n = List.length members in
  let slack = Float.max 0.0 (t.fp.Floorplan.row_capacity -. used) in
  let gap = if n = 0 then 0.0 else slack /. float_of_int (n + 1) in
  let x = ref gap in
  List.iter
    (fun g ->
      t.x_of.(g) <- !x;
      x := !x +. gate_width t.nl g +. gap)
    members

(* ECO placement: keep named gates where they were, slot new gates into the
   emptiest rows, re-pack. *)
let place_incremental (prev : t) nl fp =
  let ngates = N.num_gates nl in
  let t =
    {
      fp;
      nl;
      row_of = Array.make ngates 0;
      x_of = Array.make ngates 0.0;
      pin_of_pi = edge_pins fp.Floorplan.die (Array.length nl.N.pis) false;
      pin_of_po = edge_pins fp.Floorplan.die (Array.length nl.N.pos) true;
    }
  in
  let prev_pos = Hashtbl.create 256 in
  Array.iter
    (fun (g : N.gate) ->
      Hashtbl.replace prev_pos g.N.gate_name (prev.row_of.(g.N.gate_id), prev.x_of.(g.N.gate_id)))
    prev.nl.N.gates;
  let rows = Array.make fp.Floorplan.rows [] in  (* (sort key, gate) lists *)
  let used = Array.make fp.Floorplan.rows 0.0 in
  let newcomers = ref [] in
  let placed = Array.make ngates false in
  Array.iter
    (fun (g : N.gate) ->
      match Hashtbl.find_opt prev_pos g.N.gate_name with
      | Some (r, x) ->
          rows.(r) <- (x, g.N.gate_id) :: rows.(r);
          used.(r) <- used.(r) +. gate_width nl g.N.gate_id;
          t.row_of.(g.N.gate_id) <- r;
          t.x_of.(g.N.gate_id) <- x;
          placed.(g.N.gate_id) <- true
      | None -> newcomers := g.N.gate_id :: !newcomers)
    nl.N.gates;
  (* Place each new gate near the centroid of its already-placed neighbours
     (fanin drivers and fanout sinks), searching outward for a row with
     space, so resynthesized logic lands where the logic it replaced was. *)
  let neighbour_centroid gid =
    let g = nl.N.gates.(gid) in
    let pts = ref [] in
    Array.iter
      (fun fn ->
        match (N.net nl fn).N.driver with
        | N.Gate_out d when placed.(d) -> pts := (t.row_of.(d), t.x_of.(d)) :: !pts
        | N.Gate_out _ | N.Pi _ | N.Const _ -> ())
      g.N.fanins;
    List.iter
      (fun (sg, _) -> if placed.(sg) then pts := (t.row_of.(sg), t.x_of.(sg)) :: !pts)
      (N.net nl g.N.fanout).N.sinks;
    match !pts with
    | [] -> (fp.Floorplan.rows / 2, fp.Floorplan.row_capacity /. 2.0)
    | pts ->
        let n = float_of_int (List.length pts) in
        let ry = List.fold_left (fun a (r, _) -> a +. float_of_int r) 0.0 pts /. n in
        let rx = List.fold_left (fun a (_, x) -> a +. x) 0.0 pts /. n in
        (int_of_float (Float.round ry), rx)
  in
  List.iter
    (fun gid ->
      let w = gate_width nl gid in
      let want_row, want_x = neighbour_centroid gid in
      let best = ref (-1) in
      let delta = ref 0 in
      while !best < 0 && !delta < fp.Floorplan.rows do
        let try_r r =
          if r >= 0 && r < fp.Floorplan.rows && !best < 0
             && used.(r) +. w <= fp.Floorplan.row_capacity
          then best := r
        in
        try_r (want_row - !delta);
        try_r (want_row + !delta);
        incr delta
      done;
      if !best < 0 then raise (Does_not_fit "incremental placement: no row fits new gate");
      rows.(!best) <- (want_x, gid) :: rows.(!best);
      used.(!best) <- used.(!best) +. w;
      t.row_of.(gid) <- !best;
      t.x_of.(gid) <- want_x;
      placed.(gid) <- true)
    (List.sort compare !newcomers);
  let ordered_rows =
    Array.map
      (fun members -> List.sort compare members |> List.map snd)
      rows
  in
  for r = 0 to fp.Floorplan.rows - 1 do
    repack t ordered_rows r
  done;
  t

let place ?(seed = 11) ?sa_moves ?previous nl fp =
  let ngates = N.num_gates nl in
  let cell_area = N.total_area nl in
  if not (Floorplan.fits fp ~cell_area) then
    raise
      (Does_not_fit
         (Printf.sprintf "cell area %.1f exceeds floorplan capacity %.1f" cell_area
            (Floorplan.capacity_area fp)));
  match previous with
  | Some prev ->
      ignore seed;
      ignore sa_moves;
      place_incremental prev nl fp
  | None ->
      let rng = Rng.create seed in
      let t =
        {
          fp;
          nl;
          row_of = Array.make ngates 0;
          x_of = Array.make ngates 0.0;
          pin_of_pi = edge_pins fp.Floorplan.die (Array.length nl.N.pis) false;
          pin_of_po = edge_pins fp.Floorplan.die (Array.length nl.N.pos) true;
        }
      in
      (* Initial placement: snake-fill rows in topological order so connected
         logic starts out close together.  Leave 8% headroom per row for the
         annealer to move cells across rows. *)
      let rows = Array.make fp.Floorplan.rows [] in
      let used = Array.make fp.Floorplan.rows 0.0 in
      let order =
        Array.to_list (N.topo_order nl)
        @ List.map (fun (g : N.gate) -> g.N.gate_id) (N.seq_gates nl)
      in
      let headroom = 0.92 in
      let r = ref 0 and dir = ref 1 in
      List.iter
        (fun gid ->
          let w = gate_width nl gid in
          let try_row () =
            if used.(!r) +. w <= (fp.Floorplan.row_capacity *. headroom) || used.(!r) = 0.0 then true
            else false
          in
          let attempts = ref 0 in
          while (not (try_row ())) && !attempts < fp.Floorplan.rows do
            incr attempts;
            let nr = !r + !dir in
            if nr < 0 || nr >= fp.Floorplan.rows then begin
              dir := - !dir;
              r := !r + !dir
            end
            else r := nr
          done;
          if used.(!r) +. w > fp.Floorplan.row_capacity && used.(!r) > 0.0 then begin
            (* fall back to the emptiest row *)
            let best = ref 0 in
            for i = 1 to fp.Floorplan.rows - 1 do
              if used.(i) < used.(!best) then best := i
            done;
            r := !best
          end;
          if used.(!r) +. w > fp.Floorplan.row_capacity then
            raise (Does_not_fit "row overflow during initial placement");
          rows.(!r) <- gid :: rows.(!r);
          used.(!r) <- used.(!r) +. w;
          t.row_of.(gid) <- !r)
        order;
      Array.iteri (fun i members -> rows.(i) <- List.rev members) rows;
      for i = 0 to fp.Floorplan.rows - 1 do
        repack t rows i
      done;
      (* Simulated annealing on HPWL with pairwise swaps. *)
      let nets_of_gate gid =
        let g = nl.N.gates.(gid) in
        List.sort_uniq compare (g.N.fanout :: Array.to_list g.N.fanins)
      in
      let cost_of nets = List.fold_left (fun acc n -> acc +. net_hpwl t n) 0.0 nets in
      let moves = match sa_moves with Some m -> m | None -> 24 * ngates in
      if ngates >= 2 then begin
        let temperature = ref (0.15 *. Geom.rect_width fp.Floorplan.die) in
        let cooling = exp (log 0.02 /. float_of_int (max moves 1)) in
        for _ = 1 to moves do
          let g1 = Rng.int rng ngates and g2 = Rng.int rng ngates in
          if g1 <> g2 then begin
            let r1 = t.row_of.(g1) and r2 = t.row_of.(g2) in
            let w1 = gate_width nl g1 and w2 = gate_width nl g2 in
            let fits =
              r1 = r2
              || used.(r1) -. w1 +. w2 <= fp.Floorplan.row_capacity
                 && used.(r2) -. w2 +. w1 <= fp.Floorplan.row_capacity
            in
            if fits then begin
              let nets = List.sort_uniq compare (nets_of_gate g1 @ nets_of_gate g2) in
              let before = cost_of nets in
              (* swap *)
              let swap () =
                let i1 = t.row_of.(g1) and i2 = t.row_of.(g2) in
                let exchange = List.map (fun g -> if g = g1 then g2 else if g = g2 then g1 else g) in
                rows.(i1) <- exchange rows.(i1);
                if i2 <> i1 then rows.(i2) <- exchange rows.(i2);
                t.row_of.(g1) <- i2;
                t.row_of.(g2) <- i1;
                used.(i1) <- used.(i1) -. w1 +. w2;
                used.(i2) <- used.(i2) -. w2 +. w1;
                repack t rows i1;
                if i2 <> i1 then repack t rows i2
              in
              swap ();
              let after = cost_of nets in
              let delta = after -. before in
              let accept = delta <= 0.0 || Rng.float rng 1.0 < exp (-.delta /. !temperature) in
              if not accept then swap ()
            end
          end;
          temperature := !temperature *. cooling
        done
      end;
      t

let check_legal t =
  let fp = t.fp in
  let per_row = Array.make fp.Floorplan.rows [] in
  Array.iteri
    (fun gid r ->
      if r < 0 || r >= fp.Floorplan.rows then failwith "Place.check_legal: bad row";
      per_row.(r) <- gid :: per_row.(r))
    t.row_of;
  Array.iter
    (fun members ->
      let sorted = List.sort (fun a b -> compare t.x_of.(a) t.x_of.(b)) members in
      let rec walk = function
        | [] | [ _ ] -> ()
        | a :: (b :: _ as rest) ->
            if t.x_of.(a) +. gate_width t.nl a > t.x_of.(b) +. 1e-6 then
              failwith "Place.check_legal: overlap";
            walk rest
      in
      walk sorted;
      List.iter
        (fun g ->
          if t.x_of.(g) < -1e-6 || t.x_of.(g) +. gate_width t.nl g > fp.Floorplan.row_capacity +. 1e-6
          then failwith "Place.check_legal: outside row")
        members)
    per_row

(** Fixed floorplans.

    The paper keeps the die area of the resynthesized circuit identical to
    the original design (same floorplan); the floorplan is created once from
    the original netlist at a given core utilization (70% in Section IV) and
    every subsequent physical-design run must fit inside it. *)

type t = {
  die : Geom.rect;
  row_height : float;
  rows : int;
  row_capacity : float;  (** usable width per row, um *)
  utilization : float;   (** target utilization it was created with *)
}

val create : ?utilization:float -> Dfm_netlist.Netlist.t -> t
(** Near-square die sized so that the netlist's total cell area fills
    [utilization] (default 0.70) of it. *)

val fits : t -> cell_area:float -> bool
(** Whether a design of the given total cell area can be placed (area no
    larger than the row capacity). *)

val capacity_area : t -> float

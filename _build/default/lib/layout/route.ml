module N = Dfm_netlist.Netlist
module Rng = Dfm_util.Rng

type t = {
  place : Place.t;
  segments : Geom.segment array;
  vias : Geom.via array;
  net_length : float array;
}

let recommended_width = 0.28

(* Routing tracks: coordinates snap to a 0.5 um pitch, as a track-based
   router would.  Adjacent tracks then sit 0.5 um apart center-to-center —
   below the recommended (width + spacing) pitch, so parallel runs on
   neighbouring tracks are exactly the tight-spacing contexts the Metal
   guidelines flag. *)
let track_pitch = 0.5

let snap x = Float.round (x /. track_pitch) *. track_pitch

(* Routing decisions (width squeezes, via doubling) are keyed by stable
   names — net and sink names — rather than drawn from a sequential stream,
   so an unchanged net keeps its exact geometry decisions when unrelated
   parts of the netlist are resynthesized. *)
let det key salt p = Rng.float (Rng.of_name (key ^ "#" ^ string_of_int salt)) 1.0 < p

let route ?(seed = 23) (pl : Place.t) =
  let nl = pl.Place.nl in
  ignore seed;
  let segments = ref [] and vias = ref [] in
  let net_length = Array.make (N.num_nets nl) 0.0 in
  let emit_segment net layer (a : Geom.point) (b : Geom.point) width =
    if Geom.dist a b > 1e-9 then begin
      let s = { Geom.seg_net = net; seg_layer = layer; seg_a = a; seg_b = b; seg_width = width } in
      segments := s :: !segments;
      net_length.(net) <- net_length.(net) +. Geom.segment_length s
    end
  in
  let emit_via ?sink net at lower redundant =
    vias :=
      { Geom.via_net = net; via_at = at; via_lower = lower; via_redundant = redundant;
        via_sink = sink }
      :: !vias
  in
  Array.iter
    (fun (nn : N.net) ->
      let nid = nn.N.net_id in
      let driver =
        match nn.N.driver with
        | N.Gate_out g -> Some (Place.gate_center pl g)
        | N.Pi k -> Some pl.Place.pin_of_pi.(k)
        | N.Const _ -> None
      in
      match driver with
      | None -> ()
      | Some d ->
          let net_name = nn.N.net_name in
          let sinks =
            List.map
              (fun (g, pin) ->
                let key =
                  Printf.sprintf "%s>%s.%d" net_name nl.N.gates.(g).N.gate_name pin
                in
                (Place.gate_center pl g, Some (g, pin), key))
              nn.N.sinks
            @ (Array.to_list pl.Place.pin_of_po
              |> List.filteri (fun k _ -> snd nl.N.pos.(k) = nid)
              |> List.mapi (fun k p -> (p, None, Printf.sprintf "%s>pad%d" net_name k)))
          in
          if sinks <> [] then begin
            let fanout = List.length sinks in
            (* Wider trunks for high fanout; squeezed widths and single vias
               in a fraction of spots, as real routers do under congestion. *)
            let base_width =
              if fanout > 4 then recommended_width +. 0.14
              else if det net_name 1 0.26 then 0.24
              else if det net_name 2 0.14 then 0.22
              else recommended_width
            in
            emit_via nid d Geom.M1 (det net_name 3 0.5);
            let d = { Geom.x = snap d.Geom.x; y = d.Geom.y } in
            List.iter
              (fun ((s : Geom.point), sink, key) ->
                let s = { Geom.x = s.Geom.x; y = snap s.Geom.y } in
                let bend = { Geom.x = d.Geom.x; y = s.Geom.y } in
                let w =
                  if det key 4 0.22 then Float.max 0.22 (base_width -. 0.06) else base_width
                in
                emit_segment nid Geom.M2 d bend w;
                emit_segment nid Geom.M3 bend s w;
                if Geom.dist d bend > 1e-9 && Geom.dist bend s > 1e-9 then
                  emit_via ?sink nid bend Geom.M2 (det key 5 0.5);
                emit_via ?sink nid s Geom.M1 (det key 6 0.5))
              sinks
          end)
    nl.N.nets;
  {
    place = pl;
    segments = Array.of_list (List.rev !segments);
    vias = Array.of_list (List.rev !vias);
    net_length;
  }

let total_wirelength t = Array.fold_left ( +. ) 0.0 t.net_length

let seg_bbox (s : Geom.segment) =
  let lx = Float.min s.Geom.seg_a.Geom.x s.Geom.seg_b.Geom.x
  and hx = Float.max s.Geom.seg_a.Geom.x s.Geom.seg_b.Geom.x
  and ly = Float.min s.Geom.seg_a.Geom.y s.Geom.seg_b.Geom.y
  and hy = Float.max s.Geom.seg_a.Geom.y s.Geom.seg_b.Geom.y in
  { Geom.lx; ly = ly -. (s.Geom.seg_width /. 2.0); hx; hy = hy +. (s.Geom.seg_width /. 2.0) }

let nets_in_window t w =
  Array.to_list t.segments
  |> List.filter_map (fun s -> if Geom.overlap (seg_bbox s) w then Some s.Geom.seg_net else None)
  |> List.sort_uniq compare

lib/layout/drc.mli: Geom Route

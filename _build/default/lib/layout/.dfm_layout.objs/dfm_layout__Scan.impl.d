lib/layout/scan.ml: Array Dfm_netlist Geom Hashtbl List Place

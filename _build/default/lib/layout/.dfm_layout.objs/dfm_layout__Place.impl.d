lib/layout/place.ml: Array Dfm_netlist Dfm_util Float Floorplan Geom Hashtbl List Printf

lib/layout/drc.ml: Array Dfm_netlist Float Floorplan Geom Hashtbl List Place Printf Route

lib/layout/route.ml: Array Dfm_netlist Dfm_util Float Geom List Place Printf

lib/layout/density.ml: Array Float Floorplan Geom List Place Route

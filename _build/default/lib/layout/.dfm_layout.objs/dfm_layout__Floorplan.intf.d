lib/layout/floorplan.mli: Dfm_netlist Geom

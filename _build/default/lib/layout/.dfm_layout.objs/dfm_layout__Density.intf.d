lib/layout/density.mli: Geom Route

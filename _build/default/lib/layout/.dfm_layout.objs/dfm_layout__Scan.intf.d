lib/layout/scan.mli: Place

lib/layout/place.mli: Dfm_netlist Floorplan Geom

lib/layout/geom.ml: Float

lib/layout/floorplan.ml: Dfm_netlist Geom

lib/layout/geom.mli:

module N = Dfm_netlist.Netlist

type severity = Error | Warning

type violation = {
  rule : string;
  severity : severity;
  at : Geom.point;
  detail : string;
}

type report = {
  violations : violation list;
  errors : int;
  warnings : int;
}

let min_width = 0.22

let check (rt : Route.t) =
  let pl = rt.Route.place in
  let die = pl.Place.fp.Floorplan.die in
  let violations = ref [] in
  let add rule severity at detail = violations := { rule; severity; at; detail } :: !violations in
  (* R1 / R2: per-segment width and bounds. *)
  Array.iter
    (fun (s : Geom.segment) ->
      if s.Geom.seg_width < min_width -. 1e-9 then
        add "R1-min-width" Error s.Geom.seg_a
          (Printf.sprintf "net %d: width %.3f < %.2f" s.Geom.seg_net s.Geom.seg_width min_width);
      let inside (p : Geom.point) =
        p.Geom.x >= die.Geom.lx -. 1e-6
        && p.Geom.x <= die.Geom.hx +. 1e-6
        && p.Geom.y >= die.Geom.ly -. 1e-6
        && p.Geom.y <= die.Geom.hy +. 1e-6
      in
      if not (inside s.Geom.seg_a && inside s.Geom.seg_b) then
        add "R2-off-die" Error s.Geom.seg_a (Printf.sprintf "net %d leaves the die" s.Geom.seg_net))
    rt.Route.segments;
  (* R3: placement legality. *)
  (try Place.check_legal pl
   with Failure msg -> add "R3-placement" Error { Geom.x = 0.0; y = 0.0 } msg);
  (* R4: vias on their net's geometry (a segment endpoint or a pin). *)
  let endpoints = Hashtbl.create 1024 in
  let key net (p : Geom.point) =
    (net, Float.round (p.Geom.x *. 1000.0), Float.round (p.Geom.y *. 1000.0))
  in
  Array.iter
    (fun (s : Geom.segment) ->
      Hashtbl.replace endpoints (key s.Geom.seg_net s.Geom.seg_a) ();
      Hashtbl.replace endpoints (key s.Geom.seg_net s.Geom.seg_b) ())
    rt.Route.segments;
  Array.iter
    (fun (v : Geom.via) ->
      if not (Hashtbl.mem endpoints (key v.Geom.via_net v.Geom.via_at)) then
        (* A pin location also qualifies. *)
        let on_pin =
          List.exists
            (fun (p : Geom.point) -> Geom.dist p v.Geom.via_at < 1e-6)
            (Place.net_pins pl v.Geom.via_net)
        in
        if not on_pin then
          add "R4-floating-via" Error v.Geom.via_at
            (Printf.sprintf "net %d: via not on its net's geometry" v.Geom.via_net))
    rt.Route.vias;
  (* R5: every sink pin of a routed net touches the net's geometry. *)
  Array.iter
    (fun (nn : N.net) ->
      match nn.N.driver with
      | N.Const _ -> ()
      | N.Pi _ | N.Gate_out _ ->
          if nn.N.sinks <> [] then
            List.iter
              (fun (g, _) ->
                let p = Place.gate_center pl g in
                let touched =
                  Array.exists
                    (fun (s : Geom.segment) ->
                      s.Geom.seg_net = nn.N.net_id
                      && (Geom.dist s.Geom.seg_a p < 1e-6 || Geom.dist s.Geom.seg_b p < 1e-6))
                    rt.Route.segments
                  || Array.exists
                       (fun (v : Geom.via) ->
                         v.Geom.via_net = nn.N.net_id && Geom.dist v.Geom.via_at p < 1e-6)
                       rt.Route.vias
                in
                if not touched then
                  add "R5-open-pin" Error p
                    (Printf.sprintf "net %s misses sink gate %d" nn.N.net_name g))
              nn.N.sinks)
    pl.Place.nl.N.nets;
  (* Warnings: same-layer different-net geometric conflicts (track sharing
     at the global-routing abstraction). *)
  let buckets = Hashtbl.create 1024 in
  let bucket_of (s : Geom.segment) =
    let coord =
      match s.Geom.seg_layer with
      | Geom.M2 -> s.Geom.seg_a.Geom.x
      | Geom.M3 | Geom.M1 -> s.Geom.seg_a.Geom.y
    in
    (s.Geom.seg_layer, Float.round (coord *. 1000.0))
  in
  Array.iter
    (fun s ->
      let k = bucket_of s in
      Hashtbl.replace buckets k (s :: (try Hashtbl.find buckets k with Not_found -> [])))
    rt.Route.segments;
  Hashtbl.iter
    (fun _ segs ->
      let rec pairs = function
        | (s1 : Geom.segment) :: rest ->
            List.iter
              (fun (s2 : Geom.segment) ->
                if s1.Geom.seg_net < s2.Geom.seg_net then
                  match Geom.segments_parallel_gap s1 s2 with
                  | Some gap when gap <= 0.01 ->
                      add "W1-track-share" Warning s1.Geom.seg_a
                        (Printf.sprintf "nets %d/%d share a track" s1.Geom.seg_net s2.Geom.seg_net)
                  | Some _ | None -> ())
              rest;
            pairs rest
        | [] -> ()
      in
      pairs segs)
    buckets;
  let violations = List.rev !violations in
  {
    violations;
    errors = List.length (List.filter (fun v -> v.severity = Error) violations);
    warnings = List.length (List.filter (fun v -> v.severity = Warning) violations);
  }

let clean r = r.errors = 0

(** Global routing: star-topology L-shaped routes over three metal layers.

    Each net is routed from its driver pin to every sink pin with a vertical
    M2 run and a horizontal M3 run, with via (stacks) at the driver, the
    bend, and the sink.  The router models the usual manufacturing-closure
    compromises that DFM guidelines exist to discourage: in tighter spots it
    uses sub-recommended wire widths and single (non-redundant) vias; the
    guideline scanner in [dfm_guidelines] then finds exactly those spots. *)

type t = {
  place : Place.t;
  segments : Geom.segment array;
  vias : Geom.via array;
  net_length : float array;  (** routed length per net id *)
}

val route : ?seed:int -> Place.t -> t

val total_wirelength : t -> float

val nets_in_window : t -> Geom.rect -> int list
(** Nets with routed geometry intersecting a window (used by density
    guidelines to attribute violations to nets). *)

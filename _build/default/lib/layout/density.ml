type window = {
  win : Geom.rect;
  density : (Geom.layer * float) list;
}

type t = { windows : window array; window_size : float }

let low_threshold = 0.02
let high_threshold = 0.25

let analyze ?(window_size = 12.0) (rt : Route.t) =
  let die = rt.Route.place.Place.fp.Floorplan.die in
  let w = Geom.rect_width die and h = Geom.rect_height die in
  let ws = Float.min window_size (Float.min (w /. 2.0) (h /. 2.0)) in
  let nx = max 2 (int_of_float (ceil (w /. ws))) in
  let ny = max 2 (int_of_float (ceil (h /. ws))) in
  let area = Array.init 3 (fun _ -> Array.make_matrix nx ny 0.0) in
  let layer_idx = function Geom.M1 -> 0 | Geom.M2 -> 1 | Geom.M3 -> 2 in
  (* Spread each segment's metal area over the windows it crosses. *)
  Array.iter
    (fun (s : Geom.segment) ->
      let len = Geom.segment_length s in
      if len > 1e-9 then begin
        let steps = max 1 (int_of_float (ceil (len /. (ws /. 2.0)))) in
        let metal_per_step = len *. s.Geom.seg_width /. float_of_int steps in
        for k = 0 to steps - 1 do
          let f = (float_of_int k +. 0.5) /. float_of_int steps in
          let px = s.Geom.seg_a.Geom.x +. (f *. (s.Geom.seg_b.Geom.x -. s.Geom.seg_a.Geom.x)) in
          let py = s.Geom.seg_a.Geom.y +. (f *. (s.Geom.seg_b.Geom.y -. s.Geom.seg_a.Geom.y)) in
          let ix = min (nx - 1) (max 0 (int_of_float (px /. w *. float_of_int nx))) in
          let iy = min (ny - 1) (max 0 (int_of_float (py /. h *. float_of_int ny))) in
          area.(layer_idx s.Geom.seg_layer).(ix).(iy) <-
            area.(layer_idx s.Geom.seg_layer).(ix).(iy) +. metal_per_step
        done
      end)
    rt.Route.segments;
  let wx = w /. float_of_int nx and wy = h /. float_of_int ny in
  let windows = ref [] in
  for ix = nx - 1 downto 0 do
    for iy = ny - 1 downto 0 do
      let win =
        {
          Geom.lx = float_of_int ix *. wx;
          ly = float_of_int iy *. wy;
          hx = float_of_int (ix + 1) *. wx;
          hy = float_of_int (iy + 1) *. wy;
        }
      in
      let wa = Geom.rect_area win in
      let density =
        (* Overlapping trunks deposit metal on the same tracks; physically
           the fill fraction saturates at full coverage. *)
        List.map
          (fun l -> (l, Float.min 1.0 (area.(layer_idx l).(ix).(iy) /. wa)))
          [ Geom.M1; Geom.M2; Geom.M3 ]
      in
      windows := { win; density } :: !windows
    done
  done;
  { windows = Array.of_list !windows; window_size = ws }

module N = Dfm_netlist.Netlist
module Cell = Dfm_netlist.Cell
module F = Dfm_faults.Fault
module Geom = Dfm_layout.Geom
module Defect = Dfm_cellmodel.Defect
module Udfm = Dfm_cellmodel.Udfm

type violation = {
  guideline : Guideline.t;
  at : Geom.point;
  nets : int list;
  fault_ids : int list;
}

type t = {
  faults : F.t array;
  violations : violation list;
  n_internal : int;
  n_external : int;
}

let internal_fault_gate (f : F.t) =
  match f.F.kind with F.Internal (g, _) -> Some g | _ -> None

(* Fault accumulator with structural deduplication: the same stuck-at site
   can be implicated by several violations; it is one fault in F (both get
   to reference it). *)
type acc = {
  mutable rev_faults : F.t list;
  mutable count : int;
  dedup : (F.kind, int) Hashtbl.t;
}

let add_fault acc kind origin =
  match Hashtbl.find_opt acc.dedup kind with
  | Some id -> id
  | None ->
      let id = acc.count in
      acc.count <- id + 1;
      Hashtbl.add acc.dedup kind id;
      acc.rev_faults <- { F.fault_id = id; kind; origin } :: acc.rev_faults;
      id

(* Reachability for feedback-bridge exclusion: is [b] in the combinational
   transitive fanout of [a]?  (Bridging a net with its own cone would create
   an oscillating loop the fault models cannot represent.) *)
let reaches nl =
  let memo = Hashtbl.create 64 in
  fun a b ->
    match Hashtbl.find_opt memo (a, b) with
    | Some r -> r
    | None ->
        let seen = Hashtbl.create 32 in
        let rec go n =
          if n = b then true
          else if Hashtbl.mem seen n then false
          else begin
            Hashtbl.add seen n ();
            List.exists
              (fun (g, _) ->
                let gg = N.gate nl g in
                (not gg.N.cell.Cell.is_seq) && go gg.N.fanout)
              (N.net nl n).N.sinks
          end
        in
        let r = go a in
        Hashtbl.add memo (a, b) r;
        r

let internal_only nl =
  let acc = { rev_faults = []; count = 0; dedup = Hashtbl.create 1024 } in
  Array.iter
    (fun (g : N.gate) ->
      let u = Udfm.for_cell g.N.cell.Cell.name in
      List.iteri
        (fun entry_idx (e : Udfm.entry) ->
          let site = e.Udfm.site in
          let origin =
            { F.category = site.Defect.category; guideline_index = site.Defect.guideline_index }
          in
          ignore (add_fault acc (F.Internal (g.N.gate_id, entry_idx)) origin))
        u.Udfm.entries)
    nl.N.gates;
  Array.of_list (List.rev acc.rev_faults)

let build (rt : Dfm_layout.Route.t) =
  let nl = rt.Dfm_layout.Route.place.Dfm_layout.Place.nl in
  let acc = { rev_faults = []; count = 0; dedup = Hashtbl.create 4096 } in
  let violations = ref [] in
  let note guideline at nets fault_ids =
    violations := { guideline; at; nets; fault_ids } :: !violations
  in
  (* ---------------- internal faults ---------------- *)
  Array.iter
    (fun (g : N.gate) ->
      let u = Udfm.for_cell g.N.cell.Cell.name in
      List.iteri
        (fun entry_idx (e : Udfm.entry) ->
          let site = e.Udfm.site in
          let origin =
            { F.category = site.Defect.category; guideline_index = site.Defect.guideline_index }
          in
          ignore (add_fault acc (F.Internal (g.N.gate_id, entry_idx)) origin))
        u.Udfm.entries)
    nl.N.gates;
  let n_internal = acc.count in
  (* ---------------- external: via guidelines ---------------- *)
  let stuck_and_transition loc origin =
    [
      add_fault acc (F.Stuck (loc, F.Sa0)) origin;
      add_fault acc (F.Stuck (loc, F.Sa1)) origin;
      add_fault acc (F.Transition (loc, F.Slow_to_rise)) origin;
      add_fault acc (F.Transition (loc, F.Slow_to_fall)) origin;
    ]
  in
  Array.iter
    (fun (v : Geom.via) ->
      if not v.Geom.via_redundant then begin
        let nid = v.Geom.via_net in
        let net_len = rt.Dfm_layout.Route.net_length.(nid) in
        let fanout = List.length (N.net nl nid).N.sinks in
        if net_len > Guideline.single_via_max_length || fanout >= 2 then begin
          let index = Guideline.via_index ~layer:v.Geom.via_lower ~net_length:net_len ~fanout in
          let g = Guideline.find Defect.Via index in
          let origin = { F.category = Defect.Via; guideline_index = index } in
          let ids =
            match v.Geom.via_sink with
            | Some (gate, pin) -> stuck_and_transition (F.On_pin (gate, pin)) origin
            | None ->
                (* A break at the trunk side isolates sink subsets: the
                   whole-net faults plus a per-sink-pin fault set (the
                   structural dedup merges repeats from sink-side vias). *)
                stuck_and_transition (F.On_net nid) origin
                @ List.concat_map
                    (fun (gate, pin) -> stuck_and_transition (F.On_pin (gate, pin)) origin)
                    (N.net nl nid).N.sinks
          in
          note g v.Geom.via_at [ nid ] ids
        end
      end)
    rt.Dfm_layout.Route.vias;
  (* ---------------- external: metal width guidelines ---------------- *)
  Array.iter
    (fun (s : Geom.segment) ->
      if s.Geom.seg_width < Guideline.recommended_wire_width -. 1e-9 then begin
        let len = Geom.segment_length s in
        if len > 1.0 then begin
          let index =
            Guideline.metal_width_index ~layer:s.Geom.seg_layer ~width:s.Geom.seg_width
              ~length:len
          in
          let g = Guideline.find Defect.Metal index in
          let origin = { F.category = Defect.Metal; guideline_index = index } in
          let loc = F.On_net s.Geom.seg_net in
          (* Resistive opens show up as slow transitions; a severe squeeze
             also risks a full open. *)
          let ids =
            [
              add_fault acc (F.Transition (loc, F.Slow_to_rise)) origin;
              add_fault acc (F.Transition (loc, F.Slow_to_fall)) origin;
            ]
            @
            if s.Geom.seg_width <= 0.221 then
              [
                add_fault acc (F.Stuck (loc, F.Sa0)) origin;
                add_fault acc (F.Stuck (loc, F.Sa1)) origin;
              ]
            else []
          in
          note g s.Geom.seg_a [ s.Geom.seg_net ] ids
        end
      end)
    rt.Dfm_layout.Route.segments;
  (* ---------------- external: metal spacing (bridges) ---------------- *)
  let reach = reaches nl in
  let bridge_candidates = ref [] in
  (* Bucket segments by layer and coarse position to find close parallel
     pairs without the quadratic blowup. *)
  let buckets = Hashtbl.create 1024 in
  let bucket_of (s : Geom.segment) =
    let coord =
      match s.Geom.seg_layer with
      | Geom.M2 -> s.Geom.seg_a.Geom.x  (* vertical *)
      | Geom.M3 | Geom.M1 -> s.Geom.seg_a.Geom.y
    in
    (s.Geom.seg_layer, int_of_float (coord /. 2.0))
  in
  Array.iter
    (fun s ->
      let key = bucket_of s in
      Hashtbl.replace buckets key (s :: (try Hashtbl.find buckets key with Not_found -> [])))
    rt.Dfm_layout.Route.segments;
  Array.iter
    (fun (s1 : Geom.segment) ->
      let layer, b = bucket_of s1 in
      List.iter
        (fun db ->
          List.iter
            (fun (s2 : Geom.segment) ->
              if s1.Geom.seg_net < s2.Geom.seg_net then
                match Geom.segments_parallel_gap s1 s2 with
                | Some gap when gap > 0.01 && gap < Guideline.recommended_spacing ->
                    bridge_candidates := (s1, s2, gap) :: !bridge_candidates
                | Some _ | None -> ())
            (try Hashtbl.find buckets (layer, b + db) with Not_found -> []))
        [ 0; 1 ])
    rt.Dfm_layout.Route.segments;
  List.iter
    (fun ((s1 : Geom.segment), (s2 : Geom.segment), gap) ->
      let n1 = s1.Geom.seg_net and n2 = s2.Geom.seg_net in
      if not (reach n1 n2 || reach n2 n1) then begin
        let index = Guideline.metal_spacing_index ~layer:s1.Geom.seg_layer ~gap in
        let g = Guideline.find Defect.Metal index in
        let origin = { F.category = Defect.Metal; guideline_index = index } in
        let ids =
          [
            add_fault acc (F.Bridge (n1, n2, F.Wired_and)) origin;
            add_fault acc (F.Bridge (n1, n2, F.Wired_or)) origin;
          ]
        in
        note g s1.Geom.seg_a [ n1; n2 ] ids
      end)
    !bridge_candidates;
  (* ---------------- external: density guidelines ---------------- *)
  let dens = Dfm_layout.Density.analyze rt in
  Array.iter
    (fun (w : Dfm_layout.Density.window) ->
      List.iter
        (fun (layer, d) ->
          let low = d < Dfm_layout.Density.low_threshold in
          let high = d > Dfm_layout.Density.high_threshold in
          if low || high then begin
            let nets = Dfm_layout.Route.nets_in_window rt w.Dfm_layout.Density.win in
            if nets <> [] then begin
              let index = Guideline.density_index ~layer ~low ~density:d in
              let g = Guideline.find Defect.Density index in
              let origin = { F.category = Defect.Density; guideline_index = index } in
              let center =
                {
                  Geom.x = (w.Dfm_layout.Density.win.Geom.lx +. w.Dfm_layout.Density.win.Geom.hx) /. 2.0;
                  y = (w.Dfm_layout.Density.win.Geom.ly +. w.Dfm_layout.Density.win.Geom.hy) /. 2.0;
                }
              in
              if low then begin
                (* Dishing: open risk on the (few) nets crossing the
                   window. *)
                let ids =
                  List.concat_map
                    (fun nid ->
                      [
                        add_fault acc (F.Transition (F.On_net nid, F.Slow_to_rise)) origin;
                        add_fault acc (F.Transition (F.On_net nid, F.Slow_to_fall)) origin;
                      ])
                    (List.filteri (fun i _ -> i < 4) nets)
                in
                note g center nets ids
              end
              else begin
                (* Overfill: short risk between neighbouring nets. *)
                let rec pairs = function
                  | a :: b :: rest ->
                      ((a, b) :: pairs (b :: rest))
                  | _ -> []
                in
                let ids =
                  List.concat_map
                    (fun (a, b) ->
                      if a <> b && not (reach a b || reach b a) then
                        [ add_fault acc (F.Bridge (a, b, F.Wired_and)) origin ]
                      else [])
                    (List.filteri (fun i _ -> i < 3) (pairs nets))
                in
                if ids <> [] then note g center nets ids
              end
            end
          end)
        w.Dfm_layout.Density.density)
    dens.Dfm_layout.Density.windows;
  let faults = Array.of_list (List.rev acc.rev_faults) in
  {
    faults;
    violations = List.rev !violations;
    n_internal;
    n_external = acc.count - n_internal;
  }

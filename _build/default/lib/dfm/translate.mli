(** Scanning a routed layout for DFM guideline violations and translating
    them into the gate-level fault list [F] of Section II.

    Internal faults: every cell instance contributes one UDFM fault per
    non-benign internal violation site of its cell type (switch-level
    characterized in [dfm_cellmodel]).

    External faults: layout scanning finds
    - non-redundant vias in risky contexts (Via guidelines) → open risk →
      stuck-at and transition faults on the served pin or whole net;
    - sub-recommended wire widths (Metal) → resistive-open risk →
      transition faults (and stuck-ats for severe cases);
    - tight parallel spacing (Metal) → short risk → wired-AND/OR bridging
      faults between the two nets (feedback pairs are skipped);
    - out-of-band window densities (Density) → opens (low) or bridges
      (high) on the nets crossing the window. *)

type violation = {
  guideline : Guideline.t;
  at : Dfm_layout.Geom.point;
  nets : int list;          (** nets implicated *)
  fault_ids : int list;     (** faults this violation contributed *)
}

type t = {
  faults : Dfm_faults.Fault.t array;
  violations : violation list;
  n_internal : int;
  n_external : int;
}

val build : Dfm_layout.Route.t -> t
(** Deterministic: same layout, same fault list (fault ids included). *)

val internal_only : Dfm_netlist.Netlist.t -> Dfm_faults.Fault.t array
(** Just the internal (UDFM) faults of a netlist, no layout needed.  Internal
    faults do not depend on placement and routing, which is why the paper
    calls [PDesign()] only after their undetectable count already decreased —
    this fault list supports exactly that pre-physical-design check. *)

val internal_fault_gate : Dfm_faults.Fault.t -> int option
(** Host gate of an internal fault. *)

lib/dfm/translate.ml: Array Dfm_cellmodel Dfm_faults Dfm_layout Dfm_netlist Guideline Hashtbl List

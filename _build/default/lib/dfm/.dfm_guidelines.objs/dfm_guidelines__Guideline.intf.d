lib/dfm/guideline.mli: Dfm_cellmodel Dfm_layout

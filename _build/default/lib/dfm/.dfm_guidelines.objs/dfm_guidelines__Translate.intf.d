lib/dfm/translate.mli: Dfm_faults Dfm_layout Dfm_netlist Guideline

lib/dfm/guideline.ml: Array Dfm_cellmodel Dfm_layout List Printf

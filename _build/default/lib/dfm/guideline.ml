module Defect = Dfm_cellmodel.Defect
module Geom = Dfm_layout.Geom

type t = {
  id : string;
  category : Defect.category;
  index : int;
  description : string;
}

let n_via = 19
let n_metal = 29
let n_density = 11

let via_descriptions =
  [|
    "single via on short M1 stub";
    "single via on medium M1 net";
    "single via on long M1 net";
    "single via on very long M1 net";
    "single via, low-fanout M1 branch";
    "single via, high-fanout M1 trunk";
    "single via at M1 pin contact of a multi-sink net";
    "single via on short M2 run";
    "single via on medium M2 run";
    "single via on long M2 run";
    "single via on very long M2 run";
    "single via, low-fanout M2 branch";
    "single via, high-fanout M2 trunk";
    "single stacked via at route bend";
    "single via adjacent to wide trunk";
    "single via on clock-like high-activity net";
    "isolated via without landing-pad enclosure margin";
    "via at minimum enclosure on dense net";
    "single via on boundary-crossing net";
  |]

let metal_descriptions =
  [|
    "sub-recommended width, short M2 wire";
    "sub-recommended width, medium M2 wire";
    "sub-recommended width, long M2 wire";
    "sub-recommended width, very long M2 wire";
    "sub-recommended width, short M3 wire";
    "sub-recommended width, medium M3 wire";
    "sub-recommended width, long M3 wire";
    "sub-recommended width, very long M3 wire";
    "minimum-width wire exceeding recommended span";
    "narrow jog between wide trunks";
    "tight parallel spacing, short M2 run";
    "tight parallel spacing, medium M2 run";
    "tight parallel spacing, long M2 run";
    "tight parallel spacing, short M3 run";
    "tight parallel spacing, medium M3 run";
    "tight parallel spacing, long M3 run";
    "minimum spacing at via landing";
    "minimum spacing next to wide trunk";
    "parallel run length above recommendation (M2)";
    "parallel run length above recommendation (M3)";
    "stub end below recommended extension";
    "narrow wire entering dense window";
    "narrow wire leaving pin ladder";
    "long minimum-width side branch";
    "narrow wire between redundant via pair";
    "spacing below recommendation near cell row edge";
    "narrow trunk of high-fanout net";
    "spacing below recommendation between trunks";
    "narrow boundary-crossing wire";
  |]

let density_descriptions =
  [|
    "M1 density below recommended band (dishing risk)";
    "M2 density below recommended band (dishing risk)";
    "M3 density below recommended band (dishing risk)";
    "M1 density above recommended band (short risk)";
    "M2 density above recommended band (short risk)";
    "M3 density above recommended band (short risk)";
    "severely underfilled window";
    "severely overfilled window";
    "density gradient across adjacent windows";
    "underfilled window at die edge";
    "overfilled window at die corner";
  |]

let mk category prefix descriptions index =
  {
    id = Printf.sprintf "%s%02d" prefix index;
    category;
    index;
    description = descriptions.(index);
  }

let all =
  List.init n_via (mk Defect.Via "V" via_descriptions)
  @ List.init n_metal (mk Defect.Metal "M" metal_descriptions)
  @ List.init n_density (mk Defect.Density "D" density_descriptions)

let find category index =
  List.find (fun g -> g.category = category && g.index = index) all

(* Context classifiers: deterministic mapping of a concrete violation
   context onto a guideline of its category. *)

let length_band net_length =
  if net_length < 10.0 then 0 else if net_length < 25.0 then 1 else if net_length < 60.0 then 2 else 3

let via_index ~layer ~net_length ~fanout =
  let base = match layer with Geom.M1 -> 0 | Geom.M2 | Geom.M3 -> 7 in
  let idx =
    if fanout >= 3 then base + 4 + min 1 (fanout - 3)
    else base + length_band net_length
  in
  min (n_via - 1) idx

let metal_width_index ~layer ~width ~length =
  let base = match layer with Geom.M2 -> 0 | Geom.M3 | Geom.M1 -> 4 in
  let idx = base + length_band length in
  let idx = if width <= 0.221 then 8 else idx in
  min (n_metal - 1) idx

let metal_spacing_index ~layer ~gap =
  let base = match layer with Geom.M2 -> 10 | Geom.M3 | Geom.M1 -> 13 in
  let band = if gap < 0.20 then 0 else if gap < 0.24 then 1 else 2 in
  min (n_metal - 1) (base + band)

let density_index ~layer ~low ~density =
  let li = match layer with Geom.M1 -> 0 | Geom.M2 -> 1 | Geom.M3 -> 2 in
  if low && density < 0.005 then 6
  else if (not low) && density > 0.4 then 7
  else if low then li
  else 3 + li

let recommended_wire_width = 0.28
let recommended_spacing = 0.28
let single_via_max_length = 8.0

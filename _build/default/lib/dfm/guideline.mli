(** The DFM guideline catalog.

    Following Section IV of the paper, three categories of recommended-layout
    guidelines are modeled: 19 in the Via category, 29 in the Metal category
    and 11 in the Density category.  Guidelines are *recommendations* (unlike
    design rules): the router may violate them under congestion, and each
    violation marks a location where a systematic defect is anticipated.

    Within a category, individual guidelines correspond to context classes
    (layer, length band, fanout band, ...); the scanner assigns each concrete
    violation to its guideline index. *)

type t = {
  id : string;  (** e.g. ["V03"], ["M17"], ["D05"] *)
  category : Dfm_cellmodel.Defect.category;
  index : int;
  description : string;
}

val n_via : int
(** 19 *)

val n_metal : int
(** 29 *)

val n_density : int
(** 11 *)

val all : t list
(** All 59 guidelines. *)

val find : Dfm_cellmodel.Defect.category -> int -> t
(** @raise Not_found when the index is outside the category. *)

(** {1 Context classifiers used by the scanner} *)

val via_index :
  layer:Dfm_layout.Geom.layer -> net_length:float -> fanout:int -> int
(** Guideline index (0..18) for a single-via context. *)

val metal_width_index : layer:Dfm_layout.Geom.layer -> width:float -> length:float -> int
(** Guideline index (0..28) for a narrow-wire context. *)

val metal_spacing_index : layer:Dfm_layout.Geom.layer -> gap:float -> int
(** Guideline index (0..28) for a tight-spacing context. *)

val density_index : layer:Dfm_layout.Geom.layer -> low:bool -> density:float -> int
(** Guideline index (0..10) for an out-of-band density window. *)

(** {1 Recommended values} *)

val recommended_wire_width : float
val recommended_spacing : float
val single_via_max_length : float
(** A non-redundant via is acceptable on nets shorter than this. *)

let const_true s l = Solver.add_clause s [ l ]
let const_false s l = Solver.add_clause s [ -l ]

let equal s a b =
  Solver.add_clause s [ -a; b ];
  Solver.add_clause s [ a; -b ]

let not_ s ~out a =
  Solver.add_clause s [ -out; -a ];
  Solver.add_clause s [ out; a ]

let and_ s ~out = function
  | [] -> const_true s out
  | ins ->
      List.iter (fun i -> Solver.add_clause s [ -out; i ]) ins;
      Solver.add_clause s (out :: List.map (fun i -> -i) ins)

let or_ s ~out = function
  | [] -> const_false s out
  | ins ->
      List.iter (fun i -> Solver.add_clause s [ out; -i ]) ins;
      Solver.add_clause s (-out :: ins)

let xor_ s ~out a b =
  Solver.add_clause s [ -out; a; b ];
  Solver.add_clause s [ -out; -a; -b ];
  Solver.add_clause s [ out; -a; b ];
  Solver.add_clause s [ out; a; -b ]

let mux s ~out ~sel a b =
  (* sel = 0 -> out = a; sel = 1 -> out = b *)
  Solver.add_clause s [ sel; -out; a ];
  Solver.add_clause s [ sel; out; -a ];
  Solver.add_clause s [ -sel; -out; b ];
  Solver.add_clause s [ -sel; out; -b ]

let of_truthtable s ~out ins tt =
  let n = Dfm_logic.Truthtable.arity tt in
  if Array.length ins <> n then invalid_arg "Tseitin.of_truthtable";
  (* For each assignment, add a clause forcing [out] to the function value:
     (/\ lits of the assignment) -> out = value, i.e. a clause with the
     negated assignment literals plus [out] or [-out]. *)
  for m = 0 to (1 lsl n) - 1 do
    let antecedent =
      List.init n (fun k -> if (m lsr k) land 1 = 1 then -ins.(k) else ins.(k))
    in
    let v = Dfm_logic.Truthtable.eval_index tt m in
    Solver.add_clause s ((if v then out else -out) :: antecedent)
  done

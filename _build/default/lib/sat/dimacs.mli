(** DIMACS CNF interchange for the SAT solver.

    Makes [dfm_sat] usable as a standalone solver on standard benchmark
    files and lets miters built here be exported for cross-checking with
    external solvers. *)

exception Parse_error of int * string

val parse : string -> int * int list list
(** [parse text] reads a DIMACS [p cnf] body and returns
    (variable count, clauses).  Comments ([c] lines) and [%]/[0] trailers
    are tolerated.  @raise Parse_error with a line number on bad syntax. *)

val load : Solver.t -> string -> unit
(** Parse and add every clause to a solver. *)

val read_file : Solver.t -> string -> unit

val to_string : nvars:int -> int list list -> string
(** Render clauses in DIMACS format. *)

val solution_to_string : Solver.t -> Solver.result -> string
(** A standard ["s SATISFIABLE"/"v ..."] result block. *)

exception Parse_error of int * string

let parse text =
  let lines = String.split_on_char '\n' text in
  let nvars = ref 0 in
  let expected_clauses = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  let seen_header = ref false in
  List.iteri
    (fun lineno raw ->
      let lineno = lineno + 1 in
      let line = String.trim raw in
      if line = "" || line.[0] = 'c' || line.[0] = '%' then ()
      else if line.[0] = 'p' then begin
        if !seen_header then raise (Parse_error (lineno, "duplicate p line"));
        seen_header := true;
        match String.split_on_char ' ' line |> List.filter (fun w -> w <> "") with
        | [ "p"; "cnf"; nv; nc ] -> (
            try
              nvars := int_of_string nv;
              expected_clauses := int_of_string nc
            with Failure _ -> raise (Parse_error (lineno, "bad p cnf header")))
        | _ -> raise (Parse_error (lineno, "expected 'p cnf <vars> <clauses>'"))
      end
      else begin
        if not !seen_header then raise (Parse_error (lineno, "clause before p line"));
        List.iter
          (fun tok ->
            match int_of_string_opt tok with
            | None -> raise (Parse_error (lineno, "bad literal " ^ tok))
            | Some 0 ->
                clauses := List.rev !current :: !clauses;
                current := []
            | Some l ->
                if abs l > !nvars then
                  raise (Parse_error (lineno, "literal exceeds declared variables"));
                current := l :: !current)
          (String.split_on_char ' ' line |> List.filter (fun w -> w <> ""))
      end)
    lines;
  if !current <> [] then clauses := List.rev !current :: !clauses;
  let clauses = List.rev !clauses in
  if !expected_clauses >= 0 && List.length clauses <> !expected_clauses then
    raise (Parse_error (0, Printf.sprintf "declared %d clauses, found %d" !expected_clauses
                          (List.length clauses)));
  (!nvars, clauses)

let load solver text =
  let nvars, clauses = parse text in
  Solver.ensure_vars solver nvars;
  List.iter (Solver.add_clause solver) clauses

let read_file solver path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  load solver text

let to_string ~nvars clauses =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "p cnf %d %d\n" nvars (List.length clauses));
  List.iter
    (fun c ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) c;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let solution_to_string solver = function
  | Solver.Unsat -> "s UNSATISFIABLE\n"
  | Solver.Unknown -> "s UNKNOWN\n"
  | Solver.Sat ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf "s SATISFIABLE\nv ";
      for v = 1 to Solver.num_vars solver do
        Buffer.add_string buf (string_of_int (if Solver.value solver v then v else -v));
        Buffer.add_char buf ' '
      done;
      Buffer.add_string buf "0\n";
      Buffer.contents buf

lib/sat/tseitin.mli: Dfm_logic Solver

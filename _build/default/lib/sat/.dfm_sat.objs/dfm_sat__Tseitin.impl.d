lib/sat/tseitin.ml: Array Dfm_logic List Solver

lib/sat/solver.mli:

(** Tseitin gate encoders on top of {!Solver}.

    Each function constrains an output literal to equal a Boolean function of
    input literals, using the standard equisatisfiable clause sets.  Literals
    are DIMACS integers as in {!Solver}. *)

val const_true : Solver.t -> int -> unit
val const_false : Solver.t -> int -> unit

val equal : Solver.t -> int -> int -> unit
(** [equal s a b] forces [a = b]. *)

val not_ : Solver.t -> out:int -> int -> unit

val and_ : Solver.t -> out:int -> int list -> unit
(** [and_ s ~out ins] forces [out = AND ins].  [AND [] = true]. *)

val or_ : Solver.t -> out:int -> int list -> unit
(** [or_ s ~out ins] forces [out = OR ins].  [OR [] = false]. *)

val xor_ : Solver.t -> out:int -> int -> int -> unit
(** [xor_ s ~out a b] forces [out = a XOR b]. *)

val mux : Solver.t -> out:int -> sel:int -> int -> int -> unit
(** [mux s ~out ~sel a b] forces [out = if sel then b else a]. *)

val of_truthtable : Solver.t -> out:int -> int array -> Dfm_logic.Truthtable.t -> unit
(** [of_truthtable s ~out ins tt] forces [out = tt(ins)] by enumerating
    minterms and maxterms; suitable for functions of up to 6 inputs. *)

module N = Dfm_netlist.Netlist
module Cell = Dfm_netlist.Cell

type report = {
  critical_path_delay : float;
  worst_endpoint : string;
  net_arrival : float array;
  net_load : float array;
}

let wire_cap_per_um = 0.00018  (* pF/um, 0.18um-node ballpark *)

let net_load_of (rt : Dfm_layout.Route.t) =
  let nl = rt.Dfm_layout.Route.place.Dfm_layout.Place.nl in
  Array.map
    (fun (nn : N.net) ->
      let pin_caps =
        List.fold_left
          (fun acc (g, pin) ->
            ignore pin;
            acc +. (N.gate nl g).N.cell.Cell.input_cap)
          0.0 nn.N.sinks
      in
      pin_caps +. (rt.Dfm_layout.Route.net_length.(nn.N.net_id) *. wire_cap_per_um))
    nl.N.nets

let analyze (rt : Dfm_layout.Route.t) =
  let nl = rt.Dfm_layout.Route.place.Dfm_layout.Place.nl in
  let load = net_load_of rt in
  let arrival = Array.make (N.num_nets nl) 0.0 in
  (* Launch points (PIs, flip-flop Q) stay at 0; constants too. *)
  Array.iter
    (fun gid ->
      let g = N.gate nl gid in
      let input_arrival =
        Array.fold_left (fun acc fn -> Float.max acc arrival.(fn)) 0.0 g.N.fanins
      in
      let delay =
        g.N.cell.Cell.intrinsic_delay +. (g.N.cell.Cell.drive_res *. load.(g.N.fanout))
      in
      arrival.(g.N.fanout) <- input_arrival +. delay)
    (N.topo_order nl);
  let endpoints = N.observe_nets nl in
  let worst, wlabel =
    List.fold_left
      (fun (w, lbl) (label, n) -> if arrival.(n) > w then (arrival.(n), label) else (w, lbl))
      (0.0, "-") endpoints
  in
  {
    critical_path_delay = worst;
    worst_endpoint = wlabel;
    net_arrival = arrival;
    net_load = load;
  }

let endpoint_arrivals (rt : Dfm_layout.Route.t) report =
  let nl = rt.Dfm_layout.Route.place.Dfm_layout.Place.nl in
  List.map (fun (label, n) -> (label, report.net_arrival.(n))) (N.observe_nets nl)

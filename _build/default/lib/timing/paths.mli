(** Critical-path enumeration and slack reporting.

    Beyond the single worst number the resynthesis constraint needs, a
    designer evaluating a rewrite wants to see *which* paths moved.  This
    module walks the arrival-time annotations of {!Sta} backwards to recover
    the k most critical launch-to-capture paths and per-endpoint slacks
    against a target clock period. *)

type hop = {
  gate : int;            (** gate id along the path *)
  cell : string;
  through_net : int;     (** the gate's output net *)
  arrival : float;       (** ns at that net *)
}

type path = {
  endpoint : string;     (** capture-point label *)
  launch : string;       (** launch-point label *)
  delay : float;         (** ns *)
  hops : hop list;       (** launch side first *)
}

val critical_paths : ?k:int -> Dfm_layout.Route.t -> Sta.report -> path list
(** The [k] (default 5) worst paths, sorted by decreasing delay.  One path
    per capture point (the classic endpoint-wise report). *)

val slacks : clock:float -> Dfm_layout.Route.t -> Sta.report -> (string * float) list
(** Per capture point: [clock - arrival], most negative first. *)

val pp_path : Format.formatter -> path -> unit

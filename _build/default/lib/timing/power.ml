module N = Dfm_netlist.Netlist
module Cell = Dfm_netlist.Cell

type report = {
  dynamic : float;
  leakage : float;
  total : float;
}

let vdd = 1.8
let freq_mhz = 100.0

let popcount w =
  let rec go w acc = if w = 0L then acc else go (Int64.logand w (Int64.sub w 1L)) (acc + 1) in
  go w 0

let analyze ?(seed = 5) ?(blocks = 8) (rt : Dfm_layout.Route.t) =
  let nl = rt.Dfm_layout.Route.place.Dfm_layout.Place.nl in
  let ls = Dfm_sim.Logic_sim.prepare nl in
  let rng = Dfm_util.Rng.create (seed + 31) in
  let load = Sta.net_load_of rt in
  let toggles = Array.make (N.num_nets nl) 0 in
  for _ = 1 to blocks do
    let values = Dfm_sim.Logic_sim.run ls (Dfm_sim.Logic_sim.random_words ls rng) in
    Array.iteri
      (fun nid w ->
        (* Adjacent bit positions act as consecutive cycles. *)
        toggles.(nid) <- toggles.(nid) + popcount (Int64.logxor w (Int64.shift_right_logical w 1)))
      values
  done;
  let cycles = float_of_int (blocks * 63) in
  let dynamic =
    let acc = ref 0.0 in
    Array.iteri
      (fun nid t ->
        let activity = float_of_int t /. cycles in
        (* P = a * C * V^2 * f; pF * V^2 * MHz = uW, so /1000 for mW. *)
        acc := !acc +. (activity *. load.(nid) *. vdd *. vdd *. freq_mhz /. 1000.0))
      toggles;
    !acc
  in
  let leakage =
    Array.fold_left (fun acc (g : N.gate) -> acc +. g.N.cell.Cell.leakage) 0.0 nl.N.gates
    /. 1.0e6
    (* nW -> mW *)
  in
  { dynamic; leakage; total = dynamic +. leakage }

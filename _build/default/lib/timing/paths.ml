module N = Dfm_netlist.Netlist
module Cell = Dfm_netlist.Cell

type hop = {
  gate : int;
  cell : string;
  through_net : int;
  arrival : float;
}

type path = {
  endpoint : string;
  launch : string;
  delay : float;
  hops : hop list;
}

(* Walk back from a net along the worst-arrival fanin at every gate. *)
let trace_back (nl : N.t) (rep : Sta.report) net =
  let arr = rep.Sta.net_arrival in
  let rec go net acc =
    match (N.net nl net).N.driver with
    | N.Pi k -> (fst nl.N.pis.(k), acc)
    | N.Const _ -> ("constant", acc)
    | N.Gate_out g ->
        let gg = N.gate nl g in
        if gg.N.cell.Cell.is_seq then ("ppi:" ^ gg.N.gate_name, acc)
        else begin
          let hop =
            { gate = g; cell = gg.N.cell.Cell.name; through_net = net; arrival = arr.(net) }
          in
          let worst =
            Array.fold_left
              (fun best fn ->
                match best with
                | None -> Some fn
                | Some b -> if arr.(fn) > arr.(b) then Some fn else best)
              None gg.N.fanins
          in
          match worst with
          | None -> ("constant", hop :: acc)
          | Some fn -> go fn (hop :: acc)
        end
  in
  go net []

let critical_paths ?(k = 5) (rt : Dfm_layout.Route.t) (rep : Sta.report) =
  let nl = rt.Dfm_layout.Route.place.Dfm_layout.Place.nl in
  let endpoints = N.observe_nets nl in
  let paths =
    List.map
      (fun (label, net) ->
        let launch, hops = trace_back nl rep net in
        { endpoint = label; launch; delay = rep.Sta.net_arrival.(net); hops })
      endpoints
  in
  List.sort (fun a b -> compare b.delay a.delay) paths
  |> List.filteri (fun i _ -> i < k)

let slacks ~clock (rt : Dfm_layout.Route.t) (rep : Sta.report) =
  let nl = rt.Dfm_layout.Route.place.Dfm_layout.Place.nl in
  List.map (fun (label, net) -> (label, clock -. rep.Sta.net_arrival.(net))) (N.observe_nets nl)
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let pp_path ppf p =
  Format.fprintf ppf "%s -> %s : %.3f ns, %d stages@." p.launch p.endpoint p.delay
    (List.length p.hops);
  List.iter
    (fun h -> Format.fprintf ppf "    %-10s g%-5d at %.3f ns@." h.cell h.gate h.arrival)
    p.hops

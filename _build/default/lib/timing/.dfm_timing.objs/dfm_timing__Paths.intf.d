lib/timing/paths.mli: Dfm_layout Format Sta

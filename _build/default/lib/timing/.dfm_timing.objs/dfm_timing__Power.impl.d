lib/timing/power.ml: Array Dfm_layout Dfm_netlist Dfm_sim Dfm_util Int64 Sta

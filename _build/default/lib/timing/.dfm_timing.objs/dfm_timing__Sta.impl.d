lib/timing/sta.ml: Array Dfm_layout Dfm_netlist Float List

lib/timing/sta.mli: Dfm_layout

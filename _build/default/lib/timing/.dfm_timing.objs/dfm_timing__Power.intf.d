lib/timing/power.mli: Dfm_layout

lib/timing/paths.ml: Array Dfm_layout Dfm_netlist Format List Sta

(** Static timing analysis over a placed-and-routed design.

    Lumped linear delay model: a gate's delay is its intrinsic delay plus
    its drive resistance times the load (sink pin capacitances plus routed
    wire capacitance).  Launch points are primary inputs and flip-flop Q
    pins at t = 0; capture points are primary outputs and flip-flop D pins.
    The critical-path delay is the quantity the paper constrains to at most
    [q]% above the original design. *)

type report = {
  critical_path_delay : float;  (** ns *)
  worst_endpoint : string;      (** label of the worst capture point *)
  net_arrival : float array;    (** arrival time per net id, ns *)
  net_load : float array;       (** capacitive load per net id, pF *)
}

val wire_cap_per_um : float

val net_load_of : Dfm_layout.Route.t -> float array
(** Capacitive load per net (sink pin caps + routed wire cap). *)

val analyze : Dfm_layout.Route.t -> report

val endpoint_arrivals : Dfm_layout.Route.t -> report -> (string * float) list

(** Power estimation: switching (dynamic) power from simulated toggle
    activity on the routed loads, plus cell leakage.  Absolute units are
    nominal (mW at 1.8 V, 100 MHz); the resynthesis procedure only ever
    compares a design against the original, as the paper does. *)

type report = {
  dynamic : float;  (** mW *)
  leakage : float;  (** mW *)
  total : float;
}

val analyze : ?seed:int -> ?blocks:int -> Dfm_layout.Route.t -> report
(** [blocks] 64-pattern simulation blocks estimate per-net toggle activity
    (default 8). *)

lib/logic/bdd.mli: Truthtable

lib/logic/truthtable.ml: Array Hashtbl Int64 List Printf

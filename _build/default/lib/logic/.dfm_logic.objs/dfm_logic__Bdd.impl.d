lib/logic/bdd.ml: Array Hashtbl List Truthtable

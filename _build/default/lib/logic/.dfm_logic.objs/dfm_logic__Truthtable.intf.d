lib/logic/truthtable.mli:

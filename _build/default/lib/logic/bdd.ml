type t = int
(* Node ids: 0 = terminal false, 1 = terminal true, >= 2 internal. *)

type node = { v : int; lo : int; hi : int }

type man = {
  mutable nodes : node array;
  mutable n : int;
  unique : (int * int * int, int) Hashtbl.t;
  cache : (int * int * int * int, int) Hashtbl.t;
  (* op codes: 0 = and, 1 = xor, 2 = ite (c,a,b) *)
}

let dummy = { v = max_int; lo = -1; hi = -1 }

let man () =
  let m =
    { nodes = Array.make 1024 dummy; n = 2; unique = Hashtbl.create 4096; cache = Hashtbl.create 4096 }
  in
  m.nodes.(0) <- { v = max_int; lo = 0; hi = 0 };
  m.nodes.(1) <- { v = max_int; lo = 1; hi = 1 };
  m

let zero _ = 0
let one _ = 1

let node m i = m.nodes.(i)

let mk m v lo hi =
  if lo = hi then lo
  else
    match Hashtbl.find_opt m.unique (v, lo, hi) with
    | Some id -> id
    | None ->
        if m.n = Array.length m.nodes then begin
          let bigger = Array.make (2 * m.n) dummy in
          Array.blit m.nodes 0 bigger 0 m.n;
          m.nodes <- bigger
        end;
        let id = m.n in
        m.nodes.(id) <- { v; lo; hi };
        m.n <- m.n + 1;
        Hashtbl.add m.unique (v, lo, hi) id;
        id

let var m i = mk m i 0 1

let topvar m a = (node m a).v

let rec band m a b =
  if a = 0 || b = 0 then 0
  else if a = 1 then b
  else if b = 1 then a
  else if a = b then a
  else
    let a, b = if a < b then a, b else b, a in
    let key = (0, a, b, 0) in
    match Hashtbl.find_opt m.cache key with
    | Some r -> r
    | None ->
        let va = topvar m a and vb = topvar m b in
        let v = min va vb in
        let a0 = if va = v then (node m a).lo else a
        and a1 = if va = v then (node m a).hi else a
        and b0 = if vb = v then (node m b).lo else b
        and b1 = if vb = v then (node m b).hi else b in
        let r = mk m v (band m a0 b0) (band m a1 b1) in
        Hashtbl.add m.cache key r;
        r

let rec bxor m a b =
  if a = b then 0
  else if a = 0 then b
  else if b = 0 then a
  else
    let a, b = if a < b then a, b else b, a in
    let key = (1, a, b, 0) in
    match Hashtbl.find_opt m.cache key with
    | Some r -> r
    | None ->
        let va = topvar m a and vb = topvar m b in
        let v = min va vb in
        let a0 = if va = v then (node m a).lo else a
        and a1 = if va = v then (node m a).hi else a
        and b0 = if vb = v then (node m b).lo else b
        and b1 = if vb = v then (node m b).hi else b in
        let r = mk m v (bxor m a0 b0) (bxor m a1 b1) in
        Hashtbl.add m.cache key r;
        r

let bnot m a = bxor m a 1

let bor m a b = bnot m (band m (bnot m a) (bnot m b))

let rec bite m c a b =
  if c = 1 then a
  else if c = 0 then b
  else if a = b then a
  else if a = 1 && b = 0 then c
  else
    let key = (2, c, a, b) in
    match Hashtbl.find_opt m.cache key with
    | Some r -> r
    | None ->
        let vc = topvar m c and va = topvar m a and vb = topvar m b in
        let v = min vc (min va vb) in
        let split x vx = if vx = v then (node m x).lo, (node m x).hi else x, x in
        let c0, c1 = split c vc and a0, a1 = split a va and b0, b1 = split b vb in
        let r = mk m v (bite m c0 a0 b0) (bite m c1 a1 b1) in
        Hashtbl.add m.cache key r;
        r

let equal (a : t) (b : t) = a = b
let is_zero a = a = 0
let is_one a = a = 1

let size m root =
  let seen = Hashtbl.create 64 in
  let rec go i =
    if i >= 2 && not (Hashtbl.mem seen i) then begin
      Hashtbl.add seen i ();
      go (node m i).lo;
      go (node m i).hi
    end
  in
  go root;
  Hashtbl.length seen

let sat_one m root =
  if root = 0 then None
  else begin
    let rec go i acc =
      if i = 1 then acc
      else
        let nd = node m i in
        if nd.hi <> 0 then go nd.hi ((nd.v, true) :: acc)
        else go nd.lo ((nd.v, false) :: acc)
    in
    Some (List.rev (go root []))
  end

let of_truthtable m tt =
  let n = Truthtable.arity tt in
  let acc = ref 0 in
  List.iter
    (fun minterm ->
      let cube = ref 1 in
      for k = 0 to n - 1 do
        let lit = if (minterm lsr k) land 1 = 1 then var m k else bnot m (var m k) in
        cube := band m !cube lit
      done;
      acc := bor m !acc !cube)
    (Truthtable.minterms tt);
  if n = 0 then (if Truthtable.equal tt (Truthtable.const1 0) then 1 else 0) else !acc

type t = { arity : int; bits : int64 }

let mask n =
  if n >= 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl n)) 1L

let check_arity n =
  if n < 0 || n > 6 then invalid_arg "Truthtable: arity must be in [0,6]"

let of_bits ~arity bits =
  check_arity arity;
  { arity; bits = Int64.logand bits (mask arity) }

let arity t = t.arity
let bits t = t.bits

let index_of_assignment a =
  let idx = ref 0 in
  Array.iteri (fun k v -> if v then idx := !idx lor (1 lsl k)) a;
  !idx

let eval_index t i = Int64.logand (Int64.shift_right_logical t.bits i) 1L = 1L

let eval t a =
  assert (Array.length a = t.arity);
  eval_index t (index_of_assignment a)

let create n f =
  check_arity n;
  let bits = ref 0L in
  for i = 0 to (1 lsl n) - 1 do
    let a = Array.init n (fun k -> (i lsr k) land 1 = 1) in
    if f a then bits := Int64.logor !bits (Int64.shift_left 1L i)
  done;
  { arity = n; bits = !bits }

let const0 n =
  check_arity n;
  { arity = n; bits = 0L }

let const1 n =
  check_arity n;
  { arity = n; bits = mask n }

let var n k =
  check_arity n;
  if k < 0 || k >= n then invalid_arg "Truthtable.var";
  create n (fun a -> a.(k))

let lnot t = { t with bits = Int64.logand (Int64.lognot t.bits) (mask t.arity) }

let binop op a b =
  if a.arity <> b.arity then invalid_arg "Truthtable: arity mismatch";
  { arity = a.arity; bits = op a.bits b.bits }

let land_ = binop Int64.logand
let lor_ = binop Int64.logor
let lxor_ = binop Int64.logxor

let equal a b = a.arity = b.arity && Int64.equal a.bits b.bits

let cofactor t k v =
  if k < 0 || k >= t.arity then invalid_arg "Truthtable.cofactor";
  create t.arity (fun a ->
      let a' = Array.copy a in
      a'.(k) <- v;
      eval t a')

let depends_on t k = not (equal (cofactor t k false) (cofactor t k true))

let support_size t =
  let c = ref 0 in
  for k = 0 to t.arity - 1 do
    if depends_on t k then incr c
  done;
  !c

let permute t p =
  if Array.length p <> t.arity then invalid_arg "Truthtable.permute";
  create t.arity (fun a -> eval t (Array.init t.arity (fun k -> a.(p.(k)))))

(* Enumerate permutations of [0..n-1] via Heap's algorithm. *)
let permutations n =
  let result = ref [] in
  let a = Array.init n (fun i -> i) in
  let rec go k =
    if k = 1 then result := Array.copy a :: !result
    else
      for i = 0 to k - 1 do
        go (k - 1);
        let j = if k mod 2 = 0 then i else 0 in
        let tmp = a.(j) in
        a.(j) <- a.(k - 1);
        a.(k - 1) <- tmp
      done
  in
  if n = 0 then [ [||] ] else (go n; !result)

let all_permutations t =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun p ->
      let t' = permute t p in
      if Hashtbl.mem seen t'.bits then None
      else begin
        Hashtbl.add seen t'.bits ();
        Some t'
      end)
    (permutations t.arity)

let minterms t =
  let acc = ref [] in
  for i = (1 lsl t.arity) - 1 downto 0 do
    if eval_index t i then acc := i :: !acc
  done;
  !acc

let count_ones t = List.length (minterms t)

let to_string t = Printf.sprintf "0x%Lx/%d" t.bits t.arity

(** Reduced ordered binary decision diagrams with a per-manager unique table.

    Used to check functional equivalence of small-to-medium subcircuits —
    e.g. that technology mapping and resynthesis preserve the function of the
    subcircuit they rewrite — independently of the SAT-based miter check. *)

type man
(** A BDD manager: unique table + operation cache. *)

type t
(** A node in a manager.  Nodes from different managers must not be mixed. *)

val man : unit -> man
(** Fresh manager.  Variable order is the natural order of variable indices. *)

val zero : man -> t
val one : man -> t
val var : man -> int -> t

val bnot : man -> t -> t
val band : man -> t -> t -> t
val bor : man -> t -> t -> t
val bxor : man -> t -> t -> t
val bite : man -> t -> t -> t -> t
(** [bite m c a b] is if-then-else. *)

val equal : t -> t -> bool
(** Canonicity makes equivalence a constant-time identity check. *)

val is_zero : t -> bool
val is_one : t -> bool

val size : man -> t -> int
(** Number of distinct internal nodes reachable from a root. *)

val sat_one : man -> t -> (int * bool) list option
(** A satisfying partial assignment (variable, value) if one exists. *)

val of_truthtable : man -> Truthtable.t -> t
(** Build the BDD of a truth table over variables [0 .. arity-1]. *)

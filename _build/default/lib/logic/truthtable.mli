(** Truth tables of Boolean functions with up to 6 inputs, packed into the
    low [2^n] bits of an [int64].  Bit [i] is the function value on the input
    assignment whose bit [k] is [(i lsr k) land 1] for input [k].

    These are the workhorse of cell-function description, cut matching during
    technology mapping, and switch-level defect characterization. *)

type t = { arity : int; bits : int64 }

val create : int -> (bool array -> bool) -> t
(** [create n f] tabulates [f] over all [2^n] assignments. *)

val of_bits : arity:int -> int64 -> t
(** Build from raw bits; bits above [2^arity] are masked off. *)

val arity : t -> int
val bits : t -> int64

val eval : t -> bool array -> bool
(** Evaluate on an assignment of length [arity]. *)

val eval_index : t -> int -> bool
(** Evaluate on the assignment encoded as an integer minterm index. *)

val const0 : int -> t
val const1 : int -> t
val var : int -> int -> t
(** [var n k] is the projection onto input [k] among [n] inputs. *)

val lnot : t -> t
val land_ : t -> t -> t
val lor_ : t -> t -> t
val lxor_ : t -> t -> t

val equal : t -> t -> bool

val cofactor : t -> int -> bool -> t
(** [cofactor f k v] fixes input [k] to [v]; arity is unchanged (the input
    becomes vacuous). *)

val depends_on : t -> int -> bool
(** Whether the function actually depends on input [k]. *)

val support_size : t -> int

val permute : t -> int array -> t
(** [permute f p] renames input [k] of [f] to [p.(k)].  [p] must be a
    permutation of [0 .. arity-1]. *)

val all_permutations : t -> t list
(** All distinct truth tables obtained by permuting inputs; used for cut
    matching against library cells. *)

val minterms : t -> int list
(** Indices of assignments on which the function is 1. *)

val count_ones : t -> int

val to_string : t -> string
(** Hexadecimal rendering, e.g. ["0x8/2"] for AND2. *)

(** SAT-based combinational equivalence checking of two netlists.

    Scales to the full benchmark blocks where the BDD checker
    ({!Dfm_netlist.Equiv}) may blow up: a miter is built with the
    controllable points shared by label and a difference required at some
    observable point; UNSAT proves equivalence.  This is the check the
    resynthesis flow and the benches use to confirm that rewriting never
    changed circuit function. *)

type verdict =
  | Equivalent
  | Different of string  (** label of a differing observable point *)
  | Interface_mismatch of string

val check : Dfm_netlist.Netlist.t -> Dfm_netlist.Netlist.t -> verdict

lib/atpg/compact.ml: Array Dfm_faults Dfm_netlist Dfm_sim List

lib/atpg/compact.mli: Dfm_faults Dfm_netlist

lib/atpg/atpg.mli: Dfm_faults Dfm_netlist

lib/atpg/equiv_sat.ml: Array Dfm_netlist Dfm_sat Hashtbl List

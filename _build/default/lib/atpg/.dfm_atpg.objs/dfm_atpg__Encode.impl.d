lib/atpg/encode.ml: Array Dfm_cellmodel Dfm_faults Dfm_logic Dfm_netlist Dfm_sat Dfm_sim Hashtbl List

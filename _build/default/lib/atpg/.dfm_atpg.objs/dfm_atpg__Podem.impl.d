lib/atpg/podem.ml: Array Dfm_faults Dfm_logic Dfm_netlist Dfm_sim Hashtbl List

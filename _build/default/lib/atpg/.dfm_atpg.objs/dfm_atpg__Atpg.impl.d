lib/atpg/atpg.ml: Array Dfm_faults Dfm_netlist Dfm_sim Dfm_util Encode Int64 List

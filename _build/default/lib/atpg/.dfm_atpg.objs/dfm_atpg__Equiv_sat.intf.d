lib/atpg/equiv_sat.mli: Dfm_netlist

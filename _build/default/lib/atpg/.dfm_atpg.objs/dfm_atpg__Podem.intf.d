lib/atpg/podem.mli: Dfm_faults Dfm_sim

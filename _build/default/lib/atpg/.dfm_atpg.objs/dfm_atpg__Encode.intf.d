lib/atpg/encode.mli: Dfm_faults Dfm_sim

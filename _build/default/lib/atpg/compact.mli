(** Static test-set compaction.

    The paper's column [T] matters because tester time scales with it
    (Section I: more patterns for the DFM faults must not explode the test
    set).  {!Atpg.generate} already compacts greedily during generation;
    this pass squeezes further after the fact: simulate the set in reverse
    order and keep only tests that detect at least one not-yet-covered
    fault — the classic reverse-order static compaction. *)

val reverse_order :
  Dfm_netlist.Netlist.t ->
  faults:Dfm_faults.Fault.t array ->
  tests:bool array list ->
  bool array list
(** The kept subset, in original order.  Coverage is preserved: every fault
    detected by the input set is detected by the result (transition faults
    keep both their frame-1 and frame-2 witnesses). *)

val detects :
  Dfm_netlist.Netlist.t ->
  faults:Dfm_faults.Fault.t array ->
  tests:bool array list ->
  int
(** Number of faults the test set detects (transition faults need both
    components covered) — the coverage oracle used by tests. *)

(** SAT encoding of fault-detection conditions.

    For each fault a *detection miter* is built over the cone of influence:
    the fault-free circuit restricted to the transitive fanin of the region
    of interest, a faulty copy of the transitive fanout of the fault site,
    an activation constraint specific to the fault model, and a requirement
    that at least one observable point differs.  SAT yields a test pattern;
    UNSAT is a proof that the fault is undetectable — the property whose
    spatial clustering the paper studies.

    Transition faults issue two queries (frame-1 initialization and frame-2
    stuck-at detection, under the enhanced-scan assumption); both must be
    satisfiable for the fault to be detectable. *)

type test = {
  values : bool array;
      (** over the controllable points in {!Dfm_sim.Logic_sim.inputs} order;
          points outside the miter's cone of influence are [false] *)
  cared : bool array;
      (** which points the miter actually constrained — the rest may be
          re-randomized freely without losing detection of this fault *)
}

type verdict =
  | Tests of test list  (** one pattern, or two for a transition fault *)
  | Undetectable
  | Unknown  (** conflict budget exhausted (not produced at the defaults) *)

val check :
  ?max_conflicts:int ->
  Dfm_sim.Logic_sim.t ->
  Dfm_faults.Fault.t ->
  verdict

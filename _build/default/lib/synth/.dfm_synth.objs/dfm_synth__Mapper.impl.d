lib/synth/mapper.ml: Aig Array Dfm_logic Dfm_netlist Float Hashtbl Int64 List Printf

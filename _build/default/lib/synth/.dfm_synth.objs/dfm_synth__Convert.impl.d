lib/synth/convert.ml: Aig Array Dfm_logic Dfm_netlist Hashtbl List Mapper Sweep

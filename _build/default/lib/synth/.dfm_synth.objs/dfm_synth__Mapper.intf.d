lib/synth/mapper.mli: Aig Dfm_netlist

lib/synth/rewrite.ml: Aig Array Dfm_util Hashtbl List

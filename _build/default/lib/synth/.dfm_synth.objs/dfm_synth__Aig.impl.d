lib/synth/aig.ml: Array Hashtbl List

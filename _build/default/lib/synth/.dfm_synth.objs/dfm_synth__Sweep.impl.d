lib/synth/sweep.ml: Aig Array Dfm_sat Dfm_util Hashtbl Int64 List

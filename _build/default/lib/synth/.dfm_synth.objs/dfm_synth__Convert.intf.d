lib/synth/convert.mli: Aig Dfm_netlist Mapper

lib/synth/aig.mli:

module Solver = Dfm_sat.Solver

let sim_words = 8  (* 8 * 64 = 512 random patterns *)

let sweep ?(seed = 91) aig ~outputs =
  let n = Aig.num_nodes aig in
  let rng = Dfm_util.Rng.create seed in
  (* Random-simulation signatures over the old graph. *)
  let sig_ = Array.make n (Array.make 0 0L) in
  sig_.(0) <- Array.make sim_words 0L;
  for v = 1 to n - 1 do
    match Aig.kind aig v with
    | Aig.Const0 -> sig_.(v) <- Array.make sim_words 0L
    | Aig.Input _ -> sig_.(v) <- Array.init sim_words (fun _ -> Dfm_util.Rng.bits64 rng)
    | Aig.And (a, b) ->
        let word l k =
          let w = sig_.(Aig.node_of_lit l).(k) in
          if Aig.is_complemented l then Int64.lognot w else w
        in
        sig_.(v) <- Array.init sim_words (fun k -> Int64.logand (word a k) (word b k))
  done;
  (* Lazy CNF of the old graph for equivalence proofs. *)
  let solver = Solver.create () in
  let var_of = Array.make n 0 in
  let rec cnf_node v =
    if var_of.(v) <> 0 then var_of.(v)
    else begin
      let x = Solver.new_var solver in
      var_of.(v) <- x;
      (match Aig.kind aig v with
      | Aig.Const0 -> Solver.add_clause solver [ -x ]
      | Aig.Input _ -> ()
      | Aig.And (a, b) ->
          let la = cnf_lit a and lb = cnf_lit b in
          Solver.add_clause solver [ -x; la ];
          Solver.add_clause solver [ -x; lb ];
          Solver.add_clause solver [ x; -la; -lb ]);
      x
    end
  and cnf_lit l =
    let x = cnf_node (Aig.node_of_lit l) in
    if Aig.is_complemented l then -x else x
  in
  (* Prove [v] equivalent to literal [cand] (over node [u] or constant). *)
  let proves_equal v cand_lit =
    (* UNSAT of (v xor cand) means equivalence. *)
    let xv = cnf_node v in
    let xc =
      match cand_lit with
      | `Const false -> None
      | `Const true -> Some `True
      | `Lit l -> Some (`Var (cnf_lit l))
    in
    let result =
      match xc with
      | None -> (* v <> 0 satisfiable? *) Solver.solve ~assumptions:[ xv ] solver
      | Some `True -> Solver.solve ~assumptions:[ -xv ] solver
      | Some (`Var c) -> (
          (* need a fresh xor selector per query *)
          let d = Solver.new_var solver in
          Dfm_sat.Tseitin.xor_ solver ~out:d xv c;
          Solver.solve ~assumptions:[ d ] solver)
    in
    result = Solver.Unsat
  in
  (* Rebuild with substitution. *)
  let fresh = Aig.create () in
  let map = Array.make n Aig.lit_false in
  let classes = Hashtbl.create 256 in
  (* signature key -> (old node, polarity of stored signature) *)
  let norm_sig s =
    (* Normalize polarity: flip if the first word's lowest bit is 1. *)
    let flip = Int64.logand s.(0) 1L = 1L in
    let key = Array.map (fun w -> if flip then Int64.lognot w else w) s in
    (Array.to_list key, flip)
  in
  let zero_sig s = Array.for_all (fun w -> w = 0L) s in
  let ones_sig s = Array.for_all (fun w -> w = -1L) s in
  for v = 0 to n - 1 do
    match Aig.kind aig v with
    | Aig.Const0 -> map.(v) <- Aig.lit_false
    | Aig.Input name -> begin
        map.(v) <- Aig.input fresh name;
        let key, flip = norm_sig sig_.(v) in
        if not (Hashtbl.mem classes key) then Hashtbl.add classes key (v, flip)
      end
    | Aig.And (a, b) ->
        let lit_of l =
          let m = map.(Aig.node_of_lit l) in
          if Aig.is_complemented l then Aig.not_ m else m
        in
        let built = Aig.and_ fresh (lit_of a) (lit_of b) in
        let s = sig_.(v) in
        let resolved =
          if zero_sig s && proves_equal v (`Const false) then Some Aig.lit_false
          else if ones_sig s && proves_equal v (`Const true) then Some Aig.lit_true
          else begin
            let key, flip = norm_sig s in
            match Hashtbl.find_opt classes key with
            | Some (u, uflip) ->
                (* v == u when stored/current polarities agree *)
                let complement = flip <> uflip in
                let cand = Aig.mk_lit u complement in
                if proves_equal v (`Lit cand) then begin
                  let mu = map.(u) in
                  Some (if complement then Aig.not_ mu else mu)
                end
                else None
            | None ->
                Hashtbl.add classes key (v, flip);
                None
          end
        in
        map.(v) <- (match resolved with Some l -> l | None -> built)
  done;
  let outputs' =
    List.map
      (fun (name, l) ->
        let m = map.(Aig.node_of_lit l) in
        (name, if Aig.is_complemented l then Aig.not_ m else m))
      outputs
  in
  (fresh, outputs')

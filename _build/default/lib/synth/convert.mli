(** Bridges between netlists and AIGs, and the resynthesis entry points.

    [remap_region] is the paper's [Synthesize()] call: extract the subcircuit
    [C_sub], decompose it to an AIG, re-cover it with the *allowed* cells
    only, and splice the result back.  [remap_full] re-synthesizes the whole
    combinational cloud (used by the restricted-library ablation of
    Section IV); flip-flops are preserved in place. *)

val to_aig : Dfm_netlist.Netlist.t -> Aig.t * (string * Aig.lit) list
(** Decompose a purely combinational netlist.  AIG inputs are named after
    the netlist's PI ports; the returned association lists PO port names to
    output literals.  @raise Invalid_argument on sequential gates. *)

val remap :
  ?goal:[ `Delay | `Area ] ->
  ?sweep:bool ->
  ?table:Mapper.table ->
  Dfm_netlist.Netlist.t ->
  library:Dfm_netlist.Library.t ->
  Dfm_netlist.Netlist.t
(** Decompose, SAT-sweep (unless [sweep:false]) and re-map a combinational
    netlist onto [library] (same PI/PO names).
    @raise Mapper.Unmappable if the cells are not sufficient. *)

val remap_region :
  ?goal:[ `Delay | `Area ] ->
  ?sweep:bool ->
  ?table:Mapper.table ->
  Dfm_netlist.Netlist.t ->
  gates:int list ->
  library:Dfm_netlist.Library.t ->
  Dfm_netlist.Netlist.t
(** Re-synthesize only the given combinational gates with the allowed cells,
    leaving the rest of the circuit untouched. *)

val remap_full :
  ?goal:[ `Delay | `Area ] ->
  ?sweep:bool ->
  ?table:Mapper.table ->
  Dfm_netlist.Netlist.t ->
  library:Dfm_netlist.Library.t ->
  Dfm_netlist.Netlist.t
(** Re-synthesize the entire combinational cloud. *)

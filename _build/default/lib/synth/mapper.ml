module N = Dfm_netlist.Netlist
module Cell = Dfm_netlist.Cell
module Library = Dfm_netlist.Library
module Tt = Dfm_logic.Truthtable

exception Unmappable of string

(* A match: a cell plus the assignment of its pins to cut-leaf indices (each
   possibly through an inverter), and whether the cell computes the
   complement of the cut function.  Input-phase matching is what lets thin
   libraries (e.g. after the resynthesis procedure excludes the large cells)
   still cover functions like a' * b. *)
type match_ = {
  m_cell : Cell.t;
  m_pins : (int * bool) array;  (* pin index -> (leaf index, negated?) *)
  m_inverted : bool;
}

let num_negated_leaves m =
  Array.to_list m.m_pins
  |> List.filter_map (fun (leaf, neg) -> if neg then Some leaf else None)
  |> List.sort_uniq compare |> List.length

type table = {
  tbl : (int * int, match_ list) Hashtbl.t;  (* (n_leaves, tt bits) -> candidates *)
  inverter : match_ option;                  (* best cover of f(x) = not x *)
}

let max_cut = 4

(* All pin assignments of [a] pins onto [s] leaves with per-pin phase, such
   that every leaf is used by at least one pin. *)
let assignments a s =
  let options =
    List.concat_map (fun leaf -> [ (leaf, false); (leaf, true) ]) (List.init s (fun i -> i))
  in
  let rec go k acc =
    if k = a then [ List.rev acc ]
    else List.concat_map (fun o -> go (k + 1) (o :: acc)) options
  in
  go 0 []
  |> List.filter (fun f ->
         List.for_all (fun v -> List.exists (fun (leaf, _) -> leaf = v) f)
           (List.init s (fun i -> i)))
  |> List.map Array.of_list

(* The function over [s] leaf variables induced by wiring cell pins to
   (possibly inverted) leaves according to [assign]. *)
let induced_tt (cell : Cell.t) assign s =
  Tt.create s (fun leaf_vals ->
      let pin_vals = Array.map (fun (leaf, neg) -> leaf_vals.(leaf) <> neg) assign in
      Tt.eval cell.Cell.func pin_vals)

let tt_key tt = (Tt.arity tt, Int64.to_int (Tt.bits tt))

let build_table lib =
  let tbl = Hashtbl.create 1024 in
  let add key m =
    let old = try Hashtbl.find tbl key with Not_found -> [] in
    Hashtbl.replace tbl key (m :: old)
  in
  List.iter
    (fun (cell : Cell.t) ->
      let a = Cell.arity cell in
      if a >= 1 && a <= max_cut then
        for s = 1 to a do
          List.iter
            (fun assign ->
              let tt = induced_tt cell assign s in
              (* Skip matches with vacuous leaves: the same function is
                 registered under the smaller leaf count. *)
              if Tt.support_size tt = s then begin
                add (tt_key tt) { m_cell = cell; m_pins = assign; m_inverted = false };
                add (tt_key (Tt.lnot tt)) { m_cell = cell; m_pins = assign; m_inverted = true }
              end)
            (assignments a s)
        done)
    (Library.combinational lib);
  (* Cheapest direct, phase-free cover of NOT, used to realize complemented
     outputs and negated match inputs (it must itself need no inverters). *)
  let not_tt = Tt.lnot (Tt.var 1 0) in
  let inverter =
    match Hashtbl.find_opt tbl (tt_key not_tt) with
    | None -> None
    | Some ms -> (
        match
          List.filter
            (fun m -> (not m.m_inverted) && num_negated_leaves m = 0)
            ms
        with
        | [] -> None
        | direct ->
            Some
              (List.fold_left
                 (fun best m ->
                   if m.m_cell.Cell.area < best.m_cell.Cell.area then m else best)
                 (List.hd direct) direct))
  in
  { tbl; inverter }

let can_express_basics t =
  let have tt = Hashtbl.mem t.tbl (tt_key tt) in
  let v0 = Tt.var 2 0 and v1 = Tt.var 2 1 in
  t.inverter <> None && have (Tt.land_ v0 v1)

(* ------------------------------------------------------------------ *)
(* Cut enumeration                                                      *)
(* ------------------------------------------------------------------ *)

type cut = { leaves : int array (* sorted node ids *) }

let cut_union a b =
  let merged =
    List.sort_uniq compare (Array.to_list a.leaves @ Array.to_list b.leaves)
  in
  if List.length merged > max_cut then None else Some { leaves = Array.of_list merged }

let subset a b =
  (* a.leaves subset of b.leaves, both sorted *)
  let la = a.leaves and lb = b.leaves in
  let i = ref 0 and j = ref 0 and ok = ref true in
  while !i < Array.length la && !ok do
    if !j >= Array.length lb then ok := false
    else if lb.(!j) = la.(!i) then begin incr i; incr j end
    else if lb.(!j) < la.(!i) then incr j
    else ok := false
  done;
  !ok

let prune_cuts cuts =
  (* Dedup, drop dominated (strict superset of another), keep the smallest. *)
  let cuts = List.sort_uniq (fun a b -> compare a.leaves b.leaves) cuts in
  let non_dominated =
    List.filter
      (fun c -> not (List.exists (fun c' -> c' != c && subset c' c) cuts))
      cuts
  in
  let sorted =
    List.sort (fun a b -> compare (Array.length a.leaves) (Array.length b.leaves)) non_dominated
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take 8 sorted

(* Truth table of [node] over the cut leaves. *)
let cut_tt aig node (c : cut) =
  let nvars = Array.length c.leaves in
  let var_of = Hashtbl.create 8 in
  Array.iteri (fun k v -> Hashtbl.add var_of v k) c.leaves;
  let memo = Hashtbl.create 32 in
  let rec eval_node v =
    match Hashtbl.find_opt memo v with
    | Some tt -> tt
    | None ->
        let tt =
          match Hashtbl.find_opt var_of v with
          | Some k -> Tt.var nvars k
          | None -> (
              match Aig.kind aig v with
              | Aig.Const0 -> Tt.const0 nvars
              | Aig.Input _ ->
                  failwith "Mapper.cut_tt: input node not a cut leaf"
              | Aig.And (a, b) -> Tt.land_ (eval_lit a) (eval_lit b))
        in
        Hashtbl.add memo v tt;
        tt
  and eval_lit l =
    let tt = eval_node (Aig.node_of_lit l) in
    if Aig.is_complemented l then Tt.lnot tt else tt
  in
  eval_node node

(* Drop leaves the cut function does not depend on. *)
let normalize_cut_tt cut tt =
  let deps = List.filter (fun k -> Tt.depends_on tt k) (List.init (Tt.arity tt) (fun i -> i)) in
  let s = List.length deps in
  let leaf_of = Array.of_list deps in
  let small =
    Tt.create s (fun vals ->
        let full = Array.make (Tt.arity tt) false in
        Array.iteri (fun k d -> full.(d) <- vals.(k)) leaf_of;
        Tt.eval tt full)
  in
  let leaves = Array.map (fun d -> cut.leaves.(d)) leaf_of in
  ({ leaves }, small)

(* ------------------------------------------------------------------ *)
(* Covering                                                             *)
(* ------------------------------------------------------------------ *)

type choice = {
  ch_cut : cut;           (* normalized cut *)
  ch_match : match_;
  ch_arrival : float;
  ch_flow : float;
}

let cell_delay (c : Cell.t) = c.Cell.intrinsic_delay +. (c.Cell.drive_res *. 0.006)

let match_cost table m =
  let n_inv = num_negated_leaves m + if m.m_inverted then 1 else 0 in
  if n_inv = 0 then (m.m_cell.Cell.area, cell_delay m.m_cell)
  else
    match table.inverter with
    | Some inv ->
        ( m.m_cell.Cell.area +. (float_of_int n_inv *. inv.m_cell.Cell.area),
          cell_delay m.m_cell +. cell_delay inv.m_cell )
    | None -> (infinity, infinity)

let map ?(goal = `Delay) table ~library ~name aig ~outputs =
  let n = Aig.num_nodes aig in
  let cuts : cut list array = Array.make n [] in
  let arrival = Array.make n 0.0 in
  let flow = Array.make n 0.0 in
  let best : choice option array = Array.make n None in
  let refs = Array.make n 1 in
  for v = 0 to n - 1 do
    match Aig.kind aig v with
    | Aig.And (a, b) ->
        refs.(Aig.node_of_lit a) <- refs.(Aig.node_of_lit a) + 1;
        refs.(Aig.node_of_lit b) <- refs.(Aig.node_of_lit b) + 1
    | Aig.Const0 | Aig.Input _ -> ()
  done;
  for v = 0 to n - 1 do
    match Aig.kind aig v with
    | Aig.Const0 -> cuts.(v) <- [ { leaves = [||] } ]
    | Aig.Input _ -> cuts.(v) <- [ { leaves = [| v |] } ]
    | Aig.And (a, b) ->
        let na = Aig.node_of_lit a and nb = Aig.node_of_lit b in
        let merged =
          List.concat_map
            (fun ca -> List.filter_map (fun cb -> cut_union ca cb) cuts.(nb))
            cuts.(na)
        in
        let all = { leaves = [| v |] } :: prune_cuts merged in
        cuts.(v) <- all;
        (* Choose the best matched cut (the trivial self-cut is excluded). *)
        let key ch =
          match goal with
          | `Delay -> (ch.ch_arrival, ch.ch_flow)
          | `Area -> (ch.ch_flow, ch.ch_arrival)
        in
        let consider ch =
          match best.(v) with
          | Some prev when key prev <= key ch -> ()
          | Some _ | None -> best.(v) <- Some ch
        in
        List.iter
          (fun c ->
            if Array.length c.leaves >= 1 && not (Array.length c.leaves = 1 && c.leaves.(0) = v)
            then begin
              let tt = cut_tt aig v c in
              let nc, ntt = normalize_cut_tt c tt in
              if Tt.support_size ntt = Tt.arity ntt && Tt.arity ntt >= 1 then
                match Hashtbl.find_opt table.tbl (tt_key ntt) with
                | None -> ()
                | Some ms ->
                    List.iter
                      (fun m ->
                        let area, delay = match_cost table m in
                        if area < infinity then begin
                          let arr =
                            Array.fold_left
                              (fun acc leaf -> Float.max acc arrival.(leaf))
                              0.0 nc.leaves
                            +. delay
                          in
                          let fl =
                            Array.fold_left
                              (fun acc leaf ->
                                acc +. (flow.(leaf) /. float_of_int (max 1 refs.(leaf))))
                              area nc.leaves
                          in
                          consider { ch_cut = nc; ch_match = m; ch_arrival = arr; ch_flow = fl }
                        end)
                      ms
            end)
          all;
        (match best.(v) with
        | Some ch ->
            arrival.(v) <- ch.ch_arrival;
            flow.(v) <- ch.ch_flow
        | None ->
            raise
              (Unmappable
                 (Printf.sprintf "node %d of %s has no cover in the allowed cells" v name)))
  done;
  (* Extract the cover needed by the outputs. *)
  let b = N.Builder.create ~name library in
  let net_of_node = Array.make n (-1) in
  List.iter
    (fun (input_name, l) ->
      net_of_node.(Aig.node_of_lit l) <- N.Builder.add_pi b input_name)
    (Aig.inputs aig);
  let rec materialize v =
    if net_of_node.(v) >= 0 then net_of_node.(v)
    else
      match Aig.kind aig v with
      | Aig.Const0 ->
          let nid = N.Builder.const_net b false in
          net_of_node.(v) <- nid;
          nid
      | Aig.Input _ -> assert false
      | Aig.And _ ->
          let ch = match best.(v) with Some ch -> ch | None -> assert false in
          let leaf_nets = Array.map materialize ch.ch_cut.leaves in
          let inv_cache = Hashtbl.create 4 in
          let inverted_net nid =
            match Hashtbl.find_opt inv_cache nid with
            | Some n -> n
            | None -> (
                match table.inverter with
                | Some inv ->
                    let n =
                      N.Builder.add_gate b ~cell:inv.m_cell.Cell.name
                        (Array.map (fun _ -> nid) inv.m_pins)
                    in
                    Hashtbl.add inv_cache nid n;
                    n
                | None -> raise (Unmappable "negated match input without an inverter"))
          in
          let fanins =
            Array.map
              (fun (leaf_idx, neg) ->
                let nid = leaf_nets.(leaf_idx) in
                if neg then inverted_net nid else nid)
              ch.ch_match.m_pins
          in
          let out = N.Builder.add_gate b ~cell:ch.ch_match.m_cell.Cell.name fanins in
          let out =
            if ch.ch_match.m_inverted then begin
              match table.inverter with
              | Some inv ->
                  N.Builder.add_gate b ~cell:inv.m_cell.Cell.name
                    (Array.map (fun _ -> out) inv.m_pins)
              | None -> raise (Unmappable "complemented match without an inverter")
            end
            else out
          in
          net_of_node.(v) <- out;
          out
  in
  let invert_net nid =
    match table.inverter with
    | Some inv ->
        N.Builder.add_gate b ~cell:inv.m_cell.Cell.name (Array.map (fun _ -> nid) inv.m_pins)
    | None -> raise (Unmappable "output inversion without an inverter")
  in
  List.iter
    (fun (po_name, l) ->
      let v = Aig.node_of_lit l in
      let nid =
        if v = 0 then N.Builder.const_net b (Aig.is_complemented l)
        else begin
          let nid = materialize v in
          if Aig.is_complemented l then invert_net nid else nid
        end
      in
      N.Builder.mark_po b po_name nid)
    outputs;
  N.Builder.finish b

(** And-inverter graphs with structural hashing.

    The technology-independent intermediate representation of the synthesis
    substrate: [Synthesize()] in the paper decomposes the subcircuit under
    rewrite into an AIG and re-covers it with the allowed standard cells.

    Literals pack a node id and a complement bit ([2*node + c]); node 0 is
    the constant-false node, so literal 0 is false and literal 1 is true.
    Construction is hash-consed with the usual simplifications
    (x∧0=0, x∧1=x, x∧x=x, x∧¬x=0). *)

type t

type lit = int

val create : unit -> t

val lit_false : lit
val lit_true : lit

val input : t -> string -> lit
(** A fresh named primary input (one node per distinct name). *)

val and_ : t -> lit -> lit -> lit
val not_ : lit -> lit
val or_ : t -> lit -> lit -> lit
val xor_ : t -> lit -> lit -> lit
val mux : t -> sel:lit -> lit -> lit -> lit
(** [mux t ~sel a b] is [if sel then b else a]. *)

val and_list : t -> lit list -> lit
val or_list : t -> lit list -> lit

val num_nodes : t -> int
(** Total nodes including the constant and inputs. *)

val num_ands : t -> int

val inputs : t -> (string * lit) list
(** In creation order. *)

(** {1 Structural access (for the mapper)} *)

val node_of_lit : lit -> int
val is_complemented : lit -> bool
val mk_lit : int -> bool -> lit

type node_kind =
  | Const0
  | Input of string
  | And of lit * lit

val kind : t -> int -> node_kind

val eval : t -> (string -> bool) -> lit -> bool
(** Evaluate a literal under an input assignment (for tests). *)

type lit = int

type node_kind = Const0 | Input of string | And of lit * lit

type t = {
  mutable nodes : node_kind array;
  mutable n : int;
  strash : (int * int, int) Hashtbl.t;
  mutable input_list : (string * lit) list;  (* reversed *)
  input_tbl : (string, lit) Hashtbl.t;
}

let lit_false = 0
let lit_true = 1

let node_of_lit l = l lsr 1
let is_complemented l = l land 1 = 1
let mk_lit n c = (n lsl 1) lor (if c then 1 else 0)
let not_ l = l lxor 1

let create () =
  let t =
    {
      nodes = Array.make 1024 Const0;
      n = 1;
      strash = Hashtbl.create 4096;
      input_list = [];
      input_tbl = Hashtbl.create 64;
    }
  in
  t.nodes.(0) <- Const0;
  t

let alloc t k =
  if t.n = Array.length t.nodes then begin
    let bigger = Array.make (2 * t.n) Const0 in
    Array.blit t.nodes 0 bigger 0 t.n;
    t.nodes <- bigger
  end;
  let id = t.n in
  t.nodes.(id) <- k;
  t.n <- id + 1;
  id

let input t name =
  match Hashtbl.find_opt t.input_tbl name with
  | Some l -> l
  | None ->
      let l = mk_lit (alloc t (Input name)) false in
      Hashtbl.add t.input_tbl name l;
      t.input_list <- (name, l) :: t.input_list;
      l

let and_ t a b =
  let a, b = if a < b then (a, b) else (b, a) in
  if a = lit_false then lit_false
  else if a = lit_true then b
  else if a = b then a
  else if a = not_ b then lit_false
  else
    match Hashtbl.find_opt t.strash (a, b) with
    | Some id -> mk_lit id false
    | None ->
        let id = alloc t (And (a, b)) in
        Hashtbl.add t.strash (a, b) id;
        mk_lit id false

let or_ t a b = not_ (and_ t (not_ a) (not_ b))

let xor_ t a b = or_ t (and_ t a (not_ b)) (and_ t (not_ a) b)

let mux t ~sel a b = or_ t (and_ t sel b) (and_ t (not_ sel) a)

let and_list t = List.fold_left (and_ t) lit_true

let or_list t = List.fold_left (or_ t) lit_false

let num_nodes t = t.n

let num_ands t =
  let c = ref 0 in
  for i = 0 to t.n - 1 do
    match t.nodes.(i) with And _ -> incr c | Const0 | Input _ -> ()
  done;
  !c

let inputs t = List.rev t.input_list

let kind t i = t.nodes.(i)

let eval t env l =
  let memo = Hashtbl.create 64 in
  let rec node v =
    match Hashtbl.find_opt memo v with
    | Some b -> b
    | None ->
        let b =
          match t.nodes.(v) with
          | Const0 -> false
          | Input name -> env name
          | And (x, y) -> lit x && lit y
        in
        Hashtbl.add memo v b;
        b
  and lit l =
    let b = node (node_of_lit l) in
    if is_complemented l then not b else b
  in
  lit l

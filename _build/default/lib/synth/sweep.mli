(** SAT sweeping: semantic simplification of an AIG.

    Commercial logic synthesis removes redundancy the structural hash cannot
    see — nodes that are constant, or equivalent to another node (possibly
    complemented), given the whole extracted subcircuit.  This pass is what
    lets the resynthesis procedure *eliminate* undetectable faults rather
    than merely shuffle them between cell types: a cell whose activation
    condition is unsatisfiable within the subcircuit sits on provably
    redundant logic, and sweeping deletes that logic.

    Candidate equivalences are proposed by 512-pattern random simulation
    signatures and confirmed by SAT (a miter over the two cones); confirmed
    nodes are merged while rebuilding the graph. *)

val sweep :
  ?seed:int ->
  Aig.t ->
  outputs:(string * Aig.lit) list ->
  Aig.t * (string * Aig.lit) list
(** Returns a rebuilt AIG and the translated output literals.  Inputs keep
    their names; the result computes the same functions. *)

(** Cut-based technology mapping of an AIG onto a standard-cell library.

    This is [Synthesize()] from the paper's resynthesis loop: it re-covers a
    subcircuit with an *allowed subset* of the library (the resynthesis
    procedure repeatedly excludes the cells with the most internal DFM
    faults).  K-feasible cuts (K = 4) are enumerated per node, each cut's
    local function is matched against the library — including pin-bridged
    matches (several pins tied to one leaf) and output-complemented matches
    (cell plus inverter) — and a covering is chosen by dynamic programming
    on (arrival time, area flow).

    Raising {!Unmappable} is the mapper's way of saying the allowed cells are
    *not sufficient* to synthesize the subcircuit — the eligibility condition
    (3) of Section III-B. *)

exception Unmappable of string

type table
(** Precomputed cut-function → cell match table for one library subset. *)

val build_table : Dfm_netlist.Library.t -> table

val can_express_basics : table -> bool
(** Whether inversion and 2-input AND (in every polarity) are coverable —
    a cheap necessary screen before attempting a map. *)

val map :
  ?goal:[ `Delay | `Area ] ->
  table ->
  library:Dfm_netlist.Library.t ->
  name:string ->
  Aig.t ->
  outputs:(string * Aig.lit) list ->
  Dfm_netlist.Netlist.t
(** Map the AIG; the result has one PI per AIG input (same names) and one PO
    per entry of [outputs].  [goal] selects the covering objective: [`Delay]
    (default) minimizes arrival first, [`Area] minimizes area flow first —
    the latter is what the resynthesis loop uses, since its delay/power
    budget is a constraint checked downstream rather than an objective.
    @raise Unmappable when some node cannot be covered with the allowed
    cells. *)

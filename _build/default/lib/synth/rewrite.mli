(** AIG restructuring passes.

    {!balance} rebuilds AND trees in balanced (depth-minimal) form: long
    conjunction chains left by SOP construction or netlist decomposition
    become log-depth trees, which the mapper then covers with shorter
    critical paths.  The function of every output is preserved (structural
    hashing plus property tests enforce it). *)

val balance : Aig.t -> outputs:(string * Aig.lit) list -> Aig.t * (string * Aig.lit) list
(** Returns the rebuilt AIG with translated output literals.  Never deeper
    than the input graph. *)

val depth : Aig.t -> (string * Aig.lit) list -> int
(** Maximum AND-depth over the given outputs (inputs and constants are at
    depth 0). *)

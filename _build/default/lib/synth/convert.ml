module N = Dfm_netlist.Netlist
module Cell = Dfm_netlist.Cell
module Tt = Dfm_logic.Truthtable

(* Shannon decomposition on the first support variable. *)
let rec shannon_lit aig tt (lits : Aig.lit array) =
  let arity = Tt.arity tt in
  let rec first_dep k =
    if k >= arity then None else if Tt.depends_on tt k then Some k else first_dep (k + 1)
  in
  match first_dep 0 with
  | None -> if Tt.eval_index tt 0 then Aig.lit_true else Aig.lit_false
  | Some k ->
      let f0 = shannon_lit aig (Tt.cofactor tt k false) lits in
      let f1 = shannon_lit aig (Tt.cofactor tt k true) lits in
      Aig.mux aig ~sel:lits.(k) f0 f1

(* Prime implicants by pairwise cube merging (Quine-McCluskey without the
   covering table), then a greedy cover. *)
let sop_cover tt =
  let _n = Tt.arity tt in
  let minterms = Tt.minterms tt in
  if minterms = [] then []
  else begin
    let primes = ref [] in
    (* a cube is (bits, mask): positions in [mask] are don't-care *)
    let current = ref (List.map (fun m -> (m, 0)) minterms) in
    while !current <> [] do
      let combined = Hashtbl.create 32 in
      let next = Hashtbl.create 32 in
      List.iter
        (fun (b1, m1) ->
          List.iter
            (fun (b2, m2) ->
              if m1 = m2 && b1 < b2 then begin
                let diff = b1 lxor b2 in
                if diff land (diff - 1) = 0 then begin
                  Hashtbl.replace combined (b1, m1) ();
                  Hashtbl.replace combined (b2, m2) ();
                  Hashtbl.replace next (b1 land lnot diff, m1 lor diff) ()
                end
              end)
            !current)
        !current;
      List.iter
        (fun c -> if not (Hashtbl.mem combined c) then primes := c :: !primes)
        !current;
      current := Hashtbl.fold (fun c () acc -> c :: acc) next []
    done;
    (* Greedy cover of the minterms. *)
    let covers (bits, mask) m = m land lnot mask = bits land lnot mask in
    let uncovered = ref minterms in
    let chosen = ref [] in
    while !uncovered <> [] do
      let best =
        List.fold_left
          (fun acc p ->
            let gain = List.length (List.filter (covers p) !uncovered) in
            match acc with
            | Some (_, g) when g >= gain -> acc
            | _ when gain = 0 -> acc
            | _ -> Some (p, gain))
          None !primes
      in
      match best with
      | None -> uncovered := []  (* cannot happen: primes cover everything *)
      | Some (p, _) ->
          chosen := p :: !chosen;
          uncovered := List.filter (fun m -> not (covers p m)) !uncovered
    done;
    !chosen
  end

let sop_lit aig tt (lits : Aig.lit array) =
  let n = Tt.arity tt in
  let cube_lit (bits, mask) =
    let factors =
      List.filter_map
        (fun k ->
          if (mask lsr k) land 1 = 1 then None
          else if (bits lsr k) land 1 = 1 then Some lits.(k)
          else Some (Aig.not_ lits.(k)))
        (List.init n (fun i -> i))
    in
    Aig.and_list aig factors
  in
  Aig.or_list aig (List.map cube_lit (sop_cover tt))

(* Pick the most compact construction: Shannon, SOP, or complemented SOP.
   Each variant is sized in a throwaway AIG first so losers leave no
   residue in the real graph. *)
let tt_to_lit aig tt (lits : Aig.lit array) =
  let size_of build =
    let probe = Aig.create () in
    let probe_lits = Array.mapi (fun i _ -> Aig.input probe (string_of_int i)) lits in
    ignore (build probe tt probe_lits);
    Aig.num_nodes probe
  in
  let variants =
    [
      (size_of shannon_lit, fun () -> shannon_lit aig tt lits);
      (size_of sop_lit, fun () -> sop_lit aig tt lits);
      ( size_of (fun a t l -> Aig.not_ (sop_lit a (Tt.lnot t) l)),
        fun () -> Aig.not_ (sop_lit aig (Tt.lnot tt) lits) );
    ]
  in
  let _, best = List.fold_left (fun (bs, bf) (s, f) -> if s < bs then (s, f) else (bs, bf))
      (max_int, fun () -> Aig.lit_false) variants
  in
  best ()

let to_aig nl =
  if N.seq_gates nl <> [] then invalid_arg "Convert.to_aig: sequential netlist";
  let aig = Aig.create () in
  let lit_of_net = Array.make (N.num_nets nl) Aig.lit_false in
  Array.iter (fun (p, nid) -> lit_of_net.(nid) <- Aig.input aig p) nl.N.pis;
  Array.iter
    (fun (nn : N.net) ->
      match nn.N.driver with
      | N.Const v -> lit_of_net.(nn.N.net_id) <- (if v then Aig.lit_true else Aig.lit_false)
      | N.Pi _ | N.Gate_out _ -> ())
    nl.N.nets;
  Array.iter
    (fun gid ->
      let g = N.gate nl gid in
      let lits = Array.map (fun fn -> lit_of_net.(fn)) g.N.fanins in
      lit_of_net.(g.N.fanout) <- tt_to_lit aig g.N.cell.Cell.func lits)
    (N.topo_order nl);
  let outputs = Array.to_list (Array.map (fun (p, nid) -> (p, lit_of_net.(nid))) nl.N.pos) in
  (aig, outputs)

let remap ?goal ?(sweep = true) ?table nl ~library =
  let table = match table with Some t -> t | None -> Mapper.build_table library in
  let aig, outputs = to_aig nl in
  let aig, outputs = if sweep then Sweep.sweep aig ~outputs else (aig, outputs) in
  Mapper.map ?goal table ~library ~name:nl.N.name aig ~outputs

let remap_region ?goal ?sweep ?table nl ~gates ~library =
  let sub, boundary = N.extract nl ~gates in
  let mapped = remap ?goal ?sweep ?table sub ~library in
  N.replace nl ~gates ~sub:mapped boundary

let remap_full ?goal ?sweep ?table nl ~library =
  let gates = List.map (fun (g : N.gate) -> g.N.gate_id) (N.comb_gates nl) in
  remap_region ?goal ?sweep ?table nl ~gates ~library

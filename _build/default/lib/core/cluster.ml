module N = Dfm_netlist.Netlist
module F = Dfm_faults.Fault
module UF = Dfm_util.Union_find

type t = {
  clusters : int list list;
  smax : int list;
  gmax : int list;
  gu : int list;
  n_undetectable : int;
}

let compute nl faults ~undetectable =
  let nf = Array.length faults in
  let undet = Array.init nf (fun fid -> undetectable fid) in
  (* Faults touching each gate. *)
  let by_gate = Hashtbl.create 256 in
  let gates_of = Array.make nf [] in
  Array.iteri
    (fun fid f ->
      if undet.(fid) then begin
        let gs = F.corresponding_gates nl f in
        gates_of.(fid) <- gs;
        List.iter
          (fun g ->
            Hashtbl.replace by_gate g (fid :: (try Hashtbl.find by_gate g with Not_found -> [])))
          gs
      end)
    faults;
  let uf = UF.create nf in
  (* Faults sharing a gate are adjacent. *)
  Hashtbl.iter
    (fun _g fids ->
      match fids with
      | [] -> ()
      | first :: rest -> List.iter (fun fid -> UF.union uf first fid) rest)
    by_gate;
  (* Faults on structurally adjacent gates are adjacent. *)
  Hashtbl.iter
    (fun g fids ->
      match fids with
      | [] -> ()
      | first :: _ ->
          List.iter
            (fun h ->
              match Hashtbl.find_opt by_gate h with
              | Some (hf :: _) when h > g -> UF.union uf first hf
              | Some _ | None -> ())
            (N.adjacent_gates nl g))
    by_gate;
  (* Collect clusters over undetectable faults only. *)
  let members = Hashtbl.create 64 in
  let n_undetectable = ref 0 in
  Array.iteri
    (fun fid _ ->
      if undet.(fid) then begin
        incr n_undetectable;
        let r = UF.find uf fid in
        Hashtbl.replace members r (fid :: (try Hashtbl.find members r with Not_found -> []))
      end)
    faults;
  let clusters =
    Hashtbl.fold (fun _ fids acc -> List.rev fids :: acc) members []
    |> List.sort (fun a b -> compare (List.length b, a) (List.length a, b))
  in
  let smax = match clusters with [] -> [] | c :: _ -> c in
  let gmax =
    List.concat_map (fun fid -> gates_of.(fid)) smax |> List.sort_uniq compare
  in
  let gu =
    Hashtbl.fold (fun g _ acc -> g :: acc) by_gate [] |> List.sort_uniq compare
  in
  { clusters; smax; gmax; gu; n_undetectable = !n_undetectable }

let smax_internal faults t =
  List.length (List.filter (fun fid -> F.is_internal faults.(fid)) t.smax)

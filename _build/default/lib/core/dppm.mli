(** DPPM impact of the undetectable DFM faults.

    The paper's motivation: a defect at an uncovered site escapes test, and
    because DFM-predicted defects are *systematic*, escapes scale with the
    number of uncovered sites and hit every die.  This model turns the
    undetectable-fault list into an expected defective-parts-per-million
    figure: each undetectable fault is an uncovered potential-defect site
    whose occurrence probability depends on its guideline category (vias
    fail more often than wide-metal spots, etc.), and the per-die escape
    probability composes independently across sites.

    Absolute values follow the chosen rates; the meaningful quantity is the
    original-vs-resynthesized *ratio*, reported by the bench next to
    Table II. *)

type rates = {
  via_ppm : float;      (** occurrence probability per via-guideline site, ppm *)
  metal_ppm : float;
  density_ppm : float;
}

val default_rates : rates
(** Via 12 ppm, Metal 6 ppm, Density 3 ppm per uncovered site — ballpark
    systematic-defect excess rates for a risky 0.18um feature. *)

val escapes_dppm : ?rates:rates -> Design.t -> float
(** Expected test escapes in DPPM: [1e6 * (1 - prod(1 - p_i))] over the
    undetectable faults of the design. *)

val breakdown : ?rates:rates -> Design.t -> (string * int * float) list
(** Per guideline-category: (category, uncovered sites, dppm share). *)

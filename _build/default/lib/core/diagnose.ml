module F = Dfm_faults.Fault
module Ls = Dfm_sim.Logic_sim
module Fs = Dfm_sim.Fault_sim

type response = {
  test_index : int;
  failing : int list;
}

type candidate = {
  fault : F.t;
  score : float;
  exact_matches : int;
}

(* Pack the test list into 64-pattern blocks and hand each block's syndromes
   to [consume block_index good syndromes_per_fault]. *)
let over_blocks nl ~tests ~faults consume =
  let ls = Ls.prepare nl in
  let fs = Fs.prepare nl in
  let tests = Array.of_list tests in
  let n = Array.length tests in
  let n_inputs = List.length (Ls.inputs ls) in
  let block = ref 0 in
  while !block * 64 < n do
    let base = !block * 64 in
    let count = min 64 (n - base) in
    let words = Array.make n_inputs 0L in
    for b = 0 to count - 1 do
      let pattern = tests.(base + b) in
      Array.iteri
        (fun i w ->
          if pattern.(i) then words.(i) <- Int64.logor w (Int64.shift_left 1L b))
        words
    done;
    let good = Ls.run ls words in
    let syndromes = Array.map (fun f -> Fs.syndrome fs ~good f) faults in
    consume ~base ~count syndromes;
    incr block
  done

let bit b w = Int64.logand (Int64.shift_right_logical w b) 1L = 1L

let simulate_defect nl ~tests fault =
  let responses = ref [] in
  over_blocks nl ~tests ~faults:[| fault |] (fun ~base ~count syndromes ->
      for b = 0 to count - 1 do
        let failing =
          List.filter_map
            (fun (net, w) -> if bit b w then Some net else None)
            syndromes.(0)
        in
        if failing <> [] then responses := { test_index = base + b; failing } :: !responses
      done);
  List.rev !responses

let diagnose nl ~tests ~observed ~candidates ?(top = 10) () =
  let observed_by_test = Hashtbl.create 64 in
  List.iter
    (fun r -> Hashtbl.replace observed_by_test r.test_index (List.sort_uniq compare r.failing))
    observed;
  let score = Array.make (Array.length candidates) 0.0 in
  let exact = Array.make (Array.length candidates) 0 in
  over_blocks nl ~tests ~faults:candidates (fun ~base ~count syndromes ->
      for b = 0 to count - 1 do
        let obs = Hashtbl.find_opt observed_by_test (base + b) in
        Array.iteri
          (fun ci syn ->
            let predicted =
              List.filter_map (fun (net, w) -> if bit b w then Some net else None) syn
            in
            match (obs, predicted) with
            | None, [] -> ()  (* both pass: neutral *)
            | None, _ :: _ ->
                (* predicted fail, observed pass: penalize *)
                score.(ci) <- score.(ci) -. 0.5
            | Some failing, predicted ->
                let inter =
                  List.length (List.filter (fun x -> List.mem x predicted) failing)
                in
                let union =
                  List.length (List.sort_uniq compare (failing @ predicted))
                in
                if union > 0 then score.(ci) <- score.(ci) +. (float_of_int inter /. float_of_int union);
                if List.sort_uniq compare predicted = failing then
                  exact.(ci) <- exact.(ci) + 1)
          syndromes
      done);
  let ranked =
    Array.to_list (Array.mapi (fun ci f -> { fault = f; score = score.(ci); exact_matches = exact.(ci) }) candidates)
    |> List.filter (fun c -> c.score > 0.0)
    |> List.sort (fun a b -> compare (b.score, b.exact_matches) (a.score, a.exact_matches))
  in
  List.filteri (fun i _ -> i < top) ranked

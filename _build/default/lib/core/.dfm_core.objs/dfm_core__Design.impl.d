lib/core/design.ml: Array Cluster Dfm_atpg Dfm_faults Dfm_guidelines Dfm_layout Dfm_netlist Dfm_timing Format List Option

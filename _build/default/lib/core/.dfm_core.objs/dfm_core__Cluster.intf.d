lib/core/cluster.mli: Dfm_faults Dfm_netlist

lib/core/dppm.ml: Array Design Dfm_atpg Dfm_cellmodel Dfm_faults Dfm_guidelines List

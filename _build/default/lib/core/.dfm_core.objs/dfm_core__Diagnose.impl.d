lib/core/diagnose.ml: Array Dfm_faults Dfm_sim Hashtbl Int64 List

lib/core/cluster.ml: Array Dfm_faults Dfm_netlist Dfm_util Hashtbl List

lib/core/design.mli: Cluster Dfm_atpg Dfm_guidelines Dfm_layout Dfm_netlist Dfm_timing Format

lib/core/report.mli: Design Dfm_guidelines Dfm_netlist Format Resynth

lib/core/report.ml: Array Design Dfm_atpg Dfm_cellmodel Dfm_faults Dfm_guidelines Dfm_layout Dfm_netlist Dfm_synth Float Format Hashtbl List Printf Resynth

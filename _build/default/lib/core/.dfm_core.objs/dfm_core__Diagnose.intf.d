lib/core/diagnose.mli: Dfm_faults Dfm_netlist

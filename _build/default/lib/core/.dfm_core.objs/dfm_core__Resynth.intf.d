lib/core/resynth.mli: Design Dfm_netlist

lib/core/dppm.mli: Design

lib/core/resynth.ml: Array Cluster Design Dfm_atpg Dfm_cellmodel Dfm_faults Dfm_guidelines Dfm_layout Dfm_netlist Dfm_synth Dfm_timing Float Hashtbl Int List Option Printf Set Unix

(** Fault diagnosis from tester fail data.

    The companion use-case of the paper's fault model (its reference [8] is
    "Defect diagnosis based on DFM guidelines"): when a die fails on the
    tester, match the observed per-test failing outputs against the
    predicted syndrome of every DFM fault candidate and rank them.  The
    ranking uses the standard per-test Jaccard match between observed and
    predicted failing-output sets, so a perfectly matching candidate scores
    1.0 per failing test. *)

type response = {
  test_index : int;
  failing : int list;  (** observable net ids that mismatched *)
}

type candidate = {
  fault : Dfm_faults.Fault.t;
  score : float;        (** sum over failing tests of the Jaccard match *)
  exact_matches : int;  (** tests where predicted = observed exactly *)
}

val simulate_defect :
  Dfm_netlist.Netlist.t ->
  tests:bool array list ->
  Dfm_faults.Fault.t ->
  response list
(** Fabricate the tester responses a die with the given defect would
    produce (only failing tests are listed). *)

val diagnose :
  Dfm_netlist.Netlist.t ->
  tests:bool array list ->
  observed:response list ->
  candidates:Dfm_faults.Fault.t array ->
  ?top:int ->
  unit ->
  candidate list
(** Ranked candidates, best first ([top] defaults to 10).  Candidates whose
    prediction shares nothing with the observation are dropped. *)

module F = Dfm_faults.Fault
module Defect = Dfm_cellmodel.Defect
module Atpg = Dfm_atpg.Atpg

type rates = {
  via_ppm : float;
  metal_ppm : float;
  density_ppm : float;
}

let default_rates = { via_ppm = 12.0; metal_ppm = 6.0; density_ppm = 3.0 }

let rate_of rates = function
  | Defect.Via -> rates.via_ppm
  | Defect.Metal -> rates.metal_ppm
  | Defect.Density -> rates.density_ppm

let undetectable_sites (d : Design.t) =
  let faults = d.Design.fault_list.Dfm_guidelines.Translate.faults in
  Array.to_list faults
  |> List.filter (fun (f : F.t) ->
         d.Design.classification.Atpg.status.(f.F.fault_id) = Atpg.Undetectable)

let escapes_dppm ?(rates = default_rates) d =
  let survive =
    List.fold_left
      (fun acc (f : F.t) -> acc *. (1.0 -. (rate_of rates f.F.origin.F.category /. 1.0e6)))
      1.0 (undetectable_sites d)
  in
  1.0e6 *. (1.0 -. survive)

let breakdown ?(rates = default_rates) d =
  let sites = undetectable_sites d in
  List.map
    (fun cat ->
      let mine = List.filter (fun (f : F.t) -> f.F.origin.F.category = cat) sites in
      let n = List.length mine in
      (Defect.category_to_string cat, n, float_of_int n *. rate_of rates cat))
    [ Defect.Via; Defect.Metal; Defect.Density ]

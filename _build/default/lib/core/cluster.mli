(** Clustering of undetectable faults (Section II of the paper).

    A gate *corresponds to* a fault when the fault is inside it (internal
    faults) or on its input/output nets (external faults).  Two gates are
    *structurally adjacent* when one drives the other; two faults are
    adjacent when they share a corresponding gate or lie on adjacent gates.
    The undetectable faults are partitioned into maximal subsets of
    transitively adjacent faults; [S_max] is the largest subset and [G_max]
    the gates corresponding to its faults. *)

type t = {
  clusters : int list list;   (** fault-id subsets, largest first *)
  smax : int list;            (** fault ids of the largest subset (S_max) *)
  gmax : int list;            (** gates corresponding to S_max (G_max) *)
  gu : int list;              (** gates corresponding to all undetectable faults (G_U) *)
  n_undetectable : int;
}

val compute :
  Dfm_netlist.Netlist.t ->
  Dfm_faults.Fault.t array ->
  undetectable:(int -> bool) ->
  t
(** [undetectable fid] says whether fault id [fid] is undetectable. *)

val smax_internal : Dfm_faults.Fault.t array -> t -> int
(** Number of internal faults within S_max (the paper's [Smax_I]). *)

(** Deterministic generators for the paper's twelve benchmark blocks.

    Five OpenCores designs (tv80, systemcaes, aes_core, wb_conmax, des_perf)
    and seven OpenSPARC T1 logic blocks (spu, ffu, exu, ifu, tlu, lsu, fpu)
    are rebuilt from structural motifs at container-feasible sizes (see
    DESIGN.md §2 for the substitution argument).  Generation is
    deterministic: the same name and scale always produce the identical
    netlist, so every experiment is reproducible.

    The [scale] factor (default from the [REPRO_SCALE] environment variable,
    or 1.0) multiplies the motif sizes. *)

val names : string list
(** All twelve block names, in the paper's Table II order. *)

val table1_names : string list
(** The four blocks of Table I: aes_core, des_perf, sparc_exu, sparc_fpu. *)

val default_scale : unit -> float
(** [REPRO_SCALE] environment variable, defaulting to 1.0. *)

val build : ?scale:float -> string -> Dfm_netlist.Netlist.t
(** Generate a block by name.  @raise Not_found for unknown names. *)

val all : ?scale:float -> unit -> (string * Dfm_netlist.Netlist.t) list

lib/circuits/circuits.ml: Dfm_util List Motifs Sys

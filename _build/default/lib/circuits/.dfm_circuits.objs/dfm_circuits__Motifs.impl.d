lib/circuits/motifs.ml: Array Dfm_cellmodel Dfm_logic Dfm_netlist Dfm_synth Dfm_util Lazy List Printf

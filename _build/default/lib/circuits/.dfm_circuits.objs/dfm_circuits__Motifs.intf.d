lib/circuits/motifs.mli: Dfm_netlist Dfm_util

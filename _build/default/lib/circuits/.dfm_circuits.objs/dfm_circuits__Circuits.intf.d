lib/circuits/circuits.mli: Dfm_netlist

(* Tests for dfm_layout: floorplan, placement (full and incremental),
   routing, density. *)

module N = Dfm_netlist.Netlist
module Geom = Dfm_layout.Geom
module Floorplan = Dfm_layout.Floorplan
module Place = Dfm_layout.Place
module Route = Dfm_layout.Route
module Density = Dfm_layout.Density

let circuit = lazy (Dfm_circuits.Circuits.build ~scale:0.5 "sparc_spu")

let test_floorplan_sizing () =
  let nl = Lazy.force circuit in
  let fp = Floorplan.create ~utilization:0.7 nl in
  let cell_area = N.total_area nl in
  let die_area = Geom.rect_area fp.Floorplan.die in
  let util = cell_area /. die_area in
  Alcotest.(check bool) "utilization near target" true (util > 0.60 && util < 0.78);
  Alcotest.(check bool) "fits itself" true (Floorplan.fits fp ~cell_area);
  Alcotest.(check bool) "reject 2x area" false (Floorplan.fits fp ~cell_area:(cell_area *. 2.0))

let test_placement_legal () =
  let nl = Lazy.force circuit in
  let fp = Floorplan.create nl in
  let pl = Place.place nl fp in
  Place.check_legal pl;
  (* every gate inside the die *)
  Array.iter
    (fun (g : N.gate) ->
      let c = Place.gate_center pl g.N.gate_id in
      Alcotest.(check bool) "inside die" true (Geom.contains fp.Floorplan.die c))
    nl.N.gates

let test_placement_improves_on_shuffle () =
  (* The annealer should not end with a catastrophically worse HPWL than the
     topological seed; sanity-check against a tiny random placement budget. *)
  let nl = Lazy.force circuit in
  let fp = Floorplan.create nl in
  let quick = Place.place ~sa_moves:1 nl fp in
  let full = Place.place nl fp in
  Alcotest.(check bool) "refined <= seed * 1.05" true
    (Place.total_hpwl full <= Place.total_hpwl quick *. 1.05)

let test_incremental_placement_stability () =
  let nl = Lazy.force circuit in
  let fp = Floorplan.create nl in
  let pl = Place.place nl fp in
  (* re-place the identical netlist incrementally: positions must be stable
     rows (x may re-pack slightly) *)
  let pl2 = Place.place ~previous:pl nl fp in
  Place.check_legal pl2;
  Array.iter
    (fun (g : N.gate) ->
      Alcotest.(check int)
        (Printf.sprintf "row of %s" g.N.gate_name)
        pl.Place.row_of.(g.N.gate_id) pl2.Place.row_of.(g.N.gate_id))
    nl.N.gates

let test_routing_covers_sinks () =
  let nl = Lazy.force circuit in
  let fp = Floorplan.create nl in
  let pl = Place.place nl fp in
  let rt = Route.route pl in
  Alcotest.(check bool) "has wire" true (Route.total_wirelength rt > 0.0);
  (* every multi-pin net gets geometry and length *)
  Array.iter
    (fun (nn : N.net) ->
      match nn.N.driver with
      | N.Const _ -> ()
      | N.Pi _ | N.Gate_out _ ->
          if nn.N.sinks <> [] then begin
            let has_via =
              Array.exists (fun (v : Geom.via) -> v.Geom.via_net = nn.N.net_id) rt.Route.vias
            in
            Alcotest.(check bool) ("via for " ^ nn.N.net_name) true has_via
          end)
    nl.N.nets

let test_routing_deterministic_per_name () =
  let nl = Lazy.force circuit in
  let fp = Floorplan.create nl in
  let pl = Place.place nl fp in
  let r1 = Route.route pl and r2 = Route.route pl in
  Alcotest.(check int) "same segments" (Array.length r1.Route.segments)
    (Array.length r2.Route.segments);
  Alcotest.(check (float 1e-9)) "same wirelength" (Route.total_wirelength r1)
    (Route.total_wirelength r2)

let test_segments_parallel_gap () =
  let mk layer (ax, ay) (bx, by) w =
    {
      Geom.seg_net = 0;
      seg_layer = layer;
      seg_a = { Geom.x = ax; y = ay };
      seg_b = { Geom.x = bx; y = by };
      seg_width = w;
    }
  in
  let h1 = mk Geom.M3 (0.0, 1.0) (10.0, 1.0) 0.2 in
  let h2 = mk Geom.M3 (5.0, 2.0) (15.0, 2.0) 0.2 in
  (match Geom.segments_parallel_gap h1 h2 with
  | Some gap -> Alcotest.(check (float 1e-9)) "gap" 0.8 gap
  | None -> Alcotest.fail "expected overlap");
  let v = mk Geom.M2 (3.0, 0.0) (3.0, 5.0) 0.2 in
  Alcotest.(check bool) "h vs v" true (Geom.segments_parallel_gap h1 v = None);
  let far = mk Geom.M3 (50.0, 1.5) (60.0, 1.5) 0.2 in
  Alcotest.(check bool) "no x overlap" true (Geom.segments_parallel_gap h1 far = None)

let test_density_analysis () =
  let nl = Lazy.force circuit in
  let fp = Floorplan.create nl in
  let pl = Place.place nl fp in
  let rt = Route.route pl in
  let d = Density.analyze rt in
  Alcotest.(check bool) "has windows" true (Array.length d.Density.windows >= 4);
  (* densities are sane fractions and total metal is conserved roughly *)
  Array.iter
    (fun (w : Density.window) ->
      List.iter
        (fun (_, dens) ->
          Alcotest.(check bool) "0 <= d <= 1" true (dens >= 0.0 && dens <= 1.0))
        w.Density.density)
    d.Density.windows

let test_place_does_not_fit () =
  let nl = Lazy.force circuit in
  let fp = Floorplan.create nl in
  (* a bigger netlist cannot fit the same floorplan *)
  let big = Dfm_circuits.Circuits.build ~scale:1.0 "sparc_exu" in
  try
    ignore (Place.place big fp);
    Alcotest.fail "expected Does_not_fit"
  with Place.Does_not_fit _ -> ()

let test_scan_chain () =
  let nl = Lazy.force circuit in
  let fp = Floorplan.create nl in
  let pl = Place.place nl fp in
  let chain = Dfm_layout.Scan.stitch pl in
  let flops = N.seq_gates nl in
  Alcotest.(check int) "covers all flops" (List.length flops) chain.Dfm_layout.Scan.chain_length;
  Alcotest.(check int) "no duplicates" (List.length flops)
    (List.length (List.sort_uniq compare chain.Dfm_layout.Scan.order));
  Alcotest.(check bool) "positive wirelength" true (chain.Dfm_layout.Scan.wirelength > 0.0);
  (* serpentine should beat a gate-id-ordered chain on wirelength *)
  let naive =
    let rec walk acc = function
      | a :: (b :: _ as rest) ->
          walk (acc +. Geom.dist (Place.gate_center pl a) (Place.gate_center pl b)) rest
      | _ -> acc
    in
    walk 0.0 (List.map (fun (g : N.gate) -> g.N.gate_id) flops)
  in
  Alcotest.(check bool) "serpentine not worse than 1.2x naive" true
    (chain.Dfm_layout.Scan.wirelength <= naive *. 1.2);
  Alcotest.(check int) "cycles" ((10 + 1) * (chain.Dfm_layout.Scan.chain_length + 1))
    (Dfm_layout.Scan.test_cycles chain ~patterns:10)

let test_drc_clean_and_detects () =
  let nl = Lazy.force circuit in
  let fp = Floorplan.create nl in
  let pl = Place.place nl fp in
  let rt = Route.route pl in
  let r = Dfm_layout.Drc.check rt in
  Alcotest.(check int) "clean layout" 0 r.Dfm_layout.Drc.errors;
  Alcotest.(check bool) "clean()" true (Dfm_layout.Drc.clean r);
  (* sabotage: shrink a segment below minimum width *)
  let bad_segs = Array.copy rt.Route.segments in
  bad_segs.(0) <- { bad_segs.(0) with Geom.seg_width = 0.1 };
  let bad = { rt with Route.segments = bad_segs } in
  let rb = Dfm_layout.Drc.check bad in
  Alcotest.(check bool) "min-width caught" true
    (List.exists
       (fun (v : Dfm_layout.Drc.violation) -> v.Dfm_layout.Drc.rule = "R1-min-width")
       rb.Dfm_layout.Drc.violations);
  (* sabotage: push a segment off-die *)
  let far = { Geom.x = -100.0; y = -100.0 } in
  let bad_segs = Array.copy rt.Route.segments in
  bad_segs.(1) <- { bad_segs.(1) with Geom.seg_a = far };
  let bad2 = { rt with Route.segments = bad_segs } in
  let rb2 = Dfm_layout.Drc.check bad2 in
  Alcotest.(check bool) "off-die caught" true
    (List.exists
       (fun (v : Dfm_layout.Drc.violation) -> v.Dfm_layout.Drc.rule = "R2-off-die")
       rb2.Dfm_layout.Drc.violations)

let suite =
  [
    Alcotest.test_case "floorplan sizing" `Quick test_floorplan_sizing;
    Alcotest.test_case "placement legal" `Quick test_placement_legal;
    Alcotest.test_case "placement refines" `Quick test_placement_improves_on_shuffle;
    Alcotest.test_case "incremental placement stable" `Quick test_incremental_placement_stability;
    Alcotest.test_case "routing covers sinks" `Quick test_routing_covers_sinks;
    Alcotest.test_case "routing deterministic" `Quick test_routing_deterministic_per_name;
    Alcotest.test_case "parallel gap" `Quick test_segments_parallel_gap;
    Alcotest.test_case "density analysis" `Quick test_density_analysis;
    Alcotest.test_case "does not fit" `Quick test_place_does_not_fit;
    Alcotest.test_case "scan chain" `Quick test_scan_chain;
    Alcotest.test_case "drc clean + detects" `Quick test_drc_clean_and_detects;
  ]

(* Tests for dfm_cellmodel: switch-level networks, defects, UDFM. *)

module Switch = Dfm_cellmodel.Switch
module Defect = Dfm_cellmodel.Defect
module Osu = Dfm_cellmodel.Osu018
module Udfm = Dfm_cellmodel.Udfm
module Cell = Dfm_netlist.Cell
module Tt = Dfm_logic.Truthtable

let comb_models = List.filter (fun m -> m.Osu.network <> None) Osu.models

(* Every healthy switch network computes exactly the declared truth table
   on every input pattern (this runs inside Udfm.characterize too, but here
   it fails with a per-cell message). *)
let test_healthy_networks_match () =
  List.iter
    (fun m ->
      let cell = m.Osu.cell in
      let net = Option.get m.Osu.network in
      let arity = Cell.arity cell in
      for mt = 0 to (1 lsl arity) - 1 do
        let pins =
          Array.to_list
            (Array.mapi (fun k p -> (p, (mt lsr k) land 1 = 1)) cell.Cell.inputs)
        in
        let v = Switch.eval net Switch.healthy pins in
        let expect = if Tt.eval_index cell.Cell.func mt then Switch.V1 else Switch.V0 in
        if v <> expect then
          Alcotest.failf "%s minterm %d: got %s" cell.Cell.name mt (Switch.v4_to_string v)
      done)
    comb_models

let test_21_cells () =
  Alcotest.(check int) "21 models" 21 (List.length Osu.models);
  Alcotest.(check int) "one sequential" 1
    (List.length (List.filter (fun m -> m.Osu.cell.Cell.is_seq) Osu.models))

let test_inverter_short_behaviour () =
  (* Shorting OUT to GND in an inverter forces output 0 (or contention X)
     when the input is 0. *)
  let m = Osu.model "INVX1" in
  let net = Option.get m.Osu.network in
  let cond = { Switch.healthy with Switch.shorted = [ (Switch.Out, Switch.Gnd) ] } in
  (match Switch.eval net cond [ ("A", false) ] with
  | Switch.V0 | Switch.VX -> ()
  | v -> Alcotest.failf "expected 0/X, got %s" (Switch.v4_to_string v));
  (* With input 1 output is 0 anyway: no deviation. *)
  Alcotest.(check string) "input 1 still 0" "0"
    (Switch.v4_to_string (Switch.eval net cond [ ("A", true) ]))

let test_stuck_off_pullup () =
  (* Removing the single P device of INVX1 leaves the output floating when
     the input is 0. *)
  let m = Osu.model "INVX1" in
  let net = Option.get m.Osu.network in
  let pdev =
    List.find (fun (t : Switch.transistor) -> t.Switch.mos = Switch.Pmos)
      net.Switch.devices
  in
  let cond = { Switch.healthy with Switch.stuck_off = [ pdev.Switch.t_id ] } in
  Alcotest.(check string) "floating high side" "Z"
    (Switch.v4_to_string (Switch.eval net cond [ ("A", false) ]));
  Alcotest.(check string) "pull-down intact" "0"
    (Switch.v4_to_string (Switch.eval net cond [ ("A", true) ]))

let test_pin_open () =
  (* An open input pin makes the NAND2 output unknown for patterns that
     depend on it. *)
  let m = Osu.model "NAND2X1" in
  let net = Option.get m.Osu.network in
  let cond = { Switch.healthy with Switch.open_pins = [ "A" ] } in
  (match Switch.eval net cond [ ("A", true); ("B", true) ] with
  | Switch.VX | Switch.VZ -> ()
  | v -> Alcotest.failf "expected X/Z, got %s" (Switch.v4_to_string v));
  (* B = 0 dominates a NAND regardless of A. *)
  Alcotest.(check string) "B=0 dominates" "1"
    (Switch.v4_to_string (Switch.eval net cond [ ("A", true); ("B", false) ]))

let test_udfm_counts_monotone_in_size () =
  (* Bigger stacks have more internal faults: the ordering the resynthesis
     procedure relies on. *)
  let c n = Udfm.internal_fault_count n in
  Alcotest.(check bool) "nand4 > nand3" true (c "NAND4X1" > c "NAND3X1");
  Alcotest.(check bool) "nand3 > nand2" true (c "NAND3X1" > c "NAND2X1");
  Alcotest.(check bool) "xor largest family" true (c "XOR2X1" > c "NAND4X1");
  Alcotest.(check bool) "invx1 small" true (c "INVX1" <= c "NAND2X1")

let test_udfm_activation_sets_valid () =
  List.iter
    (fun (u : Udfm.t) ->
      List.iter
        (fun (e : Udfm.entry) ->
          Alcotest.(check bool) "non-empty" true (e.Udfm.activation <> []);
          List.iter
            (fun m ->
              Alcotest.(check bool) "in range" true (m >= 0 && m < 1 lsl u.Udfm.arity))
            e.Udfm.activation)
        u.Udfm.entries)
    (Udfm.all ())

let test_udfm_activation_means_deviation () =
  (* Re-simulate: every activation pattern of a combinational entry really
     deviates, and non-activation patterns really match. *)
  List.iter
    (fun m ->
      let cell = m.Osu.cell in
      let net = Option.get m.Osu.network in
      let u = Udfm.for_cell cell.Cell.name in
      List.iter
        (fun (e : Udfm.entry) ->
          let cond = Defect.to_condition net e.Udfm.site.Defect.defect in
          for mt = 0 to (1 lsl u.Udfm.arity) - 1 do
            let pins =
              Array.to_list
                (Array.mapi (fun k p -> (p, (mt lsr k) land 1 = 1)) cell.Cell.inputs)
            in
            let good = Tt.eval_index cell.Cell.func mt in
            let faulty = Switch.eval net cond pins in
            let deviates =
              match faulty with
              | Switch.V0 -> good
              | Switch.V1 -> not good
              | Switch.VX | Switch.VZ -> true
            in
            Alcotest.(check bool)
              (Printf.sprintf "%s site %d minterm %d" cell.Cell.name
                 e.Udfm.site.Defect.site_id mt)
              (List.mem mt e.Udfm.activation) deviates
          done)
        u.Udfm.entries)
    comb_models

let test_benign_sites_exist_for_parallel_devices () =
  (* INVX2 has doubled devices: a single open contact is masked. *)
  let u2 = Udfm.characterize (Osu.model "INVX2") in
  Alcotest.(check bool) "invx2 benign > 0" true (u2.Udfm.benign_sites > 0);
  let u1 = Udfm.characterize (Osu.model "INVX1") in
  Alcotest.(check int) "invx1 benign = 0" 0 u1.Udfm.benign_sites

let test_site_guideline_indices_in_range () =
  List.iter
    (fun m ->
      List.iter
        (fun (s : Defect.site) ->
          let bound =
            match s.Defect.category with
            | Defect.Via -> 19
            | Defect.Metal -> 29
            | Defect.Density -> 11
          in
          Alcotest.(check bool) "guideline index" true
            (s.Defect.guideline_index >= 0 && s.Defect.guideline_index < bound))
        m.Osu.sites)
    Osu.models

let test_dff_entries () =
  let u = Udfm.for_cell Osu.dff_name in
  Alcotest.(check int) "arity 1" 1 u.Udfm.arity;
  Alcotest.(check bool) "has entries" true (List.length u.Udfm.entries >= 8);
  (* every activation is over D in {0,1} *)
  List.iter
    (fun (e : Udfm.entry) ->
      List.iter
        (fun m -> Alcotest.(check bool) "d value" true (m = 0 || m = 1))
        e.Udfm.activation)
    u.Udfm.entries

let test_mux_network_passgate () =
  let m = Osu.model "MUX2X1" in
  let net = Option.get m.Osu.network in
  (* S=0 selects A; S=1 selects B — through transmission gates. *)
  List.iter
    (fun (a, b, s) ->
      let v = Switch.eval net Switch.healthy [ ("A", a); ("B", b); ("S", s) ] in
      let expect = if s then b else a in
      Alcotest.(check string)
        (Printf.sprintf "mux %b %b %b" a b s)
        (if expect then "1" else "0")
        (Switch.v4_to_string v))
    [ (true, false, false); (true, false, true); (false, true, false); (false, true, true) ]

let suite =
  [
    Alcotest.test_case "healthy networks match truth tables" `Quick test_healthy_networks_match;
    Alcotest.test_case "21 cells, 1 sequential" `Quick test_21_cells;
    Alcotest.test_case "inverter output short" `Quick test_inverter_short_behaviour;
    Alcotest.test_case "stuck-off pull-up floats" `Quick test_stuck_off_pullup;
    Alcotest.test_case "open pin" `Quick test_pin_open;
    Alcotest.test_case "udfm counts monotone" `Quick test_udfm_counts_monotone_in_size;
    Alcotest.test_case "udfm activation sets valid" `Quick test_udfm_activation_sets_valid;
    Alcotest.test_case "udfm activation = deviation" `Slow test_udfm_activation_means_deviation;
    Alcotest.test_case "benign sites (parallel devices)" `Quick test_benign_sites_exist_for_parallel_devices;
    Alcotest.test_case "site guideline indices" `Quick test_site_guideline_indices_in_range;
    Alcotest.test_case "dff entries" `Quick test_dff_entries;
    Alcotest.test_case "mux passgate network" `Quick test_mux_network_passgate;
  ]

(* Tests for dfm_synth: AIG construction, SAT sweeping, technology mapping. *)

module Aig = Dfm_synth.Aig
module Mapper = Dfm_synth.Mapper
module Convert = Dfm_synth.Convert
module Sweep = Dfm_synth.Sweep
module N = Dfm_netlist.Netlist
module B = N.Builder
module Cell = Dfm_netlist.Cell
module Library = Dfm_netlist.Library
module Equiv = Dfm_netlist.Equiv
module Rng = Dfm_util.Rng

let lib = Dfm_cellmodel.Osu018.library

let test_aig_simplifications () =
  let aig = Aig.create () in
  let x = Aig.input aig "x" in
  let y = Aig.input aig "y" in
  Alcotest.(check int) "x & 0" Aig.lit_false (Aig.and_ aig x Aig.lit_false);
  Alcotest.(check int) "x & 1" x (Aig.and_ aig x Aig.lit_true);
  Alcotest.(check int) "x & x" x (Aig.and_ aig x x);
  Alcotest.(check int) "x & ~x" Aig.lit_false (Aig.and_ aig x (Aig.not_ x));
  let a1 = Aig.and_ aig x y and a2 = Aig.and_ aig y x in
  Alcotest.(check int) "strashed" a1 a2

let test_aig_eval () =
  let aig = Aig.create () in
  let x = Aig.input aig "x" in
  let y = Aig.input aig "y" in
  let f = Aig.xor_ aig x y in
  let env vx vy = function "x" -> vx | "y" -> vy | _ -> assert false in
  Alcotest.(check bool) "xor 10" true (Aig.eval aig (env true false) f);
  Alcotest.(check bool) "xor 11" false (Aig.eval aig (env true true) f);
  let m = Aig.mux aig ~sel:x y (Aig.not_ y) in
  Alcotest.(check bool) "mux sel=1 -> ~y" true (Aig.eval aig (env true false) m)

let random_netlist seed npis ngates =
  let rng = Rng.create seed in
  let b = B.create ~name:"rand" lib in
  let nets = ref [] in
  for i = 0 to npis - 1 do
    nets := B.add_pi b (Printf.sprintf "i%d" i) :: !nets
  done;
  let cells =
    [| "INVX1"; "NAND2X1"; "NAND3X1"; "NOR2X1"; "AND2X2"; "XOR2X1"; "AOI21X1"; "OAI22X1";
       "MUX2X1"; "NAND4X1"; "AOI211X1"; "XNOR2X1" |]
  in
  for _ = 1 to ngates do
    let arr = Array.of_list !nets in
    let cname = Rng.pick rng cells in
    let c = Library.find lib cname in
    let fanins = Array.init (Cell.arity c) (fun _ -> Rng.pick rng arr) in
    nets := B.add_gate b ~cell:cname fanins :: !nets
  done;
  List.iteri (fun i n -> if i < 4 then B.mark_po b (Printf.sprintf "o%d" i) n) !nets;
  B.finish b

let restricted_names =
  [ "XOR2X1"; "XNOR2X1"; "NAND4X1"; "NOR4X1"; "AOI22X1"; "OAI22X1"; "AOI211X1" ]

let prop_remap_equivalent_full_lib =
  QCheck.Test.make ~name:"remap on full library preserves function" ~count:25
    QCheck.(pair (int_range 1 100000) (int_range 3 14))
    (fun (seed, ngates) ->
      let nl = random_netlist seed (2 + (seed mod 4)) ngates in
      let m = Convert.remap nl ~library:lib in
      Equiv.check nl m = Equiv.Equivalent)

let prop_remap_equivalent_restricted =
  QCheck.Test.make ~name:"remap on restricted library preserves function and exclusions"
    ~count:25
    QCheck.(pair (int_range 1 100000) (int_range 3 14))
    (fun (seed, ngates) ->
      let nl = random_netlist seed 4 ngates in
      let restricted = Library.restrict lib ~excluded:restricted_names in
      let m = Convert.remap nl ~library:restricted in
      Equiv.check nl m = Equiv.Equivalent
      && Array.for_all
           (fun (g : N.gate) -> not (List.mem g.N.cell.Cell.name restricted_names))
           m.N.gates)

let prop_remap_area_goal_equivalent =
  QCheck.Test.make ~name:"area-goal remap preserves function" ~count:15
    QCheck.(int_range 1 100000)
    (fun seed ->
      let nl = random_netlist seed 4 10 in
      let m = Convert.remap ~goal:`Area nl ~library:lib in
      Equiv.check nl m = Equiv.Equivalent)

let test_unmappable_without_inverter () =
  (* A library without any inverting cell cannot express an inverter. *)
  let non_inverting =
    Library.filter lib (fun c -> List.mem c.Cell.name [ "AND2X2"; "OR2X2"; "BUFX2" ])
  in
  let b = B.create ~name:"needinv" lib in
  let x = B.add_pi b "x" in
  let y = B.add_gate b ~cell:"INVX1" [| x |] in
  B.mark_po b "o" y;
  let nl = B.finish b in
  try
    ignore (Convert.remap nl ~library:non_inverting);
    Alcotest.fail "expected Unmappable"
  with Mapper.Unmappable _ -> ()

let test_can_express_basics () =
  Alcotest.(check bool) "full lib" true (Mapper.can_express_basics (Mapper.build_table lib));
  let only_nand = Library.filter lib (fun c -> c.Cell.name = "NAND2X1") in
  Alcotest.(check bool) "nand2 alone" true
    (Mapper.can_express_basics (Mapper.build_table only_nand));
  let only_buf = Library.filter lib (fun c -> c.Cell.name = "BUFX2") in
  Alcotest.(check bool) "buffer alone" false
    (Mapper.can_express_basics (Mapper.build_table only_buf))

(* Sweeping removes provably constant logic. *)
let test_sweep_finds_constants () =
  let aig = Aig.create () in
  let s0 = Aig.input aig "s0" in
  let s1 = Aig.input aig "s1" in
  let d = Aig.input aig "d" in
  (* one-hot decoder lines *)
  let line0 = Aig.and_ aig (Aig.not_ s0) (Aig.not_ s1) in
  let line1 = Aig.and_ aig s0 (Aig.not_ s1) in
  (* the exclusive pair anded together: provably constant 0 *)
  let dead = Aig.and_ aig line0 line1 in
  let out = Aig.or_ aig dead d in  (* == d *)
  let swept, outs = Sweep.sweep aig ~outputs:[ ("o", out) ] in
  let o = List.assoc "o" outs in
  (* after sweeping, o should be literally the input d *)
  let d' =
    List.assoc "d" (Aig.inputs swept)
  in
  Alcotest.(check int) "simplified to d" d' o

let test_sweep_merges_equivalent_nodes () =
  let aig = Aig.create () in
  let x = Aig.input aig "x" in
  let y = Aig.input aig "y" in
  (* two structurally different forms of the same function:
     or(x,y) vs not(and(not x, not y)) built through different paths *)
  let f1 = Aig.or_ aig x y in
  let f2 = Aig.not_ (Aig.and_ aig (Aig.not_ x) (Aig.not_ y)) in
  (* strashing already merges those; build a harder pair: mux(x, y, y) = y *)
  let f3 = Aig.mux aig ~sel:x y y in
  ignore f1;
  ignore f2;
  let swept, outs = Sweep.sweep aig ~outputs:[ ("a", f3); ("b", y) ] in
  ignore swept;
  Alcotest.(check int) "mux(x,y,y) == y" (List.assoc "b" outs) (List.assoc "a" outs)

let prop_sweep_preserves_function =
  QCheck.Test.make ~name:"sweep preserves every output function" ~count:20
    QCheck.(pair (int_range 1 100000) (int_range 4 14))
    (fun (seed, ngates) ->
      let nl = random_netlist seed 4 ngates in
      let aig, outputs = Convert.to_aig nl in
      let swept, outputs' = Sweep.sweep aig ~outputs in
      (* compare by exhaustive evaluation over the 4 PIs *)
      let ok = ref true in
      for m = 0 to 15 do
        let env name =
          (* input names are i0..i3 *)
          let idx = int_of_string (String.sub name 1 (String.length name - 1)) in
          (m lsr idx) land 1 = 1
        in
        List.iter2
          (fun (n1, l1) (n2, l2) ->
            assert (n1 = n2);
            if Aig.eval aig env l1 <> Aig.eval swept env l2 then ok := false)
          outputs outputs'
      done;
      !ok)

let test_remap_region_keeps_rest () =
  let nl = random_netlist 5 4 10 in
  let region = [ (List.hd (N.comb_gates nl)).N.gate_id ] in
  let m = Convert.remap_region nl ~gates:region ~library:lib in
  (match Equiv.check nl m with
  | Equiv.Equivalent -> ()
  | _ -> Alcotest.fail "not equivalent");
  (* gates outside the region keep their instance names *)
  let names t = Array.to_list t.N.gates |> List.map (fun g -> g.N.gate_name) in
  let kept = List.filter (fun n -> List.mem n (names nl)) (names m) in
  Alcotest.(check bool) "most names survive" true (List.length kept >= N.num_gates nl - 1)

let test_remap_full_preserves_flops () =
  let b = B.create ~name:"seq" lib in
  let en = B.add_pi b "en" in
  let q = B.declare_net b "q" in
  let d = B.add_gate b ~cell:"XOR2X1" [| q; en |] in
  B.add_gate_driving b ~cell:"DFFPOSX1" [| d |] q;
  B.mark_po b "o" q;
  let nl = B.finish b in
  let m = Convert.remap_full nl ~library:(Library.restrict lib ~excluded:[ "XOR2X1" ]) in
  Alcotest.(check int) "flop preserved" 1 (List.length (N.seq_gates m));
  match Equiv.check nl m with
  | Equiv.Equivalent -> ()
  | _ -> Alcotest.fail "sequential remap not equivalent"

let prop_balance_preserves_and_flattens =
  QCheck.Test.make ~name:"balance preserves function, never deepens" ~count:25
    QCheck.(pair (int_range 1 100000) (int_range 4 14))
    (fun (seed, ngates) ->
      let nl = random_netlist seed 4 ngates in
      let aig, outputs = Convert.to_aig nl in
      let balanced, outputs' = Dfm_synth.Rewrite.balance aig ~outputs in
      let same_function =
        List.for_all2
          (fun (n1, l1) (n2, l2) ->
            assert (n1 = n2);
            List.for_all
              (fun m ->
                let env name =
                  let idx = int_of_string (String.sub name 1 (String.length name - 1)) in
                  (m lsr idx) land 1 = 1
                in
                Aig.eval aig env l1 = Aig.eval balanced env l2)
              (List.init 16 (fun i -> i)))
          outputs outputs'
      in
      same_function
      && Dfm_synth.Rewrite.depth balanced outputs' <= Dfm_synth.Rewrite.depth aig outputs)

let test_balance_flattens_chain () =
  (* A long AND chain must come back with logarithmic depth. *)
  let aig = Aig.create () in
  let xs = List.init 16 (fun i -> Aig.input aig (Printf.sprintf "x%d" i)) in
  let chain = List.fold_left (Aig.and_ aig) Aig.lit_true xs in
  let outputs = [ ("o", chain) ] in
  Alcotest.(check int) "chain depth 15" 15 (Dfm_synth.Rewrite.depth aig outputs);
  let balanced, outputs' = Dfm_synth.Rewrite.balance aig ~outputs in
  Alcotest.(check bool) "log depth" true (Dfm_synth.Rewrite.depth balanced outputs' <= 5)

let suite =
  [
    Alcotest.test_case "aig simplifications" `Quick test_aig_simplifications;
    Alcotest.test_case "aig eval" `Quick test_aig_eval;
    QCheck_alcotest.to_alcotest prop_remap_equivalent_full_lib;
    QCheck_alcotest.to_alcotest prop_remap_equivalent_restricted;
    QCheck_alcotest.to_alcotest prop_remap_area_goal_equivalent;
    Alcotest.test_case "unmappable without inverter" `Quick test_unmappable_without_inverter;
    Alcotest.test_case "can_express_basics" `Quick test_can_express_basics;
    Alcotest.test_case "sweep finds constants" `Quick test_sweep_finds_constants;
    Alcotest.test_case "sweep merges equivalents" `Quick test_sweep_merges_equivalent_nodes;
    QCheck_alcotest.to_alcotest prop_sweep_preserves_function;
    Alcotest.test_case "remap region keeps rest" `Quick test_remap_region_keeps_rest;
    Alcotest.test_case "remap full preserves flops" `Quick test_remap_full_preserves_flops;
    QCheck_alcotest.to_alcotest prop_balance_preserves_and_flattens;
    Alcotest.test_case "balance flattens chain" `Quick test_balance_flattens_chain;
  ]

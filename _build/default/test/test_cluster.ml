(* Tests for the Section II clustering: against a naive transitive-closure
   reference, plus structural properties. *)

module N = Dfm_netlist.Netlist
module B = N.Builder
module F = Dfm_faults.Fault
module Cluster = Dfm_core.Cluster
module Rng = Dfm_util.Rng

let lib = Dfm_cellmodel.Osu018.library
let origin = { F.category = Dfm_cellmodel.Defect.Via; guideline_index = 0 }

let random_netlist seed ngates =
  let rng = Rng.create seed in
  let b = B.create ~name:"rand" lib in
  let nets = ref [] in
  for i = 0 to 3 do
    nets := B.add_pi b (Printf.sprintf "i%d" i) :: !nets
  done;
  let cells = [| "INVX1"; "NAND2X1"; "NOR2X1"; "AOI21X1" |] in
  for _ = 1 to ngates do
    let arr = Array.of_list !nets in
    let cname = Rng.pick rng cells in
    let c = Dfm_netlist.Library.find lib cname in
    let fanins = Array.init (Dfm_netlist.Cell.arity c) (fun _ -> Rng.pick rng arr) in
    nets := B.add_gate b ~cell:cname fanins :: !nets
  done;
  List.iteri (fun i n -> if i < 2 then B.mark_po b (Printf.sprintf "o%d" i) n) !nets;
  B.finish b

let random_faults rng nl k =
  Array.init k (fun i ->
      let kind =
        if Rng.bool rng && N.num_gates nl > 0 then begin
          let g = Rng.int rng (N.num_gates nl) in
          let u =
            Dfm_cellmodel.Udfm.for_cell (N.gate nl g).N.cell.Dfm_netlist.Cell.name
          in
          F.Internal (g, Rng.int rng (List.length u.Dfm_cellmodel.Udfm.entries))
        end
        else
          F.Stuck
            (F.On_net (Rng.int rng (N.num_nets nl)), if Rng.bool rng then F.Sa0 else F.Sa1)
      in
      { F.fault_id = i; kind; origin })

(* Naive O(n^2) reference: faults adjacent iff their corresponding gate sets
   share a gate or contain structurally adjacent gates; clusters = connected
   components. *)
let naive_clusters nl faults undet =
  let ids = List.filter (fun i -> undet i) (List.init (Array.length faults) (fun i -> i)) in
  let gates = List.map (fun i -> (i, F.corresponding_gates nl faults.(i))) ids in
  let adjacent (_, gs1) (_, gs2) =
    List.exists
      (fun g1 ->
        List.exists (fun g2 -> g1 = g2 || List.mem g2 (N.adjacent_gates nl g1)) gs2)
      gs1
  in
  let parent = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace parent i i) ids;
  let rec find i = let p = Hashtbl.find parent i in if p = i then i else find p in
  let union i j = Hashtbl.replace parent (find i) (find j) in
  List.iter
    (fun a -> List.iter (fun b -> if fst a <> fst b && adjacent a b then union (fst a) (fst b)) gates)
    gates;
  List.map (fun (i, _) -> find i) gates
  |> List.sort_uniq compare
  |> List.map (fun root -> List.filter (fun (i, _) -> find i = root) gates |> List.map fst)

let prop_matches_naive =
  QCheck.Test.make ~name:"cluster partition matches naive closure" ~count:30
    QCheck.(pair (int_range 1 10000) (int_range 4 12))
    (fun (seed, ngates) ->
      let nl = random_netlist seed ngates in
      let rng = Rng.create (seed + 5) in
      let faults = random_faults rng nl 20 in
      let undet i = i mod 3 <> 1 in
      let c = Cluster.compute nl faults ~undetectable:undet in
      let naive = naive_clusters nl faults undet in
      let norm cl = List.sort compare (List.map (List.sort compare) cl) in
      norm c.Cluster.clusters = norm naive)

let test_smax_is_largest () =
  let nl = random_netlist 77 10 in
  let rng = Rng.create 99 in
  let faults = random_faults rng nl 30 in
  let c = Cluster.compute nl faults ~undetectable:(fun _ -> true) in
  let sizes = List.map List.length c.Cluster.clusters in
  Alcotest.(check bool) "sorted desc" true
    (List.sort (fun a b -> compare b a) sizes = sizes);
  Alcotest.(check int) "smax is head" (List.hd sizes) (List.length c.Cluster.smax);
  Alcotest.(check int) "total" 30 c.Cluster.n_undetectable

let test_empty () =
  let nl = random_netlist 3 5 in
  let c = Cluster.compute nl [||] ~undetectable:(fun _ -> false) in
  Alcotest.(check int) "no clusters" 0 (List.length c.Cluster.clusters);
  Alcotest.(check (list int)) "no smax" [] c.Cluster.smax;
  Alcotest.(check (list int)) "no gmax" [] c.Cluster.gmax

let test_gmax_gu_consistency () =
  let nl = random_netlist 11 8 in
  let rng = Rng.create 13 in
  let faults = random_faults rng nl 15 in
  let c = Cluster.compute nl faults ~undetectable:(fun i -> i mod 2 = 0) in
  (* gmax gates correspond to smax faults *)
  List.iter
    (fun g ->
      Alcotest.(check bool) "gmax gate touched by smax fault" true
        (List.exists
           (fun fid -> List.mem g (F.corresponding_gates nl faults.(fid)))
           c.Cluster.smax))
    c.Cluster.gmax;
  (* gmax is a subset of gu *)
  List.iter
    (fun g -> Alcotest.(check bool) "gmax in gu" true (List.mem g c.Cluster.gu))
    c.Cluster.gmax

(* Two undetectable faults in disjoint cones form two clusters. *)
let test_disjoint_cones_two_clusters () =
  let b = B.create ~name:"two" lib in
  let x = B.add_pi b "x" in
  let y = B.add_pi b "y" in
  let g0 = B.add_gate b ~cell:"INVX1" [| x |] in
  let g1 = B.add_gate b ~cell:"INVX1" [| y |] in
  B.mark_po b "a" g0;
  B.mark_po b "b" g1;
  let nl = B.finish b in
  let faults =
    [|
      { F.fault_id = 0; kind = F.Internal (0, 0); origin };
      { F.fault_id = 1; kind = F.Internal (1, 0); origin };
    |]
  in
  let c = Cluster.compute nl faults ~undetectable:(fun _ -> true) in
  Alcotest.(check int) "two clusters" 2 (List.length c.Cluster.clusters);
  (* and two faults on the same gate form one *)
  let faults1 =
    [|
      { F.fault_id = 0; kind = F.Internal (0, 0); origin };
      { F.fault_id = 1; kind = F.Internal (0, 1); origin };
    |]
  in
  let c1 = Cluster.compute nl faults1 ~undetectable:(fun _ -> true) in
  Alcotest.(check int) "one cluster" 1 (List.length c1.Cluster.clusters)

let test_smax_internal_count () =
  let b = B.create ~name:"mix" lib in
  let x = B.add_pi b "x" in
  let g0 = B.add_gate b ~cell:"INVX1" [| x |] in
  B.mark_po b "a" g0;
  let nl = B.finish b in
  let faults =
    [|
      { F.fault_id = 0; kind = F.Internal (0, 0); origin };
      { F.fault_id = 1; kind = F.Stuck (F.On_net g0, F.Sa0); origin };
    |]
  in
  let c = Cluster.compute nl faults ~undetectable:(fun _ -> true) in
  Alcotest.(check int) "one cluster of 2" 2 (List.length c.Cluster.smax);
  Alcotest.(check int) "one internal in smax" 1 (Cluster.smax_internal faults c)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_matches_naive;
    Alcotest.test_case "smax is largest" `Quick test_smax_is_largest;
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "gmax/gu consistency" `Quick test_gmax_gu_consistency;
    Alcotest.test_case "disjoint cones" `Quick test_disjoint_cones_two_clusters;
    Alcotest.test_case "smax internal count" `Quick test_smax_internal_count;
  ]

(* Tests for dfm_util: RNG determinism, union-find, heap, stats. *)

module Rng = Dfm_util.Rng
module UF = Dfm_util.Union_find
module Heap = Dfm_util.Heap
module Stats = Dfm_util.Stats

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_named_streams_differ () =
  let a = Rng.of_name "alpha" and b = Rng.of_name "beta" in
  Alcotest.(check bool) "decorrelated" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_int_range () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_rng_split_independent () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  let v1 = Rng.bits64 child in
  (* Drawing more from the parent must not affect the child's past. *)
  let parent2 = Rng.create 5 in
  let child2 = Rng.split parent2 in
  Alcotest.(check int64) "split deterministic" v1 (Rng.bits64 child2)

let test_rng_sample () =
  let r = Rng.create 9 in
  let s = Rng.sample r 3 [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "size" 3 (List.length s);
  Alcotest.(check int) "distinct" 3 (List.length (List.sort_uniq compare s));
  Alcotest.(check (list int)) "empty source" [] (Rng.sample r 3 [])

let test_uf_basic () =
  let uf = UF.create 10 in
  Alcotest.(check int) "initial classes" 10 (UF.count_classes uf);
  UF.union uf 0 1;
  UF.union uf 1 2;
  Alcotest.(check bool) "0~2" true (UF.same uf 0 2);
  Alcotest.(check bool) "0!~3" false (UF.same uf 0 3);
  Alcotest.(check int) "class size" 3 (UF.class_size uf 0);
  Alcotest.(check int) "classes after" 8 (UF.count_classes uf)

let test_uf_classes_listing () =
  let uf = UF.create 5 in
  UF.union uf 3 4;
  let classes = UF.classes uf in
  Alcotest.(check int) "4 classes" 4 (List.length classes);
  let with34 = List.find (fun (_, m) -> List.mem 3 m) classes in
  Alcotest.(check (list int)) "members sorted" [ 3; 4 ] (snd with34)

(* Property: union-find partitions agree with a naive equivalence closure. *)
let prop_uf_vs_naive =
  QCheck.Test.make ~name:"union_find agrees with naive closure" ~count:100
    QCheck.(pair (int_range 1 20) (small_list (pair (int_range 0 19) (int_range 0 19))))
    (fun (n, pairs) ->
      let pairs = List.filter (fun (a, b) -> a < n && b < n) pairs in
      let uf = UF.create n in
      List.iter (fun (a, b) -> UF.union uf a b) pairs;
      (* naive: adjacency closure *)
      let adj = Array.make n [] in
      List.iter
        (fun (a, b) ->
          adj.(a) <- b :: adj.(a);
          adj.(b) <- a :: adj.(b))
        pairs;
      let comp = Array.make n (-1) in
      let rec dfs c v =
        if comp.(v) = -1 then begin
          comp.(v) <- c;
          List.iter (dfs c) adj.(v)
        end
      in
      for v = 0 to n - 1 do
        if comp.(v) = -1 then dfs v v
      done;
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if UF.same uf a b <> (comp.(a) = comp.(b)) then ok := false
        done
      done;
      !ok)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in priority order" ~count:200
    QCheck.(small_list (float_range (-1000.) 1000.))
    (fun xs ->
      let h = Heap.create () in
      List.iteri (fun i x -> Heap.push h x i) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare xs)

let test_heap_peek () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.peek h = None);
  Heap.push h 2.0 "b";
  Heap.push h 1.0 "a";
  (match Heap.peek h with
  | Some (p, v) ->
      Alcotest.(check (float 0.0)) "min prio" 1.0 p;
      Alcotest.(check string) "min value" "a" v
  | None -> Alcotest.fail "expected peek");
  Alcotest.(check int) "length" 2 (Heap.length h)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Stats.mean []);
  Alcotest.(check (float 1e-9)) "percent" 50.0 (Stats.percent 1 2);
  Alcotest.(check (float 1e-9)) "percent div0" 0.0 (Stats.percent 1 0);
  Alcotest.(check (float 1e-9)) "clamp" 1.0 (Stats.clamp ~min:0.0 ~max:1.0 3.0);
  Alcotest.(check string) "fmt" "93.62%" (Stats.fmt_pct 93.62);
  Alcotest.(check string) "fmt ratio" "103.27%" (Stats.fmt_ratio_pct 1.0327)

let test_rng_float_range () =
  let r = Rng.create 21 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_chance_extremes () =
  let r = Rng.create 5 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.chance r 0.0)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always" true (Rng.chance r 1.0)
  done

let test_shuffle_is_permutation () =
  let r = Rng.create 17 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng named streams differ" `Quick test_rng_named_streams_differ;
    Alcotest.test_case "rng int range" `Quick test_rng_int_range;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng sample" `Quick test_rng_sample;
    Alcotest.test_case "union-find basic" `Quick test_uf_basic;
    Alcotest.test_case "union-find classes" `Quick test_uf_classes_listing;
    QCheck_alcotest.to_alcotest prop_uf_vs_naive;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    Alcotest.test_case "heap peek" `Quick test_heap_peek;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "rng float range" `Quick test_rng_float_range;
    Alcotest.test_case "rng chance extremes" `Quick test_rng_chance_extremes;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
  ]

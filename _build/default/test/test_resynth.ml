(* End-to-end tests of the paper's procedure: the two-phase resynthesis flow
   on a small block, its invariants, and the SAT equivalence checker. *)

module N = Dfm_netlist.Netlist
module Design = Dfm_core.Design
module Resynth = Dfm_core.Resynth
module Atpg = Dfm_atpg.Atpg
module Cell = Dfm_netlist.Cell

let scale = 0.4

let result =
  lazy
    (let nl = Dfm_circuits.Circuits.build ~scale "sparc_spu" in
     let d0 = Design.implement nl in
     (nl, d0, Resynth.run d0))

let test_cell_order () =
  let order = Resynth.cells_by_internal_faults Dfm_cellmodel.Osu018.library in
  let counts =
    List.map (fun (c : Cell.t) -> Dfm_cellmodel.Udfm.internal_fault_count c.Cell.name) order
  in
  Alcotest.(check bool) "descending" true
    (List.sort (fun a b -> compare b a) counts = counts);
  Alcotest.(check bool) "no flop" true
    (List.for_all (fun (c : Cell.t) -> not c.Cell.is_seq) order)

let test_u_decreases () =
  let _, d0, r = Lazy.force result in
  let m0 = Design.metrics d0 and m1 = Design.metrics r.Resynth.final in
  Alcotest.(check bool) "U decreased" true (m1.Design.u < m0.Design.u);
  Alcotest.(check bool) "coverage improved" true (m1.Design.coverage > m0.Design.coverage);
  Alcotest.(check bool) "Smax decreased" true (m1.Design.s_max < m0.Design.s_max)

let test_constraints_maintained () =
  let _, d0, r = Lazy.force result in
  let m0 = Design.metrics d0 and m1 = Design.metrics r.Resynth.final in
  (* q <= 5: at most 5% increase in delay and power; die area unchanged. *)
  Alcotest.(check bool) "delay budget" true (m1.Design.delay <= m0.Design.delay *. 1.05 +. 1e-9);
  Alcotest.(check bool) "power budget" true (m1.Design.power <= m0.Design.power *. 1.05 +. 1e-9);
  let die0 = r.Resynth.initial.Design.floorplan and die1 = r.Resynth.final.Design.floorplan in
  Alcotest.(check bool) "same floorplan" true (die0 == die1)

let test_function_preserved () =
  let nl, _, r = Lazy.force result in
  match Dfm_atpg.Equiv_sat.check nl r.Resynth.final.Design.netlist with
  | Dfm_atpg.Equiv_sat.Equivalent -> ()
  | Dfm_atpg.Equiv_sat.Different l -> Alcotest.failf "differs at %s" l
  | Dfm_atpg.Equiv_sat.Interface_mismatch m -> Alcotest.failf "interface: %s" m

let test_trace_monotone_on_accepts () =
  let _, d0, r = Lazy.force result in
  (* Across accepted steps, total U never increases (the paper's
     monotonicity requirement). *)
  let u0 = (Design.metrics d0).Design.u in
  let accepts =
    List.filter
      (fun e ->
        e.Resynth.ev_action = "accept" || e.Resynth.ev_action = "backtrack-accept")
      r.Resynth.trace
  in
  Alcotest.(check int) "accept count" r.Resynth.accepted (List.length accepts);
  let rec walk last = function
    | [] -> ()
    | e :: rest ->
        Alcotest.(check bool) "U monotone" true (e.Resynth.ev_u <= last);
        walk e.Resynth.ev_u rest
  in
  walk u0 accepts

let test_trace_q_monotone () =
  let _, _, r = Lazy.force result in
  let qs = List.map (fun e -> e.Resynth.ev_q) r.Resynth.trace in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a <= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "q nondecreasing in trace" true (sorted qs)

let test_equiv_sat_detects_differences () =
  (* sanity: the checker is not a rubber stamp *)
  let lib = Dfm_cellmodel.Osu018.library in
  let mk invert =
    let b = N.Builder.create ~name:"eq" lib in
    let x = N.Builder.add_pi b "x" in
    let y = N.Builder.add_pi b "y" in
    let g =
      N.Builder.add_gate b ~cell:(if invert then "NAND2X1" else "AND2X2") [| x; y |]
    in
    N.Builder.mark_po b "o" g;
    N.Builder.finish b
  in
  (match Dfm_atpg.Equiv_sat.check (mk false) (mk true) with
  | Dfm_atpg.Equiv_sat.Different "o" -> ()
  | _ -> Alcotest.fail "expected difference at o");
  match Dfm_atpg.Equiv_sat.check (mk false) (mk false) with
  | Dfm_atpg.Equiv_sat.Equivalent -> ()
  | _ -> Alcotest.fail "expected equivalence"

let test_design_metrics_consistent () =
  let _, d0, _ = Lazy.force result in
  let m = Design.metrics d0 in
  Alcotest.(check int) "u split" m.Design.u (m.Design.u_internal + m.Design.u_external);
  Alcotest.(check bool) "smax <= u" true (m.Design.s_max <= m.Design.u);
  Alcotest.(check bool) "gmax <= gu" true (m.Design.g_max <= m.Design.g_u);
  Alcotest.(check (float 1e-6)) "coverage formula"
    (100.0 *. (1.0 -. (float_of_int m.Design.u /. float_of_int m.Design.f)))
    m.Design.coverage

let test_dppm_model () =
  let _, d0, r = Lazy.force result in
  let dppm0 = Dfm_core.Dppm.escapes_dppm d0 in
  let dppm1 = Dfm_core.Dppm.escapes_dppm r.Resynth.final in
  Alcotest.(check bool) "positive" true (dppm0 > 0.0);
  Alcotest.(check bool) "resynthesis reduces escapes" true (dppm1 < dppm0);
  (* breakdown sums to roughly the total (independence correction is tiny) *)
  let parts = Dfm_core.Dppm.breakdown d0 in
  let total_sites =
    List.fold_left (fun a (_, n, _) -> a + n) 0 parts
  in
  Alcotest.(check int) "sites = U" (Design.metrics d0).Design.u total_sites;
  let linear = List.fold_left (fun a (_, _, ppm) -> a +. ppm) 0.0 parts in
  Alcotest.(check bool) "linear approx close" true
    (Float.abs (linear -. dppm0) /. Float.max 1.0 dppm0 < 0.05)

let test_guideline_table_sums () =
  let _, d0, _ = Lazy.force result in
  let rows = Dfm_core.Report.guideline_table d0 in
  let m = Design.metrics d0 in
  let f_total = List.fold_left (fun a (r : Dfm_core.Report.guideline_row) -> a + r.Dfm_core.Report.n_faults) 0 rows in
  let u_total = List.fold_left (fun a (r : Dfm_core.Report.guideline_row) -> a + r.Dfm_core.Report.n_undetectable) 0 rows in
  Alcotest.(check int) "faults partition by guideline" m.Design.f f_total;
  Alcotest.(check int) "undetectable partition" m.Design.u u_total;
  (* sorted by undetectable count *)
  let rec sorted = function
    | (a : Dfm_core.Report.guideline_row) :: (b :: _ as rest) ->
        a.Dfm_core.Report.n_undetectable >= b.Dfm_core.Report.n_undetectable && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted desc" true (sorted rows)

let test_fig2_series_shape () =
  let _, d0, r = Lazy.force result in
  let series = Dfm_core.Report.fig2_series r in
  (match series with
  | first :: _ ->
      Alcotest.(check int) "starts at original U" (Design.metrics d0).Design.u first.Dfm_core.Report.u
  | [] -> Alcotest.fail "empty series");
  Alcotest.(check int) "one point per accepted step + origin"
    (r.Resynth.accepted + 1) (List.length series)

let suite =
  [
    Alcotest.test_case "cell order" `Quick test_cell_order;
    Alcotest.test_case "U decreases" `Slow test_u_decreases;
    Alcotest.test_case "constraints maintained" `Slow test_constraints_maintained;
    Alcotest.test_case "function preserved" `Slow test_function_preserved;
    Alcotest.test_case "trace monotone on accepts" `Slow test_trace_monotone_on_accepts;
    Alcotest.test_case "trace q monotone" `Slow test_trace_q_monotone;
    Alcotest.test_case "equiv_sat detects differences" `Quick test_equiv_sat_detects_differences;
    Alcotest.test_case "design metrics consistent" `Slow test_design_metrics_consistent;
    Alcotest.test_case "dppm model" `Slow test_dppm_model;
    Alcotest.test_case "guideline table sums" `Slow test_guideline_table_sums;
    Alcotest.test_case "fig2 series shape" `Slow test_fig2_series_shape;
  ]

test/test_layout.ml: Alcotest Array Dfm_circuits Dfm_layout Dfm_netlist Lazy List Printf

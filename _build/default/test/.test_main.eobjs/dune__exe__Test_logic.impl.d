test/test_logic.ml: Alcotest Array Dfm_logic Int64 List QCheck QCheck_alcotest

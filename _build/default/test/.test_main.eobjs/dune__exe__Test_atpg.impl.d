test/test_atpg.ml: Alcotest Array Dfm_atpg Dfm_cellmodel Dfm_faults Dfm_logic Dfm_netlist Dfm_sim Dfm_util List Printf QCheck QCheck_alcotest

test/test_sim.ml: Alcotest Array Dfm_cellmodel Dfm_faults Dfm_logic Dfm_netlist Dfm_sim Dfm_util Int64 List Printf QCheck QCheck_alcotest

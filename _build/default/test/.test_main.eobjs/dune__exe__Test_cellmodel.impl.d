test/test_cellmodel.ml: Alcotest Array Dfm_cellmodel Dfm_logic Dfm_netlist List Option Printf

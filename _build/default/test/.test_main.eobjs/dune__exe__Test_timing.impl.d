test/test_timing.ml: Alcotest Array Dfm_cellmodel Dfm_layout Dfm_netlist Dfm_timing List Printf

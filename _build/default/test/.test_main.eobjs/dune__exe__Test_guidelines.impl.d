test/test_guidelines.ml: Alcotest Array Dfm_cellmodel Dfm_circuits Dfm_faults Dfm_guidelines Dfm_layout Dfm_netlist Hashtbl Lazy List

test/test_netlist.ml: Alcotest Array Dfm_atpg Dfm_cellmodel Dfm_circuits Dfm_netlist Dfm_util List Printf QCheck QCheck_alcotest String

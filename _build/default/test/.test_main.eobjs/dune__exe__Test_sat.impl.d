test/test_sat.ml: Alcotest Array Dfm_logic Dfm_sat Int64 List Printf QCheck QCheck_alcotest String

test/test_synth.ml: Alcotest Array Dfm_cellmodel Dfm_netlist Dfm_synth Dfm_util List Printf QCheck QCheck_alcotest String

test/test_util.ml: Alcotest Array Dfm_util List QCheck QCheck_alcotest

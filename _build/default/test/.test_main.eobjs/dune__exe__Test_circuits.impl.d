test/test_circuits.ml: Alcotest Array Dfm_circuits Dfm_netlist List Printf

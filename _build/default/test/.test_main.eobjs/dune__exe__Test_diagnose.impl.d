test/test_diagnose.ml: Alcotest Array Dfm_atpg Dfm_circuits Dfm_core Dfm_faults Dfm_guidelines Dfm_netlist Dfm_sim Dfm_util Int64 Lazy List

test/test_resynth.ml: Alcotest Dfm_atpg Dfm_cellmodel Dfm_circuits Dfm_core Dfm_netlist Float Lazy List

test/test_cluster.ml: Alcotest Array Dfm_cellmodel Dfm_core Dfm_faults Dfm_netlist Dfm_util Hashtbl List Printf QCheck QCheck_alcotest

(* Tests for dfm_atpg: detection verdicts against brute force, test-set
   generation, and consistency between the SAT engine and the fault
   simulator. *)

module N = Dfm_netlist.Netlist
module B = N.Builder
module Cell = Dfm_netlist.Cell
module F = Dfm_faults.Fault
module Atpg = Dfm_atpg.Atpg
module Encode = Dfm_atpg.Encode
module Ls = Dfm_sim.Logic_sim
module Fs = Dfm_sim.Fault_sim
module Rng = Dfm_util.Rng

let lib = Dfm_cellmodel.Osu018.library
let origin = { F.category = Dfm_cellmodel.Defect.Via; guideline_index = 0 }

(* The circuit from the ATPG smoke check: n2 = NAND(a, not a) is constant 1,
   a classic redundancy. *)
let redundant_circuit () =
  let b = B.create ~name:"redund" lib in
  let a = B.add_pi b "a" in
  let c = B.add_pi b "c" in
  let n1 = B.add_gate b ~cell:"INVX1" [| a |] in
  let n2 = B.add_gate b ~cell:"NAND2X1" [| a; n1 |] in
  let n3 = B.add_gate b ~cell:"NAND2X1" [| n2; c |] in
  B.mark_po b "y" n3;
  (B.finish b, n2)

let test_known_redundancy () =
  let nl, n2 = redundant_circuit () in
  let mk kind id = { F.fault_id = id; kind; origin } in
  let faults =
    [|
      mk (F.Stuck (F.On_net n2, F.Sa1)) 0;  (* undetectable: n2 is always 1 *)
      mk (F.Stuck (F.On_net n2, F.Sa0)) 1;  (* detectable *)
      mk (F.Transition (F.On_net n2, F.Slow_to_rise)) 2;
      (* STR needs initial 0 at n2: uncontrollable -> undetectable *)
      mk (F.Transition (F.On_net n2, F.Slow_to_fall)) 3;
      (* STF frame 2 = SA1 aspect: undetectable *)
    |]
  in
  let cls = Atpg.classify nl faults in
  let st i = cls.Atpg.status.(i) in
  Alcotest.(check bool) "sa1 undetectable" true (st 0 = Atpg.Undetectable);
  Alcotest.(check bool) "sa0 detectable" true (st 1 = Atpg.Detected);
  Alcotest.(check bool) "str undetectable" true (st 2 = Atpg.Undetectable);
  Alcotest.(check bool) "stf undetectable" true (st 3 = Atpg.Undetectable)

let test_internal_fault_uncontrollable_pattern () =
  let nl, _ = redundant_circuit () in
  (* gate 1 is the NAND2 fed by (a, not a): any entry whose activation is
     only the both-ones pattern is undetectable. *)
  let u = Dfm_cellmodel.Udfm.for_cell "NAND2X1" in
  let both_ones_entries =
    List.mapi (fun i e -> (i, e)) u.Dfm_cellmodel.Udfm.entries
    |> List.filter (fun (_, e) -> e.Dfm_cellmodel.Udfm.activation = [ 3 ])
  in
  Alcotest.(check bool) "such entries exist" true (both_ones_entries <> []);
  let faults =
    Array.of_list
      (List.mapi
         (fun id (entry_idx, _) -> { F.fault_id = id; kind = F.Internal (1, entry_idx); origin })
         both_ones_entries)
  in
  let cls = Atpg.classify nl faults in
  Array.iter
    (fun st -> Alcotest.(check bool) "undetectable" true (st = Atpg.Undetectable))
    cls.Atpg.status

let random_netlist seed npis ngates =
  let rng = Rng.create seed in
  let b = B.create ~name:"rand" lib in
  let nets = ref [] in
  for i = 0 to npis - 1 do
    nets := B.add_pi b (Printf.sprintf "i%d" i) :: !nets
  done;
  let cells = [| "INVX1"; "NAND2X1"; "NOR2X1"; "XOR2X1"; "AOI21X1"; "OAI21X1" |] in
  for _ = 1 to ngates do
    let arr = Array.of_list !nets in
    let cname = Rng.pick rng cells in
    let c = Dfm_netlist.Library.find lib cname in
    let fanins = Array.init (Cell.arity c) (fun _ -> Rng.pick rng arr) in
    nets := B.add_gate b ~cell:cname fanins :: !nets
  done;
  List.iteri (fun i n -> if i < 3 then B.mark_po b (Printf.sprintf "o%d" i) n) !nets;
  B.finish b

let brute_stuck_detectable nl (f : F.t) =
  let npis = Array.length nl.N.pis in
  let eval forced m =
    let values = Array.make (N.num_nets nl) false in
    Array.iteri (fun i (_, nid) -> values.(nid) <- (m lsr i) land 1 = 1) nl.N.pis;
    (match f.F.kind, forced with
    | F.Stuck (F.On_net fn, pol), true -> (
        match (N.net nl fn).N.driver with
        | N.Pi _ -> values.(fn) <- (pol = F.Sa1)
        | _ -> ())
    | _ -> ());
    Array.iter
      (fun gid ->
        let g = N.gate nl gid in
        let ins = Array.map (fun n -> values.(n)) g.N.fanins in
        (match f.F.kind, forced with
        | F.Stuck (F.On_pin (fg, pin), pol), true when fg = gid -> ins.(pin) <- (pol = F.Sa1)
        | _ -> ());
        values.(g.N.fanout) <- Dfm_logic.Truthtable.eval g.N.cell.Cell.func ins;
        match f.F.kind, forced with
        | F.Stuck (F.On_net fn, pol), true when fn = g.N.fanout ->
            values.(g.N.fanout) <- (pol = F.Sa1)
        | _ -> ())
      (N.topo_order nl);
    Array.map (fun (_, n) -> values.(n)) nl.N.pos
  in
  let rec try_pattern m =
    m < 1 lsl npis && (eval false m <> eval true m || try_pattern (m + 1))
  in
  try_pattern 0

let prop_classify_vs_brute =
  QCheck.Test.make ~name:"stuck classification matches brute force" ~count:15
    QCheck.(pair (int_range 1 5000) (int_range 3 10))
    (fun (seed, ngates) ->
      let nl = random_netlist seed 4 ngates in
      let faults = ref [] in
      let id = ref 0 in
      Array.iter
        (fun (nn : N.net) ->
          List.iter
            (fun pol ->
              faults := { F.fault_id = !id; kind = F.Stuck (F.On_net nn.N.net_id, pol); origin } :: !faults;
              incr id)
            [ F.Sa0; F.Sa1 ])
        nl.N.nets;
      let faults = Array.of_list (List.rev !faults) in
      let cls = Atpg.classify nl faults in
      Array.for_all
        (fun (f : F.t) ->
          (cls.Atpg.status.(f.F.fault_id) = Atpg.Detected) = brute_stuck_detectable nl f)
        faults)

(* Every test that [generate] produces must actually detect at least one
   fault (checked with the independent fault simulator), and the test set
   must cover every fault classified Detected. *)
let test_generate_tests_work () =
  let nl = random_netlist 42 5 12 in
  let faults = ref [] in
  let id = ref 0 in
  Array.iter
    (fun (nn : N.net) ->
      List.iter
        (fun pol ->
          faults := { F.fault_id = !id; kind = F.Stuck (F.On_net nn.N.net_id, pol); origin } :: !faults;
          incr id)
        [ F.Sa0; F.Sa1 ];
      List.iter
        (fun tr ->
          faults := { F.fault_id = !id; kind = F.Transition (F.On_net nn.N.net_id, tr); origin } :: !faults;
          incr id)
        [ F.Slow_to_rise; F.Slow_to_fall ])
    nl.N.nets;
  let faults = Array.of_list (List.rev !faults) in
  let g = Atpg.generate nl faults in
  Alcotest.(check int) "no cross-check failures" 0 g.Atpg.cross_check_failures;
  Alcotest.(check bool) "has tests" true (g.Atpg.tests <> []);
  (* replay the test set with the fault simulator *)
  let ls = Ls.prepare nl in
  let fs = Fs.prepare nl in
  let detected = Array.make (Array.length faults) false in
  let init_seen = Array.make (Array.length faults) false in
  let stuck_seen = Array.make (Array.length faults) false in
  List.iter
    (fun pattern ->
      let words = Ls.words_of_pattern pattern in
      let good = Ls.run ls words in
      Array.iteri
        (fun fid f ->
          match f.F.kind with
          | F.Transition _ ->
              if Fs.detect_word fs ~good f <> 0L then stuck_seen.(fid) <- true;
              if Fs.init_word fs ~good f <> 0L then init_seen.(fid) <- true;
              if stuck_seen.(fid) && init_seen.(fid) then detected.(fid) <- true
          | _ -> if Fs.detect_word fs ~good f <> 0L then detected.(fid) <- true)
        faults)
    g.Atpg.tests;
  Array.iteri
    (fun fid st ->
      if st = Atpg.Detected then
        Alcotest.(check bool) (Printf.sprintf "fault %d covered by T" fid) true detected.(fid))
    g.Atpg.classification.Atpg.status

let test_counts_consistency () =
  let nl = random_netlist 7 4 10 in
  let faults =
    Array.init (N.num_nets nl) (fun i ->
        { F.fault_id = i; kind = F.Stuck (F.On_net i, F.Sa0); origin })
  in
  let cls = Atpg.classify nl faults in
  let c = cls.Atpg.counts in
  Alcotest.(check int) "partition" c.Atpg.total
    (c.Atpg.detected + c.Atpg.undetectable + c.Atpg.aborted);
  Alcotest.(check int) "internal split" c.Atpg.undetectable
    (c.Atpg.undetectable_internal + c.Atpg.undetectable_external);
  Alcotest.(check bool) "coverage" true
    (Atpg.coverage c >= 0.0 && Atpg.coverage c <= 100.0)

let test_encode_bridge_needs_disagreement () =
  (* Bridging two copies of the same signal is undetectable. *)
  let b = B.create ~name:"br2" lib in
  let x = B.add_pi b "x" in
  let b1 = B.add_gate b ~cell:"BUFX2" [| x |] in
  let b2 = B.add_gate b ~cell:"BUFX2" [| x |] in
  let m = B.add_gate b ~cell:"AND2X2" [| b1; b2 |] in
  B.mark_po b "o" m;
  let nl = B.finish b in
  let ls = Ls.prepare nl in
  let f = { F.fault_id = 0; kind = F.Bridge (b1, b2, F.Wired_and); origin } in
  (match Encode.check ls f with
  | Encode.Undetectable -> ()
  | _ -> Alcotest.fail "equal-signal bridge must be undetectable");
  (* but bridging x with not x is detectable *)
  let b = B.create ~name:"br3" lib in
  let x = B.add_pi b "x" in
  let inv = B.add_gate b ~cell:"INVX1" [| x |] in
  let buf = B.add_gate b ~cell:"BUFX2" [| x |] in
  let o = B.add_gate b ~cell:"AND2X2" [| inv; buf |] in
  B.mark_po b "o" o;
  let nl = B.finish b in
  let ls = Ls.prepare nl in
  let f = { F.fault_id = 0; kind = F.Bridge (inv, buf, F.Wired_or); origin } in
  match Encode.check ls f with
  | Encode.Tests _ -> ()
  | _ -> Alcotest.fail "complement bridge must be detectable"

let test_dff_pin_fault () =
  (* Stuck-at on a flip-flop D pin is detected through the scan path by
     driving the opposite value. *)
  let b = B.create ~name:"dffpin" lib in
  let x = B.add_pi b "x" in
  let q = B.add_gate b ~cell:"DFFPOSX1" [| x |] in
  B.mark_po b "o" q;
  let nl = B.finish b in
  let ls = Ls.prepare nl in
  let f = { F.fault_id = 0; kind = F.Stuck (F.On_pin (0, 0), F.Sa0); origin } in
  match Encode.check ls f with
  | Encode.Tests [ t ] ->
      (* the test must set x = 1 *)
      Alcotest.(check bool) "x = 1" true t.Encode.values.(0)
  | _ -> Alcotest.fail "expected a single test"

(* PODEM (structural) and the SAT engine must agree on every stuck fault,
   and every PODEM test must be confirmed by the fault simulator — three
   independent engines triangulating each other. *)
let prop_podem_agrees_with_sat =
  QCheck.Test.make ~name:"PODEM agrees with the SAT engine" ~count:12
    QCheck.(pair (int_range 1 5000) (int_range 3 10))
    (fun (seed, ngates) ->
      let nl = random_netlist seed 4 ngates in
      let ls = Ls.prepare nl in
      let fs = Fs.prepare nl in
      let ok = ref true in
      Array.iter
        (fun (nn : N.net) ->
          List.iter
            (fun pol ->
              let f = { F.fault_id = 0; kind = F.Stuck (F.On_net nn.N.net_id, pol); origin } in
              let sat_detectable =
                match Encode.check ls f with
                | Encode.Tests _ -> true
                | Encode.Undetectable -> false
                | Encode.Unknown -> not !ok (* force failure *)
              in
              match Dfm_atpg.Podem.check ls f with
              | Dfm_atpg.Podem.Test pattern ->
                  if not sat_detectable then ok := false;
                  let good = Ls.run ls (Ls.words_of_pattern pattern) in
                  if Fs.detect_word fs ~good f = 0L then ok := false
              | Dfm_atpg.Podem.Redundant -> if sat_detectable then ok := false
              | Dfm_atpg.Podem.Aborted -> ())
            [ F.Sa0; F.Sa1 ])
        nl.N.nets;
      !ok)

let test_podem_rejects_other_kinds () =
  let nl = random_netlist 3 3 4 in
  let ls = Ls.prepare nl in
  let f = { F.fault_id = 0; kind = F.Bridge (0, 1, F.Wired_and); origin } in
  try
    ignore (Dfm_atpg.Podem.check ls f);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_static_compaction () =
  let nl = random_netlist 11 5 14 in
  let faults = ref [] in
  let id = ref 0 in
  Array.iter
    (fun (nn : N.net) ->
      List.iter
        (fun pol ->
          faults := { F.fault_id = !id; kind = F.Stuck (F.On_net nn.N.net_id, pol); origin } :: !faults;
          incr id)
        [ F.Sa0; F.Sa1 ];
      faults :=
        { F.fault_id = !id; kind = F.Transition (F.On_net nn.N.net_id, F.Slow_to_rise); origin }
        :: !faults;
      incr id)
    nl.N.nets;
  let faults = Array.of_list (List.rev !faults) in
  let g = Atpg.generate nl faults in
  (* pad the generated set with redundant copies, then compact *)
  let padded = g.Atpg.tests @ g.Atpg.tests @ g.Atpg.tests in
  let before = Dfm_atpg.Compact.detects nl ~faults ~tests:padded in
  let kept = Dfm_atpg.Compact.reverse_order nl ~faults ~tests:padded in
  let after = Dfm_atpg.Compact.detects nl ~faults ~tests:kept in
  Alcotest.(check int) "coverage preserved" before after;
  Alcotest.(check bool) "strictly smaller than padded" true
    (List.length kept < List.length padded);
  Alcotest.(check bool) "no larger than original" true
    (List.length kept <= List.length g.Atpg.tests)

let suite =
  [
    Alcotest.test_case "known redundancy" `Quick test_known_redundancy;
    Alcotest.test_case "uncontrollable internal pattern" `Quick test_internal_fault_uncontrollable_pattern;
    QCheck_alcotest.to_alcotest prop_classify_vs_brute;
    Alcotest.test_case "generated tests verified by fault sim" `Quick test_generate_tests_work;
    Alcotest.test_case "counts consistency" `Quick test_counts_consistency;
    Alcotest.test_case "bridge encode" `Quick test_encode_bridge_needs_disagreement;
    Alcotest.test_case "dff pin fault" `Quick test_dff_pin_fault;
    QCheck_alcotest.to_alcotest prop_podem_agrees_with_sat;
    Alcotest.test_case "podem rejects non-stuck" `Quick test_podem_rejects_other_kinds;
    Alcotest.test_case "static compaction" `Quick test_static_compaction;
  ]

(* Tests for dfm_guidelines: the 59-guideline catalog and the violation →
   fault translation. *)

module N = Dfm_netlist.Netlist
module F = Dfm_faults.Fault
module G = Dfm_guidelines.Guideline
module T = Dfm_guidelines.Translate
module Defect = Dfm_cellmodel.Defect
module Geom = Dfm_layout.Geom

let design = lazy (
  let nl = Dfm_circuits.Circuits.build ~scale:0.5 "tv80" in
  let fp = Dfm_layout.Floorplan.create nl in
  let pl = Dfm_layout.Place.place nl fp in
  let rt = Dfm_layout.Route.route pl in
  (nl, T.build rt))

let test_catalog () =
  Alcotest.(check int) "19 via" 19 G.n_via;
  Alcotest.(check int) "29 metal" 29 G.n_metal;
  Alcotest.(check int) "11 density" 11 G.n_density;
  Alcotest.(check int) "59 total" 59 (List.length G.all);
  (* ids unique *)
  let ids = List.map (fun g -> g.G.id) G.all in
  Alcotest.(check int) "unique ids" 59 (List.length (List.sort_uniq compare ids));
  let v3 = G.find Defect.Via 3 in
  Alcotest.(check string) "id format" "V03" v3.G.id

let test_classifiers_in_range () =
  List.iter
    (fun layer ->
      for len10 = 0 to 20 do
        let i = G.via_index ~layer ~net_length:(float_of_int (len10 * 10)) ~fanout:(len10 mod 6) in
        Alcotest.(check bool) "via idx" true (i >= 0 && i < G.n_via);
        let j =
          G.metal_width_index ~layer ~width:0.22 ~length:(float_of_int (len10 * 7))
        in
        Alcotest.(check bool) "metal idx" true (j >= 0 && j < G.n_metal);
        let k = G.metal_spacing_index ~layer ~gap:(0.05 +. (0.02 *. float_of_int len10)) in
        Alcotest.(check bool) "spacing idx" true (k >= 0 && k < G.n_metal);
        let d = G.density_index ~layer ~low:(len10 mod 2 = 0) ~density:(float_of_int len10 /. 20.0) in
        Alcotest.(check bool) "density idx" true (d >= 0 && d < G.n_density)
      done)
    [ Geom.M1; Geom.M2; Geom.M3 ]

let test_fault_list_structure () =
  let nl, fl = Lazy.force design in
  Alcotest.(check int) "ids dense" (Array.length fl.T.faults)
    (fl.T.n_internal + fl.T.n_external);
  Array.iteri
    (fun i f -> Alcotest.(check int) "fault id" i f.F.fault_id)
    fl.T.faults;
  (* internal faults come first and reference real gates/entries *)
  for i = 0 to fl.T.n_internal - 1 do
    match fl.T.faults.(i).F.kind with
    | F.Internal (g, e) ->
        let cell = (N.gate nl g).N.cell.Dfm_netlist.Cell.name in
        let u = Dfm_cellmodel.Udfm.for_cell cell in
        Alcotest.(check bool) "entry in range" true
          (e >= 0 && e < List.length u.Dfm_cellmodel.Udfm.entries)
    | _ -> Alcotest.fail "expected internal fault"
  done

let test_internal_count_matches_udfm () =
  let nl, fl = Lazy.force design in
  let expect =
    Array.fold_left
      (fun acc (g : N.gate) ->
        acc + Dfm_cellmodel.Udfm.internal_fault_count g.N.cell.Dfm_netlist.Cell.name)
      0 nl.N.gates
  in
  Alcotest.(check int) "internal total" expect fl.T.n_internal

let test_no_duplicate_kinds () =
  let _, fl = Lazy.force design in
  let tbl = Hashtbl.create 1024 in
  Array.iter
    (fun (f : F.t) ->
      if Hashtbl.mem tbl f.F.kind then Alcotest.fail "duplicate fault kind";
      Hashtbl.add tbl f.F.kind ())
    fl.T.faults

let test_violations_reference_faults () =
  let _, fl = Lazy.force design in
  Alcotest.(check bool) "has violations" true (fl.T.violations <> []);
  List.iter
    (fun (v : T.violation) ->
      List.iter
        (fun fid ->
          Alcotest.(check bool) "fault id valid" true
            (fid >= 0 && fid < Array.length fl.T.faults))
        v.T.fault_ids)
    fl.T.violations

let test_all_three_categories_present () =
  let _, fl = Lazy.force design in
  let has cat =
    List.exists (fun (v : T.violation) -> v.T.guideline.G.category = cat) fl.T.violations
  in
  Alcotest.(check bool) "via violations" true (has Defect.Via);
  Alcotest.(check bool) "metal violations" true (has Defect.Metal);
  Alcotest.(check bool) "density violations" true (has Defect.Density)

let test_bridges_not_feedback () =
  let nl, fl = Lazy.force design in
  (* for every bridge fault, neither net may reach the other combinationally *)
  let reaches a b =
    let seen = Hashtbl.create 32 in
    let rec go n =
      if n = b then true
      else if Hashtbl.mem seen n then false
      else begin
        Hashtbl.add seen n ();
        List.exists
          (fun (g, _) ->
            let gg = N.gate nl g in
            (not gg.N.cell.Dfm_netlist.Cell.is_seq) && go gg.N.fanout)
          (N.net nl n).N.sinks
      end
    in
    go a
  in
  Array.iter
    (fun (f : F.t) ->
      match f.F.kind with
      | F.Bridge (n1, n2, _) ->
          Alcotest.(check bool) "no feedback" false (reaches n1 n2 || reaches n2 n1)
      | _ -> ())
    fl.T.faults

let test_internal_only_matches_prefix () =
  let nl, fl = Lazy.force design in
  let only = T.internal_only nl in
  Alcotest.(check int) "same count" fl.T.n_internal (Array.length only);
  Array.iteri
    (fun i f -> Alcotest.(check bool) "same kind" true (F.same_kind f.F.kind fl.T.faults.(i).F.kind))
    only

let suite =
  [
    Alcotest.test_case "catalog" `Quick test_catalog;
    Alcotest.test_case "classifiers in range" `Quick test_classifiers_in_range;
    Alcotest.test_case "fault list structure" `Quick test_fault_list_structure;
    Alcotest.test_case "internal count matches udfm" `Quick test_internal_count_matches_udfm;
    Alcotest.test_case "no duplicate kinds" `Quick test_no_duplicate_kinds;
    Alcotest.test_case "violations reference faults" `Quick test_violations_reference_faults;
    Alcotest.test_case "all categories present" `Quick test_all_three_categories_present;
    Alcotest.test_case "bridges not feedback" `Quick test_bridges_not_feedback;
    Alcotest.test_case "internal_only prefix" `Quick test_internal_only_matches_prefix;
  ]

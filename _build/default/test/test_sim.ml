(* Tests for dfm_sim: bit-parallel logic simulation and event-driven fault
   simulation, cross-checked against naive reference evaluations and the SAT
   engine. *)

module N = Dfm_netlist.Netlist
module B = N.Builder
module Cell = Dfm_netlist.Cell
module Ls = Dfm_sim.Logic_sim
module Fs = Dfm_sim.Fault_sim
module F = Dfm_faults.Fault
module Rng = Dfm_util.Rng

let lib = Dfm_cellmodel.Osu018.library

let random_netlist seed npis ngates =
  let rng = Rng.create seed in
  let b = B.create ~name:"rand" lib in
  let nets = ref [] in
  for i = 0 to npis - 1 do
    nets := B.add_pi b (Printf.sprintf "i%d" i) :: !nets
  done;
  let cells =
    [| "INVX1"; "NAND2X1"; "NOR3X1"; "XOR2X1"; "AOI22X1"; "MUX2X1"; "OR2X2"; "NAND4X1" |]
  in
  for _ = 1 to ngates do
    let arr = Array.of_list !nets in
    let cname = Rng.pick rng cells in
    let c = Dfm_netlist.Library.find lib cname in
    let fanins = Array.init (Cell.arity c) (fun _ -> Rng.pick rng arr) in
    nets := B.add_gate b ~cell:cname fanins :: !nets
  done;
  List.iteri (fun i n -> if i < 4 then B.mark_po b (Printf.sprintf "o%d" i) n) !nets;
  B.finish b

(* Naive single-pattern reference evaluation. *)
let reference_eval nl (inputs : (string * bool) list) =
  let values = Array.make (N.num_nets nl) false in
  List.iter
    (fun (label, nid) -> values.(nid) <- List.assoc label inputs)
    (N.input_nets nl);
  Array.iter
    (fun (nn : N.net) ->
      match nn.N.driver with
      | N.Const v -> values.(nn.N.net_id) <- v
      | N.Pi _ | N.Gate_out _ -> ())
    nl.N.nets;
  Array.iter
    (fun gid ->
      let g = N.gate nl gid in
      let ins = Array.map (fun n -> values.(n)) g.N.fanins in
      values.(g.N.fanout) <- Dfm_logic.Truthtable.eval g.N.cell.Cell.func ins)
    (N.topo_order nl);
  values

let prop_logic_sim_matches_reference =
  QCheck.Test.make ~name:"bit-parallel sim matches naive evaluation" ~count:30
    QCheck.(pair (int_range 1 10000) (int_range 2 15))
    (fun (seed, ngates) ->
      let nl = random_netlist seed 4 ngates in
      let ls = Ls.prepare nl in
      let rng = Rng.create (seed * 3) in
      let words = Ls.random_words ls rng in
      let values = Ls.run ls words in
      (* check 8 of the 64 bit positions against the reference *)
      let ok = ref true in
      for b = 0 to 7 do
        let pattern = Ls.pattern_of_words words b in
        let inputs = List.mapi (fun i (label, _) -> (label, pattern.(i))) (Ls.inputs ls) in
        let expect = reference_eval nl inputs in
        Array.iteri
          (fun nid w ->
            let bit = Int64.logand (Int64.shift_right_logical w b) 1L = 1L in
            if bit <> expect.(nid) then ok := false)
          values
      done;
      !ok)

(* Fault simulation vs direct faulty re-simulation for net stuck-at faults. *)
let faulty_reference_eval nl inputs (f : F.t) =
  let values = Array.make (N.num_nets nl) false in
  List.iter (fun (label, nid) -> values.(nid) <- List.assoc label inputs) (N.input_nets nl);
  Array.iter
    (fun (nn : N.net) ->
      match nn.N.driver with
      | N.Const v -> values.(nn.N.net_id) <- v
      | N.Pi _ | N.Gate_out _ -> ())
    nl.N.nets;
  let force_net n =
    match f.F.kind with
    | F.Stuck (F.On_net fn, pol) when fn = n -> Some (pol = F.Sa1)
    | _ -> None
  in
  List.iter
    (fun (_, nid) ->
      match force_net nid with Some v -> values.(nid) <- v | None -> ())
    (N.input_nets nl);
  Array.iter
    (fun gid ->
      let g = N.gate nl gid in
      let ins = Array.map (fun n -> values.(n)) g.N.fanins in
      let v = Dfm_logic.Truthtable.eval g.N.cell.Cell.func ins in
      values.(g.N.fanout) <-
        (match force_net g.N.fanout with Some fv -> fv | None -> v))
    (N.topo_order nl);
  values

let prop_fault_sim_stuck_matches_reference =
  QCheck.Test.make ~name:"fault sim detect word matches faulty resim" ~count:25
    QCheck.(pair (int_range 1 10000) (int_range 3 12))
    (fun (seed, ngates) ->
      let nl = random_netlist seed 4 ngates in
      let ls = Ls.prepare nl in
      let fs = Fs.prepare nl in
      let rng = Rng.create (seed * 7) in
      let words = Ls.random_words ls rng in
      let good = Ls.run ls words in
      let origin = { F.category = Dfm_cellmodel.Defect.Via; guideline_index = 0 } in
      let ok = ref true in
      Array.iter
        (fun (nn : N.net) ->
          List.iter
            (fun pol ->
              let f = { F.fault_id = 0; kind = F.Stuck (F.On_net nn.N.net_id, pol); origin } in
              let dw = Fs.detect_word fs ~good f in
              (* check bit 0 and bit 5 against naive resim *)
              List.iter
                (fun b ->
                  let pattern = Ls.pattern_of_words words b in
                  let inputs =
                    List.mapi (fun i (label, _) -> (label, pattern.(i))) (Ls.inputs ls)
                  in
                  let gv = reference_eval nl inputs in
                  let fv = faulty_reference_eval nl inputs f in
                  let detect_ref =
                    List.exists (fun (_, o) -> gv.(o) <> fv.(o)) (N.observe_nets nl)
                  in
                  let detect_sim = Int64.logand (Int64.shift_right_logical dw b) 1L = 1L in
                  if detect_ref <> detect_sim then ok := false)
                [ 0; 5 ])
            [ F.Sa0; F.Sa1 ])
        nl.N.nets;
      !ok)

let test_activation_word () =
  (* AND2: activation on minterm 3 is the AND of the input words. *)
  let b = B.create ~name:"act" lib in
  let x = B.add_pi b "x" in
  let y = B.add_pi b "y" in
  let g = B.add_gate b ~cell:"AND2X2" [| x; y |] in
  B.mark_po b "o" g;
  let nl = B.finish b in
  let fs = Fs.prepare nl in
  let ls = Fs.sim fs in
  let words = [| 0b1100L; 0b1010L |] in
  let good = Ls.run ls words in
  let act = Fs.activation_word fs ~good ~gate:0 [ 3 ] in
  Alcotest.(check int64) "minterm 3" 0b1000L act;
  let act01 = Fs.activation_word fs ~good ~gate:0 [ 1; 2 ] in
  Alcotest.(check int64) "minterms 1,2" 0b0110L act01

let test_transition_init_word () =
  let b = B.create ~name:"tf" lib in
  let x = B.add_pi b "x" in
  let g = B.add_gate b ~cell:"INVX1" [| x |] in
  B.mark_po b "o" g;
  let nl = B.finish b in
  let fs = Fs.prepare nl in
  let ls = Fs.sim fs in
  let words = [| 0b0101L |] in
  let good = Ls.run ls words in
  let origin = { F.category = Dfm_cellmodel.Defect.Via; guideline_index = 0 } in
  let str = { F.fault_id = 0; kind = F.Transition (F.On_net x, F.Slow_to_rise); origin } in
  (* STR needs initial 0 at the site. *)
  Alcotest.(check int64) "init word str" (Int64.lognot 0b0101L) (Fs.init_word fs ~good str);
  let stf = { F.fault_id = 1; kind = F.Transition (F.On_net x, F.Slow_to_fall); origin } in
  Alcotest.(check int64) "init word stf" 0b0101L (Fs.init_word fs ~good stf)

let test_bridge_fault_sim () =
  (* Wired-AND between two PI-driven nets feeding separate outputs. *)
  let b = B.create ~name:"br" lib in
  let x = B.add_pi b "x" in
  let y = B.add_pi b "y" in
  let bx = B.add_gate b ~cell:"BUFX2" [| x |] in
  let by = B.add_gate b ~cell:"BUFX2" [| y |] in
  B.mark_po b "ox" bx;
  B.mark_po b "oy" by;
  let nl = B.finish b in
  let fs = Fs.prepare nl in
  let ls = Fs.sim fs in
  let words = [| 0b1100L; 0b1010L |] in
  let good = Ls.run ls words in
  let origin = { F.category = Dfm_cellmodel.Defect.Metal; guideline_index = 0 } in
  let f = { F.fault_id = 0; kind = F.Bridge (x, y, F.Wired_and); origin } in
  (* Wired-AND deviates exactly when x <> y: bits where x=1,y=0 or x=0,y=1. *)
  Alcotest.(check int64) "bridge detect" 0b0110L (Fs.detect_word fs ~good f)

let test_dff_internal_fault_detection () =
  (* The flop's internal fault is observed directly through the scan path. *)
  let b = B.create ~name:"dffsim" lib in
  let x = B.add_pi b "x" in
  let q = B.add_gate b ~cell:"DFFPOSX1" [| x |] in
  B.mark_po b "o" q;
  let nl = B.finish b in
  let fs = Fs.prepare nl in
  let ls = Fs.sim fs in
  let words = Ls.random_words ls (Rng.create 3) in
  let good = Ls.run ls words in
  let u = Dfm_cellmodel.Udfm.for_cell Dfm_cellmodel.Osu018.dff_name in
  let origin = { F.category = Dfm_cellmodel.Defect.Via; guideline_index = 0 } in
  List.iteri
    (fun idx (e : Dfm_cellmodel.Udfm.entry) ->
      let f = { F.fault_id = idx; kind = F.Internal (0, idx); origin } in
      let dw = Fs.detect_word fs ~good f in
      (* activation over D=x: [0] -> patterns with x=0; [1] -> x=1; both -> all *)
      let d_word = good.(x) in
      let expect =
        List.fold_left
          (fun acc m -> Int64.logor acc (if m = 1 then d_word else Int64.lognot d_word))
          0L e.Dfm_cellmodel.Udfm.activation
      in
      Alcotest.(check int64) (Printf.sprintf "dff entry %d" idx) expect dw)
    u.Dfm_cellmodel.Udfm.entries

let prop_pattern_word_roundtrip =
  QCheck.Test.make ~name:"pattern -> words -> pattern roundtrip" ~count:100
    QCheck.(small_list bool)
    (fun bits ->
      let pattern = Array.of_list bits in
      let words = Ls.words_of_pattern pattern in
      (* every bit position of a broadcast word reads back the pattern *)
      List.for_all (fun b -> Ls.pattern_of_words words b = pattern) [ 0; 13; 63 ])

let suite =
  [
    QCheck_alcotest.to_alcotest prop_logic_sim_matches_reference;
    QCheck_alcotest.to_alcotest prop_fault_sim_stuck_matches_reference;
    Alcotest.test_case "activation word" `Quick test_activation_word;
    Alcotest.test_case "transition init word" `Quick test_transition_init_word;
    Alcotest.test_case "bridge fault sim" `Quick test_bridge_fault_sim;
    Alcotest.test_case "dff internal fault" `Quick test_dff_internal_fault_detection;
    QCheck_alcotest.to_alcotest prop_pattern_word_roundtrip;
  ]

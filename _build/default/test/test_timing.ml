(* Tests for dfm_timing: STA and power. *)

module N = Dfm_netlist.Netlist
module B = N.Builder
module Floorplan = Dfm_layout.Floorplan
module Place = Dfm_layout.Place
module Route = Dfm_layout.Route
module Sta = Dfm_timing.Sta
module Power = Dfm_timing.Power

let lib = Dfm_cellmodel.Osu018.library

let implement nl =
  let fp = Floorplan.create nl in
  Route.route (Place.place nl fp)

let chain n =
  let b = B.create ~name:(Printf.sprintf "chain%d" n) lib in
  let x = B.add_pi b "x" in
  let cur = ref x in
  for _ = 1 to n do
    cur := B.add_gate b ~cell:"INVX1" [| !cur |]
  done;
  B.mark_po b "y" !cur;
  B.finish b

let test_longer_chain_slower () =
  let r4 = implement (chain 4) and r12 = implement (chain 12) in
  let t4 = (Sta.analyze r4).Sta.critical_path_delay in
  let t12 = (Sta.analyze r12).Sta.critical_path_delay in
  Alcotest.(check bool) "12 inverters slower than 4" true (t12 > t4);
  Alcotest.(check bool) "positive" true (t4 > 0.0)

let test_arrival_monotone_along_path () =
  let nl = chain 6 in
  let rt = implement nl in
  let rep = Sta.analyze rt in
  (* arrivals strictly increase along the inverter chain *)
  let arr = rep.Sta.net_arrival in
  Array.iter
    (fun (g : N.gate) ->
      Array.iter
        (fun fn ->
          Alcotest.(check bool) "arrival increases" true (arr.(g.N.fanout) > arr.(fn)))
        g.N.fanins)
    nl.N.gates

let test_endpoints () =
  let nl = chain 3 in
  let rt = implement nl in
  let rep = Sta.analyze rt in
  let eps = Sta.endpoint_arrivals rt rep in
  Alcotest.(check int) "one endpoint" 1 (List.length eps);
  Alcotest.(check string) "worst named" "y" rep.Sta.worst_endpoint

let test_load_increases_delay () =
  (* The same driver with more fanout is slower. *)
  let fanout_circuit k =
    let b = B.create ~name:"fan" lib in
    let x = B.add_pi b "x" in
    let d = B.add_gate b ~cell:"INVX1" [| x |] in
    for i = 0 to k - 1 do
      let o = B.add_gate b ~cell:"INVX1" [| d |] in
      B.mark_po b (Printf.sprintf "y%d" i) o
    done;
    B.finish b
  in
  let r1 = implement (fanout_circuit 1) and r8 = implement (fanout_circuit 8) in
  let load1 = (Sta.analyze r1).Sta.net_load and load8 = (Sta.analyze r8).Sta.net_load in
  (* net 1 is the inverter output in both *)
  Alcotest.(check bool) "more load" true (load8.(1) > load1.(1))

let test_power_positive_and_scales () =
  let r4 = implement (chain 4) and r12 = implement (chain 12) in
  let p4 = Power.analyze r4 and p12 = Power.analyze r12 in
  Alcotest.(check bool) "positive" true (p4.Power.total > 0.0);
  Alcotest.(check bool) "bigger circuit more power" true (p12.Power.total > p4.Power.total);
  Alcotest.(check (float 1e-12)) "total = dyn + leak" p4.Power.total
    (p4.Power.dynamic +. p4.Power.leakage)

let test_power_deterministic () =
  let rt = implement (chain 5) in
  let p1 = Power.analyze rt and p2 = Power.analyze rt in
  Alcotest.(check (float 1e-12)) "deterministic" p1.Power.total p2.Power.total

let test_critical_paths () =
  let nl = chain 6 in
  let rt = implement nl in
  let rep = Sta.analyze rt in
  let paths = Dfm_timing.Paths.critical_paths ~k:3 rt rep in
  (match paths with
  | p :: _ ->
      Alcotest.(check (float 1e-9)) "worst path = critical delay" rep.Sta.critical_path_delay
        p.Dfm_timing.Paths.delay;
      Alcotest.(check int) "six stages" 6 (List.length p.Dfm_timing.Paths.hops);
      Alcotest.(check string) "launch is the PI" "x" p.Dfm_timing.Paths.launch;
      (* hop arrivals increase along the path *)
      let rec increasing = function
        | (a : Dfm_timing.Paths.hop) :: (b :: _ as rest) ->
            a.Dfm_timing.Paths.arrival < b.Dfm_timing.Paths.arrival && increasing rest
        | _ -> true
      in
      Alcotest.(check bool) "arrivals increase" true (increasing p.Dfm_timing.Paths.hops)
  | [] -> Alcotest.fail "no paths");
  let slacks = Dfm_timing.Paths.slacks ~clock:10.0 rt rep in
  List.iter
    (fun (_, s) -> Alcotest.(check bool) "positive slack at 10ns" true (s > 0.0))
    slacks;
  let neg = Dfm_timing.Paths.slacks ~clock:0.0 rt rep in
  Alcotest.(check bool) "negative slack at 0ns" true (List.for_all (fun (_, s) -> s < 0.0) neg)

let suite =
  [
    Alcotest.test_case "longer chain slower" `Quick test_longer_chain_slower;
    Alcotest.test_case "arrival monotone" `Quick test_arrival_monotone_along_path;
    Alcotest.test_case "endpoints" `Quick test_endpoints;
    Alcotest.test_case "load increases delay" `Quick test_load_increases_delay;
    Alcotest.test_case "power positive and scales" `Quick test_power_positive_and_scales;
    Alcotest.test_case "power deterministic" `Quick test_power_deterministic;
    Alcotest.test_case "critical paths" `Quick test_critical_paths;
  ]

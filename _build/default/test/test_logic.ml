(* Tests for dfm_logic: truth tables and BDDs. *)

module Tt = Dfm_logic.Truthtable
module Bdd = Dfm_logic.Bdd

let arb_tt =
  QCheck.make
    ~print:(fun t -> Tt.to_string t)
    QCheck.Gen.(
      int_range 0 4 >>= fun arity ->
      map (fun bits -> Tt.of_bits ~arity (Int64.of_int bits)) (int_bound 65535))

let test_create_eval () =
  let andf = Tt.create 2 (fun a -> a.(0) && a.(1)) in
  Alcotest.(check bool) "and 11" true (Tt.eval andf [| true; true |]);
  Alcotest.(check bool) "and 10" false (Tt.eval andf [| true; false |]);
  Alcotest.(check int64) "and bits" 8L (Tt.bits andf)

let test_vars_consts () =
  let x = Tt.var 3 1 in
  Alcotest.(check bool) "var picks input" true (Tt.eval x [| false; true; false |]);
  Alcotest.(check bool) "const0" false (Tt.eval_index (Tt.const0 2) 3);
  Alcotest.(check bool) "const1" true (Tt.eval_index (Tt.const1 2) 3)

let prop_ops_semantics =
  QCheck.Test.make ~name:"boolean ops match pointwise semantics" ~count:200
    QCheck.(pair arb_tt arb_tt)
    (fun (a, b) ->
      QCheck.assume (Tt.arity a = Tt.arity b);
      let n = Tt.arity a in
      let ok = ref true in
      for m = 0 to (1 lsl n) - 1 do
        let va = Tt.eval_index a m and vb = Tt.eval_index b m in
        if Tt.eval_index (Tt.land_ a b) m <> (va && vb) then ok := false;
        if Tt.eval_index (Tt.lor_ a b) m <> (va || vb) then ok := false;
        if Tt.eval_index (Tt.lxor_ a b) m <> (va <> vb) then ok := false;
        if Tt.eval_index (Tt.lnot a) m <> not va then ok := false
      done;
      !ok)

let prop_cofactor_shannon =
  QCheck.Test.make ~name:"Shannon expansion f = x*f1 + x'*f0" ~count:200 arb_tt
    (fun f ->
      let n = Tt.arity f in
      QCheck.assume (n >= 1);
      let ok = ref true in
      for k = 0 to n - 1 do
        let f0 = Tt.cofactor f k false and f1 = Tt.cofactor f k true in
        let x = Tt.var n k in
        let recombined = Tt.lor_ (Tt.land_ x f1) (Tt.land_ (Tt.lnot x) f0) in
        if not (Tt.equal recombined f) then ok := false
      done;
      !ok)

let prop_permute_involution =
  QCheck.Test.make ~name:"permuting by p then inverse(p) is identity" ~count:200 arb_tt
    (fun f ->
      let n = Tt.arity f in
      QCheck.assume (n >= 2);
      (* rotation permutation and its inverse *)
      let p = Array.init n (fun i -> (i + 1) mod n) in
      let pinv = Array.init n (fun i -> (i + n - 1) mod n) in
      Tt.equal f (Tt.permute (Tt.permute f p) pinv))

let test_support () =
  let f = Tt.create 3 (fun a -> a.(0) <> a.(2)) in
  Alcotest.(check bool) "dep 0" true (Tt.depends_on f 0);
  Alcotest.(check bool) "no dep 1" false (Tt.depends_on f 1);
  Alcotest.(check int) "support" 2 (Tt.support_size f)

let test_all_permutations () =
  let xorf = Tt.create 2 (fun a -> a.(0) <> a.(1)) in
  Alcotest.(check int) "xor symmetric" 1 (List.length (Tt.all_permutations xorf));
  let implies = Tt.create 2 (fun a -> (not a.(0)) || a.(1)) in
  Alcotest.(check int) "implication asymmetric" 2 (List.length (Tt.all_permutations implies))

let test_minterms () =
  let f = Tt.create 2 (fun a -> a.(0) && a.(1)) in
  Alcotest.(check (list int)) "and minterm" [ 3 ] (Tt.minterms f);
  Alcotest.(check int) "count" 1 (Tt.count_ones f)

(* BDD: equivalence with the truth table it was built from, and canonicity. *)
let prop_bdd_matches_tt =
  QCheck.Test.make ~name:"BDD evaluates like its truth table" ~count:200 arb_tt
    (fun f ->
      let man = Bdd.man () in
      let b = Bdd.of_truthtable man f in
      let n = Tt.arity f in
      (* Evaluate the BDD by building the minterm and intersecting. *)
      let ok = ref true in
      for m = 0 to (1 lsl n) - 1 do
        let cube = ref (Bdd.one man) in
        for k = 0 to n - 1 do
          let v = Bdd.var man k in
          let lit = if (m lsr k) land 1 = 1 then v else Bdd.bnot man v in
          cube := Bdd.band man !cube lit
        done;
        let inter = Bdd.band man b !cube in
        let expect = Tt.eval_index f m in
        if Bdd.is_zero inter = expect then ok := false
      done;
      !ok)

let prop_bdd_canonical =
  QCheck.Test.make ~name:"equal functions build identical BDD nodes" ~count:200
    QCheck.(pair arb_tt arb_tt)
    (fun (f, g) ->
      QCheck.assume (Tt.arity f = Tt.arity g);
      let man = Bdd.man () in
      let bf = Bdd.of_truthtable man f and bg = Bdd.of_truthtable man g in
      Bdd.equal bf bg = Tt.equal f g)

let test_bdd_ops () =
  let man = Bdd.man () in
  let x = Bdd.var man 0 and y = Bdd.var man 1 in
  Alcotest.(check bool) "x&~x = 0" true (Bdd.is_zero (Bdd.band man x (Bdd.bnot man x)));
  Alcotest.(check bool) "x|~x = 1" true (Bdd.is_one (Bdd.bor man x (Bdd.bnot man x)));
  Alcotest.(check bool) "xor self" true (Bdd.is_zero (Bdd.bxor man y y));
  let ite = Bdd.bite man x y (Bdd.bnot man y) in
  (* ite(x,y,~y) = xnor(x,y)... check a satisfying assignment exists *)
  Alcotest.(check bool) "ite sat" true (Bdd.sat_one man ite <> None);
  Alcotest.(check bool) "size positive" true (Bdd.size man ite > 0)

let test_bdd_sat_one () =
  let man = Bdd.man () in
  let x = Bdd.var man 0 and y = Bdd.var man 1 in
  let f = Bdd.band man x (Bdd.bnot man y) in
  match Bdd.sat_one man f with
  | Some assignment ->
      Alcotest.(check bool) "x true" true (List.assoc 0 assignment);
      Alcotest.(check bool) "y false" false (List.assoc 1 assignment)
  | None -> Alcotest.fail "expected satisfiable"

let test_of_bits_masks_high_bits () =
  let t = Tt.of_bits ~arity:2 0xFFFFL in
  Alcotest.(check int64) "masked to 4 bits" 0xFL (Tt.bits t);
  Alcotest.check_raises "arity 7 rejected" (Invalid_argument "Truthtable: arity must be in [0,6]")
    (fun () -> ignore (Tt.of_bits ~arity:7 0L))

let test_arity_mismatch_rejected () =
  let a = Tt.var 2 0 and b = Tt.var 3 0 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Truthtable: arity mismatch") (fun () ->
      ignore (Tt.land_ a b))

let suite =
  [
    Alcotest.test_case "create/eval" `Quick test_create_eval;
    Alcotest.test_case "vars and constants" `Quick test_vars_consts;
    QCheck_alcotest.to_alcotest prop_ops_semantics;
    QCheck_alcotest.to_alcotest prop_cofactor_shannon;
    QCheck_alcotest.to_alcotest prop_permute_involution;
    Alcotest.test_case "support" `Quick test_support;
    Alcotest.test_case "all_permutations" `Quick test_all_permutations;
    Alcotest.test_case "minterms" `Quick test_minterms;
    QCheck_alcotest.to_alcotest prop_bdd_matches_tt;
    QCheck_alcotest.to_alcotest prop_bdd_canonical;
    Alcotest.test_case "bdd ops" `Quick test_bdd_ops;
    Alcotest.test_case "bdd sat_one" `Quick test_bdd_sat_one;
    Alcotest.test_case "of_bits masking" `Quick test_of_bits_masks_high_bits;
    Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch_rejected;
  ]

(* Tests for fault diagnosis: a die failing with a known injected defect
   must be diagnosed back to that defect (top-ranked, or tied for top when
   structurally equivalent faults exist). *)

module N = Dfm_netlist.Netlist
module F = Dfm_faults.Fault
module Design = Dfm_core.Design
module Diagnose = Dfm_core.Diagnose
module Atpg = Dfm_atpg.Atpg
module Rng = Dfm_util.Rng

let setup =
  lazy
    (let nl = Dfm_circuits.Circuits.build ~scale:0.3 "sparc_spu" in
     let d = Design.implement nl in
     let faults = d.Design.fault_list.Dfm_guidelines.Translate.faults in
     let g = Atpg.generate nl faults in
     (nl, d, faults, g))

let detected_faults () =
  let _, d, faults, g = Lazy.force setup in
  Array.to_list faults
  |> List.filter (fun (f : F.t) ->
         g.Atpg.classification.Atpg.status.(f.F.fault_id) = Atpg.Detected
         && d.Design.classification.Atpg.status.(f.F.fault_id) = Atpg.Detected)

let test_injected_fault_ranks_first () =
  let nl, _, faults, g = Lazy.force setup in
  let rng = Rng.create 4 in
  let candidates_pool = detected_faults () in
  Alcotest.(check bool) "pool nonempty" true (candidates_pool <> []);
  let injected = Rng.sample rng 5 candidates_pool in
  List.iter
    (fun (truth : F.t) ->
      let observed = Diagnose.simulate_defect nl ~tests:g.Atpg.tests truth in
      Alcotest.(check bool) "defect causes failures" true (observed <> []);
      (* Structurally equivalent faults share the exact syndrome, so the
         truth may tie with arbitrarily many candidates; ask for the full
         ranking and require the truth to hold the top score. *)
      let ranked =
        Diagnose.diagnose nl ~tests:g.Atpg.tests ~observed ~candidates:faults
          ~top:(Array.length faults) ()
      in
      match ranked with
      | [] -> Alcotest.fail "no candidates"
      | best :: _ ->
          let truth_entry =
            List.find_opt (fun c -> c.Diagnose.fault.F.fault_id = truth.F.fault_id) ranked
          in
          (match truth_entry with
          | Some c ->
              Alcotest.(check bool) "true fault at top score" true
                (c.Diagnose.score >= best.Diagnose.score -. 1e-9)
          | None -> Alcotest.failf "true fault %s not ranked" (F.describe nl truth)))
    injected

let test_passing_die_diagnoses_nothing () =
  let nl, _, faults, g = Lazy.force setup in
  let ranked = Diagnose.diagnose nl ~tests:g.Atpg.tests ~observed:[] ~candidates:faults () in
  (* all candidates predict fails somewhere or are neutral; none should have
     a positive score against an all-pass response *)
  Alcotest.(check (list string)) "empty ranking" []
    (List.map (fun c -> F.describe nl c.Diagnose.fault) ranked)

let test_syndrome_consistent_with_detect_word () =
  let nl, _, faults, _ = Lazy.force setup in
  let ls = Dfm_sim.Logic_sim.prepare nl in
  let fs = Dfm_sim.Fault_sim.prepare nl in
  let rng = Rng.create 9 in
  let words = Dfm_sim.Logic_sim.random_words ls rng in
  let good = Dfm_sim.Logic_sim.run ls words in
  let checked = ref 0 in
  Array.iter
    (fun (f : F.t) ->
      if f.F.fault_id mod 37 = 0 then begin
        incr checked;
        let dw = Dfm_sim.Fault_sim.detect_word fs ~good f in
        let syn = Dfm_sim.Fault_sim.syndrome fs ~good f in
        let union = List.fold_left (fun acc (_, w) -> Int64.logor acc w) 0L syn in
        (match f.F.kind with
        | F.Transition _ ->
            (* syndrome is the frame-2 component, same as detect_word *)
            Alcotest.(check int64) "tf union" dw union
        | _ -> Alcotest.(check int64) "union = detect" dw union)
      end)
    faults;
  Alcotest.(check bool) "sampled some" true (!checked > 20)

let suite =
  [
    Alcotest.test_case "injected fault ranks first" `Slow test_injected_fault_ranks_first;
    Alcotest.test_case "passing die diagnoses nothing" `Slow test_passing_die_diagnoses_nothing;
    Alcotest.test_case "syndrome = detect word" `Slow test_syndrome_consistent_with_detect_word;
  ]

(* The numbers reported in the paper (DATE 2019), embedded for side-by-side
   shape comparison in the benchmark harness.  Absolute values are not
   expected to match (the substrate here is a scaled-down simulator, see
   DESIGN.md §2); the *shape* — who wins, direction and rough magnitude of
   each effect — is the reproduction target recorded in EXPERIMENTS.md. *)

(* Table I: circuit, F_In, F_Ex, U_In, U_Ex, G_U, Gmax, Smax, %Smax_U *)
let table1 =
  [
    ("aes_core", 15894, 78364, 5049, 966, 2705, 911, 1633, 27.15);
    ("des_perf", 72654, 281938, 20209, 688, 5735, 2638, 10845, 51.90);
    ("sparc_exu", 36791, 79734, 9747, 1006, 3661, 2771, 7072, 65.77);
    ("sparc_fpu", 69979, 164146, 13381, 1882, 4685, 2831, 8291, 54.32);
  ]

type t2 = {
  circuit : string;
  q : string;           (* Max Inc of the resynthesized row *)
  f0 : int;             (* original F *)
  u0 : int;
  cov0 : float;
  t0 : int;
  smax0 : int;
  pct_smax_all0 : float;
  f1 : int;             (* resynthesized row *)
  u1 : int;
  cov1 : float;
  t1 : int;
  smax1 : int;
  pct_smax_all1 : float;
  delay1 : float;       (* percent of original *)
  power1 : float;
  rtime1 : float;
}

(* Table II, both rows per circuit. *)
let table2 =
  [
    { circuit = "tv80"; q = "0%"; f0 = 29376; u0 = 2677; cov0 = 90.89; t0 = 1445;
      smax0 = 1270; pct_smax_all0 = 4.32; f1 = 28908; u1 = 465; cov1 = 98.39; t1 = 1493;
      smax1 = 381; pct_smax_all1 = 1.32; delay1 = 93.61; power1 = 99.15; rtime1 = 19.10 };
    { circuit = "systemcaes"; q = "3%"; f0 = 42360; u0 = 4274; cov0 = 89.91; t0 = 778;
      smax0 = 2852; pct_smax_all0 = 6.73; f1 = 40527; u1 = 329; cov1 = 99.19; t1 = 804;
      smax1 = 192; pct_smax_all1 = 0.47; delay1 = 96.21; power1 = 102.51; rtime1 = 29.17 };
    { circuit = "aes_core"; q = "4%"; f0 = 94258; u0 = 6015; cov0 = 93.62; t0 = 1217;
      smax0 = 1633; pct_smax_all0 = 1.73; f1 = 97986; u1 = 1691; cov1 = 98.27; t1 = 1287;
      smax1 = 281; pct_smax_all1 = 0.28; delay1 = 96.21; power1 = 103.17; rtime1 = 18.68 };
    { circuit = "wb_conmax"; q = "5%"; f0 = 193350; u0 = 21334; cov0 = 88.97; t0 = 1211;
      smax0 = 5821; pct_smax_all0 = 3.01; f1 = 183752; u1 = 781; cov1 = 99.58; t1 = 1138;
      smax1 = 179; pct_smax_all1 = 0.09; delay1 = 103.27; power1 = 104.43; rtime1 = 25.30 };
    { circuit = "des_perf"; q = "5%"; f0 = 354562; u0 = 20897; cov0 = 94.17; t0 = 518;
      smax0 = 10845; pct_smax_all0 = 3.02; f1 = 362810; u1 = 915; cov1 = 99.75; t1 = 498;
      smax1 = 59; pct_smax_all1 = 0.02; delay1 = 104.91; power1 = 102.07; rtime1 = 17.21 };
    { circuit = "sparc_spu"; q = "3%"; f0 = 41939; u0 = 2598; cov0 = 93.81; t0 = 640;
      smax0 = 669; pct_smax_all0 = 1.60; f1 = 40584; u1 = 296; cov1 = 99.27; t1 = 626;
      smax1 = 171; pct_smax_all1 = 0.42; delay1 = 99.01; power1 = 102.18; rtime1 = 13.69 };
    { circuit = "sparc_ffu"; q = "1%"; f0 = 48937; u0 = 5155; cov0 = 89.47; t0 = 722;
      smax0 = 3554; pct_smax_all0 = 7.26; f1 = 48721; u1 = 629; cov1 = 98.71; t1 = 836;
      smax1 = 510; pct_smax_all1 = 1.04; delay1 = 95.15; power1 = 100.29; rtime1 = 19.20 };
    { circuit = "sparc_exu"; q = "3%"; f0 = 116525; u0 = 10753; cov0 = 90.77; t0 = 1221;
      smax0 = 7072; pct_smax_all0 = 6.07; f1 = 116562; u1 = 770; cov1 = 99.34; t1 = 1292;
      smax1 = 688; pct_smax_all1 = 0.59; delay1 = 96.19; power1 = 102.33; rtime1 = 19.21 };
    { circuit = "sparc_ifu"; q = "0%"; f0 = 149116; u0 = 10197; cov0 = 93.16; t0 = 1255;
      smax0 = 6619; pct_smax_all0 = 4.44; f1 = 147376; u1 = 1210; cov1 = 99.18; t1 = 1232;
      smax1 = 677; pct_smax_all1 = 0.46; delay1 = 96.06; power1 = 99.54; rtime1 = 13.99 };
    { circuit = "sparc_tlu"; q = "1%"; f0 = 151591; u0 = 9603; cov0 = 93.67; t0 = 2622;
      smax0 = 5418; pct_smax_all0 = 3.57; f1 = 151129; u1 = 1036; cov1 = 99.31; t1 = 2740;
      smax1 = 740; pct_smax_all1 = 0.49; delay1 = 92.11; power1 = 100.27; rtime1 = 17.14 };
    { circuit = "sparc_lsu"; q = "1%"; f0 = 164658; u0 = 9357; cov0 = 94.32; t0 = 925;
      smax0 = 5563; pct_smax_all0 = 3.38; f1 = 161388; u1 = 880; cov1 = 99.45; t1 = 934;
      smax1 = 578; pct_smax_all1 = 0.36; delay1 = 100.16; power1 = 98.92; rtime1 = 15.53 };
    { circuit = "sparc_fpu"; q = "0%"; f0 = 234125; u0 = 15263; cov0 = 93.48; t0 = 1146;
      smax0 = 8291; pct_smax_all0 = 3.54; f1 = 230597; u1 = 3352; cov1 = 98.54; t1 = 1090;
      smax1 = 1998; pct_smax_all1 = 0.86; delay1 = 94.89; power1 = 99.73; rtime1 = 16.37 };
  ]

(* averages of Table II, original and resynthesized *)
let table2_avg_orig = (135066.42, 9843.58, 92.19, 1141.67, 4967.25, 4.06, 100.0, 100.0, 1.0)
let table2_avg_resyn = (134195.00, 1029.50, 99.08, 1164.17, 537.83, 0.53, 97.32, 101.22, 18.72)

(* Section IV ablation: removing the 7 largest cells globally. *)
let ablation = [ ("sparc_ifu", 130.0, 109.0); ("sparc_fpu", 137.0, 109.0) ]

bench/main.mli:

(* Silicon debug walkthrough: a "failing die" comes back from the tester;
   match its per-test failing outputs against the DFM fault candidates and
   locate the defect — the diagnosis use-case behind the paper's fault model
   (its reference [8]).  Also demonstrates Verilog export for handoff.

   Run with:  dune exec examples/silicon_debug.exe *)

module N = Dfm_netlist.Netlist
module F = Dfm_faults.Fault
module Design = Dfm_core.Design
module Diagnose = Dfm_core.Diagnose
module Atpg = Dfm_atpg.Atpg

let () =
  let nl = Dfm_circuits.Circuits.build ~scale:0.4 "sparc_ffu" in
  Format.printf "device under test: %a@." N.pp_summary nl;
  let d = Design.implement nl in
  let faults = d.Design.fault_list.Dfm_guidelines.Translate.faults in

  (* Production test: the compacted DFM test set. *)
  let g = Atpg.generate nl faults in
  Format.printf "production test set: %d patterns covering %d/%d faults@."
    (List.length g.Atpg.tests)
    g.Atpg.classification.Atpg.counts.Atpg.detected
    g.Atpg.classification.Atpg.counts.Atpg.total;

  (* A die comes back failing.  (Here: we play foundry and pick the defect —
     a detectable internal fault somewhere in the middle of the die.) *)
  let truth =
    Array.to_list faults
    |> List.filter (fun (f : F.t) ->
           g.Atpg.classification.Atpg.status.(f.F.fault_id) = Atpg.Detected
           && F.is_internal f)
    |> fun l -> List.nth l (List.length l / 2)
  in
  let observed = Diagnose.simulate_defect nl ~tests:g.Atpg.tests truth in
  Format.printf "@.tester fail log: %d failing patterns (of %d)@." (List.length observed)
    (List.length g.Atpg.tests);
  List.iteri
    (fun i (r : Diagnose.response) ->
      if i < 4 then
        Format.printf "  pattern %3d fails at %d observation points@." r.Diagnose.test_index
          (List.length r.Diagnose.failing))
    observed;

  (* Diagnosis: rank all DFM fault candidates by syndrome match. *)
  let ranked = Diagnose.diagnose nl ~tests:g.Atpg.tests ~observed ~candidates:faults ~top:5 () in
  Format.printf "@.diagnosis (top %d of %d candidates):@." (List.length ranked)
    (Array.length faults);
  List.iteri
    (fun i (c : Diagnose.candidate) ->
      Format.printf "  %d. score %6.2f, %3d exact-match tests   %s%s@." (i + 1)
        c.Diagnose.score c.Diagnose.exact_matches
        (F.describe nl c.Diagnose.fault)
        (if c.Diagnose.fault.F.fault_id = truth.F.fault_id then "   <- the planted defect" else ""))
    ranked;

  (* Handoff: the netlist in standard structural Verilog. *)
  let path = Filename.temp_file "sparc_ffu" ".v" in
  let oc = open_out path in
  output_string oc (Dfm_netlist.Verilog.to_string nl);
  close_out oc;
  Format.printf "@.wrote %s (structural Verilog, re-readable by Dfm_netlist.Verilog.read)@." path

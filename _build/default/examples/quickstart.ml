(* Quickstart: build a small circuit by hand, implement it through the whole
   pipeline (placement, routing, DFM scan, ATPG, clustering), and run the
   paper's resynthesis procedure on it.

   Run with:  dune exec examples/quickstart.exe *)

module N = Dfm_netlist.Netlist
module B = N.Builder
module Design = Dfm_core.Design
module Resynth = Dfm_core.Resynth

let lib = Dfm_cellmodel.Osu018.library

(* A deliberately flawed design: a one-hot pair (sel, not sel) feeds several
   wide cells, so the cell-input patterns requiring both lines high can never
   be set up.  The internal (UDFM) faults needing those patterns are
   undetectable and cluster around the pair — a miniature of the phenomenon
   the paper studies. *)
let build_demo () =
  let b = B.create ~name:"demo" lib in
  let sel = B.add_pi b "sel" in
  let d = Array.init 6 (fun i -> B.add_pi b (Printf.sprintf "d%d" i)) in
  let nsel = B.add_gate b ~cell:"INVX1" [| sel |] in
  (* the redundancy pocket: cells combining sel with (not sel) *)
  let p1 = B.add_gate b ~cell:"NAND4X1" [| sel; nsel; d.(0); d.(1) |] in
  let p2 = B.add_gate b ~cell:"AOI22X1" [| sel; nsel; d.(2); d.(3) |] in
  let p3 = B.add_gate b ~cell:"NOR4X1" [| sel; nsel; d.(4); d.(5) |] in
  (* healthy datapath around it *)
  let x1 = B.add_gate b ~cell:"XOR2X1" [| d.(0); d.(3) |] in
  let x2 = B.add_gate b ~cell:"AND2X2" [| x1; d.(5) |] in
  let m = B.add_gate b ~cell:"MUX2X1" [| x2; p1; sel |] in
  let o1 = B.add_gate b ~cell:"OAI21X1" [| p2; p3; m |] in
  let reg = B.add_gate b ~cell:"DFFPOSX1" [| o1 |] in
  let o2 = B.add_gate b ~cell:"NAND2X1" [| reg; x1 |] in
  B.mark_po b "y0" o2;
  B.mark_po b "y1" m;
  B.finish b

let () =
  let nl = build_demo () in
  Format.printf "netlist: %a@.@." N.pp_summary nl;

  (* Full implementation: floorplan at 70%% utilization, placement, routing,
     DFM guideline scan, fault translation, ATPG with UNSAT proofs. *)
  let d0 = Design.implement nl in
  Format.printf "original design:@.  %a@.@." Design.pp_metrics (Design.metrics d0);

  List.iteri
    (fun i cluster ->
      if i < 3 then
        Format.printf "  cluster %d: %d undetectable faults@." i (List.length cluster))
    d0.Design.cluster.Dfm_core.Cluster.clusters;

  (* The paper's procedure: break the clusters without growing delay/power
     beyond q%% or the die beyond the original floorplan. *)
  Format.printf "@.running two-phase resynthesis (q swept 0..5) ...@.";
  let r = Resynth.run ~log:(fun s -> Format.printf "  %s@." s) d0 in
  Format.printf "@.resynthesized design:@.  %a@.@." Design.pp_metrics
    (Design.metrics r.Resynth.final);

  (* The rewrite is verified, not assumed. *)
  (match Dfm_atpg.Equiv_sat.check nl r.Resynth.final.Design.netlist with
  | Dfm_atpg.Equiv_sat.Equivalent -> Format.printf "function preserved (SAT-proven).@."
  | _ -> Format.printf "ERROR: function changed!@.");
  Format.printf "cells now used: %s@."
    (String.concat " "
       (List.map
          (fun (c, n) -> Printf.sprintf "%s:%d" c n)
          (N.cell_counts r.Resynth.final.Design.netlist)))

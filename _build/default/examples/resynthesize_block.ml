(* The full Section III procedure on an OpenSPARC-style block, with the
   Fig. 2 trajectory printed as the clusters break apart.

   Run with:  dune exec examples/resynthesize_block.exe [-- circuit] *)

module N = Dfm_netlist.Netlist
module Design = Dfm_core.Design
module Resynth = Dfm_core.Resynth
module Report = Dfm_core.Report

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "sparc_ffu" in
  let nl = Dfm_circuits.Circuits.build name in
  Format.printf "implementing %a@." N.pp_summary nl;
  let d0 = Design.implement nl in
  Format.printf "original:      %a@.@." Design.pp_metrics (Design.metrics d0);

  Format.printf "running the two-phase resynthesis (p1 = 1%%, q swept 0..5)...@.";
  let r = Resynth.run ~log:(fun s -> Format.printf "  %s@." s) d0 in

  Format.printf "@.trajectory (Fig. 2): the largest cluster first, then the whole circuit@.";
  List.iter
    (fun (p : Report.fig2_point) ->
      Format.printf "  step %2d  q=%d  phase %d   U=%5d   |Smax|=%5d@." p.Report.step p.Report.q
        p.Report.phase p.Report.u p.Report.smax_size)
    (Report.fig2_series r);

  Format.printf "@.resynthesized: %a@." Design.pp_metrics (Design.metrics r.Resynth.final);
  Format.printf "accepted steps: %d, synthesis+PD+ATPG iterations: %d@." r.Resynth.accepted
    r.Resynth.implement_calls;
  Format.printf "runtime: %.1fs = %.1fx one baseline iteration (the paper's Rtime unit)@."
    r.Resynth.elapsed_s
    (r.Resynth.elapsed_s /. r.Resynth.baseline_s);

  (* What changed in the cell mix: the big stacks near the clusters are
     gone, replaced by small cells with weak activation conditions. *)
  let count nl name = try List.assoc name (N.cell_counts nl) with Not_found -> 0 in
  Format.printf "@.cell mix changes (instances, original -> resynthesized):@.";
  List.iter
    (fun c ->
      let a = count nl c and b = count r.Resynth.final.Design.netlist c in
      if a <> b then Format.printf "  %-10s %4d -> %4d@." c a b)
    (List.map (fun (c : Dfm_netlist.Cell.t) -> c.Dfm_netlist.Cell.name)
       (Resynth.cells_by_internal_faults nl.N.library));

  match Dfm_atpg.Equiv_sat.check nl r.Resynth.final.Design.netlist with
  | Dfm_atpg.Equiv_sat.Equivalent -> Format.printf "@.function preserved (SAT-proven).@."
  | _ -> Format.printf "@.ERROR: function changed!@."

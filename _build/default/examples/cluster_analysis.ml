(* Cluster analysis (the Table I workflow, Section II of the paper):
   implement a block, translate DFM guideline violations to faults, prove
   undetectability with the SAT ATPG, and study how the undetectable faults
   cluster.

   Run with:  dune exec examples/cluster_analysis.exe [-- circuit] *)

module N = Dfm_netlist.Netlist
module F = Dfm_faults.Fault
module Design = Dfm_core.Design
module Report = Dfm_core.Report
module T = Dfm_guidelines.Translate
module G = Dfm_guidelines.Guideline

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "aes_core" in
  let nl = Dfm_circuits.Circuits.build name in
  Format.printf "implementing %a@." N.pp_summary nl;
  let d = Design.implement nl in

  (* 1. The DFM guideline violations found in the layout. *)
  let fl = d.Design.fault_list in
  let by_category = Hashtbl.create 8 in
  List.iter
    (fun (v : T.violation) ->
      let k = Dfm_cellmodel.Defect.category_to_string v.T.guideline.G.category in
      Hashtbl.replace by_category k (1 + (try Hashtbl.find by_category k with Not_found -> 0)))
    fl.T.violations;
  Format.printf "@.guideline violations in the layout:@.";
  Hashtbl.iter (Format.printf "  %-8s %d@.") by_category;
  Format.printf "faults translated: %d internal (UDFM) + %d external = %d@." fl.T.n_internal
    fl.T.n_external
    (Array.length fl.T.faults);

  (* 2. The Table I row for this block. *)
  let row = Report.table1_row ~name d in
  Format.printf "@.%a@.%a@.@." Report.pp_table1_header () Report.pp_table1_row row;

  (* 3. The cluster size distribution: a few large clusters dominate. *)
  let clusters = d.Design.cluster.Dfm_core.Cluster.clusters in
  Format.printf "cluster sizes (faults): %s@."
    (String.concat " "
       (List.filteri (fun i _ -> i < 12) clusters
       |> List.map (fun c -> string_of_int (List.length c))));

  (* 4. What lives inside S_max: mostly internal faults of a few cell types
     whose activation patterns the surrounding logic can never produce. *)
  let smax = d.Design.cluster.Dfm_core.Cluster.smax in
  let by_cell = Hashtbl.create 16 in
  List.iter
    (fun fid ->
      match fl.T.faults.(fid).F.kind with
      | F.Internal (g, _) ->
          let c = (N.gate nl g).N.cell.Dfm_netlist.Cell.name in
          Hashtbl.replace by_cell c (1 + (try Hashtbl.find by_cell c with Not_found -> 0))
      | F.Stuck _ | F.Transition _ | F.Bridge _ ->
          Hashtbl.replace by_cell "(external)"
            (1 + (try Hashtbl.find by_cell "(external)" with Not_found -> 0)))
    smax;
  Format.printf "@.S_max composition (%d faults over %d gates):@." (List.length smax)
    (List.length d.Design.cluster.Dfm_core.Cluster.gmax);
  Hashtbl.iter (Format.printf "  %-12s %d@.") by_cell;
  (* 5. Which guidelines drive the uncovered sites. *)
  let gtable = Dfm_core.Report.guideline_table d in
  Format.printf "@.guidelines whose violations leave the most uncovered sites:@.";
  List.iteri
    (fun i (r : Dfm_core.Report.guideline_row) ->
      if i < 6 && r.Dfm_core.Report.n_undetectable > 0 then
        Format.printf "  %-4s %-52s %4d faults, %3d uncovered@."
          r.Dfm_core.Report.gl.Dfm_guidelines.Guideline.id
          r.Dfm_core.Report.gl.Dfm_guidelines.Guideline.description
          r.Dfm_core.Report.n_faults r.Dfm_core.Report.n_undetectable)
    gtable;

  Format.printf
    "@.every undetectable verdict above is an UNSAT proof from the ATPG miter — no abort limits.@."

examples/quickstart.mli:

examples/cluster_analysis.ml: Array Dfm_cellmodel Dfm_circuits Dfm_core Dfm_faults Dfm_guidelines Dfm_netlist Format Hashtbl List String Sys

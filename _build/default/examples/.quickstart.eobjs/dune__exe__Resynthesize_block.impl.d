examples/resynthesize_block.ml: Array Dfm_atpg Dfm_circuits Dfm_core Dfm_netlist Format List Sys

examples/cluster_analysis.mli:

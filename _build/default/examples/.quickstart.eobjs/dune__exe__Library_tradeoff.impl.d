examples/library_tradeoff.ml: Array Dfm_circuits Dfm_core Dfm_netlist Format String Sys

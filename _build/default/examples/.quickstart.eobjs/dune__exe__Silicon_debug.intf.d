examples/silicon_debug.mli:

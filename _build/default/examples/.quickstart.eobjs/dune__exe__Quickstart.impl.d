examples/quickstart.ml: Array Dfm_atpg Dfm_cellmodel Dfm_core Dfm_netlist Format List Printf String

examples/silicon_debug.ml: Array Dfm_atpg Dfm_circuits Dfm_core Dfm_faults Dfm_guidelines Dfm_netlist Filename Format List

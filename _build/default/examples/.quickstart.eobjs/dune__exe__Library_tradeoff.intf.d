examples/library_tradeoff.mli:

examples/resynthesize_block.mli:

(* Why targeted resynthesis, not just a smaller library?  The last
   experiment of Section IV: globally banning the seven cells with the most
   internal DFM faults removes undetectable faults too — but blows the
   delay/power budget, while the cluster-directed procedure stays inside it.

   Run with:  dune exec examples/library_tradeoff.exe [-- circuit] *)

module N = Dfm_netlist.Netlist
module Design = Dfm_core.Design
module Resynth = Dfm_core.Resynth
module Report = Dfm_core.Report

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "sparc_ifu" in
  let nl = Dfm_circuits.Circuits.build name in
  Format.printf "block: %a@.@." N.pp_summary nl;
  let d0 = Design.implement nl in
  let m0 = Design.metrics d0 in

  (* Option A: the paper's targeted, constraint-checked procedure. *)
  Format.printf "A. cluster-directed resynthesis (q <= 5%%):@.";
  let r = Resynth.run d0 in
  let m_a = Design.metrics r.Resynth.final in
  Format.printf "   U %d -> %d, delay %.1f%%, power %.1f%%@.@." m0.Design.u m_a.Design.u
    (100.0 *. m_a.Design.delay /. m0.Design.delay)
    (100.0 *. m_a.Design.power /. m0.Design.power);

  (* Option B: globally remove the 7 largest cells and re-synthesize the
     whole block into the same floorplan. *)
  Format.printf "B. blunt restriction (7 largest cells removed from the library):@.";
  let row = Report.ablation ~name nl in
  Format.printf "   removed: %s@." (String.concat " " row.Report.removed);
  if row.Report.fits then
    Format.printf "   delay %.1f%%, power %.1f%% of the original design@."
      (100.0 *. row.Report.delay_rel)
      (100.0 *. row.Report.power_rel)
  else Format.printf "   does not even fit the original floorplan@.";

  Format.printf
    "@.The paper's point, reproduced: the large cells are needed where timing and power@.";
  Format.printf
    "are tight; only the areas with undetectable-fault clusters should give them up.@."

(* Validator for the observability artifacts a campaign writes with
   [--trace] and [--metrics]:

     obs_validate TRACE.json METRICS.prom [MIN_DEPTH]

   - the trace must parse as Chrome trace-event JSON ({"traceEvents":[...]})
     and, per tid, form a properly nested B/E stream (every E closes the
     most recent open B of the same name; nothing left open at the end);
   - the deepest nesting across all tids must reach MIN_DEPTH (default 5)
     span levels — the campaign hierarchy campaign > q-step > phase >
     candidate > implement > classify is visible, not flattened;
   - the Prometheus exposition must have no duplicate metric/label series,
     at most one # TYPE per family, and must contain the SAT, cache, pool
     and checkpoint metric families.

   Exit 0 when everything holds, exit 1 with a one-line reason otherwise.
   The JSON parser is a small recursive-descent reader (the toolchain has
   no JSON library); it accepts exactly the subset the exporter emits plus
   ordinary whitespace. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (pos := !pos + l; v)
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; loop ()
          | '\\' -> Buffer.add_char buf '\\'; loop ()
          | '/' -> Buffer.add_char buf '/'; loop ()
          | 'n' -> Buffer.add_char buf '\n'; loop ()
          | 'r' -> Buffer.add_char buf '\r'; loop ()
          | 't' -> Buffer.add_char buf '\t'; loop ()
          | 'b' -> Buffer.add_char buf '\b'; loop ()
          | 'f' -> Buffer.add_char buf '\012'; loop ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
              in
              (* the exporter only emits \u00XX control escapes; encode the
                 code point as UTF-8 for anything else so parsing stays total *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              loop ()
          | _ -> fail "unknown escape")
      | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let die fmt = Printf.ksprintf (fun msg -> prerr_endline ("obs_validate: " ^ msg); exit 1) fmt

(* --- trace checks ------------------------------------------------------- *)

let field name = function
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let validate_trace path min_depth =
  let doc =
    try parse_json (read_file path)
    with Parse_error m -> die "%s: trace does not parse as JSON (%s)" path m
  in
  let events =
    match field "traceEvents" doc with
    | Some (Arr l) -> l
    | _ -> die "%s: no \"traceEvents\" array" path
  in
  if events = [] then die "%s: empty trace" path;
  (* per-tid stack discipline *)
  let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack_of tid =
    match Hashtbl.find_opt stacks tid with
    | Some st -> st
    | None ->
        let st = ref [] in
        Hashtbl.add stacks tid st;
        st
  in
  let max_depth = ref 0 in
  let last_ts : (int, float) Hashtbl.t = Hashtbl.create 8 in
  List.iteri
    (fun i ev ->
      let str k =
        match field k ev with Some (Str s) -> s | _ -> die "%s: event %d: missing \"%s\"" path i k
      in
      let num k =
        match field k ev with Some (Num f) -> f | _ -> die "%s: event %d: missing \"%s\"" path i k
      in
      let name = str "name" and ph = str "ph" in
      let ts = num "ts" and tid = int_of_float (num "tid") in
      ignore (num "pid");
      (match Hashtbl.find_opt last_ts tid with
      | Some prev when ts < prev ->
          die "%s: event %d: timestamps go backwards within tid %d" path i tid
      | _ -> Hashtbl.replace last_ts tid ts);
      let st = stack_of tid in
      match ph with
      | "B" ->
          st := name :: !st;
          max_depth := max !max_depth (List.length !st)
      | "E" -> (
          match !st with
          | top :: rest ->
              if top <> name then
                die "%s: event %d: E \"%s\" closes open span \"%s\" (tid %d)" path i name top
                  tid;
              st := rest
          | [] -> die "%s: event %d: E \"%s\" with no open span on tid %d" path i name tid)
      | ph -> die "%s: event %d: unexpected phase %S" path i ph)
    events;
  Hashtbl.iter
    (fun tid st ->
      if !st <> [] then
        die "%s: tid %d ends with %d unclosed span(s): %s" path tid (List.length !st)
          (String.concat " > " (List.rev !st)))
    stacks;
  if !max_depth < min_depth then
    die "%s: deepest nesting is %d span level(s), need >= %d" path !max_depth min_depth;
  Printf.printf "trace ok: %d events, max depth %d\n" (List.length events) !max_depth

(* --- prometheus checks --------------------------------------------------- *)

let validate_prometheus path =
  let content = read_file path in
  let lines = String.split_on_char '\n' content in
  let series = Hashtbl.create 256 in
  let types = Hashtbl.create 64 in
  List.iteri
    (fun i line ->
      if line <> "" then
        if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
          let rest = String.sub line 7 (String.length line - 7) in
          let fam =
            match String.index_opt rest ' ' with
            | Some j -> String.sub rest 0 j
            | None -> die "%s: line %d: malformed # TYPE" path (i + 1)
          in
          if Hashtbl.mem types fam then
            die "%s: line %d: duplicate # TYPE for family %s" path (i + 1) fam;
          Hashtbl.add types fam ()
        end
        else if line.[0] = '#' then ()
        else begin
          (* sample line: <name>[{labels}] <value> — the series key is
             everything before the value *)
          let key =
            match String.rindex_opt line ' ' with
            | Some j -> String.sub line 0 j
            | None -> die "%s: line %d: malformed sample line" path (i + 1)
          in
          if Hashtbl.mem series key then
            die "%s: line %d: duplicate series %s" path (i + 1) key;
          Hashtbl.add series key ()
        end)
    lines;
  let has_family prefix =
    Hashtbl.fold
      (fun fam () acc ->
        acc
        || String.length fam >= String.length prefix
           && String.sub fam 0 (String.length prefix) = prefix)
      types false
  in
  List.iter
    (fun prefix ->
      if not (has_family prefix) then die "%s: missing metric family %s*" path prefix)
    [ "dfm_sat_"; "dfm_cache_"; "dfm_pool_"; "dfm_checkpoint_" ];
  Printf.printf "metrics ok: %d series, %d families\n" (Hashtbl.length series)
    (Hashtbl.length types)

(* --- streaming ("X" complete-event) trace checks ------------------------- *)

(* Streamed traces ([trace --follow], flight-recorder dumps) use
   self-contained "X" events: no bracketing requirement — a parent may land
   in a later batch than its children — but every event must be a complete,
   well-formed record, and the file as a whole must be a loadable Chrome
   trace at every instant. *)
let validate_complete_trace path min_events =
  let doc =
    try parse_json (read_file path)
    with Parse_error m -> die "%s: trace does not parse as JSON (%s)" path m
  in
  let events =
    match field "traceEvents" doc with
    | Some (Arr l) -> l
    | _ -> die "%s: no \"traceEvents\" array" path
  in
  List.iteri
    (fun i ev ->
      let str k =
        match field k ev with Some (Str s) -> s | _ -> die "%s: event %d: missing \"%s\"" path i k
      in
      let num k =
        match field k ev with Some (Num f) -> f | _ -> die "%s: event %d: missing \"%s\"" path i k
      in
      let ph = str "ph" in
      if ph <> "X" then die "%s: event %d: expected phase \"X\", got %S" path i ph;
      if str "name" = "" then die "%s: event %d: empty span name" path i;
      if num "ts" < 0.0 then die "%s: event %d: negative ts" path i;
      if num "dur" < 0.0 then die "%s: event %d: negative dur" path i;
      ignore (num "tid");
      ignore (num "pid"))
    events;
  if List.length events < min_events then
    die "%s: %d complete event(s), need >= %d" path (List.length events) min_events;
  Printf.printf "complete trace ok: %d events\n" (List.length events)

let () =
  match Array.to_list Sys.argv with
  | [ _; "--complete"; trace ] -> validate_complete_trace trace 1
  | [ _; "--complete"; trace; min_events ] ->
      let m =
        match int_of_string_opt min_events with
        | Some m -> m
        | None -> die "MIN_EVENTS must be an integer, got %S" min_events
      in
      validate_complete_trace trace m
  | [ _; trace; metrics ] ->
      validate_trace trace 5;
      validate_prometheus metrics
  | [ _; trace; metrics; min_depth ] ->
      let d =
        match int_of_string_opt min_depth with
        | Some d -> d
        | None -> die "MIN_DEPTH must be an integer, got %S" min_depth
      in
      validate_trace trace d;
      validate_prometheus metrics
  | _ ->
      die
        "usage: obs_validate TRACE.json METRICS.prom [MIN_DEPTH] | obs_validate --complete \
         TRACE.json [MIN_EVENTS]"

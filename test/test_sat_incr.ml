(* Tests for the incremental assumption-based SAT core.

   Three layers of differential evidence:

   - Solver level: random CNF query batches run through an
     [Dfm_sat.Incremental] session (activation-guarded groups over one
     persistent solver) must answer exactly like a throwaway solver per
     query; after every solve the between-solve invariants hold
     ([Solver.check_invariants]) and every retained learnt clause is
     re-proved to be implied by the clauses added so far.

   - ATPG level: [Atpg.classify] / [generate] / [escalate] in Incremental
     mode must produce the same verdicts as Oneshot mode, at jobs 1 and 4,
     including after a region rewrite — and every incremental test pattern
     must be confirmed by the independent fault simulator.

   - Campaign level: the [sat.solve] failpoint kills a checkpointed
     campaign mid-incremental-session; the resume must be bit-identical to
     the uninterrupted run. *)

module Solver = Dfm_sat.Solver
module Incr = Dfm_sat.Incremental
module Metrics = Dfm_obs.Metrics
module N = Dfm_netlist.Netlist
module B = N.Builder
module Cell = Dfm_netlist.Cell
module F = Dfm_faults.Fault
module Atpg = Dfm_atpg.Atpg
module Encode = Dfm_atpg.Encode
module Ls = Dfm_sim.Logic_sim
module Fs = Dfm_sim.Fault_sim
module Rng = Dfm_util.Rng
module Failpoint = Dfm_util.Failpoint
module Design = Dfm_core.Design
module Resynth = Dfm_core.Resynth
module Netlist_io = Dfm_netlist.Netlist_io

let lib = Dfm_cellmodel.Osu018.library
let origin = { F.category = Dfm_cellmodel.Defect.Via; guideline_index = 0 }

(* ------------------------------------------------------------------ *)
(* Solver level: session fuzz against one-shot solving                 *)
(* ------------------------------------------------------------------ *)

let brute_sat nvars clauses =
  let rec try_assignment m =
    if m >= 1 lsl nvars then false
    else
      List.for_all
        (fun c ->
          List.exists
            (fun l ->
              let v = (m lsr (abs l - 1)) land 1 = 1 in
              if l > 0 then v else not v)
            c)
        clauses
      || try_assignment (m + 1)
  in
  try_assignment 0

(* A base CNF plus a list of query groups, all over the same variables. *)
let arb_session_problem =
  let print_clauses cs =
    String.concat " ; " (List.map (fun c -> String.concat " " (List.map string_of_int c)) cs)
  in
  QCheck.make
    ~print:(fun (n, base, groups) ->
      Printf.sprintf "n=%d base=[%s] groups=[%s]" n (print_clauses base)
        (String.concat " | " (List.map print_clauses groups)))
    QCheck.Gen.(
      int_range 2 8 >>= fun nvars ->
      let clause =
        list_size (int_range 1 3)
          (map (fun (v, s) -> if s then v + 1 else -(v + 1)) (pair (int_bound (nvars - 1)) bool))
      in
      triple (return nvars)
        (list_size (int_range 0 10) clause)
        (list_size (int_range 1 6) (list_size (int_range 1 8) clause)))

(* Re-prove a learnt clause: CNF-so-far /\ not(C) must be UNSAT. *)
let check_learnts_implied all_clauses solver =
  let learnts = Solver.learnt_clauses solver in
  let checked = ref 0 in
  List.iter
    (fun c ->
      if !checked < 50 then begin
        incr checked;
        let s = Solver.create () in
        Solver.ensure_vars s (Solver.num_vars solver);
        List.iter (Solver.add_clause s) all_clauses;
        List.iter (fun l -> Solver.add_clause s [ -l ]) c;
        if Solver.solve s <> Solver.Unsat then
          QCheck.Test.fail_reportf "learnt clause [%s] is not implied by the CNF"
            (String.concat " " (List.map string_of_int c))
      end)
    learnts;
  true

let prop_session_matches_oneshot =
  QCheck.Test.make ~name:"incremental session answers = one-shot per query" ~count:100
    arb_session_problem (fun (nvars, base, groups) ->
      let sess = Incr.create () in
      let solver = Incr.solver sess in
      Solver.ensure_vars solver nvars;
      (* every clause in solver numbering, for the learnt implication check *)
      let all_clauses = ref [] in
      List.iter
        (fun c ->
          Incr.add_permanent sess c;
          all_clauses := c :: !all_clauses)
        base;
      List.iter
        (fun group ->
          let act = Incr.new_activation sess in
          List.iter
            (fun c ->
              Incr.add_guarded sess ~act c;
              all_clauses := (-act :: c) :: !all_clauses)
            group;
          let r = Incr.solve sess ~act in
          Solver.check_invariants solver;
          (* one-shot reference: base /\ group, nothing else (earlier
             groups' guards are free, so they are invisible) *)
          let expect = brute_sat nvars (base @ group) in
          (match r with
          | Solver.Sat ->
              if not expect then QCheck.Test.fail_report "session Sat, brute force Unsat";
              (* the model must satisfy base and group, with act assumed *)
              if not (Solver.lit_value solver act) then
                QCheck.Test.fail_report "assumed activation false in model";
              List.iter
                (fun c ->
                  if not (List.exists (Solver.lit_value solver) c) then
                    QCheck.Test.fail_report "model violates an active clause")
                (base @ group)
          | Solver.Unsat ->
              if expect then QCheck.Test.fail_report "session Unsat, brute force Sat";
              (* the activation must be among the failed assumptions unless
                 the permanent CNF is itself unsatisfiable *)
              let failed = Solver.failed_assumptions solver in
              if not (List.for_all (fun l -> l = act) failed) then
                QCheck.Test.fail_report "failed assumptions outside the assumed set"
          | Solver.Unknown -> QCheck.Test.fail_report "unbounded solve returned Unknown");
          ())
        groups;
      check_learnts_implied !all_clauses solver)

let prop_failed_assumptions =
  QCheck.Test.make ~name:"failed assumptions are a valid unsat core" ~count:150
    arb_session_problem (fun (nvars, base, groups) ->
      let clauses = base @ List.concat groups in
      let s = Solver.create () in
      Solver.ensure_vars s nvars;
      List.iter (Solver.add_clause s) clauses;
      (* assume a sign for every other variable *)
      let assumptions =
        List.init nvars (fun i -> i + 1)
        |> List.filteri (fun i _ -> i mod 2 = 0)
        |> List.map (fun v -> if v mod 4 = 1 then v else -v)
      in
      (match Solver.solve ~assumptions s with
      | Solver.Sat ->
          List.iter
            (fun l ->
              if not (Solver.lit_value s l) then
                QCheck.Test.fail_report "Sat model contradicts an assumption")
            assumptions
      | Solver.Unsat ->
          let failed = Solver.failed_assumptions s in
          List.iter
            (fun l ->
              if not (List.mem l assumptions) then
                QCheck.Test.fail_report "failed assumption not among the assumed")
            failed;
          (* the failed subset alone must already be contradicted *)
          if Solver.solve ~assumptions:failed s <> Solver.Unsat then
            QCheck.Test.fail_report "failed-assumption subset is not an unsat core"
      | Solver.Unknown -> QCheck.Test.fail_report "unbounded solve returned Unknown");
      Solver.check_invariants s;
      true)

let test_retire_semantics () =
  let sess = Incr.create () in
  let solver = Incr.solver sess in
  Solver.ensure_vars solver 2;
  Incr.add_permanent sess [ 1; 2 ];
  let act1 = Incr.new_activation sess in
  Incr.add_guarded sess ~act:act1 [ -1 ];
  Incr.add_guarded sess ~act:act1 [ -2 ];
  Alcotest.(check bool) "group 1 contradicts the base" true
    (Incr.solve sess ~act:act1 = Solver.Unsat);
  Alcotest.(check bool) "activation in the failed set" true
    (List.mem act1 (Solver.failed_assumptions solver));
  let act2 = Incr.new_activation sess in
  Incr.add_guarded sess ~act:act2 [ 1 ];
  Alcotest.(check bool) "group 2 solvable" true (Incr.solve sess ~act:act2 = Solver.Sat);
  Incr.retire sess ~act:act1 ~locals:[];
  Solver.check_invariants solver;
  Alcotest.(check bool) "group 2 unaffected by the retirement" true
    (Incr.solve sess ~act:act2 = Solver.Sat);
  (* the retired activation is permanently off: assuming it is contradictory *)
  Alcotest.(check bool) "retired group cannot be reactivated" true
    (Incr.solve sess ~act:act1 = Solver.Unsat);
  let st = Incr.stats sess in
  Alcotest.(check int) "activations" 2 st.Incr.activations;
  Alcotest.(check int) "retired" 1 st.Incr.retired;
  Alcotest.(check int) "solves" 4 st.Incr.solves;
  Alcotest.(check bool) "clause reuse accumulates" true (st.Incr.clauses_reused > 0)

let test_session_metrics () =
  let m_act = Metrics.counter "dfm_sat_incr_activations_total" in
  let m_solves = Metrics.counter "dfm_sat_incr_solves_total" in
  let m_retired = Metrics.counter "dfm_sat_incr_retired_total" in
  let a0 = Metrics.counter_value m_act
  and s0 = Metrics.counter_value m_solves
  and r0 = Metrics.counter_value m_retired in
  let sess = Incr.create () in
  let act = Incr.new_activation sess in
  Incr.add_guarded sess ~act [ 1; 2 ];
  ignore (Incr.solve sess ~act : Solver.result);
  Incr.retire sess ~act ~locals:[ 1; 2 ];
  Alcotest.(check int) "activation counted" (a0 + 1) (Metrics.counter_value m_act);
  Alcotest.(check int) "solve counted" (s0 + 1) (Metrics.counter_value m_solves);
  Alcotest.(check int) "retirement counted" (r0 + 1) (Metrics.counter_value m_retired)

let test_pool_fifo () =
  (match Incr.create_pool ~max_sessions:0 () with
  | _ -> Alcotest.fail "capacity 0 must be refused"
  | exception Invalid_argument _ -> ());
  let p : string Incr.pool = Incr.create_pool ~max_sessions:2 () in
  Alcotest.(check bool) "miss on empty pool" true (Incr.find_session p ~key:1L = None);
  Incr.add_session p ~key:1L (Incr.create ()) "one";
  Incr.add_session p ~key:2L (Incr.create ()) "two";
  (match Incr.find_session p ~key:1L with
  | Some (_, "one") -> ()
  | _ -> Alcotest.fail "payload of key 1 lost");
  (* FIFO: inserting a third evicts the oldest insertion (key 1) *)
  Incr.add_session p ~key:3L (Incr.create ()) "three";
  Alcotest.(check bool) "oldest evicted" true (Incr.find_session p ~key:1L = None);
  Alcotest.(check bool) "younger survives" true (Incr.find_session p ~key:2L <> None);
  Alcotest.(check bool) "newest present" true (Incr.find_session p ~key:3L <> None);
  let st = Incr.pool_stats p in
  Alcotest.(check int) "live" 2 st.Incr.live;
  Alcotest.(check int) "evictions" 1 st.Incr.evictions;
  Alcotest.(check int) "hits" 3 st.Incr.pool_hits;
  Alcotest.(check int) "misses" 2 st.Incr.pool_misses

(* ------------------------------------------------------------------ *)
(* ATPG level: mode differential                                       *)
(* ------------------------------------------------------------------ *)

let random_netlist seed npis ngates =
  let rng = Rng.create seed in
  let b = B.create ~name:"rand" lib in
  let nets = ref [] in
  for i = 0 to npis - 1 do
    nets := B.add_pi b (Printf.sprintf "i%d" i) :: !nets
  done;
  let cells = [| "INVX1"; "NAND2X1"; "NOR2X1"; "XOR2X1"; "AOI21X1"; "OAI21X1" |] in
  for _ = 1 to ngates do
    let arr = Array.of_list !nets in
    let cname = Rng.pick rng cells in
    let c = Dfm_netlist.Library.find lib cname in
    let fanins = Array.init (Cell.arity c) (fun _ -> Rng.pick rng arr) in
    nets := B.add_gate b ~cell:cname fanins :: !nets
  done;
  List.iteri (fun i n -> if i < 3 then B.mark_po b (Printf.sprintf "o%d" i) n) !nets;
  B.finish b

let all_faults nl =
  let faults = ref [] in
  let id = ref 0 in
  let add kind =
    faults := { F.fault_id = !id; kind; origin } :: !faults;
    incr id
  in
  Array.iter
    (fun (nn : N.net) ->
      List.iter (fun pol -> add (F.Stuck (F.On_net nn.N.net_id, pol))) [ F.Sa0; F.Sa1 ];
      List.iter
        (fun tr -> add (F.Transition (F.On_net nn.N.net_id, tr)))
        [ F.Slow_to_rise; F.Slow_to_fall ])
    nl.N.nets;
  Array.iteri
    (fun gid (g : N.gate) ->
      Array.iteri
        (fun pin _ ->
          List.iter (fun pol -> add (F.Stuck (F.On_pin (gid, pin), pol))) [ F.Sa0; F.Sa1 ])
        g.N.fanins;
      let u = Dfm_cellmodel.Udfm.for_cell g.N.cell.Cell.name in
      List.iteri
        (fun entry_idx _ -> if entry_idx < 4 then add (F.Internal (gid, entry_idx)))
        u.Dfm_cellmodel.Udfm.entries)
    nl.N.gates;
  Array.of_list (List.rev !faults)

let counts_sans_sat_queries (c : Atpg.counts) =
  ( c.Atpg.total,
    c.Atpg.detected,
    c.Atpg.undetectable,
    c.Atpg.aborted,
    c.Atpg.undetectable_internal,
    c.Atpg.undetectable_external )

let same_classification name (a : Atpg.classification) (b : Atpg.classification) =
  Alcotest.(check bool) (name ^ ": statuses identical") true (a.Atpg.status = b.Atpg.status);
  Alcotest.(check bool) (name ^ ": counts identical") true (a.Atpg.counts = b.Atpg.counts)

let prop_modes_agree =
  QCheck.Test.make ~name:"incremental = oneshot verdicts at jobs 1 and 4" ~count:6
    QCheck.(pair (int_range 1 100000) (int_range 6 18))
    (fun (seed, ngates) ->
      let nl = random_netlist seed 4 ngates in
      let faults = all_faults nl in
      let one = Atpg.classify ~jobs:1 ~sat_mode:Atpg.Oneshot nl faults in
      let inc1 = Atpg.classify ~jobs:1 ~sat_mode:Atpg.Incremental nl faults in
      let inc4 = Atpg.classify ~jobs:4 ~sat_mode:Atpg.Incremental nl faults in
      one.Atpg.status = inc1.Atpg.status
      && one.Atpg.counts = inc1.Atpg.counts
      && inc1.Atpg.status = inc4.Atpg.status
      && inc1.Atpg.counts = inc4.Atpg.counts)

(* The resynthesis loop's central move is a region rewrite; the mode
   identity must survive it. *)
let prop_modes_agree_after_replace =
  QCheck.Test.make ~name:"mode identity survives a region rewrite" ~count:4
    QCheck.(pair (int_range 1 100000) (int_range 10 20))
    (fun (seed, ngates) ->
      let nl = random_netlist seed 4 ngates in
      let comb = N.comb_gates nl in
      QCheck.assume (List.length comb >= 2);
      let rng = Rng.create (seed lxor 0x5A7) in
      let region =
        List.filteri (fun i _ -> i < 1 + Rng.int rng 3) (List.map (fun g -> g.N.gate_id) comb)
      in
      let nl' =
        try Dfm_synth.Convert.remap_region ~goal:`Area ~sweep:true nl ~gates:region ~library:lib
        with Dfm_synth.Mapper.Unmappable _ -> nl
      in
      let faults = all_faults nl' in
      let one = Atpg.classify ~jobs:1 ~sat_mode:Atpg.Oneshot nl' faults in
      let inc1 = Atpg.classify ~jobs:1 ~sat_mode:Atpg.Incremental nl' faults in
      let inc4 = Atpg.classify ~jobs:4 ~sat_mode:Atpg.Incremental nl' faults in
      one.Atpg.status = inc1.Atpg.status
      && one.Atpg.counts = inc1.Atpg.counts
      && inc1.Atpg.status = inc4.Atpg.status
      && inc1.Atpg.counts = inc4.Atpg.counts)

(* [generate] in both modes: same verdicts, zero simulator disagreements,
   and the incremental test set replayed through the independent fault
   simulator must cover every fault classified Detected.  (The patterns
   themselves may differ between modes — only their validity is promised.) *)
let test_generate_modes () =
  let nl = random_netlist 42 5 12 in
  let faults = all_faults nl in
  let g_one = Atpg.generate ~sat_mode:Atpg.Oneshot nl faults in
  let g_inc = Atpg.generate ~sat_mode:Atpg.Incremental nl faults in
  (* patterns (and hence fault-dropping order, hence [sat_queries]) may
     differ between modes; the verdicts may not *)
  Alcotest.(check bool) "generate: statuses identical" true
    (g_one.Atpg.classification.Atpg.status = g_inc.Atpg.classification.Atpg.status);
  Alcotest.(check bool) "generate: counts identical modulo sat_queries" true
    (counts_sans_sat_queries g_one.Atpg.classification.Atpg.counts
    = counts_sans_sat_queries g_inc.Atpg.classification.Atpg.counts);
  Alcotest.(check int) "oneshot cross-check clean" 0 g_one.Atpg.cross_check_failures;
  Alcotest.(check int) "incremental cross-check clean" 0 g_inc.Atpg.cross_check_failures;
  let ls = Ls.prepare nl in
  let fs = Fs.prepare nl in
  let detected = Array.make (Array.length faults) false in
  let init_seen = Array.make (Array.length faults) false in
  let stuck_seen = Array.make (Array.length faults) false in
  List.iter
    (fun pattern ->
      let good = Ls.run ls (Ls.words_of_pattern pattern) in
      Array.iteri
        (fun fid f ->
          match f.F.kind with
          | F.Transition _ ->
              if Fs.detect_word fs ~good f <> 0L then stuck_seen.(fid) <- true;
              if Fs.init_word fs ~good f <> 0L then init_seen.(fid) <- true;
              if stuck_seen.(fid) && init_seen.(fid) then detected.(fid) <- true
          | _ -> if Fs.detect_word fs ~good f <> 0L then detected.(fid) <- true)
        faults)
    g_inc.Atpg.tests;
  Array.iteri
    (fun fid st ->
      if st = Atpg.Detected then
        Alcotest.(check bool)
          (Printf.sprintf "fault %d covered by incremental tests" fid)
          true detected.(fid))
    g_inc.Atpg.classification.Atpg.status

(* Escalation ladders in both modes: semantic verdicts of faults resolved
   by both agree, and the per-rung abort counts stay monotone. *)
let prop_escalate_modes_agree =
  QCheck.Test.make ~name:"escalation verdicts mode-independent" ~count:4
    QCheck.(pair (int_range 1 100000) (int_range 18 28))
    (fun (seed, ngates) ->
      let nl = random_netlist seed 4 ngates in
      let faults = all_faults nl in
      let run mode =
        let cls = Atpg.classify ~jobs:1 ~max_conflicts:1 ~sat_mode:mode nl faults in
        Atpg.escalate ~sat_mode:mode ~max_conflicts:1 nl faults cls
      in
      let cls_one, st_one = run Atpg.Oneshot in
      let cls_inc, st_inc = run Atpg.Incremental in
      let monotone = function
        | [] -> true
        | l -> List.for_all2 ( >= ) l (List.tl l @ [ 0 ])
      in
      if not (monotone st_one.Atpg.aborted_per_rung && monotone st_inc.Atpg.aborted_per_rung)
      then QCheck.Test.fail_report "aborted_per_rung not monotone";
      Array.iteri
        (fun i a ->
          let b = cls_inc.Atpg.status.(i) in
          match (a, b) with
          | Atpg.Aborted, _ | _, Atpg.Aborted -> ()
          | a, b ->
              if a <> b then
                QCheck.Test.fail_reportf "fault %d: oneshot and incremental disagree" i)
        cls_one.Atpg.status;
      true)

(* ------------------------------------------------------------------ *)
(* Encode sessions: invariants, pattern validity, budget re-solve       *)
(* ------------------------------------------------------------------ *)

let verdict_kind = function
  | Encode.Tests _ -> `Tests
  | Encode.Undetectable -> `Undetectable
  | Encode.Unknown -> `Unknown

let test_encode_session_invariants () =
  let nl = random_netlist 42 4 12 in
  let ls = Ls.prepare nl in
  let fs = Fs.prepare nl in
  let sess = Encode.make_session ls in
  Array.iter
    (fun f ->
      let v_inc = Encode.check_incr sess f in
      Solver.check_invariants (Encode.session_solver sess);
      let v_one = Encode.check ls f in
      Alcotest.(check bool)
        (Printf.sprintf "fault %d verdict kind" f.F.fault_id)
        true
        (verdict_kind v_inc = verdict_kind v_one);
      match v_inc with
      | Encode.Tests ts ->
          (* every pattern from the shared session must actually work *)
          let works test_of_word =
            List.exists
              (fun (t : Encode.test) ->
                let good = Ls.run ls (Ls.words_of_pattern t.Encode.values) in
                test_of_word ~good f <> 0L)
              ts
          in
          (match f.F.kind with
          | F.Transition _ ->
              Alcotest.(check bool)
                (Printf.sprintf "fault %d init covered" f.F.fault_id)
                true (works (Fs.init_word fs));
              Alcotest.(check bool)
                (Printf.sprintf "fault %d detect covered" f.F.fault_id)
                true (works (Fs.detect_word fs))
          | _ ->
              Alcotest.(check bool)
                (Printf.sprintf "fault %d detected by its pattern" f.F.fault_id)
                true (works (Fs.detect_word fs)))
      | Encode.Undetectable | Encode.Unknown -> ())
    (all_faults nl);
  Alcotest.(check int) "no pending parts at unbounded budget" 0 (Encode.pending_parts sess);
  let st = Encode.session_stats sess in
  Alcotest.(check bool) "session saw work" true (st.Incr.activations > 0);
  Alcotest.(check int) "every activation group retired or a live shared cone"
    st.Incr.activations
    (st.Incr.retired + Encode.live_cones sess)

(* A budget-exhausted query stays pending and a later re-check of the same
   fault resolves it in place — without disturbing the mode identity. *)
let test_encode_budget_re_solve () =
  let nl = random_netlist 9 4 26 in
  let ls = Ls.prepare nl in
  let sess = Encode.make_session ls in
  let faults = all_faults nl in
  let unknowns = ref [] in
  Array.iter
    (fun f ->
      match Encode.check_incr ~max_conflicts:1 sess f with
      | Encode.Unknown -> unknowns := f :: !unknowns
      | Encode.Tests _ | Encode.Undetectable -> ())
    faults;
  Alcotest.(check bool) "pending parts iff unknown verdicts" true
    ((Encode.pending_parts sess > 0) = (!unknowns <> []));
  (* the same session resolves them at full budget, matching one-shot *)
  List.iter
    (fun f ->
      let v = Encode.check_incr sess f in
      Solver.check_invariants (Encode.session_solver sess);
      Alcotest.(check bool)
        (Printf.sprintf "fault %d re-solve matches one-shot" f.F.fault_id)
        true
        (verdict_kind v = verdict_kind (Encode.check ls f)))
    !unknowns;
  Alcotest.(check int) "re-solve drained the pending set" 0 (Encode.pending_parts sess)

(* ------------------------------------------------------------------ *)
(* Static filter interplay                                             *)
(* ------------------------------------------------------------------ *)

(* n2 = NAND(a, not a) is constant 1: Sa1/STR/STF on it are undetectable. *)
let redundant_circuit () =
  let b = B.create ~name:"redund" lib in
  let a = B.add_pi b "a" in
  let c = B.add_pi b "c" in
  let n1 = B.add_gate b ~cell:"INVX1" [| a |] in
  let n2 = B.add_gate b ~cell:"NAND2X1" [| a; n1 |] in
  let n3 = B.add_gate b ~cell:"NAND2X1" [| n2; c |] in
  B.mark_po b "y" n3;
  B.finish b

let test_static_filter_never_encoded () =
  let nl = redundant_circuit () in
  let faults = all_faults nl in
  let m_act = Metrics.counter "dfm_sat_incr_activations_total" in
  let m_filtered = Metrics.counter "dfm_atpg_static_filtered_total" in
  let a0 = Metrics.counter_value m_act in
  let plain = Atpg.classify ~jobs:1 ~sat_mode:Atpg.Incremental nl faults in
  let plain_acts = Metrics.counter_value m_act - a0 in
  (* a sound filter by construction: exactly the SAT-proven undetectables *)
  let filter f = plain.Atpg.status.(f.F.fault_id) = Atpg.Undetectable in
  let n_filtered = Array.length (Array.of_seq (Seq.filter filter (Array.to_seq faults))) in
  Alcotest.(check bool) "circuit has undetectable faults" true (n_filtered > 0);
  let a1 = Metrics.counter_value m_act in
  let f1 = Metrics.counter_value m_filtered in
  let filtered =
    Atpg.classify ~jobs:1 ~static_filter:filter ~sat_mode:Atpg.Incremental nl faults
  in
  let filtered_acts = Metrics.counter_value m_act - a1 in
  Alcotest.(check int) "filtered-faults metric is exact" (f1 + n_filtered)
    (Metrics.counter_value m_filtered);
  Alcotest.(check bool) "statuses unchanged by the filter" true
    (plain.Atpg.status = filtered.Atpg.status);
  (* undetectable faults always reach the SAT phase, so the query saving
     is exactly the filtered count *)
  Alcotest.(check int) "sat_queries accounting is exact"
    (plain.Atpg.counts.Atpg.sat_queries - n_filtered)
    filtered.Atpg.counts.Atpg.sat_queries;
  (* each filtered fault would have cost >= 1 activation group: none of
     them may be encoded into the persistent session *)
  Alcotest.(check bool) "filtered faults never encoded" true
    (plain_acts - filtered_acts >= n_filtered);
  let filtered4 =
    Atpg.classify ~jobs:4 ~static_filter:filter ~sat_mode:Atpg.Incremental nl faults
  in
  same_classification "filtered jobs=4" filtered filtered4

(* ------------------------------------------------------------------ *)
(* Failpoint: sat.solve site, kill/resume mid-session                  *)
(* ------------------------------------------------------------------ *)

let test_sat_solve_failpoint () =
  Failpoint.clear ();
  Fun.protect ~finally:Failpoint.clear @@ fun () ->
  let nl = random_netlist 7 4 10 in
  let faults = all_faults nl in
  let r_ref = Atpg.classify ~jobs:1 ~sat_mode:Atpg.Incremental nl faults in
  Failpoint.enable ~after:3 "sat.solve" Failpoint.Raise;
  (match Atpg.classify ~jobs:1 ~sat_mode:Atpg.Incremental nl faults with
  | _ -> Alcotest.fail "armed sat.solve site never fired"
  | exception Failpoint.Injected _ -> ());
  Alcotest.(check bool) "site counted hits" true (Failpoint.hit_count "sat.solve" > 3);
  Failpoint.clear ();
  let r = Atpg.classify ~jobs:1 ~sat_mode:Atpg.Incremental nl faults in
  same_classification "after the injected crash" r_ref r

(* Kill a checkpointed campaign via the sat.solve site — mid-flight of a
   persistent incremental session, possibly inside a worker domain — and
   demand that the resume reproduces the uninterrupted run bit for bit. *)
let test_kill_resume_mid_sat_session () =
  let fresh_path () =
    let p = Filename.temp_file "dfm_sat_ckpt" ".ckpt" in
    Sys.remove p;
    p
  in
  Failpoint.clear ();
  let nl = Dfm_circuits.Circuits.build ~scale:0.25 "sparc_ffu" in
  let d0 = Design.implement nl in
  (* reference: uninterrupted checkpointed run, counting sat.solve hits *)
  let path_ref = fresh_path () in
  Failpoint.enable ~after:max_int "sat.solve" Failpoint.Raise;
  let r_ref = Resynth.run ~checkpoint:{ Resynth.path = path_ref; resume = false } d0 in
  let solves = Failpoint.hit_count "sat.solve" in
  Failpoint.clear ();
  Sys.remove path_ref;
  Alcotest.(check bool) "campaign issues SAT solves" true (solves > 0);
  let path = fresh_path () in
  Fun.protect
    ~finally:(fun () ->
      Failpoint.clear ();
      if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  (* no [times] bound: every solve after the kill point raises, so worker
     retries and the sequential fallback die too and the campaign aborts *)
  Failpoint.enable ~after:(solves / 2) "sat.solve" Failpoint.Raise;
  (match Resynth.run ~checkpoint:{ Resynth.path; resume = false } d0 with
  | _ -> Alcotest.fail "kill point never fired"
  | exception Failpoint.Injected _ -> ());
  Failpoint.clear ();
  let r = Resynth.run ~checkpoint:{ Resynth.path; resume = true } d0 in
  Alcotest.(check string) "final netlist identical"
    (Netlist_io.to_string r_ref.Resynth.final.Design.netlist)
    (Netlist_io.to_string r.Resynth.final.Design.netlist);
  Alcotest.(check bool) "trace identical" true (r.Resynth.trace = r_ref.Resynth.trace);
  Alcotest.(check int) "accepted" r_ref.Resynth.accepted r.Resynth.accepted;
  Alcotest.(check int) "implement calls" r_ref.Resynth.implement_calls
    r.Resynth.implement_calls;
  Alcotest.(check int) "SAT queries" r_ref.Resynth.sat_queries r.Resynth.sat_queries

let suite =
  [
    QCheck_alcotest.to_alcotest prop_session_matches_oneshot;
    QCheck_alcotest.to_alcotest prop_failed_assumptions;
    Alcotest.test_case "retire semantics" `Quick test_retire_semantics;
    Alcotest.test_case "session metrics" `Quick test_session_metrics;
    Alcotest.test_case "pool FIFO" `Quick test_pool_fifo;
    QCheck_alcotest.to_alcotest prop_modes_agree;
    QCheck_alcotest.to_alcotest prop_modes_agree_after_replace;
    Alcotest.test_case "generate in both modes" `Quick test_generate_modes;
    QCheck_alcotest.to_alcotest prop_escalate_modes_agree;
    Alcotest.test_case "encode session invariants" `Quick test_encode_session_invariants;
    Alcotest.test_case "budget re-solve in one session" `Quick test_encode_budget_re_solve;
    Alcotest.test_case "static filter never encoded" `Quick test_static_filter_never_encoded;
    Alcotest.test_case "sat.solve failpoint" `Quick test_sat_solve_failpoint;
    Alcotest.test_case "kill/resume mid SAT session" `Slow test_kill_resume_mid_sat_session;
  ]

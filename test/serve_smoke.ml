(* Loopback smoke for the serve daemon, driving the real CLI executable
   as a subprocess.  Four end-to-end guarantees from the campaign-service
   acceptance list:

   1. Determinism: a daemon-run analyze job is byte-identical to the
      one-shot CLI's [--report] output for the same committed netlist, at
      job worker caps 1 and 4.
   2. Hardening: a second daemon on the same socket refuses to start
      (exit 2) while the first is alive.
   3. Multi-tenancy: three concurrent clients share one verdict store —
      tenants that never populated the cache still observe hits.
   4. Resilience: a daemon SIGKILLed mid-resynthesis leaves a resumable
      per-job checkpoint; a restarted daemon re-runs the job and delivers
      a byte-identical report (same accepted ECO chain, same final
      netlist hash) to an uninterrupted run.
   5. Exhaustion + certification: a daemon started with injected
      EMFILE accept failures (serve.accept_emfile failpoint) and
      --certify never exits — it backs off, recovers, and the certified
      job's report is still byte-identical to the uncertified one-shot.

   Usage: serve_smoke CLI_EXE NETLIST_FILE *)

module Client = Dfm_serve.Client
module Protocol = Dfm_serve.Protocol

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s\n%!" s)
    fmt

let pass fmt = Printf.ksprintf (fun s -> Printf.printf "ok   %s\n%!" s) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Socket paths must stay under the ~107-byte sun_path limit; dune
   sandboxes nest deep, so sockets live in the system temp dir while all
   persistent state stays inside the sandbox cwd. *)
let sock_path tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "dfm_smoke_%d_%s.sock" (Unix.getpid ()) tag)

let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0

let spawn exe args ~log =
  let out = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  let pid = Unix.create_process exe (Array.of_list (exe :: args)) devnull out out in
  Unix.close out;
  pid

let wait_exit pid =
  match snd (Unix.waitpid [] pid) with
  | Unix.WEXITED n -> n
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> -1

(* Wait until the daemon accepts connections (it unlinks/creates the
   socket and replays its ledger first; allow a generous grace). *)
let wait_ready sock =
  let rec go n =
    if n = 0 then failwith ("daemon never became ready on " ^ sock)
    else
      match Client.connect sock with
      | Ok c ->
          Client.close c;
          ()
      | Error _ ->
          Unix.sleepf 0.05;
          go (n - 1)
  in
  go 200

let start_daemon exe ~sock ~state ~log =
  let pid = spawn exe [ "serve"; "--socket"; sock; "--state-dir"; state; "-j"; "2" ] ~log in
  wait_ready sock;
  pid

let stop_daemon ~sock ~pid =
  (match Client.connect sock with
  | Ok c ->
      (match Client.request c Protocol.Drain with
      | Ok (Protocol.Drained _) -> ()
      | Ok _ | Error _ -> ());
      Client.close c
  | Error _ -> ());
  ignore (wait_exit pid)

let submit_analyze ?(jobs = 1) ~client ~name ~netlist sock =
  match Client.connect sock with
  | Error e -> Error e
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Client.submit_and_wait c
            Protocol.
              {
                client;
                kind = Analyze;
                name;
                netlist;
                limits = { Protocol.no_limits with jobs = Some jobs };
                static_filter = false;
                sat_mode = None;
                q_max = None;
                p1 = None;
              })

let submit_resynth ~client ~name ~netlist sock =
  match Client.connect sock with
  | Error e -> Error e
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Client.submit_and_wait c
            Protocol.
              {
                client;
                kind = Resynth;
                name;
                netlist;
                limits = Protocol.no_limits;
                static_filter = false;
                sat_mode = None;
                q_max = None;
                p1 = None;
              })

let () =
  if Array.length Sys.argv <> 3 then begin
    prerr_endline "usage: serve_smoke CLI_EXE NETLIST_FILE";
    exit 2
  end;
  let exe = Sys.argv.(1) and netlist_file = Sys.argv.(2) in
  let netlist_text = read_file netlist_file in
  let sock1 = sock_path "main" in

  (* ---- 1. determinism against the one-shot CLI --------------------- *)
  let pid1 = start_daemon exe ~sock:sock1 ~state:"smoke_state1" ~log:"smoke_daemon1.log" in
  let rc =
    wait_exit
      (spawn exe [ "analyze"; netlist_file; "--jobs"; "1"; "--report"; "oneshot.rep" ]
         ~log:"smoke_oneshot.log")
  in
  if rc <> 0 then fail "one-shot analyze exited %d" rc;
  let reference = read_file "oneshot.rep" in
  List.iter
    (fun jobs ->
      match
        submit_analyze ~jobs ~client:"alpha" ~name:netlist_file ~netlist:netlist_text sock1
      with
      | Error e -> fail "submit (jobs=%d): %s" jobs e
      | Ok r ->
          if r.Protocol.r_outcome <> "done" then
            fail "analyze (jobs=%d) outcome %s" jobs r.Protocol.r_outcome
          else if not (String.equal r.Protocol.r_report reference) then
            fail "daemon report (jobs=%d) differs from one-shot --report" jobs
          else pass "daemon analyze (jobs=%d) byte-identical to one-shot CLI" jobs)
    [ 1; 4 ];

  (* ---- 2. duplicate daemon refuses with exit 2 --------------------- *)
  let dup =
    spawn exe
      [ "serve"; "--socket"; sock1; "--state-dir"; "smoke_state_dup" ]
      ~log:"smoke_dup.log"
  in
  (match wait_exit dup with
  | 2 -> pass "duplicate daemon on a live socket exits 2"
  | n -> fail "duplicate daemon exited %d, want 2" n);

  (* ---- 3. three tenants share one verdict store -------------------- *)
  let tenants = [ "alpha"; "bravo"; "charlie" ] in
  let outcomes = Hashtbl.create 4 in
  let m = Mutex.create () in
  let threads =
    List.map
      (fun t ->
        Thread.create
          (fun () ->
            let r =
              submit_analyze ~jobs:2 ~client:t ~name:netlist_file ~netlist:netlist_text
                sock1
            in
            Mutex.protect m (fun () -> Hashtbl.replace outcomes t r))
          ())
      tenants
  in
  List.iter Thread.join threads;
  List.iter
    (fun t ->
      match Hashtbl.find_opt outcomes t with
      | Some (Ok r) when r.Protocol.r_outcome = "done" -> ()
      | Some (Ok r) -> fail "tenant %s outcome %s" t r.Protocol.r_outcome
      | Some (Error e) -> fail "tenant %s: %s" t e
      | None -> fail "tenant %s never reported" t)
    tenants;
  (match Client.connect sock1 with
  | Error e -> fail "status connect: %s" e
  | Ok c ->
      (match Client.request c (Protocol.Status None) with
      | Ok (Protocol.Status_report { clients; _ }) ->
          let hits t =
            match List.find_opt (fun cv -> cv.Protocol.cv_client = t) clients with
            | Some cv -> cv.Protocol.cv_cache_hits
            | None -> -1
          in
          (* alpha warmed the store during the determinism runs; bravo and
             charlie never populated it, so any hits they see are
             cross-tenant by construction *)
          if hits "bravo" > 0 && hits "charlie" > 0 then
            pass "cross-tenant verdict sharing (bravo %d hits, charlie %d hits)"
              (hits "bravo") (hits "charlie")
          else fail "expected cross-tenant hits, got bravo %d charlie %d" (hits "bravo")
              (hits "charlie")
      | Ok _ -> fail "unexpected status response"
      | Error e -> fail "status: %s" e);
      Client.close c);

  (* The live Prometheus exposition must attribute engine work per tenant:
     every family below gets a {job=...,tenant=...} series for each tenant
     that did work, alongside the unlabeled base series. *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let fetch_metrics sock =
    match Client.connect sock with
    | Error e ->
        fail "metrics connect: %s" e;
        ""
    | Ok c ->
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            match Client.request c Protocol.Metrics with
            | Ok (Protocol.Metrics_text s) -> s
            | Ok _ ->
                fail "unexpected metrics response";
                ""
            | Error e ->
                fail "metrics: %s" e;
                "")
  in
  let prom = fetch_metrics sock1 in
  let attributed_families =
    [
      "dfm_atpg_sat_queries_total";
      "dfm_sat_conflicts_total";
      "dfm_cache_hits_total";
      "dfm_cache_misses_total";
    ]
  in
  (* a family has tenant attribution when some sample line of that family
     carries the tenant label (labels render canonically sorted, so the
     series reads fam{job="...",tenant="..."}) *)
  let has_attributed prom fam tenant =
    List.exists
      (fun line ->
        String.length line > String.length fam
        && String.sub line 0 (String.length fam) = fam
        && contains line (Printf.sprintf "tenant=\"%s\"" tenant))
      (String.split_on_char '\n' prom)
  in
  List.iter
    (fun tenant ->
      let missing =
        List.filter (fun fam -> not (has_attributed prom fam tenant)) attributed_families
      in
      if missing = [] then pass "per-tenant attribution for %s in live Prometheus" tenant
      else
        fail "tenant %s missing attributed series: %s" tenant (String.concat " " missing))
    [ "alpha"; "bravo" ];
  stop_daemon ~sock:sock1 ~pid:pid1;

  (* ---- 5. EMFILE chaos + daemon-wide certify ----------------------- *)
  (* The failpoint rejects the first accepts as injected EMFILE; the
     daemon must shed/back off rather than exit, then serve the certified
     job whose report must still match the uncertified one-shot. *)
  let sock4 = sock_path "chaos" in
  let pid5 =
    spawn exe
      [
        "serve"; "--socket"; sock4; "--state-dir"; "smoke_state4"; "-j"; "2"; "--certify";
        "--failpoint"; "serve.accept_emfile=raise:times=3";
      ]
      ~log:"smoke_daemon4.log"
  in
  wait_ready sock4;
  (match
     submit_analyze ~jobs:1 ~client:"echo" ~name:netlist_file ~netlist:netlist_text sock4
   with
  | Ok r when r.Protocol.r_outcome = "done" && String.equal r.Protocol.r_report reference ->
      pass "daemon survived injected EMFILE; certified report byte-identical"
  | Ok r -> fail "chaos/certify analyze outcome %s" r.Protocol.r_outcome
  | Error e -> fail "chaos/certify analyze: %s" e);
  (* certified checks are attributable too *)
  let prom4 = fetch_metrics sock4 in
  if has_attributed prom4 "dfm_cert_checked_total" "echo" then
    pass "certified checks attributed to tenant echo"
  else fail "dfm_cert_checked_total has no tenant=\"echo\" series";
  stop_daemon ~sock:sock4 ~pid:pid5;

  (* ---- 4. SIGKILL mid-resynthesis, restart, identical report ------- *)
  (* The netlist is generated in-process and submitted as text, so both
     runs take the identical daemon path; sparc_spu at scale 0.4 runs a
     multi-second campaign, leaving a wide window to land the kill. *)
  let spu =
    Dfm_netlist.Netlist_io.to_string (Dfm_circuits.Circuits.build ~scale:0.4 "sparc_spu")
  in
  let sock2 = sock_path "ref" in
  let pid2 = start_daemon exe ~sock:sock2 ~state:"smoke_state2" ~log:"smoke_daemon2.log" in
  let reference =
    match submit_resynth ~client:"delta" ~name:"sparc_spu" ~netlist:spu sock2 with
    | Ok r when r.Protocol.r_outcome = "done" ->
        pass "uninterrupted resynth campaign (%d accepted)" r.Protocol.r_accepted;
        Some r.Protocol.r_report
    | Ok r ->
        fail "uninterrupted resynth outcome %s" r.Protocol.r_outcome;
        None
    | Error e ->
        fail "uninterrupted resynth: %s" e;
        None
  in
  stop_daemon ~sock:sock2 ~pid:pid2;
  (match reference with
  | None -> ()
  | Some reference ->
      let sock3 = sock_path "kill" in
      let pid3 =
        start_daemon exe ~sock:sock3 ~state:"smoke_state3" ~log:"smoke_daemon3.log"
      in
      let victim = ref (Error "never ran") in
      let th =
        Thread.create
          (fun () ->
            victim := submit_resynth ~client:"delta" ~name:"sparc_spu" ~netlist:spu sock3)
          ()
      in
      Unix.sleepf 1.0;
      Unix.kill pid3 Sys.sigkill;
      ignore (wait_exit pid3);
      Thread.join th;
      (match !victim with
      | Error _ -> pass "client connection died with the daemon"
      | Ok r ->
          (* the campaign outran the kill; the ledger then replays the
             finished result, which still must match *)
          pass "kill landed after completion (outcome %s) — replay must still match"
            r.Protocol.r_outcome);
      if not (Sys.file_exists "smoke_state3/jobs/J1/campaign.ckpt") then
        fail "no per-job checkpoint under the daemon state dir";
      let pid4 =
        start_daemon exe ~sock:sock3 ~state:"smoke_state3" ~log:"smoke_daemon3.log"
      in
      (match Client.connect sock3 with
      | Error e -> fail "reconnect after restart: %s" e
      | Ok c ->
          (match Client.await c "J1" with
          | Ok r when String.equal r.Protocol.r_report reference ->
              pass "restarted daemon resumed J1 with a byte-identical report"
          | Ok r ->
              fail "resumed report differs from uninterrupted run (outcome %s)"
                r.Protocol.r_outcome
          | Error e -> fail "await after restart: %s" e);
          Client.close c);
      stop_daemon ~sock:sock3 ~pid:pid4);

  if !failures > 0 then begin
    Printf.printf "serve_smoke: %d failure(s)\n%!" !failures;
    exit 1
  end;
  print_endline "serve_smoke: all checks passed"

(* Certification tests: pristine certificates always pass, corrupted ones
   never pass (checker soundness / no false accepts), proof buffering
   survives the alloc.cap resource failpoints, and certified engine runs
   stay bit-identical to uncertified ones. *)

module Solver = Dfm_sat.Solver
module Cert = Dfm_sat.Cert
module Failpoint = Dfm_util.Failpoint

let arb_cnf =
  QCheck.make
    ~print:(fun (n, cs) ->
      Printf.sprintf "n=%d %s" n
        (String.concat " ; "
           (List.map (fun c -> String.concat " " (List.map string_of_int c)) cs)))
    QCheck.Gen.(
      int_range 1 10 >>= fun nvars ->
      list_size (int_range 1 40)
        (list_size (int_range 1 3)
           (map (fun (v, s) -> if s then v + 1 else -(v + 1)) (pair (int_bound (nvars - 1)) bool)))
      >>= fun clauses -> return (nvars, clauses))

(* CNF plus a small assumption set, the shape every ATPG query has. *)
let arb_cnf_assumptions =
  QCheck.make
    ~print:(fun ((n, cs), assumptions) ->
      Printf.sprintf "n=%d %s | assume %s" n
        (String.concat " ; "
           (List.map (fun c -> String.concat " " (List.map string_of_int c)) cs))
        (String.concat " " (List.map string_of_int assumptions)))
    QCheck.Gen.(
      int_range 2 10 >>= fun nvars ->
      list_size (int_range 1 40)
        (list_size (int_range 1 3)
           (map (fun (v, s) -> if s then v + 1 else -(v + 1)) (pair (int_bound (nvars - 1)) bool)))
      >>= fun clauses ->
      list_size (int_range 0 3)
        (map (fun (v, s) -> if s then v + 1 else -(v + 1)) (pair (int_bound (nvars - 1)) bool))
      >>= fun assumptions -> return ((nvars, clauses), assumptions))

(* Ground-truth implication oracle: DB ⊨ clause iff DB ∧ ¬clause is UNSAT.
   Uses a fresh solver — independent from the checker under test. *)
let implied_by clauses lits =
  let s = Solver.create () in
  List.iter (Solver.add_clause s) clauses;
  List.iter (fun l -> Solver.add_clause s [ -l ]) lits;
  Solver.solve s = Solver.Unsat

(* ---- pristine certificates ------------------------------------------- *)

let prop_pristine =
  QCheck.Test.make ~name:"pristine certificates always check" ~count:300 arb_cnf_assumptions
    (fun ((_, clauses), assumptions) ->
      let s = Solver.create () in
      let cert = Cert.create () in
      Cert.attach cert s;
      List.iter (Solver.add_clause s) clauses;
      (match Solver.solve ~assumptions s with
      | Solver.Sat -> Cert.check_model cert ~assumptions ~value:(Solver.value s)
      | Solver.Unsat -> Cert.check_unsat cert ~assumptions
      | Solver.Unknown -> ());
      true)

let prop_pristine_incremental =
  (* Several solves against one growing CNF, one certification session:
     the per-query checks must keep passing as clauses accumulate. *)
  QCheck.Test.make ~name:"pristine certificates across incremental solves" ~count:150
    arb_cnf (fun (_, clauses) ->
      let s = Solver.create () in
      let cert = Cert.create () in
      Cert.attach cert s;
      let rec chunks = function
        | [] -> []
        | l ->
            let n = min 8 (List.length l) in
            List.filteri (fun i _ -> i < n) l :: chunks (List.filteri (fun i _ -> i >= n) l)
      in
      List.iter
        (fun chunk ->
          List.iter (Solver.add_clause s) chunk;
          match Solver.solve s with
          | Solver.Sat -> Cert.check_model cert ~assumptions:[] ~value:(Solver.value s)
          | Solver.Unsat -> Cert.check_unsat cert ~assumptions:[]
          | Solver.Unknown -> ())
        (chunks clauses);
      true)

(* ---- no false accepts ------------------------------------------------- *)

let prop_no_unsat_forgery =
  (* A satisfiable instance must never yield a passing UNSAT certificate,
     no matter what the trace contains: the checker's final conflict check
     cannot be forged because admitted steps are true consequences. *)
  QCheck.Test.make ~name:"UNSAT cannot be certified for a SAT instance" ~count:300
    arb_cnf_assumptions (fun ((_, clauses), assumptions) ->
      let s = Solver.create () in
      let cert = Cert.create () in
      Cert.attach cert s;
      List.iter (Solver.add_clause s) clauses;
      match Solver.solve ~assumptions s with
      | Solver.Sat ->
          (match Cert.check_unsat cert ~assumptions with
          | () -> false (* forged certificate accepted: checker is broken *)
          | exception Cert.Check_failed _ -> true)
      | Solver.Unsat | Solver.Unknown -> QCheck.assume_fail ())

let mutate_lits rand lits =
  match lits with
  | [] -> [ 1 ]
  | _ ->
      let arr = Array.of_list lits in
      let i = Random.State.int rand (Array.length arr) in
      (match Random.State.int rand 3 with
      | 0 -> arr.(i) <- -arr.(i)
      | 1 -> arr.(i) <- ((Random.State.int rand 10 + 1) * if Random.State.bool rand then 1 else -1)
      | _ -> arr.(i) <- arr.(if i = 0 then Array.length arr - 1 else 0));
      Array.to_list arr

let prop_mutated_learnt_sound =
  (* Corrupt learnt proof steps at random; the checker may only admit a
     mutant that is a genuine consequence (oracle: an independent solver).
     Admitting a non-consequence would be a false accept. *)
  QCheck.Test.make ~name:"mutated learnt steps: no false accepts" ~count:200 arb_cnf
    (fun (_, clauses) ->
      let rand = Random.State.make [| Hashtbl.hash clauses |] in
      let s = Solver.create () in
      let steps = ref [] in
      Solver.set_trace s (Some (fun ev -> steps := ev :: !steps));
      List.iter (Solver.add_clause s) clauses;
      ignore (Solver.solve s : Solver.result);
      let ok = ref true in
      let check = Cert.Check.create () in
      List.iter
        (function
          | Solver.Trace_original lits -> Cert.Check.add_original check lits
          | Solver.Trace_learnt lits ->
              let mutant = if Random.State.int rand 2 = 0 then mutate_lits rand lits else lits in
              let accepted = Cert.Check.add_learnt check mutant in
              if accepted && not (implied_by clauses mutant) then ok := false)
        (List.rev !steps);
      !ok)

let prop_mutated_model_sound =
  (* Flip model bits; the checker must accept exactly the assignments that
     really satisfy the CNF (direct evaluation as the oracle). *)
  QCheck.Test.make ~name:"mutated models: accept iff genuinely satisfying" ~count:300
    arb_cnf (fun (nvars, clauses) ->
      let s = Solver.create () in
      let cert = Cert.create () in
      Cert.attach cert s;
      List.iter (Solver.add_clause s) clauses;
      match Solver.solve s with
      | Solver.Sat ->
          let rand = Random.State.make [| Hashtbl.hash clauses |] in
          let flip = 1 + Random.State.int rand (max 1 nvars) in
          let value v = if v = flip then not (Solver.value s v) else Solver.value s v in
          let truly_sat =
            List.for_all
              (fun c -> List.exists (fun l -> if l > 0 then value l else not (value (-l))) c)
              clauses
          in
          let accepted =
            match Cert.check_model cert ~assumptions:[] ~value with
            | () -> true
            | exception Cert.Check_failed _ -> false
          in
          accepted = truly_sat
      | Solver.Unsat | Solver.Unknown -> QCheck.assume_fail ())

let test_checker_rejects_non_consequence () =
  let check = Cert.Check.create () in
  Cert.Check.add_original check [ 1; 2 ];
  Cert.Check.add_original check [ -1; 2 ];
  Alcotest.(check bool) "2 is RUP" true (Cert.Check.add_learnt check [ 2 ]);
  Alcotest.(check bool) "1 is not a consequence" false (Cert.Check.add_learnt check [ 1 ]);
  Alcotest.(check bool) "3 is unconstrained" false (Cert.Check.add_learnt check [ 3 ]);
  Alcotest.(check bool) "not unsat" false (Cert.Check.proved_unsat check);
  Alcotest.(check bool) "unsat under -2" true (Cert.Check.check_unsat check ~assumptions:[ -2 ])

let test_empty_clause_certified () =
  let s = Solver.create () in
  let cert = Cert.create () in
  Cert.attach cert s;
  Solver.add_clause s [ 1 ];
  Solver.add_clause s [ -1 ];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat);
  Cert.check_unsat cert ~assumptions:[];
  Alcotest.(check bool) "checker proved unsat" true
    (Cert.Check.proved_unsat (Cert.checker cert))

(* ---- resource exhaustion: alloc.cap ----------------------------------- *)

let pigeonhole_unsat_with_cert () =
  (* Pigeonhole 4-into-3: a small but genuinely worked-for UNSAT proof, so
     the trace has enough steps to exercise buffering. *)
  let s = Solver.create () in
  let cert = Cert.create ~mem_cap_bytes:4096 () in
  Cert.attach cert s;
  let var p h = (p * 3) + h + 1 in
  for p = 0 to 3 do
    Solver.add_clause s [ var p 0; var p 1; var p 2 ]
  done;
  for h = 0 to 2 do
    for p = 0 to 3 do
      for q = p + 1 to 3 do
        Solver.add_clause s [ -(var p h); -(var q h) ]
      done
    done
  done;
  Alcotest.(check bool) "pigeonhole unsat" true (Solver.solve s = Solver.Unsat);
  Cert.check_unsat cert ~assumptions:[]

let test_spill_path () =
  (* alloc.cap=raise forces the cap at every append: the whole proof goes
     through the disk spill and must still check. *)
  Failpoint.clear ();
  Failpoint.enable "alloc.cap" Failpoint.Raise;
  Fun.protect ~finally:Failpoint.clear pigeonhole_unsat_with_cert

let test_spill_failure_falls_back () =
  (* alloc.cap=io forces the cap AND fails the spill write: certification
     must degrade to in-memory buffering — one warning, same verdict. *)
  Failpoint.clear ();
  Failpoint.enable "alloc.cap" Failpoint.Io_error;
  Fun.protect ~finally:Failpoint.clear pigeonhole_unsat_with_cert;
  Alcotest.(check bool) "fallback counted" true
    (match Dfm_obs.Metrics.find_value "dfm_cert_spill_fallbacks_total" with
    | Some (Dfm_obs.Metrics.Counter n) -> n > 0
    | _ -> false)

let test_small_cap_spills_naturally () =
  (* A 4 KiB cap with no failpoint: the pigeonhole proof exceeds it and
     spills on its own. *)
  pigeonhole_unsat_with_cert ()

(* ---- certified classification: bit-identity, jobs invariance ---------- *)

module N = Dfm_netlist.Netlist
module B = N.Builder
module F = Dfm_faults.Fault
module Atpg = Dfm_atpg.Atpg
module Store = Dfm_incr.Store
module H = Dfm_incr.Hash64

let origin = { F.category = Dfm_cellmodel.Defect.Via; guideline_index = 0 }

(* The classic redundancy: n2 = NAND(a, not a) is constant 1, so the fault
   mix below yields both Detected and Undetectable verdicts — the certified
   run exercises witness resimulation AND UNSAT proof replay. *)
let redundant_circuit () =
  let b = B.create ~name:"redund" Dfm_cellmodel.Osu018.library in
  let a = B.add_pi b "a" in
  let c = B.add_pi b "c" in
  let n1 = B.add_gate b ~cell:"INVX1" [| a |] in
  let n2 = B.add_gate b ~cell:"NAND2X1" [| a; n1 |] in
  let n3 = B.add_gate b ~cell:"NAND2X1" [| n2; c |] in
  B.mark_po b "y" n3;
  (B.finish b, n2)

let mixed_faults nl n2 =
  let faults = ref [] in
  let id = ref 0 in
  let push kind =
    faults := { F.fault_id = !id; kind; origin } :: !faults;
    incr id
  in
  Array.iter
    (fun (nn : N.net) ->
      push (F.Stuck (F.On_net nn.N.net_id, F.Sa0));
      push (F.Stuck (F.On_net nn.N.net_id, F.Sa1)))
    nl.N.nets;
  push (F.Transition (F.On_net n2, F.Slow_to_rise));
  push (F.Transition (F.On_net n2, F.Slow_to_fall));
  Array.of_list (List.rev !faults)

let test_certified_classification_identity () =
  let nl, n2 = redundant_circuit () in
  let faults = mixed_faults nl n2 in
  let plain = Atpg.classify ~jobs:1 nl faults in
  let t0 = Cert.totals () in
  let c1 = Atpg.classify ~jobs:1 ~certify:true nl faults in
  let t1 = Cert.totals () in
  let c4 = Atpg.classify ~jobs:4 ~certify:true nl faults in
  let t2 = Cert.totals () in
  Alcotest.(check bool) "statuses identical (jobs 1)" true (c1.Atpg.status = plain.Atpg.status);
  Alcotest.(check bool) "counts identical (jobs 1)" true (c1.Atpg.counts = plain.Atpg.counts);
  Alcotest.(check bool) "statuses identical (jobs 4)" true (c4.Atpg.status = plain.Atpg.status);
  Alcotest.(check bool) "counts identical (jobs 4)" true (c4.Atpg.counts = plain.Atpg.counts);
  let d1 = t1.Cert.checked - t0.Cert.checked in
  let d4 = t2.Cert.checked - t1.Cert.checked in
  Alcotest.(check bool) "certified run performed checks" true (d1 > 0);
  Alcotest.(check int) "verdict-level check count is jobs-invariant" d1 d4;
  Alcotest.(check int) "no check failed" t0.Cert.failed t2.Cert.failed

(* ---- store disk-full degradation -------------------------------------- *)

let test_store_enospc_degrades () =
  Failpoint.clear ();
  let path = Filename.temp_file "dfm_cert_store" ".bin" in
  let s = Store.create ~path ~log:(fun _ -> ()) () in
  Failpoint.enable "store.enospc" Failpoint.Io_error;
  Fun.protect ~finally:Failpoint.clear (fun () ->
      (* The injected ENOSPC must degrade the disk tier, never raise. *)
      Store.add s 1L Store.Detected;
      Store.add ~certified:true s 2L Store.Undetectable);
  let st = Store.stats s in
  Alcotest.(check bool) "store degraded to memory-only" true st.Store.degraded;
  Alcotest.(check bool) "memory tier still serves lookups" true
    (Store.find s 1L = Some Store.Detected && Store.find_certified s 2L = Some Store.Undetectable);
  Alcotest.(check bool) "degraded gauge raised" true
    (match Dfm_obs.Metrics.find_value "dfm_store_degraded" with
    | Some (Dfm_obs.Metrics.Gauge 1) -> true
    | _ -> false);
  (* Degraded stores keep accepting entries. *)
  Store.add s 3L Store.Undetectable;
  Alcotest.(check bool) "post-degradation adds visible" true
    (Store.find s 3L = Some Store.Undetectable);
  Store.close s;
  Sys.remove path

(* ---- cache certificate marks ------------------------------------------ *)

let test_store_certified_visibility () =
  let path = Filename.temp_file "dfm_cert_marks" ".bin" in
  Sys.remove path;
  let s = Store.create ~path ~log:(fun _ -> ()) () in
  Store.add ~certified:true s 10L Store.Undetectable;
  Store.add s 11L Store.Detected;
  Alcotest.(check bool) "certified entry visible to certified lookup" true
    (Store.find_certified s 10L = Some Store.Undetectable);
  Alcotest.(check bool) "uncertified entry is a certified miss" true
    (Store.find_certified s 11L = None);
  Alcotest.(check bool) "…but a plain hit" true (Store.find s 11L = Some Store.Detected);
  Store.close s;
  (* Marks persist: a reload keeps the certified/uncertified distinction. *)
  let s2 = Store.create ~path ~log:(fun _ -> ()) () in
  Alcotest.(check bool) "certified survives reload" true
    (Store.find_certified s2 10L = Some Store.Undetectable);
  Alcotest.(check bool) "uncertified still a certified miss after reload" true
    (Store.find_certified s2 11L = None && Store.find s2 11L = Some Store.Detected);
  Alcotest.(check int) "nothing dropped" 0 (Store.stats s2).Store.disk_dropped;
  Store.close s2;
  Sys.remove path

let magic = "DFMVC01\n"

(* A hand-crafted v2 record whose framing checksum is valid but whose
   certificate mark is wrong: exercises the mark-verification branch
   specifically (a flipped byte would fail the checksum first). *)
let forged_record sg vcode =
  let plen = 17 in
  let b = Bytes.create (2 + plen + 8) in
  Bytes.set_uint16_le b 0 plen;
  Bytes.set_int64_le b 2 sg;
  Bytes.set_uint8 b 10 vcode;
  let mark = H.finalize (H.mix (H.mix (H.of_string "DFMCERTv2") sg) (H.of_int vcode)) in
  Bytes.set_int64_le b 11 (Int64.logxor mark 1L);
  let payload = Bytes.sub_string b 2 plen in
  Bytes.set_int64_le b (2 + plen) (H.mix (H.of_string payload) (H.of_int plen));
  b

let test_store_corrupt_mark_rejected () =
  let path = Filename.temp_file "dfm_cert_forged" ".bin" in
  let oc = open_out_bin path in
  output_string oc magic;
  output_bytes oc (forged_record 42L 1);
  close_out oc;
  let s = Store.create ~path ~log:(fun _ -> ()) () in
  Alcotest.(check int) "forged record dropped" 1 (Store.stats s).Store.disk_dropped;
  Alcotest.(check bool) "forged verdict not trusted at any level" true
    (Store.find_certified s 42L = None && Store.find s 42L = None);
  Store.close s;
  Sys.remove path

let test_store_flipped_byte_rejected () =
  let path = Filename.temp_file "dfm_cert_flip" ".bin" in
  Sys.remove path;
  let s = Store.create ~path ~log:(fun _ -> ()) () in
  Store.add ~certified:true s 77L Store.Undetectable;
  Store.close s;
  (* Flip one byte inside the stored certificate mark. *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd (String.length magic + 11) Unix.SEEK_SET : int);
  let byte = Bytes.create 1 in
  ignore (Unix.read fd byte 0 1 : int);
  Bytes.set_uint8 byte 0 (Bytes.get_uint8 byte 0 lxor 0xff);
  ignore (Unix.lseek fd (String.length magic + 11) Unix.SEEK_SET : int);
  ignore (Unix.write fd byte 0 1 : int);
  Unix.close fd;
  let s2 = Store.create ~path ~log:(fun _ -> ()) () in
  Alcotest.(check bool) "corrupted record dropped on load" true
    ((Store.stats s2).Store.disk_dropped >= 1);
  Alcotest.(check bool) "corrupted verdict not served" true
    (Store.find_certified s2 77L = None && Store.find s2 77L = None);
  Store.close s2;
  Sys.remove path

let suite =
  [
    QCheck_alcotest.to_alcotest prop_pristine;
    QCheck_alcotest.to_alcotest prop_pristine_incremental;
    QCheck_alcotest.to_alcotest prop_no_unsat_forgery;
    QCheck_alcotest.to_alcotest prop_mutated_learnt_sound;
    QCheck_alcotest.to_alcotest prop_mutated_model_sound;
    Alcotest.test_case "checker rejects non-consequences" `Quick
      test_checker_rejects_non_consequence;
    Alcotest.test_case "empty clause certified" `Quick test_empty_clause_certified;
    Alcotest.test_case "alloc.cap raise: proof spills to disk" `Quick test_spill_path;
    Alcotest.test_case "alloc.cap io: spill failure falls back to memory" `Quick
      test_spill_failure_falls_back;
    Alcotest.test_case "small cap spills naturally" `Quick test_small_cap_spills_naturally;
    Alcotest.test_case "certified classification: bit-identical, jobs-invariant" `Quick
      test_certified_classification_identity;
    Alcotest.test_case "store.enospc: disk tier degrades to memory-only" `Quick
      test_store_enospc_degrades;
    Alcotest.test_case "certified cache entries: visibility and persistence" `Quick
      test_store_certified_visibility;
    Alcotest.test_case "forged certificate mark rejected on load" `Quick
      test_store_corrupt_mark_rejected;
    Alcotest.test_case "flipped byte in certified record rejected" `Quick
      test_store_flipped_byte_rejected;
  ]

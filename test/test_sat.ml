(* Tests for dfm_sat: solver vs brute force, Tseitin encoders, incremental
   use, assumptions. *)

module Solver = Dfm_sat.Solver
module Tseitin = Dfm_sat.Tseitin
module Tt = Dfm_logic.Truthtable

let brute_sat nvars clauses =
  let rec try_assignment m =
    if m >= 1 lsl nvars then false
    else
      let satisfied =
        List.for_all
          (fun c ->
            List.exists
              (fun l ->
                let v = (m lsr (abs l - 1)) land 1 = 1 in
                if l > 0 then v else not v)
              c)
          clauses
      in
      satisfied || try_assignment (m + 1)
  in
  try_assignment 0

let arb_cnf =
  QCheck.make
    ~print:(fun (n, cs) ->
      Printf.sprintf "n=%d %s" n
        (String.concat " ; " (List.map (fun c -> String.concat " " (List.map string_of_int c)) cs)))
    QCheck.Gen.(
      int_range 1 10 >>= fun nvars ->
      list_size (int_range 1 30)
        (list_size (int_range 1 3)
           (map (fun (v, s) -> if s then v + 1 else -(v + 1)) (pair (int_bound (nvars - 1)) bool)))
      >>= fun clauses -> return (nvars, clauses))

let prop_solver_vs_brute =
  QCheck.Test.make ~name:"CDCL agrees with brute force" ~count:300 arb_cnf
    (fun (nvars, clauses) ->
      let s = Solver.create () in
      List.iter (Solver.add_clause s) clauses;
      match Solver.solve s with
      | Solver.Sat ->
          (* The model must satisfy every clause. *)
          List.for_all (fun c -> List.exists (Solver.lit_value s) c) clauses
      | Solver.Unsat -> not (brute_sat nvars clauses)
      | Solver.Unknown -> false)

let prop_assumptions =
  QCheck.Test.make ~name:"solving under assumptions = adding units" ~count:200 arb_cnf
    (fun (nvars, clauses) ->
      QCheck.assume (nvars >= 2);
      let assumptions = [ 1; -2 ] in
      let s1 = Solver.create () in
      List.iter (Solver.add_clause s1) clauses;
      let r1 = Solver.solve ~assumptions s1 in
      let s2 = Solver.create () in
      List.iter (Solver.add_clause s2) clauses;
      List.iter (fun l -> Solver.add_clause s2 [ l ]) assumptions;
      let r2 = Solver.solve s2 in
      (r1 = Solver.Sat) = (r2 = Solver.Sat))

let test_empty_clause_unsat () =
  let s = Solver.create () in
  Solver.add_clause s [];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat)

let test_trivial_sat () =
  let s = Solver.create () in
  Alcotest.(check bool) "no clauses" true (Solver.solve s = Solver.Sat);
  Solver.add_clause s [ 1 ];
  Alcotest.(check bool) "unit" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "value" true (Solver.value s 1)

let test_incremental_after_solve () =
  (* Adding clauses after a SAT answer must remain sound. *)
  let s = Solver.create () in
  Solver.add_clause s [ 1; 2 ];
  Alcotest.(check bool) "sat 1" true (Solver.solve s = Solver.Sat);
  Solver.add_clause s [ -1 ];
  Solver.add_clause s [ -2 ];
  Alcotest.(check bool) "now unsat" true (Solver.solve s = Solver.Unsat)

let test_pigeonhole_unsat () =
  (* 4 pigeons in 3 holes: classic small UNSAT exercising clause learning.
     Variable p(i,h) = 3*i + h + 1. *)
  let s = Solver.create () in
  let v i h = (3 * i) + h + 1 in
  for i = 0 to 3 do
    Solver.add_clause s [ v i 0; v i 1; v i 2 ]
  done;
  for h = 0 to 2 do
    for i = 0 to 3 do
      for j = i + 1 to 3 do
        Solver.add_clause s [ -(v i h); -(v j h) ]
      done
    done
  done;
  Alcotest.(check bool) "php(4,3) unsat" true (Solver.solve s = Solver.Unsat);
  Alcotest.(check bool) "did some search" true (Solver.num_conflicts s > 0)

let test_max_conflicts_budget () =
  (* A harder pigeonhole with a tiny budget must return Unknown (or finish
     legitimately if it is fast; both are acceptable, never a wrong answer). *)
  let s = Solver.create () in
  let n = 7 in
  let v i h = (n * i) + h + 1 in
  for i = 0 to n do
    Solver.add_clause s (List.init n (fun h -> v i h))
  done;
  for h = 0 to n - 1 do
    for i = 0 to n do
      for j = i + 1 to n do
        Solver.add_clause s [ -(v i h); -(v j h) ]
      done
    done
  done;
  match Solver.solve ~max_conflicts:5 s with
  | Solver.Unknown | Solver.Unsat -> ()
  | Solver.Sat -> Alcotest.fail "php(8,7) cannot be SAT"

(* Tseitin encoders: for every gate type, the encoded relation matches the
   semantics on all input combinations. *)
let check_gate_encoding name encode semantics arity =
  for m = 0 to (1 lsl arity) - 1 do
    for out_val = 0 to 1 do
      let s = Solver.create () in
      let ins = List.init arity (fun i -> i + 1) in
      let out = arity + 1 in
      Solver.ensure_vars s (arity + 1);
      encode s ~out ins;
      List.iteri
        (fun i v -> Solver.add_clause s [ (if (m lsr i) land 1 = 1 then v else -v) ])
        ins;
      Solver.add_clause s [ (if out_val = 1 then out else -out) ];
      let expect = semantics (List.init arity (fun i -> (m lsr i) land 1 = 1)) = (out_val = 1) in
      let got = Solver.solve s = Solver.Sat in
      if got <> expect then
        Alcotest.failf "%s: inputs %d out %d: expected %b" name m out_val expect
    done
  done

let test_tseitin_and () =
  check_gate_encoding "and" (fun s ~out ins -> Tseitin.and_ s ~out ins)
    (List.for_all (fun b -> b))
    3

let test_tseitin_or () =
  check_gate_encoding "or" (fun s ~out ins -> Tseitin.or_ s ~out ins)
    (List.exists (fun b -> b))
    3

let test_tseitin_xor () =
  check_gate_encoding "xor"
    (fun s ~out ins ->
      match ins with [ a; b ] -> Tseitin.xor_ s ~out a b | _ -> assert false)
    (fun vs -> List.fold_left ( <> ) false vs)
    2

let test_tseitin_mux () =
  check_gate_encoding "mux"
    (fun s ~out ins ->
      match ins with [ a; b; sel ] -> Tseitin.mux s ~out ~sel a b | _ -> assert false)
    (function [ a; b; sel ] -> (if sel then b else a) | _ -> assert false)
    3

let prop_tseitin_truthtable =
  let arb_tt =
    QCheck.make
      ~print:Tt.to_string
      QCheck.Gen.(
        int_range 0 4 >>= fun arity ->
        map (fun bits -> Tt.of_bits ~arity (Int64.of_int bits)) (int_bound 65535))
  in
  QCheck.Test.make ~name:"of_truthtable encodes exactly the function" ~count:100 arb_tt
    (fun tt ->
      let n = Tt.arity tt in
      let ok = ref true in
      for m = 0 to (1 lsl n) - 1 do
        let s = Solver.create () in
        let ins = Array.init n (fun i -> i + 1) in
        let out = n + 1 in
        Solver.ensure_vars s (n + 1);
        Tseitin.of_truthtable s ~out ins tt;
        Array.iteri
          (fun i v -> Solver.add_clause s [ (if (m lsr i) land 1 = 1 then v else -v) ])
          ins;
        (match Solver.solve s with
        | Solver.Sat -> if Solver.value s out <> Tt.eval_index tt m then ok := false
        | Solver.Unsat | Solver.Unknown -> ok := false)
      done;
      !ok)

let test_solver_deterministic () =
  let build () =
    let s = Solver.create () in
    for v = 1 to 30 do
      Solver.add_clause s [ v; -(((v + 3) mod 30) + 1) ]
    done;
    Solver.add_clause s [ 1; 2; 3 ];
    ignore (Solver.solve s);
    Array.init 30 (fun i -> Solver.value s (i + 1))
  in
  Alcotest.(check (array bool)) "same model both runs" (build ()) (build ())

let test_accessors () =
  let s = Solver.create () in
  Alcotest.(check int) "no vars" 0 (Solver.num_vars s);
  ignore (Solver.new_var s);
  Alcotest.(check int) "one var" 1 (Solver.num_vars s);
  Solver.add_clause s [ 1; 2 ];
  Alcotest.(check int) "clauses" 1 (Solver.num_clauses s);
  Alcotest.(check int) "vars grown by clause" 2 (Solver.num_vars s)

let test_dimacs_roundtrip () =
  let clauses = [ [ 1; -2 ]; [ 2; 3 ]; [ -1; -3 ] ] in
  let text = Dfm_sat.Dimacs.to_string ~nvars:3 clauses in
  let nvars, parsed = Dfm_sat.Dimacs.parse text in
  Alcotest.(check int) "vars" 3 nvars;
  Alcotest.(check (list (list int))) "clauses" clauses parsed;
  let s = Solver.create () in
  Dfm_sat.Dimacs.load s text;
  Alcotest.(check bool) "solvable" true (Solver.solve s = Solver.Sat);
  let sol = Dfm_sat.Dimacs.solution_to_string s Solver.Sat in
  Alcotest.(check bool) "solution block" true
    (String.length sol > 2 && String.sub sol 0 2 = "s ")

let test_dimacs_errors () =
  let check_fails text =
    try
      ignore (Dfm_sat.Dimacs.parse text);
      Alcotest.fail "expected Parse_error"
    with Dfm_sat.Dimacs.Parse_error _ -> ()
  in
  check_fails "1 2 0\n";                 (* clause before header *)
  check_fails "p cnf 2 1\n5 0\n";       (* literal out of range *)
  check_fails "p cnf 2 9\n1 0\n";       (* clause count mismatch *)
  check_fails "p cnf x y\n"              (* bad header *)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_solver_vs_brute;
    QCheck_alcotest.to_alcotest prop_assumptions;
    Alcotest.test_case "empty clause" `Quick test_empty_clause_unsat;
    Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
    Alcotest.test_case "incremental" `Quick test_incremental_after_solve;
    Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole_unsat;
    Alcotest.test_case "conflict budget" `Quick test_max_conflicts_budget;
    Alcotest.test_case "tseitin and" `Quick test_tseitin_and;
    Alcotest.test_case "tseitin or" `Quick test_tseitin_or;
    Alcotest.test_case "tseitin xor" `Quick test_tseitin_xor;
    Alcotest.test_case "tseitin mux" `Quick test_tseitin_mux;
    QCheck_alcotest.to_alcotest prop_tseitin_truthtable;
    Alcotest.test_case "solver deterministic" `Quick test_solver_deterministic;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "dimacs roundtrip" `Quick test_dimacs_roundtrip;
    Alcotest.test_case "dimacs errors" `Quick test_dimacs_errors;
  ]

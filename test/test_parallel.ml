(* Tests for Dfm_util.Parallel and the determinism contract of the sharded
   fault-classification engine: any job count must produce bit-identical
   results to the sequential run. *)

module Parallel = Dfm_util.Parallel
module N = Dfm_netlist.Netlist
module B = N.Builder
module Cell = Dfm_netlist.Cell
module F = Dfm_faults.Fault
module Atpg = Dfm_atpg.Atpg
module Rng = Dfm_util.Rng
module Design = Dfm_core.Design

let lib = Dfm_cellmodel.Osu018.library
let origin = { F.category = Dfm_cellmodel.Defect.Via; guideline_index = 0 }

(* ------------------------------------------------------------------ *)
(* Worker pool                                                          *)
(* ------------------------------------------------------------------ *)

let test_map_matches_sequential () =
  let xs = Array.init 1000 (fun i -> i) in
  let f x = (x * x) + 7 in
  let expected = Array.map f xs in
  List.iter
    (fun jobs ->
      let pool = Parallel.create ~jobs in
      let got = Parallel.map pool f xs in
      Parallel.shutdown pool;
      Alcotest.(check bool) (Printf.sprintf "map at %d jobs" jobs) true (got = expected))
    [ 1; 2; 4; 7 ]

let test_chunk_bounds () =
  List.iter
    (fun (chunk, n) ->
      let bounds = Parallel.chunk_bounds ~chunk n in
      (* ranges tile [0, n) exactly, in order, each at most [chunk] long *)
      let covered = ref 0 in
      Array.iter
        (fun (lo, hi) ->
          Alcotest.(check int) "contiguous" !covered lo;
          Alcotest.(check bool) "non-empty" true (hi > lo);
          Alcotest.(check bool) "at most chunk" true (hi - lo <= max 1 chunk);
          covered := hi)
        bounds;
      Alcotest.(check int) (Printf.sprintf "covers 0..%d" n) n !covered)
    [ (1, 5); (3, 10); (10, 10); (64, 1000); (1000, 64); (7, 0) ]

let test_run_tasks_disjoint_writes () =
  let pool = Parallel.create ~jobs:4 in
  let out = Array.make 997 0 in
  let bounds = Parallel.chunk_bounds ~chunk:13 (Array.length out) in
  Parallel.run_tasks pool
    (Array.map
       (fun (lo, hi) () ->
         for i = lo to hi - 1 do
           out.(i) <- i * 3
         done)
       bounds);
  Parallel.shutdown pool;
  Alcotest.(check bool) "all slots written" true
    (Array.for_all (fun v -> v >= 0) out && out.(996) = 996 * 3 && out.(0) = 0)

exception Boom

let test_exception_propagates () =
  let pool = Parallel.create ~jobs:3 in
  (try
     Parallel.run_tasks pool
       (Array.init 20 (fun i () -> if i = 11 then raise Boom));
     Alcotest.fail "expected Boom"
   with Boom -> ());
  (* the pool survives a failed batch *)
  let ok = Parallel.map pool (fun x -> x + 1) [| 1; 2; 3 |] in
  Parallel.shutdown pool;
  Alcotest.(check bool) "pool usable after failure" true (ok = [| 2; 3; 4 |])

let test_shutdown_idempotent () =
  let pool = Parallel.create ~jobs:3 in
  let got = Parallel.map pool (fun x -> x * 2) [| 1; 2; 3 |] in
  Alcotest.(check bool) "pool works" true (got = [| 2; 4; 6 |]);
  Parallel.shutdown pool;
  (* the regression: a second shutdown (e.g. the at_exit hook of the global
     pool racing an explicit one) must not join the same domains twice *)
  Parallel.shutdown pool;
  Parallel.shutdown pool;
  (* a stopped pool still runs batches, sequentially in the caller *)
  let after = Parallel.map pool (fun x -> x + 1) [| 1; 2; 3 |] in
  Alcotest.(check bool) "stopped pool degrades to sequential" true (after = [| 2; 3; 4 |])

(* ------------------------------------------------------------------ *)
(* Supervised batches                                                   *)
(* ------------------------------------------------------------------ *)

let test_supervised_clean_batch () =
  let pool = Parallel.create ~jobs:4 in
  let out = Array.make 100 0 in
  let sup =
    Parallel.run_tasks_supervised pool (Array.init 100 (fun i () -> out.(i) <- i + 1))
  in
  Parallel.shutdown pool;
  Alcotest.(check bool) "all ran" true (Array.for_all (fun v -> v > 0) out);
  Alcotest.(check int) "no retries" 0 sup.Parallel.retried;
  Alcotest.(check int) "no fallbacks" 0 sup.Parallel.fell_back

let test_supervised_flaky_task_retried () =
  let pool = Parallel.create ~jobs:4 in
  let attempts = Array.init 8 (fun _ -> Atomic.make 0) in
  let out = Array.make 8 0 in
  (* task 5 fails on its first two attempts, succeeds on the third — within
     the default retry budget, so the batch completes without fallback *)
  let sup =
    Parallel.run_tasks_supervised pool
      (Array.init 8 (fun i () ->
           let n = Atomic.fetch_and_add attempts.(i) 1 in
           if i = 5 && n < 2 then raise Boom;
           out.(i) <- i + 1))
  in
  Parallel.shutdown pool;
  Alcotest.(check bool) "every slot filled" true (Array.for_all (fun v -> v > 0) out);
  Alcotest.(check int) "two in-place retries" 2 sup.Parallel.retried;
  Alcotest.(check int) "no coordinator fallback" 0 sup.Parallel.fell_back

let test_supervised_fallback_then_success () =
  let pool = Parallel.create ~jobs:3 in
  let attempts = Atomic.make 0 in
  let done_ = ref false in
  (* fails on attempts 1..3 (exhausting retries=2), succeeds on the 4th —
     which is the sequential coordinator fallback *)
  let sup =
    Parallel.run_tasks_supervised pool
      [|
        (fun () ->
          let n = Atomic.fetch_and_add attempts 1 in
          if n < 3 then raise Boom;
          done_ := true);
        (fun () -> ());
      |]
  in
  Parallel.shutdown pool;
  Alcotest.(check bool) "task eventually completed" true !done_;
  Alcotest.(check int) "retried twice in place" 2 sup.Parallel.retried;
  Alcotest.(check int) "one fallback" 1 sup.Parallel.fell_back

let test_supervised_poisoned_task_raises_in_coordinator () =
  let pool = Parallel.create ~jobs:3 in
  let others = Atomic.make 0 in
  (try
     ignore
       (Parallel.run_tasks_supervised pool
          (Array.init 10 (fun i () ->
               if i = 4 then raise Boom else Atomic.incr others))
         : Parallel.supervision);
     Alcotest.fail "expected Boom from the coordinator fallback"
   with Boom -> ());
  (* the poisoned task degraded, it did not kill the rest of the batch *)
  Alcotest.(check int) "other tasks all completed" 9 (Atomic.get others);
  let ok = Parallel.map pool (fun x -> x + 1) [| 1; 2 |] in
  Parallel.shutdown pool;
  Alcotest.(check bool) "pool survives" true (ok = [| 2; 3 |])

let test_nested_submission_degrades () =
  let pool = Parallel.create ~jobs:2 in
  let hits = Array.make 4 0 in
  Parallel.run_tasks pool
    [|
      (fun () ->
        (* a task fanning out on the same pool must not deadlock *)
        Parallel.run_tasks pool (Array.init 4 (fun i () -> hits.(i) <- hits.(i) + 1)));
      (fun () -> ());
    |];
  Parallel.shutdown pool;
  Alcotest.(check bool) "inner batch ran" true (Array.for_all (fun v -> v = 1) hits)

(* ------------------------------------------------------------------ *)
(* Determinism of the sharded classification                            *)
(* ------------------------------------------------------------------ *)

let random_netlist seed npis ngates =
  let rng = Rng.create seed in
  let b = B.create ~name:"par" lib in
  let nets = ref [] in
  for i = 0 to npis - 1 do
    nets := B.add_pi b (Printf.sprintf "i%d" i) :: !nets
  done;
  let cells = [| "INVX1"; "NAND2X1"; "NOR2X1"; "XOR2X1"; "AOI21X1"; "OAI21X1" |] in
  for _ = 1 to ngates do
    let arr = Array.of_list !nets in
    let cname = Rng.pick rng cells in
    let c = Dfm_netlist.Library.find lib cname in
    let fanins = Array.init (Cell.arity c) (fun _ -> Rng.pick rng arr) in
    nets := B.add_gate b ~cell:cname fanins :: !nets
  done;
  List.iteri (fun i n -> if i < 3 then B.mark_po b (Printf.sprintf "o%d" i) n) !nets;
  B.finish b

let all_faults nl =
  let faults = ref [] in
  let id = ref 0 in
  let add kind =
    faults := { F.fault_id = !id; kind; origin } :: !faults;
    incr id
  in
  Array.iter
    (fun (nn : N.net) ->
      List.iter (fun pol -> add (F.Stuck (F.On_net nn.N.net_id, pol))) [ F.Sa0; F.Sa1 ];
      List.iter
        (fun tr -> add (F.Transition (F.On_net nn.N.net_id, tr)))
        [ F.Slow_to_rise; F.Slow_to_fall ])
    nl.N.nets;
  Array.iteri
    (fun gid (g : N.gate) ->
      let u = Dfm_cellmodel.Udfm.for_cell g.N.cell.Cell.name in
      List.iteri (fun entry_idx _ -> add (F.Internal (gid, entry_idx))) u.Dfm_cellmodel.Udfm.entries)
    nl.N.gates;
  Array.of_list (List.rev !faults)

let test_classify_jobs_bit_identical () =
  List.iter
    (fun seed ->
      let nl = random_netlist seed 5 25 in
      let faults = all_faults nl in
      let ref_cls = Atpg.classify ~jobs:1 nl faults in
      List.iter
        (fun jobs ->
          let cls = Atpg.classify ~jobs nl faults in
          Alcotest.(check bool)
            (Printf.sprintf "status arrays identical (seed %d, %d jobs)" seed jobs)
            true
            (cls.Atpg.status = ref_cls.Atpg.status);
          Alcotest.(check bool)
            (Printf.sprintf "counts identical (seed %d, %d jobs)" seed jobs)
            true (cls.Atpg.counts = ref_cls.Atpg.counts))
        [ 2; 3; 4; 9 ])
    [ 11; 222; 3333 ]

(* The acceptance-level check: classification under injected task failures
   (each shard raising on its first attempts) is bit-identical to the clean
   sequential run. *)
let test_classify_with_failpoints_bit_identical () =
  let nl = random_netlist 4242 5 30 in
  let faults = all_faults nl in
  let ref_cls = Atpg.classify ~jobs:1 nl faults in
  Dfm_util.Failpoint.clear ();
  Fun.protect ~finally:Dfm_util.Failpoint.clear @@ fun () ->
  Dfm_util.Failpoint.enable ~times:4 "parallel.task" Dfm_util.Failpoint.Raise;
  let cls = Atpg.classify ~jobs:4 nl faults in
  Alcotest.(check bool) "statuses identical under injected failures" true
    (cls.Atpg.status = ref_cls.Atpg.status);
  Alcotest.(check bool) "counts identical under injected failures" true
    (cls.Atpg.counts = ref_cls.Atpg.counts);
  Alcotest.(check bool) "failpoint actually exercised" true
    (Dfm_util.Failpoint.hit_count "parallel.task" > 0)

(* The ISSUE-level regression: a full Design.implement of a benchmark block
   at jobs=1 and jobs=4 gives identical per-fault statuses and identical
   metrics. *)
let test_design_implement_jobs_deterministic () =
  let nl = Dfm_circuits.Circuits.build ~scale:0.25 "sparc_ffu" in
  let d1 = Design.implement ~jobs:1 nl in
  let d4 = Design.implement ~jobs:4 nl in
  Alcotest.(check bool) "per-fault status arrays identical" true
    (d1.Design.classification.Atpg.status = d4.Design.classification.Atpg.status);
  Alcotest.(check bool) "counts identical" true
    (d1.Design.classification.Atpg.counts = d4.Design.classification.Atpg.counts);
  Alcotest.(check bool) "Design.metrics identical" true
    (Design.metrics d1 = Design.metrics d4)

let suite =
  [
    Alcotest.test_case "map matches sequential" `Quick test_map_matches_sequential;
    Alcotest.test_case "chunk bounds tile the range" `Quick test_chunk_bounds;
    Alcotest.test_case "run_tasks disjoint writes" `Quick test_run_tasks_disjoint_writes;
    Alcotest.test_case "exceptions propagate" `Quick test_exception_propagates;
    Alcotest.test_case "shutdown is idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "supervised clean batch" `Quick test_supervised_clean_batch;
    Alcotest.test_case "supervised flaky task retried" `Quick test_supervised_flaky_task_retried;
    Alcotest.test_case "supervised fallback succeeds" `Quick test_supervised_fallback_then_success;
    Alcotest.test_case "supervised poisoned task raises in coordinator" `Quick
      test_supervised_poisoned_task_raises_in_coordinator;
    Alcotest.test_case "classify bit-identical under injected task failures" `Quick
      test_classify_with_failpoints_bit_identical;
    Alcotest.test_case "nested submission degrades" `Quick test_nested_submission_degrades;
    Alcotest.test_case "classify bit-identical across jobs" `Quick test_classify_jobs_bit_identical;
    Alcotest.test_case "Design.implement deterministic across jobs" `Slow
      test_design_implement_jobs_deterministic;
  ]

(* The serve subsystem's pure layers: the hand-written JSON codec, the
   length-framed checksummed frame protocol (including the fuzz suite that
   backs the fail-closed guarantee), the typed request/response codec, the
   fair-share scheduler, and the [serve.conn] failpoint through a real
   socketpair.  The daemon end-to-end paths (determinism, multi-tenant
   cache sharing, kill -9 resilience) live in [serve_smoke.ml], which
   drives the CLI executable. *)

module Wire = Dfm_serve.Wire
module Frame = Dfm_serve.Frame
module Protocol = Dfm_serve.Protocol
module Scheduler = Dfm_serve.Scheduler
module Failpoint = Dfm_util.Failpoint

(* ------------------------------------------------------------------ *)
(* Wire: JSON printer/parser                                          *)
(* ------------------------------------------------------------------ *)

let wire = Alcotest.testable (fun ppf v -> Fmt.string ppf (Wire.to_string v)) Wire.equal

let roundtrip v =
  match Wire.parse (Wire.to_string v) with
  | Ok v' -> v'
  | Error e -> Alcotest.failf "reparse failed: %s on %s" e (Wire.to_string v)

let test_wire_roundtrip () =
  let v =
    Wire.Obj
      [
        ("s", Wire.String "a\"b\\c\n\t\x01d");
        ("i", Wire.Int (-42));
        ("f", Wire.Float 1.5);
        ("b", Wire.Bool true);
        ("n", Wire.Null);
        ("l", Wire.List [ Wire.Int 0; Wire.String ""; Wire.Obj [] ]);
      ]
  in
  Alcotest.check wire "roundtrip" v (roundtrip v);
  (* the printer is deterministic: print/parse/print is a fixpoint *)
  Alcotest.(check string)
    "print is a fixpoint" (Wire.to_string v)
    (Wire.to_string (roundtrip v))

let test_wire_numbers () =
  Alcotest.check wire "big int exact" (Wire.Int max_int) (roundtrip (Wire.Int max_int));
  Alcotest.check wire "min int exact" (Wire.Int min_int) (roundtrip (Wire.Int min_int));
  (* non-finite floats cannot travel in JSON; the printer degrades to null *)
  Alcotest.(check string) "nan prints null" "null" (Wire.to_string (Wire.Float Float.nan));
  Alcotest.(check string)
    "inf prints null" "null"
    (Wire.to_string (Wire.Float Float.infinity));
  match Wire.parse "0.25" with
  | Ok (Wire.Float f) -> Alcotest.(check (float 0.0)) "float value" 0.25 f
  | _ -> Alcotest.fail "0.25 should parse as a float"

let test_wire_unicode_escape () =
  (match Wire.parse {|"\u00e9A"|} with
  | Ok (Wire.String s) -> Alcotest.(check string) "utf-8 decoding" "\xc3\xa9A" s
  | _ -> Alcotest.fail "unicode escapes should parse");
  match Wire.parse {|"\q"|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown escape must be rejected"

let test_wire_rejects () =
  let bad s =
    match Wire.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "parse should reject %S" s
  in
  bad "";
  bad "{\"a\":1,}";
  bad "[1 2]";
  bad "tru";
  bad "\"unterminated";
  bad "{\"a\":1} trailing";
  (* nesting past max_depth fails instead of overflowing the stack *)
  bad (String.make 100 '[' ^ String.make 100 ']')

let test_wire_accessors () =
  let v = Wire.Obj [ ("a", Wire.Int 3); ("b", Wire.String "x") ] in
  Alcotest.(check (option int)) "int_field" (Some 3) (Wire.int_field "a" v);
  Alcotest.(check (option int)) "missing uses default" (Some 9)
    (Wire.int_field ~default:9 "zz" v);
  (* the documented contract: missing and mistyped are indistinguishable,
     so the default applies to both (protocol decoding that must tell
     them apart does its own member lookup) *)
  Alcotest.(check (option int)) "mistyped none" None (Wire.int_field "b" v);
  Alcotest.(check (option int)) "mistyped takes the default too" (Some 9)
    (Wire.int_field ~default:9 "b" v);
  Alcotest.(check (option string)) "str_field" (Some "x") (Wire.str_field "b" v);
  Alcotest.(check (option (float 0.0))) "int promotes to float" (Some 3.0)
    (Wire.float_field "a" v)

(* Random JSON documents roundtrip bit-exactly through print/parse. *)
let wire_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Wire.Null;
        map (fun b -> Wire.Bool b) bool;
        map (fun i -> Wire.Int i) small_signed_int;
        map (fun f -> Wire.Float f) (float_bound_inclusive 1000.0);
        map (fun s -> Wire.String s) (string_size ~gen:(char_range '\x00' '\xff') (0 -- 12));
      ]
  in
  sized @@ fix (fun self n ->
      if n <= 0 then scalar
      else
        frequency
          [
            (2, scalar);
            (1, map (fun l -> Wire.List l) (list_size (0 -- 4) (self (n / 2))));
            ( 1,
              map
                (fun kvs -> Wire.Obj kvs)
                (list_size (0 -- 4)
                   (pair (string_size ~gen:printable (0 -- 6)) (self (n / 2)))) );
          ])

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire print/parse roundtrip" ~count:300
    (QCheck.make ~print:Wire.to_string wire_gen) (fun v ->
      match Wire.parse (Wire.to_string v) with
      | Ok v' -> Wire.equal v v'
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e)

(* ------------------------------------------------------------------ *)
(* Frame: encode / incremental decode                                 *)
(* ------------------------------------------------------------------ *)

let feed_all dec s =
  Frame.Decoder.feed dec (Bytes.of_string s) (String.length s)

let expect_payload dec expected =
  match Frame.Decoder.next dec with
  | Ok (Some p) -> Alcotest.(check string) "payload" expected p
  | Ok None -> Alcotest.fail "decoder wanted more bytes"
  | Error e -> Alcotest.failf "decoder error: %s" e

let test_frame_roundtrip () =
  let dec = Frame.Decoder.create () in
  feed_all dec (Frame.encode "hello");
  expect_payload dec "hello";
  (* two frames in one buffer come out in order *)
  feed_all dec (Frame.encode "a" ^ Frame.encode "b");
  expect_payload dec "a";
  expect_payload dec "b";
  Alcotest.(check int) "drained" 0 (Frame.Decoder.buffered dec)

let test_frame_byte_at_a_time () =
  let frame = Frame.encode "byte by byte \x00\xff payload" in
  let dec = Frame.Decoder.create () in
  String.iter
    (fun c ->
      (match Frame.Decoder.next dec with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "payload before final byte"
      | Error e -> Alcotest.failf "decoder error mid-frame: %s" e);
      Frame.Decoder.feed dec (Bytes.make 1 c) 1)
    frame;
  expect_payload dec "byte by byte \x00\xff payload"

(* Torn-write matrix: a frame cut at EVERY byte boundary is incomplete —
   never an error, never a bogus payload — and completes once the tail
   arrives.  This is the decoder half of the [serve.conn] Partial_write
   story: whatever prefix a dying connection managed to push, the peer
   either waits or (on close) reports a mid-frame cut; it never acts on a
   torn message. *)
let test_frame_cut_matrix () =
  let frame = Frame.encode "torn-write matrix payload" in
  for cut = 0 to String.length frame - 1 do
    let dec = Frame.Decoder.create () in
    feed_all dec (String.sub frame 0 cut);
    (match Frame.Decoder.next dec with
    | Ok None -> ()
    | Ok (Some _) -> Alcotest.failf "payload from a %d-byte prefix" cut
    | Error e -> Alcotest.failf "error from a %d-byte prefix: %s" cut e);
    feed_all dec (String.sub frame cut (String.length frame - cut));
    expect_payload dec "torn-write matrix payload"
  done

let expect_error dec what =
  match Frame.Decoder.next dec with
  | Error _ -> ()
  | Ok None -> Alcotest.failf "%s: decoder wants more instead of failing" what
  | Ok (Some _) -> Alcotest.failf "%s: decoder produced a payload" what

let test_frame_bad_magic () =
  let dec = Frame.Decoder.create () in
  feed_all dec ("XXXX" ^ String.sub (Frame.encode "p") 4 (String.length (Frame.encode "p") - 4));
  expect_error dec "bad magic";
  (* the error latches: even a valid frame afterwards is refused *)
  feed_all dec (Frame.encode "valid");
  expect_error dec "latched";
  Alcotest.(check int) "latched decoder discards input" 0 (Frame.Decoder.buffered dec)

let test_frame_bad_checksum () =
  let frame = Bytes.of_string (Frame.encode "checksummed") in
  let last = Bytes.length frame - 1 in
  Bytes.set frame last (Char.chr (Char.code (Bytes.get frame last) lxor 1));
  let dec = Frame.Decoder.create () in
  Frame.Decoder.feed dec frame (Bytes.length frame);
  expect_error dec "corrupted checksum"

let test_frame_bad_length () =
  (* length fields of 0 and > max_payload both fail closed *)
  let mk len =
    let b = Buffer.create 16 in
    Buffer.add_string b "DFS1";
    for i = 0 to 3 do
      Buffer.add_char b (Char.chr ((len lsr (8 * i)) land 0xff))
    done;
    Buffer.contents b
  in
  let dec = Frame.Decoder.create () in
  feed_all dec (mk 0);
  expect_error dec "zero length";
  let dec = Frame.Decoder.create () in
  feed_all dec (mk (Frame.max_payload + 1));
  expect_error dec "oversized length"

let test_frame_encode_rejects () =
  (match Frame.encode "" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty payload must be rejected");
  match Frame.encode (String.make 1 'x') with
  | (_ : string) -> ()

(* Garbage in, no crash out: random byte strings fed in random chunkings
   never raise, and never produce a payload unless they embed a frame we
   wrote ourselves (they don't: matching magic + checksum by chance is a
   2^-64 event).  The daemon's per-connection fail-closed behavior rests
   on exactly this. *)
let prop_frame_fuzz_garbage =
  QCheck.Test.make ~name:"frame decoder survives arbitrary garbage" ~count:500
    QCheck.(
      pair
        (string_gen_of_size Gen.(1 -- 200) Gen.(char_range '\x00' '\xff'))
        (small_int_corners ()))
    (fun (garbage, chunk_seed) ->
      let dec = Frame.Decoder.create () in
      let chunk = 1 + (abs chunk_seed mod 7) in
      let pos = ref 0 in
      let ok = ref true in
      while !ok && !pos < String.length garbage do
        let n = min chunk (String.length garbage - !pos) in
        Frame.Decoder.feed dec (Bytes.of_string (String.sub garbage !pos n)) n;
        pos := !pos + n;
        match Frame.Decoder.next dec with
        | Ok None | Error _ -> ()
        | Ok (Some _) -> ok := false
      done;
      !ok)

(* Single-byte corruption of a valid frame never yields the original
   payload: it is caught by magic, length, or checksum — or leaves the
   decoder waiting for bytes that never come. *)
let prop_frame_fuzz_flip =
  QCheck.Test.make ~name:"frame decoder rejects single-byte corruption" ~count:300
    QCheck.(
      pair (string_gen_of_size Gen.(1 -- 50) Gen.printable) (pair small_nat small_nat))
    (fun (payload, (pos_seed, bit_seed)) ->
      let frame = Bytes.of_string (Frame.encode payload) in
      let pos = pos_seed mod Bytes.length frame in
      let bit = 1 lsl (bit_seed mod 8) in
      Bytes.set frame pos (Char.chr (Char.code (Bytes.get frame pos) lxor bit));
      let dec = Frame.Decoder.create () in
      Frame.Decoder.feed dec frame (Bytes.length frame);
      match Frame.Decoder.next dec with
      | Ok (Some p) -> not (String.equal p payload)
      | Ok None | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Protocol: typed request/response codec                             *)
(* ------------------------------------------------------------------ *)

let submit_full =
  Protocol.
    {
      client = "tenant-a";
      kind = Resynth;
      name = "blk";
      netlist = "# netlist\ntext\n";
      limits = { jobs = Some 4; max_conflicts = Some 10_000; max_seconds = Some 2.5 };
      static_filter = true;
      sat_mode = Some "oneshot";
      q_max = Some 7;
      p1 = Some 0.5;
    }

let submit_min =
  Protocol.
    {
      client = "t";
      kind = Analyze;
      name = "n";
      netlist = "x";
      limits = Protocol.no_limits;
      static_filter = false;
      sat_mode = None;
      q_max = None;
      p1 = None;
    }

let req_roundtrip r =
  match Protocol.request_of_json (Protocol.request_to_json r) with
  | Ok r' -> Alcotest.(check bool) "request roundtrip" true (r = r')
  | Error e -> Alcotest.failf "request reparse: %s" e

let resp_roundtrip r =
  match Protocol.response_of_json (Protocol.response_to_json r) with
  | Ok r' -> Alcotest.(check bool) "response roundtrip" true (r = r')
  | Error e -> Alcotest.failf "response reparse: %s" e

let test_protocol_requests () =
  List.iter req_roundtrip
    Protocol.
      [
        Submit submit_full;
        Submit submit_min;
        Status None;
        Status (Some "J3");
        Await "J1";
        Cancel "J2";
        Drain;
        Metrics;
        Telemetry_sub
          { t_spans = true; t_metrics = true; t_families = [ "dfm_sat_" ]; t_interval_ms = Some 250 };
        Telemetry_sub { t_spans = false; t_metrics = true; t_families = []; t_interval_ms = None };
        Dump;
        Ping;
      ]

let test_protocol_responses () =
  List.iter resp_roundtrip
    Protocol.
      [
        Accepted { job = "J1"; position = 3 };
        Event { job = "J1"; stream = "log"; data = "line\nwith\nnewlines" };
        Result
          {
            r_job = "J1";
            r_outcome = "done";
            r_report = "report text\n";
            r_sat_queries = 123;
            r_cache_hits = 45;
            r_accepted = 3;
            r_netlist = Some "final\n";
          };
        Result
          {
            r_job = "J2";
            r_outcome = "failed";
            r_report = "";
            r_sat_queries = 0;
            r_cache_hits = 0;
            r_accepted = 0;
            r_netlist = None;
          };
        Status_report
          {
            draining = true;
            jobs =
              [
                {
                  jv_id = "J1";
                  jv_client = "a";
                  jv_kind = Lint;
                  jv_name = "n";
                  jv_state = Running;
                  jv_detail = "";
                };
              ];
            clients =
              [
                {
                  cv_client = "a";
                  cv_jobs = 2;
                  cv_service_s = 1.25;
                  cv_cache_hits = 10;
                  cv_cache_misses = 3;
                };
              ];
          };
        Metrics_text "# HELP x\n";
        Telemetry { stream = "spans"; data = "{\"name\":\"a\",\"ph\":\"X\"}\n" };
        Telemetry { stream = "metrics"; data = "dfm_x_total 1\n" };
        Drained { completed = 9 };
        Dumped { trace = "/tmp/flight-1-1.trace.json"; text = "/tmp/flight-1-1.txt" };
        Ok_resp;
        Pong;
        Error_msg "no such job";
      ]

let test_protocol_rejects () =
  let bad_req s =
    match Protocol.request_of_json s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "request decoder should reject %S" s
  in
  bad_req "not json";
  bad_req "{}";
  bad_req {|{"type":"teleport"}|};
  bad_req {|{"type":"submit"}|};
  (* mistyped optional field: absent would be fine, a wrong type is not *)
  bad_req
    {|{"type":"submit","client":"c","kind":"analyze","name":"n","netlist":"x","jobs":"four"}|};
  (* telemetry subscriptions: families must be a list of strings *)
  bad_req {|{"type":"telemetry_sub","spans":true,"metrics":true,"families":"dfm_"}|};
  bad_req {|{"type":"telemetry_sub","spans":true,"metrics":true,"families":[1]}|};
  match Protocol.response_of_json {|{"type":"warp"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "response decoder should reject unknown types"

(* ------------------------------------------------------------------ *)
(* Scheduler: fair share across tenants                               *)
(* ------------------------------------------------------------------ *)

let take_exn s =
  match Scheduler.take s with
  | Some (c, j) -> (c, j)
  | None -> Alcotest.fail "scheduler empty"

let test_sched_single_client_fifo () =
  let s = Scheduler.create () in
  ignore (Scheduler.submit s ~client:"a" 1);
  ignore (Scheduler.submit s ~client:"a" 2);
  ignore (Scheduler.submit s ~client:"a" 3);
  Alcotest.(check int) "pending" 3 (Scheduler.pending s);
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ]
    (List.init 3 (fun _ -> snd (take_exn s)));
  Alcotest.(check bool) "drained" true (Scheduler.take s = None)

let test_sched_fairness () =
  let s = Scheduler.create () in
  (* a floods the queue; b submits one job later.  With zero service all
     around, the tie breaks on submission order — but as soon as a has
     consumed service, b's job overtakes a's backlog. *)
  ignore (Scheduler.submit s ~client:"a" 10);
  ignore (Scheduler.submit s ~client:"a" 11);
  ignore (Scheduler.submit s ~client:"b" 20);
  Alcotest.(check (pair string int)) "tie breaks on submission seq" ("a", 10) (take_exn s);
  Scheduler.charge s ~client:"a" 1.0;
  Alcotest.(check (pair string int)) "least-served client preempts backlog" ("b", 20)
    (take_exn s);
  Scheduler.charge s ~client:"b" 2.0;
  Alcotest.(check (pair string int)) "service ordering" ("a", 11) (take_exn s);
  Alcotest.(check (float 1e-9)) "service persists" 1.0 (Scheduler.service s ~client:"a")

let test_sched_newcomer_virtual_time () =
  let s = Scheduler.create () in
  ignore (Scheduler.submit s ~client:"veteran" 1);
  Scheduler.charge s ~client:"veteran" 100.0;
  (* the newcomer starts at the minimum live service (100), not at 0: it
     is served promptly but is not owed the veteran's whole history *)
  ignore (Scheduler.submit s ~client:"newcomer" 2);
  Alcotest.(check (pair string int)) "tie at min service, seq breaks it" ("veteran", 1)
    (take_exn s);
  Alcotest.(check (pair string int)) "newcomer next" ("newcomer", 2) (take_exn s)

let test_sched_position_and_remove () =
  let s = Scheduler.create () in
  Alcotest.(check int) "first submit is next" 0 (Scheduler.submit s ~client:"a" 1);
  ignore (Scheduler.submit s ~client:"a" 2);
  ignore (Scheduler.submit s ~client:"b" 3);
  (* projected dispatch: a:1 (tie/seq), then b:3 (a was charged a unit in
     projection), then a:2 *)
  Alcotest.(check (option int)) "head of a" (Some 0) (Scheduler.position s (( = ) 1));
  Alcotest.(check (option int)) "head of b" (Some 1) (Scheduler.position s (( = ) 3));
  Alcotest.(check (option int)) "second of a" (Some 2) (Scheduler.position s (( = ) 2));
  Alcotest.(check (option int)) "absent" None (Scheduler.position s (( = ) 99));
  Alcotest.(check (option int)) "cancel pulls from the middle" (Some 2)
    (Scheduler.remove s (( = ) 2));
  Alcotest.(check int) "pending shrinks" 2 (Scheduler.pending s);
  Alcotest.(check (option int)) "remove misses" None (Scheduler.remove s (( = ) 2));
  Alcotest.(check (list string)) "clients in first-submission order" [ "a"; "b" ]
    (Scheduler.clients s)

(* ------------------------------------------------------------------ *)
(* serve.conn failpoint through a real socketpair                     *)
(* ------------------------------------------------------------------ *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      (try Unix.close b with Unix.Unix_error _ -> ());
      Failpoint.clear ())
    (fun () -> f a b)

let drain_into_decoder fd =
  let dec = Frame.Decoder.create () in
  let buf = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> dec
    | n ->
        Frame.Decoder.feed dec buf n;
        go ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> dec
  in
  go ()

let test_conn_drop_failpoint () =
  with_socketpair @@ fun a b ->
  Failpoint.enable "serve.conn" Failpoint.Io_error;
  (match Frame.write a "doomed" with
  | () -> Alcotest.fail "armed serve.conn should fail the write"
  | exception Sys_error _ -> ());
  Failpoint.clear ();
  (* a dropped connection sends nothing: the peer sees a clean close with
     zero buffered bytes, not a torn frame *)
  Unix.close a;
  let dec = drain_into_decoder b in
  Alcotest.(check int) "nothing reached the peer" 0 (Frame.Decoder.buffered dec)

let test_conn_torn_write_failpoint () =
  with_socketpair @@ fun a b ->
  Failpoint.enable "serve.conn" Failpoint.Partial_write;
  (match Frame.write a "torn frame payload" with
  | () -> Alcotest.fail "armed serve.conn should fail the write"
  | exception Sys_error _ -> ());
  Failpoint.clear ();
  Unix.close a;
  (* the peer got a strict prefix: the decoder must hold it as incomplete
     (never a payload, never a spurious success), and a blocking read
     reports the mid-frame cut *)
  let dec = drain_into_decoder b in
  let torn = Frame.Decoder.buffered dec in
  Alcotest.(check bool) "a torn prefix reached the peer" true (torn > 0);
  Alcotest.(check bool) "prefix is strictly short" true
    (torn < String.length (Frame.encode "torn frame payload"));
  (match Frame.Decoder.next dec with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "torn prefix decoded as a payload"
  | Error e -> Alcotest.failf "torn prefix errored: %s" e)

let test_conn_torn_read_reports_cut () =
  with_socketpair @@ fun a b ->
  Failpoint.enable "serve.conn" Failpoint.Partial_write;
  (try Frame.write a "another torn frame" with Sys_error _ -> ());
  Failpoint.clear ();
  Unix.close a;
  let dec = Frame.Decoder.create () in
  match Frame.read dec b with
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions the cut (%s)" e)
        true
        (String.length e > 0)
  | Ok p -> Alcotest.failf "torn frame read as %S" p

let test_conn_delay_then_delivers () =
  with_socketpair @@ fun a b ->
  Failpoint.enable "serve.conn" (Failpoint.Delay 0.01);
  Frame.write a "delayed but intact";
  Failpoint.clear ();
  let dec = Frame.Decoder.create () in
  match Frame.read dec b with
  | Ok p -> Alcotest.(check string) "payload survives a delay" "delayed but intact" p
  | Error e -> Alcotest.failf "delayed frame lost: %s" e

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "wire: roundtrip" `Quick test_wire_roundtrip;
    Alcotest.test_case "wire: numbers" `Quick test_wire_numbers;
    Alcotest.test_case "wire: unicode escapes" `Quick test_wire_unicode_escape;
    Alcotest.test_case "wire: rejects malformed" `Quick test_wire_rejects;
    Alcotest.test_case "wire: accessors" `Quick test_wire_accessors;
    QCheck_alcotest.to_alcotest prop_wire_roundtrip;
    Alcotest.test_case "frame: roundtrip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame: byte-at-a-time" `Quick test_frame_byte_at_a_time;
    Alcotest.test_case "frame: cut matrix" `Quick test_frame_cut_matrix;
    Alcotest.test_case "frame: bad magic latches" `Quick test_frame_bad_magic;
    Alcotest.test_case "frame: bad checksum" `Quick test_frame_bad_checksum;
    Alcotest.test_case "frame: bad length" `Quick test_frame_bad_length;
    Alcotest.test_case "frame: encode rejects" `Quick test_frame_encode_rejects;
    QCheck_alcotest.to_alcotest prop_frame_fuzz_garbage;
    QCheck_alcotest.to_alcotest prop_frame_fuzz_flip;
    Alcotest.test_case "protocol: requests roundtrip" `Quick test_protocol_requests;
    Alcotest.test_case "protocol: responses roundtrip" `Quick test_protocol_responses;
    Alcotest.test_case "protocol: rejects malformed" `Quick test_protocol_rejects;
    Alcotest.test_case "sched: single-client fifo" `Quick test_sched_single_client_fifo;
    Alcotest.test_case "sched: fair share" `Quick test_sched_fairness;
    Alcotest.test_case "sched: newcomer virtual time" `Quick
      test_sched_newcomer_virtual_time;
    Alcotest.test_case "sched: position and cancel" `Quick test_sched_position_and_remove;
    Alcotest.test_case "conn: drop failpoint" `Quick test_conn_drop_failpoint;
    Alcotest.test_case "conn: torn write failpoint" `Quick test_conn_torn_write_failpoint;
    Alcotest.test_case "conn: torn read reports cut" `Quick test_conn_torn_read_reports_cut;
    Alcotest.test_case "conn: delay delivers intact" `Quick test_conn_delay_then_delivers;
  ]

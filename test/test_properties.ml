(* Property-based differential tests.

   Two engine pairs are cross-checked on random inputs:

   - [Fault_sim.detect_word] (event-driven, fanout-cone-only propagation)
     against a brute-force faulty-copy resimulation that recomputes every
     net of the circuit with the fault injected;

   - the Tseitin CNF encodings of [Dfm_sat] against exhaustive truth-table
     enumeration, assignment by assignment. *)

module N = Dfm_netlist.Netlist
module B = N.Builder
module Cell = Dfm_netlist.Cell
module F = Dfm_faults.Fault
module Ls = Dfm_sim.Logic_sim
module Fs = Dfm_sim.Fault_sim
module Rng = Dfm_util.Rng
module Tt = Dfm_logic.Truthtable
module Solver = Dfm_sat.Solver
module Tseitin = Dfm_sat.Tseitin

let lib = Dfm_cellmodel.Osu018.library
let origin = { F.category = Dfm_cellmodel.Defect.Via; guideline_index = 0 }

let random_netlist seed npis ngates =
  let rng = Rng.create seed in
  let b = B.create ~name:"prop" lib in
  let nets = ref [] in
  for i = 0 to npis - 1 do
    nets := B.add_pi b (Printf.sprintf "i%d" i) :: !nets
  done;
  let cells = [| "INVX1"; "NAND2X1"; "NOR2X1"; "XOR2X1"; "AOI21X1"; "OAI21X1" |] in
  for _ = 1 to ngates do
    let arr = Array.of_list !nets in
    let cname = Rng.pick rng cells in
    let c = Dfm_netlist.Library.find lib cname in
    let fanins = Array.init (Cell.arity c) (fun _ -> Rng.pick rng arr) in
    nets := B.add_gate b ~cell:cname fanins :: !nets
  done;
  List.iteri (fun i n -> if i < 3 then B.mark_po b (Printf.sprintf "o%d" i) n) !nets;
  B.finish b

(* ------------------------------------------------------------------ *)
(* detect_word vs brute-force faulty-copy resimulation                  *)
(* ------------------------------------------------------------------ *)

let eval_tt_words (f : Tt.t) ws =
  let n = Tt.arity f in
  let out = ref 0L in
  for m = 0 to (1 lsl n) - 1 do
    if Tt.eval_index f m then begin
      let term = ref (-1L) in
      for k = 0 to n - 1 do
        term := Int64.logand !term (if (m lsr k) land 1 = 1 then ws.(k) else Int64.lognot ws.(k))
      done;
      out := Int64.logor !out !term
    end
  done;
  !out

let minterm_word ws minterms =
  let n = Array.length ws in
  List.fold_left
    (fun acc m ->
      let term = ref (-1L) in
      for k = 0 to n - 1 do
        term := Int64.logand !term (if (m lsr k) land 1 = 1 then ws.(k) else Int64.lognot ws.(k))
      done;
      Int64.logor acc !term)
    0L minterms

let forced_word = function F.Sa0 -> 0L | F.Sa1 -> -1L

(* Recompute every net with the fault injected; no event propagation, no
   cones — the clumsy-but-obvious reference implementation. *)
let brute_detect_word nl (f : F.t) ~good words =
  let values = Array.make (N.num_nets nl) 0L in
  let override_net n = match f.F.kind with
    | F.Stuck (F.On_net fn, pol) when fn = n -> values.(n) <- forced_word pol
    | F.Transition (F.On_net fn, tr) when fn = n ->
        (* frame-2 component: the site behaves as the matching stuck-at *)
        values.(n) <-
          forced_word (match tr with F.Slow_to_rise -> F.Sa0 | F.Slow_to_fall -> F.Sa1)
    | F.Bridge (n1, n2, k) when n = n1 || n = n2 ->
        (* resolution over the fault-free values, as in the simulator's
           bridge model; the test only generates independent net pairs *)
        values.(n) <-
          (match k with
          | F.Wired_and -> Int64.logand good.(n1) good.(n2)
          | F.Wired_or -> Int64.logor good.(n1) good.(n2))
    | _ -> ()
  in
  List.iteri
    (fun i (_, nid) ->
      values.(nid) <- words.(i);
      override_net nid)
    (N.input_nets nl);
  Array.iter
    (fun (nn : N.net) ->
      match nn.N.driver with
      | N.Const v ->
          values.(nn.N.net_id) <- (if v then -1L else 0L);
          override_net nn.N.net_id
      | N.Pi _ | N.Gate_out _ -> ())
    nl.N.nets;
  Array.iter
    (fun gid ->
      let g = N.gate nl gid in
      let ins = Array.map (fun n -> values.(n)) g.N.fanins in
      (match f.F.kind with
      | F.Stuck (F.On_pin (fg, pin), pol) when fg = gid -> ins.(pin) <- forced_word pol
      | _ -> ());
      let out = ref (eval_tt_words g.N.cell.Cell.func ins) in
      (match f.F.kind with
      | F.Internal (fg, entry_idx) when fg = gid ->
          (* when activated the defective cell inverts its output; the
             activation condition is over the cell's own input values *)
          let u = Dfm_cellmodel.Udfm.for_cell g.N.cell.Cell.name in
          let entry = List.nth u.Dfm_cellmodel.Udfm.entries entry_idx in
          out := Int64.logxor !out (minterm_word ins entry.Dfm_cellmodel.Udfm.activation)
      | _ -> ());
      values.(g.N.fanout) <- !out;
      override_net g.N.fanout)
    (N.topo_order nl);
  List.fold_left
    (fun acc (_, n) -> Int64.logor acc (Int64.logxor good.(n) values.(n)))
    0L (N.observe_nets nl)

(* Forward reachability over nets, for picking independent bridge pairs. *)
let downstream nl =
  let reach = Array.init (N.num_nets nl) (fun n -> [ n ]) in
  let order = N.topo_order nl in
  (* process gates in reverse topo order: out's reachable set feeds fanins *)
  for i = Array.length order - 1 downto 0 do
    let g = N.gate nl order.(i) in
    Array.iter
      (fun fn -> reach.(fn) <- List.sort_uniq compare (reach.(g.N.fanout) @ reach.(fn)))
      g.N.fanins
  done;
  fun a b -> List.mem b reach.(a)

let faults_of_netlist nl rng =
  let faults = ref [] in
  let id = ref 0 in
  let add kind =
    faults := { F.fault_id = !id; kind; origin } :: !faults;
    incr id
  in
  Array.iter
    (fun (nn : N.net) ->
      List.iter (fun pol -> add (F.Stuck (F.On_net nn.N.net_id, pol))) [ F.Sa0; F.Sa1 ];
      List.iter
        (fun tr -> add (F.Transition (F.On_net nn.N.net_id, tr)))
        [ F.Slow_to_rise; F.Slow_to_fall ])
    nl.N.nets;
  Array.iteri
    (fun gid (g : N.gate) ->
      Array.iteri
        (fun pin _ ->
          List.iter (fun pol -> add (F.Stuck (F.On_pin (gid, pin), pol))) [ F.Sa0; F.Sa1 ])
        g.N.fanins;
      let u = Dfm_cellmodel.Udfm.for_cell g.N.cell.Cell.name in
      List.iteri
        (fun entry_idx _ -> if entry_idx < 4 then add (F.Internal (gid, entry_idx)))
        u.Dfm_cellmodel.Udfm.entries)
    nl.N.gates;
  (* a few bridges between independent nets (neither reaches the other) *)
  let reaches = downstream nl in
  let nn = N.num_nets nl in
  for _ = 1 to 8 do
    let a = Rng.int rng nn and b = Rng.int rng nn in
    if a <> b && (not (reaches a b)) && not (reaches b a) then
      List.iter (fun k -> add (F.Bridge (a, b, k))) [ F.Wired_and; F.Wired_or ]
  done;
  List.rev !faults

let prop_detect_word_vs_brute =
  QCheck.Test.make ~name:"detect_word matches brute-force faulty resimulation" ~count:20
    QCheck.(pair (int_range 1 10000) (int_range 3 12))
    (fun (seed, ngates) ->
      let nl = random_netlist seed 4 ngates in
      let rng = Rng.create (seed lxor 0x5eed) in
      let faults = faults_of_netlist nl rng in
      let ls = Ls.prepare nl in
      let fs = Fs.prepare nl in
      List.for_all
        (fun _block ->
          let words = Ls.random_words ls rng in
          let good = Ls.run ls words in
          List.for_all
            (fun (f : F.t) ->
              let fast = Fs.detect_word fs ~good f in
              let brute = brute_detect_word nl f ~good words in
              if fast <> brute then
                QCheck.Test.fail_reportf "fault %d (%s): detect_word %Lx but brute force %Lx"
                  f.F.fault_id (F.describe nl f) fast brute
              else true)
            faults)
        [ 1; 2 ])

(* init_word: the frame-1 condition is by definition the word of patterns
   putting the site at the pre-transition value. *)
let prop_init_word =
  QCheck.Test.make ~name:"init_word is the pre-transition site condition" ~count:20
    QCheck.(int_range 1 10000)
    (fun seed ->
      let nl = random_netlist seed 4 8 in
      let ls = Ls.prepare nl in
      let fs = Fs.prepare nl in
      let rng = Rng.create seed in
      let words = Ls.random_words ls rng in
      let good = Ls.run ls words in
      Array.for_all
        (fun (nn : N.net) ->
          List.for_all
            (fun (tr, expect) ->
              let f = { F.fault_id = 0; kind = F.Transition (F.On_net nn.N.net_id, tr); origin } in
              Fs.init_word fs ~good f = expect nn.N.net_id)
            [
              (F.Slow_to_rise, fun n -> Int64.lognot good.(n));
              (F.Slow_to_fall, fun n -> good.(n));
            ])
        nl.N.nets)

(* ------------------------------------------------------------------ *)
(* Tseitin CNF vs truth-table enumeration                               *)
(* ------------------------------------------------------------------ *)

let lit v b = if b then v else -v

(* Build a fresh solver encoding [out = tt(ins)] with the inputs pinned to
   assignment [m], then ask whether [out = value] is satisfiable. *)
let tseitin_sat tt m value =
  let s = Solver.create () in
  let ins = Array.init (Tt.arity tt) (fun _ -> Solver.new_var s) in
  let out = Solver.new_var s in
  Tseitin.of_truthtable s ~out ins tt;
  Array.iteri (fun k v -> Solver.add_clause s [ lit v ((m lsr k) land 1 = 1) ]) ins;
  Solver.add_clause s [ lit out value ];
  match Solver.solve s with
  | Solver.Sat -> true
  | Solver.Unsat -> false
  | Solver.Unknown -> QCheck.Test.fail_report "unbounded solve returned Unknown"

let prop_tseitin_vs_truth_table =
  QCheck.Test.make ~name:"Tseitin of_truthtable matches truth-table enumeration" ~count:60
    QCheck.(pair (int_range 1 4) int64)
    (fun (arity, bits) ->
      let tt = Tt.of_bits ~arity bits in
      List.for_all
        (fun m ->
          let expected = Tt.eval_index tt m in
          (* the CNF must force exactly the tabulated output value *)
          tseitin_sat tt m expected && not (tseitin_sat tt m (not expected)))
        (List.init (1 lsl arity) (fun m -> m)))

(* The gate helpers must agree with the equivalent truth tables. *)
let prop_tseitin_gates =
  QCheck.Test.make ~name:"Tseitin gate encoders match their truth tables" ~count:40
    QCheck.(int_range 0 63)
    (fun m ->
      let check2 encode f =
        let s = Solver.create () in
        let a = Solver.new_var s and b = Solver.new_var s in
        let out = Solver.new_var s in
        encode s ~out a b;
        Solver.add_clause s [ lit a (m land 1 = 1) ];
        Solver.add_clause s [ lit b (m land 2 = 2) ];
        Solver.add_clause s [ lit out (f (m land 1 = 1) (m land 2 = 2)) ];
        Solver.solve s = Solver.Sat
      in
      check2 (fun s ~out a b -> Tseitin.xor_ s ~out a b) ( <> )
      && check2 (fun s ~out a b -> Tseitin.and_ s ~out [ a; b ]) ( && )
      && check2 (fun s ~out a b -> Tseitin.or_ s ~out [ a; b ]) ( || )
      && check2
           (fun s ~out a b ->
             let sel = Solver.new_var s in
             Solver.add_clause s [ lit sel (m land 4 = 4) ];
             Tseitin.mux s ~out ~sel a b)
           (fun a b -> if m land 4 = 4 then b else a))

(* ------------------------------------------------------------------ *)
(* Verdict cache vs uncached classification                            *)
(* ------------------------------------------------------------------ *)

module Atpg = Dfm_atpg.Atpg
module Cache = Dfm_incr.Cache

let same_classification (a : Atpg.classification) (b : Atpg.classification) =
  (* everything must match except [sat_queries], which is exactly the work
     the cache is allowed to skip *)
  let ca = a.Atpg.counts and cb = b.Atpg.counts in
  a.Atpg.status = b.Atpg.status
  && ca.Atpg.total = cb.Atpg.total
  && ca.Atpg.detected = cb.Atpg.detected
  && ca.Atpg.undetectable = cb.Atpg.undetectable
  && ca.Atpg.aborted = cb.Atpg.aborted
  && ca.Atpg.undetectable_internal = cb.Atpg.undetectable_internal
  && ca.Atpg.undetectable_external = cb.Atpg.undetectable_external

(* A random netlist taken through a random sequence of gate replacements —
   the resynthesis loop in miniature.  At every version, classification
   without a cache, with a fresh (cold) cache, again with that now-warm
   cache, and with one cache shared across the whole edit sequence must be
   bit-identical; the cache may only reduce [sat_queries]. *)
let prop_cache_never_changes_verdicts =
  QCheck.Test.make ~name:"verdict cache never changes a classification" ~count:8
    QCheck.(pair (int_range 1 10000) (int_range 3 9))
    (fun (seed, ngates) ->
      let versions =
        let rec grow acc nl k =
          if k = 0 then List.rev acc
          else
            let rng = Rng.create ((seed * 31) + k) in
            let n = Array.length nl.N.gates in
            let gates =
              List.sort_uniq compare (List.init (1 + Rng.int rng 2) (fun _ -> Rng.int rng n))
            in
            match Dfm_synth.Convert.remap_region nl ~gates ~library:lib with
            | nl' -> grow (nl' :: acc) nl' (k - 1)
            | exception Dfm_synth.Mapper.Unmappable _ -> grow acc nl (k - 1)
        in
        let nl0 = random_netlist seed 4 ngates in
        grow [ nl0 ] nl0 3
      in
      let shared = Cache.create () in
      List.for_all
        (fun nl ->
          let rng = Rng.create (seed lxor 0xcafe) in
          let faults = Array.of_list (faults_of_netlist nl rng) in
          let plain = Atpg.classify nl faults in
          let cache = Cache.create () in
          let cold = Atpg.classify ~cache nl faults in
          let warm = Atpg.classify ~cache nl faults in
          let carried = Atpg.classify ~cache:shared nl faults in
          same_classification plain cold
          && same_classification plain warm
          && same_classification plain carried
          && warm.Atpg.counts.Atpg.sat_queries = 0
          && cold.Atpg.counts.Atpg.sat_queries <= plain.Atpg.counts.Atpg.sat_queries
          && carried.Atpg.counts.Atpg.sat_queries <= plain.Atpg.counts.Atpg.sat_queries)
        versions)

(* The abort-budget escalation ladder must be a pure effort policy: when
   it resolves every abort, the result is bit-identical (modulo
   [sat_queries]) to one classification run straight at the ladder's final
   budget, and each rung can only shrink the aborted set.  This is the
   budget-monotonicity argument of [Atpg.escalate] made executable.
   Pinned to Oneshot: the identity is a statement about cold solvers — in
   incremental mode retained learnt clauses can legitimately resolve a
   fault on an earlier (cheaper) rung than the straight run's budget, so
   only the semantic verdicts (not the Aborted frontier) would match. *)
let prop_escalation_matches_final_budget =
  QCheck.Test.make ~name:"abort escalation equals one classify at the final budget" ~count:10
    QCheck.(pair (int_range 1 10000) (int_range 6 14))
    (fun (seed, ngates) ->
      let nl = random_netlist seed 5 ngates in
      let rng = Rng.create (seed lxor 0xabcd) in
      let faults = Array.of_list (faults_of_netlist nl rng) in
      let mc = 1 in
      let policy = { Atpg.factor = 4; max_total_conflicts = 1_000_000 } in
      let cls = Atpg.classify ~max_conflicts:mc ~sat_mode:Atpg.Oneshot nl faults in
      let esc, stats =
        Atpg.escalate ~policy ~sat_mode:Atpg.Oneshot ~max_conflicts:mc nl faults cls
      in
      let monotone =
        let rec ok prev = function
          | [] -> true
          | x :: tl -> x <= prev && ok x tl
        in
        ok cls.Atpg.counts.Atpg.aborted stats.Atpg.aborted_per_rung
      in
      if not monotone then
        QCheck.Test.fail_reportf "aborted_per_rung not monotone: start %d, rungs [%s]"
          cls.Atpg.counts.Atpg.aborted
          (String.concat "; " (List.map string_of_int stats.Atpg.aborted_per_rung));
      if esc.Atpg.counts.Atpg.aborted <> stats.Atpg.residual then
        QCheck.Test.fail_reportf "residual %d but escalated classification reports %d aborts"
          stats.Atpg.residual esc.Atpg.counts.Atpg.aborted;
      stats.Atpg.residual > 0
      ||
      let rec final b k = if k = 0 then b else final (b * policy.Atpg.factor) (k - 1) in
      let straight =
        Atpg.classify ~max_conflicts:(final mc stats.Atpg.rungs) ~sat_mode:Atpg.Oneshot nl
          faults
      in
      same_classification esc straight
      || QCheck.Test.fail_reportf
           "ladder (%d rungs, %d retried) differs from classify at final budget %d"
           stats.Atpg.rungs stats.Atpg.retried (final mc stats.Atpg.rungs))

(* The incremental resweep must be observationally identical to a full
   sweep: same support hash for every net, same signature for every fault,
   on a random netlist after a random gate replacement. *)
let prop_resweep_equals_full_sweep =
  QCheck.Test.make ~name:"incremental resweep equals a full sweep" ~count:20
    QCheck.(pair (int_range 1 10000) (int_range 3 10))
    (fun (seed, ngates) ->
      let nl = random_netlist seed 4 ngates in
      let rng = Rng.create (seed lxor 0x1e5) in
      let gates =
        List.sort_uniq compare
          (List.init (1 + Rng.int rng 2) (fun _ -> Rng.int rng (Array.length nl.N.gates)))
      in
      match Dfm_synth.Convert.remap_region nl ~gates ~library:lib with
      | exception Dfm_synth.Mapper.Unmappable _ -> true
      | nl2 ->
          let module Sg = Dfm_incr.Signature in
          let incr_sw, _ = Dfm_incr.Invalidate.resweep ~previous:(Sg.sweep nl) nl2 in
          let full_sw = Sg.sweep nl2 in
          let params = Sg.default_params () in
          Array.for_all
            (fun (nn : N.net) ->
              Sg.support_hash incr_sw nn.N.net_id = Sg.support_hash full_sw nn.N.net_id)
            nl2.N.nets
          && List.for_all
               (fun (f : F.t) ->
                 Sg.of_fault incr_sw ~params f = Sg.of_fault full_sw ~params f)
               (faults_of_netlist nl2 (Rng.create (seed lxor 0x7777))))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_detect_word_vs_brute;
    QCheck_alcotest.to_alcotest prop_init_word;
    QCheck_alcotest.to_alcotest prop_tseitin_vs_truth_table;
    QCheck_alcotest.to_alcotest prop_tseitin_gates;
    QCheck_alcotest.to_alcotest prop_cache_never_changes_verdicts;
    QCheck_alcotest.to_alcotest prop_escalation_matches_final_budget;
    QCheck_alcotest.to_alcotest prop_resweep_equals_full_sweep;
  ]

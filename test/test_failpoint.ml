(* Tests for Dfm_util.Failpoint: scheduling (after/times), the action
   semantics of [hit], the CLI/env spec grammar, and determinism of the
   probabilistic gate. *)

module Failpoint = Dfm_util.Failpoint

let with_clean f =
  Failpoint.clear ();
  Fun.protect ~finally:Failpoint.clear f

let test_disarmed_is_silent () =
  with_clean @@ fun () ->
  Alcotest.(check bool) "inactive" false (Failpoint.any_active ());
  Failpoint.hit "nowhere";
  Alcotest.(check bool) "no action" true (Failpoint.check "nowhere" = None);
  Alcotest.(check int) "disarmed sites do not count" 0 (Failpoint.hit_count "nowhere")

let test_after_times_schedule () =
  with_clean @@ fun () ->
  Failpoint.enable ~after:2 ~times:3 "s" Failpoint.Raise;
  let fired = ref 0 in
  for _ = 1 to 10 do
    match Failpoint.check "s" with Some Failpoint.Raise -> incr fired | Some _ -> () | None -> ()
  done;
  Alcotest.(check int) "fires exactly [times] after [after]" 3 !fired;
  Alcotest.(check int) "every reach counted" 10 (Failpoint.hit_count "s");
  (* re-enabling resets the counters *)
  Failpoint.enable ~times:1 "s" Failpoint.Raise;
  Alcotest.(check bool) "fires again after re-enable" true (Failpoint.check "s" <> None);
  Alcotest.(check bool) "then exhausted" true (Failpoint.check "s" = None)

let test_hit_actions () =
  with_clean @@ fun () ->
  Failpoint.enable "r" Failpoint.Raise;
  (match Failpoint.hit "r" with
  | () -> Alcotest.fail "expected Injected"
  | exception Failpoint.Injected "r" -> ()
  | exception _ -> Alcotest.fail "wrong exception");
  Failpoint.enable "io" Failpoint.Io_error;
  (match Failpoint.hit "io" with
  | () -> Alcotest.fail "expected Sys_error"
  | exception Sys_error _ -> ());
  (* a plain hit site treats Partial_write as an I/O error *)
  Failpoint.enable "pw" Failpoint.Partial_write;
  (match Failpoint.hit "pw" with
  | () -> Alcotest.fail "expected Sys_error"
  | exception Sys_error _ -> ());
  Failpoint.enable "d" (Failpoint.Delay 0.0);
  Failpoint.hit "d" (* must return normally *)

let test_disable_and_clear () =
  with_clean @@ fun () ->
  Failpoint.enable "a" Failpoint.Raise;
  Failpoint.enable "b" Failpoint.Raise;
  Failpoint.disable "a";
  Alcotest.(check bool) "disabled site passive" true (Failpoint.check "a" = None);
  Alcotest.(check bool) "other still armed" true (Failpoint.check "b" <> None);
  Failpoint.clear ();
  Alcotest.(check bool) "clear disarms" false (Failpoint.any_active ())

let test_parse_grammar () =
  with_clean @@ fun () ->
  Alcotest.(check bool) "plain" true (Failpoint.parse "x=raise" = Ok ());
  Alcotest.(check bool) "options" true
    (Failpoint.parse "y=io:after=2:times=1" = Ok ());
  Alcotest.(check bool) "delay" true (Failpoint.parse "z=delay=0.25" = Ok ());
  Alcotest.(check bool) "prob+seed" true
    (Failpoint.parse "w=partial:prob=0.5:seed=7" = Ok ());
  List.iter
    (fun bad ->
      match Failpoint.parse bad with
      | Ok () -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ ""; "noequals"; "x=frobnicate"; "x=raise:after=x"; "x=raise:bogus=1"; "=raise" ];
  (* the parsed schedule actually drives the site *)
  Alcotest.(check bool) "y waits out after=2" true (Failpoint.check "y" = None);
  Alcotest.(check bool) "still waiting" true (Failpoint.check "y" = None);
  Alcotest.(check bool) "fires on third" true (Failpoint.check "y" = Some Failpoint.Io_error);
  Alcotest.(check bool) "times=1 exhausted" true (Failpoint.check "y" = None)

let test_prob_deterministic () =
  with_clean @@ fun () ->
  let run () =
    Failpoint.enable ~prob:0.5 ~seed:42 "p" Failpoint.Raise;
    List.init 64 (fun _ -> Failpoint.check "p" <> None)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, same firing sequence" true (a = b);
  Alcotest.(check bool) "not all-fire" true (List.exists not a);
  Alcotest.(check bool) "not never-fire" true (List.exists Fun.id a);
  Failpoint.enable ~prob:0.5 ~seed:43 "p" Failpoint.Raise;
  let c = List.init 64 (fun _ -> Failpoint.check "p" <> None) in
  Alcotest.(check bool) "different seed, different sequence" true (a <> c)

let test_parse_env () =
  with_clean @@ fun () ->
  (* parse_env with the variable unset is a no-op Ok *)
  Unix.putenv "REPRO_FAILPOINTS" "";
  Alcotest.(check bool) "empty env ok" true (Failpoint.parse_env () = Ok ());
  Unix.putenv "REPRO_FAILPOINTS" "e1=raise:times=1,e2=io";
  Alcotest.(check bool) "list parses" true (Failpoint.parse_env () = Ok ());
  Alcotest.(check bool) "first armed" true (Failpoint.check "e1" <> None);
  Alcotest.(check bool) "second armed" true (Failpoint.check "e2" = Some Failpoint.Io_error);
  Unix.putenv "REPRO_FAILPOINTS" "broken";
  (match Failpoint.parse_env () with
  | Ok () -> Alcotest.fail "expected parse error"
  | Error _ -> ());
  Unix.putenv "REPRO_FAILPOINTS" ""

let suite =
  [
    Alcotest.test_case "disarmed sites are free and silent" `Quick test_disarmed_is_silent;
    Alcotest.test_case "after/times schedule" `Quick test_after_times_schedule;
    Alcotest.test_case "hit actions" `Quick test_hit_actions;
    Alcotest.test_case "disable and clear" `Quick test_disable_and_clear;
    Alcotest.test_case "spec grammar" `Quick test_parse_grammar;
    Alcotest.test_case "probabilistic gate is seeded" `Quick test_prob_deterministic;
    Alcotest.test_case "REPRO_FAILPOINTS parsing" `Quick test_parse_env;
  ]

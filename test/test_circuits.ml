(* Tests for the benchmark generators: validity, determinism, no dangling
   logic, scaling. *)

module N = Dfm_netlist.Netlist
module C = Dfm_circuits.Circuits
module Io = Dfm_netlist.Netlist_io

let test_all_names_build_and_validate () =
  List.iter
    (fun name ->
      let nl = C.build ~scale:0.3 name in
      N.validate nl;
      Alcotest.(check bool) (name ^ " nonempty") true (N.num_gates nl > 20);
      Alcotest.(check bool) (name ^ " has flops") true (N.seq_gates nl <> []);
      Alcotest.(check bool) (name ^ " has outputs") true (Array.length nl.N.pos > 0))
    C.names

let test_twelve_blocks () =
  Alcotest.(check int) "12 blocks" 12 (List.length C.names);
  List.iter
    (fun n -> Alcotest.(check bool) ("table1 name " ^ n) true (List.mem n C.names))
    C.table1_names

let test_deterministic () =
  let a = C.build ~scale:0.3 "tv80" in
  let b = C.build ~scale:0.3 "tv80" in
  Alcotest.(check string) "identical dumps" (Io.to_string a) (Io.to_string b)

let test_scale_monotone () =
  let small = C.build ~scale:0.25 "sparc_exu" in
  let big = C.build ~scale:1.0 "sparc_exu" in
  Alcotest.(check bool) "more gates at bigger scale" true (N.num_gates big > N.num_gates small)

let test_no_dangling_nets () =
  List.iter
    (fun name ->
      let nl = C.build ~scale:0.3 name in
      let po_nets =
        Array.fold_left (fun acc (_, n) -> n :: acc) [] nl.N.pos |> List.sort_uniq compare
      in
      Array.iter
        (fun (nn : N.net) ->
          match nn.N.driver with
          | N.Gate_out _ ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: net %s observable" name nn.N.net_name)
                true
                (nn.N.sinks <> [] || List.mem nn.N.net_id po_nets)
          | N.Pi _ | N.Const _ -> ())
        nl.N.nets)
    [ "tv80"; "sparc_fpu"; "wb_conmax" ]

let test_des_perf_largest () =
  (* The paper's largest block should also be ours. *)
  let sizes = List.map (fun n -> (n, N.num_gates (C.build ~scale:0.3 n))) C.names in
  let des = List.assoc "des_perf" sizes in
  List.iter
    (fun (n, s) -> if n <> "des_perf" then Alcotest.(check bool) (n ^ " smaller") true (s < des))
    sizes

let test_io_roundtrip_block () =
  (* Every block: tv80's two same-width state banks once produced duplicate
     net names that merged into a doubly-driven net on read-back. *)
  List.iter
    (fun name ->
      let nl = C.build ~scale:0.25 name in
      let nl' = Io.read ~library:nl.N.library (Io.to_string nl) in
      Alcotest.(check int) (name ^ " same gates") (N.num_gates nl) (N.num_gates nl');
      N.validate nl';
      Alcotest.(check string)
        (name ^ " stable text")
        (Io.to_string nl) (Io.to_string nl'))
    C.names

let suite =
  [
    Alcotest.test_case "all blocks build" `Slow test_all_names_build_and_validate;
    Alcotest.test_case "twelve blocks" `Quick test_twelve_blocks;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "scale monotone" `Quick test_scale_monotone;
    Alcotest.test_case "no dangling nets" `Quick test_no_dangling_nets;
    Alcotest.test_case "des_perf largest" `Slow test_des_perf_largest;
    Alcotest.test_case "io roundtrip block" `Quick test_io_roundtrip_block;
  ]

(* Tests for dfm_incr: the verdict store (counters, FIFO eviction, disk
   round-trip and corruption recovery), cone signatures (determinism,
   id-independence, locality, parameter sensitivity), the incremental
   resweep, and the end-to-end invariant that a cache never changes a
   classification. *)

module N = Dfm_netlist.Netlist
module B = N.Builder
module Cell = Dfm_netlist.Cell
module F = Dfm_faults.Fault
module Atpg = Dfm_atpg.Atpg
module Rng = Dfm_util.Rng
module Store = Dfm_incr.Store
module Signature = Dfm_incr.Signature
module Invalidate = Dfm_incr.Invalidate
module Cache = Dfm_incr.Cache
module Failpoint = Dfm_util.Failpoint

let lib = Dfm_cellmodel.Osu018.library
let origin = { F.category = Dfm_cellmodel.Defect.Via; guideline_index = 0 }

(* ------------------------------------------------------------------ *)
(* Store: counters and FIFO eviction                                   *)
(* ------------------------------------------------------------------ *)

let test_store_counters () =
  let s = Store.create ~capacity:3 () in
  Store.add s 1L Store.Detected;
  Store.add s 2L Store.Undetectable;
  Store.add s 1L Store.Undetectable;
  (* idempotent: the first verdict wins, no second store *)
  Alcotest.(check int) "stores after dup" 2 (Store.stats s).Store.stores;
  (match Store.find s 1L with
  | Some Store.Detected -> ()
  | _ -> Alcotest.fail "first verdict must win");
  Alcotest.(check bool) "miss" true (Store.find s 5L = None);
  Store.add s 3L Store.Detected;
  Store.add s 4L Store.Detected;
  (* capacity 3: the oldest entry (1L) was evicted *)
  Alcotest.(check int) "mem_size at capacity" 3 (Store.mem_size s);
  Alcotest.(check int) "one eviction" 1 (Store.stats s).Store.evictions;
  Alcotest.(check bool) "evicted FIFO" true (Store.find s 1L = None);
  Alcotest.(check bool) "youngest kept" true (Store.find s 4L = Some Store.Detected);
  let st = Store.stats s in
  Alcotest.(check int) "hits" 2 st.Store.hits;
  Alcotest.(check int) "misses" 2 st.Store.misses;
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Store.hit_rate s)

(* ------------------------------------------------------------------ *)
(* Store: disk tier                                                    *)
(* ------------------------------------------------------------------ *)

let fresh_path () =
  let p = Filename.temp_file "dfm_verdicts" ".bin" in
  Sys.remove p;
  p

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  b

let write_file path b len =
  let oc = open_out_bin path in
  output_bytes oc (Bytes.sub b 0 len);
  close_out oc

let sig_of_i i = Int64.of_int ((i * 7919) + 11)
let verdict_of_i i = if i mod 2 = 0 then Store.Detected else Store.Undetectable

let test_disk_round_trip () =
  let path = fresh_path () in
  let s = Store.create ~path () in
  for i = 0 to 19 do
    Store.add s (sig_of_i i) (verdict_of_i i)
  done;
  Store.close s;
  let s2 = Store.create ~path () in
  let st = Store.stats s2 in
  Alcotest.(check int) "loaded all" 20 st.Store.disk_loaded;
  Alcotest.(check int) "dropped none" 0 st.Store.disk_dropped;
  for i = 0 to 19 do
    Alcotest.(check bool)
      (Printf.sprintf "record %d survives" i)
      true
      (Store.find s2 (sig_of_i i) = Some (verdict_of_i i))
  done;
  Store.close s2;
  Sys.remove path

(* The ISSUE-mandated recovery scenario: write a valid cache file, truncate
   it mid-record AND flip a byte in another record, reopen — the engine
   must log, keep every intact record, drop the damaged ones, and leave a
   well-framed (compacted) file behind. *)
let test_disk_recovery () =
  let path = fresh_path () in
  let s = Store.create ~path () in
  for i = 0 to 19 do
    Store.add s (sig_of_i i) (verdict_of_i i)
  done;
  Store.close s;
  (* layout: 8-byte magic, then 19-byte records (2 len + 9 payload + 8 sum) *)
  let b = read_file path in
  Alcotest.(check int) "expected file size" (8 + (19 * 20)) (Bytes.length b);
  let flip_at = 8 + (19 * 5) + 4 (* inside record 5's signature bytes *) in
  Bytes.set_uint8 b flip_at (Bytes.get_uint8 b flip_at lxor 0xff);
  write_file path b (Bytes.length b - 10) (* truncate mid-record 19 *);
  let logged = ref [] in
  let s2 = Store.create ~path ~log:(fun m -> logged := m :: !logged) () in
  let st = Store.stats s2 in
  Alcotest.(check int) "kept the intact records" 18 st.Store.disk_loaded;
  Alcotest.(check int) "dropped corrupt + truncated" 2 st.Store.disk_dropped;
  Alcotest.(check bool) "recovery was logged" true (!logged <> []);
  Alcotest.(check bool) "corrupt record gone" true (Store.find s2 (sig_of_i 5) = None);
  Alcotest.(check bool) "truncated record gone" true (Store.find s2 (sig_of_i 19) = None);
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "record %d intact" i)
        true
        (Store.find s2 (sig_of_i i) = Some (verdict_of_i i)))
    [ 0; 4; 6; 18 ];
  (* appending after recovery must leave a clean, fully loadable log *)
  Store.add s2 (sig_of_i 100) Store.Undetectable;
  Store.close s2;
  let s3 = Store.create ~path () in
  let st3 = Store.stats s3 in
  Alcotest.(check int) "compacted file loads clean" 19 st3.Store.disk_loaded;
  Alcotest.(check int) "no drops after compaction" 0 st3.Store.disk_dropped;
  Alcotest.(check bool) "post-recovery append survived" true
    (Store.find s3 (sig_of_i 100) = Some Store.Undetectable);
  Store.close s3;
  Sys.remove path

(* A disk-tier write failure mid-campaign must not raise out of [add]:
   the store logs once, drops to memory-only, and keeps serving.  Only
   the records appended before the failure survive a reopen. *)
let test_disk_degrades_to_memory () =
  Failpoint.clear ();
  Fun.protect ~finally:Failpoint.clear @@ fun () ->
  let path = fresh_path () in
  let logged = ref [] in
  let s = Store.create ~path ~log:(fun m -> logged := m :: !logged) () in
  for i = 0 to 4 do
    Store.add s (sig_of_i i) (verdict_of_i i)
  done;
  Failpoint.enable "store.append" Failpoint.Io_error;
  for i = 5 to 9 do
    Store.add s (sig_of_i i) (verdict_of_i i) (* must not raise *)
  done;
  Alcotest.(check bool) "degraded" true (Store.stats s).Store.degraded;
  Alcotest.(check int) "degradation logged exactly once" 1 (List.length !logged);
  (* the memory tier is unaffected: every verdict is still served *)
  for i = 0 to 9 do
    Alcotest.(check bool)
      (Printf.sprintf "verdict %d served memory-only" i)
      true
      (Store.find s (sig_of_i i) = Some (verdict_of_i i))
  done;
  Store.close s;
  Failpoint.clear ();
  let s2 = Store.create ~path () in
  let st = Store.stats s2 in
  Alcotest.(check int) "only pre-failure records persisted" 5 st.Store.disk_loaded;
  Alcotest.(check bool) "post-failure record not on disk" true
    (Store.find s2 (sig_of_i 7) = None);
  Store.close s2;
  Sys.remove path

(* A torn (half-written) record degrades the writer, and the next open
   recovers the intact prefix, drops the torn tail, and compacts so later
   appends land on a well-framed log. *)
let test_disk_partial_write_recovery () =
  Failpoint.clear ();
  Fun.protect ~finally:Failpoint.clear @@ fun () ->
  let path = fresh_path () in
  let s = Store.create ~path () in
  Failpoint.enable ~after:3 "store.append" Failpoint.Partial_write;
  for i = 0 to 5 do
    Store.add s (sig_of_i i) (verdict_of_i i)
  done;
  (* records 0..2 appended cleanly, record 3 was torn mid-write *)
  Alcotest.(check bool) "torn write degrades the store" true
    (Store.stats s).Store.degraded;
  Store.close s;
  Failpoint.clear ();
  let logged = ref [] in
  let s2 = Store.create ~path ~log:(fun m -> logged := m :: !logged) () in
  let st = Store.stats s2 in
  Alcotest.(check int) "intact prefix recovered" 3 st.Store.disk_loaded;
  Alcotest.(check int) "torn tail dropped" 1 st.Store.disk_dropped;
  Alcotest.(check bool) "recovery logged" true (!logged <> []);
  Alcotest.(check bool) "torn record gone" true (Store.find s2 (sig_of_i 3) = None);
  for i = 0 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "record %d intact" i)
      true
      (Store.find s2 (sig_of_i i) = Some (verdict_of_i i))
  done;
  Store.add s2 (sig_of_i 50) Store.Detected;
  Store.close s2;
  let s3 = Store.create ~path () in
  let st3 = Store.stats s3 in
  Alcotest.(check int) "compacted log loads clean" 4 st3.Store.disk_loaded;
  Alcotest.(check int) "no drops after compaction" 0 st3.Store.disk_dropped;
  Store.close s3;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Signatures                                                          *)
(* ------------------------------------------------------------------ *)

(* Two independent cones sharing nothing: an XOR over (a, b) and a second
   gate over (c, d), both observed.  [second] picks that gate's cell. *)
let two_cone_netlist ~pi_order ~second ~xor_first =
  let b = B.create ~name:"cones" lib in
  let pi = Hashtbl.create 4 in
  List.iter (fun name -> Hashtbl.replace pi name (B.add_pi b name)) pi_order;
  let n = Hashtbl.find pi in
  let add_xor () = B.add_gate b ~cell:"XOR2X1" [| n "a"; n "b" |] in
  let add_second () = B.add_gate b ~cell:second [| n "c"; n "d" |] in
  let ox, os =
    if xor_first then
      let ox = add_xor () in
      (ox, add_second ())
    else
      let os = add_second () in
      (add_xor (), os)
  in
  B.mark_po b "ox" ox;
  B.mark_po b "os" os;
  B.finish b

let net_of_cell nl cell =
  let found = ref None in
  Array.iter
    (fun (g : N.gate) -> if g.N.cell.Cell.name = cell then found := Some g.N.fanout)
    nl.N.gates;
  match !found with Some n -> n | None -> Alcotest.fail ("no gate " ^ cell)

let gate_of_cell nl cell =
  let found = ref None in
  Array.iter
    (fun (g : N.gate) -> if g.N.cell.Cell.name = cell then found := Some g.N.gate_id)
    nl.N.gates;
  match !found with Some g -> g | None -> Alcotest.fail ("no gate " ^ cell)

let stuck nl cell pol = { F.fault_id = 0; kind = F.Stuck (F.On_net (net_of_cell nl cell), pol); origin }

let test_signature_id_independence () =
  let params = Signature.default_params () in
  let nl_a = two_cone_netlist ~pi_order:[ "a"; "b"; "c"; "d" ] ~second:"NAND2X1" ~xor_first:true in
  (* same circuit, built in a different order: every gate id, net id and
     auto-generated internal net name differs *)
  let nl_b = two_cone_netlist ~pi_order:[ "c"; "d"; "a"; "b" ] ~second:"NAND2X1" ~xor_first:false in
  (* same construction as nl_a but the second cone's function changed *)
  let nl_c = two_cone_netlist ~pi_order:[ "a"; "b"; "c"; "d" ] ~second:"NOR2X1" ~xor_first:true in
  let sw_a = Signature.sweep nl_a and sw_b = Signature.sweep nl_b and sw_c = Signature.sweep nl_c in
  let sg sw nl cell pol = Signature.of_fault sw ~params (stuck nl cell pol) in
  Alcotest.(check int64) "renumbering-independent (xor cone)"
    (sg sw_a nl_a "XOR2X1" F.Sa0) (sg sw_b nl_b "XOR2X1" F.Sa0);
  Alcotest.(check int64) "renumbering-independent (second cone)"
    (sg sw_a nl_a "NAND2X1" F.Sa1) (sg sw_b nl_b "NAND2X1" F.Sa1);
  Alcotest.(check int64) "locality: untouched cone keeps its signature"
    (sg sw_a nl_a "XOR2X1" F.Sa0) (sg sw_c nl_c "XOR2X1" F.Sa0);
  Alcotest.(check bool) "changed cone changes signature" true
    (sg sw_a nl_a "NAND2X1" F.Sa0 <> sg sw_c nl_c "NOR2X1" F.Sa0);
  Alcotest.(check bool) "polarity is part of the key" true
    (sg sw_a nl_a "XOR2X1" F.Sa0 <> sg sw_a nl_a "XOR2X1" F.Sa1);
  (* internal faults travel too *)
  let internal nl = { F.fault_id = 0; kind = F.Internal (gate_of_cell nl "XOR2X1", 0); origin } in
  Alcotest.(check int64) "internal fault renumbering-independent"
    (Signature.of_fault sw_a ~params (internal nl_a))
    (Signature.of_fault sw_b ~params (internal nl_b))

let test_signature_determinism_and_params () =
  let nl = two_cone_netlist ~pi_order:[ "a"; "b"; "c"; "d" ] ~second:"NAND2X1" ~xor_first:true in
  let sw1 = Signature.sweep nl and sw2 = Signature.sweep nl in
  let params = Signature.default_params () in
  Array.iter
    (fun (nn : N.net) ->
      let f = { F.fault_id = 0; kind = F.Stuck (F.On_net nn.N.net_id, F.Sa0); origin } in
      Alcotest.(check int64)
        (Printf.sprintf "deterministic over net %d" nn.N.net_id)
        (Signature.of_fault sw1 ~params f)
        (Signature.of_fault sw2 ~params f))
    nl.N.nets;
  let f = stuck nl "XOR2X1" F.Sa0 in
  let bounded = Signature.default_params ~max_conflicts:10 () in
  Alcotest.(check bool) "max_conflicts is part of the key" true
    (Signature.of_fault sw1 ~params f <> Signature.of_fault sw1 ~params:bounded f)

(* ------------------------------------------------------------------ *)
(* Incremental resweep                                                 *)
(* ------------------------------------------------------------------ *)

(* Two independent chains; resynthesizing the second must reuse the first
   chain's support hashes and reproduce a full sweep exactly. *)
let chains_netlist () =
  let b = B.create ~name:"chains" lib in
  let a = B.add_pi b "a" and bb = B.add_pi b "b" in
  let c = B.add_pi b "c" and d = B.add_pi b "d" in
  let x1 = B.add_gate b ~cell:"NAND2X1" [| a; bb |] in
  let x2 = B.add_gate b ~cell:"INVX1" [| x1 |] in
  let y1 = B.add_gate b ~cell:"NOR2X1" [| c; d |] in
  let y2 = B.add_gate b ~cell:"XOR2X1" [| y1; c |] in
  B.mark_po b "o1" x2;
  B.mark_po b "o2" y2;
  B.finish b

let all_stuck nl =
  let faults = ref [] in
  let id = ref 0 in
  Array.iter
    (fun (nn : N.net) ->
      List.iter
        (fun pol ->
          faults := { F.fault_id = !id; kind = F.Stuck (F.On_net nn.N.net_id, pol); origin } :: !faults;
          incr id)
        [ F.Sa0; F.Sa1 ])
    nl.N.nets;
  Array.of_list (List.rev !faults)

let test_resweep_matches_full_sweep () =
  let nl = chains_netlist () in
  let region = [ gate_of_cell nl "NOR2X1"; gate_of_cell nl "XOR2X1" ] in
  let nl2 = Dfm_synth.Convert.remap_region nl ~gates:region ~library:lib in
  let sw0 = Signature.sweep nl in
  let incr_sw, st = Invalidate.resweep ~previous:sw0 nl2 in
  let full_sw = Signature.sweep nl2 in
  Alcotest.(check int) "accounts every net" (N.num_nets nl2)
    (st.Invalidate.support_reused + st.Invalidate.support_recomputed);
  Alcotest.(check bool) "untouched chain was reused" true (st.Invalidate.support_reused >= 4);
  Array.iter
    (fun (nn : N.net) ->
      Alcotest.(check int64)
        (Printf.sprintf "support of net %d (%s)" nn.N.net_id nn.N.net_name)
        (Signature.support_hash full_sw nn.N.net_id)
        (Signature.support_hash incr_sw nn.N.net_id))
    nl2.N.nets;
  let params = Signature.default_params () in
  Array.iter
    (fun f ->
      Alcotest.(check int64)
        (Printf.sprintf "fault %d signature" f.F.fault_id)
        (Signature.of_fault full_sw ~params f)
        (Signature.of_fault incr_sw ~params f))
    (all_stuck nl2)

(* ------------------------------------------------------------------ *)
(* Classification with a cache                                         *)
(* ------------------------------------------------------------------ *)

let random_netlist seed npis ngates =
  let rng = Rng.create seed in
  let b = B.create ~name:"rand" lib in
  let nets = ref [] in
  for i = 0 to npis - 1 do
    nets := B.add_pi b (Printf.sprintf "i%d" i) :: !nets
  done;
  let cells = [| "INVX1"; "NAND2X1"; "NOR2X1"; "XOR2X1"; "AOI21X1"; "OAI21X1" |] in
  for _ = 1 to ngates do
    let arr = Array.of_list !nets in
    let cname = Rng.pick rng cells in
    let c = Dfm_netlist.Library.find lib cname in
    let fanins = Array.init (Cell.arity c) (fun _ -> Rng.pick rng arr) in
    nets := B.add_gate b ~cell:cname fanins :: !nets
  done;
  List.iteri (fun i n -> if i < 3 then B.mark_po b (Printf.sprintf "o%d" i) n) !nets;
  B.finish b

let all_faults nl =
  let faults = ref [] in
  let id = ref 0 in
  let add kind =
    faults := { F.fault_id = !id; kind; origin } :: !faults;
    incr id
  in
  Array.iter
    (fun (nn : N.net) ->
      List.iter (fun pol -> add (F.Stuck (F.On_net nn.N.net_id, pol))) [ F.Sa0; F.Sa1 ];
      List.iter
        (fun tr -> add (F.Transition (F.On_net nn.N.net_id, tr)))
        [ F.Slow_to_rise; F.Slow_to_fall ])
    nl.N.nets;
  Array.iteri
    (fun gid (g : N.gate) ->
      Array.iteri
        (fun pin _ ->
          List.iter (fun pol -> add (F.Stuck (F.On_pin (gid, pin), pol))) [ F.Sa0; F.Sa1 ])
        g.N.fanins;
      let u = Dfm_cellmodel.Udfm.for_cell g.N.cell.Cell.name in
      List.iteri
        (fun entry_idx _ -> if entry_idx < 4 then add (F.Internal (gid, entry_idx)))
        u.Dfm_cellmodel.Udfm.entries)
    nl.N.gates;
  Array.of_list (List.rev !faults)

let same_classification name (a : Atpg.classification) (b : Atpg.classification) =
  Alcotest.(check bool) (name ^ ": statuses identical") true (a.Atpg.status = b.Atpg.status);
  let ca = a.Atpg.counts and cb = b.Atpg.counts in
  Alcotest.(check int) (name ^ ": total") ca.Atpg.total cb.Atpg.total;
  Alcotest.(check int) (name ^ ": detected") ca.Atpg.detected cb.Atpg.detected;
  Alcotest.(check int) (name ^ ": undetectable") ca.Atpg.undetectable cb.Atpg.undetectable;
  Alcotest.(check int) (name ^ ": aborted") ca.Atpg.aborted cb.Atpg.aborted;
  Alcotest.(check int) (name ^ ": undetectable_internal") ca.Atpg.undetectable_internal
    cb.Atpg.undetectable_internal;
  Alcotest.(check int) (name ^ ": undetectable_external") ca.Atpg.undetectable_external
    cb.Atpg.undetectable_external

let test_classify_cache_identity () =
  let nl = random_netlist 97 4 12 in
  let faults = all_faults nl in
  let plain = Atpg.classify nl faults in
  let cache = Cache.create () in
  let cold = Atpg.classify ~cache nl faults in
  let warm = Atpg.classify ~cache nl faults in
  let sharded = Atpg.classify ~jobs:2 ~cache nl faults in
  same_classification "cold" plain cold;
  same_classification "warm" plain warm;
  same_classification "jobs=2 warm" plain sharded;
  Alcotest.(check int) "warm run needs no SAT" 0 warm.Atpg.counts.Atpg.sat_queries;
  Alcotest.(check bool) "cache saw hits" true ((Cache.stats cache).Store.hits > 0)

let test_classify_cache_across_replace () =
  let nl = chains_netlist () in
  let cache = Cache.create () in
  let _warmup = Atpg.classify ~cache nl (all_faults nl) in
  let hits_before = (Cache.stats cache).Store.hits in
  let region = [ gate_of_cell nl "NOR2X1"; gate_of_cell nl "XOR2X1" ] in
  let nl2 = Dfm_synth.Convert.remap_region nl ~gates:region ~library:lib in
  let faults2 = all_faults nl2 in
  let plain2 = Atpg.classify nl2 faults2 in
  let warm2 = Atpg.classify ~cache nl2 faults2 in
  same_classification "after replace" plain2 warm2;
  Alcotest.(check bool) "untouched-chain verdicts were served from cache" true
    ((Cache.stats cache).Store.hits > hits_before);
  match Cache.resweep_stats cache with
  | Some st ->
      Alcotest.(check bool) "resweep reused support hashes" true
        (st.Invalidate.support_reused > 0)
  | None -> Alcotest.fail "replace must have gone through the incremental resweep"

let suite =
  [
    Alcotest.test_case "store counters and FIFO eviction" `Quick test_store_counters;
    Alcotest.test_case "disk round trip" `Quick test_disk_round_trip;
    Alcotest.test_case "disk corruption recovery" `Quick test_disk_recovery;
    Alcotest.test_case "disk failure degrades to memory-only" `Quick test_disk_degrades_to_memory;
    Alcotest.test_case "partial write recovered on reopen" `Quick test_disk_partial_write_recovery;
    Alcotest.test_case "signature id-independence and locality" `Quick test_signature_id_independence;
    Alcotest.test_case "signature determinism and params" `Quick test_signature_determinism_and_params;
    Alcotest.test_case "resweep matches full sweep" `Quick test_resweep_matches_full_sweep;
    Alcotest.test_case "classify cache identity" `Quick test_classify_cache_identity;
    Alcotest.test_case "cache survives gate replacement" `Quick test_classify_cache_across_replace;
  ]

(* Lint engine tests.

   Tier A: every structural rule demonstrated on a hand-broken netlist
   (Netlist.t is a transparent record, so invalid graphs are constructible
   even though the Builder never produces them), plus reporter/baseline
   behaviour.

   Tier B: dataflow facts (constants through correlation, observability)
   on known circuits, and the load-bearing differential property: a
   classification run with the static pre-SAT filter must be bit-identical
   (statuses and every count except [sat_queries]) to an unfiltered run,
   across random netlists, random fault lists and both job counts. *)

module N = Dfm_netlist.Netlist
module B = N.Builder
module Cell = Dfm_netlist.Cell
module Library = Dfm_netlist.Library
module F = Dfm_faults.Fault
module Lint = Dfm_lint.Lint
module Df = Dfm_lint.Dataflow
module Atpg = Dfm_atpg.Atpg
module Rng = Dfm_util.Rng

let lib = Dfm_cellmodel.Osu018.library
let origin = { F.category = Dfm_cellmodel.Defect.Via; guideline_index = 0 }

let rule_ids r = List.map (fun f -> f.Lint.rule) r.Lint.findings |> List.sort_uniq compare
let has r id = List.mem id (rule_ids r)

let check_has nl id =
  let r = Lint.check nl in
  Alcotest.(check bool) (id ^ " fires") true (has r id)

let mk_net net_id net_name driver sinks = { N.net_id; net_name; driver; sinks }

let mk_gate gate_id cell fanins fanout =
  {
    N.gate_id;
    gate_name = Printf.sprintf "g%d" gate_id;
    cell = Library.find lib cell;
    fanins;
    fanout;
  }

(* ------------------------------------------------------------------ *)
(* Tier A on hand-made netlists                                        *)
(* ------------------------------------------------------------------ *)

let test_clean () =
  let b = B.create ~name:"clean" lib in
  let a = B.add_pi b "a" in
  let c = B.add_pi b "c" in
  let n = B.add_gate b ~cell:"NAND2X1" [| a; c |] in
  B.mark_po b "y" n;
  let r = Lint.check (B.finish b) in
  Alcotest.(check int) "no findings" 0 (List.length r.Lint.findings)

(* Two inverters feeding each other: n1 = INV n2, n2 = INV n1.  All
   references are consistent, so only the loop rule fires (plus the
   floating-PI warning for the unused input). *)
let loop_netlist () =
  {
    N.name = "loop";
    library = lib;
    pis = [| ("a", 0) |];
    pos = [| ("y", 2) |];
    gates = [| mk_gate 0 "INVX1" [| 2 |] 1; mk_gate 1 "INVX1" [| 1 |] 2 |];
    nets =
      [|
        mk_net 0 "a" (N.Pi 0) [];
        mk_net 1 "n1" (N.Gate_out 0) [ (1, 0) ];
        mk_net 2 "n2" (N.Gate_out 1) [ (0, 0) ];
      |];
  }

let test_comb_loop () =
  let r = Lint.check (loop_netlist ()) in
  Alcotest.(check bool) "L001 fires" true (has r "L001");
  Alcotest.(check bool) "errors nonempty" true (Lint.errors r <> [])

let test_multi_driven () =
  let nl =
    {
      N.name = "multi";
      library = lib;
      pis = [| ("a", 0) |];
      pos = [| ("y", 1) |];
      gates = [| mk_gate 0 "INVX1" [| 0 |] 1; mk_gate 1 "INVX1" [| 0 |] 1 |];
      nets =
        [|
          mk_net 0 "a" (N.Pi 0) [ (0, 0); (1, 0) ];
          mk_net 1 "n" (N.Gate_out 0) [];
        |];
    }
  in
  check_has nl "L002"

let test_broken_reference () =
  let nl =
    {
      N.name = "broken";
      library = lib;
      pis = [| ("a", 0) |];
      pos = [| ("y", 1) |];
      gates = [| mk_gate 0 "INVX1" [| 7 |] 1 |];
      nets = [| mk_net 0 "a" (N.Pi 0) [ (0, 0) ]; mk_net 1 "n" (N.Gate_out 0) [] |];
    }
  in
  check_has nl "L003"

let test_unknown_cell () =
  let fake = { (Library.find lib "INVX1") with Cell.name = "NOPE9" } in
  let nl =
    {
      N.name = "unknown";
      library = lib;
      pis = [| ("a", 0) |];
      pos = [| ("y", 1) |];
      gates = [| { (mk_gate 0 "INVX1" [| 0 |] 1) with N.cell = fake } |];
      nets = [| mk_net 0 "a" (N.Pi 0) [ (0, 0) ]; mk_net 1 "n" (N.Gate_out 0) [] |];
    }
  in
  check_has nl "L004"

let test_arity_mismatch () =
  let nl =
    {
      N.name = "arity";
      library = lib;
      pis = [| ("a", 0) |];
      pos = [| ("y", 1) |];
      gates = [| mk_gate 0 "NAND2X1" [| 0 |] 1 |];
      nets = [| mk_net 0 "a" (N.Pi 0) [ (0, 0) ]; mk_net 1 "n" (N.Gate_out 0) [] |];
    }
  in
  check_has nl "L005"

let test_warnings_on_built_netlist () =
  let b = B.create ~name:"warn" lib in
  let a = B.add_pi b "a" in
  let _floating = B.add_pi b "unused" in
  let k = B.const_net b true in
  let dangling = B.add_gate b ~cell:"NAND2X1" [| a; k |] in
  ignore dangling;
  let po = B.add_gate b ~cell:"INVX1" [| a |] in
  B.mark_po b "y" po;
  let r = Lint.check (B.finish b) in
  Alcotest.(check bool) "L006 dangling" true (has r "L006");
  Alcotest.(check bool) "L007 floating pi" true (has r "L007");
  Alcotest.(check bool) "L008 const fed" true (has r "L008");
  Alcotest.(check bool) "no errors" true (Lint.errors r = [])

let test_fanout_limit () =
  let b = B.create ~name:"fan" lib in
  let a = B.add_pi b "a" in
  let outs = List.init 3 (fun _ -> B.add_gate b ~cell:"INVX1" [| a |]) in
  List.iteri (fun i n -> B.mark_po b (Printf.sprintf "y%d" i) n) outs;
  let nl = B.finish b in
  let config = { Lint.default_config with Lint.fanout_limit = 2 } in
  let r = Lint.check ~config nl in
  Alcotest.(check bool) "L009 fires at limit 2" true (has r "L009");
  let r16 = Lint.check nl in
  Alcotest.(check bool) "quiet at default limit" false (has r16 "L009")

let test_unobservable_and_const () =
  let b = B.create ~name:"tierb" lib in
  let a = B.add_pi b "a" in
  (* XOR(a, a) is constant 0 (L011); feeding it onward keeps the chain
     sinked but never observed (L010 on the first gate, L006 on the last). *)
  let z = B.add_gate b ~cell:"XOR2X1" [| a; a |] in
  let _dead = B.add_gate b ~cell:"INVX1" [| z |] in
  let po = B.add_gate b ~cell:"INVX1" [| a |] in
  B.mark_po b "y" po;
  let r = Lint.check (B.finish b) in
  Alcotest.(check bool) "L010 unobservable" true (has r "L010");
  Alcotest.(check bool) "L011 proven const" true (has r "L011")

let test_rule_restriction () =
  let config = { Lint.default_config with Lint.rules = Some [ "L001" ] } in
  let r = Lint.check ~config (loop_netlist ()) in
  Alcotest.(check (list string)) "only L001" [ "L001" ] (rule_ids r)

(* ------------------------------------------------------------------ *)
(* Reporters and baseline                                              *)
(* ------------------------------------------------------------------ *)

let test_json () =
  let r = Lint.check (loop_netlist ()) in
  let j = Lint.to_json r in
  List.iter
    (fun needle ->
      let found =
        let ln = String.length needle and lj = String.length j in
        let rec go i = i + ln <= lj && (String.sub j i ln = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("json contains " ^ needle) true found)
    [ "\"netlist\":\"loop\""; "\"rule\":\"L001\""; "\"severity\":\"error\"" ]

let test_baseline_roundtrip () =
  let r = Lint.check (loop_netlist ()) in
  Alcotest.(check bool) "has findings" true (r.Lint.findings <> []);
  let base = Lint.baseline_of_string (Lint.baseline_of_report r) in
  let kept, suppressed = Lint.suppress base r in
  Alcotest.(check int) "all suppressed" 0 (List.length kept.Lint.findings);
  Alcotest.(check int) "suppressed count" (List.length r.Lint.findings)
    (List.length suppressed);
  let kept2, _ = Lint.suppress Lint.empty_baseline r in
  Alcotest.(check int) "empty baseline keeps all" (List.length r.Lint.findings)
    (List.length kept2.Lint.findings)

let test_regressions () =
  let before = Lint.check (B.finish (let b = B.create ~name:"x" lib in
                                     let a = B.add_pi b "a" in
                                     B.mark_po b "y" (B.add_gate b ~cell:"INVX1" [| a |]);
                                     b)) in
  let after = Lint.check (loop_netlist ()) in
  Alcotest.(check bool) "clean -> broken regresses" true
    (Lint.regressions ~before ~after <> []);
  Alcotest.(check bool) "broken -> clean does not" true
    (Lint.regressions ~before:after ~after:before = []);
  Alcotest.(check bool) "identical does not" true
    (Lint.regressions ~before:after ~after = [])

(* ------------------------------------------------------------------ *)
(* Tier B dataflow facts                                               *)
(* ------------------------------------------------------------------ *)

let test_dataflow_constants () =
  let b = B.create ~name:"df" lib in
  let a = B.add_pi b "a" in
  let k0 = B.const_net b false in
  let z1 = B.add_gate b ~cell:"AND2X2" [| a; k0 |] in  (* 0 *)
  let z2 = B.add_gate b ~cell:"XOR2X1" [| a; a |] in   (* 0, via correlation *)
  let na = B.add_gate b ~cell:"INVX1" [| a |] in
  let z3 = B.add_gate b ~cell:"NAND2X1" [| a; na |] in (* 1: a & !a = 0 *)
  let live = B.add_gate b ~cell:"NOR2X1" [| a; na |] in (* 0: a | !a = 1 *)
  List.iteri
    (fun i n -> B.mark_po b (Printf.sprintf "y%d" i) n)
    [ z1; z2; z3; live ];
  let nl = B.finish b in
  let df = Df.analyze nl in
  Alcotest.(check bool) "and w/ const0 is 0" true (Df.value df z1 = Df.V0);
  Alcotest.(check bool) "xor(a,a) is 0" true (Df.value df z2 = Df.V0);
  Alcotest.(check bool) "nand(a,!a) is 1" true (Df.value df z3 = Df.V1);
  Alcotest.(check bool) "nor(a,!a) is 0" true (Df.value df live = Df.V0);
  Alcotest.(check bool) "pi unknown" true (Df.value df a = Df.VX)

let test_dataflow_observability () =
  let b = B.create ~name:"obs" lib in
  let a = B.add_pi b "a" in
  let seen = B.add_gate b ~cell:"INVX1" [| a |] in
  let hidden = B.add_gate b ~cell:"INVX1" [| seen |] in
  B.mark_po b "y" seen;
  let nl = B.finish b in
  let df = Df.analyze nl in
  Alcotest.(check bool) "po observable" true (Df.observable df seen);
  Alcotest.(check bool) "pi reaches obs" true (Df.reaches_observable df a);
  Alcotest.(check bool) "dangling does not" false (Df.reaches_observable df hidden)

(* The one-hot mechanism of the benchmark generators in miniature: two
   mutually exclusive decoder lines into a NAND; its both-ones UDFM
   activations are unreachable and must be proven undetectable. *)
let test_dataflow_onehot_internal () =
  let b = B.create ~name:"onehot" lib in
  let s = B.add_pi b "s" in
  let d = B.add_pi b "d" in
  let ns = B.add_gate b ~cell:"INVX1" [| s |] in
  let hot0 = B.add_gate b ~cell:"AND2X2" [| s; d |] in
  let hot1 = B.add_gate b ~cell:"AND2X2" [| ns; d |] in
  let g = B.add_gate b ~cell:"NAND2X1" [| hot0; hot1 |] in
  B.mark_po b "y" g;
  let nl = B.finish b in
  let gid = match (N.net nl g).N.driver with N.Gate_out i -> i | _ -> assert false in
  let df = Df.analyze nl in
  let u = Dfm_cellmodel.Udfm.for_cell "NAND2X1" in
  let entries = List.mapi (fun i e -> (i, e.Dfm_cellmodel.Udfm.activation)) u.Dfm_cellmodel.Udfm.entries in
  let both_ones = List.filter (fun (_, act) -> act = [ 3 ]) entries in
  Alcotest.(check bool) "both-ones entries exist" true (both_ones <> []);
  List.iter
    (fun (idx, _) ->
      let f = { F.fault_id = 0; kind = F.Internal (gid, idx); origin } in
      Alcotest.(check bool) "one-hot internal fault filtered" true
        (Df.prove_undetectable df f))
    both_ones;
  (* Sanity: a reachable activation must NOT be filtered. *)
  List.iter
    (fun (idx, act) ->
      if List.exists (fun m -> m <> 3) act then
        let f = { F.fault_id = 0; kind = F.Internal (gid, idx); origin } in
        Alcotest.(check bool) "reachable activation kept" false
          (Df.prove_undetectable df f))
    entries

(* ------------------------------------------------------------------ *)
(* Differential soundness property                                     *)
(* ------------------------------------------------------------------ *)

(* Random netlists seeded with the shapes the filter reasons about:
   constant drivers, duplicated fanins (the generator picks nets with
   replacement) and occasional flip-flops. *)
let random_netlist seed npis ngates =
  let rng = Rng.create seed in
  let b = B.create ~name:"lintprop" lib in
  let nets = ref [] in
  for i = 0 to npis - 1 do
    nets := B.add_pi b (Printf.sprintf "i%d" i) :: !nets
  done;
  nets := B.const_net b false :: B.const_net b true :: !nets;
  let cells =
    [| "INVX1"; "NAND2X1"; "NOR2X1"; "XOR2X1"; "XNOR2X1"; "AND2X2"; "AOI21X1"; "OAI21X1"; "MUX2X1" |]
  in
  let dff = Dfm_cellmodel.Osu018.dff_name in
  for _ = 1 to ngates do
    let arr = Array.of_list !nets in
    let cname = if Rng.chance rng 0.12 then dff else Rng.pick rng cells in
    let c = Library.find lib cname in
    let fanins = Array.init (Cell.arity c) (fun _ -> Rng.pick rng arr) in
    nets := B.add_gate b ~cell:cname fanins :: !nets
  done;
  List.iteri (fun i n -> if i < 4 then B.mark_po b (Printf.sprintf "o%d" i) n) !nets;
  B.finish b

(* Every fault kind over the netlist, capped per category. *)
let fault_list rng nl =
  let faults = ref [] in
  let id = ref 0 in
  let push kind =
    faults := { F.fault_id = !id; kind; origin } :: !faults;
    incr id
  in
  Array.iter
    (fun (nn : N.net) ->
      push (F.Stuck (F.On_net nn.N.net_id, F.Sa0));
      push (F.Stuck (F.On_net nn.N.net_id, F.Sa1));
      if Rng.chance rng 0.3 then begin
        push (F.Transition (F.On_net nn.N.net_id, F.Slow_to_rise));
        push (F.Transition (F.On_net nn.N.net_id, F.Slow_to_fall))
      end)
    nl.N.nets;
  Array.iter
    (fun (g : N.gate) ->
      let pin = Rng.int rng (Array.length g.N.fanins) in
      push (F.Stuck (F.On_pin (g.N.gate_id, pin), F.Sa0));
      push (F.Stuck (F.On_pin (g.N.gate_id, pin), F.Sa1));
      let u = Dfm_cellmodel.Udfm.for_cell g.N.cell.Cell.name in
      List.iteri
        (fun idx _ -> if idx < 4 then push (F.Internal (g.N.gate_id, idx)))
        u.Dfm_cellmodel.Udfm.entries)
    nl.N.gates;
  let nn = N.num_nets nl in
  for _ = 1 to 5 do
    let n1 = Rng.int rng nn and n2 = Rng.int rng nn in
    if n1 <> n2 then
      push (F.Bridge (n1, n2, if Rng.chance rng 0.5 then F.Wired_and else F.Wired_or))
  done;
  Array.of_list (List.rev !faults)

let counts_sans_sat_queries (c : Atpg.counts) =
  (c.Atpg.total, c.Atpg.detected, c.Atpg.undetectable, c.Atpg.aborted,
   c.Atpg.undetectable_internal, c.Atpg.undetectable_external)

let total_filtered = ref 0

let prop_filter_is_invisible =
  QCheck.Test.make ~name:"static filter never changes a verdict" ~count:12
    QCheck.(pair (int_range 1 100000) (int_range 8 35))
    (fun (seed, ngates) ->
      let nl = random_netlist seed 5 ngates in
      let rng = Rng.create (seed + 7) in
      let faults = fault_list rng nl in
      let df = Df.analyze nl in
      let filter = Df.prove_undetectable df in
      total_filtered :=
        !total_filtered + Array.length (Array.of_seq (Seq.filter filter (Array.to_seq faults)));
      let plain = Atpg.classify ~jobs:1 nl faults in
      let filtered = Atpg.classify ~jobs:1 ~static_filter:filter nl faults in
      let filtered4 = Atpg.classify ~jobs:4 ~static_filter:filter nl faults in
      plain.Atpg.status = filtered.Atpg.status
      && counts_sans_sat_queries plain.Atpg.counts
         = counts_sans_sat_queries filtered.Atpg.counts
      && filtered.Atpg.counts.Atpg.sat_queries <= plain.Atpg.counts.Atpg.sat_queries
      && filtered4.Atpg.status = filtered.Atpg.status
      && filtered4.Atpg.counts = filtered.Atpg.counts)

(* Gate replacements on top: remapping a region (what the resynthesis loop
   does) must preserve the invariant on the rewritten netlist too. *)
let prop_filter_after_replacement =
  QCheck.Test.make ~name:"static filter invisible after region remap" ~count:6
    QCheck.(pair (int_range 1 100000) (int_range 12 30))
    (fun (seed, ngates) ->
      let nl = random_netlist seed 5 ngates in
      let comb = N.comb_gates nl in
      QCheck.assume (List.length comb >= 2);
      let rng = Rng.create (seed lxor 0x5EED) in
      let region =
        List.filteri (fun i _ -> i < 1 + Rng.int rng 3) (List.map (fun g -> g.N.gate_id) comb)
      in
      let nl' =
        try
          Dfm_synth.Convert.remap_region ~goal:`Area ~sweep:true nl ~gates:region
            ~library:lib
        with Dfm_synth.Mapper.Unmappable _ -> nl
      in
      let faults = fault_list rng nl' in
      let df = Df.analyze nl' in
      let filter = Df.prove_undetectable df in
      let plain = Atpg.classify ~jobs:1 nl' faults in
      let filtered = Atpg.classify ~jobs:1 ~static_filter:filter nl' faults in
      plain.Atpg.status = filtered.Atpg.status
      && counts_sans_sat_queries plain.Atpg.counts
         = counts_sans_sat_queries filtered.Atpg.counts)

let test_filter_fires_on_corpus () =
  Alcotest.(check bool) "filter proved >0 faults across random corpus" true
    (!total_filtered > 0)

let suite =
  [
    Alcotest.test_case "clean netlist" `Quick test_clean;
    Alcotest.test_case "L001 comb loop" `Quick test_comb_loop;
    Alcotest.test_case "L002 multi-driven" `Quick test_multi_driven;
    Alcotest.test_case "L003 broken reference" `Quick test_broken_reference;
    Alcotest.test_case "L004 unknown cell" `Quick test_unknown_cell;
    Alcotest.test_case "L005 arity mismatch" `Quick test_arity_mismatch;
    Alcotest.test_case "L006/L007/L008 warnings" `Quick test_warnings_on_built_netlist;
    Alcotest.test_case "L009 fanout limit" `Quick test_fanout_limit;
    Alcotest.test_case "L010/L011 tier-B rules" `Quick test_unobservable_and_const;
    Alcotest.test_case "rule restriction" `Quick test_rule_restriction;
    Alcotest.test_case "json reporter" `Quick test_json;
    Alcotest.test_case "baseline roundtrip" `Quick test_baseline_roundtrip;
    Alcotest.test_case "regressions" `Quick test_regressions;
    Alcotest.test_case "dataflow constants" `Quick test_dataflow_constants;
    Alcotest.test_case "dataflow observability" `Quick test_dataflow_observability;
    Alcotest.test_case "one-hot internal faults" `Quick test_dataflow_onehot_internal;
    QCheck_alcotest.to_alcotest prop_filter_is_invisible;
    QCheck_alcotest.to_alcotest prop_filter_after_replacement;
    Alcotest.test_case "filter fires on corpus" `Quick test_filter_fires_on_corpus;
  ]

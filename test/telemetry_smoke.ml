(* Loopback smoke for the live-telemetry tier, driving the real CLI
   executable as a subprocess.  Four guarantees from the telemetry
   acceptance list:

   1. Transparency under streaming: with a span follower attached and a
      metrics subscriber polling, two concurrent tenants' analyze jobs
      (worker caps 1 and 4) still report byte-identically to the one-shot
      CLI.
   2. Per-tenant attribution reaches live subscribers: a streamed metrics
      frame carries tenant-labelled series.
   3. `trace --follow` produces a Chrome/Perfetto-loadable file (the dune
      rule validates it with obs_validate --complete afterwards).
   4. Flight recorder: cancelling a job mid-resynthesis dumps a
      post-mortem pair under the daemon state dir whose text names the
      cancelled job and the failing span stack; the `flight-dump`
      subcommand and SIGUSR2 both produce further dumps on demand.

   Usage: telemetry_smoke CLI_EXE NETLIST_FILE *)

module Client = Dfm_serve.Client
module Protocol = Dfm_serve.Protocol

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s\n%!" s)
    fmt

let pass fmt = Printf.ksprintf (fun s -> Printf.printf "ok   %s\n%!" s) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let sock_path tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "dfm_tel_%d_%s.sock" (Unix.getpid ()) tag)

let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0

let spawn exe args ~log =
  let out = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  let pid = Unix.create_process exe (Array.of_list (exe :: args)) devnull out out in
  Unix.close out;
  pid

let wait_exit pid =
  match snd (Unix.waitpid [] pid) with
  | Unix.WEXITED n -> n
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> -1

(* Bounded wait: Some exit-code if the child finished in time, None if it
   had to be killed. *)
let wait_exit_deadline pid ~seconds =
  let deadline = Unix.gettimeofday () +. seconds in
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (wait_exit pid);
          None
        end
        else begin
          Unix.sleepf 0.1;
          go ()
        end
    | _, Unix.WEXITED n -> Some n
    | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> Some (-1)
  in
  go ()

let wait_ready sock =
  let rec go n =
    if n = 0 then failwith ("daemon never became ready on " ^ sock)
    else
      match Client.connect sock with
      | Ok c ->
          Client.close c;
          ()
      | Error _ ->
          Unix.sleepf 0.05;
          go (n - 1)
  in
  go 200

let start_daemon exe ~sock ~state ~log =
  let pid = spawn exe [ "serve"; "--socket"; sock; "--state-dir"; state; "-j"; "2" ] ~log in
  wait_ready sock;
  pid

let stop_daemon ~sock ~pid =
  (match Client.connect sock with
  | Ok c ->
      (match Client.request c Protocol.Drain with
      | Ok (Protocol.Drained _) -> ()
      | Ok _ | Error _ -> ());
      Client.close c
  | Error _ -> ());
  ignore (wait_exit pid)

let submit ?(jobs = 1) ~kind ~client ~name ~netlist sock =
  match Client.connect sock with
  | Error e -> Error e
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Client.submit_and_wait c
            Protocol.
              {
                client;
                kind;
                name;
                netlist;
                limits = { Protocol.no_limits with jobs = Some jobs };
                static_filter = false;
                sat_mode = None;
                q_max = None;
                p1 = None;
              })

let dump_files state =
  let dir = Filename.concat state "flightrec" in
  if Sys.file_exists dir then
    Array.to_list (Sys.readdir dir) |> List.map (Filename.concat dir)
  else []

let dump_texts state =
  List.filter (fun f -> Filename.check_suffix f ".txt") (dump_files state)

let () =
  if Array.length Sys.argv <> 3 then begin
    prerr_endline "usage: telemetry_smoke CLI_EXE NETLIST_FILE";
    exit 2
  end;
  let exe = Sys.argv.(1) and netlist_file = Sys.argv.(2) in
  let netlist_text = read_file netlist_file in

  (* ---- reference: the one-shot CLI with no daemon, no telemetry ----- *)
  let rc =
    wait_exit
      (spawn exe [ "analyze"; netlist_file; "--jobs"; "1"; "--report"; "tel_oneshot.rep" ]
         ~log:"tel_oneshot.log")
  in
  if rc <> 0 then fail "one-shot analyze exited %d" rc;
  let reference = read_file "tel_oneshot.rep" in

  (* ---- 1-3. streaming daemon: follower + subscriber + two tenants --- *)
  let sock1 = sock_path "stream" in
  let pid1 = start_daemon exe ~sock:sock1 ~state:"tel_state1" ~log:"tel_daemon1.log" in
  (* the follower subscribes first, which turns span collection on before
     any job starts — its file must capture the campaigns that follow *)
  let tracer =
    spawn exe
      [ "trace"; "tel_trace.json"; "--follow"; "--batches"; "2"; "--socket"; sock1 ]
      ~log:"tel_trace_cli.log"
  in
  Unix.sleepf 0.3;
  let metrics_frames = ref [] in
  let metrics_thread =
    Thread.create
      (fun () ->
        match Client.connect sock1 with
        | Error e -> fail "metrics subscriber connect: %s" e
        | Ok c ->
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                match
                  Client.subscribe_telemetry c
                    {
                      Protocol.t_spans = false;
                      t_metrics = true;
                      t_families = [ "dfm_" ];
                      t_interval_ms = Some 200;
                    }
                with
                | Error e -> fail "metrics subscribe: %s" e
                | Ok () ->
                    (* collect frames until one shows tenant attribution or
                       we have seen plenty *)
                    let rec go n =
                      if n > 0 then
                        match Client.next_telemetry c with
                        | Error e -> fail "metrics stream: %s" e
                        | Ok ("metrics", data) ->
                            metrics_frames := data :: !metrics_frames;
                            if not (contains data "tenant=\"") then go (n - 1)
                        | Ok _ -> go n
                    in
                    go 100))
      ()
  in
  let outcomes = Hashtbl.create 4 in
  let m = Mutex.create () in
  let job_threads =
    List.map
      (fun (tenant, jobs) ->
        Thread.create
          (fun () ->
            let r =
              submit ~jobs ~kind:Protocol.Analyze ~client:tenant ~name:netlist_file
                ~netlist:netlist_text sock1
            in
            Mutex.protect m (fun () -> Hashtbl.replace outcomes tenant r))
          ())
      [ ("alpha", 1); ("bravo", 4) ]
  in
  List.iter Thread.join job_threads;
  List.iter
    (fun tenant ->
      match Hashtbl.find_opt outcomes tenant with
      | Some (Ok r) when r.Protocol.r_outcome = "done" ->
          if String.equal r.Protocol.r_report reference then
            pass "tenant %s report byte-identical to one-shot under live streaming" tenant
          else fail "tenant %s report differs under live streaming" tenant
      | Some (Ok r) -> fail "tenant %s outcome %s" tenant r.Protocol.r_outcome
      | Some (Error e) -> fail "tenant %s: %s" tenant e
      | None -> fail "tenant %s never reported" tenant)
    [ "alpha"; "bravo" ];
  Thread.join metrics_thread;
  if List.exists (fun f -> contains f "tenant=\"alpha\"") !metrics_frames then
    pass "streamed metrics frames carry tenant attribution (%d frames)"
      (List.length !metrics_frames)
  else fail "no streamed metrics frame carried a tenant label";
  (* small campaigns can finish inside one 0.25s pump window, giving the
     follower a single batch; feed it more work until it has both *)
  let tracer_status = ref None in
  let rec feed n =
    match Unix.waitpid [ Unix.WNOHANG ] tracer with
    | 0, _ ->
        if n > 0 then begin
          ignore
            (submit ~jobs:1 ~kind:Protocol.Analyze ~client:"charlie" ~name:netlist_file
               ~netlist:netlist_text sock1);
          Unix.sleepf 0.5;
          feed (n - 1)
        end
    | _, st -> tracer_status := Some st
  in
  feed 6;
  (match !tracer_status with
  | Some (Unix.WEXITED 0) -> pass "trace --follow collected its span batches and exited 0"
  | Some _ -> fail "trace --follow exited abnormally"
  | None -> (
      match wait_exit_deadline tracer ~seconds:15. with
      | Some 0 -> pass "trace --follow collected its span batches and exited 0"
      | Some n -> fail "trace --follow exited %d" n
      | None -> fail "trace --follow never finished (killed)"));
  let trace = try read_file "tel_trace.json" with Sys_error e -> fail "trace file: %s" e; "" in
  if contains trace "\"ph\":\"X\"" && contains trace "{\"traceEvents\":[" then
    pass "followed trace file is a Chrome trace of complete events"
  else fail "followed trace file malformed";

  (* on-demand dumps: the flight-dump subcommand, then SIGUSR2 *)
  let before = List.length (dump_files "tel_state1") in
  let rc = wait_exit (spawn exe [ "flight-dump"; "--socket"; sock1 ] ~log:"tel_dump_cli.log") in
  if rc = 0 && List.length (dump_files "tel_state1") > before then
    pass "flight-dump subcommand produced a dump pair"
  else fail "flight-dump subcommand failed (exit %d, %d -> %d files)" rc before
      (List.length (dump_files "tel_state1"));
  let before = List.length (dump_files "tel_state1") in
  Unix.kill pid1 Sys.sigusr2;
  let rec poll n =
    if List.length (dump_files "tel_state1") > before then
      pass "SIGUSR2 produced a dump pair"
    else if n = 0 then
      fail "SIGUSR2 produced no dump"
    else begin
      Unix.sleepf 0.2;
      poll (n - 1)
    end
  in
  poll 25;
  stop_daemon ~sock:sock1 ~pid:pid1;

  (* ---- 4. cancel mid-resynthesis -> automatic flight dump ----------- *)
  let spu =
    Dfm_netlist.Netlist_io.to_string (Dfm_circuits.Circuits.build ~scale:0.4 "sparc_spu")
  in
  let sock2 = sock_path "cancel" in
  let pid2 = start_daemon exe ~sock:sock2 ~state:"tel_state2" ~log:"tel_daemon2.log" in
  let victim = ref (Error "never ran") in
  let th =
    Thread.create
      (fun () ->
        victim :=
          submit ~jobs:2 ~kind:Protocol.Resynth ~client:"kilo" ~name:"sparc_spu"
            ~netlist:spu sock2)
      ()
  in
  Unix.sleepf 1.0;
  (match Client.connect sock2 with
  | Error e -> fail "cancel connect: %s" e
  | Ok c ->
      (match Client.request c (Protocol.Cancel "J1") with
      | Ok Protocol.Ok_resp -> ()
      | Ok (Protocol.Error_msg e) -> fail "cancel: %s" e
      | Ok _ -> fail "cancel: unexpected response"
      | Error e -> fail "cancel: %s" e);
      Client.close c);
  Thread.join th;
  (match !victim with
  | Ok r when r.Protocol.r_outcome = "cancelled" ->
      pass "resynth job cancelled mid-campaign"
  | Ok r -> fail "cancelled job reported outcome %s" r.Protocol.r_outcome
  | Error e -> fail "cancelled job: %s" e);
  let rec wait_dump n =
    match dump_texts "tel_state2" with
    | [] ->
        if n = 0 then begin
          fail "no flight dump after cancelling a running job";
          []
        end
        else begin
          Unix.sleepf 0.2;
          wait_dump (n - 1)
        end
    | files -> files
  in
  (match wait_dump 50 with
  | [] -> ()
  | files ->
      let text = String.concat "\n" (List.map read_file files) in
      if contains text "J1 cancelled" then pass "dump names the cancelled job"
      else fail "dump does not name the cancelled job";
      if contains text "failing span stack" && contains text "serve.job" then
        pass "dump contains the failing span stack"
      else fail "dump lacks the failing span stack");
  stop_daemon ~sock:sock2 ~pid:pid2;

  if !failures > 0 then begin
    Printf.printf "telemetry_smoke: %d failure(s)\n%!" !failures;
    exit 1
  end;
  print_endline "telemetry_smoke: all checks passed"

(* Tests for dfm_netlist: builder, validation, adjacency (Fig. 1 of the
   paper), IO round-trips, extract/replace, equivalence checking. *)

module N = Dfm_netlist.Netlist
module B = N.Builder
module Cell = Dfm_netlist.Cell
module Library = Dfm_netlist.Library
module Io = Dfm_netlist.Netlist_io
module Equiv = Dfm_netlist.Equiv

let lib = Dfm_cellmodel.Osu018.library

let small_comb () =
  let b = B.create ~name:"small" lib in
  let a = B.add_pi b "a" in
  let c = B.add_pi b "c" in
  let n1 = B.add_gate b ~cell:"NAND2X1" [| a; c |] in
  let n2 = B.add_gate b ~cell:"INVX1" [| n1 |] in
  B.mark_po b "y" n2;
  B.finish b

let sequential_loop () =
  (* A 2-bit counter-ish loop through flip-flops. *)
  let b = B.create ~name:"seqloop" lib in
  let en = B.add_pi b "en" in
  let q0 = B.declare_net b "q0" in
  let q1 = B.declare_net b "q1" in
  let d0 = B.add_gate b ~cell:"XOR2X1" [| q0; en |] in
  let d1 = B.add_gate b ~cell:"XOR2X1" [| q1; q0 |] in
  B.add_gate_driving b ~cell:"DFFPOSX1" [| d0 |] q0;
  B.add_gate_driving b ~cell:"DFFPOSX1" [| d1 |] q1;
  B.mark_po b "o0" q0;
  B.mark_po b "o1" q1;
  B.finish b

let test_builder_basics () =
  let t = small_comb () in
  Alcotest.(check int) "gates" 2 (N.num_gates t);
  Alcotest.(check int) "nets" 4 (N.num_nets t);
  Alcotest.(check int) "pis" 2 (Array.length t.N.pis);
  N.validate t

let test_builder_rejects_bad_arity () =
  let b = B.create ~name:"bad" lib in
  let a = B.add_pi b "a" in
  Alcotest.check_raises "pin count"
    (Invalid_argument "Builder.add_gate NAND2X1: expected 2 pins, got 1")
    (fun () -> ignore (B.add_gate b ~cell:"NAND2X1" [| a |]))

let test_builder_rejects_undriven () =
  let b = B.create ~name:"undriven" lib in
  let a = B.add_pi b "a" in
  let hole = B.declare_net b "hole" in
  let y = B.add_gate b ~cell:"NAND2X1" [| a; hole |] in
  B.mark_po b "y" y;
  (try
     ignore (B.finish b);
     Alcotest.fail "expected failure"
   with Failure msg ->
     Alcotest.(check bool) "mentions driver" true
       (String.length msg > 0 && String.lowercase_ascii msg <> ""))

let test_sequential_loop () =
  let t = sequential_loop () in
  Alcotest.(check int) "seq gates" 2 (List.length (N.seq_gates t));
  (* Controllable points: PI + 2 flop outputs. *)
  Alcotest.(check int) "inputs" 3 (List.length (N.input_nets t));
  Alcotest.(check int) "observes" 4 (List.length (N.observe_nets t));
  (* topo order covers only the combinational gates *)
  Alcotest.(check int) "topo comb only" 2 (Array.length (N.topo_order t))

let test_const_nets_shared () =
  let b = B.create ~name:"consts" lib in
  let c1 = B.const_net b true in
  let c1' = B.const_net b true in
  let c0 = B.const_net b false in
  Alcotest.(check int) "shared" c1 c1';
  Alcotest.(check bool) "distinct polarity" true (c0 <> c1)

(* Fig. 1 of the paper: gates g1 and g2 are adjacent only when one directly
   drives the other. *)
let test_fig1_adjacency () =
  (* (a) g1 and g2 share a fanin net: NOT adjacent. *)
  let b = B.create ~name:"fig1a" lib in
  let x = B.add_pi b "x" in
  let y = B.add_pi b "y" in
  let g1 = B.add_gate b ~name:"g1" ~cell:"INVX1" [| x |] in
  let g2 = B.add_gate b ~name:"g2" ~cell:"NAND2X1" [| x; y |] in
  B.mark_po b "o1" g1;
  B.mark_po b "o2" g2;
  let t = B.finish b in
  Alcotest.(check (list int)) "(a) shared fanin not adjacent" [] (N.adjacent_gates t 0 |> List.filter (fun g -> g = 1));
  (* (b) g1 and g2 both drive a third gate: NOT adjacent to each other. *)
  let b = B.create ~name:"fig1b" lib in
  let x = B.add_pi b "x" in
  let y = B.add_pi b "y" in
  let g1 = B.add_gate b ~name:"g1" ~cell:"INVX1" [| x |] in
  let g2 = B.add_gate b ~name:"g2" ~cell:"INVX1" [| y |] in
  let g3 = B.add_gate b ~name:"g3" ~cell:"NAND2X1" [| g1; g2 |] in
  B.mark_po b "o" g3;
  let t = B.finish b in
  Alcotest.(check bool) "(b) siblings not adjacent" false (List.mem 1 (N.adjacent_gates t 0));
  Alcotest.(check bool) "(b) g1 adj g3" true (List.mem 2 (N.adjacent_gates t 0));
  (* (c) g1 drives g2: adjacent, symmetrically. *)
  let b = B.create ~name:"fig1c" lib in
  let x = B.add_pi b "x" in
  let g1 = B.add_gate b ~name:"g1" ~cell:"INVX1" [| x |] in
  let g2 = B.add_gate b ~name:"g2" ~cell:"INVX1" [| g1 |] in
  B.mark_po b "o" g2;
  let t = B.finish b in
  Alcotest.(check bool) "(c) driver adjacent" true (List.mem 1 (N.adjacent_gates t 0));
  Alcotest.(check bool) "(c) symmetric" true (List.mem 0 (N.adjacent_gates t 1))

let test_io_roundtrip () =
  let t = sequential_loop () in
  let text = Io.to_string t in
  let t' = Io.read ~library:lib text in
  Alcotest.(check string) "name" t.N.name t'.N.name;
  Alcotest.(check int) "gates" (N.num_gates t) (N.num_gates t');
  (match Equiv.check t t' with
  | Equiv.Equivalent -> ()
  | _ -> Alcotest.fail "round-trip not equivalent");
  (* And for a combinational one with a const net. *)
  let b = B.create ~name:"constio" lib in
  let a = B.add_pi b "a" in
  let z = B.const_net b false in
  let y = B.add_gate b ~cell:"MUX2X1" [| a; z; a |] in
  B.mark_po b "y" y;
  let t = B.finish b in
  let t' = Io.read ~library:lib (Io.to_string t) in
  match Equiv.check t t' with
  | Equiv.Equivalent -> ()
  | _ -> Alcotest.fail "const round-trip not equivalent"

(* Degenerate shapes must survive the text format unchanged: no gates at
   all, a single gate, gates fed only by constants, and one net feeding
   several pins of the same sink gate. *)
let test_io_degenerate_roundtrips () =
  let roundtrip label t =
    let t' = Io.read ~library:lib (Io.to_string t) in
    Alcotest.(check int) (label ^ " gates") (N.num_gates t) (N.num_gates t');
    Alcotest.(check int) (label ^ " nets") (N.num_nets t) (N.num_nets t');
    Alcotest.(check int) (label ^ " pos") (Array.length t.N.pos) (Array.length t'.N.pos);
    if N.num_gates t > 0 then
      match Equiv.check t t' with
      | Equiv.Equivalent -> ()
      | _ -> Alcotest.fail (label ^ " not equivalent")
  in
  (* Empty: a PI wired straight to a PO, no gates. *)
  let b = B.create ~name:"empty" lib in
  let a = B.add_pi b "a" in
  B.mark_po b "y" a;
  roundtrip "empty" (B.finish b);
  (* Single gate. *)
  let b = B.create ~name:"single" lib in
  let a = B.add_pi b "a" in
  B.mark_po b "y" (B.add_gate b ~cell:"INVX1" [| a |]);
  roundtrip "single" (B.finish b);
  (* Const-only drivers: every gate input is a constant net. *)
  let b = B.create ~name:"constonly" lib in
  let k0 = B.const_net b false in
  let k1 = B.const_net b true in
  B.mark_po b "y" (B.add_gate b ~cell:"NAND2X1" [| k0; k1 |]);
  roundtrip "const-only" (B.finish b);
  (* One net into multiple pins of the same sink gate. *)
  let b = B.create ~name:"dup" lib in
  let a = B.add_pi b "a" in
  let x = B.add_gate b ~cell:"INVX1" [| a |] in
  B.mark_po b "y" (B.add_gate b ~cell:"MUX2X1" [| x; x; x |]);
  let t = B.finish b in
  roundtrip "dup-sink" t;
  (* The duplicate sink entries themselves must survive. *)
  let t' = Io.read ~library:lib (Io.to_string t) in
  let inv =
    List.find (fun (g : N.gate) -> g.N.cell.Cell.name = "INVX1") (Array.to_list t'.N.gates)
  in
  Alcotest.(check int) "dup-sink pin entries" 3
    (List.length (N.net t' inv.N.fanout).N.sinks);
  (* None of these shapes is a lint error. *)
  List.iter
    (fun nl -> Alcotest.(check (list string)) "no lint errors" []
        (List.map (fun f -> f.Dfm_lint.Lint.rule) (Dfm_lint.Lint.errors (Dfm_lint.Lint.check nl))))
    [ t; t' ]

let test_io_errors () =
  (try
     ignore (Io.read ~library:lib "gate NAND2X1 g0 y a b\n");
     Alcotest.fail "expected header error"
   with Failure _ -> ());
  try
    ignore (Io.read ~library:lib "circuit x\ngate BOGUS g0 y a b\nend\n");
    Alcotest.fail "expected unknown cell"
  with Failure msg ->
    Alcotest.(check bool) "line number" true
      (String.length msg > 0)

let random_netlist seed npis ngates =
  let rng = Dfm_util.Rng.create seed in
  let b = B.create ~name:"rand" lib in
  let nets = ref [] in
  for i = 0 to npis - 1 do
    nets := B.add_pi b (Printf.sprintf "i%d" i) :: !nets
  done;
  let cells = [| "INVX1"; "NAND2X1"; "NOR2X1"; "XOR2X1"; "AOI21X1"; "MUX2X1" |] in
  for _ = 1 to ngates do
    let arr = Array.of_list !nets in
    let cname = Dfm_util.Rng.pick rng cells in
    let c = Library.find lib cname in
    let fanins = Array.init (Cell.arity c) (fun _ -> Dfm_util.Rng.pick rng arr) in
    nets := B.add_gate b ~cell:cname fanins :: !nets
  done;
  List.iteri (fun i n -> if i < 3 then B.mark_po b (Printf.sprintf "o%d" i) n) !nets;
  B.finish b

(* Replacing a region with its own extraction is the identity up to
   equivalence. *)
let prop_extract_replace_identity =
  QCheck.Test.make ~name:"replace(extract(region)) preserves function" ~count:40
    QCheck.(pair (int_range 1 1000) (int_range 3 12))
    (fun (seed, ngates) ->
      let t = random_netlist seed 4 ngates in
      (* pick a subset of combinational gates *)
      let rng = Dfm_util.Rng.create (seed + 1) in
      let region =
        N.comb_gates t
        |> List.filter_map (fun (g : N.gate) ->
               if Dfm_util.Rng.chance rng 0.5 then Some g.N.gate_id else None)
      in
      QCheck.assume (region <> []);
      let sub, boundary = N.extract t ~gates:region in
      let t' = N.replace t ~gates:region ~sub boundary in
      N.validate t';
      Equiv.check t t' = Equiv.Equivalent)

let test_extract_rejects_seq () =
  let t = sequential_loop () in
  let seq_gate = (List.hd (N.seq_gates t)).N.gate_id in
  try
    ignore (N.extract t ~gates:[ seq_gate ]);
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

let test_cell_counts_and_area () =
  let t = small_comb () in
  let counts = N.cell_counts t in
  Alcotest.(check (option int)) "nand2" (Some 1) (List.assoc_opt "NAND2X1" counts);
  Alcotest.(check (option int)) "inv" (Some 1) (List.assoc_opt "INVX1" counts);
  let area = N.total_area t in
  let expect =
    (Library.find lib "NAND2X1").Cell.area +. (Library.find lib "INVX1").Cell.area
  in
  Alcotest.(check (float 1e-9)) "area" expect area

let test_library_restrict_and_completeness () =
  Alcotest.(check int) "21 cells" 21 (Library.size lib);
  Alcotest.(check bool) "complete" true (Library.functionally_complete lib);
  let r = Library.restrict lib ~excluded:[ "NAND2X1"; "XOR2X1" ] in
  Alcotest.(check int) "two fewer" 19 (Library.size r);
  Alcotest.(check bool) "still complete" true (Library.functionally_complete r);
  (* XOR alone is affine and must NOT count as complete. *)
  let only_xor = Library.filter lib (fun c -> c.Cell.name = "XOR2X1") in
  Alcotest.(check bool) "xor alone incomplete" false (Library.functionally_complete only_xor);
  (* NAND2 alone is complete. *)
  let only_nand = Library.filter lib (fun c -> c.Cell.name = "NAND2X1") in
  Alcotest.(check bool) "nand alone complete" true (Library.functionally_complete only_nand)

let test_gate_levels () =
  let t = small_comb () in
  let levels = N.gate_levels t in
  Alcotest.(check int) "nand level" 0 levels.(0);
  Alcotest.(check int) "inv level" 1 levels.(1)

(* Verilog round trips and error reporting. *)
let test_verilog_roundtrip () =
  let t = sequential_loop () in
  let text = Dfm_netlist.Verilog.to_string t in
  let t' = Dfm_netlist.Verilog.read ~library:lib text in
  Alcotest.(check int) "gates" (N.num_gates t) (N.num_gates t');
  (match Equiv.check t t' with
  | Equiv.Equivalent -> ()
  | _ -> Alcotest.fail "verilog round-trip not equivalent");
  (* consts and output-from-PI feedthrough *)
  let b = B.create ~name:"vconst" lib in
  let a = B.add_pi b "a" in
  let z = B.const_net b true in
  let y = B.add_gate b ~cell:"MUX2X1" [| a; z; a |] in
  B.mark_po b "y" y;
  B.mark_po b "echo" a;
  let t = B.finish b in
  let t' = Dfm_netlist.Verilog.read ~library:lib (Dfm_netlist.Verilog.to_string t) in
  match Equiv.check t t' with
  | Equiv.Equivalent -> ()
  | _ -> Alcotest.fail "const/feedthrough verilog round-trip not equivalent"

let test_verilog_roundtrip_block () =
  let t = Dfm_circuits.Circuits.build ~scale:0.25 "sparc_spu" in
  let t' = Dfm_netlist.Verilog.read ~library:lib (Dfm_netlist.Verilog.to_string t) in
  N.validate t';
  Alcotest.(check int) "same gate count" (N.num_gates t) (N.num_gates t');
  match Dfm_atpg.Equiv_sat.check t t' with
  | Dfm_atpg.Equiv_sat.Equivalent -> ()
  | _ -> Alcotest.fail "block verilog round-trip not equivalent"

let test_verilog_errors () =
  let check_fails text expect_line =
    try
      ignore (Dfm_netlist.Verilog.read ~library:lib text);
      Alcotest.fail "expected Parse_error"
    with Dfm_netlist.Verilog.Parse_error (line, _) ->
      if expect_line > 0 then Alcotest.(check int) "line" expect_line line
  in
  check_fails "wire x;
" 1;  (* missing module *)
  check_fails "module m ();
  BOGUS g0 (.A(x), .Y(y));
endmodule
" 2;
  check_fails "module m (a);
  input a;
  NAND2X1 g0 (.A(a), .Y(y));
endmodule
" 3
  (* missing pin B *)

let test_verilog_comments_and_escapes () =
  let text =
    "// header comment
     module m (a, y); /* block
     comment */
     \  input a;
     \  output y;
     \  INVX1 \\weird.name  (.A(a), .Y(y));
     endmodule
"
  in
  let t = Dfm_netlist.Verilog.read ~library:lib text in
  Alcotest.(check int) "one gate" 1 (N.num_gates t)

let suite =
  [
    Alcotest.test_case "builder basics" `Quick test_builder_basics;
    Alcotest.test_case "builder arity check" `Quick test_builder_rejects_bad_arity;
    Alcotest.test_case "builder undriven net" `Quick test_builder_rejects_undriven;
    Alcotest.test_case "sequential loop" `Quick test_sequential_loop;
    Alcotest.test_case "const nets shared" `Quick test_const_nets_shared;
    Alcotest.test_case "fig1 adjacency" `Quick test_fig1_adjacency;
    Alcotest.test_case "io round trip" `Quick test_io_roundtrip;
    Alcotest.test_case "io degenerate round trips" `Quick test_io_degenerate_roundtrips;
    Alcotest.test_case "io errors" `Quick test_io_errors;
    QCheck_alcotest.to_alcotest prop_extract_replace_identity;
    Alcotest.test_case "extract rejects seq" `Quick test_extract_rejects_seq;
    Alcotest.test_case "cell counts and area" `Quick test_cell_counts_and_area;
    Alcotest.test_case "library restrict/completeness" `Quick test_library_restrict_and_completeness;
    Alcotest.test_case "gate levels" `Quick test_gate_levels;
    Alcotest.test_case "verilog roundtrip" `Quick test_verilog_roundtrip;
    Alcotest.test_case "verilog roundtrip block" `Quick test_verilog_roundtrip_block;
    Alcotest.test_case "verilog errors" `Quick test_verilog_errors;
    Alcotest.test_case "verilog comments/escapes" `Quick test_verilog_comments_and_escapes;
  ]

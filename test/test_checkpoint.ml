(* Tests for the campaign journal (Dfm_core.Checkpoint) and the kill/resume
   contract of Resynth.run: the journal round-trips and truncates to the
   last accept, refuses foreign headers, recovers from torn tails — and a
   campaign killed at a record boundary (clean or torn) resumes to a final
   design, trace and counter set bit-identical to the uninterrupted run.

   The default suite runs two representative kill points; set
   REPRO_CRASH_MATRIX=full (the @runtest-crash alias) to kill at every
   record boundary with both failure modes. *)

module N = Dfm_netlist.Netlist
module Design = Dfm_core.Design
module Resynth = Dfm_core.Resynth
module Checkpoint = Dfm_core.Checkpoint
module Failpoint = Dfm_util.Failpoint
module Netlist_io = Dfm_netlist.Netlist_io

let fresh_path () =
  let p = Filename.temp_file "dfm_ckpt" ".ckpt" in
  Sys.remove p;
  p

let ev ?(action = "reject") i =
  {
    Checkpoint.q = i mod 3;
    phase = 1 + (i mod 2);
    cell = (if i mod 2 = 0 then Some "NAND2X1" else None);
    action;
    u = 40 - i;
    u_internal = 20 - i;
    smax = 10 - (i mod 5);
    delay = 1.0 +. (0.01 *. float_of_int i);
    power = 0.5 +. (0.001 *. float_of_int i);
    cache_hits = i;
  }

let acc i =
  {
    Checkpoint.ev = ev ~action:"accept" i;
    netlist = Printf.sprintf "# accepted netlist %d\nmodule m%d\n" i i;
    accepted = i;
    implements = 2 * i;
    sat_queries = 30 * i;
    run_cache_hits = i;
    run_conflicts = 5 * i;
    run_decisions = 7 * i;
    run_propagations = 11 * i;
    p2 = 1.5;
  }

(* ------------------------------------------------------------------ *)
(* Journal round trip and truncation                                    *)
(* ------------------------------------------------------------------ *)

let test_roundtrip_truncates_to_last_accept () =
  let path = fresh_path () in
  let t, replay = Checkpoint.attach ~header:"h1" path in
  Alcotest.(check bool) "fresh journal has nothing to replay" true (replay = []);
  Checkpoint.append_event t (ev 1);
  Checkpoint.append_event t (ev 2);
  Checkpoint.append_accept t (acc 3);
  Checkpoint.append_event t (ev 4);
  Checkpoint.close t;
  let t2, replay2 = Checkpoint.attach ~header:"h1" path in
  Alcotest.(check bool) "tail after the last accept is dropped" true
    (replay2 = [ Checkpoint.Event (ev 1); Checkpoint.Event (ev 2); Checkpoint.Accept (acc 3) ]);
  (* the journal stays appendable after the compaction *)
  Checkpoint.append_accept t2 (acc 5);
  Checkpoint.close t2;
  let t3, replay3 = Checkpoint.attach ~header:"h1" path in
  Alcotest.(check bool) "append after reattach survives" true
    (replay3
    = [
        Checkpoint.Event (ev 1);
        Checkpoint.Event (ev 2);
        Checkpoint.Accept (acc 3);
        Checkpoint.Accept (acc 5);
      ]);
  Checkpoint.close t3;
  (* resume=false starts the campaign over *)
  let t4, replay4 = Checkpoint.attach ~resume:false ~header:"h1" path in
  Alcotest.(check bool) "resume=false truncates" true (replay4 = []);
  Checkpoint.close t4;
  let t5, replay5 = Checkpoint.attach ~header:"h1" path in
  Alcotest.(check bool) "truncation was persistent" true (replay5 = []);
  Checkpoint.close t5;
  Sys.remove path

let test_header_mismatch_refused () =
  let path = fresh_path () in
  let t, _ = Checkpoint.attach ~header:"config A" path in
  Checkpoint.append_accept t (acc 1);
  Checkpoint.close t;
  (match Checkpoint.attach ~header:"config B" path with
  | _ -> Alcotest.fail "expected Checkpoint.Error on a foreign header"
  | exception Checkpoint.Error _ -> ());
  (* the refusal must not have damaged the journal *)
  let t2, replay = Checkpoint.attach ~header:"config A" path in
  Alcotest.(check bool) "journal intact after refusal" true
    (replay = [ Checkpoint.Accept (acc 1) ]);
  Checkpoint.close t2;
  Sys.remove path

let file_size path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  close_in ic;
  n

let truncate_file path n =
  let ic = open_in_bin path in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_corruption_recovery () =
  let path = fresh_path () in
  let t, _ = Checkpoint.attach ~header:"h" path in
  Checkpoint.append_event t (ev 1);
  Checkpoint.append_event t (ev 2);
  Checkpoint.append_accept t (acc 3);
  Checkpoint.append_event t (ev 4);
  Checkpoint.append_accept t (acc 5);
  Checkpoint.close t;
  (* tear the last frame: the classic kill-during-append tail *)
  truncate_file path (file_size path - 5);
  let t2, replay = Checkpoint.attach ~header:"h" path in
  Alcotest.(check bool) "torn accept dropped, prefix truncated to last accept" true
    (replay = [ Checkpoint.Event (ev 1); Checkpoint.Event (ev 2); Checkpoint.Accept (acc 3) ]);
  Checkpoint.close t2;
  (* the recovery pass compacted the file: it now loads clean *)
  let t3, replay3 = Checkpoint.attach ~header:"h" path in
  Alcotest.(check bool) "compacted journal loads clean" true (replay3 = replay);
  Checkpoint.close t3;
  (* garbage appended after valid frames is dropped the same way *)
  let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
  output_string oc "\xff\xff\xff\xffgarbage";
  close_out oc;
  let t4, replay4 = Checkpoint.attach ~header:"h" path in
  Alcotest.(check bool) "garbage tail dropped" true (replay4 = replay);
  Checkpoint.close t4;
  Sys.remove path

let test_append_failpoint_is_loud () =
  Failpoint.clear ();
  Fun.protect ~finally:Failpoint.clear @@ fun () ->
  let path = fresh_path () in
  let t, _ = Checkpoint.attach ~header:"h" path in
  Checkpoint.append_event t (ev 1);
  Failpoint.enable ~times:1 "checkpoint.append" Failpoint.Io_error;
  (match Checkpoint.append_event t (ev 2) with
  | () -> Alcotest.fail "expected Sys_error"
  | exception Sys_error _ -> ());
  (* unlike the cache store, the journal never degrades silently: once the
     failpoint is exhausted the very same handle keeps appending *)
  Checkpoint.append_accept t (acc 3);
  (* a torn write mid-accept: half a frame reaches the disk *)
  Failpoint.enable ~times:1 "checkpoint.append" Failpoint.Partial_write;
  (match Checkpoint.append_accept t (acc 4) with
  | () -> Alcotest.fail "expected Sys_error"
  | exception Sys_error _ -> ());
  Checkpoint.close t;
  Failpoint.clear ();
  let t2, replay = Checkpoint.attach ~header:"h" path in
  Alcotest.(check bool) "torn frame dropped, intact prefix recovered" true
    (replay = [ Checkpoint.Event (ev 1); Checkpoint.Accept (acc 3) ]);
  Checkpoint.close t2;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Kill/resume on a real campaign                                       *)
(* ------------------------------------------------------------------ *)

let scale = 0.4

(* The uninterrupted reference campaign, journaled with a counting-only
   failpoint so we learn how many journal appends the run performs — the
   crash matrix kills at each of those boundaries. *)
let reference =
  lazy
    (let nl = Dfm_circuits.Circuits.build ~scale "sparc_spu" in
     let d0 = Design.implement nl in
     let path = fresh_path () in
     Failpoint.clear ();
     Failpoint.enable ~after:max_int "checkpoint.append" Failpoint.Raise;
     let r = Resynth.run ~checkpoint:{ Resynth.path; resume = false } d0 in
     let appends = Failpoint.hit_count "checkpoint.append" in
     Failpoint.clear ();
     Sys.remove path;
     (d0, r, appends))

let check_bit_identical label (r_ref : Resynth.result) (r : Resynth.result) =
  Alcotest.(check string)
    (label ^ ": final netlist identical")
    (Netlist_io.to_string r_ref.Resynth.final.Design.netlist)
    (Netlist_io.to_string r.Resynth.final.Design.netlist);
  Alcotest.(check bool) (label ^ ": trace identical") true (r.Resynth.trace = r_ref.Resynth.trace);
  Alcotest.(check int) (label ^ ": accepted") r_ref.Resynth.accepted r.Resynth.accepted;
  Alcotest.(check int)
    (label ^ ": implement calls")
    r_ref.Resynth.implement_calls r.Resynth.implement_calls;
  Alcotest.(check int) (label ^ ": SAT queries") r_ref.Resynth.sat_queries r.Resynth.sat_queries

(* Kill the campaign at journal append [kill_at] (0-based) with [action]
   (a clean raise or a torn write), then resume from the journal and
   demand the uninterrupted run's exact result. *)
let kill_and_resume ~kill_at ~action =
  let d0, r_ref, _ = Lazy.force reference in
  let path = fresh_path () in
  Failpoint.clear ();
  Fun.protect
    ~finally:(fun () ->
      Failpoint.clear ();
      if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  Failpoint.enable ~after:kill_at ~times:1 "checkpoint.append" action;
  (match Resynth.run ~checkpoint:{ Resynth.path; resume = false } d0 with
  | _ -> Alcotest.failf "kill at append %d never fired" kill_at
  | exception (Failpoint.Injected _ | Sys_error _) -> ());
  Failpoint.clear ();
  let r = Resynth.run ~checkpoint:{ Resynth.path; resume = true } d0 in
  check_bit_identical (Printf.sprintf "kill@%d" kill_at) r_ref r;
  r

let test_kill_resume_representative () =
  let _, r_ref, appends = Lazy.force reference in
  Alcotest.(check bool) "campaign journals records" true (appends > 0);
  Alcotest.(check bool) "campaign accepts steps" true (r_ref.Resynth.accepted >= 2);
  (* mid-campaign clean kill *)
  ignore (kill_and_resume ~kill_at:(appends / 2) ~action:Failpoint.Raise : Resynth.result);
  (* kill during the very last append, with a torn write: every earlier
     accept is in the journal, so the resume must actually replay *)
  let r = kill_and_resume ~kill_at:(appends - 1) ~action:Failpoint.Partial_write in
  Alcotest.(check bool) "resume replayed accepted steps" true (r.Resynth.resumed_steps > 0)

(* Resuming a journal of a *completed* campaign replays the accepted chain
   and re-derives only the post-accept tail: same result again. *)
let test_resume_completed_campaign () =
  let d0, r_ref, _ = Lazy.force reference in
  let path = fresh_path () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let r1 = Resynth.run ~checkpoint:{ Resynth.path; resume = false } d0 in
  check_bit_identical "clean checkpointed run" r_ref r1;
  let r2 = Resynth.run ~checkpoint:{ Resynth.path; resume = true } d0 in
  check_bit_identical "resume of completed run" r_ref r2;
  Alcotest.(check bool) "replayed the accepted chain" true
    (r2.Resynth.resumed_steps = r_ref.Resynth.accepted)

(* A journal written under a different configuration must be refused. *)
let test_resume_refuses_other_config () =
  let d0, _, _ = Lazy.force reference in
  let path = fresh_path () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let _ = Resynth.run ~checkpoint:{ Resynth.path; resume = false } d0 in
  match Resynth.run ~seed:4 ~checkpoint:{ Resynth.path; resume = true } d0 with
  | _ -> Alcotest.fail "expected Checkpoint.Error for a foreign journal"
  | exception Checkpoint.Error _ -> ()

(* The full matrix: kill at every journal append boundary, clean and torn.
   Minutes of work, so it runs under REPRO_CRASH_MATRIX=full — the
   @runtest-crash alias. *)
let test_crash_matrix () =
  match Sys.getenv_opt "REPRO_CRASH_MATRIX" with
  | Some "full" ->
      let _, _, appends = Lazy.force reference in
      for kill_at = 0 to appends - 1 do
        List.iter
          (fun action -> ignore (kill_and_resume ~kill_at ~action : Resynth.result))
          [ Failpoint.Raise; Failpoint.Partial_write ]
      done
  | _ -> ()

let suite =
  [
    Alcotest.test_case "roundtrip truncates to last accept" `Quick
      test_roundtrip_truncates_to_last_accept;
    Alcotest.test_case "header mismatch refused" `Quick test_header_mismatch_refused;
    Alcotest.test_case "corruption recovery" `Quick test_corruption_recovery;
    Alcotest.test_case "append failures are loud" `Quick test_append_failpoint_is_loud;
    Alcotest.test_case "kill/resume is bit-identical" `Slow test_kill_resume_representative;
    Alcotest.test_case "resume of a completed campaign" `Slow test_resume_completed_campaign;
    Alcotest.test_case "foreign journal refused" `Slow test_resume_refuses_other_config;
    Alcotest.test_case "crash matrix (REPRO_CRASH_MATRIX=full)" `Slow test_crash_matrix;
  ]

(* Test runner: one alcotest binary aggregating every module's suite. *)

let () =
  Alcotest.run "dfm_resynthesis"
    [
      ("util", Test_util.suite);
      ("failpoint", Test_failpoint.suite);
      ("parallel", Test_parallel.suite);
      ("properties", Test_properties.suite);
      ("logic", Test_logic.suite);
      ("sat", Test_sat.suite);
      ("sat-incr", Test_sat_incr.suite);
      ("cert", Test_cert.suite);
      ("netlist", Test_netlist.suite);
      ("cellmodel", Test_cellmodel.suite);
      ("lint", Test_lint.suite);
      ("sim", Test_sim.suite);
      ("atpg", Test_atpg.suite);
      ("incr", Test_incr.suite);
      ("synth", Test_synth.suite);
      ("layout", Test_layout.suite);
      ("timing", Test_timing.suite);
      ("guidelines", Test_guidelines.suite);
      ("cluster", Test_cluster.suite);
      ("diagnose", Test_diagnose.suite);
      ("circuits", Test_circuits.suite);
      ("resynth", Test_resynth.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("obs", Test_obs.suite);
      ("serve", Test_serve.suite);
    ]

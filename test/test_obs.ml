(* The observability subsystem: leveled logging, the metrics registry,
   hierarchical spans, the exporters — and the subsystem's one hard
   invariant, result transparency: a campaign run with every collector
   enabled is bit-identical to the same campaign with everything off. *)

module Log = Dfm_obs.Log
module Metrics = Dfm_obs.Metrics
module Span = Dfm_obs.Span
module Export = Dfm_obs.Export
module Progress = Dfm_obs.Progress
module Recorder = Dfm_obs.Recorder
module Design = Dfm_core.Design
module Resynth = Dfm_core.Resynth
module Parallel = Dfm_util.Parallel

(* Every test here touches process-global observability state; restore the
   quiet defaults no matter how the body exits. *)
let with_clean_obs f =
  Fun.protect
    ~finally:(fun () ->
      Log.set_sink None;
      Log.set_level Log.Warn;
      Span.set_enabled false;
      Span.reset ();
      Export.reset_retained ();
      Metrics.set_timing_enabled false;
      Metrics.set_attribution [];
      Recorder.set_enabled false;
      Progress.set_enabled false;
      Progress.set_mode Progress.Auto;
      Progress.set_output None)
    f

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let slurp f =
  let ic = open_in_bin f in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Log                                                                  *)
(* ------------------------------------------------------------------ *)

let test_log_levels () =
  with_clean_obs @@ fun () ->
  let got = ref [] in
  Log.set_sink (Some (fun r -> got := r :: !got));
  Log.set_level Log.Info;
  Alcotest.(check bool) "info passes" true (Log.would_log Log.Info);
  Alcotest.(check bool) "debug filtered" false (Log.would_log Log.Debug);
  Log.debug "dropped";
  Log.info ~attrs:[ ("k", "v") ] "kept";
  Log.warn "warned";
  (match !got with
  | [ w; i ] ->
      Alcotest.(check string) "warn msg" "warned" w.Log.message;
      Alcotest.(check string) "info msg" "kept" i.Log.message;
      Alcotest.(check (list (pair string string))) "attrs" [ ("k", "v") ] i.Log.attrs
  | l -> Alcotest.failf "expected 2 records, got %d" (List.length l));
  Log.set_sink None;
  Alcotest.(check bool) "no sink: nothing would log" false (Log.would_log Log.Error)

(* [logf] renders its format only when the record would reach the sink;
   observe that through sink delivery counts. *)
let test_logf_lazy () =
  with_clean_obs @@ fun () ->
  Log.set_level Log.Warn;
  let n = ref 0 in
  Log.set_sink (Some (fun _ -> incr n));
  Log.logf Log.Debug "%d" 42;
  Alcotest.(check int) "debug logf below level reaches no sink" 0 !n;
  Log.logf Log.Error "%d" 42;
  Alcotest.(check int) "error logf delivered" 1 !n

let test_level_of_string () =
  let open Log in
  Alcotest.(check bool) "error" true (level_of_string "ERROR" = Some Error);
  Alcotest.(check bool) "warning" true (level_of_string "warning" = Some Warn);
  Alcotest.(check bool) "info" true (level_of_string "Info" = Some Info);
  Alcotest.(check bool) "debug" true (level_of_string "debug" = Some Debug);
  Alcotest.(check bool) "garbage" true (level_of_string "loud" = None)

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)
(* ------------------------------------------------------------------ *)

let test_metrics_counter_gauge () =
  let c = Metrics.counter ~help:"test counter" "dfm_test_obs_counter_total" in
  let before = Metrics.counter_value c in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter adds" (before + 5) (Metrics.counter_value c);
  (* re-registering the same name returns the same cell *)
  let c' = Metrics.counter "dfm_test_obs_counter_total" in
  Metrics.incr c';
  Alcotest.(check int) "same handle" (before + 6) (Metrics.counter_value c);
  let g = Metrics.gauge "dfm_test_obs_gauge" in
  Metrics.set g 7;
  Metrics.add g (-2);
  Alcotest.(check int) "gauge" 5 (Metrics.gauge_value g);
  (* a name registered as a counter cannot come back as a gauge *)
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument
       "Dfm_obs.Metrics.gauge: dfm_test_obs_counter_total registered with another kind")
    (fun () -> ignore (Metrics.gauge "dfm_test_obs_counter_total"))

let test_metrics_histogram () =
  let h = Metrics.histogram "dfm_test_obs_hist_ns" in
  Metrics.observe h 1;   (* le 1 *)
  Metrics.observe h 3;   (* le 4 *)
  Metrics.observe h 4;   (* le 4 *)
  Metrics.observe h (-5) (* clamped to 0, le 1 *);
  match Metrics.find_value "dfm_test_obs_hist_ns" with
  | Some (Metrics.Histogram { buckets; sum; count }) ->
      Alcotest.(check int) "count" 4 count;
      Alcotest.(check int) "sum" 8 sum;
      let le v =
        let n = ref 0 in
        Array.iter (fun (b, c) -> if b <= v +. 0.5 then n := max !n c) buckets;
        !n
      in
      Alcotest.(check int) "le 1 cumulative" 2 (le 1.0);
      Alcotest.(check int) "le 2 cumulative" 2 (le 2.0);
      Alcotest.(check int) "le 4 cumulative" 4 (le 4.0);
      let last, c_inf = buckets.(Array.length buckets - 1) in
      Alcotest.(check bool) "+Inf last" true (last = infinity);
      Alcotest.(check int) "+Inf holds all" 4 c_inf;
      (* cumulative counts never decrease across buckets *)
      let mono = ref true and prev = ref 0 in
      Array.iter
        (fun (_, c) ->
          if c < !prev then mono := false;
          prev := c)
        buckets;
      Alcotest.(check bool) "cumulative monotone" true !mono
  | _ -> Alcotest.fail "histogram not found in registry"

let test_metrics_snapshot_sorted () =
  ignore (Metrics.counter "dfm_test_obs_zzz_total");
  ignore (Metrics.counter "dfm_test_obs_aaa_total");
  let names = List.map (fun m -> m.Metrics.name) (Metrics.snapshot ()) in
  Alcotest.(check bool) "snapshot sorted by name" true
    (List.sort compare names = names);
  Alcotest.(check bool) "registry keeps families" true
    (List.mem "dfm_test_obs_aaa_total" names)

(* ------------------------------------------------------------------ *)
(* Span                                                                 *)
(* ------------------------------------------------------------------ *)

let test_span_disabled_is_free () =
  with_clean_obs @@ fun () ->
  Span.reset ();
  Span.set_enabled false;
  let r = Span.with_ "outer" (fun () -> Span.with_ "inner" (fun () -> 41 + 1)) in
  Alcotest.(check int) "value threaded" 42 r;
  Alcotest.(check (list string)) "no events recorded" []
    (List.map (fun (e : Span.event) -> e.Span.name) (Span.drain ()))

let test_span_nesting () =
  with_clean_obs @@ fun () ->
  Span.reset ();
  Span.set_enabled true;
  let r =
    Span.with_ ~attrs:[ ("a", "1") ] "outer" (fun () ->
        Span.note "noted" "yes";
        Span.with_ "inner" (fun () -> 7))
  in
  Alcotest.(check int) "value" 7 r;
  (* a span closed by an exception still records its event *)
  (try Span.with_ "raises" (fun () -> failwith "boom") with Failure _ -> ());
  let evs = Span.drain () in
  let by_name n = List.find (fun (e : Span.event) -> e.Span.name = n) evs in
  Alcotest.(check int) "three events" 3 (List.length evs);
  let outer = by_name "outer" and inner = by_name "inner" and raises = by_name "raises" in
  Alcotest.(check int) "outer depth" 0 outer.Span.depth;
  Alcotest.(check int) "inner depth" 1 inner.Span.depth;
  Alcotest.(check int) "raises depth" 0 raises.Span.depth;
  Alcotest.(check bool) "inner within outer" true
    (inner.Span.begin_ns >= outer.Span.begin_ns && inner.Span.end_ns <= outer.Span.end_ns);
  Alcotest.(check bool) "durations non-negative" true
    (List.for_all (fun (e : Span.event) -> e.Span.end_ns >= e.Span.begin_ns) evs);
  Alcotest.(check bool) "note attached to outer" true
    (List.mem ("noted", "yes") outer.Span.attrs && List.mem ("a", "1") outer.Span.attrs);
  Alcotest.(check (list string)) "drain clears" []
    (List.map (fun (e : Span.event) -> e.Span.name) (Span.drain ()))

(* ------------------------------------------------------------------ *)
(* Exporters                                                            *)
(* ------------------------------------------------------------------ *)

let test_json_escape () =
  Alcotest.(check string) "quotes and backslash" "a\\\"b\\\\c" (Export.json_escape "a\"b\\c");
  Alcotest.(check string) "newline" "x\\ny" (Export.json_escape "x\ny");
  Alcotest.(check string) "control" "\\u0001" (Export.json_escape "\x01")

let count_occurrences needle haystack =
  let n = ref 0 and i = ref 0 in
  let ln = String.length needle in
  while !i + ln <= String.length haystack do
    if String.sub haystack !i ln = needle then (incr n; i := !i + ln) else incr i
  done;
  !n

let test_chrome_trace_shape () =
  with_clean_obs @@ fun () ->
  Span.reset ();
  Span.set_enabled true;
  Span.with_ "outer" (fun () ->
      Span.with_ ~attrs:[ ("cell", "NAND2X1") ] "inner" (fun () -> ()));
  let s = Export.chrome_trace_string (Span.drain ()) in
  Alcotest.(check bool) "traceEvents envelope" true
    (String.length s > 16 && String.sub s 0 16 = "{\"traceEvents\":[");
  Alcotest.(check int) "two begins" 2 (count_occurrences "\"ph\":\"B\"" s);
  Alcotest.(check int) "two ends" 2 (count_occurrences "\"ph\":\"E\"" s);
  Alcotest.(check bool) "args on begin" true (count_occurrences "\"cell\":\"NAND2X1\"" s = 1)

let test_prometheus_exposition () =
  ignore (Metrics.counter ~help:"say \"hi\"" "dfm_test_obs_prom_total");
  let s = Export.prometheus_string (Metrics.snapshot ()) in
  let lines = String.split_on_char '\n' s in
  (* one HELP and one TYPE per family, and no duplicate sample series *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun line ->
      if line <> "" then begin
        let key =
          if String.length line > 0 && line.[0] = '#' then line
          else
            match String.index_opt line ' ' with
            | Some i -> String.sub line 0 i
            | None -> line
        in
        Alcotest.(check bool) (Printf.sprintf "duplicate series: %s" key) false
          (Hashtbl.mem seen key);
        Hashtbl.add seen key ()
      end)
    lines;
  Alcotest.(check int) "one TYPE for the family" 1
    (count_occurrences "# TYPE dfm_test_obs_prom_total counter" s);
  (* every histogram ends its buckets at +Inf *)
  Alcotest.(check bool) "histograms expose +Inf" true
    (count_occurrences "le=\"+Inf\"" s >= 1 || count_occurrences "_bucket" s = 0)

(* ------------------------------------------------------------------ *)
(* Result transparency: the subsystem's hard invariant                  *)
(* ------------------------------------------------------------------ *)

let transparency_design =
  lazy
    (let nl = Dfm_circuits.Circuits.build ~scale:0.25 "sparc_ffu" in
     Design.implement nl)

let run_campaign ~seed ~q_max d0 = Resynth.run ~seed ~q_max d0

let check_same_result label (a : Resynth.result) (b : Resynth.result) =
  let ok name v = if not v then Alcotest.failf "%s: %s differs" label name in
  ok "final netlist"
    (Dfm_netlist.Netlist_io.to_string a.Resynth.final.Design.netlist
    = Dfm_netlist.Netlist_io.to_string b.Resynth.final.Design.netlist);
  ok "trace" (a.Resynth.trace = b.Resynth.trace);
  ok "accepted" (a.Resynth.accepted = b.Resynth.accepted);
  ok "implement calls" (a.Resynth.implement_calls = b.Resynth.implement_calls);
  ok "sat queries" (a.Resynth.sat_queries = b.Resynth.sat_queries);
  ok "cache hits" (a.Resynth.cache_hits = b.Resynth.cache_hits);
  ok "conflicts" (a.Resynth.conflicts = b.Resynth.conflicts);
  ok "decisions" (a.Resynth.decisions = b.Resynth.decisions);
  ok "propagations" (a.Resynth.propagations = b.Resynth.propagations)

let prop_transparency =
  QCheck.Test.make ~name:"campaign bit-identical with observability on/off (jobs 1 and 4)"
    ~count:2
    QCheck.(pair (int_range 1 10_000) (int_range 1 2))
    (fun (seed, q_max) ->
      let d0 = Lazy.force transparency_design in
      let saved_jobs = Parallel.default_jobs () in
      Fun.protect ~finally:(fun () -> Parallel.set_default_jobs saved_jobs)
      @@ fun () ->
      with_clean_obs @@ fun () ->
      List.iter
        (fun jobs ->
          Parallel.set_default_jobs jobs;
          (* everything off: the reference *)
          Log.set_sink None;
          Span.set_enabled false;
          Span.reset ();
          Metrics.set_timing_enabled false;
          Progress.set_enabled false;
          let off = run_campaign ~seed ~q_max d0 in
          (* everything on: sinks capture into buffers we then discard *)
          let sunk = ref 0 and drawn = ref 0 in
          Log.set_sink (Some (fun _ -> incr sunk));
          Log.set_level Log.Debug;
          Span.set_enabled true;
          Metrics.set_timing_enabled true;
          Metrics.set_attribution [ ("tenant", "qa"); ("job", "J0") ];
          Recorder.set_enabled true;
          Progress.set_output (Some (fun _ -> incr drawn));
          Progress.set_enabled true;
          let on = run_campaign ~seed ~q_max d0 in
          Metrics.set_attribution [];
          Recorder.set_enabled false;
          let spans = Span.drain () in
          check_same_result (Printf.sprintf "jobs=%d" jobs) off on;
          (* the instrumented run must actually have observed something,
             otherwise this property is vacuous.  (Log records only appear
             on accepted steps, so [sunk] may legitimately stay 0 on a
             no-accept campaign — the sink is installed to exercise the
             delivery path, not asserted on.) *)
          ignore !sunk;
          if spans = [] then Alcotest.failf "jobs=%d: no spans recorded" jobs)
        [ 1; 4 ];
      true)

(* Live snapshots must be idempotent: [Span.drain] consumes the buffers,
   so [trace_events_now] retains drained history and every call exports
   the full trace so far.  Calling [snapshot_now] twice in a row writes
   identical artifacts; later spans extend the history without losing the
   earlier events. *)
let test_snapshot_now_idempotent () =
  with_clean_obs @@ fun () ->
  Span.set_enabled true;
  Span.reset ();
  Span.with_ "snap.outer" (fun () -> Span.with_ "snap.inner" Fun.id);
  let e1 = Export.trace_events_now () in
  let e2 = Export.trace_events_now () in
  Alcotest.(check int) "second call repeats the history" (List.length e1)
    (List.length e2);
  Alcotest.(check bool) "history is non-empty" true (e1 <> []);
  let dir = Filename.temp_file "dfm_snap" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let trace_a = Filename.concat dir "a.json"
  and trace_b = Filename.concat dir "b.json"
  and prom_a = Filename.concat dir "a.prom"
  and prom_b = Filename.concat dir "b.prom" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun f -> try Sys.remove f with Sys_error _ -> ())
        [ trace_a; trace_b; prom_a; prom_b ];
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () ->
      let slurp f =
        let ic = open_in_bin f in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Export.snapshot_now ~trace:trace_a ~metrics:prom_a ();
      Export.snapshot_now ~trace:trace_b ~metrics:prom_b ();
      Alcotest.(check string) "back-to-back traces identical" (slurp trace_a)
        (slurp trace_b);
      Alcotest.(check string) "back-to-back metrics identical" (slurp prom_a)
        (slurp prom_b);
      (* a later span extends the exported history instead of replacing it *)
      Span.with_ "snap.later" Fun.id;
      let e3 = Export.trace_events_now () in
      Alcotest.(check bool) "history grows" true (List.length e3 > List.length e2);
      Export.snapshot_now ~trace:trace_a ();
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "new snapshot still contains the early span" true
        (contains (slurp trace_a) "snap.outer"))

(* ------------------------------------------------------------------ *)
(* Labels and ambient attribution                                       *)
(* ------------------------------------------------------------------ *)

let test_metrics_label_validation () =
  Alcotest.check_raises "invalid label name"
    (Invalid_argument "Dfm_obs.Metrics: dfm_test_obs_lbl_total: invalid label name \"bad-name\"")
    (fun () -> ignore (Metrics.counter ~labels:[ ("bad-name", "v") ] "dfm_test_obs_lbl_total"));
  Alcotest.check_raises "duplicate label key"
    (Invalid_argument
       "Dfm_obs.Metrics: dfm_test_obs_lbl_total: duplicate label key \"tenant\" in one label \
        set")
    (fun () ->
      ignore (Metrics.counter ~labels:[ ("tenant", "a"); ("tenant", "b") ] "dfm_test_obs_lbl_total"));
  (* the same label set in any order is one series, not a duplicate *)
  let a = Metrics.counter ~labels:[ ("tenant", "a"); ("job", "J1") ] "dfm_test_obs_lbl_total" in
  let a' = Metrics.counter ~labels:[ ("job", "J1"); ("tenant", "a") ] "dfm_test_obs_lbl_total" in
  Metrics.incr a;
  Metrics.incr a';
  Alcotest.(check int) "one shared series" 2 (Metrics.counter_value a)

let test_attributed_counters () =
  with_clean_obs @@ fun () ->
  let a = Metrics.attributed_counter ~help:"attribution test" "dfm_test_obs_attr_total" in
  Metrics.incr_attr a;
  Alcotest.(check int) "base bumps without context" 1 (Metrics.counter_value (Metrics.attr_base a));
  Metrics.set_attribution [ ("tenant", "acme"); ("job", "J7") ];
  Metrics.incr_attr ~by:2 a;
  Metrics.incr_attr a;
  Metrics.set_attribution [];
  Metrics.incr_attr a;
  Alcotest.(check int) "base counts every bump" 5 (Metrics.counter_value (Metrics.attr_base a));
  (match Metrics.find_value ~labels:[ ("job", "J7"); ("tenant", "acme") ] "dfm_test_obs_attr_total" with
  | Some (Metrics.Counter n) -> Alcotest.(check int) "labeled series counts attributed bumps" 3 n
  | _ -> Alcotest.fail "attributed label series not registered");
  Alcotest.check_raises "attribution labels are validated"
    (Invalid_argument "Dfm_obs.Metrics: set_attribution: invalid label name \"bad-name\"")
    (fun () -> Metrics.set_attribution [ ("bad-name", "x") ])

(* ------------------------------------------------------------------ *)
(* Escaping: property-tested against hand-rolled validators            *)
(* ------------------------------------------------------------------ *)

(* Validator-side JSON string reader: rejects raw control bytes, raw
   quotes, and any escape the exporter has no business emitting; returns
   the decoded string otherwise. *)
let json_unescape s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i =
    if i >= n then Some (Buffer.contents buf)
    else
      match s.[i] with
      | '"' -> None
      | c when Char.code c < 0x20 -> None
      | '\\' ->
          if i + 1 >= n then None
          else (
            match s.[i + 1] with
            | '"' ->
                Buffer.add_char buf '"';
                go (i + 2)
            | '\\' ->
                Buffer.add_char buf '\\';
                go (i + 2)
            | 'n' ->
                Buffer.add_char buf '\n';
                go (i + 2)
            | 'r' ->
                Buffer.add_char buf '\r';
                go (i + 2)
            | 't' ->
                Buffer.add_char buf '\t';
                go (i + 2)
            | 'u' ->
                if i + 6 > n then None
                else (
                  match int_of_string_opt ("0x" ^ String.sub s (i + 2) 4) with
                  | Some code when code < 0x20 ->
                      Buffer.add_char buf (Char.chr code);
                      go (i + 6)
                  | _ -> None)
            | _ -> None)
      | c ->
          Buffer.add_char buf c;
          go (i + 1)
  in
  go 0

let prop_json_escape =
  QCheck.Test.make ~name:"json_escape valid+invertible on arbitrary bytes" ~count:500
    QCheck.string (fun s ->
      match json_unescape (Export.json_escape s) with
      | Some s' -> String.equal s s'
      | None -> false)

(* Prometheus label values: no raw newline, no raw quote, every backslash
   starts one of the three escapes the exposition format defines. *)
let prom_unescape s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i =
    if i >= n then Some (Buffer.contents buf)
    else
      match s.[i] with
      | '\n' | '"' -> None
      | '\\' ->
          if i + 1 >= n then None
          else (
            match s.[i + 1] with
            | '\\' ->
                Buffer.add_char buf '\\';
                go (i + 2)
            | '"' ->
                Buffer.add_char buf '"';
                go (i + 2)
            | 'n' ->
                Buffer.add_char buf '\n';
                go (i + 2)
            | _ -> None)
      | c ->
          Buffer.add_char buf c;
          go (i + 1)
  in
  go 0

let prop_prom_label_escape =
  QCheck.Test.make ~name:"prom_label_escape valid+invertible on arbitrary bytes" ~count:500
    QCheck.string (fun s ->
      match prom_unescape (Export.prom_label_escape s) with
      | Some s' -> String.equal s s'
      | None -> false)

(* ------------------------------------------------------------------ *)
(* Streaming: concurrent domains, lossless fresh-only drain             *)
(* ------------------------------------------------------------------ *)

let prop_stream_concurrent =
  QCheck.Test.make ~name:"take_stream under concurrent domains: no loss, no duplicates"
    ~count:4
    QCheck.(int_range 2 4)
    (fun doms ->
      with_clean_obs @@ fun () ->
      Span.reset ();
      Export.reset_retained ();
      Span.set_enabled true;
      let per = 50 in
      let workers =
        List.init doms (fun d ->
            Domain.spawn (fun () ->
                for i = 1 to per do
                  Span.with_ (Printf.sprintf "stream.%d.%d" d i) Fun.id
                done))
      in
      (* drain concurrently with the recording domains *)
      let fresh = ref [] in
      let deadline = Unix.gettimeofday () +. 20. in
      while List.length !fresh < doms * per && Unix.gettimeofday () < deadline do
        fresh := Export.take_stream () @ !fresh
      done;
      List.iter Domain.join workers;
      fresh := Export.take_stream () @ !fresh;
      let names =
        List.sort compare (List.map (fun (e : Span.event) -> e.Span.name) !fresh)
      in
      if List.length names <> doms * per then
        QCheck.Test.fail_reportf "lost events: drained %d of %d" (List.length names)
          (doms * per);
      let rec dup = function
        | a :: (b :: _ as rest) -> if a = b then Some a else dup rest
        | _ -> None
      in
      (match dup names with
      | Some n -> QCheck.Test.fail_reportf "duplicated event %s" n
      | None -> ());
      (* retained history is append-only: the full-history view repeats
         every drained event, and snapshotting twice is stable *)
      let h1 = Export.trace_events_now () in
      let h2 = Export.trace_events_now () in
      if List.length h1 <> doms * per then
        QCheck.Test.fail_reportf "retained history holds %d of %d" (List.length h1)
          (doms * per);
      List.length h1 = List.length h2)

(* ------------------------------------------------------------------ *)
(* Progress modes                                                       *)
(* ------------------------------------------------------------------ *)

let capture_stderr f =
  let file = Filename.temp_file "dfm_prog" ".err" in
  flush stderr;
  let saved = Unix.dup Unix.stderr in
  let fd = Unix.openfile file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stderr;
  Unix.close fd;
  Fun.protect
    ~finally:(fun () ->
      flush stderr;
      Unix.dup2 saved Unix.stderr;
      Unix.close saved)
    f;
  let s = slurp file in
  Sys.remove file;
  s

let test_progress_modes () =
  with_clean_obs @@ fun () ->
  Progress.set_enabled true;
  (* Auto off a terminal: silence, not \r-garbage in logs and CI *)
  let auto_out = capture_stderr (fun () -> Progress.force (fun () -> "auto line")) in
  Alcotest.(check string) "auto mode emits nothing off-tty" "" auto_out;
  Progress.set_mode Progress.Plain;
  let plain_out = capture_stderr (fun () -> Progress.force (fun () -> "plain line")) in
  Alcotest.(check string) "plain mode emits one line per update" "plain line\n" plain_out;
  Progress.finish ();
  let fin = capture_stderr Progress.finish in
  Alcotest.(check string) "finish is silent unless a tty line is pending" "" fin

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                      *)
(* ------------------------------------------------------------------ *)

let test_flight_recorder () =
  with_clean_obs @@ fun () ->
  Span.reset ();
  Recorder.set_enabled true;
  Log.set_level Log.Info;
  Log.info "recorder retains me";
  (try
     Span.with_ "flight.outer" (fun () ->
         Span.with_ "flight.inner" (fun () -> failwith "boom"))
   with Failure _ -> ());
  Span.with_ "flight.after" Fun.id;
  (* the ring retained the spans even though span export is off *)
  Alcotest.(check bool) "span export stays off" true (Span.drain () = []);
  let recent = Span.recent () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " in ring") true
        (List.exists (fun (e : Span.event) -> e.Span.name = n) recent))
    [ "flight.outer"; "flight.inner"; "flight.after" ];
  let failures = Span.last_failures () in
  Alcotest.(check bool) "failure stack captured innermost-first" true
    (List.exists
       (fun (_, stack) ->
         List.exists (fun (oi : Span.open_info) -> oi.Span.oi_name = "flight.inner") stack
         && List.exists (fun (oi : Span.open_info) -> oi.Span.oi_name = "flight.outer") stack)
       failures);
  let dir = Filename.temp_file "dfm_flight" "" in
  Sys.remove dir;
  match Recorder.dump ~dir ~reason:"unit test" with
  | Error e -> Alcotest.failf "dump failed: %s" e
  | Ok (trace, text) ->
      Fun.protect
        ~finally:(fun () ->
          List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ trace; text ];
          try Sys.rmdir dir with Sys_error _ -> ())
        (fun () ->
          let t = slurp text in
          Alcotest.(check bool) "post-mortem names the reason" true (contains t "unit test");
          Alcotest.(check bool) "post-mortem shows the failing span stack" true
            (contains t "flight.inner");
          Alcotest.(check bool) "post-mortem retains the log line" true
            (contains t "recorder retains me");
          let tr = slurp trace in
          Alcotest.(check bool) "trace dump uses complete events" true
            (contains tr "\"ph\":\"X\"");
          Alcotest.(check bool) "trace dump is a Chrome trace" true
            (contains tr "{\"traceEvents\":["))

let suite =
  [
    Alcotest.test_case "log levels, sink, would_log" `Quick test_log_levels;
    Alcotest.test_case "logf renders only above level" `Quick test_logf_lazy;
    Alcotest.test_case "level_of_string" `Quick test_level_of_string;
    Alcotest.test_case "metrics counters and gauges" `Quick test_metrics_counter_gauge;
    Alcotest.test_case "metrics log2 histogram" `Quick test_metrics_histogram;
    Alcotest.test_case "metrics snapshot sorted, families persist" `Quick
      test_metrics_snapshot_sorted;
    Alcotest.test_case "spans disabled are free" `Quick test_span_disabled_is_free;
    Alcotest.test_case "span nesting, notes, exception safety" `Quick test_span_nesting;
    Alcotest.test_case "json escaping" `Quick test_json_escape;
    Alcotest.test_case "chrome trace B/E shape" `Quick test_chrome_trace_shape;
    Alcotest.test_case "prometheus exposition is duplicate-free" `Quick
      test_prometheus_exposition;
    Alcotest.test_case "live snapshots are idempotent" `Quick test_snapshot_now_idempotent;
    Alcotest.test_case "label validation and canonical series" `Quick
      test_metrics_label_validation;
    Alcotest.test_case "attributed counters follow the ambient context" `Quick
      test_attributed_counters;
    Alcotest.test_case "progress modes off-tty" `Quick test_progress_modes;
    Alcotest.test_case "flight recorder ring, failure stacks, dump" `Quick
      test_flight_recorder;
    QCheck_alcotest.to_alcotest prop_json_escape;
    QCheck_alcotest.to_alcotest prop_prom_label_escape;
    QCheck_alcotest.to_alcotest prop_stream_concurrent;
    QCheck_alcotest.to_alcotest prop_transparency;
  ]

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* --- Chrome trace events ------------------------------------------------ *)

type phase_ev = {
  p_ts : int64;  (* ns *)
  p_seq : int;  (* the domain's program-order tick for this B or E *)
  p_kind : int;  (* 1 = B, 0 = E *)
  p_name : string;
  p_tid : int;
  p_attrs : (string * string) list;
}

let chrome_trace_string events =
  let phases =
    List.concat_map
      (fun (e : Span.event) ->
        [
          {
            p_ts = e.begin_ns;
            p_seq = e.begin_seq;
            p_kind = 1;
            p_name = e.name;
            p_tid = e.tid;
            p_attrs = e.attrs;
          };
          {
            p_ts = e.end_ns;
            p_seq = e.end_seq;
            p_kind = 0;
            p_name = e.name;
            p_tid = e.tid;
            p_attrs = [];
          };
        ])
      events
  in
  (* Sort per tid by the per-domain sequence number: that reproduces the
     domain's exact program order, which by construction is a properly
     bracketed B/E stream.  (The clock alone cannot: fast sibling spans
     begin and end on the same tick, and no (ts, depth) tie-break can tell
     "close a, then open b" from "open b inside a".)  Sequence order also
     never contradicts the timestamps — the clock is non-decreasing within
     a domain. *)
  let phases =
    List.sort
      (fun a b ->
        match compare a.p_tid b.p_tid with
        | 0 -> compare a.p_seq b.p_seq
        | c -> c)
      phases
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ',';
      let us = Int64.to_float p.p_ts /. 1e3 in
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
           (json_escape p.p_name)
           (if p.p_kind = 1 then "B" else "E")
           us p.p_tid);
      if p.p_attrs <> [] then begin
        Buffer.add_string buf ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          p.p_attrs;
        Buffer.add_char buf '}'
      end;
      Buffer.add_char buf '}')
    phases;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(* Chrome "X" (complete) events: one self-contained object per span, no
   bracketing requirement — the right shape for streaming, where a parent
   span completes in a later batch than its children and a B/E encoding of
   one batch alone would be unbalanced. *)
let complete_event_string (e : Span.event) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d"
       (json_escape e.Span.name)
       (Int64.to_float e.Span.begin_ns /. 1e3)
       (Int64.to_float (Int64.sub e.Span.end_ns e.Span.begin_ns) /. 1e3)
       e.Span.tid);
  Buffer.add_string buf ",\"args\":{";
  List.iteri
    (fun j (k, v) ->
      if j > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
    (("depth", string_of_int e.Span.depth) :: e.Span.attrs);
  Buffer.add_string buf "}}";
  Buffer.contents buf

let complete_events_ndjson events =
  String.concat "" (List.map (fun e -> complete_event_string e ^ "\n") events)

let complete_trace_string events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (complete_event_string e))
    events;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let write_atomic path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content);
  Sys.rename tmp path

let write_chrome_trace path events = write_atomic path (chrome_trace_string events)

(* --- Prometheus text exposition ----------------------------------------- *)

let prom_label_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_label_escape v))
             labels)
      ^ "}"

let le_string le =
  if Float.is_integer le && Float.abs le < 1e15 then
    Printf.sprintf "%.0f" le
  else if le = infinity then "+Inf"
  else Printf.sprintf "%g" le

let prometheus_string (metrics : Metrics.metric list) =
  let buf = Buffer.create 4096 in
  let seen_family = Hashtbl.create 16 in
  List.iter
    (fun (m : Metrics.metric) ->
      if not (Hashtbl.mem seen_family m.name) then begin
        Hashtbl.add seen_family m.name ();
        if m.help <> "" then
          Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" m.name m.help);
        let ty =
          match m.value with
          | Metrics.Counter _ -> "counter"
          | Metrics.Gauge _ -> "gauge"
          | Metrics.Histogram _ -> "histogram"
        in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" m.name ty)
      end;
      match m.value with
      | Metrics.Counter v | Metrics.Gauge v ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" m.name (render_labels m.labels) v)
      | Metrics.Histogram { buckets; sum; count } ->
          Array.iter
            (fun (le, c) ->
              let labels = m.labels @ [ ("le", le_string le) ] in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" m.name (render_labels labels) c))
            buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %d\n" m.name (render_labels m.labels) sum);
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" m.name (render_labels m.labels) count))
    metrics;
  Buffer.contents buf

let write_prometheus path metrics = write_atomic path (prometheus_string metrics)

(* --- Bench JSON snapshot ------------------------------------------------- *)

let metrics_json_string (metrics : Metrics.metric list) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"metrics\":[";
  List.iteri
    (fun i (m : Metrics.metric) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "{\"name\":\"%s\"" (json_escape m.name));
      if m.labels <> [] then begin
        Buffer.add_string buf ",\"labels\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          m.labels;
        Buffer.add_char buf '}'
      end;
      (match m.value with
      | Metrics.Counter v -> Buffer.add_string buf (Printf.sprintf ",\"type\":\"counter\",\"value\":%d" v)
      | Metrics.Gauge v -> Buffer.add_string buf (Printf.sprintf ",\"type\":\"gauge\",\"value\":%d" v)
      | Metrics.Histogram { sum; count; _ } ->
          Buffer.add_string buf
            (Printf.sprintf ",\"type\":\"histogram\",\"count\":%d,\"sum\":%d" count sum));
      Buffer.add_char buf '}')
    metrics;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* --- Live snapshots (serve daemon, mid-run exporters) -------------------- *)

(* [Span.drain] consumes the recording buffers, so a naive mid-run export
   would steal spans from the end-of-run one.  The retained list makes
   snapshotting idempotent: every drain lands here first, and every
   snapshot exports the whole accumulated history. *)
let retained_spans : Span.event list ref = ref []

let retained_mutex = Mutex.create ()

let trace_events_now () =
  Mutex.protect retained_mutex @@ fun () ->
  let fresh = Span.drain () in
  retained_spans := !retained_spans @ fresh;
  !retained_spans

(* The streaming drain: fresh spans only, still appended to the retained
   history so an interleaved [snapshot_now] keeps its full-history
   idempotence — a span is returned by exactly one [take_stream] call and
   by every subsequent snapshot. *)
let take_stream () =
  Mutex.protect retained_mutex @@ fun () ->
  let fresh = Span.drain () in
  retained_spans := !retained_spans @ fresh;
  fresh

let reset_retained () =
  Mutex.protect retained_mutex @@ fun () -> retained_spans := []

let filter_families families (metrics : Metrics.metric list) =
  match families with
  | [] -> metrics
  | fs ->
      List.filter
        (fun (m : Metrics.metric) ->
          List.exists (fun f -> String.starts_with ~prefix:f m.Metrics.name) fs)
        metrics

let prometheus_now () = prometheus_string (Metrics.snapshot ())

let snapshot_now ?trace ?metrics () =
  (match trace with
  | None -> ()
  | Some path -> write_atomic path (chrome_trace_string (trace_events_now ())));
  match metrics with
  | None -> ()
  | Some path -> write_atomic path (prometheus_now ())

(** Exporters: Chrome trace-event JSON (loadable in Perfetto /
    [chrome://tracing]), Prometheus text exposition, and a compact JSON
    metrics snapshot for the bench harness.

    Exporting reads the span buffers and the metrics registry; it never
    writes anything back, so emitting (or not emitting) these artifacts
    cannot change a campaign result. *)

val chrome_trace_string : Span.event list -> string
(** [{"traceEvents":[...]}] with paired ["B"]/["E"] duration events,
    timestamps in microseconds, [tid] = recording domain, [pid] = 1.
    Within each tid the B/E stream is properly nested. *)

val write_chrome_trace : string -> Span.event list -> unit
(** [write_chrome_trace path events] — write atomically via a temp file
    and rename. *)

val prometheus_string : Metrics.metric list -> string
(** Text exposition format: [# HELP]/[# TYPE] per family, histogram
    [_bucket{le=...}]/[_sum]/[_count] series, no duplicate
    metric/label pairs. *)

val write_prometheus : string -> Metrics.metric list -> unit

val metrics_json_string : Metrics.metric list -> string
(** One JSON object [{"metrics":[...]}]; histograms summarized as
    [count]/[sum].  Used by [bench] to embed a snapshot in its output. *)

val json_escape : string -> string
(** Escape a string for inclusion inside JSON double quotes. *)

val prom_label_escape : string -> string
(** Escape a string for inclusion inside a Prometheus label value
    (backslash, double quote, newline). *)

val write_atomic : string -> string -> unit
(** [write_atomic path content] — temp file + rename, never a torn file. *)

(** {1 Streaming encoders}

    Chrome "X" (complete) events: one self-contained object per span with
    no bracketing requirement — the right shape for streaming, where a
    parent span completes in a later batch than its children. *)

val complete_event_string : Span.event -> string
(** One ["X"] trace event object ([ts]/[dur] in microseconds, nesting
    depth under [args.depth]). *)

val complete_events_ndjson : Span.event list -> string
(** One event object per line — the payload of a telemetry span frame. *)

val complete_trace_string : Span.event list -> string
(** [{"traceEvents":[...]}] of ["X"] events — the flight-recorder dump
    format. *)

val filter_families :
  string list -> Metrics.metric list -> Metrics.metric list
(** Keep metrics whose name starts with any given prefix ([[]] keeps
    all). *)

(** {1 Live snapshots}

    Mid-run exports for long-lived processes (the serve daemon serves
    Prometheus text on request and can drop a trace while jobs are still
    running).  Unlike the end-of-run writers above, these are idempotent:
    {!Span.drain} consumes the span buffers, so [snapshot_now] retains
    everything drained so far and each call exports the full history —
    calling it twice in a row writes the same trace twice, it never loses
    spans to an earlier snapshot. *)

val trace_events_now : unit -> Span.event list
(** Drain the span buffers into the retained history and return the whole
    history.  Thread-safe. *)

val take_stream : unit -> Span.event list
(** Drain the span buffers into the retained history and return only the
    freshly drained spans: each span is returned by exactly one
    [take_stream] call, while remaining part of every later
    {!trace_events_now}/{!snapshot_now} history. *)

val prometheus_now : unit -> string
(** The current metrics registry as Prometheus text exposition. *)

val reset_retained : unit -> unit
(** Discard the retained span history — test isolation. *)

val snapshot_now : ?trace:string -> ?metrics:string -> unit -> unit
(** Write the current trace and/or metrics snapshot atomically to the
    given paths.  Safe to call at any time, any number of times. *)

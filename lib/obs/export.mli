(** Exporters: Chrome trace-event JSON (loadable in Perfetto /
    [chrome://tracing]), Prometheus text exposition, and a compact JSON
    metrics snapshot for the bench harness.

    Exporting reads the span buffers and the metrics registry; it never
    writes anything back, so emitting (or not emitting) these artifacts
    cannot change a campaign result. *)

val chrome_trace_string : Span.event list -> string
(** [{"traceEvents":[...]}] with paired ["B"]/["E"] duration events,
    timestamps in microseconds, [tid] = recording domain, [pid] = 1.
    Within each tid the B/E stream is properly nested. *)

val write_chrome_trace : string -> Span.event list -> unit
(** [write_chrome_trace path events] — write atomically via a temp file
    and rename. *)

val prometheus_string : Metrics.metric list -> string
(** Text exposition format: [# HELP]/[# TYPE] per family, histogram
    [_bucket{le=...}]/[_sum]/[_count] series, no duplicate
    metric/label pairs. *)

val write_prometheus : string -> Metrics.metric list -> unit

val metrics_json_string : Metrics.metric list -> string
(** One JSON object [{"metrics":[...]}]; histograms summarized as
    [count]/[sum].  Used by [bench] to embed a snapshot in its output. *)

val json_escape : string -> string
(** Escape a string for inclusion inside JSON double quotes. *)

(** {1 Live snapshots}

    Mid-run exports for long-lived processes (the serve daemon serves
    Prometheus text on request and can drop a trace while jobs are still
    running).  Unlike the end-of-run writers above, these are idempotent:
    {!Span.drain} consumes the span buffers, so [snapshot_now] retains
    everything drained so far and each call exports the full history —
    calling it twice in a row writes the same trace twice, it never loses
    spans to an earlier snapshot. *)

val trace_events_now : unit -> Span.event list
(** Drain the span buffers into the retained history and return the whole
    history.  Thread-safe. *)

val prometheus_now : unit -> string
(** The current metrics registry as Prometheus text exposition. *)

val snapshot_now : ?trace:string -> ?metrics:string -> unit -> unit
(** Write the current trace and/or metrics snapshot atomically to the
    given paths.  Safe to call at any time, any number of times. *)

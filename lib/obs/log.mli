(** Leveled, structured logger — the replacement for the bare
    [?log:(string -> unit)] callbacks that accreted through the codebase.

    A log record is a level, a message, and a list of key/value attributes.
    Records below the current level are dropped before the message string
    is even rendered to the sink; with no sink installed (the default)
    every record is dropped, making instrumented libraries silent no-ops.

    Sinks may be called from any domain; delivery is serialized
    internally.  Logging is an output-only side channel: nothing in the
    engines reads it back, so enabling or disabling it cannot change a
    campaign result (the result-transparency invariant, DESIGN.md §8). *)

type level = Error | Warn | Info | Debug

val level_to_string : level -> string

val level_of_string : string -> level option
(** Case-insensitive; accepts [error]/[warn]/[warning]/[info]/[debug]. *)

type record = {
  level : level;
  message : string;
  attrs : (string * string) list;
}

val set_level : level -> unit
(** Records strictly below this level are dropped (default [Warn]). *)

val current_level : unit -> level

val would_log : level -> bool
(** True when a record at [level] would reach the sink — the guard for
    call sites that would otherwise build an expensive message. *)

val set_sink : (record -> unit) option -> unit
(** Install (or remove) the delivery sink.  [None] (the default) drops
    everything. *)

val stderr_sink : record -> unit
(** A ready-made sink: one [level: message k=v ...] line per record. *)

val set_retain : bool -> unit
(** Flight-recorder retention: when on, every record passing the level
    gate is also kept in a fixed-size process-wide ring (newest wins),
    whether or not a sink is installed. *)

val recent : unit -> record list
(** The retained window, oldest first. *)

val log : ?attrs:(string * string) list -> level -> string -> unit

val error : ?attrs:(string * string) list -> string -> unit
val warn : ?attrs:(string * string) list -> string -> unit
val info : ?attrs:(string * string) list -> string -> unit
val debug : ?attrs:(string * string) list -> string -> unit

val logf :
  ?attrs:(string * string) list ->
  level ->
  ('a, unit, string, unit) format4 ->
  'a
(** [Printf]-style convenience; the format is rendered only when
    {!would_log} holds. *)

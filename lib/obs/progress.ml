let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let output : (string -> unit) option ref = ref None
let out_mutex = Mutex.create ()

let set_output o =
  Mutex.lock out_mutex;
  output := o;
  Mutex.unlock out_mutex

type mode = Auto | Plain

let mode_flag = Atomic.make Auto
let set_mode m = Atomic.set mode_flag m
let mode () = Atomic.get mode_flag

let displayed = Atomic.make false

(* Control-character rewriting is only meaningful on a terminal; piped or
   redirected stderr (CI, dune runtest, daemons) would otherwise collect
   rate-limited \r garbage, so [Auto] emits nothing there.  [Plain] is the
   opt-in for logs that do want one line per update. *)
let stderr_tty = lazy (try Unix.isatty Unix.stderr with Unix.Unix_error _ -> false)

let default_output line =
  match Atomic.get mode_flag with
  | Plain -> Printf.eprintf "%s\n%!" line
  | Auto ->
      if Lazy.force stderr_tty then begin
        Printf.eprintf "\r%s\027[K%!" line;
        Atomic.set displayed true
      end

let min_interval_ns = 100_000_000L (* 100 ms *)

let last_ns = Atomic.make Int64.min_int

let emit render =
  let line = render () in
  Mutex.lock out_mutex;
  (match !output with
  | Some f -> ( try f line with _ -> ())
  | None -> default_output line);
  Mutex.unlock out_mutex

let update render =
  if Atomic.get enabled_flag then begin
    let now = Clock.now_ns () in
    let prev = Atomic.get last_ns in
    if
      Int64.compare (Int64.sub now prev) min_interval_ns >= 0
      && Atomic.compare_and_set last_ns prev now
    then emit render
  end

let force render =
  if Atomic.get enabled_flag then begin
    Atomic.set last_ns (Clock.now_ns ());
    emit render
  end

let finish () =
  if Atomic.get displayed then begin
    Printf.eprintf "\n%!";
    Atomic.set displayed false
  end

type event = {
  name : string;
  begin_ns : int64;
  end_ns : int64;
  begin_seq : int;
  end_seq : int;
  tid : int;
  depth : int;
  attrs : (string * string) list;
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let max_events_per_domain = 1_000_000
let dropped_total = Atomic.make 0
let dropped () = Atomic.get dropped_total

type open_span = {
  o_name : string;
  o_begin : int64;
  o_seq : int;
  o_depth : int;
  mutable o_attrs : (string * string) list;
}

(* One of these per domain, reached through DLS on the hot path and through
   the global registry at drain time.  The per-state mutex serializes the
   owning domain's appends against a concurrent drain; it is uncontended in
   steady state. *)
type dstate = {
  tid : int;
  lock : Mutex.t;
  mutable stack : open_span list;
  mutable events : event list;  (* reverse chronological *)
  mutable count : int;
  mutable seq : int;
      (* program-order tick, bumped at every span begin and end: the
         wall clock is too coarse to order fast spans, the sequence
         numbers always can *)
}

let states : dstate list ref = ref []
let states_mutex = Mutex.create ()

let key =
  Domain.DLS.new_key (fun () ->
      let st =
        {
          tid = (Domain.self () :> int);
          lock = Mutex.create ();
          stack = [];
          events = [];
          count = 0;
          seq = 0;
        }
      in
      Mutex.lock states_mutex;
      states := st :: !states;
      Mutex.unlock states_mutex;
      st)

let push st name attrs =
  let depth = match st.stack with [] -> 0 | o :: _ -> o.o_depth + 1 in
  let seq = st.seq in
  st.seq <- seq + 1;
  st.stack <-
    { o_name = name; o_begin = Clock.now_ns (); o_seq = seq; o_depth = depth;
      o_attrs = attrs }
    :: st.stack

let pop st =
  match st.stack with
  | [] -> ()
  | o :: rest ->
      st.stack <- rest;
      let end_seq = st.seq in
      st.seq <- end_seq + 1;
      let ev =
        {
          name = o.o_name;
          begin_ns = o.o_begin;
          end_ns = Clock.now_ns ();
          begin_seq = o.o_seq;
          end_seq;
          tid = st.tid;
          depth = o.o_depth;
          attrs = List.rev o.o_attrs;
        }
      in
      Mutex.lock st.lock;
      if st.count < max_events_per_domain then begin
        st.events <- ev :: st.events;
        st.count <- st.count + 1
      end
      else ignore (Atomic.fetch_and_add dropped_total 1);
      Mutex.unlock st.lock

let with_ ?(attrs = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let st = Domain.DLS.get key in
    push st name attrs;
    Fun.protect ~finally:(fun () -> pop st) f
  end

let note k v =
  if Atomic.get enabled_flag then
    let st = Domain.DLS.get key in
    match st.stack with
    | [] -> ()
    | o :: _ -> o.o_attrs <- (k, v) :: o.o_attrs

let drain () =
  Mutex.lock states_mutex;
  let sts = !states in
  Mutex.unlock states_mutex;
  let all =
    List.concat_map
      (fun st ->
        Mutex.lock st.lock;
        let evs = st.events in
        st.events <- [];
        st.count <- 0;
        Mutex.unlock st.lock;
        evs)
      sts
  in
  List.sort
    (fun a b ->
      match Int64.compare a.begin_ns b.begin_ns with
      | 0 -> (
          match compare a.tid b.tid with 0 -> compare a.begin_seq b.begin_seq | c -> c)
      | c -> c)
    all

let reset () = ignore (drain ())

type event = {
  name : string;
  begin_ns : int64;
  end_ns : int64;
  begin_seq : int;
  end_seq : int;
  tid : int;
  depth : int;
  attrs : (string * string) list;
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* Flight recorder: a second, always-affordable consumer of the same span
   stream.  When on, every completed span is also written into a small
   per-domain ring that wraps instead of growing — the marginal cost over
   plain recording is one array store — so the most recent window can be
   snapshotted at any time (crash dump, SIGUSR2) without draining the
   export buffers or ever growing memory. *)
let recorder_flag = Atomic.make false
let set_recorder b = Atomic.set recorder_flag b
let recorder () = Atomic.get recorder_flag

let ring_capacity = 1024

let max_events_per_domain = 1_000_000
let dropped_total = Atomic.make 0
let dropped () = Atomic.get dropped_total

type open_span = {
  o_name : string;
  o_begin : int64;
  o_seq : int;
  o_depth : int;
  mutable o_attrs : (string * string) list;
}

type open_info = {
  oi_name : string;
  oi_begin_ns : int64;
  oi_depth : int;
  oi_attrs : (string * string) list;
}

let info_of_open o =
  { oi_name = o.o_name; oi_begin_ns = o.o_begin; oi_depth = o.o_depth;
    oi_attrs = List.rev o.o_attrs }

(* One of these per domain, reached through DLS on the hot path and through
   the global registry at drain time.  The per-state mutex serializes the
   owning domain's appends against a concurrent drain; it is uncontended in
   steady state. *)
type dstate = {
  tid : int;
  lock : Mutex.t;
  mutable stack : open_span list;
  mutable events : event list;  (* reverse chronological *)
  mutable count : int;
  mutable seq : int;
      (* program-order tick, bumped at every span begin and end: the
         wall clock is too coarse to order fast spans, the sequence
         numbers always can *)
  ring : event option array;  (* flight-recorder window, circular *)
  mutable ring_pos : int;     (* next write slot *)
  mutable ring_count : int;   (* total ring writes ever *)
  mutable last_failure : open_info list;
      (* open-span stack captured at the innermost frame of the most
         recent exceptional unwind, innermost first *)
  mutable unwinding : bool;
}

let states : dstate list ref = ref []
let states_mutex = Mutex.create ()

let key =
  Domain.DLS.new_key (fun () ->
      let st =
        {
          tid = (Domain.self () :> int);
          lock = Mutex.create ();
          stack = [];
          events = [];
          count = 0;
          seq = 0;
          ring = Array.make ring_capacity None;
          ring_pos = 0;
          ring_count = 0;
          last_failure = [];
          unwinding = false;
        }
      in
      Mutex.lock states_mutex;
      states := st :: !states;
      Mutex.unlock states_mutex;
      st)

let push st name attrs =
  let depth = match st.stack with [] -> 0 | o :: _ -> o.o_depth + 1 in
  let seq = st.seq in
  st.seq <- seq + 1;
  st.stack <-
    { o_name = name; o_begin = Clock.now_ns (); o_seq = seq; o_depth = depth;
      o_attrs = attrs }
    :: st.stack

let pop st =
  match st.stack with
  | [] -> ()
  | o :: rest ->
      st.stack <- rest;
      let end_seq = st.seq in
      st.seq <- end_seq + 1;
      let ev =
        {
          name = o.o_name;
          begin_ns = o.o_begin;
          end_ns = Clock.now_ns ();
          begin_seq = o.o_seq;
          end_seq;
          tid = st.tid;
          depth = o.o_depth;
          attrs = List.rev o.o_attrs;
        }
      in
      Mutex.lock st.lock;
      if Atomic.get enabled_flag then begin
        if st.count < max_events_per_domain then begin
          st.events <- ev :: st.events;
          st.count <- st.count + 1
        end
        else ignore (Atomic.fetch_and_add dropped_total 1)
      end;
      if Atomic.get recorder_flag then begin
        st.ring.(st.ring_pos) <- Some ev;
        st.ring_pos <- (st.ring_pos + 1) mod ring_capacity;
        st.ring_count <- st.ring_count + 1
      end;
      Mutex.unlock st.lock

let with_ ?(attrs = []) name f =
  if not (Atomic.get enabled_flag || Atomic.get recorder_flag) then f ()
  else begin
    let st = Domain.DLS.get key in
    push st name attrs;
    match f () with
    | r ->
        st.unwinding <- false;
        pop st;
        r
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        (* The innermost (first-unwound) frame owns the capture: outer
           frames of the same unwind see [unwinding] already set and leave
           the snapshot alone.  The flag clears on the next span that
           completes normally, so a later failure captures fresh. *)
        if not st.unwinding then begin
          st.unwinding <- true;
          st.last_failure <- List.map info_of_open st.stack
        end;
        pop st;
        Printexc.raise_with_backtrace e bt
  end

let note k v =
  if Atomic.get enabled_flag || Atomic.get recorder_flag then
    let st = Domain.DLS.get key in
    match st.stack with
    | [] -> ()
    | o :: _ -> o.o_attrs <- (k, v) :: o.o_attrs

let sort_events all =
  List.sort
    (fun a b ->
      match Int64.compare a.begin_ns b.begin_ns with
      | 0 -> (
          match compare a.tid b.tid with 0 -> compare a.begin_seq b.begin_seq | c -> c)
      | c -> c)
    all

let all_states () =
  Mutex.lock states_mutex;
  let sts = !states in
  Mutex.unlock states_mutex;
  sts

let drain () =
  let all =
    List.concat_map
      (fun st ->
        Mutex.lock st.lock;
        let evs = st.events in
        st.events <- [];
        st.count <- 0;
        Mutex.unlock st.lock;
        evs)
      (all_states ())
  in
  sort_events all

let recent () =
  let all =
    List.concat_map
      (fun st ->
        Mutex.lock st.lock;
        let n = min st.ring_count ring_capacity in
        let evs = ref [] in
        for i = 0 to n - 1 do
          (* walk backwards from the most recent write *)
          match st.ring.((st.ring_pos - 1 - i + (2 * ring_capacity)) mod ring_capacity)
          with
          | Some e -> evs := e :: !evs
          | None -> ()
        done;
        Mutex.unlock st.lock;
        !evs)
      (all_states ())
  in
  sort_events all

(* Open stacks and failure captures are read cross-thread without the
   owner's cooperation: the reads are racy by design (a flight-recorder
   dump must not block or perturb the engine) and may observe a stack
   mid-update, which is fine for a diagnostic snapshot. *)
let open_stacks () =
  List.filter_map
    (fun st ->
      match List.map info_of_open st.stack with [] -> None | l -> Some (st.tid, l))
    (all_states ())

let last_failures () =
  List.filter_map
    (fun st -> match st.last_failure with [] -> None | l -> Some (st.tid, l))
    (all_states ())

let reset () =
  ignore (drain ());
  List.iter
    (fun st ->
      Mutex.lock st.lock;
      Array.fill st.ring 0 ring_capacity None;
      st.ring_pos <- 0;
      st.ring_count <- 0;
      st.last_failure <- [];
      st.unwinding <- false;
      Mutex.unlock st.lock)
    (all_states ())

(* Registry: one mutex around registration and snapshot (cold paths), plain
   atomics on every update (hot paths).  Histograms use fixed power-of-two
   buckets so registration needs no per-metric configuration and exposition
   buckets line up across runs. *)

let n_pow2_buckets = 40
(* le = 2^0 .. 2^39 (~550 s in ns), then +Inf. *)

type cells =
  | Ccounter of int Atomic.t
  | Cgauge of int Atomic.t
  | Chist of { counts : int Atomic.t array; sum : int Atomic.t }

type entry = {
  e_name : string;
  e_help : string;
  e_labels : (string * string) list;
  e_cells : cells;
}

type counter = int Atomic.t
type gauge = int Atomic.t
type histogram = { h_counts : int Atomic.t array; h_sum : int Atomic.t }

let registry : (string * (string * string) list, entry) Hashtbl.t =
  Hashtbl.create 64

let registry_mutex = Mutex.create ()

let canon_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

(* Label hygiene, enforced at registration: Prometheus label names must
   match [a-zA-Z_][a-zA-Z0-9_]*, and a label set with a duplicated key
   renders as an invalid exposition (two [k="…"] pairs in one series).
   Both are programming errors — reject them with a descriptive message
   instead of exporting a broken page.  [labels] arrives canonically
   sorted, so duplicates are adjacent. *)
let valid_label_name n =
  n <> ""
  && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (fun c ->
         match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       n

let check_labels name labels =
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg
          (Printf.sprintf "Dfm_obs.Metrics: %s: invalid label name %S" name k))
    labels;
  let rec dup = function
    | (a, _) :: ((b, _) :: _ as tl) -> if a = b then Some a else dup tl
    | _ -> None
  in
  match dup labels with
  | Some k ->
      invalid_arg
        (Printf.sprintf "Dfm_obs.Metrics: %s: duplicate label key %S in one label set"
           name k)
  | None -> ()

let register name help labels make =
  let labels = canon_labels labels in
  check_labels name labels;
  let key = (name, labels) in
  Mutex.lock registry_mutex;
  let entry =
    match Hashtbl.find_opt registry key with
    | Some e -> e
    | None ->
        let e = { e_name = name; e_help = help; e_labels = labels; e_cells = make () } in
        Hashtbl.add registry key e;
        e
  in
  Mutex.unlock registry_mutex;
  entry

let counter ?(help = "") ?(labels = []) name =
  let e = register name help labels (fun () -> Ccounter (Atomic.make 0)) in
  match e.e_cells with
  | Ccounter a -> a
  | _ -> invalid_arg ("Dfm_obs.Metrics.counter: " ^ name ^ " registered with another kind")

let gauge ?(help = "") ?(labels = []) name =
  let e = register name help labels (fun () -> Cgauge (Atomic.make 0)) in
  match e.e_cells with
  | Cgauge a -> a
  | _ -> invalid_arg ("Dfm_obs.Metrics.gauge: " ^ name ^ " registered with another kind")

let histogram ?(help = "") ?(labels = []) name =
  let e =
    register name help labels (fun () ->
        Chist
          {
            counts = Array.init (n_pow2_buckets + 1) (fun _ -> Atomic.make 0);
            sum = Atomic.make 0;
          })
  in
  match e.e_cells with
  | Chist { counts; sum } -> { h_counts = counts; h_sum = sum }
  | _ -> invalid_arg ("Dfm_obs.Metrics.histogram: " ^ name ^ " registered with another kind")

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c by)
let counter_value c = Atomic.get c
let set g v = Atomic.set g v
let add g v = ignore (Atomic.fetch_and_add g v)
let gauge_value g = Atomic.get g

(* Index of the first power-of-two bucket holding [v]: smallest i with
   v <= 2^i; values beyond 2^39 land in the +Inf bucket. *)
let bucket_index v =
  if v <= 1 then 0
  else begin
    let idx = ref 0 in
    let bound = ref 1 in
    while !bound < v && !idx < n_pow2_buckets do
      idx := !idx + 1;
      bound := !bound * 2
    done;
    !idx
  end

let observe h v =
  let v = if v < 0 then 0 else v in
  ignore (Atomic.fetch_and_add h.h_counts.(bucket_index v) 1);
  ignore (Atomic.fetch_and_add h.h_sum v)

let timing = Atomic.make false
let set_timing_enabled b = Atomic.set timing b
let timing_enabled () = Atomic.get timing

(* ---- ambient attribution ------------------------------------------- *)

(* One process-global context is enough: the serve daemon executes one job
   at a time (single executor lane), and the worker domains that job spawns
   all serve the same tenant.  The context is output-only — it selects
   which labeled series a bump also lands on, never what the engine
   computes — so attribution cannot change a campaign result. *)
let attribution_ctx : (string * string) list Atomic.t = Atomic.make []

(* (name, help) of every attributed counter, guarded by [registry_mutex]:
   installing a context eagerly registers each one's labeled series, so a
   tenant's families are present (at zero) even for work it never did —
   e.g. a fully-cached job has a misses series, not a hole. *)
let attributed_inventory : (string * string) list ref = ref []

let set_attribution labels =
  let labels = canon_labels labels in
  check_labels "set_attribution" labels;
  Atomic.set attribution_ctx labels;
  if labels <> [] then begin
    Mutex.lock registry_mutex;
    let inv = !attributed_inventory in
    Mutex.unlock registry_mutex;
    List.iter (fun (name, help) -> ignore (counter ~help ~labels name : counter)) inv
  end

let attribution () = Atomic.get attribution_ctx

type attributed = {
  a_name : string;
  a_help : string;
  a_base : counter;
  (* The context list is allocated once per job, so caching the last
     (context, labeled-counter) pair by physical equality makes the
     attributed hot path one atomic read beyond the base bump. *)
  a_last : ((string * string) list * counter) Atomic.t;
}

let attributed_counter ?(help = "") name =
  let base = counter ~help name in
  Mutex.lock registry_mutex;
  if not (List.mem_assoc name !attributed_inventory) then
    attributed_inventory := (name, help) :: !attributed_inventory;
  Mutex.unlock registry_mutex;
  { a_name = name; a_help = help; a_base = base; a_last = Atomic.make ([], base) }

let attr_base a = a.a_base

let incr_attr ?(by = 1) a =
  incr ~by a.a_base;
  match Atomic.get attribution_ctx with
  | [] -> ()
  | ctx ->
      let last_ctx, last_c = Atomic.get a.a_last in
      let c =
        if last_ctx == ctx then last_c
        else begin
          let c = counter ~help:a.a_help ~labels:ctx a.a_name in
          Atomic.set a.a_last (ctx, c);
          c
        end
      in
      incr ~by c

type value =
  | Counter of int
  | Gauge of int
  | Histogram of {
      buckets : (float * int) array;
      sum : int;
      count : int;
    }

type metric = {
  name : string;
  help : string;
  labels : (string * string) list;
  value : value;
}

let le_bounds =
  lazy
    (Array.init (n_pow2_buckets + 1) (fun i ->
         if i = n_pow2_buckets then infinity else Float.of_int (1 lsl i)))

let snapshot () =
  Mutex.lock registry_mutex;
  let entries = Hashtbl.fold (fun _ e acc -> e :: acc) registry [] in
  Mutex.unlock registry_mutex;
  let read e =
    let value =
      match e.e_cells with
      | Ccounter a -> Counter (Atomic.get a)
      | Cgauge a -> Gauge (Atomic.get a)
      | Chist { counts; sum } ->
          let les = Lazy.force le_bounds in
          let cum = ref 0 in
          let buckets =
            Array.mapi
              (fun i c ->
                cum := !cum + Atomic.get c;
                (les.(i), !cum))
              counts
          in
          Histogram { buckets; sum = Atomic.get sum; count = !cum }
    in
    { name = e.e_name; help = e.e_help; labels = e.e_labels; value }
  in
  List.map read entries
  |> List.sort (fun a b ->
         match compare a.name b.name with 0 -> compare a.labels b.labels | c -> c)

let find_value ?(labels = []) name =
  let labels = canon_labels labels in
  List.find_opt (fun m -> m.name = name && m.labels = labels) (snapshot ())
  |> Option.map (fun m -> m.value)

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ e ->
      match e.e_cells with
      | Ccounter a | Cgauge a -> Atomic.set a 0
      | Chist { counts; sum } ->
          Array.iter (fun c -> Atomic.set c 0) counts;
          Atomic.set sum 0)
    registry;
  Mutex.unlock registry_mutex

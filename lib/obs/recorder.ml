(* Flight recorder policy: one switch arming Span's per-domain rings and
   Log's retention, and a dump renderer producing a post-mortem pair —
   an atomic Chrome trace of the retained window (plus still-open spans,
   synthesized as "X" events closing at dump time and tagged open=true)
   and a text report with the failing span stacks, recent logs, and the
   full metrics exposition.

   Everything here is read-only with respect to the engines: arming the
   recorder costs one extra predicate in [Span.with_] plus a ring store
   per completed span, and dumping reads snapshots without blocking any
   recording domain — the result-transparency invariant holds with the
   recorder on, off, or mid-dump. *)

let set_enabled b =
  Span.set_recorder b;
  Log.set_retain b

let enabled () = Span.recorder ()

let synth_open_events ~now_ns stacks =
  List.concat_map
    (fun (tid, stack) ->
      List.map
        (fun (oi : Span.open_info) ->
          {
            Span.name = oi.Span.oi_name;
            begin_ns = oi.Span.oi_begin_ns;
            end_ns = now_ns;
            begin_seq = 0;
            end_seq = 0;
            tid;
            depth = oi.Span.oi_depth;
            attrs = ("open", "true") :: oi.Span.oi_attrs;
          })
        stack)
    stacks

let trace_string () =
  let now_ns = Clock.now_ns () in
  Export.complete_trace_string
    (Span.recent () @ synth_open_events ~now_ns (Span.open_stacks ()))

let pp_stack buf label (tid, stack) =
  Buffer.add_string buf (Printf.sprintf "%s (domain %d, innermost first):\n" label tid);
  List.iter
    (fun (oi : Span.open_info) ->
      Buffer.add_string buf
        (Printf.sprintf "  %*s%s%s\n" (2 * oi.Span.oi_depth) "" oi.Span.oi_name
           (match oi.Span.oi_attrs with
           | [] -> ""
           | attrs ->
               " ["
               ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs)
               ^ "]")))
    stack

let text_string ~reason () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "flight recorder dump\nreason: %s\n\n" reason);
  (match Span.last_failures () with
  | [] -> Buffer.add_string buf "no failure capture recorded\n"
  | fails -> List.iter (pp_stack buf "failing span stack") fails);
  Buffer.add_char buf '\n';
  (match Span.open_stacks () with
  | [] -> Buffer.add_string buf "no spans currently open\n"
  | opens -> List.iter (pp_stack buf "open span stack") opens);
  Buffer.add_char buf '\n';
  let logs = Log.recent () in
  Buffer.add_string buf (Printf.sprintf "recent log records (%d):\n" (List.length logs));
  List.iter
    (fun (r : Log.record) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s: %s%s\n"
           (Log.level_to_string r.Log.level)
           r.Log.message
           (String.concat ""
              (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) r.Log.attrs))))
    logs;
  Buffer.add_char buf '\n';
  Buffer.add_string buf "metrics at dump time:\n";
  Buffer.add_string buf (Export.prometheus_string (Metrics.snapshot ()));
  Buffer.contents buf

let dump_seq = Atomic.make 0

let dump ~dir ~reason =
  try
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    let seq = Atomic.fetch_and_add dump_seq 1 in
    let stem = Printf.sprintf "flight-%d-%d" (Unix.getpid ()) seq in
    let trace_path = Filename.concat dir (stem ^ ".trace.json") in
    let text_path = Filename.concat dir (stem ^ ".txt") in
    Export.write_atomic trace_path (trace_string ());
    Export.write_atomic text_path (text_string ~reason ());
    Ok (trace_path, text_path)
  with e -> Error (Printexc.to_string e)

type level = Error | Warn | Info | Debug

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let level_to_string = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

type record = {
  level : level;
  message : string;
  attrs : (string * string) list;
}

(* The level gate is a single atomic read on the fast path; the sink itself
   is behind a mutex because records can originate in worker domains. *)
let threshold = Atomic.make (severity Warn)
let sink : (record -> unit) option ref = ref None
let sink_mutex = Mutex.create ()

let set_level l = Atomic.set threshold (severity l)

let current_level () =
  match Atomic.get threshold with
  | 0 -> Error
  | 1 -> Warn
  | 2 -> Info
  | _ -> Debug

let set_sink s =
  Mutex.lock sink_mutex;
  sink := s;
  Mutex.unlock sink_mutex

(* Flight-recorder retention: when on, every record passing the level gate
   is also kept in a small process-wide ring, sink or no sink, so a
   post-mortem dump can include the most recent log lines. *)
let retain_capacity = 256
let retain_flag = Atomic.make false
let retain_ring : record option array = Array.make retain_capacity None
let retain_pos = ref 0
let retain_count = ref 0
let retain_mutex = Mutex.create ()

let set_retain b = Atomic.set retain_flag b

let retain r =
  Mutex.lock retain_mutex;
  retain_ring.(!retain_pos) <- Some r;
  retain_pos := (!retain_pos + 1) mod retain_capacity;
  incr retain_count;
  Mutex.unlock retain_mutex

let recent () =
  Mutex.lock retain_mutex;
  let n = min !retain_count retain_capacity in
  let out = ref [] in
  for i = 0 to n - 1 do
    match
      retain_ring.((!retain_pos - 1 - i + (2 * retain_capacity)) mod retain_capacity)
    with
    | Some r -> out := r :: !out
    | None -> ()
  done;
  Mutex.unlock retain_mutex;
  !out

let would_log l =
  (!sink <> None || Atomic.get retain_flag) && severity l <= Atomic.get threshold

let stderr_sink r =
  let attrs =
    String.concat "" (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) r.attrs)
  in
  Printf.eprintf "%s: %s%s\n%!" (level_to_string r.level) r.message attrs

let log ?(attrs = []) level message =
  if would_log level then begin
    if Atomic.get retain_flag then retain { level; message; attrs };
    Mutex.lock sink_mutex;
    (match !sink with
    | Some deliver -> ( try deliver { level; message; attrs } with _ -> ())
    | None -> ());
    Mutex.unlock sink_mutex
  end

let error ?attrs m = log ?attrs Error m
let warn ?attrs m = log ?attrs Warn m
let info ?attrs m = log ?attrs Info m
let debug ?attrs m = log ?attrs Debug m

let logf ?attrs level fmt =
  (* ksprintf renders unconditionally; keep the cheap drop for the common
     disabled case by routing through [log]'s own gate afterwards only when
     it could matter.  Call sites with expensive arguments should guard
     with [would_log] themselves. *)
  Printf.ksprintf (fun s -> log ?attrs level s) fmt

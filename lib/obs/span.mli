(** Hierarchical spans: named, timed regions recorded into per-domain
    buffers and exported as Chrome trace events.

    A span is opened and closed on the same domain; nesting follows the
    call stack, so the begin/end events of one domain are always properly
    bracketed ([with_] guarantees the close even on exceptions).  Each
    domain appends to its own buffer — no cross-domain contention on the
    hot path — and {!drain} merges the buffers for export.

    Recording is off by default.  When off, {!with_} runs its thunk with
    no clock reads and no allocation beyond the closure, preserving the
    result-transparency invariant: spans observe the computation, never
    steer it. *)

type event = {
  name : string;
  begin_ns : int64;
  end_ns : int64;
  begin_seq : int;
  end_seq : int;
      (** per-domain program-order ticks at begin/end — the exporter
          orders the B/E stream by these, because the clock is too coarse
          to order fast spans (many begin and end on the same tick) *)
  tid : int;  (** [Domain.self] of the recording domain *)
  depth : int;  (** nesting depth on that domain at begin time, 0-based *)
  attrs : (string * string) list;
}

val set_enabled : bool -> unit

val enabled : unit -> bool

(** {1 Flight recorder}

    A second consumer of the same span stream: when the recorder is on,
    every completed span is also written into a fixed per-domain ring
    ({!ring_capacity} entries) that wraps instead of growing, so the most
    recent window is always available for a post-mortem dump at near-zero
    steady-state cost.  Independent of {!set_enabled}: either switch
    activates span collection; only {!set_enabled} feeds {!drain}. *)

val set_recorder : bool -> unit

val recorder : unit -> bool

val ring_capacity : int

type open_info = {
  oi_name : string;
  oi_begin_ns : int64;
  oi_depth : int;
  oi_attrs : (string * string) list;
}

val recent : unit -> event list
(** The flight-recorder window: the most recent completed spans of every
    domain, ordered like {!drain} but without clearing anything. *)

val open_stacks : unit -> (int * open_info list) list
(** Per-domain open-span stacks (innermost first) at the instant of the
    call — a racy diagnostic snapshot, never blocking the owner. *)

val last_failures : unit -> (int * open_info list) list
(** Per-domain open-span stacks captured at the innermost frame of the
    most recent exceptional unwind through {!with_}. *)

val with_ : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_ name f] runs [f ()] inside a span named [name].  When
    recording is disabled this is just [f ()]. *)

val note : string -> string -> unit
(** Attach a key/value attribute to the innermost open span on the
    calling domain (no-op when disabled or outside any span). *)

val drain : unit -> event list
(** Completed events from every domain's buffer, ordered by [begin_ns]
    (ties broken by tid, then [begin_seq]), and clear the buffers. *)

val dropped : unit -> int
(** Events discarded because a per-domain buffer hit its cap. *)

val reset : unit -> unit
(** Clear all buffers, rings, and failure captures; open-span stacks are
    untouched — test isolation. *)

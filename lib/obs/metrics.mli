(** Process-wide metrics registry: counters, gauges, and histograms with
    fixed log2 buckets.

    Handles are registered once (first call wins; re-registering the same
    name/label pair returns the same handle) and updated lock-free with
    atomics, so hot paths — SAT inner loops, pool workers — can bump them
    from any domain.  Instrumented libraries register their inventory at
    module initialization, which keeps the exposition stable: a metric
    family is present (at zero) even in runs that never touch it.

    All values are integers; durations are recorded in nanoseconds.
    Metrics are an output-only side channel: nothing reads them back into
    engine decisions, so collection cannot change a campaign result. *)

type counter
type gauge
type histogram

val counter : ?help:string -> ?labels:(string * string) list -> string -> counter
(** Monotonically non-decreasing.  Registration rejects invalid label
    names and duplicate label keys with [Invalid_argument] (all kinds). *)

val gauge : ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram : ?help:string -> ?labels:(string * string) list -> string -> histogram
(** Fixed buckets at powers of two: [le = 1, 2, 4, …, 2^39, +Inf]. *)

val incr : ?by:int -> counter -> unit

val counter_value : counter -> int

val set : gauge -> int -> unit

val add : gauge -> int -> unit

val gauge_value : gauge -> int

val observe : histogram -> int -> unit
(** Record one (non-negative; clamped) sample. *)

(** {1 Timing switch}

    Duration histograms need two clock reads per sample; call sites guard
    those with {!timing_enabled} so a run without exporters skips the
    system calls entirely.  Plain counter/gauge bumps stay on always —
    they are single atomic adds. *)

val set_timing_enabled : bool -> unit
val timing_enabled : unit -> bool

(** {1 Ambient attribution}

    A process-global label context (tenant, job id, …) that attributed
    counters also bump under.  The serve daemon sets it around each job it
    executes; engine code stays attribution-agnostic.  Output-only: the
    context selects which labeled series a bump lands on, never what the
    engine computes. *)

val set_attribution : (string * string) list -> unit
(** Install the ambient label context ([[]] clears it).  Label names are
    validated like registration labels.  Installing a non-empty context
    eagerly registers every attributed counter's labeled series (at
    zero), so each tenant's families appear in the exposition even for
    work it never did. *)

val attribution : unit -> (string * string) list

type attributed
(** A counter that always bumps its unlabeled base series and, while an
    attribution context is installed, also a lazily-registered series
    carrying the context labels. *)

val attributed_counter : ?help:string -> string -> attributed

val incr_attr : ?by:int -> attributed -> unit

val attr_base : attributed -> counter
(** The unlabeled base series (for tests and totals). *)

(** {1 Snapshot (for exporters and tests)} *)

type value =
  | Counter of int
  | Gauge of int
  | Histogram of {
      buckets : (float * int) array;  (** (le, cumulative count), +Inf last *)
      sum : int;
      count : int;
    }

type metric = {
  name : string;
  help : string;
  labels : (string * string) list;
  value : value;
}

val snapshot : unit -> metric list
(** Every registered metric, sorted by name then labels. *)

val find_value : ?labels:(string * string) list -> string -> value option

val reset : unit -> unit
(** Zero every registered metric (registrations survive) — test isolation. *)

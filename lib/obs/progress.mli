(** Live one-line TTY progress: a carriage-return-rewritten status line,
    rate-limited so a tight campaign loop can call {!update} per accepted
    event without flooding the terminal.

    Disabled by default; when disabled {!update} returns without invoking
    its thunk, so building the line costs nothing.  Output is a side
    channel only — it never feeds back into the campaign. *)

val set_enabled : bool -> unit

val enabled : unit -> bool

type mode =
  | Auto  (** \r-rewritten line when stderr is a tty, nothing otherwise *)
  | Plain  (** one plain line per displayed update, tty or not *)

val set_mode : mode -> unit
(** Default [Auto].  Only affects the built-in stderr output; a custom
    {!set_output} sink is unaffected. *)

val mode : unit -> mode

val set_output : (string -> unit) option -> unit
(** Redirect the rendered line (tests); [None] restores the default
    stderr [\r]-rewrite behaviour. *)

val update : (unit -> string) -> unit
(** Render and display the line if enabled and at least ~100 ms have
    passed since the last display. *)

val force : (unit -> string) -> unit
(** Like {!update} but bypassing the rate limit (still gated on
    {!enabled}). *)

val finish : unit -> unit
(** Terminate the progress line (newline) if anything was displayed. *)

(** Flight recorder: an always-affordable window of recent spans and log
    records, dumpable as a post-mortem at any moment.

    Arming the recorder turns on {!Span.set_recorder} (fixed per-domain
    rings of completed spans) and {!Log.set_retain} (a fixed ring of
    recent log records).  A {!dump} writes two atomic artifacts into a
    directory: a Chrome-trace JSON of the retained window (still-open
    spans synthesized as complete events tagged [open=true]) and a text
    post-mortem (reason, failing span stacks from
    {!Span.last_failures}, open stacks, recent logs, full metrics
    exposition).

    Output-only: arming, dumping, or disabling the recorder never changes
    a campaign result. *)

val set_enabled : bool -> unit

val enabled : unit -> bool

val trace_string : unit -> string
(** The dump's trace artifact as a string (retained window + open
    spans). *)

val text_string : reason:string -> unit -> string
(** The dump's text post-mortem as a string. *)

val dump : dir:string -> reason:string -> (string * string, string) result
(** [dump ~dir ~reason] writes [flight-<pid>-<n>.trace.json] and
    [flight-<pid>-<n>.txt] under [dir] (created if missing), atomically.
    Returns the two paths. *)

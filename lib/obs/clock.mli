(** The observability clock: nanoseconds since process start, guaranteed
    non-decreasing across every domain.

    The underlying source is the wall clock, monotonized by clamping
    against the last value any domain observed — good enough for span
    timing and exporter timestamps, and crucially {e only} ever used for
    those.  The result-transparency invariant of the whole subsystem
    (DESIGN.md §8) forbids any timestamp from reaching state that is
    hashed, cached, checkpointed or compared. *)

val now_ns : unit -> int64
(** Nanoseconds since {!origin}, non-decreasing process-wide. *)

val origin : unit -> float
(** The [Unix.gettimeofday] instant the process first read the clock. *)

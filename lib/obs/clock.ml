(* Wall clock, monotonized: [now_ns] never goes backwards even if the
   system clock is stepped, because every read is clamped against the
   largest value any domain has returned so far. *)

let t0 = ref nan
let t0_mutex = Mutex.create ()

let origin () =
  if Float.is_nan !t0 then begin
    Mutex.lock t0_mutex;
    if Float.is_nan !t0 then t0 := Unix.gettimeofday ();
    Mutex.unlock t0_mutex
  end;
  !t0

let last : int64 Atomic.t = Atomic.make 0L

let rec clamp ns =
  let prev = Atomic.get last in
  if Int64.compare ns prev <= 0 then prev
  else if Atomic.compare_and_set last prev ns then ns
  else clamp ns

let now_ns () =
  let t = Unix.gettimeofday () -. origin () in
  clamp (Int64.of_float (t *. 1e9))

(** Gate-level netlists over a standard-cell {!Library}.

    A netlist is a DAG of single-output cell instances ("gates") connected by
    single-driver nets, with named primary inputs and outputs.  Sequential
    cells (D flip-flops, [Cell.is_seq]) are handled in the full-scan style the
    paper assumes: for every analysis (simulation, ATPG, fault modeling) a
    flip-flop's Q output net is a controllable pseudo-primary input and its D
    input net is an observable pseudo-primary output.  Clock distribution is
    not modeled (see DESIGN.md).

    Netlists are immutable; the resynthesis procedure rewrites regions with
    {!extract} / {!replace}, which produce fresh netlists. *)

type driver =
  | Pi of int        (** index into [pis] *)
  | Gate_out of int  (** gate id *)
  | Const of bool

type net = {
  net_id : int;
  net_name : string;
  driver : driver;
  sinks : (int * int) list;  (** (gate id, input pin index) pairs *)
}

type gate = {
  gate_id : int;
  gate_name : string;
  cell : Cell.t;
  fanins : int array;  (** net ids in cell pin order *)
  fanout : int;        (** the net this gate drives *)
}

type t = {
  name : string;
  library : Library.t;
  pis : (string * int) array;  (** (port name, net id) *)
  pos : (string * int) array;
  gates : gate array;
  nets : net array;
}

(** {1 Construction} *)

module Builder : sig
  type b

  val create : name:string -> Library.t -> b

  val add_pi : b -> string -> int
  (** Returns the net id of the new primary-input net. *)

  val const_net : b -> bool -> int
  (** A constant-0 or constant-1 net (shared per polarity). *)

  val add_gate : b -> ?name:string -> cell:string -> int array -> int
  (** [add_gate b ~cell fanins] instantiates library cell [cell] with the
      given fanin nets (pin order) and returns the id of the net it drives.
      @raise Invalid_argument if the cell is not in the library (the message
      names the cell and the netlist) or on a pin-count mismatch. *)

  val declare_net : b -> string -> int
  (** A net whose driver will be supplied later with {!add_gate_driving}.
      Needed to close sequential feedback loops (flip-flop Q feeding logic
      that computes its own D). *)

  val add_gate_driving : b -> ?name:string -> cell:string -> int array -> int -> unit
  (** Like {!add_gate} but drives a previously declared net. *)

  val mark_po : b -> string -> int -> unit
  (** Declare a net as a primary output under a port name. *)

  val finish : b -> t
  (** Freeze, compute sinks, and {!validate} the result. *)
end

(** {1 Accessors} *)

val num_gates : t -> int
val num_nets : t -> int
val gate : t -> int -> gate
val net : t -> int -> net

val driver_gate : t -> int -> int option
(** The gate driving a net, if any. *)

val comb_gates : t -> gate list
val seq_gates : t -> gate list

val input_nets : t -> (string * int) list
(** Controllable nets: primary inputs then flip-flop Q nets, with labels. *)

val observe_nets : t -> (string * int) list
(** Observable nets: primary outputs then flip-flop D nets, with labels. *)

val topo_order : t -> int array
(** Combinational gates in topological order (fanins before fanouts);
    flip-flop Q nets are sources, flip-flop gates are excluded.
    @raise Failure on a combinational cycle. *)

val gate_levels : t -> int array
(** Per-gate logic level (0 = fed only by sources); flip-flops get level 0. *)

val fanout_gates : t -> int -> int list
(** Gates reading the output net of a gate. *)

val fanin_gates : t -> int -> int list
(** Gates driving the fanin nets of a gate. *)

val adjacent_gates : t -> int -> int list
(** Structural adjacency of Section II of the paper: gates directly driving
    or directly driven by the given gate. *)

val total_area : t -> float
val cell_counts : t -> (string * int) list
(** Instances per cell name, sorted by name. *)

val validate : t -> unit
(** Internal-consistency checks (single drivers, sink lists match fanins,
    pin counts, acyclicity).  @raise Failure with a description on error. *)

(** {1 Region rewriting for resynthesis} *)

type boundary = {
  in_nets : (string * int) list;   (** sub PI port -> parent net id *)
  out_nets : (string * int) list;  (** sub PO port -> parent net id *)
}

val extract : t -> gates:int list -> t * boundary
(** [extract t ~gates] carves the given combinational gates out as a
    standalone netlist whose PIs/POs are the boundary nets.
    @raise Invalid_argument if a listed gate is sequential. *)

val replace : t -> gates:int list -> sub:t -> boundary -> t
(** [replace t ~gates ~sub boundary] removes [gates] and splices in [sub]
    (any netlist with the same boundary port names, e.g. the remapped
    extract).  Nets formerly driven by removed gates are reconnected to the
    corresponding sub outputs. *)

val pp_summary : Format.formatter -> t -> unit

type driver = Pi of int | Gate_out of int | Const of bool

type net = {
  net_id : int;
  net_name : string;
  driver : driver;
  sinks : (int * int) list;
}

type gate = {
  gate_id : int;
  gate_name : string;
  cell : Cell.t;
  fanins : int array;
  fanout : int;
}

type t = {
  name : string;
  library : Library.t;
  pis : (string * int) array;
  pos : (string * int) array;
  gates : gate array;
  nets : net array;
}

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)
(* ------------------------------------------------------------------ *)

let compute_sinks ~num_nets ~(gates : gate array) =
  let sinks = Array.make num_nets [] in
  Array.iter
    (fun g ->
      Array.iteri
        (fun pin n -> sinks.(n) <- (g.gate_id, pin) :: sinks.(n))
        g.fanins)
    gates;
  Array.map List.rev sinks

let num_gates t = Array.length t.gates
let num_nets t = Array.length t.nets
let gate t i = t.gates.(i)
let net t i = t.nets.(i)

let driver_gate t n =
  match t.nets.(n).driver with Gate_out g -> Some g | Pi _ | Const _ -> None

let comb_gates t =
  Array.to_list t.gates |> List.filter (fun g -> not g.cell.Cell.is_seq)

let seq_gates t = Array.to_list t.gates |> List.filter (fun g -> g.cell.Cell.is_seq)

let input_nets t =
  let pis = Array.to_list t.pis in
  let ffs =
    seq_gates t |> List.map (fun g -> ("ppi:" ^ g.gate_name, g.fanout))
  in
  pis @ ffs

let observe_nets t =
  let pos = Array.to_list t.pos in
  let ffs =
    seq_gates t |> List.map (fun g -> ("ppo:" ^ g.gate_name, g.fanins.(0)))
  in
  pos @ ffs

(* Kahn's algorithm over combinational gates.  A gate becomes ready when all
   fanin nets are sources (PI / const / flip-flop output) or outputs of
   already-ordered combinational gates. *)
let topo_order t =
  let n = num_gates t in
  let indeg = Array.make n 0 in
  let comb g = not g.cell.Cell.is_seq in
  Array.iter
    (fun g ->
      if comb g then
        Array.iter
          (fun fn ->
            match t.nets.(fn).driver with
            | Gate_out d when comb t.gates.(d) -> indeg.(g.gate_id) <- indeg.(g.gate_id) + 1
            | Gate_out _ | Pi _ | Const _ -> ())
          g.fanins)
    t.gates;
  let queue = Queue.create () in
  Array.iter (fun g -> if comb g && indeg.(g.gate_id) = 0 then Queue.add g.gate_id queue) t.gates;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let gid = Queue.pop queue in
    order := gid :: !order;
    incr count;
    let out_net = t.gates.(gid).fanout in
    List.iter
      (fun (sink, _) ->
        if comb t.gates.(sink) then begin
          indeg.(sink) <- indeg.(sink) - 1;
          if indeg.(sink) = 0 then Queue.add sink queue
        end)
      t.nets.(out_net).sinks
  done;
  let total_comb = List.length (comb_gates t) in
  if !count <> total_comb then
    failwith
      (Printf.sprintf "Netlist.topo_order: combinational cycle in %s (%d of %d ordered)"
         t.name !count total_comb);
  Array.of_list (List.rev !order)

let gate_levels t =
  let levels = Array.make (num_gates t) 0 in
  let order = topo_order t in
  Array.iter
    (fun gid ->
      let g = t.gates.(gid) in
      let lvl = ref 0 in
      Array.iter
        (fun fn ->
          match t.nets.(fn).driver with
          | Gate_out d when not t.gates.(d).cell.Cell.is_seq ->
              lvl := max !lvl (levels.(d) + 1)
          | Gate_out _ | Pi _ | Const _ -> ())
        g.fanins;
      levels.(gid) <- !lvl)
    order;
  levels

let fanout_gates t gid =
  let out_net = t.gates.(gid).fanout in
  t.nets.(out_net).sinks |> List.map fst |> List.sort_uniq compare

let fanin_gates t gid =
  Array.to_list t.gates.(gid).fanins
  |> List.filter_map (fun n -> driver_gate t n)
  |> List.sort_uniq compare

let adjacent_gates t gid =
  List.sort_uniq compare (fanin_gates t gid @ fanout_gates t gid)

let total_area t =
  Array.fold_left (fun acc g -> acc +. g.cell.Cell.area) 0.0 t.gates

let cell_counts t =
  let tbl = Hashtbl.create 32 in
  Array.iter
    (fun g ->
      let k = g.cell.Cell.name in
      Hashtbl.replace tbl k (1 + (try Hashtbl.find tbl k with Not_found -> 0)))
    t.gates;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let validate t =
  let fail fmt =
    Printf.ksprintf (fun s -> failwith ("Netlist.validate " ^ t.name ^ ": " ^ s)) fmt
  in
  Array.iteri
    (fun i g ->
      if g.gate_id <> i then fail "gate id mismatch at %d" i;
      if Array.length g.fanins <> Cell.arity g.cell then
        fail "gate %s: pin count %d vs cell %s arity %d" g.gate_name
          (Array.length g.fanins) g.cell.Cell.name (Cell.arity g.cell);
      Array.iter
        (fun n -> if n < 0 || n >= num_nets t then fail "gate %s: bad fanin net %d" g.gate_name n)
        g.fanins;
      if g.fanout < 0 || g.fanout >= num_nets t then fail "gate %s: bad fanout" g.gate_name;
      match t.nets.(g.fanout).driver with
      | Gate_out d when d = i -> ()
      | _ -> fail "gate %s: fanout net not driven by it" g.gate_name)
    t.gates;
  Array.iteri
    (fun i n ->
      if n.net_id <> i then fail "net id mismatch at %d" i;
      (match n.driver with
      | Pi k ->
          if k < 0 || k >= Array.length t.pis then fail "net %s: bad PI index" n.net_name;
          if snd t.pis.(k) <> i then fail "net %s: PI back-pointer mismatch" n.net_name
      | Gate_out g ->
          if g < 0 || g >= num_gates t then fail "net %s: bad driver gate" n.net_name
      | Const _ -> ());
      List.iter
        (fun (g, pin) ->
          if g < 0 || g >= num_gates t then fail "net %s: bad sink gate" n.net_name;
          if pin < 0 || pin >= Array.length t.gates.(g).fanins then
            fail "net %s: bad sink pin" n.net_name;
          if t.gates.(g).fanins.(pin) <> i then fail "net %s: sink mismatch" n.net_name)
        n.sinks)
    t.nets;
  let expected = compute_sinks ~num_nets:(num_nets t) ~gates:t.gates in
  Array.iteri
    (fun i n ->
      if List.sort compare n.sinks <> List.sort compare expected.(i) then
        fail "net %s: stale sink list" n.net_name)
    t.nets;
  Array.iter
    (fun (pname, nid) ->
      if nid < 0 || nid >= num_nets t then fail "PO %s: bad net" pname)
    t.pos;
  ignore (topo_order t)

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

module Builder = struct
  type proto_net = { mutable p_driver : driver option; p_name : string }

  type b = {
    b_name : string;
    b_lib : Library.t;
    mutable b_nets : proto_net list;  (* reversed *)
    mutable b_nnets : int;
    mutable b_gates : (string * Cell.t * int array * int) list;  (* reversed *)
    mutable b_ngates : int;
    mutable b_pis : (string * int) list;  (* reversed *)
    mutable b_pos : (string * int) list;  (* reversed *)
    mutable b_const0 : int option;
    mutable b_const1 : int option;
  }

  let create ~name lib =
    {
      b_name = name;
      b_lib = lib;
      b_nets = [];
      b_nnets = 0;
      b_gates = [];
      b_ngates = 0;
      b_pis = [];
      b_pos = [];
      b_const0 = None;
      b_const1 = None;
    }

  let fresh_net b ?driver name =
    let id = b.b_nnets in
    b.b_nets <- { p_driver = driver; p_name = name } :: b.b_nets;
    b.b_nnets <- id + 1;
    id

  let add_pi b name =
    let idx = List.length b.b_pis in
    let nid = fresh_net b ~driver:(Pi idx) name in
    b.b_pis <- (name, nid) :: b.b_pis;
    nid

  let const_net b v =
    let cached = if v then b.b_const1 else b.b_const0 in
    match cached with
    | Some n -> n
    | None ->
        let nid = fresh_net b ~driver:(Const v) (if v then "const1" else "const0") in
        if v then b.b_const1 <- Some nid else b.b_const0 <- Some nid;
        nid

  let declare_net b name = fresh_net b name

  let nth_net b nid = List.nth b.b_nets (b.b_nnets - 1 - nid)

  let add_gate_driving b ?name ~cell fanins out =
    let c =
      match Library.find_opt b.b_lib cell with
      | Some c -> c
      | None ->
          invalid_arg
            (Printf.sprintf "Builder.add_gate: unknown cell %s in netlist %s" cell
               b.b_name)
    in
    if Array.length fanins <> Cell.arity c then
      invalid_arg (Printf.sprintf "Builder.add_gate %s: expected %d pins, got %d"
                     cell (Cell.arity c) (Array.length fanins));
    let gid = b.b_ngates in
    let gname = match name with Some n -> n | None -> Printf.sprintf "g%d" gid in
    let pn = nth_net b out in
    (match pn.p_driver with
    | Some _ -> invalid_arg (Printf.sprintf "Builder.add_gate %s: net already driven" gname)
    | None -> pn.p_driver <- Some (Gate_out gid));
    b.b_gates <- (gname, c, Array.copy fanins, out) :: b.b_gates;
    b.b_ngates <- gid + 1

  let add_gate b ?name ~cell fanins =
    let out = fresh_net b (Printf.sprintf "n%d" b.b_nnets) in
    add_gate_driving b ?name ~cell fanins out;
    out

  let mark_po b name nid = b.b_pos <- (name, nid) :: b.b_pos

  let finish b =
    let nets_proto = Array.of_list (List.rev b.b_nets) in
    let gates =
      List.rev b.b_gates
      |> List.mapi (fun i (gate_name, cell, fanins, fanout) ->
             { gate_id = i; gate_name; cell; fanins; fanout })
      |> Array.of_list
    in
    let sinks = compute_sinks ~num_nets:(Array.length nets_proto) ~gates in
    let nets =
      Array.mapi
        (fun i pn ->
          match pn.p_driver with
          | None ->
              failwith
                (Printf.sprintf "Builder.finish %s: net %s has no driver" b.b_name pn.p_name)
          | Some d -> { net_id = i; net_name = pn.p_name; driver = d; sinks = sinks.(i) })
        nets_proto
    in
    let t =
      {
        name = b.b_name;
        library = b.b_lib;
        pis = Array.of_list (List.rev b.b_pis);
        pos = Array.of_list (List.rev b.b_pos);
        gates;
        nets;
      }
    in
    validate t;
    t
end

(* ------------------------------------------------------------------ *)
(* Region extraction and replacement                                   *)
(* ------------------------------------------------------------------ *)

type boundary = {
  in_nets : (string * int) list;
  out_nets : (string * int) list;
}

module IntSet = Set.Make (Int)

let extract t ~gates:region =
  let rset = IntSet.of_list region in
  List.iter
    (fun gid ->
      if t.gates.(gid).cell.Cell.is_seq then
        invalid_arg "Netlist.extract: sequential gate in region")
    region;
  (* Boundary inputs: nets read by the region but not driven inside it
     (constants excluded: they are re-created locally). *)
  let is_region_driven n =
    match t.nets.(n).driver with Gate_out g -> IntSet.mem g rset | Pi _ | Const _ -> false
  in
  let in_list = ref [] and in_seen = Hashtbl.create 16 in
  List.iter
    (fun gid ->
      Array.iter
        (fun n ->
          match t.nets.(n).driver with
          | Const _ -> ()
          | Pi _ | Gate_out _ ->
              if (not (is_region_driven n)) && not (Hashtbl.mem in_seen n) then begin
                Hashtbl.add in_seen n ();
                in_list := n :: !in_list
              end)
        t.gates.(gid).fanins)
    region;
  let in_parent_nets = List.rev !in_list in
  (* Boundary outputs: region-driven nets read outside the region or marked
     as primary outputs. *)
  let po_nets = Array.fold_left (fun acc (_, n) -> IntSet.add n acc) IntSet.empty t.pos in
  let out_parent_nets =
    List.filter_map
      (fun gid ->
        let n = t.gates.(gid).fanout in
        let outside_sink =
          List.exists (fun (g, _) -> not (IntSet.mem g rset)) t.nets.(n).sinks
        in
        if outside_sink || IntSet.mem n po_nets then Some n else None)
      region
    |> List.sort_uniq compare
  in
  let b = Builder.create ~name:(t.name ^ "_sub") t.library in
  let sub_net_of_parent = Hashtbl.create 64 in
  let in_nets =
    List.map
      (fun n ->
        let port = Printf.sprintf "bi%d" n in
        let sid = Builder.add_pi b port in
        Hashtbl.add sub_net_of_parent n sid;
        (port, n))
      in_parent_nets
  in
  (* Instantiate region gates in parent topological order. *)
  let order = topo_order t in
  Array.iter
    (fun gid ->
      if IntSet.mem gid rset then begin
        let g = t.gates.(gid) in
        let fanins =
          Array.map
            (fun n ->
              match t.nets.(n).driver with
              | Const v -> Builder.const_net b v
              | Pi _ | Gate_out _ -> Hashtbl.find sub_net_of_parent n)
            g.fanins
        in
        let out = Builder.add_gate b ~name:g.gate_name ~cell:g.cell.Cell.name fanins in
        Hashtbl.add sub_net_of_parent g.fanout out
      end)
    order;
  let out_nets =
    List.map
      (fun n ->
        let port = Printf.sprintf "bo%d" n in
        Builder.mark_po b port (Hashtbl.find sub_net_of_parent n);
        (port, n))
      out_parent_nets
  in
  (Builder.finish b, { in_nets; out_nets })

let replace t ~gates:region ~sub boundary =
  let rset = IntSet.of_list region in
  let sub_po_net port =
    match Array.find_opt (fun (p, _) -> p = port) sub.pos with
    | Some (_, n) -> n
    | None -> invalid_arg (Printf.sprintf "Netlist.replace: sub lacks PO %s" port)
  in
  let parent_of_sub_pi =
    (* sub PI index -> parent net id *)
    Array.map
      (fun (port, _) ->
        match List.assoc_opt port boundary.in_nets with
        | Some n -> n
        | None -> invalid_arg (Printf.sprintf "Netlist.replace: no boundary for sub PI %s" port))
      sub.pis
  in
  let alias_of_parent = Hashtbl.create 16 in
  (* parent net -> sub net providing its value *)
  List.iter (fun (port, n) -> Hashtbl.replace alias_of_parent n (sub_po_net port)) boundary.out_nets;
  let parent_survives n =
    match t.nets.(n).driver with Gate_out g -> not (IntSet.mem g rset) | Pi _ | Const _ -> true
  in
  (* Allocate new net ids: surviving parent nets first, then sub nets that are
     not wired straight to a sub PI. *)
  let next = ref 0 in
  let new_of_parent = Array.make (num_nets t) (-1) in
  Array.iteri
    (fun i _ ->
      if parent_survives i then begin
        new_of_parent.(i) <- !next;
        incr next
      end)
    t.nets;
  let new_of_sub = Array.make (num_nets sub) (-1) in
  Array.iteri
    (fun i n ->
      match n.driver with
      | Pi k -> new_of_sub.(i) <- new_of_parent.(parent_of_sub_pi.(k))
      | Gate_out _ | Const _ ->
          new_of_sub.(i) <- !next;
          incr next)
    sub.nets;
  let resolve_parent n =
    if parent_survives n then new_of_parent.(n)
    else
      match Hashtbl.find_opt alias_of_parent n with
      | Some sn -> new_of_sub.(sn)
      | None ->
          invalid_arg
            (Printf.sprintf "Netlist.replace: net %s is dead but still referenced"
               t.nets.(n).net_name)
  in
  (* New gate ids: kept parent gates in order, then sub gates. *)
  let kept = Array.to_list t.gates |> List.filter (fun g -> not (IntSet.mem g.gate_id rset)) in
  let new_gate_of_parent = Hashtbl.create 64 in
  List.iteri (fun i g -> Hashtbl.add new_gate_of_parent g.gate_id i) kept;
  let n_kept = List.length kept in
  let gates_list =
    List.mapi
      (fun i g ->
        {
          gate_id = i;
          gate_name = g.gate_name;
          cell = g.cell;
          fanins = Array.map resolve_parent g.fanins;
          fanout = new_of_parent.(g.fanout);
        })
      kept
    @ (Array.to_list sub.gates
      |> List.mapi (fun i g ->
             {
               gate_id = n_kept + i;
               gate_name = Printf.sprintf "%s_r%d" g.gate_name (n_kept + i);
               cell = g.cell;
               fanins = Array.map (fun n -> new_of_sub.(n)) g.fanins;
               fanout = new_of_sub.(g.fanout);
             }))
  in
  let gates = Array.of_list gates_list in
  let num_new_nets = !next in
  (* Net records. *)
  let names = Array.make num_new_nets "" in
  let drivers = Array.make num_new_nets (Const false) in
  Array.iteri
    (fun i n ->
      if parent_survives i then begin
        let id = new_of_parent.(i) in
        names.(id) <- n.net_name;
        drivers.(id) <-
          (match n.driver with
          | Pi k -> Pi k
          | Const v -> Const v
          | Gate_out g -> Gate_out (Hashtbl.find new_gate_of_parent g))
      end)
    t.nets;
  Array.iteri
    (fun i n ->
      match n.driver with
      | Pi _ -> ()
      | Const v ->
          let id = new_of_sub.(i) in
          names.(id) <- Printf.sprintf "%s_r%d" n.net_name id;
          drivers.(id) <- Const v
      | Gate_out g ->
          let id = new_of_sub.(i) in
          names.(id) <- Printf.sprintf "%s_r%d" n.net_name id;
          drivers.(id) <- Gate_out (n_kept + g))
    sub.nets;
  let sinks = compute_sinks ~num_nets:num_new_nets ~gates in
  let nets =
    Array.init num_new_nets (fun i ->
        { net_id = i; net_name = names.(i); driver = drivers.(i); sinks = sinks.(i) })
  in
  let result =
    {
      name = t.name;
      library = t.library;
      pis = Array.map (fun (p, n) -> (p, new_of_parent.(n))) t.pis;
      pos = Array.map (fun (p, n) -> (p, resolve_parent n)) t.pos;
      gates;
      nets;
    }
  in
  validate result;
  result

let pp_summary ppf t =
  Format.fprintf ppf "%s: %d PIs, %d POs, %d gates (%d seq), %d nets, area %.1f"
    t.name (Array.length t.pis) (Array.length t.pos) (num_gates t)
    (List.length (seq_gates t)) (num_nets t) (total_area t)

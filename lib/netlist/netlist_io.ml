let write ppf (t : Netlist.t) =
  Format.fprintf ppf "circuit %s@." t.name;
  Array.iter (fun (p, _) -> Format.fprintf ppf "input %s@." p) t.pis;
  (* The reader identifies nets by token, so two distinct nets sharing a
     name would silently merge into one doubly-driven net on read-back.
     Disambiguate collisions deterministically with a net-id suffix. *)
  let token_owner : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let net_token n =
    let nn = t.nets.(n) in
    match nn.Netlist.driver with
    | Netlist.Const false -> "const0"
    | Netlist.Const true -> "const1"
    | Netlist.Pi _ | Netlist.Gate_out _ -> (
        let name = nn.Netlist.net_name in
        match Hashtbl.find_opt token_owner name with
        | Some id when id <> n -> Printf.sprintf "%s~%d" name n
        | Some _ -> name
        | None ->
            Hashtbl.add token_owner name n;
            name)
  in
  Array.iter
    (fun (g : Netlist.gate) ->
      Format.fprintf ppf "gate %s %s %s" g.cell.Cell.name g.gate_name (net_token g.fanout);
      Array.iter (fun n -> Format.fprintf ppf " %s" (net_token n)) g.fanins;
      Format.fprintf ppf "@.")
    t.gates;
  Array.iter (fun (p, n) -> Format.fprintf ppf "output %s %s@." p (net_token n)) t.pos;
  Format.fprintf ppf "end@."

let to_string t =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  write ppf t;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let read ~library text =
  let lines = String.split_on_char '\n' text in
  let b = ref None in
  let nets = Hashtbl.create 256 in
  let builder () =
    match !b with Some x -> x | None -> failwith "Netlist_io.read: missing circuit header"
  in
  let net_of_token declare tok =
    let bb = builder () in
    match tok with
    | "const0" -> Netlist.Builder.const_net bb false
    | "const1" -> Netlist.Builder.const_net bb true
    | _ -> (
        match Hashtbl.find_opt nets tok with
        | Some n -> n
        | None ->
            if not declare then failwith ("Netlist_io.read: unknown net " ^ tok);
            let n = Netlist.Builder.declare_net bb tok in
            Hashtbl.add nets tok n;
            n)
  in
  let lineno = ref 0 in
  let finished = ref None in
  List.iter
    (fun raw ->
      incr lineno;
      if !finished = None then begin
        let line = String.trim raw in
        if line <> "" && line.[0] <> '#' then begin
          let words = String.split_on_char ' ' line |> List.filter (fun w -> w <> "") in
          try
            match words with
            | [ "circuit"; name ] -> b := Some (Netlist.Builder.create ~name library)
            | [ "input"; port ] ->
                let n = Netlist.Builder.add_pi (builder ()) port in
                Hashtbl.add nets port n
            | "gate" :: cell :: inst :: out :: ins ->
                let outn = net_of_token true out in
                let fanins = Array.of_list (List.map (net_of_token true) ins) in
                Netlist.Builder.add_gate_driving (builder ()) ~name:inst ~cell fanins outn
            | [ "output"; port; nettok ] ->
                Netlist.Builder.mark_po (builder ()) port (net_of_token true nettok)
            | [ "end" ] -> finished := Some (Netlist.Builder.finish (builder ()))
            | _ -> failwith "unrecognized line"
          with
          | Failure msg -> failwith (Printf.sprintf "Netlist_io.read: line %d: %s" !lineno msg)
          | Invalid_argument msg ->
              failwith (Printf.sprintf "Netlist_io.read: line %d: %s" !lineno msg)
          | Not_found ->
              failwith (Printf.sprintf "Netlist_io.read: line %d: unknown cell" !lineno)
        end
      end)
    lines;
  match !finished with
  | Some t -> t
  | None -> failwith "Netlist_io.read: missing 'end'"

let read_file ~library path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  read ~library text

module H = Dfm_incr.Hash64
module Failpoint = Dfm_util.Failpoint

type event = {
  q : int;
  phase : int;
  cell : string option;
  action : string;
  u : int;
  u_internal : int;
  smax : int;
  delay : float;
  power : float;
  cache_hits : int;
}

type accept = {
  ev : event;
  netlist : string;
  accepted : int;
  implements : int;
  sat_queries : int;
  run_cache_hits : int;
  run_conflicts : int;
  run_decisions : int;
  run_propagations : int;
  p2 : float;
}

type entry = Header of string | Event of event | Accept of accept

exception Error of string

type t = { mutable chan : out_channel option }

(* v2 added the run-attributed solver-effort counters to [accept].  The
   bump makes v1 journals fail the magic check, so [attach] restarts them
   fresh instead of unmarshalling a mismatched record layout. *)
let magic = "DFMCK02\n"

let m_frames =
  Dfm_obs.Metrics.counter ~help:"Checkpoint journal frames written"
    "dfm_checkpoint_frames_total"

(* A frame whose length prefix exceeds this is treated as corruption rather
   than attempted as an allocation: the largest honest payload is one
   accepted netlist's text. *)
let max_payload = 1 lsl 26

let checksum ~len payload = H.mix (H.of_string payload) (H.of_int len)

(* Entries are pure data (ints, floats, strings, options), so [Marshal] is a
   faithful and exact encoding; the checksum, not Marshal, is what defends
   against torn writes. *)
let frame entry =
  let payload = Marshal.to_string (entry : entry) [] in
  let len = String.length payload in
  let b = Bytes.create (4 + len + 8) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.blit_string payload 0 b 4 len;
  Bytes.set_int64_le b (4 + len) (checksum ~len payload);
  b

(* Best-effort load: surviving prefix of entries in file order, plus whether
   the file must be compacted before appending (anything dropped leaves a
   mis-framed tail). *)
let load_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let ok = ref [] and rewrite = ref false in
  let head = Bytes.create (String.length magic) in
  (try
     really_input ic head 0 (String.length magic);
     if Bytes.to_string head <> magic then begin
       rewrite := true;
       raise Exit
     end;
     let lenb = Bytes.create 4 in
     let rec loop () =
       (match input_char ic with
       | exception End_of_file -> raise Exit (* clean end *)
       | c0 -> Bytes.set lenb 0 c0);
       for i = 1 to 3 do
         Bytes.set lenb i (input_char ic)
       done;
       let len = Int32.to_int (Bytes.get_int32_le lenb 0) in
       if len < 0 || len > max_payload then begin
         rewrite := true;
         raise Exit
       end;
       let tail = Bytes.create (len + 8) in
       really_input ic tail 0 (len + 8);
       let payload = Bytes.sub_string tail 0 len in
       if Bytes.get_int64_le tail len <> checksum ~len payload then begin
         (* A frame that fails its checksum means the rest of the file is
            untrustworthy framing: drop it all. *)
         rewrite := true;
         raise Exit
       end;
       (match (Marshal.from_string payload 0 : entry) with
       | e -> ok := e :: !ok
       | exception _ ->
           rewrite := true;
           raise Exit);
       loop ()
     in
     loop ()
   with
  | Exit -> ()
  | End_of_file ->
      (* truncated mid-frame: the classic kill-during-append tail *)
      rewrite := true);
  (List.rev !ok, !rewrite)

let write_all path entries =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  output_string oc magic;
  List.iter (fun e -> output_bytes oc (frame e)) entries

(* Keep the prefix up to and including the last Accept: the dropped tail is
   exactly the work the resumed campaign re-derives deterministically. *)
let truncate_to_last_accept entries =
  let rec last i best = function
    | [] -> best
    | Accept _ :: tl -> last (i + 1) (i + 1) tl
    | (Header _ | Event _) :: tl -> last (i + 1) best tl
  in
  let n = last 0 0 entries in
  List.filteri (fun i _ -> i < n) entries

let open_append path =
  open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path

let attach ?(resume = true) ~header path =
  let fresh () =
    write_all path [ Header header ];
    ({ chan = Some (open_append path) }, [])
  in
  if (not resume) || not (Sys.file_exists path) then fresh ()
  else begin
    let entries, rewrite = load_file path in
    match entries with
    | Header h :: rest ->
        if h <> header then
          raise
            (Error
               (Printf.sprintf
                  "checkpoint %s was written by a different run configuration" path));
        let kept = truncate_to_last_accept rest in
        if rewrite || List.length kept <> List.length rest then
          write_all path (Header header :: kept);
        ({ chan = Some (open_append path) }, kept)
    | _ ->
        (* empty or headerless journal: nothing usable, start fresh *)
        fresh ()
  end

let append t entry =
  match t.chan with
  | None -> raise (Error "checkpoint: journal is closed")
  | Some oc ->
      let b = frame entry in
      (match Failpoint.check "checkpoint.append" with
      | Some Failpoint.Raise -> raise (Failpoint.Injected "checkpoint.append")
      | Some Failpoint.Io_error -> raise (Sys_error "failpoint: checkpoint.append")
      | Some Failpoint.Partial_write ->
          (* A torn write: half a frame reaches the disk, then the
             "process" dies.  The next attach must recover by dropping the
             mis-framed tail. *)
          output_bytes oc (Bytes.sub b 0 (Bytes.length b / 2));
          Stdlib.flush oc;
          raise (Sys_error "failpoint: checkpoint.append (partial write)")
      | Some (Failpoint.Delay s) ->
          Unix.sleepf s;
          output_bytes oc b
      | None -> output_bytes oc b);
      Stdlib.flush oc;
      Dfm_obs.Metrics.incr m_frames

let append_event t ev = append t (Event ev)
let append_accept t a = append t (Accept a)

let close t =
  match t.chan with
  | None -> ()
  | Some oc ->
      close_out_noerr oc;
      t.chan <- None

module N = Dfm_netlist.Netlist
module Atpg = Dfm_atpg.Atpg

type t = {
  netlist : N.t;
  floorplan : Dfm_layout.Floorplan.t;
  placement : Dfm_layout.Place.t;
  routing : Dfm_layout.Route.t;
  timing : Dfm_timing.Sta.report;
  power : Dfm_timing.Power.report;
  fault_list : Dfm_guidelines.Translate.t;
  classification : Atpg.classification;
  cluster : Cluster.t;
  escalation : Atpg.escalation_stats option;
}

type metrics = {
  f : int;
  u : int;
  u_internal : int;
  u_external : int;
  coverage : float;
  g_u : int;
  g_max : int;
  s_max : int;
  s_max_internal : int;
  pct_smax_of_u : float;
  pct_smax_of_f : float;
  pct_smax_internal : float;
  delay : float;
  power : float;
  area : float;
}

let undetectable t fid = t.classification.Atpg.status.(fid) = Atpg.Undetectable

let implement ?(seed = 3) ?floorplan ?utilization ?previous ?jobs ?cache ?max_conflicts
    ?escalation ?(static_filter = false) ?sat_mode ?certify netlist =
  Dfm_obs.Span.with_ "implement"
    ~attrs:[ ("gates", string_of_int (N.num_gates netlist)) ]
  @@ fun () ->
  let floorplan =
    match floorplan with
    | Some fp -> fp
    | None -> Dfm_layout.Floorplan.create ?utilization netlist
  in
  let prev_placement = Option.map (fun d -> d.placement) previous in
  let placement = Dfm_layout.Place.place ~seed ?previous:prev_placement netlist floorplan in
  let routing = Dfm_layout.Route.route ~seed placement in
  let timing = Dfm_timing.Sta.analyze routing in
  let power = Dfm_timing.Power.analyze ~seed routing in
  let fault_list = Dfm_guidelines.Translate.build routing in
  let static =
    if static_filter then
      let df = Dfm_lint.Dataflow.analyze netlist in
      Some (Dfm_lint.Dataflow.prove_undetectable df)
    else None
  in
  let classification =
    Atpg.classify ~seed ?jobs ?cache ?max_conflicts ?static_filter:static ?sat_mode ?certify
      netlist fault_list.Dfm_guidelines.Translate.faults
  in
  (* With a bounded budget, aborts are escalated before clustering so the
     cluster view is built from the most-resolved classification we have. *)
  let classification, escalation =
    match (max_conflicts, escalation) with
    | Some mc, Some policy when classification.Atpg.counts.Atpg.aborted > 0 ->
        let cls, stats =
          Atpg.escalate ~policy ?cache ?sat_mode ?certify ~max_conflicts:mc netlist
            fault_list.Dfm_guidelines.Translate.faults classification
        in
        (cls, Some stats)
    | _ -> (classification, None)
  in
  let cluster =
    Cluster.compute netlist fault_list.Dfm_guidelines.Translate.faults
      ~undetectable:(fun fid -> classification.Atpg.status.(fid) = Atpg.Undetectable)
  in
  {
    netlist;
    floorplan;
    placement;
    routing;
    timing;
    power;
    fault_list;
    classification;
    cluster;
    escalation;
  }

let metrics t =
  let c = t.classification.Atpg.counts in
  let faults = t.fault_list.Dfm_guidelines.Translate.faults in
  let s_max = List.length t.cluster.Cluster.smax in
  let s_max_internal = Cluster.smax_internal faults t.cluster in
  let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b in
  {
    f = c.Atpg.total;
    u = c.Atpg.undetectable;
    u_internal = c.Atpg.undetectable_internal;
    u_external = c.Atpg.undetectable_external;
    coverage = Atpg.coverage c;
    g_u = List.length t.cluster.Cluster.gu;
    g_max = List.length t.cluster.Cluster.gmax;
    s_max;
    s_max_internal;
    pct_smax_of_u = pct s_max c.Atpg.undetectable;
    pct_smax_of_f = pct s_max c.Atpg.total;
    pct_smax_internal = pct s_max_internal s_max;
    delay = t.timing.Dfm_timing.Sta.critical_path_delay;
    power = t.power.Dfm_timing.Power.total;
    area = N.total_area t.netlist;
  }

let pp_metrics ppf m =
  Format.fprintf ppf
    "F=%d U=%d (in=%d ex=%d) Cov=%.2f%% Smax=%d (%.2f%% of F) Gmax=%d delay=%.3fns power=%.3fmW"
    m.f m.u m.u_internal m.u_external m.coverage m.s_max m.pct_smax_of_f m.g_max m.delay m.power

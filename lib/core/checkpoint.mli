(** Append-only campaign journal: kill/resume for {!Resynth.run}.

    The journal records the progress of one resynthesis campaign — every
    rejected candidate as an {!event} and every accepted design point as an
    {!accept} carrying the accepted netlist (structural text), the campaign
    counters and the loop position.  The resumption contract built on it:

    {e kill the process at any instant, attach again with [resume = true],
    and the completed campaign's final design, trace and counters are
    bit-identical to the uninterrupted run.}

    This works because {!Resynth.run} is deterministic and its phase loops
    are fixpoint iterations: replaying the accepted netlists through the
    incremental [Design.implement] chain reconstructs the exact design
    state, and re-entering the loop at the journaled position re-derives
    precisely the work that followed the last accept (whose journal tail is
    truncated at attach time so nothing is duplicated).

    On-disk format, in the style of {!Dfm_incr.Store}: an 8-byte magic, then
    framed records [u32le length | payload | u64le checksum].  Loading is
    best-effort — a record with a bad checksum, a bad length or a truncated
    tail (e.g. a crash mid-append) drops the rest of the file, and the
    journal is compacted before new appends so it is always well-framed.

    Appends pass the [checkpoint.append] {!Dfm_util.Failpoint} site, which
    is how the crash-matrix test kills a campaign at every record
    boundary (including torn writes). *)

type event = {
  q : int;
  phase : int;
  cell : string option;
  action : string;
  u : int;
  u_internal : int;
  smax : int;
  delay : float;
  power : float;
  cache_hits : int;
}
(** Mirror of [Resynth.event]; duplicated here so the journal does not
    depend on the procedure it serves. *)

type accept = {
  ev : event;                (** the accept event itself *)
  netlist : string;          (** accepted netlist, [Netlist_io] text *)
  accepted : int;            (** counters {e after} this accept *)
  implements : int;
  sat_queries : int;
  run_cache_hits : int;      (** cache hits attributed to the run so far *)
  run_conflicts : int;       (** solver effort attributed to the run so far *)
  run_decisions : int;
  run_propagations : int;
  p2 : float;                (** phase-2 [S_max] bound in force (0 in phase 1) *)
}

type entry = Header of string | Event of event | Accept of accept

exception Error of string
(** Raised when attaching to a journal written by a different run
    configuration (header mismatch), or on use after {!close}. *)

type t

val attach : ?resume:bool -> header:string -> string -> t * entry list
(** [attach ~header path] opens (creating if needed) the journal at [path]
    for appending and returns the surviving entries to replay — [[]] for a
    fresh campaign.  With [resume = false] (or when no journal exists) any
    existing journal is truncated and the campaign starts fresh.  With
    [resume = true] the file is loaded best-effort, the tail after the last
    {!Accept} is dropped (that work is re-derived deterministically), and
    the compacted journal is rewritten if anything was dropped.  The
    returned list never contains [Header].
    @raise Error when the journal's header differs from [header].
    @raise Sys_error when [path] cannot be created or written. *)

val append_event : t -> event -> unit
(** Journal one non-accepted design point.  Flushes.  Raises on I/O failure
    — a checkpoint that cannot persist must be loud, not silent. *)

val append_accept : t -> accept -> unit
(** Journal one accepted design point.  Flushes; same failure contract. *)

val close : t -> unit

module N = Dfm_netlist.Netlist
module Cell = Dfm_netlist.Cell
module Library = Dfm_netlist.Library
module F = Dfm_faults.Fault
module Atpg = Dfm_atpg.Atpg

type table1_row = {
  t1_circuit : string;
  f_in : int;
  f_ex : int;
  u_in : int;
  u_ex : int;
  g_u : int;
  gmax : int;
  smax : int;
  pct_smax_u : float;
}

let table1_row ~name (d : Design.t) =
  let m = Design.metrics d in
  let fl = d.Design.fault_list in
  {
    t1_circuit = name;
    f_in = fl.Dfm_guidelines.Translate.n_internal;
    f_ex = fl.Dfm_guidelines.Translate.n_external;
    u_in = m.Design.u_internal;
    u_ex = m.Design.u_external;
    g_u = m.Design.g_u;
    gmax = m.Design.g_max;
    smax = m.Design.s_max;
    pct_smax_u = m.Design.pct_smax_of_u;
  }

let pp_table1_header ppf () =
  Format.fprintf ppf "%-11s %7s %7s %6s %6s %6s %6s %6s %9s" "Circuit" "F_In" "F_Ex" "U_In"
    "U_Ex" "G_U" "Gmax" "Smax" "%Smax_U"

let pp_table1_row ppf r =
  Format.fprintf ppf "%-11s %7d %7d %6d %6d %6d %6d %6d %8.2f%%" r.t1_circuit r.f_in r.f_ex
    r.u_in r.u_ex r.g_u r.gmax r.smax r.pct_smax_u

type table2_row = {
  t2_circuit : string;
  max_inc : string;
  f : int;
  u : int;
  cov : float;
  tests : int;
  smax : int;
  pct_smax_all : float;
  smax_i : int;
  pct_smax_i : float;
  delay_rel : float;
  power_rel : float;
  rtime : float;
}

let best_q (r : Resynth.result) =
  List.fold_left
    (fun acc (e : Resynth.event) ->
      if e.Resynth.ev_action = "accept" || e.Resynth.ev_action = "backtrack-accept" then
        max acc e.Resynth.ev_q
      else acc)
    0 r.Resynth.trace

let test_count (d : Design.t) =
  let g =
    Atpg.generate d.Design.netlist d.Design.fault_list.Dfm_guidelines.Translate.faults
  in
  List.length g.Atpg.tests

let row_of_design ~name ~max_inc ~rtime ~delay_rel ~power_rel (d : Design.t) =
  let m = Design.metrics d in
  {
    t2_circuit = name;
    max_inc;
    f = m.Design.f;
    u = m.Design.u;
    cov = m.Design.coverage;
    tests = test_count d;
    smax = m.Design.s_max;
    pct_smax_all = m.Design.pct_smax_of_f;
    smax_i = m.Design.s_max_internal;
    pct_smax_i = m.Design.pct_smax_internal;
    delay_rel;
    power_rel;
    rtime;
  }

let table2_rows ~name (r : Resynth.result) =
  let d0 = r.Resynth.initial and d1 = r.Resynth.final in
  let m0 = Design.metrics d0 and m1 = Design.metrics d1 in
  let orig = row_of_design ~name ~max_inc:"orig" ~rtime:1.0 ~delay_rel:1.0 ~power_rel:1.0 d0 in
  let resyn =
    row_of_design ~name
      ~max_inc:(Printf.sprintf "%d%%" (best_q r))
      ~rtime:(if r.Resynth.baseline_s > 0.0 then r.Resynth.elapsed_s /. r.Resynth.baseline_s else 0.0)
      ~delay_rel:(m1.Design.delay /. m0.Design.delay)
      ~power_rel:(m1.Design.power /. m0.Design.power)
      d1
  in
  (orig, resyn)

let average_rows rows =
  let n = float_of_int (max 1 (List.length rows)) in
  let favg f = List.fold_left (fun a r -> a +. f r) 0.0 rows /. n in
  let iavg f = int_of_float (Float.round (favg (fun r -> float_of_int (f r)))) in
  {
    t2_circuit = "average";
    max_inc = (match rows with r :: _ -> r.max_inc | [] -> "-");
    f = iavg (fun r -> r.f);
    u = iavg (fun r -> r.u);
    cov = favg (fun r -> r.cov);
    tests = iavg (fun r -> r.tests);
    smax = iavg (fun r -> r.smax);
    pct_smax_all = favg (fun r -> r.pct_smax_all);
    smax_i = iavg (fun r -> r.smax_i);
    pct_smax_i = favg (fun r -> r.pct_smax_i);
    delay_rel = favg (fun r -> r.delay_rel);
    power_rel = favg (fun r -> r.power_rel);
    rtime = favg (fun r -> r.rtime);
  }

let pp_table2_header ppf () =
  Format.fprintf ppf "%-11s %5s %7s %6s %7s %5s %6s %9s %7s %8s %8s %8s %6s" "Circuit"
    "MaxInc" "F" "U" "Cov" "T" "Smax" "%Smax_all" "Smax_I" "%Smax_I" "Delay" "Power" "Rtime"

let pp_table2_row ppf r =
  Format.fprintf ppf "%-11s %5s %7d %6d %6.2f%% %5d %6d %8.2f%% %7d %7.2f%% %7.2f%% %7.2f%% %6.2f"
    r.t2_circuit r.max_inc r.f r.u r.cov r.tests r.smax r.pct_smax_all r.smax_i r.pct_smax_i
    (100.0 *. r.delay_rel) (100.0 *. r.power_rel) r.rtime

type effort = {
  ef_implement_calls : int;
  ef_sat_queries : int;
  ef_cache_hits : int;
  ef_hit_rate : float;
  ef_conflicts : int;
  ef_decisions : int;
  ef_propagations : int;
  ef_resumed_steps : int;
  ef_pool_retries : int;
  ef_pool_fallbacks : int;
  ef_escalation_retries : int;
  ef_aborted_residual : int;
  ef_certified_checks : int;
  ef_certified_failures : int;
}

let effort (r : Resynth.result) =
  let lookups = r.Resynth.sat_queries + r.Resynth.cache_hits in
  {
    ef_implement_calls = r.Resynth.implement_calls;
    ef_sat_queries = r.Resynth.sat_queries;
    ef_cache_hits = r.Resynth.cache_hits;
    ef_hit_rate =
      (* Of the verdicts that would otherwise have needed a SAT query, the
         share served from the cache — a lower bound, since hits also skip
         random-simulation work. *)
      (if lookups = 0 then 0.0 else float_of_int r.Resynth.cache_hits /. float_of_int lookups);
    ef_conflicts = r.Resynth.conflicts;
    ef_decisions = r.Resynth.decisions;
    ef_propagations = r.Resynth.propagations;
    ef_resumed_steps = r.Resynth.resumed_steps;
    ef_pool_retries = r.Resynth.pool_retries;
    ef_pool_fallbacks = r.Resynth.pool_fallbacks;
    ef_escalation_retries = r.Resynth.escalation_retries;
    ef_aborted_residual = r.Resynth.aborted_residual;
    ef_certified_checks = r.Resynth.certified_checks;
    ef_certified_failures = r.Resynth.certified_failures;
  }

let pp_effort ppf e =
  Format.fprintf ppf "implement calls %d, SAT queries %d, cache hits %d (%.1f%% of hard verdicts)"
    e.ef_implement_calls e.ef_sat_queries e.ef_cache_hits (100.0 *. e.ef_hit_rate);
  Format.fprintf ppf ", conflicts %d (decisions %d, propagations %d)" e.ef_conflicts
    e.ef_decisions e.ef_propagations;
  (* Resilience counters appear only when the run actually exercised them:
     the common healthy run keeps its one-line shape. *)
  if e.ef_resumed_steps > 0 then Format.fprintf ppf ", resumed steps %d" e.ef_resumed_steps;
  if e.ef_pool_retries > 0 || e.ef_pool_fallbacks > 0 then
    Format.fprintf ppf ", pool retries %d (fallbacks %d)" e.ef_pool_retries e.ef_pool_fallbacks;
  if e.ef_escalation_retries > 0 then
    Format.fprintf ppf ", escalation retries %d" e.ef_escalation_retries;
  if e.ef_aborted_residual > 0 then
    Format.fprintf ppf ", residual aborts %d" e.ef_aborted_residual;
  (* Certification counters follow the same rule: only a certified run
     prints them, so uncertified output stays byte-identical. *)
  if e.ef_certified_checks > 0 || e.ef_certified_failures > 0 then
    Format.fprintf ppf ", certified checks %d (failed %d)" e.ef_certified_checks
      e.ef_certified_failures

type fig2_point = {
  step : int;
  phase : int;
  q : int;
  u : int;
  smax_size : int;
}

let fig2_series (r : Resynth.result) =
  let m0 = Design.metrics r.Resynth.initial in
  let start = { step = 0; phase = 1; q = 0; u = m0.Design.u; smax_size = m0.Design.s_max } in
  let accepts =
    List.filter
      (fun (e : Resynth.event) ->
        e.Resynth.ev_action = "accept" || e.Resynth.ev_action = "backtrack-accept")
      r.Resynth.trace
  in
  start
  :: List.mapi
       (fun i (e : Resynth.event) ->
         {
           step = i + 1;
           phase = e.Resynth.ev_phase;
           q = e.Resynth.ev_q;
           u = e.Resynth.ev_u;
           smax_size = e.Resynth.ev_smax;
         })
       accepts

type ablation_row = {
  ab_circuit : string;
  removed : string list;
  delay_rel : float;
  power_rel : float;
  fits : bool;
}

type guideline_row = {
  gl : Dfm_guidelines.Guideline.t;
  n_faults : int;
  n_undetectable : int;
}

let guideline_table (d : Design.t) =
  let faults = d.Design.fault_list.Dfm_guidelines.Translate.faults in
  let tally = Hashtbl.create 64 in
  Array.iteri
    (fun fid (f : F.t) ->
      let key = (f.F.origin.F.category, f.F.origin.F.guideline_index) in
      let nf, nu = try Hashtbl.find tally key with Not_found -> (0, 0) in
      let undet = if Design.undetectable d fid then 1 else 0 in
      Hashtbl.replace tally key (nf + 1, nu + undet))
    faults;
  Hashtbl.fold
    (fun (cat, idx) (nf, nu) acc ->
      { gl = Dfm_guidelines.Guideline.find cat idx; n_faults = nf; n_undetectable = nu } :: acc)
    tally []
  |> List.sort (fun a b ->
         compare (b.n_undetectable, b.n_faults) (a.n_undetectable, a.n_faults))

let ablation ~name nl =
  let d0 = Design.implement nl in
  let m0 = Design.metrics d0 in
  let lib = nl.N.library in
  let removed =
    Resynth.cells_by_internal_faults lib
    |> List.filteri (fun i _ -> i < 7)
    |> List.map (fun (c : Cell.t) -> c.Cell.name)
  in
  let restricted = Library.restrict lib ~excluded:removed in
  let nl' = Dfm_synth.Convert.remap_full nl ~library:restricted in
  try
    let d1 = Design.implement ~floorplan:d0.Design.floorplan nl' in
    let m1 = Design.metrics d1 in
    {
      ab_circuit = name;
      removed;
      delay_rel = m1.Design.delay /. m0.Design.delay;
      power_rel = m1.Design.power /. m0.Design.power;
      fits = true;
    }
  with Dfm_layout.Place.Does_not_fit _ ->
    { ab_circuit = name; removed; delay_rel = nan; power_rel = nan; fits = false }

(* ---- deterministic report texts (CLI --report, serve daemon) ---- *)

(* Byte-identical to what the analyze subcommand prints after its chatter:
   the serve daemon returns this very string, and the serve smoke test
   diffs daemon output against a one-shot `analyze --report` run. *)
let analyze_report ~name (d : Design.t) =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  let m = Design.metrics d in
  Format.fprintf ppf "%a@." N.pp_summary d.Design.netlist;
  Format.fprintf ppf "%a@." Design.pp_metrics m;
  let r = table1_row ~name d in
  Format.fprintf ppf "@[<v>Table-I row:@,%a@,%a@]@." pp_table1_header () pp_table1_row r;
  let clusters = d.Design.cluster.Cluster.clusters in
  Format.fprintf ppf "clusters of undetectable faults (largest 8 of %d): %s@."
    (List.length clusters)
    (String.concat " "
       (List.filteri (fun i _ -> i < 8) clusters
       |> List.map (fun c -> string_of_int (List.length c))));
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* Resynthesis summary restricted to run-to-run reproducible facts: no
   wall-clock, no cache-warmth-dependent numbers.  The kill/restart
   resilience test compares this text across a mid-campaign SIGKILL, so the
   accept chain must depend only on inputs. *)
let resynth_report ~name (r : Resynth.result) =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  let m0 = Design.metrics r.Resynth.initial and m1 = Design.metrics r.Resynth.final in
  Format.fprintf ppf "resynth %s: accepted %d step(s)@." name r.Resynth.accepted;
  Format.fprintf ppf "original:      U=%d Smax=%d delay=%.3f power=%.3f@." m0.Design.u
    m0.Design.s_max m0.Design.delay m0.Design.power;
  Format.fprintf ppf "resynthesized: U=%d Smax=%d delay=%.3f power=%.3f@." m1.Design.u
    m1.Design.s_max m1.Design.delay m1.Design.power;
  List.iter
    (fun (e : Resynth.event) ->
      if e.Resynth.ev_action = "accept" || e.Resynth.ev_action = "backtrack-accept" then
        Format.fprintf ppf "accept: q=%d phase=%d cell=%s action=%s U=%d Smax=%d@."
          e.Resynth.ev_q e.Resynth.ev_phase
          (Option.value e.Resynth.ev_cell ~default:"-")
          e.Resynth.ev_action e.Resynth.ev_u e.Resynth.ev_smax)
    r.Resynth.trace;
  Format.fprintf ppf "final netlist hash: %s@."
    (Dfm_incr.Hash64.to_hex
       (Dfm_incr.Hash64.of_string (Dfm_netlist.Netlist_io.to_string r.Resynth.final.Design.netlist)));
  Format.pp_print_flush ppf ();
  Buffer.contents buf

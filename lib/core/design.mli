(** One fully implemented design point: netlist → placement → routing →
    timing/power → DFM fault list → ATPG classification → clustering.

    This is the unit of work the resynthesis procedure iterates on; building
    one is the "one iteration of logic synthesis and physical design with
    test generation" that the paper's [Rtime] column normalizes by. *)

type t = {
  netlist : Dfm_netlist.Netlist.t;
  floorplan : Dfm_layout.Floorplan.t;
  placement : Dfm_layout.Place.t;
  routing : Dfm_layout.Route.t;
  timing : Dfm_timing.Sta.report;
  power : Dfm_timing.Power.report;
  fault_list : Dfm_guidelines.Translate.t;
  classification : Dfm_atpg.Atpg.classification;
  cluster : Cluster.t;
  escalation : Dfm_atpg.Atpg.escalation_stats option;
      (** abort-budget escalation spent on this classification, when a
          bounded [max_conflicts] plus an escalation policy were in force *)
}

type metrics = {
  f : int;                (** |F| *)
  u : int;                (** undetectable faults *)
  u_internal : int;
  u_external : int;
  coverage : float;       (** 1 - U/F, percent *)
  g_u : int;              (** gates corresponding to undetectable faults *)
  g_max : int;            (** gates in G_max *)
  s_max : int;            (** faults in S_max *)
  s_max_internal : int;
  pct_smax_of_u : float;
  pct_smax_of_f : float;
  pct_smax_internal : float;  (** share of S_max that is internal *)
  delay : float;          (** critical path, ns *)
  power : float;          (** mW *)
  area : float;           (** total cell area, um^2 *)
}

val implement :
  ?seed:int ->
  ?floorplan:Dfm_layout.Floorplan.t ->
  ?utilization:float ->
  ?previous:t ->
  ?jobs:int ->
  ?cache:Dfm_incr.Cache.t ->
  ?max_conflicts:int ->
  ?escalation:Dfm_atpg.Atpg.escalation_policy ->
  ?static_filter:bool ->
  ?sat_mode:Dfm_atpg.Atpg.sat_mode ->
  ?certify:bool ->
  Dfm_netlist.Netlist.t ->
  t
(** Run the whole pipeline.  [max_conflicts] bounds each classification SAT
    query; when [escalation] is also given, faults that budget aborts are
    retried on the geometric ladder of {!Dfm_atpg.Atpg.escalate} before the
    cluster view is computed, and the spent effort is reported in the
    [escalation] field.  When [floorplan] is given the design must fit
    it (raises {!Dfm_layout.Place.Does_not_fit} otherwise) — that is how the
    fixed-die constraint of the paper is enforced.  [previous] enables
    incremental (ECO) placement relative to an earlier design point.
    [jobs] shards the ATPG classification over that many worker domains
    (see {!Dfm_atpg.Atpg.classify}); the result is bit-identical for every
    value.  [cache] is handed to the classification so verdicts of
    structurally unchanged fault cones are reused instead of re-derived;
    it too never changes a verdict (see {!Dfm_incr.Cache}).
    [static_filter] (default off) runs {!Dfm_lint.Dataflow} over the
    netlist and hands its sound undetectability proof to the
    classification, skipping random simulation and SAT for statically
    proven faults — again without changing any verdict.
    [sat_mode] selects the SAT query engine (default
    {!Dfm_atpg.Atpg.default_sat_mode}: incremental sessions with learnt
    clauses shared across the faults of a shard; see
    {!Dfm_atpg.Atpg.sat_mode}).
    [certify] makes the classification (and any escalation) verify every
    emitted verdict against an independent certificate — witness
    resimulation for Detected, replayed UNSAT proofs for Undetectable; see
    {!Dfm_atpg.Atpg.classify}.  Metrics, statuses and counts are
    bit-identical to the uncertified run. *)

val metrics : t -> metrics

val undetectable : t -> int -> bool
(** Status lookup for a fault id. *)

val pp_metrics : Format.formatter -> metrics -> unit

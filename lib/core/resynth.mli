(** The paper's contribution: the iterative two-phase resynthesis procedure
    (Section III) that eliminates clusters of undetectable DFM faults while
    maintaining the design constraints of die area (frozen floorplan),
    critical-path delay and power (at most [q]% above the original design).

    Phase 1 repeatedly targets the current largest cluster [S_max]: the
    subcircuit [C_sub = G_max − G_zero] is re-mapped with library cells taken
    in decreasing order of internal fault count, excluding the prefix
    [cell_0..cell_i]; physical design runs only when the number of
    undetectable *internal* faults already decreased; a resynthesized design
    is accepted when [S_max] shrank and the total number of undetectable
    faults did not grow.  Phase 1 ends when [S_max] drops below [p1] percent
    of |F| (default 1%) or no further improvement exists.

    Phase 2 targets all gates with undetectable internal faults, accepting
    designs that reduce total [U] while keeping [S_max] below
    [p2 = max(p1, %S_max after phase 1)].

    When a candidate violates the design constraints, the backtracking
    procedure of Section III-C shrinks the set of replaced gates in groups of
    [√n], then returns the last group one gate at a time, accepting the first
    design that satisfies both the constraints and the acceptance criteria.

    Every remapped candidate additionally passes a structural hygiene gate:
    {!Dfm_lint.Lint.check} (Tier-A rules L001-L009) runs on the candidate and
    on the current design, and the candidate is discarded if any per-rule
    finding count increased ({!Dfm_lint.Lint.regressions}).  Rejections are
    counted on the [dfm_resynth_lint_rejections_total] metric.

    The driver sweeps [q] from 0 up to [q_max] (default 5), each round
    applied on top of the previous solution, and keeps the best accepted
    design. *)

type event = {
  ev_q : int;
  ev_phase : int;                 (** 1 or 2 *)
  ev_cell : string option;        (** the excluded-prefix boundary cell *)
  ev_action : string;             (** accept / reject-... / backtrack-accept *)
  ev_u : int;
  ev_u_internal : int;
  ev_smax : int;
  ev_delay : float;
  ev_power : float;
  ev_cache_hits : int;
      (** verdict-cache hits spent reaching this design point, i.e. since
          the previous event (0 when running without a cache) *)
}

type result = {
  initial : Design.t;
  final : Design.t;
  trace : event list;      (** in chronological order *)
  accepted : int;          (** accepted resynthesis steps *)
  implement_calls : int;   (** full synthesis+PD+ATPG iterations performed *)
  sat_queries : int;
      (** SAT queries spent across all classifications of the procedure
          (implement calls and internal-only checks; the baseline run is
          excluded) — the quantity the verdict cache saves *)
  cache_hits : int;        (** verdict-cache hits of this run (0 uncached) *)
  conflicts : int;
  decisions : int;
  propagations : int;
      (** solver effort of this run's SAT queries (baseline excluded),
          attributed like [cache_hits]: deltas of the process-wide
          {!Dfm_sat.Solver.totals}, restored across a checkpoint resume.
          Counting is unconditional, so the numbers are independent of any
          observability setting and of [--jobs] *)
  elapsed_s : float;
  baseline_s : float;      (** duration of one implement call (Rtime unit) *)
  resumed_steps : int;     (** accepted steps replayed from a checkpoint journal *)
  pool_retries : int;      (** supervised worker-pool task retries during the run *)
  pool_fallbacks : int;    (** pool tasks re-run sequentially in the coordinator *)
  escalation_retries : int;   (** abort-budget escalation SAT queries *)
  escalation_resolved : int;  (** aborts turned into verdicts by escalation *)
  aborted_residual : int;
      (** aborts surviving every escalation ladder of the run — reported,
          never silently dropped *)
  certified_checks : int;
      (** certificate checks performed during this call when [certify] was
          set (witness resimulations, replayed UNSAT proofs, model checks,
          equivalence certificates of accepted ECOs); 0 uncertified *)
  certified_failures : int;
      (** certificate checks that failed; a completed run always reports 0
          because a failure raises {!Dfm_sat.Cert.Check_failed} *)
}

type checkpoint_spec = {
  path : string;   (** journal file (see {!Checkpoint}) *)
  resume : bool;   (** continue from an existing journal vs. start fresh *)
}

val cells_by_internal_faults : Dfm_netlist.Library.t -> Dfm_netlist.Cell.t list
(** Combinational cells in decreasing order of internal fault count — the
    order in which the procedure considers exclusions. *)

val run :
  ?p1_percent:float ->
  ?q_max:int ->
  ?seed:int ->
  ?sweep:bool ->
  ?context_levels:int ->
  ?cache:Dfm_incr.Cache.t ->
  ?max_conflicts:int ->
  ?escalation:Dfm_atpg.Atpg.escalation_policy ->
  ?sat_mode:Dfm_atpg.Atpg.sat_mode ->
  ?certify:bool ->
  ?checkpoint:checkpoint_spec ->
  ?log:(string -> unit) ->
  (* [?log] is deprecated: campaign messages now flow through
     {!Dfm_obs.Log} (as [Info] records) unless this shim is given, in which
     case it receives every message verbatim as before. *)
  ?interrupt:(unit -> unit) ->
  (* [?interrupt] is polled at every design-point boundary (each phase-loop
     iteration and each candidate evaluation).  Raising from it aborts the
     campaign there; the checkpoint journal is closed first, so a
     checkpointed campaign cancelled this way resumes from its last accept.
     The serve daemon implements job cancellation and wall-clock limits
     with this hook. *)
  Design.t ->
  result
(** [sweep] (default true) lets Synthesize() SAT-sweep the extracted
    subcircuit; [context_levels] (default 2) is how many levels of fanin
    context are added to C_sub − G_zero (see DESIGN.md §5).  Both exist so
    the design-choice ablations in the bench can quantify their effect.

    [cache] is one verdict store threaded through every classification the
    procedure performs (candidate implement calls and the cheap
    internal-only pre-checks).  Each iteration edits a local region, so
    most fault cones — and therefore verdicts — carry over; the cache skips
    their re-derivation without changing any result ({!Dfm_incr.Cache}).
    The baseline timing run stays uncached, it is the comparison unit.

    [max_conflicts] bounds every classification SAT query; with
    [escalation] also set, aborted faults are retried on the geometric
    budget ladder of {!Dfm_atpg.Atpg.escalate} and any residue is reported
    in [aborted_residual].

    [sat_mode] (default {!Dfm_atpg.Atpg.default_sat_mode}, i.e.
    incremental) selects the SAT engine for every classification the
    campaign performs — see {!Dfm_atpg.Atpg.sat_mode}.

    [certify] (default false) verifies every verdict the campaign relies on
    against an independent certificate: each classification runs certified
    (see {!Dfm_atpg.Atpg.classify}), and every accepted ECO — fresh or
    replayed from a journal — must additionally pass a checked SAT
    equivalence certificate against the design it replaces before the
    checkpoint journal records it.  A failed check raises
    {!Dfm_sat.Cert.Check_failed}.  The final design, trace and every
    counter except [certified_checks] / [certified_failures] are
    bit-identical to the uncertified run.

    [checkpoint] journals every design point to [path] ({!Checkpoint}).
    Resumption contract: kill the process at any instant and re-run with
    [resume = true] — the completed campaign's final design, trace and
    counters are bit-identical to the uninterrupted run.  (With a
    {e persistent} cache the per-event [ev_cache_hits] attribution may
    differ across a resume, since replay skips re-deriving work; every
    verdict, design and count is unaffected.)  A journal written under a
    different configuration (netlist, seed, [p1], [q_max], …) is refused
    with {!Checkpoint.Error}. *)

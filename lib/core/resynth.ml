module N = Dfm_netlist.Netlist
module Cell = Dfm_netlist.Cell
module Library = Dfm_netlist.Library
module F = Dfm_faults.Fault
module Atpg = Dfm_atpg.Atpg
module Udfm = Dfm_cellmodel.Udfm
module IntSet = Set.Make (Int)
module Span = Dfm_obs.Span
module Progress = Dfm_obs.Progress

type event = {
  ev_q : int;
  ev_phase : int;
  ev_cell : string option;
  ev_action : string;
  ev_u : int;
  ev_u_internal : int;
  ev_smax : int;
  ev_delay : float;
  ev_power : float;
  ev_cache_hits : int;
}

type result = {
  initial : Design.t;
  final : Design.t;
  trace : event list;
  accepted : int;
  implement_calls : int;
  sat_queries : int;
  cache_hits : int;
  conflicts : int;
  decisions : int;
  propagations : int;
  elapsed_s : float;
  baseline_s : float;
  resumed_steps : int;
  pool_retries : int;
  pool_fallbacks : int;
  escalation_retries : int;
  escalation_resolved : int;
  aborted_residual : int;
  certified_checks : int;
  certified_failures : int;
}

type checkpoint_spec = { path : string; resume : bool }

let cells_by_internal_faults lib =
  Library.combinational lib
  |> List.sort (fun (a : Cell.t) (b : Cell.t) ->
         let ca = Udfm.internal_fault_count a.Cell.name
         and cb = Udfm.internal_fault_count b.Cell.name in
         if ca <> cb then compare cb ca else compare a.Cell.name b.Cell.name)

type state = {
  mutable current : Design.t;
  mutable trace : event list;  (* reversed *)
  mutable accepted : int;
  mutable implements : int;
  mutable sat_queries : int;
  mutable hits_seen : int;  (* cache hits already attributed to an event *)
  mutable hits0 : int;          (* cache counter at run (post-replay) start *)
  mutable hits_restored : int;  (* run-attributed hits restored from the journal *)
  (* Solver-effort attribution, same shape as the cache-hit attribution:
     the process-wide [Solver.totals] are snapshot after baseline + replay
     ([eff0]) and the journaled run-attributed totals of the resumed run are
     restored separately, so a resumed campaign reports the same effort the
     uninterrupted run would. *)
  mutable conf0 : int;
  mutable dec0 : int;
  mutable prop0 : int;
  mutable conf_restored : int;
  mutable dec_restored : int;
  mutable prop_restored : int;
  mutable resumed_steps : int;  (* accepted steps replayed from the journal *)
  mutable esc_retried : int;
  mutable esc_resolved : int;
  mutable esc_residual : int;
  cache : Dfm_incr.Cache.t option;
  max_conflicts : int option;
  escalation : Atpg.escalation_policy option;
  sat_mode : Atpg.sat_mode;
  certify : bool;
  ckpt : Checkpoint.t option;
  floorplan : Dfm_layout.Floorplan.t;
  orig_delay : float;
  orig_power : float;
  seed : int;
  sweep : bool;
  context_levels : int;
  log : string -> unit;
  interrupt : unit -> unit;
}

let cache_hits_so_far st =
  match st.cache with None -> 0 | Some c -> (Dfm_incr.Cache.stats c).Dfm_incr.Store.hits

let u_total (d : Design.t) = d.Design.classification.Atpg.counts.Atpg.undetectable

let u_internal (d : Design.t) = d.Design.classification.Atpg.counts.Atpg.undetectable_internal

let smax (d : Design.t) = List.length d.Design.cluster.Cluster.smax

let pct_smax_f (d : Design.t) =
  let f = d.Design.classification.Atpg.counts.Atpg.total in
  if f = 0 then 0.0 else 100.0 *. float_of_int (smax d) /. float_of_int f

let ckpt_of_event (e : event) : Checkpoint.event =
  {
    Checkpoint.q = e.ev_q;
    phase = e.ev_phase;
    cell = e.ev_cell;
    action = e.ev_action;
    u = e.ev_u;
    u_internal = e.ev_u_internal;
    smax = e.ev_smax;
    delay = e.ev_delay;
    power = e.ev_power;
    cache_hits = e.ev_cache_hits;
  }

let event_of_ckpt (e : Checkpoint.event) : event =
  {
    ev_q = e.Checkpoint.q;
    ev_phase = e.Checkpoint.phase;
    ev_cell = e.Checkpoint.cell;
    ev_action = e.Checkpoint.action;
    ev_u = e.Checkpoint.u;
    ev_u_internal = e.Checkpoint.u_internal;
    ev_smax = e.Checkpoint.smax;
    ev_delay = e.Checkpoint.delay;
    ev_power = e.Checkpoint.power;
    ev_cache_hits = e.Checkpoint.cache_hits;
  }

(* Run-attributed cache hits so far, including what a resumed journal
   already accounted for. *)
let run_hits st = st.hits_restored + (cache_hits_so_far st - st.hits0)

(* Run-attributed solver effort (conflicts, decisions, propagations).
   [Solver.totals] sums over a deterministic query set, so the deltas are
   order-independent — identical at any [--jobs] count. *)
let run_effort st =
  let c, d, p = Dfm_sat.Solver.totals () in
  ( st.conf_restored + (c - st.conf0),
    st.dec_restored + (d - st.dec0),
    st.prop_restored + (p - st.prop0) )

let record st ~q ~phase ~cell ~action (d : Design.t) =
  (* Hits since the previous event: the cache traffic of every implement /
     internal-check call evaluated on the way to this design point. *)
  let hits_now = cache_hits_so_far st in
  let ev_cache_hits = hits_now - st.hits_seen in
  st.hits_seen <- hits_now;
  let ev =
    {
      ev_q = q;
      ev_phase = phase;
      ev_cell = cell;
      ev_action = action;
      ev_u = u_total d;
      ev_u_internal = u_internal d;
      ev_smax = smax d;
      ev_delay = d.Design.timing.Dfm_timing.Sta.critical_path_delay;
      ev_power = d.Design.power.Dfm_timing.Power.total;
      ev_cache_hits;
    }
  in
  st.trace <- ev :: st.trace;
  Progress.update (fun () ->
      Printf.sprintf "q=%d phase %d | %d evaluated, %d accepted | U=%d (internal %d) Smax=%d"
        q phase (List.length st.trace) st.accepted ev.ev_u ev.ev_u_internal ev.ev_smax);
  (* Rejected candidates are journaled here; accepted ones are journaled by
     [run_phase] as Accept records (which embed this same event) once the
     campaign counters have been bumped. *)
  match st.ckpt with
  | Some ck when action = "reject" -> Checkpoint.append_event ck (ckpt_of_event ev)
  | Some _ | None -> ()

(* Undetectable internal fault count of a bare netlist (no layout): internal
   faults do not depend on placement/routing, so this gates PDesign() as in
   Section III-B. *)
let note_escalation st (es : Atpg.escalation_stats) =
  st.esc_retried <- st.esc_retried + es.Atpg.retried;
  st.esc_resolved <- st.esc_resolved + es.Atpg.resolved;
  st.esc_residual <- st.esc_residual + es.Atpg.residual;
  st.sat_queries <- st.sat_queries + es.Atpg.retried

let internal_u_of_netlist st nl =
  let faults = Dfm_guidelines.Translate.internal_only nl in
  let cls =
    Atpg.classify ~seed:st.seed ?max_conflicts:st.max_conflicts ?cache:st.cache
      ~sat_mode:st.sat_mode ~certify:st.certify nl faults
  in
  st.sat_queries <- st.sat_queries + cls.Atpg.counts.Atpg.sat_queries;
  let cls =
    match (st.max_conflicts, st.escalation) with
    | Some mc, Some policy when cls.Atpg.counts.Atpg.aborted > 0 ->
        let cls', es =
          Atpg.escalate ~policy ?cache:st.cache ~sat_mode:st.sat_mode ~certify:st.certify
            ~max_conflicts:mc nl faults cls
        in
        note_escalation st es;
        cls'
    | _ -> cls
  in
  cls.Atpg.counts.Atpg.undetectable

let implement_opt st nl =
  st.implements <- st.implements + 1;
  try
    let d =
      Design.implement ~seed:st.seed ~floorplan:st.floorplan ~previous:st.current
        ?cache:st.cache ?max_conflicts:st.max_conflicts ?escalation:st.escalation
        ~sat_mode:st.sat_mode ~certify:st.certify nl
    in
    st.sat_queries <- st.sat_queries + d.Design.classification.Atpg.counts.Atpg.sat_queries;
    Option.iter
      (fun (es : Atpg.escalation_stats) ->
        st.esc_retried <- st.esc_retried + es.Atpg.retried;
        st.esc_resolved <- st.esc_resolved + es.Atpg.resolved;
        st.esc_residual <- st.esc_residual + es.Atpg.residual)
      d.Design.escalation;
    Some d
  with Dfm_layout.Place.Does_not_fit _ -> None

let constraints_ok st ~q (d : Design.t) =
  let limit base = base *. (1.0 +. (float_of_int q /. 100.0)) +. 1e-9 in
  d.Design.timing.Dfm_timing.Sta.critical_path_delay <= limit st.orig_delay
  && d.Design.power.Dfm_timing.Power.total <= limit st.orig_power

let accepts ~phase ~p2 st (d : Design.t) =
  let cur = st.current in
  match phase with
  | 1 -> smax d < smax cur && u_total d <= u_total cur
  | _ -> u_total d < u_total cur && pct_smax_f d <= p2 +. 1e-9

(* Combinational gates hosting at least one undetectable internal fault,
   optionally restricted to a gate set: this is C_sub − G_zero. *)
let gates_with_undetectable_internal (d : Design.t) ~within =
  let nl = d.Design.netlist in
  let faults = d.Design.fault_list.Dfm_guidelines.Translate.faults in
  let winset = Option.map (fun l -> IntSet.of_list l) within in
  let keep = Hashtbl.create 64 in
  Array.iteri
    (fun fid f ->
      if d.Design.classification.Atpg.status.(fid) = Atpg.Undetectable then
        match f.F.kind with
        | F.Internal (g, _) when not (N.gate nl g).N.cell.Cell.is_seq ->
            let inside = match winset with None -> true | Some s -> IntSet.mem g s in
            if inside then Hashtbl.replace keep g ()
        | F.Internal _ | F.Stuck _ | F.Transition _ | F.Bridge _ -> ())
    faults;
  Hashtbl.fold (fun g () acc -> g :: acc) keep [] |> List.sort compare

(* Grow a region with [levels] levels of combinational fanin context.
   DESIGN.md §5 documents this deviation: the paper's C_sub = G_max spans
   hundreds-to-thousands of gates and naturally contains the logic that
   *causes* the local redundancy; at our scaled-down cluster sizes the same
   context must be added explicitly or Synthesize() sees the correlated
   control signals as opaque inputs and cannot remove anything. *)
let grow_region nl region ~levels =
  let set = ref (IntSet.of_list region) in
  for _ = 1 to levels do
    IntSet.iter
      (fun g ->
        List.iter
          (fun d -> if not (N.gate nl d).N.cell.Cell.is_seq then set := IntSet.add d !set)
          (N.fanin_gates nl g))
      !set
  done;
  IntSet.elements !set

(* Candidate netlists are canonicalized through the Netlist_io text
   roundtrip before use.  The fresh names and net ids the mapper stitches
   into a remapped netlist depend on the in-memory id layout of the parent
   it was grown from; the roundtrip renumbers everything into text order —
   a fixpoint of read∘to_string — so a campaign resumed from journaled
   netlist text walks through identical netlist representations and
   re-derives a bit-identical continuation (see {!Checkpoint}). *)
let canonical nl =
  Dfm_netlist.Netlist_io.read ~library:nl.N.library (Dfm_netlist.Netlist_io.to_string nl)

let remap_opt st nl ~region ~library =
  try
    Some
      (canonical
         (Dfm_synth.Convert.remap_region ~goal:`Area ~sweep:st.sweep nl ~gates:region ~library))
  with Dfm_synth.Mapper.Unmappable _ -> None

(* Structural hygiene gate over candidate replacements: a remap that
   introduces new Tier-A lint findings (per-rule count increase, L001-L009)
   relative to the current design is discarded before any internal-fault
   check or implementation effort is spent on it. *)
let tier_a_config =
  {
    Dfm_lint.Lint.default_config with
    Dfm_lint.Lint.rules =
      Some [ "L001"; "L002"; "L003"; "L004"; "L005"; "L006"; "L007"; "L008"; "L009" ];
  }

let m_lint_rejects =
  Dfm_obs.Metrics.counter
    ~help:"Resynthesis candidates rejected for introducing new lint findings"
    "dfm_resynth_lint_rejections_total"

let lint_regressed st nl =
  let check n = Dfm_lint.Lint.check ~config:tier_a_config n in
  match
    Dfm_lint.Lint.regressions ~before:(check st.current.Design.netlist) ~after:(check nl)
  with
  | [] -> false
  | _ :: _ ->
      Dfm_obs.Metrics.incr m_lint_rejects;
      true

(* One evaluated candidate: remap, cheap internal check, full implement.
   [threshold] is the internal-undetectable count to beat before physical
   design is worth running. *)
type candidate_outcome =
  | Worse            (* internal undetectables did not decrease: no PDesign *)
  | No_fit           (* floorplan (die area) violated *)
  | Implemented of int * Design.t  (* the candidate's internal count *)

let evaluate st ~threshold ~region ~library =
  st.interrupt ();
  match remap_opt st st.current.Design.netlist ~region ~library with
  | None -> None
  | Some nl when lint_regressed st nl -> None
  | Some nl ->
      let u_in' = internal_u_of_netlist st nl in
      if u_in' >= threshold then Some Worse
      else begin
        match implement_opt st nl with
        | None -> Some No_fit
        | Some d -> Some (Implemented (u_in', d))
      end

(* ------------------------------------------------------------------ *)
(* Backtracking procedure (Section III-C)                               *)
(* ------------------------------------------------------------------ *)

let backtrack st ~q ~phase ~p2 ~region ~library ~prefix_names ~cell_name =
  let nl = st.current.Design.netlist in
  let g_i =
    List.filter (fun g -> List.mem (N.gate nl g).N.cell.Cell.name prefix_names) region
  in
  let n = List.length g_i in
  if n = 0 then None
  else begin
    let step = max 1 (int_of_float (Float.round (sqrt (float_of_int n)))) in
    let g_i = Array.of_list g_i in
    (* [frozen] gates move from G_i into G_back (kept unchanged). *)
    let result = ref None in
    let frozen = ref 0 in
    let try_with_back nback =
      let back = Array.to_list (Array.sub g_i 0 nback) in
      let region' = List.filter (fun g -> not (List.mem g back)) region in
      if region' = [] then None
      else
        Option.map (fun o -> (o, region'))
          (evaluate st ~threshold:(u_internal st.current) ~region:region' ~library)
    in
    (try
       while !frozen < n && !result = None do
         let nback = min n (!frozen + step) in
         frozen := nback;
         match try_with_back nback with
         | None | Some (Worse, _) ->
             (* Freezing ever more gates cannot lower the internal count
                again; stop. *)
             raise Exit
         | Some (No_fit, _) -> ()  (* still too large: freeze more *)
         | Some (Implemented (_, d), _) ->
             let ok_c = constraints_ok st ~q d and ok_a = accepts ~phase ~p2 st d in
             if ok_c && ok_a then begin
               record st ~q ~phase ~cell:(Some cell_name) ~action:"backtrack-accept" d;
               result := Some d
             end
             else if ok_c (* constraints met but too few faults removed:
                             return the last group one gate at a time *) then begin
               let lo = nback - step in
               let k = ref (nback - 1) in
               while !k > lo && !result = None do
                 (match try_with_back !k with
                 | Some (Implemented (_, d2), _) ->
                     let ok_c2 = constraints_ok st ~q d2 and ok_a2 = accepts ~phase ~p2 st d2 in
                     if ok_c2 && ok_a2 then begin
                       record st ~q ~phase ~cell:(Some cell_name) ~action:"backtrack-accept" d2;
                       result := Some d2
                     end
                     else if not ok_c2 then raise Exit
                 | Some (Worse, _) | Some (No_fit, _) | None -> ());
                 decr k
               done;
               raise Exit
             end
             (* constraints violated: freeze more gates *)
       done
     with Exit -> ());
    !result
  end

(* ------------------------------------------------------------------ *)
(* One improvement attempt: the cell loop of Section III-B              *)
(* ------------------------------------------------------------------ *)

let try_cells st ~q ~phase ~p2 ~region =
  let nl = st.current.Design.netlist in
  let lib = nl.N.library in
  let ordered = cells_by_internal_faults lib in
  (* Only candidates that set a new best internal-undetectable count get the
     expensive physical design + full ATPG; later prefixes that are merely
     "not worse" are skipped.  This mirrors the paper's rule of calling
     PDesign() only on an internal improvement, applied per scan. *)
  let best_u_in = ref (u_internal st.current) in
  let used_in_region =
    List.fold_left
      (fun acc g -> (N.gate nl g).N.cell.Cell.name :: acc)
      [] region
    |> List.sort_uniq compare
  in
  let result = ref None in
  let rising = ref 0 in
  let prefix = ref [] in
  (try
     List.iter
       (fun (cell : Cell.t) ->
         prefix := cell.Cell.name :: !prefix;
         (* Eligibility (1)+(2): a gate of this type, with undetectable
            internal faults, is in C_sub − G_zero (the region contains only
            such gates). *)
         if List.mem cell.Cell.name used_in_region then begin
           Span.with_ "candidate" ~attrs:[ ("cell", cell.Cell.name) ] @@ fun () ->
           let allowed = Library.restrict lib ~excluded:!prefix in
           match evaluate st ~threshold:!best_u_in ~region ~library:allowed with
           | None -> ()  (* eligibility (3) fails: cells not sufficient *)
           | Some Worse -> ()
           | Some No_fit -> (
               match
                 backtrack st ~q ~phase ~p2 ~region ~library:allowed
                   ~prefix_names:!prefix ~cell_name:cell.Cell.name
               with
               | Some d ->
                   result := Some d;
                   raise Exit
               | None -> ())
           | Some (Implemented (u_in', d)) ->
               best_u_in := min !best_u_in u_in';
               let ok_a = accepts ~phase ~p2 st d in
               let ok_c = constraints_ok st ~q d in
               if ok_a && ok_c then begin
                 record st ~q ~phase ~cell:(Some cell.Cell.name) ~action:"accept" d;
                 result := Some d;
                 raise Exit
               end
               else if ok_a (* acceptance met, constraints violated *) then begin
                 match
                   backtrack st ~q ~phase ~p2 ~region ~library:allowed
                     ~prefix_names:!prefix ~cell_name:cell.Cell.name
                 with
                 | Some d' ->
                     result := Some d';
                     raise Exit
                 | None -> ()
               end
               else begin
                 record st ~q ~phase ~cell:(Some cell.Cell.name) ~action:"reject" d;
                 (* Section III-B early exit: as ever more cells are
                    excluded the undetectable count eventually trends up;
                    stop the scan when it does so twice in a row. *)
                 if u_total d > u_total st.current then begin
                   incr rising;
                   if !rising >= 2 then raise Exit
                 end
                 else rising := 0
               end
         end)
       ordered
   with Exit -> ());
  !result

(* ------------------------------------------------------------------ *)
(* Phases and the q sweep                                               *)
(* ------------------------------------------------------------------ *)

(* Certified mode: an accepted ECO carries a checked equivalence
   certificate before the checkpoint journal records it — the rewritten
   netlist is proven functionally identical to the design it replaces and
   the per-output UNSAT proofs are replayed through the independent
   checker.  The verifying solver is uncounted so a certified campaign
   reports the same search effort as an uncertified one. *)
let certify_accept st (d' : Design.t) =
  if st.certify then begin
    let t0 = Dfm_obs.Clock.now_ns () in
    let verdict =
      Dfm_atpg.Equiv_sat.check ~certify:true ~counted:false st.current.Design.netlist
        d'.Design.netlist
    in
    let ok = verdict = Dfm_atpg.Equiv_sat.Equivalent in
    Dfm_sat.Cert.note_check ~ok ~ns:(Int64.sub (Dfm_obs.Clock.now_ns ()) t0);
    if not ok then
      raise
        (Dfm_sat.Cert.Check_failed
           (match verdict with
           | Dfm_atpg.Equiv_sat.Different label ->
               "accepted ECO differs from the design it replaces at output " ^ label
           | Dfm_atpg.Equiv_sat.Interface_mismatch what ->
               "accepted ECO changes the design interface: " ^ what
           | Dfm_atpg.Equiv_sat.Equivalent -> assert false))
  end

let run_phase st ~q ~phase ~p1 ~p2 =
  Span.with_ "phase"
    ~attrs:[ ("q", string_of_int q); ("phase", string_of_int phase) ]
  @@ fun () ->
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    st.interrupt ();
    let d = st.current in
    let stop =
      match phase with
      | 1 -> smax d = 0 || pct_smax_f d <= p1 +. 1e-9
      | _ -> u_total d = 0
    in
    if not stop then begin
      let within = match phase with 1 -> Some d.Design.cluster.Cluster.gmax | _ -> None in
      let core_region = gates_with_undetectable_internal d ~within in
      let region = grow_region d.Design.netlist core_region ~levels:st.context_levels in
      if core_region <> [] then begin
        match try_cells st ~q ~phase ~p2 ~region with
        | Some d' ->
            certify_accept st d';
            st.current <- d';
            st.accepted <- st.accepted + 1;
            (* Checkpoint the accepted design point: the accept event (just
               recorded at the head of the trace), the netlist text to
               replay the ECO chain from, the counters as of now, and the
               loop position — everything a resumed run needs to continue
               as the exact original continuation. *)
            (match st.ckpt with
            | None -> ()
            | Some ck ->
                let rc, rd, rp = run_effort st in
                Checkpoint.append_accept ck
                  {
                    Checkpoint.ev = ckpt_of_event (List.hd st.trace);
                    netlist = Dfm_netlist.Netlist_io.to_string d'.Design.netlist;
                    accepted = st.accepted;
                    implements = st.implements;
                    sat_queries = st.sat_queries;
                    run_cache_hits = run_hits st;
                    run_conflicts = rc;
                    run_decisions = rd;
                    run_propagations = rp;
                    p2;
                  });
            st.log
              (Printf.sprintf "q=%d phase %d: accepted, U=%d (internal %d), Smax=%d" q phase
                 (u_total d') (u_internal d') (smax d'));
            continue_ := true
        | None -> ()
      end
    end
  done

(* The header ties a journal to everything that determines the campaign's
   outcome; resuming under a different configuration would not be the same
   run, so it is refused.  The cache is deliberately excluded — it can only
   skip work, never change a result. *)
let checkpoint_header ~p1_percent ~q_max ~seed ~sweep ~context_levels ~max_conflicts initial =
  Printf.sprintf "dfm-resynth v1 nl=%Lx p1=%h q_max=%d seed=%d sweep=%b ctx=%d mc=%s"
    (Dfm_incr.Hash64.of_string
       (Dfm_netlist.Netlist_io.to_string initial.Design.netlist))
    p1_percent q_max seed sweep context_levels
    (match max_conflicts with None -> "-" | Some c -> string_of_int c)

let run ?(p1_percent = 1.0) ?(q_max = 5) ?(seed = 3) ?(sweep = true) ?(context_levels = 2)
    ?cache ?max_conflicts ?escalation ?sat_mode ?(certify = false) ?checkpoint ?log
    ?interrupt initial =
  let sat_mode = match sat_mode with Some m -> m | None -> Atpg.default_sat_mode () in
  (* [?log] is the deprecated pre-logger callback: when given it still
     receives every campaign message verbatim; otherwise messages become
     [Dfm_obs.Log.info] records (dropped until a sink is installed). *)
  let log = match log with Some f -> f | None -> fun m -> Dfm_obs.Log.info m in
  let interrupt = match interrupt with Some f -> f | None -> fun () -> () in
  Span.with_ "campaign" ~attrs:[ ("q_max", string_of_int q_max) ] @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let pool_retried0, pool_fellback0 = Dfm_util.Parallel.supervision_totals () in
  (* Certification counters are process-wide; attribute to this run only the
     checks performed during this call (baseline, replay and campaign). *)
  let cert0 = Dfm_sat.Cert.totals () in
  (* Attach the journal (if any) first: a header mismatch or an unwritable
     path must fail before any expensive work starts. *)
  let ckpt, replay =
    match checkpoint with
    | None -> (None, [])
    | Some { path; resume } ->
        let header =
          checkpoint_header ~p1_percent ~q_max ~seed ~sweep ~context_levels ~max_conflicts
            initial
        in
        let t, entries = Checkpoint.attach ~resume ~header path in
        (Some t, entries)
  in
  (* Baseline: one synthesis + physical design + *test generation* iteration
     (the unit of the paper's Rtime column — their baseline includes
     generating the DFM test set, so ours runs Atpg.generate too).  The
     baseline deliberately stays uncached: it is the time unit every cached
     iteration is compared against. *)
  let tb0 = Unix.gettimeofday () in
  let bdesign =
    Design.implement ~seed ~floorplan:initial.Design.floorplan ~sat_mode ~certify
      initial.Design.netlist
  in
  ignore
    (Atpg.generate ~seed ~sat_mode ~certify bdesign.Design.netlist
       bdesign.Design.fault_list.Dfm_guidelines.Translate.faults);
  let baseline_s = Unix.gettimeofday () -. tb0 in
  let st =
    {
      current = initial;
      trace = [];
      accepted = 0;
      implements = 0;
      sat_queries = 0;
      hits_seen = 0;
      hits0 = 0;
      hits_restored = 0;
      conf0 = 0;
      dec0 = 0;
      prop0 = 0;
      conf_restored = 0;
      dec_restored = 0;
      prop_restored = 0;
      resumed_steps = 0;
      esc_retried = 0;
      esc_resolved = 0;
      esc_residual = 0;
      cache;
      max_conflicts;
      escalation;
      sat_mode;
      certify;
      ckpt;
      floorplan = initial.Design.floorplan;
      orig_delay = initial.Design.timing.Dfm_timing.Sta.critical_path_delay;
      orig_power = initial.Design.power.Dfm_timing.Power.total;
      seed;
      sweep;
      context_levels;
      log;
      interrupt;
    }
  in
  (* Replay the journal.  Rejected events are restored verbatim; each
     accepted design point is rebuilt by re-implementing its journaled
     netlist against the previous accepted design — the same incremental
     (ECO) chain the original run walked, hence a bit-identical design
     state.  Counters are restored from the last Accept; the replay's own
     implement/SAT work is bookkeeping-free (it happened already, in the
     run being resumed). *)
  let resume_q = ref 0 and resume_phase = ref 1 and resume_p2 = ref 0.0 in
  List.iter
    (function
      | Checkpoint.Header _ -> ()
      | Checkpoint.Event e -> st.trace <- event_of_ckpt e :: st.trace
      | Checkpoint.Accept a ->
          let nl =
            Dfm_netlist.Netlist_io.read
              ~library:st.current.Design.netlist.N.library a.Checkpoint.netlist
          in
          let d =
            Design.implement ~seed ~floorplan:st.floorplan ~previous:st.current ?cache
              ?max_conflicts ?escalation ~sat_mode ~certify nl
          in
          (* Resumed accepts are re-certified like fresh ones: the journal
             records a claim, not a proof. *)
          certify_accept st d;
          st.current <- d;
          st.trace <- event_of_ckpt a.Checkpoint.ev :: st.trace;
          st.accepted <- a.Checkpoint.accepted;
          st.implements <- a.Checkpoint.implements;
          st.sat_queries <- a.Checkpoint.sat_queries;
          st.hits_restored <- a.Checkpoint.run_cache_hits;
          st.conf_restored <- a.Checkpoint.run_conflicts;
          st.dec_restored <- a.Checkpoint.run_decisions;
          st.prop_restored <- a.Checkpoint.run_propagations;
          st.resumed_steps <- st.resumed_steps + 1;
          resume_q := a.Checkpoint.ev.Checkpoint.q;
          resume_phase := a.Checkpoint.ev.Checkpoint.phase;
          resume_p2 := a.Checkpoint.p2)
    replay;
  if st.resumed_steps > 0 then
    log
      (Printf.sprintf "resume: replayed %d accepted step(s), continuing at q=%d phase %d"
         st.resumed_steps !resume_q !resume_phase);
  (* A warm cache may arrive with prior traffic (including the replay's);
     attribute only this run's continuation hits to its events and totals. *)
  let hits0 = cache_hits_so_far st in
  st.hits0 <- hits0;
  st.hits_seen <- hits0;
  (* Likewise for solver effort: everything the baseline and the replay
     spent stays off this run's books. *)
  let conf0, dec0, prop0 = Dfm_sat.Solver.totals () in
  st.conf0 <- conf0;
  st.dec0 <- dec0;
  st.prop0 <- prop0;
  (* The interrupt hook aborts by raising; the journal must still be
     closed so the campaign stays resumable from its last accept. *)
  Fun.protect ~finally:(fun () -> Option.iter Checkpoint.close ckpt) @@ fun () ->
  for q = !resume_q to q_max do
    Span.with_ "q-step" ~attrs:[ ("q", string_of_int q) ] @@ fun () ->
    (* Never re-enter phase 1 of a q whose phase 2 already accepted: phase 1
       ran to its fixpoint before phase 2 started, and the phase-2 accepts
       may have moved S_max back above its threshold.  The journaled p2 is
       the bound the original run computed at that boundary. *)
    let in_resumed_phase2 = q = !resume_q && !resume_phase = 2 in
    if not in_resumed_phase2 then run_phase st ~q ~phase:1 ~p1:p1_percent ~p2:0.0;
    let p2 =
      if in_resumed_phase2 then !resume_p2
      else Float.max p1_percent (pct_smax_f st.current)
    in
    run_phase st ~q ~phase:2 ~p1:p1_percent ~p2
  done;
  Progress.finish ();
  let pool_retried1, pool_fellback1 = Dfm_util.Parallel.supervision_totals () in
  let run_conflicts, run_decisions, run_propagations = run_effort st in
  {
    initial;
    final = st.current;
    trace = List.rev st.trace;
    accepted = st.accepted;
    implement_calls = st.implements;
    sat_queries = st.sat_queries;
    cache_hits = st.hits_restored + (cache_hits_so_far st - hits0);
    conflicts = run_conflicts;
    decisions = run_decisions;
    propagations = run_propagations;
    elapsed_s = Unix.gettimeofday () -. t0;
    baseline_s;
    resumed_steps = st.resumed_steps;
    pool_retries = pool_retried1 - pool_retried0;
    pool_fallbacks = pool_fellback1 - pool_fellback0;
    escalation_retries = st.esc_retried;
    escalation_resolved = st.esc_resolved;
    aborted_residual = st.esc_residual;
    certified_checks = (Dfm_sat.Cert.totals ()).Dfm_sat.Cert.checked - cert0.Dfm_sat.Cert.checked;
    certified_failures = (Dfm_sat.Cert.totals ()).Dfm_sat.Cert.failed - cert0.Dfm_sat.Cert.failed;
  }

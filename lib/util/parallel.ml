(* Pool metrics.  Registered at module initialization so the exposition
   always carries the pool family; updates are single atomic adds, and the
   latency histogram's two clock reads are gated on the timing switch. *)
let m_tasks = Dfm_obs.Metrics.counter ~help:"Pool tasks executed" "dfm_pool_tasks_total"

let m_queue_depth =
  Dfm_obs.Metrics.gauge ~help:"Unclaimed tasks in the in-flight pool batch"
    "dfm_pool_queue_depth"

let m_task_latency =
  Dfm_obs.Metrics.histogram ~help:"Pool task run time in nanoseconds"
    "dfm_pool_task_latency_ns"

let m_retries =
  Dfm_obs.Metrics.counter ~help:"Supervised pool tasks retried in place"
    "dfm_pool_task_retries_total"

let m_fallbacks =
  Dfm_obs.Metrics.counter
    ~help:"Supervised pool tasks re-run sequentially in the coordinator"
    "dfm_pool_task_fallbacks_total"

let run_task_measured task =
  Dfm_obs.Metrics.incr m_tasks;
  if Dfm_obs.Metrics.timing_enabled () then begin
    let t0 = Dfm_obs.Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        Dfm_obs.Metrics.observe m_task_latency
          (Int64.to_int (Int64.sub (Dfm_obs.Clock.now_ns ()) t0)))
      task
  end
  else task ()

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t;       (* workers: a new batch is available *)
  finished : Condition.t;   (* submitter: the batch has drained *)
  mutable batch : (unit -> unit) array;
  mutable next : int;       (* next unclaimed task of the batch *)
  mutable remaining : int;  (* claimed-but-unfinished + unclaimed tasks *)
  mutable generation : int;
  mutable busy : bool;      (* a batch is in flight (reentrancy guard) *)
  mutable stop : bool;
  mutable failure : exn option;
  mutable domains : unit Domain.t list;
}

(* Claim and run tasks of the current batch until none are left.  Claims are
   serialized by the pool mutex; the task bodies run unlocked. *)
let drain t =
  let continue = ref true in
  while !continue do
    Mutex.lock t.mutex;
    if t.next < Array.length t.batch then begin
      let i = t.next in
      t.next <- i + 1;
      let task = t.batch.(i) in
      Dfm_obs.Metrics.set m_queue_depth (Array.length t.batch - t.next);
      Mutex.unlock t.mutex;
      let failed = try run_task_measured task; None with e -> Some e in
      Mutex.lock t.mutex;
      (match failed with
      | Some e when t.failure = None -> t.failure <- Some e
      | Some _ | None -> ());
      t.remaining <- t.remaining - 1;
      if t.remaining = 0 then Condition.broadcast t.finished;
      Mutex.unlock t.mutex
    end
    else begin
      Mutex.unlock t.mutex;
      continue := false
    end
  done

let worker t () =
  let last = ref 0 in
  let continue = ref true in
  while !continue do
    Mutex.lock t.mutex;
    while (not t.stop) && t.generation = !last do
      Condition.wait t.work t.mutex
    done;
    if t.stop then begin
      Mutex.unlock t.mutex;
      continue := false
    end
    else begin
      last := t.generation;
      Mutex.unlock t.mutex;
      drain t
    end
  done

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batch = [||];
      next = 0;
      remaining = 0;
      generation = 0;
      busy = false;
      stop = false;
      failure = None;
      domains = [];
    }
  in
  t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (worker t));
  t

let jobs t = t.jobs

(* Idempotent: the domain list is claimed under the mutex, so a second call
   (or the at_exit hook racing an explicit shutdown of the global pool)
   finds an empty list and returns without joining anything twice. *)
let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  let domains = t.domains in
  t.domains <- [];
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join domains

let stopped t =
  Mutex.lock t.mutex;
  let s = t.stop in
  Mutex.unlock t.mutex;
  s

let run_sequential tasks = Array.iter run_task_measured tasks

let run_tasks t tasks =
  let n = Array.length tasks in
  if n = 0 then ()
  else if t.jobs = 1 || n = 1 || t.stop then run_sequential tasks
  else begin
    Mutex.lock t.mutex;
    if t.busy then begin
      (* Nested submission from inside a task: degrade to the caller. *)
      Mutex.unlock t.mutex;
      run_sequential tasks
    end
    else begin
      t.busy <- true;
      t.batch <- tasks;
      t.next <- 0;
      t.remaining <- n;
      t.failure <- None;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      drain t;
      Mutex.lock t.mutex;
      while t.remaining > 0 do
        Condition.wait t.finished t.mutex
      done;
      let failure = t.failure in
      t.batch <- [||];
      t.next <- 0;
      t.failure <- None;
      t.busy <- false;
      Mutex.unlock t.mutex;
      match failure with Some e -> raise e | None -> ()
    end
  end

(* ------------------------------------------------------------------ *)
(* Supervised batches                                                   *)
(* ------------------------------------------------------------------ *)

type supervision = { retried : int; fell_back : int }

let retried_total = Atomic.make 0
let fallback_total = Atomic.make 0

let supervision_totals () = (Atomic.get retried_total, Atomic.get fallback_total)

(* Every task execution — worker attempt or coordinator fallback — passes
   through the [parallel.task] failpoint, so resilience tests can poison
   tasks without touching caller code. *)
let attempt task =
  Failpoint.hit "parallel.task";
  task ()

let run_tasks_supervised ?(retries = 2) t tasks =
  let n = Array.length tasks in
  if n = 0 then { retried = 0; fell_back = 0 }
  else begin
    let retried = Atomic.make 0 in
    let failed = Array.make n false in
    (* The wrapped task retries in place (in whichever domain claimed it)
       and never lets an exception reach the pool: a task still failing
       after its retries only marks its slot for the coordinator. *)
    let wrap i () =
      let rec go k =
        match attempt tasks.(i) with
        | () -> ()
        | exception _ when k < retries ->
            Atomic.incr retried;
            Atomic.incr retried_total;
            Dfm_obs.Metrics.incr m_retries;
            go (k + 1)
        | exception _ -> failed.(i) <- true
      in
      go 0
    in
    run_tasks t (Array.init n wrap);
    (* Sequential fallback: the batch's poisoned shards re-run one final
       time in the coordinator, where an exception is a real error and
       propagates to the caller instead of killing a worker domain. *)
    let fell_back = ref 0 in
    Array.iteri
      (fun i f ->
        if f then begin
          incr fell_back;
          Atomic.incr fallback_total;
          Dfm_obs.Metrics.incr m_fallbacks;
          attempt tasks.(i)
        end)
      failed;
    { retried = Atomic.get retried; fell_back = !fell_back }
  end

let map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run_tasks t (Array.init n (fun i () -> out.(i) <- Some (f xs.(i))));
    Array.map (function Some y -> y | None -> assert false) out
  end

let chunk_bounds ~chunk n =
  let chunk = max 1 chunk in
  let nchunks = (n + chunk - 1) / chunk in
  Array.init nchunks (fun k -> (k * chunk, min n ((k + 1) * chunk)))

(* ------------------------------------------------------------------ *)
(* Global default pool                                                  *)
(* ------------------------------------------------------------------ *)

let recommended_jobs () =
  match Sys.getenv_opt "REPRO_JOBS" with
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> j
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let default = ref None        (* the global pool, if spawned *)
let chosen_jobs = ref None    (* --jobs override *)

let default_jobs () =
  match !chosen_jobs with Some j -> j | None -> recommended_jobs ()

let set_default_jobs j = chosen_jobs := Some (max 1 j)

let at_exit_registered = ref false

(* With a floor set, the global pool is grow-only: a request for fewer
   workers than the pool has reuses it instead of shutting it down and
   respawning domains.  The serve daemon multiplexes jobs with differing
   per-job worker caps onto one pool this way.  Task sharding is derived
   from the requested job count, never from the pool width, so a wider
   pool leaves results bit-identical (extra workers simply idle). *)
let pool_floor = ref 0

let set_pool_floor n = pool_floor := max 0 n

let get ?jobs () =
  let requested = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let floor = !pool_floor in
  let reusable t =
    (not (stopped t))
    && (t.jobs = requested || (floor > 0 && t.jobs >= requested && t.jobs >= floor))
  in
  match !default with
  | Some t when reusable t -> t
  | prev ->
      Option.iter shutdown prev;
      let t = create ~jobs:(max requested floor) in
      default := Some t;
      if not !at_exit_registered then begin
        at_exit_registered := true;
        at_exit (fun () -> Option.iter shutdown !default)
      end;
      t

let parallel_map ?jobs f xs = map (get ?jobs ()) f xs

let parallel_chunks ?jobs ~chunk n f =
  let pool = get ?jobs () in
  let bounds = chunk_bounds ~chunk n in
  run_tasks pool (Array.map (fun (lo, hi) -> fun () -> f lo hi) bounds)

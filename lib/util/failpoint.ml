type action = Raise | Io_error | Partial_write | Delay of float

exception Injected of string

type site = {
  action : action;
  after : int;
  times : int option;  (* None = unlimited *)
  prob : float option;
  rng : Rng.t;
  mutable hits : int;
  mutable fired : int;
}

(* The armed flag is read without the lock on the (overwhelmingly common)
   disarmed path; it is only ever set under the lock, and a stale [false]
   can only be observed by a domain racing the very enable call that arms
   the site — tests arm sites before starting workers. *)
let armed = ref false
let lock = Mutex.create ()
let sites : (string, site) Hashtbl.t = Hashtbl.create 8

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let enable ?(after = 0) ?times ?prob ?(seed = 0) name action =
  locked (fun () ->
      Hashtbl.replace sites name
        { action; after; times; prob; rng = Rng.create (seed + 0x5EED); hits = 0; fired = 0 };
      armed := true)

let disable name =
  locked (fun () ->
      Hashtbl.remove sites name;
      if Hashtbl.length sites = 0 then armed := false)

let clear () =
  locked (fun () ->
      Hashtbl.reset sites;
      armed := false)

let check name =
  if not !armed then None
  else
    locked (fun () ->
        match Hashtbl.find_opt sites name with
        | None -> None
        | Some s ->
            s.hits <- s.hits + 1;
            let due =
              s.hits > s.after
              && (match s.times with None -> true | Some t -> s.fired < t)
              && (match s.prob with None -> true | Some p -> Rng.chance s.rng p)
            in
            if due then begin
              s.fired <- s.fired + 1;
              Some s.action
            end
            else None)

let hit name =
  match check name with
  | None -> ()
  | Some Raise -> raise (Injected name)
  | Some (Io_error | Partial_write) -> raise (Sys_error ("failpoint: " ^ name))
  | Some (Delay s) -> Unix.sleepf s

let hit_count name =
  if not !armed then 0
  else locked (fun () -> match Hashtbl.find_opt sites name with None -> 0 | Some s -> s.hits)

let any_active () = !armed

(* ---- spec parsing: NAME=ACTION[:key=val]* ------------------------- *)

let parse spec =
  let spec = String.trim spec in
  match String.index_opt spec '=' with
  | None -> Error (Printf.sprintf "failpoint spec %S: missing '='" spec)
  | Some eq -> (
      let name = String.sub spec 0 eq in
      let rest = String.sub spec (eq + 1) (String.length spec - eq - 1) in
      if name = "" then Error (Printf.sprintf "failpoint spec %S: empty name" spec)
      else
        match String.split_on_char ':' rest with
        | [] | [ "" ] -> Error (Printf.sprintf "failpoint spec %S: missing action" spec)
        | act :: opts -> (
            let action =
              match String.split_on_char '=' act with
              | [ "raise" ] -> Ok Raise
              | [ "io" ] -> Ok Io_error
              | [ "partial" ] -> Ok Partial_write
              | [ "delay"; s ] -> (
                  match float_of_string_opt s with
                  | Some f when f >= 0.0 -> Ok (Delay f)
                  | Some _ | None -> Error (Printf.sprintf "bad delay %S" s))
              | _ -> Error (Printf.sprintf "unknown action %S" act)
            in
            match action with
            | Error e -> Error (Printf.sprintf "failpoint spec %S: %s" spec e)
            | Ok action -> (
                let rec fold after times prob seed = function
                  | [] ->
                      enable ?after ?times ?prob ?seed name action;
                      Ok ()
                  | o :: rest -> (
                      match String.split_on_char '=' o with
                      | [ "after"; v ] when int_of_string_opt v <> None ->
                          fold (int_of_string_opt v) times prob seed rest
                      | [ "times"; v ] when int_of_string_opt v <> None ->
                          fold after (int_of_string_opt v) prob seed rest
                      | [ "prob"; v ] when float_of_string_opt v <> None ->
                          fold after times (float_of_string_opt v) seed rest
                      | [ "seed"; v ] when int_of_string_opt v <> None ->
                          fold after times prob (int_of_string_opt v) rest
                      | _ -> Error (Printf.sprintf "failpoint spec %S: bad option %S" spec o))
                in
                fold None None None None opts)))

let parse_env () =
  match Sys.getenv_opt "REPRO_FAILPOINTS" with
  | None | Some "" -> Ok ()
  | Some v ->
      let specs =
        String.split_on_char ',' v
        |> List.concat_map (String.split_on_char ';')
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      List.fold_left (fun acc s -> match acc with Error _ -> acc | Ok () -> parse s) (Ok ()) specs

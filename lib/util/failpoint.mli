(** Deterministic fault-injection points for resilience testing.

    A failpoint is a named site in production code ([check]/[hit] calls)
    that normally does nothing.  Tests (or the CLI's [--failpoint] flag and
    the [REPRO_FAILPOINTS] environment variable) arm a site with an
    {!action} and a firing schedule; the site then raises, injects an I/O
    error, truncates a write, or delays — at exactly the configured hits.

    Everything is deterministic: firing is decided by per-site hit counters
    ([after]/[times]) and, when a probability is given, by a dedicated
    splitmix64 stream seeded per site — never by wall-clock or global
    state.  Sites may be hit from worker domains; the registry is
    mutex-protected, and the disarmed fast path is one unsynchronized
    boolean load. *)

type action =
  | Raise          (** raise {!Injected} at the site *)
  | Io_error       (** raise [Sys_error] as a disk/OS failure would *)
  | Partial_write  (** sites that write records truncate the write, then
                       fail as [Io_error]; plain {!hit} sites treat it as
                       [Io_error] *)
  | Delay of float (** sleep this many seconds, then continue *)

exception Injected of string
(** Raised by an armed [Raise] site; the payload is the site name. *)

val enable :
  ?after:int -> ?times:int -> ?prob:float -> ?seed:int -> string -> action -> unit
(** Arm site [name].  The site's first [after] hits pass through (default
    0); it then fires on up to [times] hits (default: every hit), each
    further gated by [prob] (default: always) drawn from a stream seeded
    with [seed] (default 0).  Re-enabling a name replaces its schedule and
    resets its counters. *)

val disable : string -> unit

val clear : unit -> unit
(** Disarm every site and forget all counters. *)

val parse : string -> (unit, string) result
(** Parse-and-enable one CLI/env spec:
    [NAME=ACTION[:after=N][:times=N][:prob=P][:seed=N]] with [ACTION] one
    of [raise], [io], [partial], [delay=SECONDS]. *)

val parse_env : unit -> (unit, string) result
(** Apply every comma/semicolon-separated spec in [REPRO_FAILPOINTS]. *)

val check : string -> action option
(** Count one hit at [name]; return the action iff the site fires now.
    Used by sites that implement [Partial_write] themselves; pure
    observation, never raises. *)

val hit : string -> unit
(** {!check}, then act: [Raise] raises {!Injected}, [Io_error] and
    [Partial_write] raise [Sys_error], [Delay] sleeps. *)

val hit_count : string -> int
(** How many times [name] was reached since it was (re)enabled; 0 for a
    site never armed (disarmed sites do not count hits). *)

val any_active : unit -> bool

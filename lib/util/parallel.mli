(** A reusable fixed-size Domain worker pool.

    The pool owns [jobs - 1] worker domains; the submitting domain always
    participates, so a pool of size [j] runs at most [j] tasks at once.  At
    [jobs = 1] no domains are ever spawned and every entry point degrades to
    a plain sequential loop in the caller — the guaranteed fallback the
    deterministic-sharding contract of the ATPG engine builds on.

    Tasks of one batch are claimed dynamically (any worker may run any
    task), so callers must make tasks write to disjoint state; determinism
    is obtained by making each task a pure function of its own index, never
    of the worker that happens to execute it.

    Batches are not reentrant: a task that submits another batch to the same
    pool runs that inner batch sequentially in its own domain. *)

type t

val create : jobs:int -> t
(** Spawn a pool with [max 1 jobs] slots ([jobs - 1] worker domains). *)

val jobs : t -> int

val shutdown : t -> unit
(** Join the worker domains.  The pool must be idle; using it afterwards
    runs everything sequentially in the caller.  Idempotent: a second call
    — including the [at_exit] hook of the global pool racing an explicit
    shutdown — is a no-op. *)

val run_tasks : t -> (unit -> unit) array -> unit
(** Run every task to completion.  The first exception raised by a task is
    re-raised in the caller after the whole batch has drained. *)

type supervision = {
  retried : int;    (** in-place task retries this batch *)
  fell_back : int;  (** tasks re-run sequentially in the coordinator *)
}

val run_tasks_supervised : ?retries:int -> t -> (unit -> unit) array -> supervision
(** {!run_tasks}, but a task that raises is retried in place up to
    [retries] times (default 2), and a task still failing after that is
    re-run one final time sequentially in the coordinator once the batch
    has drained — so one poisoned worker-task degrades throughput instead
    of killing the batch.  Only that final coordinator attempt may raise.

    Tasks must be restartable: re-running one must reach the same final
    state (true of the engine's shard tasks, which write pure per-index
    results to disjoint slots).  Every attempt passes the [parallel.task]
    {!Failpoint} site, which is how the resilience tests inject task
    failures. *)

val supervision_totals : unit -> int * int
(** Cumulative [(retried, fell_back)] across every supervised batch of the
    process — campaign reports read the delta around a run. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map. *)

val chunk_bounds : chunk:int -> int -> (int * int) array
(** [chunk_bounds ~chunk n] partitions [0 .. n-1] into contiguous [(lo, hi)]
    half-open ranges of length at most [chunk].  A pure function of
    [(chunk, n)] — the sharding used for deterministic merges. *)

(** {1 Global default pool}

    Sized from the [REPRO_JOBS] environment variable when set, otherwise
    {!Domain.recommended_domain_count}; overridable by the [--jobs] CLI
    flag via {!set_default_jobs}. *)

val recommended_jobs : unit -> int

val default_jobs : unit -> int

val set_default_jobs : int -> unit

val get : ?jobs:int -> unit -> t
(** The shared global pool, (re)sized to [jobs] (default {!default_jobs}).
    Shut down automatically at exit.  With {!set_pool_floor} in force the
    pool is grow-only: it is sized at least the floor and reused for any
    smaller request rather than respawned. *)

val set_pool_floor : int -> unit
(** [set_pool_floor n] keeps the global pool at least [n] workers wide and
    makes {!get} reuse it for requests of [n] or fewer jobs.  Used by the
    serve daemon to multiplex jobs with differing per-job worker caps onto
    one pool without domain churn.  Sharding is always derived from the
    requested job count, so a wider pool never changes results.  [0]
    (the default) restores exact-size semantics. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** {!map} on the global pool. *)

val parallel_chunks : ?jobs:int -> chunk:int -> int -> (int -> int -> unit) -> unit
(** [parallel_chunks ~chunk n f] calls [f lo hi] for every range of
    {!chunk_bounds}, in parallel on the global pool.  The set of ranges —
    and therefore any per-range result keyed by [lo] — does not depend on
    the job count. *)

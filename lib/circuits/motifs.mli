(** Structural motifs for the synthetic benchmark circuits.

    The original benchmarks (OpenCores blocks, OpenSPARC T1 units) are not
    available in this environment, so each is rebuilt from the structural
    ingredients that give the paper's phenomenon — clusters of undetectable
    DFM faults — a chance to arise *organically*:

    - one-hot decoders create correlated control lines; cells combining
      several of them have cell-input patterns that no test can establish,
      so their internal (UDFM) faults are undetectable and cluster in the
      fanout region of the decoder;
    - reconvergent structures (parity trees, bypass muxes) create masking;
    - ordinary datapath logic (adders, shifters, S-boxes) provides the
      well-testable bulk.

    All helpers operate on an open {!Dfm_netlist.Netlist.Builder} and return
    net ids.  Everything is deterministic given the RNG. *)

type ctx = {
  b : Dfm_netlist.Netlist.Builder.b;
  rng : Dfm_util.Rng.t;
  mutable state_banks : int;  (** serial for unique state-net names *)
}

val make : name:string -> seed:int -> ctx
(** Fresh builder over the OSU-018 library. *)

val pis : ctx -> string -> int -> int list
(** [pis ctx prefix n] adds [n] primary inputs named [prefix0..]. *)

val pos : ctx -> string -> int list -> unit
(** Mark nets as primary outputs. *)

(** {1 Logic constructors} *)

val inv : ctx -> int -> int
val and2 : ctx -> int -> int -> int
val or2 : ctx -> int -> int -> int
val xor2 : ctx -> int -> int -> int
val nand2 : ctx -> int -> int -> int
val nor2 : ctx -> int -> int -> int
val mux2 : ctx -> sel:int -> int -> int -> int
(** [mux2 ~sel a b] = if sel then b else a. *)

val xor_tree : ctx -> int list -> int
val and_tree : ctx -> int list -> int
val or_tree : ctx -> int list -> int

(** {1 Datapath motifs} *)

val ripple_adder : ctx -> int list -> int list -> cin:int -> int list * int
(** Bitwise ripple-carry adder; returns (sum bits, carry out). *)

val incrementer : ctx -> int list -> int list
val equality : ctx -> int list -> int list -> int
val mux_word : ctx -> sel:int -> int list -> int list -> int list
val barrel_shift : ctx -> int list -> sel:int list -> int list
(** Logarithmic rotator (rotate amount = selected bits). *)

val sbox : ctx -> int list -> int -> int list
(** [sbox ctx ins n_out] synthesizes a random dense lookup function of the
    inputs (at most 6 used per output) through the technology mapper,
    splicing real mapped cells into the circuit. *)

(** {1 Control motifs} *)

val decoder : ctx -> int list -> int list
(** Full one-hot decode of the select bits (2^k outputs). *)

val priority_encoder : ctx -> int list -> int list
(** [priority_encoder reqs] returns one-hot grants (highest index wins). *)

val onehot_cloud : ctx -> hot:int list -> data:int list -> int -> int list
(** A cloud of [n] random gates whose fanins are biased toward the mutually
    exclusive [hot] lines — the redundancy-rich region where undetectable
    internal faults cluster. *)

val random_cloud : ctx -> int list -> int -> int list
(** [n] random gates over arbitrary available nets (well-testable filler). *)

(** {1 State} *)

val register : ctx -> ?enable:int -> int list -> int list
(** One flip-flop per data bit (with an optional recirculating enable mux);
    returns the Q nets. *)

val state_feedback : ctx -> int -> (int list -> int list) -> int list
(** [state_feedback ctx n f] creates [n] flip-flops whose next state is
    [f qs]; returns the Q nets.  [f] must produce [n] nets. *)

val finish : ctx -> Dfm_netlist.Netlist.t

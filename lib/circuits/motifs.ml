module N = Dfm_netlist.Netlist
module B = N.Builder
module Rng = Dfm_util.Rng
module Tt = Dfm_logic.Truthtable

type ctx = { b : B.b; rng : Rng.t; mutable state_banks : int }

let lib = Dfm_cellmodel.Osu018.library

let make ~name ~seed = { b = B.create ~name lib; rng = Rng.create seed; state_banks = 0 }

let pis ctx prefix n = List.init n (fun i -> B.add_pi ctx.b (Printf.sprintf "%s%d" prefix i))

let pos ctx prefix nets =
  List.iteri (fun i n -> B.mark_po ctx.b (Printf.sprintf "%s%d" prefix i) n) nets

let g1 ctx cell a = B.add_gate ctx.b ~cell [| a |]
let g2 ctx cell a b = B.add_gate ctx.b ~cell [| a; b |]

let inv ctx a = g1 ctx "INVX1" a
let and2 ctx a b = g2 ctx "AND2X2" a b
let or2 ctx a b = g2 ctx "OR2X2" a b
let xor2 ctx a b = g2 ctx "XOR2X1" a b
let nand2 ctx a b = g2 ctx "NAND2X1" a b
let nor2 ctx a b = g2 ctx "NOR2X1" a b
let mux2 ctx ~sel a b = B.add_gate ctx.b ~cell:"MUX2X1" [| a; b; sel |]

let rec tree op ctx = function
  | [] -> invalid_arg "Motifs: empty tree"
  | [ x ] -> x
  | xs ->
      let rec pair = function
        | a :: b :: rest -> op ctx a b :: pair rest
        | [ a ] -> [ a ]
        | [] -> []
      in
      tree op ctx (pair xs)

let xor_tree ctx nets = tree xor2 ctx nets
let and_tree ctx nets = tree and2 ctx nets
let or_tree ctx nets = tree or2 ctx nets

(* ------------------------------------------------------------------ *)
(* Datapath motifs                                                      *)
(* ------------------------------------------------------------------ *)

let full_adder ctx a b cin =
  let axb = xor2 ctx a b in
  let sum = xor2 ctx axb cin in
  (* carry = (a & b) | (cin & (a ^ b)), built as !AOI22 *)
  let aoi = B.add_gate ctx.b ~cell:"AOI22X1" [| a; b; cin; axb |] in
  let cout = inv ctx aoi in
  (sum, cout)

let ripple_adder ctx xs ys ~cin =
  if List.length xs <> List.length ys then invalid_arg "Motifs.ripple_adder";
  let carry = ref cin in
  let sums =
    List.map2
      (fun a b ->
        let s, c = full_adder ctx a b !carry in
        carry := c;
        s)
      xs ys
  in
  (sums, !carry)

let incrementer ctx xs =
  let carry = ref None in
  List.map
    (fun a ->
      match !carry with
      | None ->
          carry := Some a;
          inv ctx a
      | Some c ->
          let s = xor2 ctx a c in
          carry := Some (and2 ctx a c);
          s)
    xs

let equality ctx xs ys =
  let bits = List.map2 (fun a b -> g2 ctx "XNOR2X1" a b) xs ys in
  and_tree ctx bits

let mux_word ctx ~sel xs ys = List.map2 (fun a b -> mux2 ctx ~sel a b) xs ys

(* A logarithmic rotator (barrel shifter that wraps).  Rotation rather than
   zero-fill keeps every mux input a live signal: a zero-filled shifter would
   plant constant nets along its whole width and with them an artificial
   ribbon of undetectable faults dominating the cluster statistics. *)
let barrel_shift ctx word ~sel =
  let n = List.length word in
  let stage word k s =
    let arr = Array.of_list word in
    List.init n (fun i ->
        let rotated = arr.((i - (1 lsl k) + (n lsl 4)) mod n) in
        mux2 ctx ~sel:s arr.(i) rotated)
  in
  let result = ref word in
  List.iteri (fun k s -> result := stage !result k s) sel;
  !result

(* ------------------------------------------------------------------ *)
(* S-boxes through the technology mapper                                *)
(* ------------------------------------------------------------------ *)

let full_table = lazy (Dfm_synth.Mapper.build_table lib)

(* Shannon-build a truth table as an AIG expression. *)
let rec tt_to_lit aig tt lits =
  let arity = Tt.arity tt in
  let rec first_dep k =
    if k >= arity then None else if Tt.depends_on tt k then Some k else first_dep (k + 1)
  in
  match first_dep 0 with
  | None -> if Tt.eval_index tt 0 then Dfm_synth.Aig.lit_true else Dfm_synth.Aig.lit_false
  | Some k ->
      let f0 = tt_to_lit aig (Tt.cofactor tt k false) lits in
      let f1 = tt_to_lit aig (Tt.cofactor tt k true) lits in
      Dfm_synth.Aig.mux aig ~sel:lits.(k) f0 f1

(* Inline a mapped combinational netlist into the open builder, connecting
   its PIs to the given nets; returns the nets of its POs. *)
let inline ctx (sub : N.t) input_nets =
  let net_of = Array.make (N.num_nets sub) (-1) in
  Array.iteri
    (fun i (_, nid) -> net_of.(nid) <- List.nth input_nets i)
    sub.N.pis;
  Array.iter
    (fun (nn : N.net) ->
      match nn.N.driver with
      | N.Const v -> net_of.(nn.N.net_id) <- B.const_net ctx.b v
      | N.Pi _ | N.Gate_out _ -> ())
    sub.N.nets;
  Array.iter
    (fun gid ->
      let g = N.gate sub gid in
      let fanins = Array.map (fun fn -> net_of.(fn)) g.N.fanins in
      net_of.(g.N.fanout) <- B.add_gate ctx.b ~cell:g.N.cell.Dfm_netlist.Cell.name fanins)
    (N.topo_order sub);
  Array.to_list (Array.map (fun (_, nid) -> net_of.(nid)) sub.N.pos)

let sbox ctx ins n_out =
  let k = min 6 (List.length ins) in
  let used = List.filteri (fun i _ -> i < k) ins in
  let aig = Dfm_synth.Aig.create () in
  let lits = Array.of_list (List.mapi (fun i _ -> Dfm_synth.Aig.input aig (Printf.sprintf "x%d" i)) used) in
  let outputs =
    List.init n_out (fun o ->
        let tt = Tt.of_bits ~arity:k (Rng.bits64 ctx.rng) in
        (Printf.sprintf "y%d" o, tt_to_lit aig tt lits))
  in
  let mapped =
    Dfm_synth.Mapper.map (Lazy.force full_table) ~library:lib ~name:"sbox" aig ~outputs
  in
  inline ctx mapped used

(* ------------------------------------------------------------------ *)
(* Control motifs                                                       *)
(* ------------------------------------------------------------------ *)

let decoder ctx sels =
  let invs = List.map (fun s -> inv ctx s) sels in
  let k = List.length sels in
  List.init (1 lsl k) (fun m ->
      let lits =
        List.mapi (fun i (s, si) -> if (m lsr i) land 1 = 1 then s else si)
          (List.combine sels invs)
      in
      and_tree ctx lits)

let priority_encoder ctx reqs =
  (* Highest index wins: grant_i = req_i and none of the higher requests. *)
  let arr = Array.of_list reqs in
  let n = Array.length arr in
  let higher = Array.make n None in
  for i = n - 2 downto 0 do
    higher.(i) <-
      (match higher.(i + 1) with
      | None -> Some arr.(i + 1)
      | Some h -> Some (or2 ctx h arr.(i + 1)))
  done;
  List.init n (fun i ->
      match higher.(i) with
      | None -> arr.(i)
      | Some h ->
          let nh = inv ctx h in
          and2 ctx arr.(i) nh)

let cloud_cells =
  [|
    "NAND2X1"; "NAND3X1"; "NAND4X1"; "NOR2X1"; "NOR3X1"; "NOR4X1"; "AND2X2";
    "OR2X2"; "XOR2X1"; "XNOR2X1"; "AOI21X1"; "AOI22X1"; "OAI21X1"; "OAI22X1";
    "AOI211X1"; "MUX2X1"; "INVX1"; "BUFX2";
  |]

(* A cloud of random gates.  With probability [red] a gate is seeded with a
   *pair* of mutually exclusive control lines among its fanins: the cell
   input patterns requiring both lines high are unreachable, so some of the
   cell's internal (UDFM) faults — and external faults on the resulting
   near-constant output net — are undetectable.  Keeping the probability
   moderate produces localized pockets of redundancy (the clusters of the
   paper) inside an otherwise well-testable cloud. *)
let cloud ctx ~pool_a ~pool_b ~red n =
  let outputs = ref [] in
  let grown_b = ref (Array.of_list pool_b) in
  let a = Array.of_list pool_a in
  for _ = 1 to n do
    let cell_name = Rng.pick ctx.rng cloud_cells in
    let c = Dfm_netlist.Library.find lib cell_name in
    let arity = Dfm_netlist.Cell.arity c in
    let fanins = Array.init arity (fun _ -> Rng.pick ctx.rng !grown_b) in
    if Array.length a >= 2 && arity >= 2 && Rng.chance ctx.rng red then begin
      (* Two distinct mutually exclusive lines into one cell. *)
      let i = Rng.int ctx.rng (Array.length a) in
      let j = (i + 1 + Rng.int ctx.rng (Array.length a - 1)) mod Array.length a in
      fanins.(0) <- a.(i);
      fanins.(1) <- a.(j)
    end;
    let out = B.add_gate ctx.b ~cell:cell_name fanins in
    outputs := out :: !outputs;
    (* Let the cloud deepen: an output occasionally joins the data pool. *)
    if Rng.chance ctx.rng 0.4 then
      grown_b := Array.append !grown_b [| out |]
  done;
  List.rev !outputs

let onehot_cloud ctx ~hot ~data n = cloud ctx ~pool_a:hot ~pool_b:data ~red:0.22 n

let random_cloud ctx nets n = cloud ctx ~pool_a:[] ~pool_b:nets ~red:0.0 n

(* ------------------------------------------------------------------ *)
(* State                                                                *)
(* ------------------------------------------------------------------ *)

let dff = Dfm_cellmodel.Osu018.dff_name

let register ctx ?enable data =
  match enable with
  | None -> List.map (fun d -> B.add_gate ctx.b ~cell:dff [| d |]) data
  | Some en ->
      List.map
        (fun d ->
          let q = B.declare_net ctx.b (Printf.sprintf "q%d" d) in
          let d' = mux2 ctx ~sel:en q d in
          B.add_gate_driving ctx.b ~cell:dff [| d' |] q;
          q)
        data

let state_feedback ctx n f =
  (* A per-context bank serial keeps Q-net names unique when one block
     instantiates several state banks of the same width (tv80's acc and
     pc): duplicate net names break the Netlist_io text round trip. *)
  let bank = ctx.state_banks in
  ctx.state_banks <- bank + 1;
  let qs = List.init n (fun i -> B.declare_net ctx.b (Printf.sprintf "st%d_%d_%d" bank n i)) in
  let next = f qs in
  if List.length next <> n then invalid_arg "Motifs.state_feedback";
  List.iter2 (fun d q -> B.add_gate_driving ctx.b ~cell:dff [| d |] q) next qs;
  qs

(* Rebuild a finished netlist inside a fresh builder, returning the builder
   context and the old-net -> new-net mapping.  Flip-flop outputs are
   declared first so sequential feedback survives the rebuild. *)
let rebuild (nl : N.t) =
  let ctx2 = { b = B.create ~name:nl.N.name lib; rng = Rng.create 0; state_banks = 0 } in
  let net_of = Array.make (N.num_nets nl) (-1) in
  Array.iter
    (fun (p, nid) -> net_of.(nid) <- B.add_pi ctx2.b p)
    nl.N.pis;
  Array.iter
    (fun (nn : N.net) ->
      match nn.N.driver with
      | N.Const v -> net_of.(nn.N.net_id) <- B.const_net ctx2.b v
      | N.Pi _ | N.Gate_out _ -> ())
    nl.N.nets;
  let seq = N.seq_gates nl in
  List.iter
    (fun (g : N.gate) -> net_of.(g.N.fanout) <- B.declare_net ctx2.b (N.net nl g.N.fanout).N.net_name)
    seq;
  Array.iter
    (fun gid ->
      let g = N.gate nl gid in
      let fanins = Array.map (fun fn -> net_of.(fn)) g.N.fanins in
      net_of.(g.N.fanout) <- B.add_gate ctx2.b ~name:g.N.gate_name ~cell:g.N.cell.Dfm_netlist.Cell.name fanins)
    (N.topo_order nl);
  List.iter
    (fun (g : N.gate) ->
      B.add_gate_driving ctx2.b ~name:g.N.gate_name ~cell:g.N.cell.Dfm_netlist.Cell.name
        (Array.map (fun fn -> net_of.(fn)) g.N.fanins)
        net_of.(g.N.fanout))
    seq;
  Array.iter (fun (p, nid) -> B.mark_po ctx2.b p net_of.(nid)) nl.N.pos;
  (ctx2, net_of)

(* Synthesized netlists have no dangling logic (it would be swept), so every
   driven net must reach an observable point.  Dangling nets are compressed
   through XOR trees into extra outputs; XOR is transparent, so the
   observability of each drained net is preserved while genuine redundancy
   (constant nets inside the one-hot clouds) remains redundant. *)
let finish ctx =
  let nl = B.finish ctx.b in
  let po_nets =
    Array.fold_left (fun acc (_, n) -> n :: acc) [] nl.N.pos |> List.sort_uniq compare
  in
  let dangling =
    Array.to_list nl.N.nets
    |> List.filter_map (fun (nn : N.net) ->
           match nn.N.driver with
           | N.Gate_out _ when nn.N.sinks = [] && not (List.mem nn.N.net_id po_nets) ->
               Some nn.N.net_id
           | N.Gate_out _ | N.Pi _ | N.Const _ -> None)
  in
  if dangling = [] then nl
  else begin
    let ctx2, net_of = rebuild nl in
    let drained = List.map (fun n -> net_of.(n)) dangling in
    (* Chunked XOR trees: one drain output per 16 swept nets. *)
    let rec chunks k = function
      | [] -> []
      | xs ->
          let head = List.filteri (fun i _ -> i < k) xs in
          let tail = List.filteri (fun i _ -> i >= k) xs in
          head :: chunks k tail
    in
    List.iteri
      (fun i chunk -> B.mark_po ctx2.b (Printf.sprintf "drain%d" i) (xor_tree ctx2 chunk))
      (chunks 16 drained);
    B.finish ctx2.b
  end

module M = Motifs

let default_scale () =
  match Sys.getenv_opt "REPRO_SCALE" with
  | Some s -> ( try float_of_string s with Failure _ -> 1.0)
  | None -> 1.0

(* Scaled count, never below a floor that keeps the motif meaningful. *)
let sc scale n = max 2 (int_of_float (float_of_int n *. scale))

let take n xs = List.filteri (fun i _ -> i < n) xs

let rotate k xs =
  let n = List.length xs in
  List.init n (fun i -> List.nth xs ((i + k) mod n))

(* ------------------------------------------------------------------ *)
(* tv80 — 8-bit microprocessor: ALU, accumulator/PC state, one-hot
   instruction decode driving a control cloud.                          *)
(* ------------------------------------------------------------------ *)

let tv80 scale =
  let ctx = M.make ~name:"tv80" ~seed:0x7480 in
  let w = 8 in
  let data = M.pis ctx "di" w in
  let op = M.pis ctx "op" 4 in
  let irq = M.pis ctx "irq" 3 in
  let acc = M.state_feedback ctx w (fun qs ->
      let sum, _ = M.ripple_adder ctx qs data ~cin:(List.hd op) in
      let xors = List.map2 (M.xor2 ctx) qs data in
      M.mux_word ctx ~sel:(List.nth op 1) sum xors)
  in
  let pc = M.state_feedback ctx w (fun qs -> M.incrementer ctx qs) in
  let hot = M.decoder ctx op in
  let grants = M.priority_encoder ctx irq in
  let cloud1 = M.onehot_cloud ctx ~hot ~data:(acc @ data) (sc scale 70) in
  let cloud2 = M.onehot_cloud ctx ~hot:grants ~data:(pc @ data) (sc scale 30) in
  let flags =
    [ M.equality ctx acc data; M.or_tree ctx (take 4 cloud1); M.xor_tree ctx (take 4 pc) ]
  in
  let filler = M.random_cloud ctx (data @ acc @ pc @ take 8 cloud1) (sc scale 40) in
  M.pos ctx "alu" acc;
  M.pos ctx "pc" (take 4 pc);
  M.pos ctx "fl" flags;
  M.pos ctx "misc" (take 6 (cloud2 @ filler));
  M.finish ctx

(* ------------------------------------------------------------------ *)
(* systemcaes — AES round: S-boxes, key XOR, state registers, mode
   decode.                                                              *)
(* ------------------------------------------------------------------ *)

let systemcaes scale =
  let ctx = M.make ~name:"systemcaes" ~seed:0xAE5 in
  let key = M.pis ctx "k" 16 in
  let din = M.pis ctx "d" 16 in
  let mode = M.pis ctx "m" 3 in
  let state = M.state_feedback ctx 16 (fun qs ->
      let keyed = List.map2 (M.xor2 ctx) qs key in
      let sub = List.concat_map (fun grp -> M.sbox ctx grp 4)
          [ take 4 keyed; take 4 (rotate 4 keyed); take 4 (rotate 8 keyed); take 4 (rotate 12 keyed) ]
      in
      M.mux_word ctx ~sel:(List.hd mode) sub (List.map2 (M.xor2 ctx) sub din))
  in
  let hot = M.decoder ctx mode in
  let cloud = M.onehot_cloud ctx ~hot ~data:(state @ din) (sc scale 80) in
  let filler = M.random_cloud ctx (state @ key) (sc scale 50) in
  M.pos ctx "so" state;
  M.pos ctx "tag" (take 6 cloud);
  M.pos ctx "dbg" (take 4 filler);
  M.finish ctx

(* ------------------------------------------------------------------ *)
(* aes_core — wider AES core: two S-box banks, mix-column XOR trees,
   round-constant decode.                                               *)
(* ------------------------------------------------------------------ *)

let aes_core scale =
  let ctx = M.make ~name:"aes_core" ~seed:0xAE50 in
  let key = M.pis ctx "k" 24 in
  let din = M.pis ctx "d" 24 in
  let round = M.pis ctx "r" 4 in
  let keyed = List.map2 (M.xor2 ctx) din key in
  let bank1 = List.concat_map (fun g -> M.sbox ctx g 4)
      [ take 6 keyed; take 6 (rotate 6 keyed); take 6 (rotate 12 keyed); take 6 (rotate 18 keyed) ]
  in
  let mix =
    List.map2 (M.xor2 ctx) bank1 (rotate 5 bank1)
    |> List.map2 (M.xor2 ctx) (rotate 11 bank1)
  in
  let state = M.state_feedback ctx 16 (fun qs -> M.mux_word ctx ~sel:(List.hd round) (take 16 mix) qs) in
  (* two independent redundancy pockets: the round decoder and a priority
     chain over key bytes *)
  let hot = M.decoder ctx round in
  let grants = M.priority_encoder ctx (take 6 keyed) in
  let cloud = M.onehot_cloud ctx ~hot ~data:(state @ keyed) (sc scale 60) in
  let cloud2 = M.onehot_cloud ctx ~hot:grants ~data:(bank1 @ din) (sc scale 50) in
  let filler = M.random_cloud ctx (mix @ state) (sc scale 60) in
  M.pos ctx "ct" state;
  M.pos ctx "mx" (take 8 mix);
  M.pos ctx "kx" (take 6 (cloud @ filler));
  M.pos ctx "gr" (take 4 cloud2);
  M.finish ctx

(* ------------------------------------------------------------------ *)
(* wb_conmax — Wishbone crossbar: per-master arbitration (priority
   encoders), wide mux matrix; arbitration grants drive big clouds.     *)
(* ------------------------------------------------------------------ *)

let wb_conmax scale =
  let ctx = M.make ~name:"wb_conmax" ~seed:0xCB0 in
  let reqs = M.pis ctx "req" 6 in
  let addr = M.pis ctx "a" 8 in
  let dat0 = M.pis ctx "w" 12 in
  let dat1 = M.pis ctx "v" 12 in
  let grants = M.priority_encoder ctx reqs in
  let sel_hot = M.decoder ctx (take 3 addr) in
  let routed =
    List.fold_left
      (fun word g -> M.mux_word ctx ~sel:g word (rotate 3 word))
      (List.map2 (M.xor2 ctx) dat0 dat1)
      grants
  in
  let held = M.register ctx ~enable:(List.hd grants) routed in
  let cloud1 = M.onehot_cloud ctx ~hot:grants ~data:(dat0 @ held) (sc scale 90) in
  let cloud2 = M.onehot_cloud ctx ~hot:sel_hot ~data:(dat1 @ addr) (sc scale 90) in
  let filler = M.random_cloud ctx (routed @ held) (sc scale 60) in
  M.pos ctx "do" held;
  M.pos ctx "gnt" grants;
  M.pos ctx "st" (take 8 cloud1);
  M.pos ctx "sx" (take 8 (cloud2 @ filler));
  M.finish ctx

(* ------------------------------------------------------------------ *)
(* des_perf — pipelined DES: 6->4 S-boxes, expansion/permutation XORs,
   several pipeline stages.  The largest block, as in the paper.        *)
(* ------------------------------------------------------------------ *)

let des_perf scale =
  let ctx = M.make ~name:"des_perf" ~seed:0xDE5 in
  let key = M.pis ctx "k" 24 in
  let din = M.pis ctx "d" 24 in
  let ctl = M.pis ctx "c" 4 in
  let stage input round_key =
    let expanded = List.map2 (M.xor2 ctx) input round_key in
    let sboxed =
      List.concat_map (fun g -> M.sbox ctx g 4)
        [ take 6 expanded; take 6 (rotate 6 expanded); take 6 (rotate 12 expanded);
          take 6 (rotate 18 expanded) ]
    in
    (* permutation: rotate + xor with the unsboxed half *)
    List.map2 (M.xor2 ctx) (rotate 7 sboxed) (take 16 input)
  in
  let s1 = stage din key in
  let r1 = M.register ctx s1 in
  let s2 = stage (r1 @ take 8 din) (rotate 3 key) in
  let r2 = M.register ctx s2 in
  let s3 = stage (r2 @ take 8 r1) (rotate 9 key) in
  let r3 = M.register ctx s3 in
  (* independent pockets per pipeline stage *)
  let hot = M.decoder ctx ctl in
  let grants = M.priority_encoder ctx (take 6 r2) in
  let cloud = M.onehot_cloud ctx ~hot ~data:(r1 @ r3) (sc scale 75) in
  let cloud2 = M.onehot_cloud ctx ~hot:grants ~data:(r2 @ key) (sc scale 60) in
  let filler = M.random_cloud ctx (r3 @ key) (sc scale 60) in
  M.pos ctx "ct" r3;
  M.pos ctx "p1" (take 6 r1);
  M.pos ctx "tag" (take 8 (cloud @ filler));
  M.pos ctx "tg2" (take 4 cloud2);
  M.finish ctx

(* ------------------------------------------------------------------ *)
(* sparc_spu — stream processing unit: modular-arithmetic datapath with
   a small control FSM.                                                 *)
(* ------------------------------------------------------------------ *)

let sparc_spu scale =
  let ctx = M.make ~name:"sparc_spu" ~seed:0x59C0 in
  let a = M.pis ctx "a" 12 in
  let b = M.pis ctx "b" 12 in
  let opc = M.pis ctx "o" 3 in
  let cin = M.pis ctx "ci" 1 in
  let sum, cout = M.ripple_adder ctx a b ~cin:(List.hd cin) in
  let prod = List.map2 (M.and2 ctx) a (rotate 1 b) in
  let acc = M.state_feedback ctx 12 (fun qs ->
      M.mux_word ctx ~sel:(List.hd opc) (List.map2 (M.xor2 ctx) qs sum) prod)
  in
  let hot = M.decoder ctx opc in
  let cloud = M.onehot_cloud ctx ~hot ~data:(acc @ sum) (sc scale 60) in
  let filler = M.random_cloud ctx (sum @ prod) (sc scale 30) in
  M.pos ctx "r" acc;
  M.pos ctx "co" [ cout ];
  M.pos ctx "t" (take 6 (cloud @ filler));
  M.finish ctx

(* ------------------------------------------------------------------ *)
(* sparc_ffu — FP frontend: format classification (priority encoder on
   exponent), operand muxing, register file slice.                      *)
(* ------------------------------------------------------------------ *)

let sparc_ffu scale =
  let ctx = M.make ~name:"sparc_ffu" ~seed:0xFF0 in
  let exp = M.pis ctx "e" 6 in
  let man = M.pis ctx "f" 12 in
  let sel = M.pis ctx "s" 3 in
  let classes = M.priority_encoder ctx exp in
  let aligned = M.barrel_shift ctx man ~sel:(take 3 exp) in
  let regs = M.register ctx ~enable:(List.hd sel) aligned in
  let hot = M.decoder ctx sel in
  let cloud1 = M.onehot_cloud ctx ~hot:classes ~data:(man @ regs) (sc scale 70) in
  let cloud2 = M.onehot_cloud ctx ~hot ~data:(aligned @ exp) (sc scale 40) in
  let filler = M.random_cloud ctx (aligned @ regs) (sc scale 30) in
  M.pos ctx "m" regs;
  M.pos ctx "cl" (take 6 classes);
  M.pos ctx "x" (take 8 (cloud1 @ cloud2 @ filler));
  M.finish ctx

(* ------------------------------------------------------------------ *)
(* sparc_exu — execution unit: the ALU block, bypass muxes, condition
   codes; control decode feeds a large cloud (the paper's Table I shows
   exu with the densest clustering).                                    *)
(* ------------------------------------------------------------------ *)

let sparc_exu scale =
  let ctx = M.make ~name:"sparc_exu" ~seed:0xE86 in
  let rs1 = M.pis ctx "x" 16 in
  let rs2 = M.pis ctx "y" 16 in
  let opc = M.pis ctx "o" 4 in
  let sum, cout = M.ripple_adder ctx rs1 rs2 ~cin:(List.hd opc) in
  let logic = List.map2 (M.and2 ctx) rs1 rs2 in
  let xors = List.map2 (M.xor2 ctx) rs1 rs2 in
  let shifted = M.barrel_shift ctx rs1 ~sel:(take 4 rs2) in
  let stage1 = M.mux_word ctx ~sel:(List.nth opc 1) sum logic in
  let stage2 = M.mux_word ctx ~sel:(List.nth opc 2) xors shifted in
  let result = M.mux_word ctx ~sel:(List.nth opc 3) stage1 stage2 in
  let bypass = M.register ctx result in
  (* pockets: opcode decode and a shift-amount priority chain *)
  let hot = M.decoder ctx opc in
  let grants = M.priority_encoder ctx (take 6 rs2) in
  let cloud = M.onehot_cloud ctx ~hot ~data:(bypass @ sum) (sc scale 75) in
  let cloud2 = M.onehot_cloud ctx ~hot:grants ~data:(logic @ rs1) (sc scale 55) in
  let zero = M.inv ctx (M.or_tree ctx result) in
  let filler = M.random_cloud ctx (result @ xors) (sc scale 40) in
  M.pos ctx "r" result;
  M.pos ctx "cc" [ cout; zero ];
  M.pos ctx "by" (take 8 bypass);
  M.pos ctx "t" (take 8 (cloud @ filler));
  M.pos ctx "t2" (take 4 cloud2);
  M.finish ctx

(* ------------------------------------------------------------------ *)
(* sparc_ifu — instruction fetch: PC chain, branch target adder, way
   select decode, predecode S-boxes.                                    *)
(* ------------------------------------------------------------------ *)

let sparc_ifu scale =
  let ctx = M.make ~name:"sparc_ifu" ~seed:0x1F0 in
  let inst = M.pis ctx "i" 16 in
  let boff = M.pis ctx "b" 8 in
  let way = M.pis ctx "w" 3 in
  let taken = M.pis ctx "t" 1 in
  let pc = M.state_feedback ctx 12 (fun qs ->
      let seq = M.incrementer ctx qs in
      let tgt, _ = M.ripple_adder ctx qs (boff @ take 4 qs) ~cin:(List.hd taken) in
      M.mux_word ctx ~sel:(List.hd taken) seq tgt)
  in
  let predec = List.concat_map (fun g -> M.sbox ctx g 4)
      [ take 5 inst; take 5 (rotate 5 inst); take 6 (rotate 10 inst) ]
  in
  let hot = M.decoder ctx way in
  let held = M.register ctx ~enable:(List.hd way) (take 10 predec) in
  let cloud = M.onehot_cloud ctx ~hot ~data:(pc @ predec) (sc scale 110) in
  let filler = M.random_cloud ctx (pc @ inst @ held) (sc scale 50) in
  M.pos ctx "pc" pc;
  M.pos ctx "pd" (take 8 predec);
  M.pos ctx "h" (take 6 held);
  M.pos ctx "x" (take 8 (cloud @ filler));
  M.finish ctx

(* ------------------------------------------------------------------ *)
(* sparc_tlu — trap logic: trap priority encoding chains, trap-level
   state, vectored dispatch decode.                                     *)
(* ------------------------------------------------------------------ *)

let sparc_tlu scale =
  let ctx = M.make ~name:"sparc_tlu" ~seed:0x730 in
  let traps = M.pis ctx "tr" 8 in
  let tstate = M.pis ctx "ts" 8 in
  let tl = M.pis ctx "tl" 3 in
  let pri = M.priority_encoder ctx traps in
  let vec_hot = M.decoder ctx tl in
  let level = M.state_feedback ctx 8 (fun qs ->
      let bumped = M.incrementer ctx qs in
      M.mux_word ctx ~sel:(List.hd traps) qs bumped)
  in
  let masked = List.map2 (M.and2 ctx) tstate (rotate 1 tstate) in
  let cloud1 = M.onehot_cloud ctx ~hot:pri ~data:(tstate @ level) (sc scale 110) in
  let cloud2 = M.onehot_cloud ctx ~hot:vec_hot ~data:(masked @ traps) (sc scale 70) in
  let filler = M.random_cloud ctx (level @ masked) (sc scale 40) in
  M.pos ctx "tt" (take 8 pri);
  M.pos ctx "lvl" level;
  M.pos ctx "m" (take 6 masked);
  M.pos ctx "x" (take 10 (cloud1 @ cloud2 @ filler));
  M.finish ctx

(* ------------------------------------------------------------------ *)
(* sparc_lsu — load/store: address adder, alignment shifter, byte-enable
   decode, store buffer registers.                                      *)
(* ------------------------------------------------------------------ *)

let sparc_lsu scale =
  let ctx = M.make ~name:"sparc_lsu" ~seed:0x150 in
  let base = M.pis ctx "b" 14 in
  let off = M.pis ctx "o" 14 in
  let size = M.pis ctx "sz" 2 in
  let wdat = M.pis ctx "wd" 8 in
  let vaddr, _ = M.ripple_adder ctx base off ~cin:(List.hd size) in
  let be_hot = M.decoder ctx (take 2 vaddr @ size) in
  let aligned = M.barrel_shift ctx (wdat @ take 4 base) ~sel:(take 3 vaddr) in
  let stb = M.register ctx ~enable:(List.hd size) aligned in
  let cloud = M.onehot_cloud ctx ~hot:be_hot ~data:(vaddr @ stb) (sc scale 140) in
  let filler = M.random_cloud ctx (vaddr @ aligned) (sc scale 50) in
  M.pos ctx "va" vaddr;
  M.pos ctx "st" stb;
  M.pos ctx "x" (take 10 (cloud @ filler));
  M.finish ctx

(* ------------------------------------------------------------------ *)
(* sparc_fpu — floating point: exponent compare/adder, mantissa adder,
   leading-zero priority encode, normalization shifter, rounding LUTs.  *)
(* ------------------------------------------------------------------ *)

let sparc_fpu scale =
  let ctx = M.make ~name:"sparc_fpu" ~seed:0xF90 in
  let ea = M.pis ctx "ea" 6 in
  let eb = M.pis ctx "eb" 6 in
  let ma = M.pis ctx "ma" 14 in
  let mb = M.pis ctx "mb" 14 in
  let rm = M.pis ctx "rm" 2 in
  let ediff, _ = M.ripple_adder ctx ea (List.map (fun e -> M.inv ctx e) eb) ~cin:(List.hd rm) in
  let aligned = M.barrel_shift ctx mb ~sel:(take 3 ediff) in
  let msum, mcout = M.ripple_adder ctx ma aligned ~cin:(List.hd rm) in
  let lz = M.priority_encoder ctx (take 8 msum) in
  let normed = M.barrel_shift ctx msum ~sel:(take 3 msum) in
  let round = M.sbox ctx (take 4 normed @ rm) 3 in
  let resreg = M.register ctx (take 12 normed) in
  (* pockets: leading-zero priority lines and the rounding-mode decode *)
  let rm_hot = M.decoder ctx rm in
  let cloud = M.onehot_cloud ctx ~hot:lz ~data:(normed @ ediff) (sc scale 70) in
  let cloud2 = M.onehot_cloud ctx ~hot:rm_hot ~data:(aligned @ ma) (sc scale 55) in
  let filler = M.random_cloud ctx (msum @ resreg) (sc scale 50) in
  M.pos ctx "m" resreg;
  M.pos ctx "e" (take 6 ediff);
  M.pos ctx "rc" (mcout :: round);
  M.pos ctx "x" (take 10 (cloud @ filler));
  M.pos ctx "x2" (take 4 cloud2);
  M.finish ctx

(* ------------------------------------------------------------------ *)

let registry =
  [
    ("tv80", tv80);
    ("systemcaes", systemcaes);
    ("aes_core", aes_core);
    ("wb_conmax", wb_conmax);
    ("des_perf", des_perf);
    ("sparc_spu", sparc_spu);
    ("sparc_ffu", sparc_ffu);
    ("sparc_exu", sparc_exu);
    ("sparc_ifu", sparc_ifu);
    ("sparc_tlu", sparc_tlu);
    ("sparc_lsu", sparc_lsu);
    ("sparc_fpu", sparc_fpu);
  ]

let names = List.map fst registry

let table1_names = [ "aes_core"; "des_perf"; "sparc_exu"; "sparc_fpu" ]

let build ?scale name =
  let scale = match scale with Some s -> s | None -> default_scale () in
  (List.assoc name registry) scale

let all ?scale () = List.map (fun (n, _) -> (n, build ?scale n)) registry

(* Session layer over the persistent solver: activation-literal management
   for many enable/disable-able clause groups sharing one instance, plus a
   small keyed pool of sessions.

   One session = one solver living across many queries.  A query gets an
   activation literal [a]; its clauses are added guarded as [¬a ∨ C] and
   enabled by assuming [a].  Clauses learnt while [a] was assumed either
   contain [¬a] or are consequences of the unguarded CNF alone — both are
   sound for every later query, which is what makes cross-query clause
   reuse free.

   Retiring a query adds the unit [¬a], permanently satisfying its guarded
   clauses, and pins the query's private ("local") variables at level 0 so
   the branching heuristic never wastes decisions on unconstrained garbage.
   Pinning is sound: with [a] false the local variables are unconstrained
   by construction (every clause mentioning them carries [¬a]), so fixing
   them cannot change satisfiability of anything that remains. *)

type session = {
  solver : Solver.t;
  mutable n_activations : int;
  mutable n_retired : int;
  mutable n_solves : int;
  mutable reused : int;          (* cumulative pre-existing clauses at solve *)
  mutable last_nclauses : int;   (* clause count when the previous solve ran *)
}

type stats = {
  activations : int;
  retired : int;
  solves : int;
  clauses_reused : int;
}

let m_sessions =
  Dfm_obs.Metrics.counter ~help:"Incremental SAT sessions created"
    "dfm_sat_incr_sessions_total"

let m_session_solves =
  Dfm_obs.Metrics.counter ~help:"Solves issued through incremental sessions"
    "dfm_sat_incr_solves_total"

let m_activations =
  Dfm_obs.Metrics.counter ~help:"Activation literals allocated in incremental sessions"
    "dfm_sat_incr_activations_total"

let m_retired =
  Dfm_obs.Metrics.counter ~help:"Activation groups retired in incremental sessions"
    "dfm_sat_incr_retired_total"

let m_reused =
  Dfm_obs.Metrics.counter
    ~help:"Clauses already present when an incremental solve started (reuse)"
    "dfm_sat_incr_clauses_reused_total"

let create ?counted () =
  Dfm_obs.Metrics.incr m_sessions;
  {
    solver = Solver.create ?counted ();
    n_activations = 0;
    n_retired = 0;
    n_solves = 0;
    reused = 0;
    last_nclauses = 0;
  }

let solver t = t.solver

let new_activation t =
  t.n_activations <- t.n_activations + 1;
  Dfm_obs.Metrics.incr m_activations;
  Solver.new_var t.solver

let add_guarded t ~act lits = Solver.add_clause t.solver (-act :: lits)

let add_permanent t lits = Solver.add_clause t.solver lits

let solve ?(assumptions = []) ?max_conflicts t ~act =
  (* Clause-reuse accounting: everything present at the {e previous} solve
     is inherited state this query did not pay to encode. *)
  t.reused <- t.reused + t.last_nclauses;
  Dfm_obs.Metrics.incr ~by:t.last_nclauses m_reused;
  t.n_solves <- t.n_solves + 1;
  Dfm_obs.Metrics.incr m_session_solves;
  let r = Solver.solve ~assumptions:(act :: assumptions) ?max_conflicts t.solver in
  t.last_nclauses <- Solver.num_clauses t.solver;
  r

let retire t ~act ~locals =
  t.n_retired <- t.n_retired + 1;
  Dfm_obs.Metrics.incr m_retired;
  Solver.add_clause t.solver [ -act ];
  (* Pin still-free local variables (see the soundness note above).  A local
     already fixed at level 0 — e.g. through a learnt unit resolving against
     [¬act] — is left alone. *)
  List.iter
    (fun v ->
      match Solver.root_value t.solver v with
      | None -> Solver.add_clause t.solver [ v ]
      | Some _ -> ())
    locals

let stats t =
  {
    activations = t.n_activations;
    retired = t.n_retired;
    solves = t.n_solves;
    clauses_reused = t.reused;
  }

(* ---- keyed session pool -------------------------------------------- *)

(* Sessions keyed by an [int64] content hash (the same key shape as the
   [lib/incr] cone signatures), each carrying a caller payload ['a] — the
   encoder state that maps problem structure to solver variables.  FIFO
   eviction bounds memory; an evicted session is simply dropped (its solver
   is garbage-collected), never reused. *)

type 'a pool = {
  tbl : (int64, session * 'a) Hashtbl.t;
  max_sessions : int;
  mutable fifo : int64 list;  (* oldest last *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type pool_stats = { live : int; pool_hits : int; pool_misses : int; evictions : int }

let create_pool ?(max_sessions = 8) () =
  if max_sessions < 1 then invalid_arg "Incremental.create_pool";
  { tbl = Hashtbl.create 16; max_sessions; fifo = []; hits = 0; misses = 0; evictions = 0 }

let find_session p ~key =
  match Hashtbl.find_opt p.tbl key with
  | Some _ as r ->
      p.hits <- p.hits + 1;
      r
  | None ->
      p.misses <- p.misses + 1;
      None

let add_session p ~key sess payload =
  if not (Hashtbl.mem p.tbl key) then begin
    if Hashtbl.length p.tbl >= p.max_sessions then begin
      match List.rev p.fifo with
      | oldest :: _ ->
          Hashtbl.remove p.tbl oldest;
          p.fifo <- List.filter (fun k -> k <> oldest) p.fifo;
          p.evictions <- p.evictions + 1
      | [] -> ()
    end;
    p.fifo <- key :: p.fifo
  end;
  Hashtbl.replace p.tbl key (sess, payload)

let pool_stats p =
  {
    live = Hashtbl.length p.tbl;
    pool_hits = p.hits;
    pool_misses = p.misses;
    evictions = p.evictions;
  }

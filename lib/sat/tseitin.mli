(** Tseitin gate encoders on top of {!Solver}.

    Each function constrains an output literal to equal a Boolean function of
    input literals, using the standard equisatisfiable clause sets.  Literals
    are DIMACS integers as in {!Solver}.

    When [?act] is given, every emitted clause is guarded as [¬act ∨ C]:
    the encoding holds only while [act] is assumed, which is how per-query
    constraint groups share one incremental solver (see {!Incremental}). *)

val const_true : ?act:int -> Solver.t -> int -> unit
val const_false : ?act:int -> Solver.t -> int -> unit

val equal : ?act:int -> Solver.t -> int -> int -> unit
(** [equal s a b] forces [a = b]. *)

val not_ : ?act:int -> Solver.t -> out:int -> int -> unit

val and_ : ?act:int -> Solver.t -> out:int -> int list -> unit
(** [and_ s ~out ins] forces [out = AND ins].  [AND [] = true]. *)

val or_ : ?act:int -> Solver.t -> out:int -> int list -> unit
(** [or_ s ~out ins] forces [out = OR ins].  [OR [] = false]. *)

val xor_ : ?act:int -> Solver.t -> out:int -> int -> int -> unit
(** [xor_ s ~out a b] forces [out = a XOR b]. *)

val mux : ?act:int -> Solver.t -> out:int -> sel:int -> int -> int -> unit
(** [mux s ~out ~sel a b] forces [out = if sel then b else a]. *)

val of_truthtable :
  ?act:int -> Solver.t -> out:int -> int array -> Dfm_logic.Truthtable.t -> unit
(** [of_truthtable s ~out ins tt] forces [out = tt(ins)] by enumerating
    minterms and maxterms; suitable for functions of up to 6 inputs. *)

(** Incremental SAT sessions: activation-literal bookkeeping over one
    persistent {!Solver} instance, plus a keyed session pool.

    A session hosts many queries against one growing CNF.  Shared
    ("permanent") clauses are added once; each query allocates an
    activation literal [a], contributes its private clauses guarded as
    [¬a ∨ C], and is solved under the assumption [a].  Learnt clauses are
    retained across queries — each is a resolution consequence of the full
    guarded CNF, so reuse is sound for every later query (the guarded
    clauses of query [A] are invisible to query [B] unless a learnt clause
    carries [¬a_A], in which case assuming nothing about [a_A] keeps it
    harmless).  Once a query's verdict is final it is {!retire}d: the unit
    [¬a] permanently satisfies its guarded clauses and its private
    variables are pinned at level 0, so the dead encoding costs later
    solves nothing.

    Sessions are single-domain objects (no internal locking): create one
    per worker, never share across domains. *)

type session

type stats = {
  activations : int;      (** activation literals allocated *)
  retired : int;          (** activation groups retired *)
  solves : int;           (** solves issued through the session *)
  clauses_reused : int;
      (** cumulative count of clauses already present when each solve
          started — the work inherited rather than re-encoded *)
}

val create : ?counted:bool -> unit -> session
(** [counted] is passed through to {!Solver.create}: verification-only
    sessions use [~counted:false] so their effort stays out of the
    process-wide totals. *)

val solver : session -> Solver.t
(** The underlying solver, for encoders that allocate variables and for
    model extraction after a [Sat] answer. *)

val new_activation : session -> int
(** Fresh activation literal (a plain solver variable, counted). *)

val add_guarded : session -> act:int -> int list -> unit
(** [add_guarded s ~act c] adds the clause [¬act ∨ c]: active only while
    [act] is assumed. *)

val add_permanent : session -> int list -> unit
(** Add an unguarded clause, shared by every query of the session. *)

val solve :
  ?assumptions:int list -> ?max_conflicts:int -> session -> act:int -> Solver.result
(** Solve with [act] (plus any extra [assumptions]) assumed.  Retained
    learnt clauses make repeat solves of related queries cheaper; the
    reuse is visible in {!stats} and the [dfm_sat_incr_*] metrics. *)

val retire : session -> act:int -> locals:int list -> unit
(** Permanently disable the activation group: add the unit [¬act] and pin
    the group's private variables ([locals]) at level 0.  Sound because
    every clause over a local carries [¬act]; required so retired queries
    cost later solves neither decisions nor propagations.  Call only once
    the query's verdict is final. *)

val stats : session -> stats

(** {1 Keyed session pool}

    Sessions addressed by [int64] content keys — the same key shape as the
    {!Dfm_incr.Signature} cone hashes, so callers can reuse one solver per
    cone/region across repeated analyses.  Each entry carries a caller
    payload ['a] (typically the encoder state binding problem structure to
    solver variables); the pool is FIFO-bounded and evicted sessions are
    dropped, never resurrected.  Like sessions, a pool belongs to one
    domain. *)

type 'a pool

type pool_stats = {
  live : int;
  pool_hits : int;
  pool_misses : int;
  evictions : int;
}

val create_pool : ?max_sessions:int -> unit -> 'a pool
(** Default capacity: 8 sessions.  @raise Invalid_argument on [< 1]. *)

val find_session : 'a pool -> key:int64 -> (session * 'a) option

val add_session : 'a pool -> key:int64 -> session -> 'a -> unit
(** Insert (or replace) the session under [key], evicting the oldest entry
    when the pool is full. *)

val pool_stats : 'a pool -> pool_stats

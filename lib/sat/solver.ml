(* CDCL SAT solver.

   Internal literal encoding: variable v (1-based external) has index
   iv = v - 1; positive literal = 2*iv, negative literal = 2*iv + 1.
   Negation is [lxor 1].

   Invariants maintained by the search:
   - every clause of size >= 2 has its two watched literals in
     positions 0 and 1 of the clause array;
   - a watched literal is moved only when it becomes false and no
     other non-false literal can replace it;
   - [trail] holds assigned literals in assignment order, with
     [trail_lim] marking decision-level boundaries. *)

type clause = {
  lits : int array;
  mutable activity : float;
  learnt : bool;
  mutable deleted : bool;
}

type result = Sat | Unsat | Unknown

type t = {
  mutable nvars : int;
  mutable clauses : clause list;
  mutable nclauses : int;
  mutable learnts : clause list;
  mutable watches : clause list array;  (* indexed by internal literal *)
  mutable assign : int array;           (* per var: -1 unknown, 0 false, 1 true *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable saved_phase : bool array;
  mutable activity : float array;
  mutable var_inc : float;
  mutable trail : int array;
  mutable trail_len : int;
  mutable trail_lim : int list;         (* stack of trail lengths at decisions *)
  mutable qhead : int;
  mutable unsat : bool;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable cla_inc : float;
  mutable n_learnts : int;
  mutable max_learnts : int;
}

let create () =
  {
    nvars = 0;
    clauses = [];
    nclauses = 0;
    learnts = [];
    watches = Array.make 2 [];
    assign = Array.make 1 (-1);
    level = Array.make 1 0;
    reason = Array.make 1 None;
    saved_phase = Array.make 1 false;
    activity = Array.make 1 0.0;
    var_inc = 1.0;
    trail = Array.make 1 0;
    trail_len = 0;
    trail_lim = [];
    qhead = 0;
    unsat = false;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    cla_inc = 1.0;
    n_learnts = 0;
    max_learnts = 4000;
  }

let num_vars s = s.nvars
let num_clauses s = s.nclauses
let num_conflicts s = s.conflicts
let num_decisions s = s.decisions
let num_propagations s = s.propagations

(* Process-wide effort totals, accumulated across every solver instance in
   every domain.  Per-solver counting uses plain mutable fields on the hot
   path; the deltas are flushed here (and to the metrics registry) once per
   [solve] call.  Counting is unconditional, so effort numbers are identical
   whether or not any exporter is attached. *)
let conflicts_total = Atomic.make 0
let decisions_total = Atomic.make 0
let propagations_total = Atomic.make 0

let totals () =
  (Atomic.get conflicts_total, Atomic.get decisions_total, Atomic.get propagations_total)

let m_solves = Dfm_obs.Metrics.counter ~help:"SAT solve calls" "dfm_sat_solves_total"

let m_conflicts =
  Dfm_obs.Metrics.counter ~help:"CDCL conflicts across all solvers"
    "dfm_sat_conflicts_total"

let m_decisions =
  Dfm_obs.Metrics.counter ~help:"CDCL decisions across all solvers"
    "dfm_sat_decisions_total"

let m_propagations =
  Dfm_obs.Metrics.counter ~help:"Literals propagated across all solvers"
    "dfm_sat_propagations_total"

let grow_arrays s n =
  let old = Array.length s.assign in
  if n > old then begin
    let nn = max n (2 * old) in
    let g a fill =
      let b = Array.make nn fill in
      Array.blit a 0 b 0 old;
      b
    in
    s.assign <- g s.assign (-1);
    s.level <- g s.level 0;
    s.reason <- g s.reason None;
    s.saved_phase <- g s.saved_phase false;
    s.activity <- g s.activity 0.0;
    s.trail <- g s.trail 0;
    let oldw = Array.length s.watches in
    if 2 * nn > oldw then begin
      let w = Array.make (2 * nn) [] in
      Array.blit s.watches 0 w 0 oldw;
      s.watches <- w
    end
  end

let ensure_vars s n =
  if n > s.nvars then begin
    grow_arrays s n;
    s.nvars <- n
  end

let new_var s =
  ensure_vars s (s.nvars + 1);
  s.nvars

let int_lit ext =
  let v = abs ext - 1 in
  if ext > 0 then 2 * v else (2 * v) + 1

let ext_of_int l =
  let v = (l / 2) + 1 in
  if l land 1 = 0 then v else -v

let lit_var l = l / 2
let lit_neg l = l lxor 1

(* Value of an internal literal: -1 unknown, 0 false, 1 true. *)
let lvalue s l =
  let a = s.assign.(lit_var l) in
  if a < 0 then -1 else if l land 1 = 0 then a else 1 - a

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

let decay_activity s = s.var_inc <- s.var_inc /. 0.95

let enqueue s l reason =
  let v = lit_var l in
  s.assign.(v) <- (if l land 1 = 0 then 1 else 0);
  s.level.(v) <- List.length s.trail_lim;
  s.reason.(v) <- reason;
  s.saved_phase.(v) <- l land 1 = 0;
  s.trail.(s.trail_len) <- l;
  s.trail_len <- s.trail_len + 1

(* Propagate all pending assignments; return a conflicting clause if any. *)
let propagate s =
  let conflict = ref None in
  while !conflict = None && s.qhead < s.trail_len do
    let l = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let falsified = lit_neg l in
    let ws = s.watches.(falsified) in
    s.watches.(falsified) <- [];
    let rec go = function
      | [] -> ()
      | c :: rest when c.deleted -> go rest  (* lazily unhooked *)
      | c :: rest -> (
          (* Ensure the falsified literal is at position 1. *)
          if c.lits.(0) = falsified then begin
            c.lits.(0) <- c.lits.(1);
            c.lits.(1) <- falsified
          end;
          let first = c.lits.(0) in
          if lvalue s first = 1 then begin
            (* Clause satisfied: keep watching. *)
            s.watches.(falsified) <- c :: s.watches.(falsified);
            go rest
          end
          else begin
            (* Look for a new watch. *)
            let n = Array.length c.lits in
            let found = ref false in
            let k = ref 2 in
            while (not !found) && !k < n do
              if lvalue s c.lits.(!k) <> 0 then begin
                c.lits.(1) <- c.lits.(!k);
                c.lits.(!k) <- falsified;
                s.watches.(c.lits.(1)) <- c :: s.watches.(c.lits.(1));
                found := true
              end;
              incr k
            done;
            if !found then go rest
            else begin
              (* No new watch: clause is unit or conflicting. *)
              s.watches.(falsified) <- c :: s.watches.(falsified);
              if lvalue s first = 0 then begin
                conflict := Some c;
                (* Re-add remaining watchers untouched. *)
                List.iter
                  (fun c' -> s.watches.(falsified) <- c' :: s.watches.(falsified))
                  rest
              end
              else begin
                enqueue s first (Some c);
                go rest
              end
            end
          end)
    in
    go ws
  done;
  !conflict

let decision_level s = List.length s.trail_lim

let new_decision_level s =
  s.decisions <- s.decisions + 1;
  s.trail_lim <- s.trail_len :: s.trail_lim

let backtrack s target_level =
  while decision_level s > target_level do
    match s.trail_lim with
    | [] -> assert false
    | lim :: rest ->
        for i = s.trail_len - 1 downto lim do
          let v = lit_var s.trail.(i) in
          s.assign.(v) <- -1;
          s.reason.(v) <- None
        done;
        s.trail_len <- lim;
        s.trail_lim <- rest
  done;
  s.qhead <- min s.qhead s.trail_len;
  s.qhead <- s.trail_len

(* First-UIP conflict analysis.  Returns (learned clause lits with the
   asserting literal first, backtrack level). *)
let bump_clause s (c : clause) =
  if c.learnt then begin
    c.activity <- c.activity +. s.cla_inc;
    if c.activity > 1e20 then begin
      List.iter (fun (c' : clause) -> c'.activity <- c'.activity *. 1e-20) s.learnts;
      s.cla_inc <- s.cla_inc *. 1e-20
    end
  end

let analyze s conflict =
  let seen = Hashtbl.create 64 in
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let idx = ref (s.trail_len - 1) in
  let cur_level = decision_level s in
  let reason_lits c skip =
    bump_clause s c;
    Array.to_list c.lits |> List.filter (fun l -> l <> skip)
  in
  let handle_lit q =
    let v = lit_var q in
    if (not (Hashtbl.mem seen v)) && s.level.(v) > 0 then begin
      Hashtbl.add seen v ();
      bump_var s v;
      if s.level.(v) = cur_level then incr counter
      else learnt := q :: !learnt
    end
  in
  let clause = ref (reason_lits conflict (-1)) in
  let continue = ref true in
  while !continue do
    List.iter handle_lit !clause;
    (* Find the next seen literal on the trail. *)
    let rec next_seen i =
      let v = lit_var s.trail.(i) in
      if Hashtbl.mem seen v then i else next_seen (i - 1)
    in
    idx := next_seen !idx;
    p := s.trail.(!idx);
    let v = lit_var !p in
    Hashtbl.remove seen v;
    decr counter;
    idx := !idx - 1;
    if !counter = 0 then continue := false
    else begin
      match s.reason.(v) with
      | Some c -> clause := reason_lits c !p
      | None -> assert false
    end
  done;
  let asserting = lit_neg !p in
  (* Conflict-clause minimization (local self-subsumption): a literal whose
     reason clause's other literals all appear in the learned clause is
     implied by the rest and can be dropped. *)
  let in_clause = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace in_clause (lit_var l) ()) !learnt;
  let removable l =
    let v = lit_var l in
    match s.reason.(v) with
    | None -> false
    | Some c ->
        Array.for_all
          (fun q ->
            let qv = lit_var q in
            qv = v || Hashtbl.mem in_clause qv || s.level.(qv) = 0)
          c.lits
  in
  let others = List.filter (fun l -> not (removable l)) !learnt in
  (* Backtrack level = max level among the other literals. *)
  let blevel = List.fold_left (fun acc l -> max acc s.level.(lit_var l)) 0 others in
  (asserting :: others, blevel)

(* Watch lists are indexed by the watched literal itself and are visited
   by [propagate] when that literal becomes false. *)
let attach_clause s c =
  s.watches.(c.lits.(0)) <- c :: s.watches.(c.lits.(0));
  s.watches.(c.lits.(1)) <- c :: s.watches.(c.lits.(1))

let add_clause s ext_lits =
  if not s.unsat then begin
    (* Incremental use: clauses may arrive between solves; strip any leftover
       search state first so level-0 simplification below stays sound. *)
    if decision_level s > 0 then backtrack s 0;
    List.iter (fun l -> ensure_vars s (abs l)) ext_lits;
    (* Normalize: dedup, drop tautologies. *)
    let lits = List.sort_uniq compare (List.map int_lit ext_lits) in
    let taut = List.exists (fun l -> List.mem (lit_neg l) lits) lits in
    (* Clauses are only ever added at decision level 0, so the current
       assignment is permanent: literals false now are false forever and can
       be dropped; a literal true now satisfies the clause for good. *)
    let satisfied = List.exists (fun l -> lvalue s l = 1) lits in
    let lits = List.filter (fun l -> lvalue s l <> 0) lits in
    if not (taut || satisfied) then
      match lits with
      | [] -> s.unsat <- true
      | [ l ] ->
          (* Unit at level 0: apply immediately if possible. *)
          (match lvalue s l with
          | 0 -> s.unsat <- true
          | 1 -> ()
          | _ ->
              enqueue s l None;
              if propagate s <> None then s.unsat <- true)
      | l0 :: l1 :: _ ->
          let c = { lits = Array.of_list lits; activity = 0.0; learnt = false; deleted = false } in
          ignore l0;
          ignore l1;
          s.clauses <- c :: s.clauses;
          s.nclauses <- s.nclauses + 1;
          attach_clause s c
  end

(* Variable order: recompute a sorted candidate list lazily.  For the CNF
   sizes the ATPG produces (cone-limited miters) this simple strategy is
   fast enough and much simpler than an indexed heap. *)
let pick_branch_var s =
  let best = ref (-1) in
  let best_act = ref neg_infinity in
  for v = 0 to s.nvars - 1 do
    if s.assign.(v) < 0 && s.activity.(v) > !best_act then begin
      best := v;
      best_act := s.activity.(v)
    end
  done;
  !best

(* Delete the low-activity half of the learned clauses.  Called only when
   the trail is at the assumption level; clauses that are the reason for a
   current assignment are kept (their deletion would orphan the implication
   graph). *)
let reduce_learnts s =
  let is_reason c =
    let v = lit_var c.lits.(0) in
    s.assign.(v) >= 0 && s.reason.(v) == Some c
  in
  let live = List.filter (fun (c : clause) -> not c.deleted) s.learnts in
  let sorted = List.sort (fun (a : clause) (b : clause) -> compare a.activity b.activity) live in
  let n = List.length sorted in
  List.iteri
    (fun i (c : clause) ->
      if i < n / 2 && (not (is_reason c)) && Array.length c.lits > 2 then c.deleted <- true)
    sorted;
  s.learnts <- List.filter (fun (c : clause) -> not c.deleted) live;
  s.n_learnts <- List.length s.learnts

(* Luby sequence (1-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby i =
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do incr k done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1)
  else luby (i - (1 lsl (!k - 1)) + 1)

let solve_search ?(assumptions = []) ?(max_conflicts = max_int) s =
  if s.unsat then Unsat
  else begin
    List.iter (fun l -> ensure_vars s (abs l)) assumptions;
    let assumption_lits = List.map int_lit assumptions in
    let n_assumptions = List.length assumption_lits in
    backtrack s 0;
    (match propagate s with
    | Some _ -> s.unsat <- true
    | None -> ());
    if s.unsat then Unsat
    else begin
      let result = ref Unknown in
      let done_ = ref false in
      let restart_count = ref 0 in
      let conflicts_at_start = s.conflicts in
      let conflict_budget_for_restart = ref (100 * luby 1) in
      let conflicts_this_restart = ref 0 in
      while not !done_ do
        match propagate s with
        | Some confl ->
            s.conflicts <- s.conflicts + 1;
            incr conflicts_this_restart;
            if decision_level s <= n_assumptions then begin
              (* Conflict within (or below) the assumption levels. *)
              if decision_level s = 0 then s.unsat <- true;
              result := Unsat;
              done_ := true
            end
            else if s.conflicts - conflicts_at_start >= max_conflicts then begin
              result := Unknown;
              done_ := true
            end
            else begin
              let learnt, blevel = analyze s confl in
              let blevel = max blevel n_assumptions in
              backtrack s blevel;
              (match learnt with
              | [ l ] when blevel = 0 -> (
                  match lvalue s l with
                  | 0 ->
                      s.unsat <- true;
                      result := Unsat;
                      done_ := true
                  | 1 -> ()
                  | _ -> enqueue s l None)
              | l0 :: _ :: _ ->
                  let arr = Array.of_list learnt in
                  (* Put a highest-level "other" literal in position 1 so the
                     watch invariant holds after backtracking. *)
                  let hi = ref 1 in
                  for k = 2 to Array.length arr - 1 do
                    if s.level.(lit_var arr.(k)) > s.level.(lit_var arr.(!hi)) then hi := k
                  done;
                  let tmp = arr.(1) in
                  arr.(1) <- arr.(!hi);
                  arr.(!hi) <- tmp;
                  let c = { lits = arr; activity = s.cla_inc; learnt = true; deleted = false } in
                  s.learnts <- c :: s.learnts;
                  s.n_learnts <- s.n_learnts + 1;
                  attach_clause s c;
                  enqueue s l0 (Some c)
              | [ l0 ] -> enqueue s l0 None
              | [] ->
                  s.unsat <- true;
                  result := Unsat;
                  done_ := true);
              decay_activity s;
              s.cla_inc <- s.cla_inc /. 0.999
            end
        | None ->
            if !conflicts_this_restart >= !conflict_budget_for_restart then begin
              (* Restart. *)
              conflicts_this_restart := 0;
              incr restart_count;
              conflict_budget_for_restart := 100 * luby (!restart_count + 1);
              backtrack s n_assumptions;
              if s.n_learnts > s.max_learnts then begin
                reduce_learnts s;
                s.max_learnts <- s.max_learnts + (s.max_learnts / 10)
              end
            end;
            (* Place assumptions first. *)
            if decision_level s < n_assumptions then begin
              let l = List.nth assumption_lits (decision_level s) in
              match lvalue s l with
              | 1 -> new_decision_level s (* already true: dummy level *)
              | 0 ->
                  result := Unsat;
                  done_ := true
              | _ ->
                  new_decision_level s;
                  enqueue s l None
            end
            else begin
              let v = pick_branch_var s in
              if v < 0 then begin
                result := Sat;
                done_ := true
              end
              else begin
                new_decision_level s;
                let l = if s.saved_phase.(v) then 2 * v else (2 * v) + 1 in
                enqueue s l None
              end
            end
      done;
      !result
    end
  end

let result_to_string = function Sat -> "sat" | Unsat -> "unsat" | Unknown -> "unknown"

let solve ?assumptions ?max_conflicts s =
  let c0 = s.conflicts and d0 = s.decisions and p0 = s.propagations in
  let flush () =
    let dc = s.conflicts - c0 and dd = s.decisions - d0 and dp = s.propagations - p0 in
    ignore (Atomic.fetch_and_add conflicts_total dc);
    ignore (Atomic.fetch_and_add decisions_total dd);
    ignore (Atomic.fetch_and_add propagations_total dp);
    Dfm_obs.Metrics.incr m_solves;
    Dfm_obs.Metrics.incr ~by:dc m_conflicts;
    Dfm_obs.Metrics.incr ~by:dd m_decisions;
    Dfm_obs.Metrics.incr ~by:dp m_propagations
  in
  Dfm_obs.Span.with_ "sat.solve" (fun () ->
      let r =
        Fun.protect ~finally:flush (fun () -> solve_search ?assumptions ?max_conflicts s)
      in
      if Dfm_obs.Span.enabled () then begin
        Dfm_obs.Span.note "result" (result_to_string r);
        Dfm_obs.Span.note "conflicts" (string_of_int (s.conflicts - c0))
      end;
      r)

let value s v =
  if v < 1 || v > s.nvars then invalid_arg "Solver.value";
  s.assign.(v - 1) = 1

let lit_value s l = if l > 0 then value s l else not (value s (-l))

let _ = ext_of_int

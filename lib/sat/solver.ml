(* Persistent, incremental CDCL SAT solver.

   Internal literal encoding: variable v (1-based external) has index
   iv = v - 1; positive literal = 2*iv, negative literal = 2*iv + 1.
   Negation is [lxor 1].

   The solver is built for reuse across many solves of one growing CNF
   (the ATPG encodes thousands of per-fault detection queries into one
   instance, each guarded by an activation literal and enabled through
   [assumptions]):

   - every [solve] fully unwinds its trail before returning — assumptions
     never leak into the next query; a SAT answer is preserved in a model
     snapshot for [value];
   - learnt clauses persist across solves and are periodically reduced by
     LBD ("glue") and activity, with binary, low-LBD and locked clauses
     kept;
   - an UNSAT answer under assumptions records the failing assumption
     subset ({!failed_assumptions}, Minisat's final conflict clause);
   - conflict analysis deletes learnt clauses subsumed on the fly by the
     freshly learnt clause.

   Invariants maintained by the search:
   - every clause of size >= 2 has its two watched literals in
     positions 0 and 1 of the clause array;
   - a watched literal is moved only when it becomes false and no
     other non-false literal can replace it;
   - [trail] holds assigned literals in assignment order, with
     [trail_lim] marking decision-level boundaries.
   [check_invariants] makes the between-solve invariants executable. *)

type clause = {
  cid : int;
  lits : int array;
  mutable activity : float;
  learnt : bool;
  lbd : int;
  mutable deleted : bool;
}

type result = Sat | Unsat | Unknown

(* Clausal trace for certification (a DRUP-style derivation): every clause
   the solver admits is reported to the tracer — original clauses exactly as
   given (pre-normalization; the checker normalizes independently) and every
   learnt clause the moment it is derived.  Learnt units and the empty
   clause are traced too, so the trace alone lets an independent checker
   replay the refutation.  Deletions are not traced: a checker that keeps
   every clause remains sound, merely slower. *)
type trace_event = Trace_original of int list | Trace_learnt of int list

type t = {
  mutable nvars : int;
  mutable clauses : clause list;
  mutable nclauses : int;
  mutable learnts : clause list;
  mutable watches : clause list array;  (* indexed by internal literal *)
  mutable assign : int array;           (* per var: -1 unknown, 0 false, 1 true *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable saved_phase : bool array;
  mutable activity : float array;
  mutable model : int array;            (* snapshot of [assign] at the last Sat *)
  mutable var_inc : float;
  mutable trail : int array;
  mutable trail_len : int;
  mutable trail_lim : int list;         (* stack of trail lengths at decisions *)
  mutable qhead : int;
  (* Variable order: indexed binary heap over (activity, index). The linear
     scan this replaces was fine for throwaway per-query solvers but is
     O(nvars) per decision — ruinous once one persistent instance holds the
     variables of thousands of retired queries. *)
  mutable heap : int array;
  mutable heap_pos : int array;         (* var -> index in heap, -1 = absent *)
  mutable heap_len : int;
  mutable failed : int list;            (* see [failed_assumptions] *)
  mutable next_cid : int;
  mutable unsat : bool;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable cla_inc : float;
  mutable n_learnts : int;
  mutable max_learnts : int;
  mutable simplified_at : int;          (* trail length at the last level-0 sweep *)
  mutable tracer : (trace_event -> unit) option;
  counted : bool;                       (* flush effort into the process totals? *)
}

let create ?(counted = true) () =
  {
    nvars = 0;
    clauses = [];
    nclauses = 0;
    learnts = [];
    watches = Array.make 2 [];
    assign = Array.make 1 (-1);
    level = Array.make 1 0;
    reason = Array.make 1 None;
    saved_phase = Array.make 1 false;
    activity = Array.make 1 0.0;
    model = Array.make 1 (-1);
    var_inc = 1.0;
    trail = Array.make 1 0;
    trail_len = 0;
    trail_lim = [];
    qhead = 0;
    heap = Array.make 1 0;
    heap_pos = Array.make 1 (-1);
    heap_len = 0;
    failed = [];
    next_cid = 0;
    unsat = false;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    cla_inc = 1.0;
    n_learnts = 0;
    max_learnts = 4000;
    simplified_at = 0;
    tracer = None;
    counted;
  }

let set_trace s tracer = s.tracer <- tracer

let trace s ev = match s.tracer with Some f -> f ev | None -> ()

let num_vars s = s.nvars
let num_clauses s = s.nclauses
let num_learnts s = s.n_learnts
let num_conflicts s = s.conflicts
let num_decisions s = s.decisions
let num_propagations s = s.propagations

(* Process-wide effort totals, accumulated across every solver instance in
   every domain.  Per-solver counting uses plain mutable fields on the hot
   path; the deltas are flushed here (and to the metrics registry) once per
   [solve] call.  Counting is unconditional, so effort numbers are identical
   whether or not any exporter is attached. *)
let conflicts_total = Atomic.make 0
let decisions_total = Atomic.make 0
let propagations_total = Atomic.make 0

let totals () =
  (Atomic.get conflicts_total, Atomic.get decisions_total, Atomic.get propagations_total)

(* Solves and conflicts carry the ambient tenant/job attribution so a live
   daemon can expose per-tenant SAT effort; the rest stay process-global. *)
let m_solves =
  Dfm_obs.Metrics.attributed_counter ~help:"SAT solve calls" "dfm_sat_solves_total"

let m_conflicts =
  Dfm_obs.Metrics.attributed_counter ~help:"CDCL conflicts across all solvers"
    "dfm_sat_conflicts_total"

let m_decisions =
  Dfm_obs.Metrics.counter ~help:"CDCL decisions across all solvers"
    "dfm_sat_decisions_total"

let m_propagations =
  Dfm_obs.Metrics.counter ~help:"Literals propagated across all solvers"
    "dfm_sat_propagations_total"

let m_learnts_kept =
  Dfm_obs.Metrics.counter ~help:"Learnt clauses kept by reduction sweeps"
    "dfm_sat_learnts_kept_total"

let m_learnts_dropped =
  Dfm_obs.Metrics.counter ~help:"Learnt clauses dropped by reduction sweeps"
    "dfm_sat_learnts_dropped_total"

let m_learnts_subsumed =
  Dfm_obs.Metrics.counter ~help:"Learnt clauses deleted by on-the-fly subsumption"
    "dfm_sat_learnts_subsumed_total"

(* ---- variable-order heap ------------------------------------------- *)

(* Total order: higher activity first, lower index breaking ties — the same
   choice the old linear scan made, so branching stays deterministic. *)
let heap_better s v w =
  s.activity.(v) > s.activity.(w) || (s.activity.(v) = s.activity.(w) && v < w)

let heap_swap s i j =
  let v = s.heap.(i) and w = s.heap.(j) in
  s.heap.(i) <- w;
  s.heap.(j) <- v;
  s.heap_pos.(w) <- i;
  s.heap_pos.(v) <- j

let rec heap_sift_up s i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if heap_better s s.heap.(i) s.heap.(parent) then begin
      heap_swap s i parent;
      heap_sift_up s parent
    end
  end

let rec heap_sift_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_len && heap_better s s.heap.(l) s.heap.(!best) then best := l;
  if r < s.heap_len && heap_better s s.heap.(r) s.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_sift_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    if s.heap_len >= Array.length s.heap then begin
      let h = Array.make (max 2 (2 * Array.length s.heap)) 0 in
      Array.blit s.heap 0 h 0 s.heap_len;
      s.heap <- h
    end;
    s.heap.(s.heap_len) <- v;
    s.heap_pos.(v) <- s.heap_len;
    s.heap_len <- s.heap_len + 1;
    heap_sift_up s (s.heap_len - 1)
  end

let heap_pop s =
  if s.heap_len = 0 then -1
  else begin
    let v = s.heap.(0) in
    s.heap_len <- s.heap_len - 1;
    s.heap_pos.(v) <- -1;
    if s.heap_len > 0 then begin
      let w = s.heap.(s.heap_len) in
      s.heap.(0) <- w;
      s.heap_pos.(w) <- 0;
      heap_sift_down s 0
    end;
    v
  end

(* ---- variables ------------------------------------------------------ *)

let grow_arrays s n =
  let old = Array.length s.assign in
  if n > old then begin
    let nn = max n (2 * old) in
    let g a fill =
      let b = Array.make nn fill in
      Array.blit a 0 b 0 old;
      b
    in
    s.assign <- g s.assign (-1);
    s.level <- g s.level 0;
    s.reason <- g s.reason None;
    s.saved_phase <- g s.saved_phase false;
    s.activity <- g s.activity 0.0;
    s.model <- g s.model (-1);
    s.trail <- g s.trail 0;
    s.heap_pos <- g s.heap_pos (-1);
    let oldw = Array.length s.watches in
    if 2 * nn > oldw then begin
      let w = Array.make (2 * nn) [] in
      Array.blit s.watches 0 w 0 oldw;
      s.watches <- w
    end
  end

let ensure_vars s n =
  if n > s.nvars then begin
    grow_arrays s n;
    for v = s.nvars to n - 1 do
      heap_insert s v
    done;
    s.nvars <- n
  end

let new_var s =
  ensure_vars s (s.nvars + 1);
  s.nvars

let int_lit ext =
  let v = abs ext - 1 in
  if ext > 0 then 2 * v else (2 * v) + 1

let ext_of_int l =
  let v = (l / 2) + 1 in
  if l land 1 = 0 then v else -v

let lit_var l = l / 2
let lit_neg l = l lxor 1

(* Value of an internal literal: -1 unknown, 0 false, 1 true. *)
let lvalue s l =
  let a = s.assign.(lit_var l) in
  if a < 0 then -1 else if l land 1 = 0 then a else 1 - a

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    (* Uniform rescale preserves the heap order. *)
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_sift_up s s.heap_pos.(v)

let decay_activity s = s.var_inc <- s.var_inc /. 0.95

(* Focus the branching heuristic on a set of variables (1-based external
   ids) by bumping them ahead of everything else.  Used by incremental
   sessions to point the search at the clauses a new query just added:
   without it VSIDS still reflects the previous queries' hot spots and the
   solver wanders the shared CNF before touching the new cone.  Purely
   heuristic — results are unaffected, only the branching order. *)
let focus_vars s ext_vars =
  List.iter
    (fun ev ->
      let v = ev - 1 in
      if v >= 0 && v < s.nvars then bump_var s v)
    ext_vars;
  decay_activity s

let enqueue s l reason =
  let v = lit_var l in
  s.assign.(v) <- (if l land 1 = 0 then 1 else 0);
  s.level.(v) <- List.length s.trail_lim;
  s.reason.(v) <- reason;
  s.saved_phase.(v) <- l land 1 = 0;
  s.trail.(s.trail_len) <- l;
  s.trail_len <- s.trail_len + 1

(* Propagate all pending assignments; return a conflicting clause if any. *)
let propagate s =
  let conflict = ref None in
  while !conflict = None && s.qhead < s.trail_len do
    let l = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let falsified = lit_neg l in
    let ws = s.watches.(falsified) in
    s.watches.(falsified) <- [];
    let rec go = function
      | [] -> ()
      | c :: rest when c.deleted -> go rest  (* lazily unhooked *)
      | c :: rest -> (
          (* Ensure the falsified literal is at position 1. *)
          if c.lits.(0) = falsified then begin
            c.lits.(0) <- c.lits.(1);
            c.lits.(1) <- falsified
          end;
          let first = c.lits.(0) in
          if lvalue s first = 1 then begin
            (* Clause satisfied: keep watching. *)
            s.watches.(falsified) <- c :: s.watches.(falsified);
            go rest
          end
          else begin
            (* Look for a new watch. *)
            let n = Array.length c.lits in
            let found = ref false in
            let k = ref 2 in
            while (not !found) && !k < n do
              if lvalue s c.lits.(!k) <> 0 then begin
                c.lits.(1) <- c.lits.(!k);
                c.lits.(!k) <- falsified;
                s.watches.(c.lits.(1)) <- c :: s.watches.(c.lits.(1));
                found := true
              end;
              incr k
            done;
            if !found then go rest
            else begin
              (* No new watch: clause is unit or conflicting. *)
              s.watches.(falsified) <- c :: s.watches.(falsified);
              if lvalue s first = 0 then begin
                conflict := Some c;
                (* Re-add remaining watchers untouched. *)
                List.iter
                  (fun c' -> s.watches.(falsified) <- c' :: s.watches.(falsified))
                  rest
              end
              else begin
                enqueue s first (Some c);
                go rest
              end
            end
          end)
    in
    go ws
  done;
  !conflict

let decision_level s = List.length s.trail_lim

let new_decision_level s =
  s.decisions <- s.decisions + 1;
  s.trail_lim <- s.trail_len :: s.trail_lim

let backtrack s target_level =
  while decision_level s > target_level do
    match s.trail_lim with
    | [] -> assert false
    | lim :: rest ->
        for i = s.trail_len - 1 downto lim do
          let v = lit_var s.trail.(i) in
          s.assign.(v) <- -1;
          s.reason.(v) <- None;
          heap_insert s v
        done;
        s.trail_len <- lim;
        s.trail_lim <- rest
  done;
  s.qhead <- min s.qhead s.trail_len;
  s.qhead <- s.trail_len

let bump_clause s (c : clause) =
  if c.learnt then begin
    c.activity <- c.activity +. s.cla_inc;
    if c.activity > 1e20 then begin
      List.iter (fun (c' : clause) -> c'.activity <- c'.activity *. 1e-20) s.learnts;
      s.cla_inc <- s.cla_inc *. 1e-20
    end
  end

(* Literal block distance of a learnt clause: the number of distinct
   decision levels among its literals.  Low-LBD ("glue") clauses are the
   ones worth keeping across solves. *)
let compute_lbd s lits =
  let levels = Hashtbl.create 8 in
  List.iter
    (fun l ->
      let lv = s.level.(lit_var l) in
      if lv > 0 then Hashtbl.replace levels lv ())
    lits;
  max 1 (Hashtbl.length levels)

(* First-UIP conflict analysis.  Returns (learned clause lits with the
   asserting literal first, backtrack level, learnt clauses traversed while
   resolving — the candidates for on-the-fly subsumption). *)
let analyze s conflict =
  let seen = Hashtbl.create 64 in
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let idx = ref (s.trail_len - 1) in
  let cur_level = decision_level s in
  let traversed = ref [] in
  let reason_lits c skip =
    bump_clause s c;
    if c.learnt then traversed := c :: !traversed;
    Array.to_list c.lits |> List.filter (fun l -> l <> skip)
  in
  let handle_lit q =
    let v = lit_var q in
    if (not (Hashtbl.mem seen v)) && s.level.(v) > 0 then begin
      Hashtbl.add seen v ();
      bump_var s v;
      if s.level.(v) = cur_level then incr counter
      else learnt := q :: !learnt
    end
  in
  let clause = ref (reason_lits conflict (-1)) in
  let continue = ref true in
  while !continue do
    List.iter handle_lit !clause;
    (* Find the next seen literal on the trail. *)
    let rec next_seen i =
      let v = lit_var s.trail.(i) in
      if Hashtbl.mem seen v then i else next_seen (i - 1)
    in
    idx := next_seen !idx;
    p := s.trail.(!idx);
    let v = lit_var !p in
    Hashtbl.remove seen v;
    decr counter;
    idx := !idx - 1;
    if !counter = 0 then continue := false
    else begin
      match s.reason.(v) with
      | Some c -> clause := reason_lits c !p
      | None -> assert false
    end
  done;
  let asserting = lit_neg !p in
  (* Conflict-clause minimization (local self-subsumption): a literal whose
     reason clause's other literals all appear in the learned clause is
     implied by the rest and can be dropped. *)
  let in_clause = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace in_clause (lit_var l) ()) !learnt;
  let removable l =
    let v = lit_var l in
    match s.reason.(v) with
    | None -> false
    | Some c ->
        Array.for_all
          (fun q ->
            let qv = lit_var q in
            qv = v || Hashtbl.mem in_clause qv || s.level.(qv) = 0)
          c.lits
  in
  let others = List.filter (fun l -> not (removable l)) !learnt in
  (* Backtrack level = max level among the other literals. *)
  let blevel = List.fold_left (fun acc l -> max acc s.level.(lit_var l)) 0 others in
  (asserting :: others, blevel, !traversed)

(* On-the-fly subsumption: a freshly learnt clause that is a strict subset
   of a learnt clause it was resolved against makes the larger clause
   redundant.  Deleting it is sound — both are consequences of the CNF and
   the smaller one is logically stronger.  Clauses locked as the reason of
   a surviving assignment are skipped (their deletion would orphan the
   implication graph); deletion itself is the usual lazy unhook. *)
let subsume_on_the_fly s learnt_lits traversed =
  let nl = List.length learnt_lits in
  let in_learnt = Hashtbl.create 8 in
  List.iter (fun l -> Hashtbl.replace in_learnt l ()) learnt_lits;
  let is_locked c =
    let v = lit_var c.lits.(0) in
    s.assign.(v) >= 0 && s.reason.(v) == Some c
  in
  let dropped = ref 0 in
  List.iter
    (fun (c : clause) ->
      if
        (not c.deleted)
        && Array.length c.lits > nl
        && (not (is_locked c))
        && List.for_all (fun l -> Array.exists (fun q -> q = l) c.lits) learnt_lits
      then begin
        c.deleted <- true;
        s.n_learnts <- s.n_learnts - 1;
        incr dropped
      end)
    traversed;
  if !dropped > 0 then begin
    s.learnts <- List.filter (fun (c : clause) -> not c.deleted) s.learnts;
    Dfm_obs.Metrics.incr ~by:!dropped m_learnts_subsumed
  end

(* Watch lists are indexed by the watched literal itself and are visited
   by [propagate] when that literal becomes false. *)
let attach_clause s c =
  s.watches.(c.lits.(0)) <- c :: s.watches.(c.lits.(0));
  s.watches.(c.lits.(1)) <- c :: s.watches.(c.lits.(1))

let mk_clause s ~learnt ~activity ~lbd lits =
  let cid = s.next_cid in
  s.next_cid <- cid + 1;
  { cid; lits; activity; learnt; lbd; deleted = false }

let add_clause s ext_lits =
  if not s.unsat then begin
    trace s (Trace_original ext_lits);
    (* Incremental use: clauses may arrive between solves; strip any leftover
       search state first so level-0 simplification below stays sound. *)
    if decision_level s > 0 then backtrack s 0;
    List.iter (fun l -> ensure_vars s (abs l)) ext_lits;
    (* Normalize: dedup, drop tautologies. *)
    let lits = List.sort_uniq compare (List.map int_lit ext_lits) in
    let taut = List.exists (fun l -> List.mem (lit_neg l) lits) lits in
    (* Clauses are only ever added at decision level 0, so the current
       assignment is permanent: literals false now are false forever and can
       be dropped; a literal true now satisfies the clause for good. *)
    let satisfied = List.exists (fun l -> lvalue s l = 1) lits in
    let lits = List.filter (fun l -> lvalue s l <> 0) lits in
    if not (taut || satisfied) then
      match lits with
      | [] -> s.unsat <- true
      | [ l ] ->
          (* Unit at level 0: apply immediately if possible. *)
          (match lvalue s l with
          | 0 -> s.unsat <- true
          | 1 -> ()
          | _ ->
              enqueue s l None;
              if propagate s <> None then begin
                s.unsat <- true;
                (* the instance is dead: mark the queue drained so the
                   between-solve invariants keep holding *)
                s.qhead <- s.trail_len
              end)
      | _ ->
          let c = mk_clause s ~learnt:false ~activity:0.0 ~lbd:0 (Array.of_list lits) in
          s.clauses <- c :: s.clauses;
          s.nclauses <- s.nclauses + 1;
          attach_clause s c
  end

let pick_branch_var s =
  let v = ref (heap_pop s) in
  while !v >= 0 && s.assign.(!v) >= 0 do
    v := heap_pop s
  done;
  !v

(* Reduce the learnt store: keep binaries, glue clauses (LBD <= 2) and
   clauses locked as reasons; of the rest, delete the worse half by
   (LBD, activity).  Called only when the trail is at the assumption
   level. *)
let reduce_learnts s =
  let is_reason c =
    let v = lit_var c.lits.(0) in
    s.assign.(v) >= 0 && s.reason.(v) == Some c
  in
  let live = List.filter (fun (c : clause) -> not c.deleted) s.learnts in
  let keep (c : clause) = is_reason c || c.lbd <= 2 || Array.length c.lits <= 2 in
  let victims = List.filter (fun c -> not (keep c)) live in
  let sorted =
    List.sort
      (fun (a : clause) (b : clause) ->
        if a.lbd <> b.lbd then compare b.lbd a.lbd else compare a.activity b.activity)
      victims
  in
  let n = List.length sorted in
  List.iteri (fun i (c : clause) -> if i < n / 2 then c.deleted <- true) sorted;
  let kept = List.filter (fun (c : clause) -> not c.deleted) live in
  Dfm_obs.Metrics.incr ~by:(List.length kept) m_learnts_kept;
  Dfm_obs.Metrics.incr ~by:(n / 2) m_learnts_dropped;
  s.learnts <- kept;
  s.n_learnts <- List.length kept

(* Level-0 simplification (MiniSat's [simplify]): a clause satisfied by the
   permanent level-0 assignment can never constrain the search again, but
   left attached it is re-visited by [propagate] every time one of its
   watched literals is falsified — for the rest of the session's life.
   Retiring an activation group satisfies its whole guarded cone at once,
   so a long incremental session without this sweep drags an ever-growing
   tail of dead cones through every propagation.  Runs only when the trail
   has grown since the last sweep (new permanent facts).  Reasons of
   level-0 assignments are cleared first: permanent facts need no
   justification, which makes deleting their reason clauses safe. *)
let simplify s =
  if
    (not s.unsat) && decision_level s = 0
    && s.qhead = s.trail_len
    && s.trail_len > s.simplified_at
  then begin
    for i = 0 to s.trail_len - 1 do
      s.reason.(lit_var s.trail.(i)) <- None
    done;
    let satisfied (c : clause) = Array.exists (fun l -> lvalue s l = 1) c.lits in
    let sweep cs =
      let removed = ref 0 in
      let kept =
        List.filter
          (fun (c : clause) ->
            if c.deleted then false
            else if satisfied c then begin
              c.deleted <- true;
              incr removed;
              false
            end
            else true)
          cs
      in
      (kept, !removed)
    in
    let clauses, nc = sweep s.clauses in
    s.clauses <- clauses;
    s.nclauses <- s.nclauses - nc;
    let learnts, nl = sweep s.learnts in
    s.learnts <- learnts;
    s.n_learnts <- s.n_learnts - nl;
    Dfm_obs.Metrics.incr ~by:nl m_learnts_dropped;
    s.simplified_at <- s.trail_len
  end

(* Luby sequence (1-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby i =
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do incr k done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1)
  else luby (i - (1 lsl (!k - 1)) + 1)

(* Final-conflict analysis (Minisat's analyzeFinal): given the variables of
   a conflict at or below the assumption levels, walk the implication graph
   back to the subset of assumptions it depends on.  Variables forced with
   no reason clause that are not assumptions (learnt units asserted at the
   assumption level) are consequences of the CNF alone and contribute no
   dependency. *)
let analyze_final s ~assump_vars init_vars =
  let seen = Hashtbl.create 16 in
  List.iter (fun v -> if s.level.(v) > 0 then Hashtbl.replace seen v ()) init_vars;
  let failed = ref [] in
  for i = s.trail_len - 1 downto 0 do
    let l = s.trail.(i) in
    let v = lit_var l in
    if Hashtbl.mem seen v then begin
      (match s.reason.(v) with
      | None -> if Hashtbl.mem assump_vars v then failed := ext_of_int l :: !failed
      | Some c ->
          Array.iter
            (fun q ->
              let qv = lit_var q in
              if qv <> v && s.level.(qv) > 0 then Hashtbl.replace seen qv ())
            c.lits);
      Hashtbl.remove seen v
    end
  done;
  !failed

let solve_search ?(assumptions = []) ?(max_conflicts = max_int) s =
  s.failed <- [];
  if s.unsat then Unsat
  else begin
    List.iter (fun l -> ensure_vars s (abs l)) assumptions;
    let assumption_lits = Array.of_list (List.map int_lit assumptions) in
    let n_assumptions = Array.length assumption_lits in
    let assump_vars = Hashtbl.create 8 in
    Array.iter (fun l -> Hashtbl.replace assump_vars (lit_var l) ()) assumption_lits;
    backtrack s 0;
    (match propagate s with
    | Some _ ->
        s.unsat <- true;
        s.qhead <- s.trail_len (* dead instance: queue counts as drained *)
    | None -> ());
    if s.unsat then Unsat
    else begin
      simplify s;
      let result = ref Unknown in
      let done_ = ref false in
      let restart_count = ref 0 in
      let conflicts_at_start = s.conflicts in
      let conflict_budget_for_restart = ref (100 * luby 1) in
      let conflicts_this_restart = ref 0 in
      while not !done_ do
        match propagate s with
        | Some confl ->
            s.conflicts <- s.conflicts + 1;
            incr conflicts_this_restart;
            if decision_level s <= n_assumptions then begin
              (* Conflict within (or below) the assumption levels: the
                 assumptions themselves are contradicted. *)
              if decision_level s = 0 then s.unsat <- true
              else
                s.failed <-
                  analyze_final s ~assump_vars
                    (Array.to_list (Array.map lit_var confl.lits));
              result := Unsat;
              done_ := true
            end
            else if s.conflicts - conflicts_at_start >= max_conflicts then begin
              result := Unknown;
              done_ := true
            end
            else begin
              let learnt, blevel, traversed = analyze s confl in
              let lbd = compute_lbd s learnt in
              (* Every first-UIP learnt clause (minimization included) is a
                 resolvent of database clauses only: [analyze] runs strictly
                 above the assumption levels, and assumption literals —
                 having no reason clause — are never resolved away.  The
                 trace is therefore a valid derivation from the original
                 clauses alone, independent of this query's assumptions. *)
              trace s (Trace_learnt (List.map ext_of_int learnt));
              let blevel = max blevel n_assumptions in
              backtrack s blevel;
              (match learnt with
              | [ l ] when blevel = 0 -> (
                  match lvalue s l with
                  | 0 ->
                      s.unsat <- true;
                      result := Unsat;
                      done_ := true
                  | 1 -> ()
                  | _ -> enqueue s l None)
              | l0 :: _ :: _ ->
                  let arr = Array.of_list learnt in
                  (* Put a highest-level "other" literal in position 1 so the
                     watch invariant holds after backtracking. *)
                  let hi = ref 1 in
                  for k = 2 to Array.length arr - 1 do
                    if s.level.(lit_var arr.(k)) > s.level.(lit_var arr.(!hi)) then hi := k
                  done;
                  let tmp = arr.(1) in
                  arr.(1) <- arr.(!hi);
                  arr.(!hi) <- tmp;
                  let c = mk_clause s ~learnt:true ~activity:s.cla_inc ~lbd arr in
                  s.learnts <- c :: s.learnts;
                  s.n_learnts <- s.n_learnts + 1;
                  attach_clause s c;
                  enqueue s l0 (Some c);
                  subsume_on_the_fly s learnt traversed
              | [ l0 ] -> enqueue s l0 None
              | [] ->
                  s.unsat <- true;
                  result := Unsat;
                  done_ := true);
              decay_activity s;
              s.cla_inc <- s.cla_inc /. 0.999
            end
        | None ->
            if !conflicts_this_restart >= !conflict_budget_for_restart then begin
              (* Restart. *)
              conflicts_this_restart := 0;
              incr restart_count;
              conflict_budget_for_restart := 100 * luby (!restart_count + 1);
              backtrack s n_assumptions;
              if s.n_learnts > s.max_learnts then begin
                reduce_learnts s;
                s.max_learnts <- s.max_learnts + (s.max_learnts / 10)
              end
            end;
            (* Place assumptions first. *)
            if decision_level s < n_assumptions then begin
              let l = assumption_lits.(decision_level s) in
              match lvalue s l with
              | 1 -> new_decision_level s (* already true: dummy level *)
              | 0 ->
                  (* The assumption is already falsified by the others (or by
                     the CNF): report which assumptions it depends on. *)
                  s.failed <-
                    ext_of_int l :: analyze_final s ~assump_vars [ lit_var l ];
                  result := Unsat;
                  done_ := true
              | _ ->
                  new_decision_level s;
                  enqueue s l None
            end
            else begin
              let v = pick_branch_var s in
              if v < 0 then begin
                (* Total assignment: snapshot it before unwinding. *)
                Array.blit s.assign 0 s.model 0 s.nvars;
                result := Sat;
                done_ := true
              end
              else begin
                new_decision_level s;
                let l = if s.saved_phase.(v) then 2 * v else (2 * v) + 1 in
                enqueue s l None
              end
            end
      done;
      (* Fully unwind: assumptions (and all search state above level 0)
         never survive a solve.  SAT answers live on in [model]; UNSAT
         dependency in [failed]. *)
      backtrack s 0;
      !result
    end
  end

let result_to_string = function Sat -> "sat" | Unsat -> "unsat" | Unknown -> "unknown"

let solve ?assumptions ?max_conflicts s =
  Dfm_util.Failpoint.hit "sat.solve";
  let c0 = s.conflicts and d0 = s.decisions and p0 = s.propagations in
  let flush () =
    (* Verification-only instances (certificate re-checks) are uncounted:
       their effort must not reach the process totals, which feed campaign
       results and checkpoint records — certified runs stay bit-identical
       to uncertified ones. *)
    if s.counted then begin
      let dc = s.conflicts - c0 and dd = s.decisions - d0 and dp = s.propagations - p0 in
      ignore (Atomic.fetch_and_add conflicts_total dc);
      ignore (Atomic.fetch_and_add decisions_total dd);
      ignore (Atomic.fetch_and_add propagations_total dp);
      Dfm_obs.Metrics.incr_attr m_solves;
      Dfm_obs.Metrics.incr_attr ~by:dc m_conflicts;
      Dfm_obs.Metrics.incr ~by:dd m_decisions;
      Dfm_obs.Metrics.incr ~by:dp m_propagations
    end
  in
  Dfm_obs.Span.with_ "sat.solve" (fun () ->
      let r =
        Fun.protect ~finally:flush (fun () -> solve_search ?assumptions ?max_conflicts s)
      in
      if Dfm_obs.Span.enabled () then begin
        Dfm_obs.Span.note "result" (result_to_string r);
        Dfm_obs.Span.note "conflicts" (string_of_int (s.conflicts - c0))
      end;
      r)

let value s v =
  if v < 1 || v > s.nvars then invalid_arg "Solver.value";
  s.model.(v - 1) = 1

let lit_value s l = if l > 0 then value s l else not (value s (-l))

let failed_assumptions s = s.failed

let root_value s v =
  if v < 1 || v > s.nvars then invalid_arg "Solver.root_value";
  if s.assign.(v - 1) < 0 || s.level.(v - 1) > 0 then None
  else Some (s.assign.(v - 1) = 1)

let clause_exts (c : clause) = Array.to_list (Array.map ext_of_int c.lits)

let learnt_clauses s =
  List.filter_map
    (fun (c : clause) -> if c.deleted then None else Some (clause_exts c))
    s.learnts

let level0_assignments s =
  let out = ref [] in
  for i = s.trail_len - 1 downto 0 do
    let v = lit_var s.trail.(i) in
    if s.level.(v) = 0 then out := ext_of_int s.trail.(i) :: !out
  done;
  !out

(* Between-solve invariant audit; raises [Failure] with a description.
   Checks that the trail is fully unwound, that assignment/trail/level
   state is mutually consistent, and that every live clause of size >= 2
   is watched on exactly its first two literals. *)
let check_invariants s =
  let fail fmt = Printf.ksprintf failwith fmt in
  if decision_level s <> 0 then fail "check_invariants: decision level %d" (decision_level s);
  if s.qhead <> s.trail_len then
    fail "check_invariants: qhead %d != trail length %d" s.qhead s.trail_len;
  (* Trail vs assignment. *)
  let on_trail = Hashtbl.create 64 in
  for i = 0 to s.trail_len - 1 do
    let l = s.trail.(i) in
    let v = lit_var l in
    if Hashtbl.mem on_trail v then fail "check_invariants: var %d twice on trail" (v + 1);
    Hashtbl.add on_trail v ();
    if lvalue s l <> 1 then fail "check_invariants: trail literal %d not true" (ext_of_int l);
    if s.level.(v) <> 0 then
      fail "check_invariants: var %d at level %d after unwind" (v + 1) s.level.(v)
  done;
  for v = 0 to s.nvars - 1 do
    if s.assign.(v) >= 0 && not (Hashtbl.mem on_trail v) then
      fail "check_invariants: var %d assigned but not on trail" (v + 1)
  done;
  (* Watch lists: every entry watches one of the clause's first two
     literals; every live clause is watched exactly twice. *)
  let watch_count = Hashtbl.create 256 in
  Array.iteri
    (fun l ws ->
      List.iter
        (fun (c : clause) ->
          if not c.deleted then begin
            if Array.length c.lits < 2 then
              fail "check_invariants: watched clause #%d of size %d" c.cid
                (Array.length c.lits);
            if c.lits.(0) <> l && c.lits.(1) <> l then
              fail "check_invariants: clause #%d watched on literal %d not in first two"
                c.cid (ext_of_int l);
            Hashtbl.replace watch_count c.cid
              (1 + Option.value ~default:0 (Hashtbl.find_opt watch_count c.cid))
          end)
        ws)
    s.watches;
  let check_watched (c : clause) =
    if not c.deleted then begin
      let n = Option.value ~default:0 (Hashtbl.find_opt watch_count c.cid) in
      if n <> 2 then fail "check_invariants: clause #%d has %d watch entries" c.cid n
    end
  in
  List.iter check_watched s.clauses;
  List.iter check_watched s.learnts;
  (* Learnt bookkeeping. *)
  let live = List.length (List.filter (fun (c : clause) -> not c.deleted) s.learnts) in
  if live <> s.n_learnts then
    fail "check_invariants: n_learnts %d but %d live learnt clauses" s.n_learnts live

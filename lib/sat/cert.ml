(* Certificate plumbing for solver verdicts.

   Two halves, deliberately decoupled from the solver:

   - [Check] is an independent RUP proof checker.  It shares no code and no
     state with [Solver]: its own clause store, its own watch lists, its own
     assignment array, its own unit propagation.  It is dumb on purpose —
     the only inference it performs is unit propagation, so a bug in the
     solver's conflict analysis, clause minimization, subsumption or
     reduction machinery cannot also hide here.

   - [t] is a certification session gluing one solver's derivation trace
     (see [Solver.set_trace]) to one checker through a bounded proof
     buffer.  Traced steps accumulate in memory up to a cap, spill to a
     temp file past it, and are drained into the checker — each learnt
     step RUP-verified once, at admission — before any verdict check.
     A spill failure (disk full, injected [alloc.cap]) falls back to
     unbounded in-memory buffering with one logged warning: certification
     degrades in footprint, never in soundness. *)

module Metrics = Dfm_obs.Metrics

exception Check_failed of string

let m_checked =
  Metrics.attributed_counter ~help:"Certificate checks passed (verdict-level)"
    "dfm_cert_checked_total"

let m_failed =
  Metrics.attributed_counter ~help:"Certificate checks failed" "dfm_cert_failed_total"

let m_proof_bytes =
  Metrics.counter ~help:"Proof bytes traced (nominal DRUP encoding)"
    "dfm_cert_proof_bytes_total"

let m_check_ns = Metrics.histogram ~help:"Certificate check duration, ns" "dfm_cert_check_ns"

let m_spill_fallbacks =
  Metrics.counter ~help:"Proof spills that fell back to in-memory buffering"
    "dfm_cert_spill_fallbacks_total"

(* Process-wide totals, mirrored into the metrics registry.  [checked] and
   [failed] count verdict-level checks only (one per certified verdict),
   which makes them independent of sharding — per-shard proofs differ, the
   set of verdicts does not.  [check_ns] accumulates only while
   [Metrics.timing_enabled] (bench turns it on); everything else is
   unconditional. *)
let checked_total = Atomic.make 0
let failed_total = Atomic.make 0
let proof_bytes_total = Atomic.make 0
let check_ns_total = Atomic.make 0

type totals = { checked : int; failed : int; proof_bytes : int; check_ns : int }

let totals () =
  {
    checked = Atomic.get checked_total;
    failed = Atomic.get failed_total;
    proof_bytes = Atomic.get proof_bytes_total;
    check_ns = Atomic.get check_ns_total;
  }

let note_check ~ok ~ns =
  if ok then begin
    ignore (Atomic.fetch_and_add checked_total 1);
    Metrics.incr_attr m_checked
  end
  else begin
    ignore (Atomic.fetch_and_add failed_total 1);
    Metrics.incr_attr m_failed
  end;
  if Metrics.timing_enabled () then begin
    ignore (Atomic.fetch_and_add check_ns_total (Int64.to_int ns));
    Metrics.observe m_check_ns (Int64.to_int ns)
  end

let timed f =
  let t0 = Dfm_obs.Clock.now_ns () in
  let r = f () in
  (r, Int64.sub (Dfm_obs.Clock.now_ns ()) t0)

(* ---- the independent checker ---------------------------------------- *)

module Check = struct
  (* Clauses hold external DIMACS literals.  The two watched literals live
     in positions 0 and 1 and are swapped in place, the one scheme shared
     with every watched-literal implementation — but reimplemented here
     from scratch on a different literal encoding. *)
  type cls = { lits : int array }

  type t = {
    mutable assign : int array;        (* var -> -1 unknown / 0 false / 1 true *)
    mutable watches : cls list array;  (* slot of a literal -> watching clauses *)
    mutable trail : int array;
    mutable trail_len : int;           (* permanent prefix unless mid-check *)
    mutable qhead : int;
    mutable originals : cls list;      (* for model checks *)
    mutable n_clauses : int;
    mutable proved_unsat : bool;
    mutable nvars : int;
  }

  let create () =
    {
      assign = Array.make 4 (-1);
      watches = Array.make 8 [];
      trail = Array.make 4 0;
      trail_len = 0;
      qhead = 0;
      originals = [];
      n_clauses = 0;
      proved_unsat = false;
      nvars = 0;
    }

  let slot l = if l > 0 then 2 * l else (2 * -l) + 1

  let ensure t v =
    if v > t.nvars then begin
      if v >= Array.length t.assign then begin
        let n = max (v + 1) (2 * Array.length t.assign) in
        let a = Array.make n (-1) in
        Array.blit t.assign 0 a 0 (Array.length t.assign);
        t.assign <- a;
        let w = Array.make (2 * n) [] in
        Array.blit t.watches 0 w 0 (Array.length t.watches);
        t.watches <- w;
        let tr = Array.make n 0 in
        Array.blit t.trail 0 tr 0 t.trail_len;
        t.trail <- tr
      end;
      t.nvars <- v
    end

  (* -1 unknown, 0 false, 1 true. *)
  let val_of t l =
    let a = t.assign.(abs l) in
    if a < 0 then -1 else if l > 0 then a else 1 - a

  let assign_lit t l =
    t.assign.(abs l) <- (if l > 0 then 1 else 0);
    t.trail.(t.trail_len) <- l;
    t.trail_len <- t.trail_len + 1

  (* Propagate everything pending; true iff a conflict was found. *)
  let propagate t =
    let conflict = ref false in
    while (not !conflict) && t.qhead < t.trail_len do
      let l = t.trail.(t.qhead) in
      t.qhead <- t.qhead + 1;
      let falsified = -l in
      let fslot = slot falsified in
      let ws = t.watches.(fslot) in
      t.watches.(fslot) <- [];
      let rec go = function
        | [] -> ()
        | c :: rest ->
            if c.lits.(0) = falsified then begin
              c.lits.(0) <- c.lits.(1);
              c.lits.(1) <- falsified
            end;
            let first = c.lits.(0) in
            if val_of t first = 1 then begin
              t.watches.(fslot) <- c :: t.watches.(fslot);
              go rest
            end
            else begin
              let n = Array.length c.lits in
              let found = ref false in
              let k = ref 2 in
              while (not !found) && !k < n do
                if val_of t c.lits.(!k) <> 0 then begin
                  c.lits.(1) <- c.lits.(!k);
                  c.lits.(!k) <- falsified;
                  t.watches.(slot c.lits.(1)) <- c :: t.watches.(slot c.lits.(1));
                  found := true
                end;
                incr k
              done;
              if !found then go rest
              else begin
                t.watches.(fslot) <- c :: t.watches.(fslot);
                if val_of t first = 0 then begin
                  conflict := true;
                  List.iter (fun c' -> t.watches.(fslot) <- c' :: t.watches.(fslot)) rest
                end
                else begin
                  assign_lit t first;
                  go rest
                end
              end
            end
      in
      go ws
    done;
    !conflict

  let undo_to t mark =
    for i = t.trail_len - 1 downto mark do
      t.assign.(abs t.trail.(i)) <- -1
    done;
    t.trail_len <- mark;
    t.qhead <- mark

  (* Is [lits] an asymmetric-tautology (RUP) consequence of the database?
     Assert the negation of every literal, propagate, require a conflict.
     A clause already satisfied by the permanent assignment — or one that
     contains both a literal and its negation — is trivially implied. *)
  let rup_implied t lits =
    if t.proved_unsat then true
    else begin
      List.iter (fun l -> ensure t (abs l)) lits;
      let mark = t.trail_len in
      let implied = ref false in
      (try
         List.iter
           (fun l ->
             match val_of t l with
             | 1 ->
                 implied := true;
                 raise Exit
             | 0 -> ()
             | _ -> assign_lit t (-l))
           lits
       with Exit -> ());
      let implied = !implied || propagate t in
      undo_to t mark;
      implied
    end

  (* Admit a clause: attach it for propagation, folding permanent units in.
     Precondition: the trail holds only permanent assignments. *)
  let admit t lits =
    List.iter (fun l -> ensure t (abs l)) lits;
    let lits = List.sort_uniq compare lits in
    let taut = List.exists (fun l -> List.mem (-l) lits) lits in
    if not (taut || t.proved_unsat) then begin
      let free = List.filter (fun l -> val_of t l <> 0) lits in
      let satisfied = List.exists (fun l -> val_of t l = 1) free in
      if not satisfied then
        match free with
        | [] -> t.proved_unsat <- true
        | [ l ] ->
            assign_lit t l;
            if propagate t then t.proved_unsat <- true;
            t.qhead <- t.trail_len
        | w0 :: w1 :: _ ->
            (* Watch two non-false literals: order the array so they sit in
               positions 0 and 1. *)
            let rest = List.filter (fun l -> l <> w0 && l <> w1) lits in
            let c = { lits = Array.of_list (w0 :: w1 :: rest) } in
            t.n_clauses <- t.n_clauses + 1;
            t.watches.(slot w0) <- c :: t.watches.(slot w0);
            t.watches.(slot w1) <- c :: t.watches.(slot w1)
    end

  let add_original t lits =
    List.iter (fun l -> ensure t (abs l)) lits;
    t.originals <- { lits = Array.of_list lits } :: t.originals;
    admit t lits

  let add_learnt t lits =
    if rup_implied t lits then begin
      admit t lits;
      true
    end
    else false

  let proved_unsat t = t.proved_unsat

  let check_unsat t ~assumptions =
    if t.proved_unsat then true
    else begin
      List.iter (fun l -> ensure t (abs l)) assumptions;
      let mark = t.trail_len in
      let conflict = ref false in
      (try
         List.iter
           (fun l ->
             match val_of t l with
             | 0 ->
                 conflict := true;
                 raise Exit
             | 1 -> ()
             | _ -> assign_lit t l)
           assumptions
       with Exit -> ());
      let conflict = !conflict || propagate t in
      undo_to t mark;
      conflict
    end

  let check_model t ~assumptions ~value =
    let lit_true l = if l > 0 then value l else not (value (-l)) in
    List.for_all lit_true assumptions
    && List.for_all (fun c -> Array.exists lit_true c.lits) t.originals

  let num_clauses t = t.n_clauses
end

(* ---- bounded proof buffer with disk spill ---------------------------- *)

type step = Orig of int list | Learnt of int list

(* Nominal DRUP-binary footprint of a step: one tag byte, 4 bytes per
   literal, 4 for the terminator.  Deterministic by construction (spilling
   or not does not change it). *)
let nominal_bytes lits = 5 + (4 * List.length lits)

type t = {
  checker : Check.t;
  mutable mem : step list;  (* newest first *)
  mutable mem_bytes : int;
  cap : int;
  mutable spill_chan : out_channel option;
  mutable spill_path : string option;
  mutable spill_failed : bool;
  mutable steps : int;
}

let create ?(mem_cap_bytes = 32 * 1024 * 1024) () =
  {
    checker = Check.create ();
    mem = [];
    mem_bytes = 0;
    cap = max 4096 mem_cap_bytes;
    spill_chan = None;
    spill_path = None;
    spill_failed = false;
    steps = 0;
  }

let checker t = t.checker

let spill_fail t reason =
  if not t.spill_failed then begin
    t.spill_failed <- true;
    (match t.spill_chan with Some ch -> close_out_noerr ch | None -> ());
    t.spill_chan <- None;
    Metrics.incr m_spill_fallbacks;
    Dfm_obs.Log.warn
      (Printf.sprintf "cert: proof spill failed (%s); buffering proof in memory" reason)
  end

let spill_one t step =
  match t.spill_chan with
  | Some ch -> output_value ch step
  | None -> (
      match t.spill_path with
      | Some _ -> assert false
      | None ->
          let path = Filename.temp_file "dfmcert" ".proof" in
          let ch = open_out_bin path in
          t.spill_path <- Some path;
          t.spill_chan <- Some ch;
          (* Flush the in-memory prefix first so drain order is append
             order. *)
          List.iter (output_value ch) (List.rev t.mem);
          t.mem <- [];
          t.mem_bytes <- 0;
          output_value ch step)

let append t step =
  let lits = match step with Orig l | Learnt l -> l in
  let bytes = nominal_bytes lits in
  ignore (Atomic.fetch_and_add proof_bytes_total bytes);
  Metrics.incr ~by:bytes m_proof_bytes;
  t.steps <- t.steps + 1;
  (* [alloc.cap]: Raise simulates the memory cap being hit (forcing the
     spill path); Io_error/Partial_write simulate the cap AND a failing
     spill write (forcing the in-memory fallback). *)
  let forced_cap, forced_io =
    match Dfm_util.Failpoint.check "alloc.cap" with
    | Some Dfm_util.Failpoint.Raise -> (true, false)
    | Some (Dfm_util.Failpoint.Io_error | Dfm_util.Failpoint.Partial_write) -> (true, true)
    | Some (Dfm_util.Failpoint.Delay _) | None -> (false, false)
  in
  let over_cap =
    (not t.spill_failed)
    && (forced_cap || t.spill_chan <> None || t.mem_bytes + bytes > t.cap)
  in
  if over_cap then (
    try
      if forced_io then failwith "injected alloc.cap io error";
      spill_one t step
    with Sys_error e | Failure e ->
      spill_fail t e;
      t.mem <- step :: t.mem;
      t.mem_bytes <- t.mem_bytes + bytes)
  else begin
    t.mem <- step :: t.mem;
    t.mem_bytes <- t.mem_bytes + bytes
  end

let attach t solver =
  Solver.set_trace solver
    (Some
       (function
         | Solver.Trace_original lits -> append t (Orig lits)
         | Solver.Trace_learnt lits -> append t (Learnt lits)))

let note_step t = function
  | Solver.Trace_original lits -> append t (Orig lits)
  | Solver.Trace_learnt lits -> append t (Learnt lits)

let admit_step t = function
  | Orig lits -> Check.add_original t.checker lits
  | Learnt lits ->
      if not (Check.add_learnt t.checker lits) then begin
        note_check ~ok:false ~ns:0L;
        raise
          (Check_failed
             (Printf.sprintf "learnt step [%s] is not a unit-propagation consequence"
                (String.concat " " (List.map string_of_int lits))))
      end

(* Feed every buffered step to the checker, spilled prefix first.  Each
   learnt step is RUP-verified exactly once, so total admission work is
   linear in the proof, not quadratic in the number of verdict checks. *)
let drain t =
  (match t.spill_path with
  | None -> ()
  | Some path ->
      (match t.spill_chan with Some ch -> close_out_noerr ch | None -> ());
      t.spill_chan <- None;
      t.spill_path <- None;
      let steps = ref [] in
      (try
         let ic = open_in_bin path in
         (try
            while true do
              steps := (input_value ic : step) :: !steps
            done
          with End_of_file -> ());
         close_in_noerr ic
       with Sys_error e -> spill_fail t e);
      (try Sys.remove path with Sys_error _ -> ());
      List.iter (admit_step t) (List.rev !steps));
  let mem = List.rev t.mem in
  t.mem <- [];
  t.mem_bytes <- 0;
  List.iter (admit_step t) mem

let check_unsat t ~assumptions =
  let ok, ns =
    timed (fun () ->
        drain t;
        Check.check_unsat t.checker ~assumptions)
  in
  note_check ~ok ~ns;
  if not ok then
    raise
      (Check_failed
         (Printf.sprintf "UNSAT certificate does not propagate to conflict under [%s]"
            (String.concat " " (List.map string_of_int assumptions))))

let check_model t ~assumptions ~value =
  let ok, ns =
    timed (fun () ->
        drain t;
        Check.check_model t.checker ~assumptions ~value)
  in
  note_check ~ok ~ns;
  if not ok then
    raise (Check_failed "SAT model does not satisfy the original clauses and assumptions")

(* Every encoder takes an optional activation literal [?act]; when given,
   each emitted clause is guarded as [¬act ∨ C], so the whole encoding is
   active only while [act] is assumed (see [Incremental]). *)

let cl s act lits =
  match act with
  | None -> Solver.add_clause s lits
  | Some a -> Solver.add_clause s (-a :: lits)

let const_true ?act s l = cl s act [ l ]
let const_false ?act s l = cl s act [ -l ]

let equal ?act s a b =
  cl s act [ -a; b ];
  cl s act [ a; -b ]

let not_ ?act s ~out a =
  cl s act [ -out; -a ];
  cl s act [ out; a ]

let and_ ?act s ~out = function
  | [] -> const_true ?act s out
  | ins ->
      List.iter (fun i -> cl s act [ -out; i ]) ins;
      cl s act (out :: List.map (fun i -> -i) ins)

let or_ ?act s ~out = function
  | [] -> const_false ?act s out
  | ins ->
      List.iter (fun i -> cl s act [ out; -i ]) ins;
      cl s act (-out :: ins)

let xor_ ?act s ~out a b =
  cl s act [ -out; a; b ];
  cl s act [ -out; -a; -b ];
  cl s act [ out; -a; b ];
  cl s act [ out; a; -b ]

let mux ?act s ~out ~sel a b =
  (* sel = 0 -> out = a; sel = 1 -> out = b *)
  cl s act [ sel; -out; a ];
  cl s act [ sel; out; -a ];
  cl s act [ -sel; -out; b ];
  cl s act [ -sel; out; -b ]

let of_truthtable ?act s ~out ins tt =
  let n = Dfm_logic.Truthtable.arity tt in
  if Array.length ins <> n then invalid_arg "Tseitin.of_truthtable";
  (* For each assignment, add a clause forcing [out] to the function value:
     (/\ lits of the assignment) -> out = value, i.e. a clause with the
     negated assignment literals plus [out] or [-out]. *)
  for m = 0 to (1 lsl n) - 1 do
    let antecedent =
      List.init n (fun k -> if (m lsr k) land 1 = 1 then -ins.(k) else ins.(k))
    in
    let v = Dfm_logic.Truthtable.eval_index tt m in
    cl s act ((if v then out else -out) :: antecedent)
  done

(** A persistent, incremental conflict-driven clause-learning (CDCL) SAT
    solver.

    This is the decision engine of the ATPG: fault-detection miters are
    encoded to CNF and solved here.  SAT yields a test pattern; UNSAT is a
    proof that the fault is undetectable (the property the whole paper is
    about).  The implementation is a classic CDCL with two-watched-literal
    propagation, first-UIP clause learning, VSIDS-style activity-based
    branching (heap-ordered) with phase saving, and Luby restarts.

    One instance is built for {e reuse}: clauses may be added between
    solves, each {!solve} may carry its own assumption literals, and the
    state left behind is always clean — the trail is fully unwound to
    level 0, a SAT answer survives in a model snapshot, an UNSAT answer
    under assumptions records its {!failed_assumptions}.  Learnt clauses
    persist across solves (that is where incremental reuse pays) and are
    kept in check by LBD/activity reduction sweeps plus on-the-fly
    subsumption during conflict analysis.

    Literals in the public API are non-zero integers in DIMACS convention:
    [+v] is variable [v], [-v] its negation, variables start at 1. *)

type t

type result =
  | Sat
  | Unsat
  | Unknown  (** conflict budget exhausted *)

(** Clausal derivation trace, the raw material for UNSAT certificates
    (see {!Cert}).  [Trace_original] fires for every clause given to
    {!add_clause} (verbatim, pre-normalization); [Trace_learnt] fires for
    every clause the search derives — including learnt units and the empty
    clause — with the asserting literal first.  Each learnt clause is a
    resolvent of previously traced clauses, so the stream is a DRUP-style
    proof independent of any query's assumptions.  Clause deletions are
    not traced; a consumer that keeps everything stays sound. *)
type trace_event = Trace_original of int list | Trace_learnt of int list

val create : ?counted:bool -> unit -> t
(** [counted] (default [true]): whether this instance's effort flushes
    into the process-wide {!totals} and metrics.  Certificate-checking
    helpers pass [~counted:false] so verification work never perturbs
    campaign effort accounting. *)

val set_trace : t -> (trace_event -> unit) option -> unit
(** Install (or remove) the derivation tracer.  The callback runs inline
    on the search path; keep it cheap. *)

val new_var : t -> int
(** Allocate and return the next variable index. *)

val num_vars : t -> int

val ensure_vars : t -> int -> unit
(** Make sure variables [1 .. n] exist. *)

val add_clause : t -> int list -> unit
(** Add a clause (a disjunction of literals).  Adding the empty clause makes
    the instance trivially unsatisfiable.  May be called freely between
    solves; any leftover search state is unwound first. *)

val solve : ?assumptions:int list -> ?max_conflicts:int -> t -> result
(** Solve under optional assumption literals.  [max_conflicts] bounds the
    search; default is unbounded (the benches rely on full proofs).

    Assumptions are placed as pseudo-decisions on levels [1 .. n] before
    ordinary branching; a conflict at or below those levels means the CNF
    contradicts the assumptions and yields [Unsat] with
    {!failed_assumptions} filled in.  Whatever the result, the solver
    returns with its trail fully unwound to level 0 — assumptions never
    leak into later solves ({!check_invariants} audits this). *)

val value : t -> int -> bool
(** Value of a variable in the model snapshot of the last [Sat] answer.
    Only meaningful after [Sat]; unaffected by later clause additions. *)

val lit_value : t -> int -> bool
(** Value of a literal in the last model. *)

val failed_assumptions : t -> int list
(** After an [Unsat] answer of a solve {e under assumptions}: a subset of
    those assumptions whose conjunction the CNF already contradicts
    (Minisat's final conflict clause).  Empty when the CNF itself is
    unsatisfiable, and after solves that did not end [Unsat]. *)

val focus_vars : t -> int list -> unit
(** Bump the given variables (1-based ids; unknown ids ignored) to the top
    of the branching order.  Incremental sessions call this with a new
    query's private variables so the search settles the fresh cone before
    wandering the shared CNF.  Purely heuristic: answers are unaffected. *)

val root_value : t -> int -> bool option
(** The variable's fixed value at decision level 0, if any: [Some b] when
    the CNF (plus learnt facts) forces it, [None] while it is still free.
    Used by session layers to retire garbage variables safely. *)

val num_clauses : t -> int

val num_learnts : t -> int
(** Live learnt clauses currently retained. *)

val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int
(** Per-instance effort counters.  Counting is unconditional (it happens
    whether or not observability is enabled), so effort numbers never
    depend on instrumentation state. *)

val totals : unit -> int * int * int
(** Process-wide [(conflicts, decisions, propagations)] accumulated across
    every solver instance in every domain, flushed once per {!solve}.
    Deltas of these totals over a fixed query set are order-independent,
    hence identical at any [--jobs] count. *)

(** {1 Debug / test support} *)

val check_invariants : t -> unit
(** Audit the between-solve invariants: trail fully unwound (level 0,
    propagation queue drained), assignment/trail consistency, and every
    live clause of size >= 2 watched on exactly its first two literals.
    @raise Failure with a description on any violation.  Intended for the
    test suite; cost is linear in the clause database. *)

val learnt_clauses : t -> int list list
(** The live learnt clauses, as external literals.  Every one is a logical
    consequence of the clauses added so far — the property test re-proves
    this against a fresh solver. *)

val level0_assignments : t -> int list
(** Literals fixed at decision level 0 (units and their propagations), in
    assignment order. *)

(** A conflict-driven clause-learning (CDCL) SAT solver.

    This is the decision engine of the ATPG: a fault-detection miter is
    encoded to CNF and solved here.  SAT yields a test pattern; UNSAT is a
    proof that the fault is undetectable (the property the whole paper is
    about).  The implementation is a classic CDCL with two-watched-literal
    propagation, first-UIP clause learning, VSIDS-style activity-based
    branching with phase saving, and Luby restarts.

    Literals in the public API are non-zero integers in DIMACS convention:
    [+v] is variable [v], [-v] its negation, variables start at 1. *)

type t

type result =
  | Sat
  | Unsat
  | Unknown  (** conflict budget exhausted *)

val create : unit -> t

val new_var : t -> int
(** Allocate and return the next variable index. *)

val num_vars : t -> int

val ensure_vars : t -> int -> unit
(** Make sure variables [1 .. n] exist. *)

val add_clause : t -> int list -> unit
(** Add a clause (a disjunction of literals).  Adding the empty clause makes
    the instance trivially unsatisfiable. *)

val solve : ?assumptions:int list -> ?max_conflicts:int -> t -> result
(** Solve under optional assumption literals.  [max_conflicts] bounds the
    search; default is unbounded (the benches rely on full proofs). *)

val value : t -> int -> bool
(** Value of a variable in the last model.  Only meaningful after [Sat]. *)

val lit_value : t -> int -> bool
(** Value of a literal in the last model. *)

val num_clauses : t -> int

val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int
(** Per-instance effort counters.  Counting is unconditional (it happens
    whether or not observability is enabled), so effort numbers never
    depend on instrumentation state. *)

val totals : unit -> int * int * int
(** Process-wide [(conflicts, decisions, propagations)] accumulated across
    every solver instance in every domain, flushed once per {!solve}.
    Deltas of these totals over a fixed query set are order-independent,
    hence identical at any [--jobs] count. *)

(** Certificates for solver verdicts, checked by an independent verifier.

    The solver ({!Solver.set_trace}) reports every clause it admits —
    originals verbatim and learnt clauses as they are derived — forming a
    DRUP-style derivation.  A certification session ({!t}) buffers that
    trace (bounded in memory, spilling to a temp file past the cap, falling
    back to unbounded memory with one warning if the spill fails) and
    replays it into {!Check}, a deliberately dumb checker that shares no
    code or state with the solver: its only inference is unit propagation.
    Each learnt step is verified once at admission, so total checking work
    is linear in the proof regardless of how many verdicts are checked.

    Verdict checks raise {!Check_failed}; a failure means the solver, the
    trace, or the certificate storage is unsound and the run must not
    publish the verdict. *)

exception Check_failed of string

(** The independent RUP checker.  Usable standalone (the adversarial
    mutation tests drive it directly); normal engine code goes through the
    session API below. *)
module Check : sig
  type t

  val create : unit -> t

  val add_original : t -> int list -> unit
  (** Admit an axiom clause (trusted; it defines the formula). *)

  val add_learnt : t -> int list -> bool
  (** Verify that the clause is a unit-propagation (RUP) consequence of
      everything admitted so far, then admit it.  [false] = not implied;
      the clause is rejected and not admitted. *)

  val proved_unsat : t -> bool
  (** The admitted clauses propagate to a conflict unconditionally. *)

  val check_unsat : t -> assumptions:int list -> bool
  (** Do the admitted clauses plus the assumption units propagate to a
      conflict?  This is the verdict-level UNSAT check. *)

  val check_model : t -> assumptions:int list -> value:(int -> bool) -> bool
  (** Does the assignment satisfy every admitted {e original} clause and
      every assumption?  (Learnt clauses are consequences; they follow.) *)

  val num_clauses : t -> int
end

(** {1 Certification sessions} *)

type t

val create : ?mem_cap_bytes:int -> unit -> t
(** A fresh session: empty checker, empty proof buffer.  [mem_cap_bytes]
    bounds the in-memory proof buffer (default 32 MiB nominal) before
    spilling to a temp file.  Failpoint [alloc.cap] forces the cap
    (action [raise]) or the cap plus a failing spill (action [io]). *)

val attach : t -> Solver.t -> unit
(** Install this session as [solver]'s derivation tracer.  One session
    mirrors one solver instance. *)

val note_step : t -> Solver.trace_event -> unit
(** Feed one trace event by hand (tests, replaying stored traces). *)

val checker : t -> Check.t

val check_unsat : t -> assumptions:int list -> unit
(** Drain the buffered trace into the checker (RUP-verifying every learnt
    step) and verify that the assumptions propagate to a conflict.
    @raise Check_failed if any step or the final check fails. *)

val check_model : t -> assumptions:int list -> value:(int -> bool) -> unit
(** Drain, then verify the model against the original clauses and the
    assumptions.  @raise Check_failed on mismatch. *)

(** {1 Accounting} *)

type totals = { checked : int; failed : int; proof_bytes : int; check_ns : int }

val totals : unit -> totals
(** Process-wide counters.  [checked]/[failed] count verdict-level checks
    (shard-independent: one per certified verdict, so identical at any
    [--jobs]); [proof_bytes] is the nominal traced proof size (shard- and
    session-dependent — keep it out of deterministic reports);
    [check_ns] accumulates only while [Metrics.timing_enabled]. *)

val note_check : ok:bool -> ns:int64 -> unit
(** Record an externally performed certificate check (witness
    resimulation, cache digest validation, equivalence certificates) in
    the same counters and metrics. *)

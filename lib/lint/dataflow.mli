(** Tier-B sound dataflow analysis: three-valued constant propagation plus
    fault-cone observability, used to prove faults [Undetectable] before any
    random simulation or SAT query runs.

    Soundness contract (the invariant {!Dfm_atpg.Atpg.classify}'s
    [?static_filter] and the qcheck differential suite rely on):
    {!prove_undetectable} returns [true] only for faults whose detection
    query in {!Dfm_atpg.Encode} is unsatisfiable — a filtered classification
    is bit-identical to an unfiltered one (statuses and all counts except
    [sat_queries], which can only shrink).  The analysis may return [false]
    for undetectable faults (it is an under-approximation), never [true]
    for a detectable one.

    Two facts are combined per fault:

    - {b activation}: constants proven by three-valued propagation
      (constants originate at [Const] drivers and at gates whose exact
      function degenerates) can contradict the fault's activation condition
      — a stuck-at-[v] on a net proven constant [v], a transition on any
      proven-constant net, a bridge between two nets proven equal, an
      internal (UDFM) fault whose every activation minterm is unreachable.
      On top of the three-valued pass the analysis keeps, per net, the
      {e exact} function over the free root variables (primary inputs and
      flip-flop Q nets) while its support stays within 6 roots.  Because the
      roots are free in the SAT encoding, an exhaustive sweep over their
      assignments is an exact satisfiability oracle for any constraint set
      that fits the support bound: it sees through decoders and priority
      encoders and proves one-hot (mutually exclusive) control lines can
      never be high together — the mechanism behind the paper's clusters of
      undetectable cell-internal faults;

    - {b observability}: the fault's difference cone is walked forward from
      its seed nets; a gate propagates the difference only when its cell
      function, restricted by proven-constant {e side} inputs that are not
      themselves in the difference cone, still depends on at least one
      cone input.  If the cone reaches no PO and no flip-flop D net the
      fault cannot be observed.

    The side-input restriction is the subtle part: a proven-constant net
    {e inside} the difference cone carries the faulty value, not its
    constant, so it must never be used to block propagation — when a net
    joins the cone, every gate reading it is re-evaluated without that
    restriction.  (Counterexample otherwise: [g = AND(BUF s, s)] with [s]
    proven 0 — stuck-at-1 on [s] flips both [g] inputs, so [g] propagates
    even though each pin is blocked by the other's "constant".) *)

type value = V0 | V1 | VX

type t

val analyze : Dfm_netlist.Netlist.t -> t
(** One topological pass of three-valued constant propagation plus a reverse
    pass of structural observability.  The netlist must be valid (as after
    {!Dfm_netlist.Netlist.Builder.finish}); @raise Failure on a
    combinational cycle. *)

val value : t -> int -> value
(** Proven three-valued value of a net. *)

val proven_constants : t -> (int * bool) list
(** Nets proven constant, in net-id order. *)

val observable : t -> int -> bool
(** Whether the net is itself a PO or flip-flop D net. *)

val reaches_observable : t -> int -> bool
(** Whether the net has a structural combinational path to an observable
    net (ignoring sensitization — an over-approximation of detectability,
    used by the Tier-A rule L010). *)

val prove_undetectable : t -> Dfm_faults.Fault.t -> bool
(** Sound static undetectability proof for one fault (see above).  The
    fault must refer to the analyzed netlist. *)

(** Tier-A structural lint over {!Dfm_netlist.Netlist.t}.

    [Netlist.t] is a transparent record, so structurally invalid netlists
    (multi-driven nets, dangling references, combinational loops) are
    representable even though {!Dfm_netlist.Netlist.Builder} never produces
    them — error-severity rules catch exactly those.  Warning-severity rules
    flag suspicious-but-valid shapes (dead logic, floating inputs, extreme
    fanout); info-severity rules surface Tier-B facts (proven-constant
    nets, see {!Dataflow}) that indicate redundant logic.

    Every finding carries a stable rule id ([L0xx]), a severity, the
    offending net/gate, a message and a fix hint.  Reports render as text or
    JSON and can be filtered through a baseline (suppression) file, giving
    CI-friendly "no new findings" checks.

    Rule table (also in README.md):
    - L001 Error   combinational loop (Tarjan SCC over combinational gates)
    - L002 Error   multi-driven net / driver back-pointer mismatch
    - L003 Error   broken structural reference (out-of-range ids, stale sinks)
    - L004 Error   unknown cell (instance cell absent from the library)
    - L005 Error   pin-count mismatch between instance and cell arity
    - L006 Warning dangling combinational gate output (no sinks, not a PO)
    - L007 Warning floating primary input (no sinks, not a PO)
    - L008 Warning constant-fed gate (foldable logic)
    - L009 Warning fanout above the configured limit
    - L010 Warning unobservable gate output (sinks exist, but no structural
                   path to any PO or flip-flop D pin)
    - L011 Info    net proven constant by three-valued propagation even
                   though its driver is a gate (redundant logic) *)

type severity = Error | Warning | Info

type subject = Net of int | Gate of int | Whole_netlist

type finding = {
  rule : string;  (** stable id, e.g. ["L006"] *)
  severity : severity;
  subject : subject;
  subject_name : string;
      (** resolved net/gate name (or the netlist name for {!Whole_netlist});
          this is what baseline entries match on *)
  message : string;
  hint : string;  (** suggested fix *)
}

type report = { netlist_name : string; findings : finding list }

type config = {
  fanout_limit : int;  (** L009 threshold (default 16) *)
  rules : string list option;
      (** restrict checking to these rule ids; [None] means all rules *)
}

val default_config : config

val all_rules : (string * severity * string) list
(** [(id, severity, one-line meaning)] for every rule, in id order. *)

val check : ?config:config -> Dfm_netlist.Netlist.t -> report
(** Run every enabled rule.  Never raises: when error-severity structural
    findings make the netlist graph unsafe to traverse (or cyclic), the
    graph-based rules (L001 excepted) and the Tier-B-backed rules are
    skipped for that run.  Each call bumps the [dfm_lint_findings_total]
    metrics counter by the number of findings. *)

val errors : report -> finding list
val warnings : report -> finding list

val rule_counts : report -> (string * int) list
(** Findings per rule id, sorted by id; rules without findings are absent. *)

val severity_name : severity -> string

(** {1 Reporters} *)

val pp_text : Format.formatter -> report -> unit
(** One line per finding: [severity rule subject: message (hint: ...)]. *)

val to_json : report -> string
(** Stable machine-readable rendering:
    [{"netlist":...,"findings":[{"rule":...,"severity":...,"subject":...,
    "name":...,"message":...,"hint":...},...]}]. *)

(** {1 Baseline / suppression} *)

type baseline

val empty_baseline : baseline

val baseline_of_string : string -> baseline
(** One entry per line: [RULE subject-kind:subject-name] (e.g.
    [L006 gate:g12]); blank lines and [#] comments are ignored.
    @raise Failure on a malformed line. *)

val load_baseline : string -> baseline
(** Read a baseline file. @raise Sys_error when unreadable. *)

val baseline_entry : finding -> string
(** The baseline line that would suppress this finding. *)

val baseline_of_report : report -> string
(** Serialize every finding of the report as a baseline file (with a
    header comment) — the "accept current state" workflow. *)

val suppress : baseline -> report -> report * finding list
(** [(kept, suppressed)]: partitions the report's findings by baseline
    membership; [kept] is the report with only unsuppressed findings. *)

(** {1 Candidate gating (used by the resynthesis loop)} *)

val regressions :
  before:report -> after:report -> (string * int * int) list
(** Rules whose finding count strictly increased from [before] to [after],
    as [(rule, count_before, count_after)] — the "introduces new Tier-A
    violations" test {!Dfm_core.Resynth} rejects candidates with. *)

module N = Dfm_netlist.Netlist
module Cell = Dfm_netlist.Cell
module Library = Dfm_netlist.Library
module Metrics = Dfm_obs.Metrics

let m_findings =
  Metrics.counter ~help:"Lint findings reported" "dfm_lint_findings_total"

type severity = Error | Warning | Info

type subject = Net of int | Gate of int | Whole_netlist

type finding = {
  rule : string;
  severity : severity;
  subject : subject;
  subject_name : string;
  message : string;
  hint : string;
}

type report = { netlist_name : string; findings : finding list }

type config = { fanout_limit : int; rules : string list option }

let default_config = { fanout_limit = 16; rules = None }

let all_rules =
  [
    ("L001", Error, "combinational loop");
    ("L002", Error, "multi-driven net or driver mismatch");
    ("L003", Error, "broken structural reference");
    ("L004", Error, "unknown cell");
    ("L005", Error, "pin-count mismatch");
    ("L006", Warning, "dangling combinational gate output");
    ("L007", Warning, "floating primary input");
    ("L008", Warning, "constant-fed gate");
    ("L009", Warning, "fanout above limit");
    ("L010", Warning, "unobservable gate output");
    ("L011", Info, "gate-driven net proven constant");
  ]

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let rule_order f = f.rule

let subject_id = function Net n -> n | Gate g -> g | Whole_netlist -> -1

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)
(* ------------------------------------------------------------------ *)

let net_name nl n =
  if n >= 0 && n < N.num_nets nl then (N.net nl n).N.net_name
  else Printf.sprintf "net#%d" n

let gate_name nl g =
  if g >= 0 && g < N.num_gates nl then (N.gate nl g).N.gate_name
  else Printf.sprintf "gate#%d" g

(* Iterative Tarjan over the combinational gate graph (edge a -> b when a's
   output net feeds a pin of b).  Returns the SCCs that actually contain a
   cycle: size >= 2, or a single gate reading its own output. *)
let comb_sccs nl =
  let ng = N.num_gates nl in
  let comb g = not (N.gate nl g).N.cell.Cell.is_seq in
  let succs g =
    (N.net nl (N.gate nl g).N.fanout).N.sinks
    |> List.filter_map (fun (s, _) -> if comb s then Some s else None)
    |> List.sort_uniq compare
  in
  let index = Array.make ng (-1) in
  let lowlink = Array.make ng 0 in
  let on_stack = Array.make ng false in
  let stack = ref [] in
  let next_index = ref 0 in
  let sccs = ref [] in
  let visit root =
    (* Explicit DFS stack of (gate, remaining successors). *)
    let frames = ref [ (root, ref (succs root)) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !frames <> [] do
      match !frames with
      | [] -> ()
      | (g, rest) :: tail -> (
          match !rest with
          | s :: more ->
              rest := more;
              if index.(s) = -1 then begin
                index.(s) <- !next_index;
                lowlink.(s) <- !next_index;
                incr next_index;
                stack := s :: !stack;
                on_stack.(s) <- true;
                frames := (s, ref (succs s)) :: !frames
              end
              else if on_stack.(s) then lowlink.(g) <- min lowlink.(g) index.(s)
          | [] ->
              frames := tail;
              (match tail with
              | (p, _) :: _ -> lowlink.(p) <- min lowlink.(p) lowlink.(g)
              | [] -> ());
              if lowlink.(g) = index.(g) then begin
                let scc = ref [] in
                let stop = ref false in
                while not !stop do
                  match !stack with
                  | [] -> stop := true
                  | v :: rest_stack ->
                      stack := rest_stack;
                      on_stack.(v) <- false;
                      scc := v :: !scc;
                      if v = g then stop := true
                done;
                let members = List.sort compare !scc in
                let cyclic =
                  match members with
                  | [ v ] -> List.mem v (succs v)
                  | _ :: _ :: _ -> true
                  | [] -> false
                in
                if cyclic then sccs := members :: !sccs
              end)
    done
  in
  for g = 0 to ng - 1 do
    if comb g && index.(g) = -1 then visit g
  done;
  List.rev !sccs

let check ?(config = default_config) nl =
  let enabled r = match config.rules with None -> true | Some l -> List.mem r l in
  let acc = ref [] in
  let structurally_broken = ref false in
  let add ?(breaks = false) rule severity subject message hint =
    if breaks then structurally_broken := true;
    if enabled rule then
      let subject_name =
        match subject with
        | Net n -> net_name nl n
        | Gate g -> gate_name nl g
        | Whole_netlist -> nl.N.name
      in
      acc := { rule; severity; subject; subject_name; message; hint } :: !acc
  in
  let nn = N.num_nets nl and ng = N.num_gates nl in
  let net_ok n = n >= 0 && n < nn in
  let gate_ok g = g >= 0 && g < ng in
  (* L003/L005: per-gate reference and arity integrity. *)
  Array.iteri
    (fun i (g : N.gate) ->
      if g.N.gate_id <> i then
        add ~breaks:true "L003" Error (Gate i)
          (Printf.sprintf "gate id %d stored at slot %d" g.N.gate_id i)
          "renumber gates to match their array slots";
      Array.iteri
        (fun pin fn ->
          if not (net_ok fn) then
            add ~breaks:true "L003" Error (Gate i)
              (Printf.sprintf "pin %d references nonexistent net %d" pin fn)
              "connect the pin to a declared net")
        g.N.fanins;
      if not (net_ok g.N.fanout) then
        add ~breaks:true "L003" Error (Gate i)
          (Printf.sprintf "output references nonexistent net %d" g.N.fanout)
          "drive a declared net";
      (match Library.find_opt nl.N.library g.N.cell.Cell.name with
      | None ->
          add "L004" Error (Gate i)
            (Printf.sprintf "cell %s is not in library" g.N.cell.Cell.name)
            "use a library cell or extend the library"
      | Some lc ->
          if not (Dfm_logic.Truthtable.equal lc.Cell.func g.N.cell.Cell.func) then
            add "L004" Error (Gate i)
              (Printf.sprintf "cell %s disagrees with its library definition"
                 g.N.cell.Cell.name)
              "rebuild the instance from the library cell");
      if Array.length g.N.fanins <> Cell.arity g.N.cell then
        add ~breaks:true "L005" Error (Gate i)
          (Printf.sprintf "%d pins connected but cell %s has arity %d"
             (Array.length g.N.fanins) g.N.cell.Cell.name (Cell.arity g.N.cell))
          "connect exactly one net per cell input pin")
    nl.N.gates;
  (* L002: driver consistency, seen from both directions. *)
  let claimed = Array.make (max 1 nn) [] in
  Array.iter
    (fun (g : N.gate) ->
      if net_ok g.N.fanout then claimed.(g.N.fanout) <- g.N.gate_id :: claimed.(g.N.fanout))
    nl.N.gates;
  Array.iteri
    (fun i (n : N.net) ->
      if n.N.net_id <> i then
        add ~breaks:true "L003" Error (Net i)
          (Printf.sprintf "net id %d stored at slot %d" n.N.net_id i)
          "renumber nets to match their array slots";
      let claims = List.rev claimed.(i) in
      (match n.N.driver with
      | N.Gate_out g ->
          if not (gate_ok g) then
            add ~breaks:true "L003" Error (Net i)
              (Printf.sprintf "driven by nonexistent gate %d" g)
              "point the driver at an existing gate"
          else if (N.gate nl g).N.fanout <> i then
            add ~breaks:true "L002" Error (Net i)
              (Printf.sprintf "driver gate %s does not drive it back" (gate_name nl g))
              "make net driver and gate fanout agree";
          if List.length claims > 1 then
            add ~breaks:true "L002" Error (Net i)
              (Printf.sprintf "%d gates drive it" (List.length claims))
              "give each driving gate its own output net"
      | N.Pi k ->
          if not (k >= 0 && k < Array.length nl.N.pis && snd nl.N.pis.(k) = i) then
            add ~breaks:true "L003" Error (Net i)
              (Printf.sprintf "PI back-pointer %d does not resolve to it" k)
              "fix the pis table entry";
          if claims <> [] then
            add ~breaks:true "L002" Error (Net i) "both a PI and a gate output"
              "give the gate its own output net"
      | N.Const _ ->
          if claims <> [] then
            add ~breaks:true "L002" Error (Net i) "both a constant and a gate output"
              "give the gate its own output net");
      List.iter
        (fun (g, pin) ->
          let ok =
            gate_ok g
            && pin >= 0
            && pin < Array.length (N.gate nl g).N.fanins
            && (N.gate nl g).N.fanins.(pin) = i
          in
          if not ok then
            add ~breaks:true "L003" Error (Net i)
              (Printf.sprintf "stale sink entry (gate %d, pin %d)" g pin)
              "recompute sink lists from gate fanins")
        n.N.sinks)
    nl.N.nets;
  (* Sinks recorded on gate fanins but missing from the net's list. *)
  if not !structurally_broken then
    Array.iter
      (fun (g : N.gate) ->
        Array.iteri
          (fun pin fn ->
            if not (List.mem (g.N.gate_id, pin) (N.net nl fn).N.sinks) then
              add ~breaks:true "L003" Error (Net fn)
                (Printf.sprintf "missing sink entry (gate %s, pin %d)" g.N.gate_name pin)
                "recompute sink lists from gate fanins")
          g.N.fanins)
      nl.N.gates;
  Array.iter
    (fun (pname, n) ->
      if not (net_ok n) then
        add ~breaks:true "L003" Error Whole_netlist
          (Printf.sprintf "PO %s references nonexistent net %d" pname n)
          "point the output at a declared net")
    nl.N.pos;
  (* Graph-based rules only run on a structurally sound netlist: with broken
     references or ids the traversals below would read garbage. *)
  let cyclic = ref false in
  if not !structurally_broken then begin
    List.iter
      (fun scc ->
        cyclic := true;
        let names = List.map (gate_name nl) scc in
        let shown =
          match names with
          | a :: b :: c :: _ :: _ -> Printf.sprintf "%s, %s, %s, ..." a b c
          | _ -> String.concat ", " names
        in
        add "L001" Error
          (Gate (List.hd scc))
          (Printf.sprintf "combinational loop through %d gate(s): %s"
             (List.length scc) shown)
          "break the loop with a flip-flop or restructure the logic")
      (comb_sccs nl);
    let po_nets = Array.fold_left (fun s (_, n) -> n :: s) [] nl.N.pos in
    let is_po n = List.mem n po_nets in
    Array.iter
      (fun (g : N.gate) ->
        if
          (not g.N.cell.Cell.is_seq)
          && (N.net nl g.N.fanout).N.sinks = []
          && not (is_po g.N.fanout)
        then
          add "L006" Warning (Gate g.N.gate_id)
            (Printf.sprintf "output %s drives nothing" (net_name nl g.N.fanout))
            "remove the dead gate or connect its output";
        if Array.exists (fun fn -> match (N.net nl fn).N.driver with
              | N.Const _ -> true
              | N.Pi _ | N.Gate_out _ -> false)
            g.N.fanins
        then
          add "L008" Warning (Gate g.N.gate_id) "reads a constant net"
            "fold the constant into a simpler cell")
      nl.N.gates;
    Array.iter
      (fun (pname, n) ->
        if (N.net nl n).N.sinks = [] && not (is_po n) then
          add "L007" Warning (Net n)
            (Printf.sprintf "primary input %s is read by nothing" pname)
            "remove the unused input or wire it up")
      nl.N.pis;
    Array.iter
      (fun (n : N.net) ->
        let fo = List.length n.N.sinks in
        if fo > config.fanout_limit then
          add "L009" Warning (Net n.N.net_id)
            (Printf.sprintf "fanout %d exceeds limit %d" fo config.fanout_limit)
            "buffer the net or duplicate its driver")
      nl.N.nets;
    (* Tier-B-backed rules: need an acyclic, well-formed netlist. *)
    if not !cyclic then begin
      let df = Dataflow.analyze nl in
      Array.iter
        (fun (g : N.gate) ->
          if
            (not g.N.cell.Cell.is_seq)
            && (N.net nl g.N.fanout).N.sinks <> []
            && not (Dataflow.reaches_observable df g.N.fanout)
          then
            add "L010" Warning (Gate g.N.gate_id)
              (Printf.sprintf "output %s never reaches a PO or flip-flop D pin"
                 (net_name nl g.N.fanout))
              "remove the unobservable cone or observe it")
        nl.N.gates;
      List.iter
        (fun (n, v) ->
          match (N.net nl n).N.driver with
          | N.Gate_out _ ->
              add "L011" Info (Net n)
                (Printf.sprintf "proven constant %d by three-valued propagation"
                   (if v then 1 else 0))
                "replace the driving cone with a constant"
          | N.Pi _ | N.Const _ -> ())
        (Dataflow.proven_constants df)
    end
  end;
  let findings =
    List.sort
      (fun a b ->
        let c = compare (rule_order a) (rule_order b) in
        if c <> 0 then c else compare (subject_id a.subject) (subject_id b.subject))
      !acc
  in
  Metrics.incr ~by:(List.length findings) m_findings;
  { netlist_name = nl.N.name; findings }

let errors r = List.filter (fun f -> f.severity = Error) r.findings
let warnings r = List.filter (fun f -> f.severity = Warning) r.findings

let rule_counts r =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun f -> Hashtbl.replace tbl f.rule (1 + Option.value ~default:0 (Hashtbl.find_opt tbl f.rule)))
    r.findings;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ------------------------------------------------------------------ *)
(* Reporters                                                           *)
(* ------------------------------------------------------------------ *)

let subject_kind = function Net _ -> "net" | Gate _ -> "gate" | Whole_netlist -> "netlist"

let pp_text ppf r =
  List.iter
    (fun f ->
      Format.fprintf ppf "%-7s %s %s:%s: %s (hint: %s)@." (severity_name f.severity)
        f.rule (subject_kind f.subject) f.subject_name f.message f.hint)
    r.findings;
  let ne = List.length (errors r) and nw = List.length (warnings r) in
  Format.fprintf ppf "%s: %d finding(s), %d error(s), %d warning(s)@." r.netlist_name
    (List.length r.findings) ne nw

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "{\"netlist\":\"%s\",\"findings\":[" (json_escape r.netlist_name));
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"rule\":\"%s\",\"severity\":\"%s\",\"subject\":\"%s\",\"name\":\"%s\",\"message\":\"%s\",\"hint\":\"%s\"}"
           f.rule (severity_name f.severity) (subject_kind f.subject)
           (json_escape f.subject_name) (json_escape f.message) (json_escape f.hint)))
    r.findings;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Baseline                                                            *)
(* ------------------------------------------------------------------ *)

module StringSet = Set.Make (String)

type baseline = StringSet.t

let empty_baseline = StringSet.empty

let baseline_entry f =
  Printf.sprintf "%s %s:%s" f.rule (subject_kind f.subject) f.subject_name

let baseline_of_string text =
  String.split_on_char '\n' text
  |> List.fold_left
       (fun acc raw ->
         let line = String.trim raw in
         if line = "" || line.[0] = '#' then acc
         else
           match String.index_opt line ' ' with
           | Some _ -> StringSet.add line acc
           | None -> failwith (Printf.sprintf "Lint.baseline: malformed line %S" line))
       StringSet.empty

let load_baseline path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  baseline_of_string text

let baseline_of_report r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "# lint baseline for %s\n" r.netlist_name);
  List.iter (fun f -> Buffer.add_string buf (baseline_entry f ^ "\n")) r.findings;
  Buffer.contents buf

let suppress bl r =
  let kept, dropped =
    List.partition (fun f -> not (StringSet.mem (baseline_entry f) bl)) r.findings
  in
  ({ r with findings = kept }, dropped)

let regressions ~before ~after =
  let b = rule_counts before in
  rule_counts after
  |> List.filter_map (fun (rule, na) ->
         let nb = Option.value ~default:0 (List.assoc_opt rule b) in
         if na > nb then Some (rule, nb, na) else None)

module N = Dfm_netlist.Netlist
module Cell = Dfm_netlist.Cell
module F = Dfm_faults.Fault
module Tt = Dfm_logic.Truthtable

type value = V0 | V1 | VX

(* Exact function of a net over a small set of free root variables (primary
   and pseudo-primary input nets).  [bits] bit [i] is the net's value under
   the assignment where root [sup.(j)] takes bit [j] of [i].  Only kept while
   the support stays within [max_support] roots (<= 64 rows), which is enough
   to see through decoder/priority-encoder style control logic — the source
   of the correlated (one-hot, mutually exclusive) signals that plain
   three-valued propagation cannot reason about. *)
type fn = { sup : int array; bits : int64 }

let max_support = 6

type t = {
  nl : N.t;
  values : value array;        (* per net: proven three-valued value *)
  funcs : fn option array;     (* per net: exact small-support function *)
  observable : bool array;     (* per net: PO or flip-flop D net *)
  reaches_obs : bool array;    (* per net: structural comb path to observable *)
  has_consts : bool;
}

let fn_const b = { sup = [||]; bits = (if b then 1L else 0L) }
let fn_var n = { sup = [| n |]; bits = 2L }

(* Evaluate [f] under row [row] of an assignment over [union] (a sorted
   superset of [f.sup]). *)
let fn_eval_row f union row =
  let i = ref 0 in
  Array.iteri
    (fun j r ->
      let pos = ref (-1) in
      Array.iteri (fun p u -> if u = r then pos := p) union;
      if (row lsr !pos) land 1 = 1 then i := !i lor (1 lsl j))
    f.sup;
  Int64.to_int (Int64.logand (Int64.shift_right_logical f.bits !i) 1L) = 1

let union_support fns =
  let sup =
    List.sort_uniq compare
      (List.concat_map (fun f -> Array.to_list f.sup) fns)
  in
  if List.length sup > max_support then None else Some (Array.of_list sup)

(* Can the conjunction of [(f, b)] constraints hold under some root
   assignment?  [true] means "maybe" (no proof); [false] is a proof of
   unsatisfiability — the roots are free in the SAT encoding, so an
   exhaustive sweep over their assignments is exact. *)
let constraints_satisfiable cs =
  match union_support (List.map fst cs) with
  | None -> true
  | Some union ->
      let rows = 1 lsl Array.length union in
      let sat = ref false in
      for row = 0 to rows - 1 do
        if (not !sat) && List.for_all (fun (f, b) -> fn_eval_row f union row = b) cs
        then sat := true
      done;
      !sat

let value t n = t.values.(n)
let observable t n = t.observable.(n)
let reaches_observable t n = t.reaches_obs.(n)

let proven_constants t =
  let acc = ref [] in
  Array.iteri
    (fun n v -> match v with V0 -> acc := (n, false) :: !acc | V1 -> acc := (n, true) :: !acc | VX -> ())
    t.values;
  List.rev !acc

(* Restrict a cell function by the proven-constant fanins for which [fix]
   holds; the fixed inputs become vacuous (arity is unchanged). *)
let restrict values (g : N.gate) ~fix =
  let f = ref g.N.cell.Cell.func in
  Array.iteri
    (fun k fn ->
      if fix k fn then
        match values.(fn) with
        | V0 -> f := Tt.cofactor !f k false
        | V1 -> f := Tt.cofactor !f k true
        | VX -> ())
    g.N.fanins;
  !f

let analyze nl =
  let nn = N.num_nets nl in
  let values = Array.make nn VX in
  let funcs = Array.make nn None in
  Array.iter
    (fun (n : N.net) ->
      match n.N.driver with
      | N.Const b ->
          values.(n.N.net_id) <- (if b then V1 else V0);
          funcs.(n.N.net_id) <- Some (fn_const b)
      | N.Pi _ | N.Gate_out _ -> ())
    nl.N.nets;
  List.iter
    (fun (_, n) -> if funcs.(n) = None then funcs.(n) <- Some (fn_var n))
    (N.input_nets nl);
  let fanin_fn fn_net =
    match values.(fn_net) with
    | V0 -> Some (fn_const false)
    | V1 -> Some (fn_const true)
    | VX -> funcs.(fn_net)
  in
  let compose (g : N.gate) =
    let fns = Array.map fanin_fn g.N.fanins in
    if Array.exists (fun o -> o = None) fns then None
    else
      let fns = Array.map Option.get fns in
      match union_support (Array.to_list fns) with
      | None -> None
      | Some union ->
          let rows = 1 lsl Array.length union in
          let bits = ref 0L in
          for row = 0 to rows - 1 do
            let m = ref 0 in
            Array.iteri
              (fun pin f -> if fn_eval_row f union row then m := !m lor (1 lsl pin))
              fns;
            if Tt.eval_index g.N.cell.Cell.func !m then
              bits := Int64.logor !bits (Int64.shift_left 1L row)
          done;
          Some { sup = union; bits = !bits }
  in
  let order = N.topo_order nl in
  Array.iter
    (fun gid ->
      let g = N.gate nl gid in
      (match compose g with
      | Some f ->
          let rows = 1 lsl Array.length f.sup in
          let full = if rows = 64 then Int64.minus_one else Int64.sub (Int64.shift_left 1L rows) 1L in
          if Int64.equal f.bits 0L then begin
            values.(g.N.fanout) <- V0;
            funcs.(g.N.fanout) <- Some (fn_const false)
          end
          else if Int64.equal f.bits full then begin
            values.(g.N.fanout) <- V1;
            funcs.(g.N.fanout) <- Some (fn_const true)
          end
          else funcs.(g.N.fanout) <- Some f
      | None -> ());
      if values.(g.N.fanout) = VX then begin
        (* Fallback when the exact function outgrew its support: cofactor
           the proven-constant fanins and test for a degenerate cell. *)
        let f = restrict values g ~fix:(fun _ _ -> true) in
        let ones = Tt.count_ones f in
        if ones = 0 then values.(g.N.fanout) <- V0
        else if ones = 1 lsl Tt.arity f then values.(g.N.fanout) <- V1
      end)
    order;
  let observable = Array.make nn false in
  List.iter (fun (_, n) -> observable.(n) <- true) (N.observe_nets nl);
  (* Structural observability: reverse-topological sweep over combinational
     gates (consumers are processed before their producers, so the fanout
     net's flag is final when a gate pushes it onto its fanins). *)
  let reaches_obs = Array.copy observable in
  for i = Array.length order - 1 downto 0 do
    let g = N.gate nl order.(i) in
    if reaches_obs.(g.N.fanout) then
      Array.iter (fun fn -> reaches_obs.(fn) <- true) g.N.fanins
  done;
  let has_consts = Array.exists (fun v -> v <> VX) values in
  { nl; values; funcs; observable; reaches_obs; has_consts }

let net_fn t n =
  match t.values.(n) with
  | V0 -> Some (fn_const false)
  | V1 -> Some (fn_const true)
  | VX -> t.funcs.(n)

(* Two nets that compute the same function of the free roots can never
   disagree; [false] means "could not prove equal". *)
let provably_equal t n1 n2 =
  n1 = n2
  ||
  match (net_fn t n1, net_fn t n2) with
  | Some f1, Some f2 -> (
      match union_support [ f1; f2 ] with
      | None -> false
      | Some union ->
          let rows = 1 lsl Array.length union in
          let eq = ref true in
          for row = 0 to rows - 1 do
            if fn_eval_row f1 union row <> fn_eval_row f2 union row then eq := false
          done;
          !eq)
  | _ -> false

(* Is the cell input pattern [m] (a minterm over the gate's pins) reachable
   in the good circuit?  [false] is a proof that no root assignment produces
   it: pins reading the same net with opposite required bits contradict
   directly, and any jointly unsatisfiable subset of per-pin constraints
   (unconstrained pins can only widen satisfiability) kills the pattern. *)
let pattern_reachable t (gg : N.gate) m =
  let bit k = (m lsr k) land 1 = 1 in
  let dup_contradiction = ref false in
  Array.iteri
    (fun k fk ->
      Array.iteri
        (fun l fl -> if l > k && fk = fl && bit k <> bit l then dup_contradiction := true)
        gg.N.fanins)
    gg.N.fanins;
  if !dup_contradiction then false
  else begin
    let cs =
      Array.to_list
        (Array.mapi (fun k fn -> Option.map (fun f -> (f, bit k)) (net_fn t fn)) gg.N.fanins)
      |> List.filter_map Fun.id
    in
    constraints_satisfiable cs
    && (* When the full union outgrows [max_support] the check above gives
          up; pairs of constraints still fit and catch mutually exclusive
          (one-hot) control lines. *)
    List.for_all
      (fun (c1, c2) -> constraints_satisfiable [ c1; c2 ])
      (List.concat_map (fun c1 -> List.filter_map (fun c2 -> if c1 != c2 then Some (c1, c2) else None) cs) cs)
  end

(* ------------------------------------------------------------------ *)
(* Per-fault observability with constant blocking                      *)
(* ------------------------------------------------------------------ *)

(* Can a difference seeded at [seeds] reach an observable net?  [true] means
   "maybe" (no filtering), [false] is a proof that it cannot.

   The difference set C grows from the seeds through gates whose function,
   restricted by proven-constant side inputs *outside* C, depends on at
   least one input in C.  A net inside C never blocks propagation with its
   constant (its faulty value is unconstrained), so whenever a net joins C
   every gate reading it is re-examined — the BFS over sink edges does
   exactly that, and each gate is examined at most [arity] times.  Nets with
   no structural path to an observable point are never added: they cannot
   contribute an observation, and any gate that matters reads only nets
   that do have such a path, so pruning them is sound. *)
let difference_reaches_observable t seeds =
  if List.exists (fun n -> t.observable.(n)) seeds then true
  else if not (List.exists (fun n -> t.reaches_obs.(n)) seeds) then false
  else if not t.has_consts then
    (* No constants proven anywhere: blocking can never beat plain
       structural reachability, already decided above. *)
    true
  else begin
    let in_c = Array.make (N.num_nets t.nl) false in
    let q = Queue.create () in
    List.iter
      (fun n ->
        if not in_c.(n) then begin
          in_c.(n) <- true;
          Queue.add n q
        end)
      seeds;
    let reached = ref false in
    while (not !reached) && not (Queue.is_empty q) do
      let n = Queue.pop q in
      List.iter
        (fun (gid, _) ->
          if not !reached then begin
            let g = N.gate t.nl gid in
            let out = g.N.fanout in
            if (not g.N.cell.Cell.is_seq) && (not in_c.(out)) && t.reaches_obs.(out)
            then begin
              let f = restrict t.values g ~fix:(fun _ fn -> not in_c.(fn)) in
              let depends =
                let d = ref false in
                Array.iteri
                  (fun k fn -> if in_c.(fn) && Tt.depends_on f k then d := true)
                  g.N.fanins;
                !d
              in
              if depends then begin
                in_c.(out) <- true;
                if t.observable.(out) then reached := true else Queue.add out q
              end
            end
          end)
        (N.net t.nl n).N.sinks
    done;
    !reached
  end

let const_equals t n b =
  match t.values.(n) with V0 -> not b | V1 -> b | VX -> false

let known t n = t.values.(n) <> VX

let forced = function F.Sa0 -> false | F.Sa1 -> true

let is_seq_gate t g = (N.gate t.nl g).N.cell.Cell.is_seq

(* Stuck-at filter, also the frame-2 component of transition faults;
   mirrors [Encode.stuck_query] case by case. *)
let stuck_undetectable t loc pol =
  match loc with
  | F.On_pin (g, pin) when is_seq_gate t g ->
      (* Detection = controllability of the D net to the opposite value. *)
      const_equals t (N.gate t.nl g).N.fanins.(pin) (forced pol)
  | F.On_net n ->
      (* Activation needs the good value opposite to the stuck one. *)
      const_equals t n (forced pol) || not (difference_reaches_observable t [ n ])
  | F.On_pin (g, pin) ->
      let gg = N.gate t.nl g in
      let fn = gg.N.fanins.(pin) in
      const_equals t fn (forced pol)
      ||
      (* The faulty copy differs from the good one only if the host
         function, with proven-constant *other* pins fixed, actually
         depends on the forced pin (side pins carry good values here — the
         fault is on the pin, not on its net). *)
      let f = restrict t.values gg ~fix:(fun k _ -> k <> pin) in
      (not (Tt.depends_on f pin))
      || not (difference_reaches_observable t [ gg.N.fanout ])

let transition_components = function
  | F.Slow_to_rise -> (false, F.Sa0)
  | F.Slow_to_fall -> (true, F.Sa1)

let loc_net t = function
  | F.On_net n -> n
  | F.On_pin (g, pin) -> (N.gate t.nl g).N.fanins.(pin)

let prove_undetectable t (f : F.t) =
  match f.F.kind with
  | F.Stuck (loc, pol) -> stuck_undetectable t loc pol
  | F.Transition (loc, tr) ->
      let _init_value, pol = transition_components tr in
      (* A proven-constant site kills one of the two frames: if the constant
         matches the frame-1 initialization value it contradicts the frame-2
         stuck activation, otherwise it contradicts frame 1 itself. *)
      known t (loc_net t loc) || stuck_undetectable t loc pol
  | F.Bridge (n1, n2, _) ->
      (* Activation needs the bridged nets to disagree. *)
      provably_equal t n1 n2 || not (difference_reaches_observable t [ n1; n2 ])
  | F.Internal (g, entry_idx) ->
      let gg = N.gate t.nl g in
      let u = Dfm_cellmodel.Udfm.for_cell gg.N.cell.Cell.name in
      let entry = List.nth u.Dfm_cellmodel.Udfm.entries entry_idx in
      let activation = entry.Dfm_cellmodel.Udfm.activation in
      if gg.N.cell.Cell.is_seq then
        (* Activation is a clause over the D value's parities; it is
           unsatisfiable only when every literal wants the same value and
           the D net is proven to the opposite constant. *)
        (match activation with
        | [] -> true
        | m0 :: rest ->
            let v = m0 land 1 = 1 in
            List.for_all (fun m -> (m land 1 = 1) = v) rest
            && const_equals t gg.N.fanins.(0) (not v))
      else
        (* A minterm contradicting a proven constant, a duplicated fanin, or
           a jointly unsatisfiable (e.g. one-hot) input combination can never
           arise in the good circuit; if that kills the whole activation
           list, the fault is undetectable. *)
        List.for_all (fun m -> not (pattern_reachable t gg m)) activation
        || not (difference_reaches_observable t [ gg.N.fanout ])

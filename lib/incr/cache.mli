(** The incremental-analysis façade the engine threads through a campaign:
    one signature sweep per netlist (incrementally re-swept between
    resynthesis steps, see [Invalidate]) in front of one verdict {!Store}.

    Correctness invariant (enforced by the property tests, relied on by
    [Atpg.classify]): for any netlist and any warm or cold cache state,
    classification with a cache is bit-identical to the uncached run — the
    cache may only skip work, never change a verdict.  This holds because
    only semantic verdicts are stored ([Store.verdict] has no [Aborted]),
    keys are full cone signatures with the ATPG parameters mixed in
    ([Signature.params]), and lookups happen in the classify coordinator so
    the jobs=N sharding determinism is untouched.

    A cache is single-domain, like the coordinator that owns it. *)

type t

val create : ?capacity:int -> ?dir:string -> ?log:(string -> unit) -> unit -> t
(** [dir] enables the on-disk tier in [dir ^ "/verdicts.bin"], creating the
    directory when needed; corrupted files are recovered best-effort (see
    {!Store.create}).  Without [dir] the cache is memory-only. *)

val signatures :
  t -> ?max_conflicts:int -> Dfm_netlist.Netlist.t -> Dfm_faults.Fault.t array -> int64 array
(** Cone signatures of the whole fault list.  The per-netlist sweep is
    memoized: the same netlist (physical equality) reuses it outright, and a
    different netlist is diffed against the previous sweep so only the
    edited region's support hashes are recomputed. *)

val find : t -> int64 -> Store.verdict option

val find_certified : t -> int64 -> Store.verdict option
(** Only entries published certified and whose disk certificate mark
    validated; see {!Store.find_certified}. *)

val record : ?certified:bool -> t -> int64 -> Store.verdict -> unit

val stats : t -> Store.stats

val hit_rate : t -> float

val resweep_stats : t -> Invalidate.stats option
(** Cumulative incremental-sweep stats; [None] before any resweep. *)

val flush : t -> unit

val close : t -> unit

(* splitmix64 finalizer: the same avalanche the project's Rng is built on,
   reused here as a pure mixing function rather than a stream. *)
let finalize z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* boost-style hash_combine lifted to 64 bits: the golden-ratio constant
   decorrelates consecutive accumulator states, the finalizer avalanches. *)
let mix acc v =
  finalize (Int64.add (Int64.logxor acc 0x9e3779b97f4a7c15L) (Int64.add v (Int64.shift_left acc 6)))

let of_int i = finalize (Int64.of_int i)

let of_bool b = if b then 0x9ae16a3b2f90404fL else 0xc3a5c85c97cb3127L

let of_string s =
  (* FNV-1a 64 over the bytes, avalanched so short strings still spread. *)
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  finalize !h

let of_int_list l =
  List.fold_left (fun acc i -> mix acc (Int64.of_int i)) (of_int (List.length l)) l

let combine seed hs = List.fold_left mix seed hs

(* Sum of avalanched elements: permutation-invariant, multiplicity-aware.
   Each element is re-finalized against a distinct constant so that the sum
   of two multisets only collides with avalanche-level probability. *)
let combine_unordered hs =
  finalize
    (List.fold_left (fun acc h -> Int64.add acc (finalize (Int64.logxor h 0x2545f4914f6cdd1dL))) 0L hs)

let to_hex h = Printf.sprintf "%016Lx" h

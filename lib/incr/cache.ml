
type t = {
  store : Store.t;
  mutable last_sweep : Signature.sweep option;
  mutable resweeps : Invalidate.stats option;  (* cumulative *)
}

let cache_file = "verdicts.bin"

let create ?capacity ?dir ?log () =
  let path =
    Option.map
      (fun dir ->
        (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755 with Sys_error _ -> ());
        Filename.concat dir cache_file)
      dir
  in
  { store = Store.create ?capacity ?path ?log (); last_sweep = None; resweeps = None }

let sweep_for t nl =
  match t.last_sweep with
  | Some sw when Signature.netlist sw == nl -> sw
  | Some prev ->
      let sw, st = Invalidate.resweep ~previous:prev nl in
      let acc =
        match t.resweeps with
        | None -> st
        | Some a ->
            {
              Invalidate.nets_total = a.Invalidate.nets_total + st.Invalidate.nets_total;
              support_reused = a.Invalidate.support_reused + st.Invalidate.support_reused;
              support_recomputed = a.Invalidate.support_recomputed + st.Invalidate.support_recomputed;
            }
      in
      t.resweeps <- Some acc;
      t.last_sweep <- Some sw;
      sw
  | None ->
      let sw = Signature.sweep nl in
      t.last_sweep <- Some sw;
      sw

let signatures t ?max_conflicts nl faults =
  let sw = sweep_for t nl in
  let params = Signature.default_params ?max_conflicts () in
  Array.map (Signature.of_fault sw ~params) faults

let find t sg = Store.find t.store sg

let find_certified t sg = Store.find_certified t.store sg

let record ?certified t sg v = Store.add ?certified t.store sg v

let stats t = Store.stats t.store

let hit_rate t = Store.hit_rate t.store

let resweep_stats t = t.resweeps

let flush t = Store.flush t.store

let close t = Store.close t.store

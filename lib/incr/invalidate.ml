module N = Dfm_netlist.Netlist
module Cell = Dfm_netlist.Cell
module Tt = Dfm_logic.Truthtable

type stats = { nets_total : int; support_reused : int; support_recomputed : int }

(* name -> net id for uniquely-named nets; ambiguous names map to nothing
   (their nets are simply recomputed). *)
let unique_net_names nl =
  let tbl = Hashtbl.create (N.num_nets nl) in
  for n = 0 to N.num_nets nl - 1 do
    let name = (N.net nl n).N.net_name in
    match Hashtbl.find_opt tbl name with
    | None -> Hashtbl.replace tbl name (Some n)
    | Some _ -> Hashtbl.replace tbl name None
  done;
  tbl

let is_source nl (net : N.net) =
  match net.N.driver with
  | N.Pi _ -> true
  | N.Const _ -> false
  | N.Gate_out g -> (N.gate nl g).N.cell.Cell.is_seq

let resweep ~previous nl =
  let old_nl = Signature.netlist previous in
  let old_by_name = unique_net_names old_nl in
  let new_by_name = unique_net_names nl in
  let nn = N.num_nets nl in
  (* clean.(n) = Some old_id: the full sweep would give [n] the same support
     hash the previous sweep gave [old_id]. *)
  let clean : int option array = Array.make nn None in
  let matched n =
    let name = (N.net nl n).N.net_name in
    match Hashtbl.find_opt new_by_name name with
    | Some (Some _) -> (
        match Hashtbl.find_opt old_by_name name with Some (Some o) -> Some o | _ -> None)
    | _ -> None
  in
  (* Sources and constants: the support hash depends only on the (unique)
     name resp. the constant value, so a name match plus a driver-shape
     match suffices. *)
  for n = 0 to nn - 1 do
    match matched n with
    | None -> ()
    | Some o -> (
        let net = N.net nl n and onet = N.net old_nl o in
        match (net.N.driver, onet.N.driver) with
        | N.Const a, N.Const b -> if a = b then clean.(n) <- Some o
        | _ ->
            if is_source nl net && is_source old_nl onet then clean.(n) <- Some o)
  done;
  (* Combinational outputs, fanins before fanouts: clean iff the driving
     gates compute the same truth table over pin-wise name-identical clean
     fanins. *)
  Array.iter
    (fun gid ->
      let g = N.gate nl gid in
      let out = g.N.fanout in
      match matched out with
      | None -> ()
      | Some o -> (
          match (N.net old_nl o).N.driver with
          | N.Gate_out og ->
              let ogg = N.gate old_nl og in
              if
                (not ogg.N.cell.Cell.is_seq)
                && Tt.equal g.N.cell.Cell.func ogg.N.cell.Cell.func
                && Array.length g.N.fanins = Array.length ogg.N.fanins
                && Array.for_all2
                     (fun fn ofn ->
                       clean.(fn) <> None
                       && (N.net nl fn).N.net_name = (N.net old_nl ofn).N.net_name)
                     g.N.fanins ogg.N.fanins
              then clean.(out) <- Some o
          | N.Pi _ | N.Const _ -> ()))
    (N.topo_order nl);
  let hint n = Option.map (Signature.support_hash previous) clean.(n) in
  let sw, reused = Signature.sweep_reusing nl ~support_hint:hint in
  (sw, { nets_total = nn; support_reused = reused; support_recomputed = nn - reused })

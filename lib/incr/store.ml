module H = Hash64

(* Registry-level cache metrics, aggregated across every store instance.
   The per-instance [stats] record below stays the source of truth for
   caller-visible accounting; these feed the Prometheus exposition. *)
let m_hits =
  Dfm_obs.Metrics.attributed_counter ~help:"Verdict-cache lookups that hit"
    "dfm_cache_hits_total"

let m_misses =
  Dfm_obs.Metrics.attributed_counter ~help:"Verdict-cache lookups that missed"
    "dfm_cache_misses_total"

let m_evictions =
  Dfm_obs.Metrics.counter ~help:"Verdict-cache FIFO evictions" "dfm_cache_evictions_total"

let m_disk_bytes =
  Dfm_obs.Metrics.counter ~help:"Bytes appended to the verdict-cache disk tier"
    "dfm_cache_disk_bytes_total"

let m_degraded =
  Dfm_obs.Metrics.gauge
    ~help:"1 when a verdict-store disk tier has degraded to memory-only"
    "dfm_store_degraded"

type verdict = Detected | Undetectable

type stats = {
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  disk_loaded : int;
  disk_dropped : int;
  degraded : bool;
}

type t = {
  lock : Mutex.t;
      (* Serializes every public entry point.  The engine still consults
         the store from its coordinating domain only, but the serve daemon
         reads [stats] from its network thread while the executor thread
         runs jobs — cross-thread reads of the mutable counters must not
         tear.  Uncontended in the one-shot CLI, so the cost is noise. *)
  tbl : (int64, verdict * bool) Hashtbl.t;  (* verdict, certified *)
  order : int64 Queue.t;  (* insertion order, for FIFO eviction *)
  capacity : int;
  mutable chan : out_channel option;
  log : string -> unit;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable evictions : int;
  mutable disk_loaded : int;
  mutable disk_dropped : int;
  mutable degraded : bool;
}

(* Degrade to memory-only: log once, close the channel best-effort, keep
   serving lookups and stores from the memory tier.  A failing disk tier
   (ENOSPC, EACCES, a closed fd, a yanked mount) must never raise out of a
   campaign — losing persistence is recoverable, losing hours of
   resynthesis is not. *)
let disable_disk t reason =
  (match t.chan with
  | None -> ()
  | Some oc ->
      t.log (Printf.sprintf "cache: disk tier disabled (%s) — continuing memory-only" reason);
      close_out_noerr oc;
      t.chan <- None);
  t.degraded <- true;
  Dfm_obs.Metrics.set m_degraded 1

(* ---- disk format ----------------------------------------------------
   8-byte magic, then records: u16le payload length | payload | u64le
   checksum.  The payload of a v1 record is u64le signature + 1 verdict
   byte; a v2 (certified) record appends a u64le certificate mark — a keyed
   digest over the signature and the verdict, recomputed and compared on
   load, so a corrupted or hand-edited certified entry degrades to a miss
   rather than a wrongly trusted verdict.  The length prefix is what lets
   both versions coexist in one log. *)

let magic = "DFMVC01\n"
let payload_len = 9
let payload_len_certified = 17

let checksum ~len payload = H.mix (H.of_string payload) (H.of_int len)

let verdict_code = function Detected -> 0 | Undetectable -> 1

let cert_mark sg v =
  H.finalize (H.mix (H.mix (H.of_string "DFMCERTv2") sg) (H.of_int (verdict_code v)))

let record_bytes ?(certified = false) sg v =
  let plen = if certified then payload_len_certified else payload_len in
  let b = Bytes.create (2 + plen + 8) in
  Bytes.set_uint16_le b 0 plen;
  Bytes.set_int64_le b 2 sg;
  Bytes.set_uint8 b 10 (verdict_code v);
  if certified then Bytes.set_int64_le b 11 (cert_mark sg v);
  let payload = Bytes.sub_string b 2 plen in
  Bytes.set_int64_le b (2 + plen) (checksum ~len:plen payload);
  b

(* Best-effort load: returns surviving records in file order, how many were
   dropped, and whether the file must be compacted before appending (bad
   tail / corrupt record would otherwise leave the log mis-framed). *)
let load_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let ok = ref [] and dropped = ref 0 and rewrite = ref false in
  let head = Bytes.create (String.length magic) in
  (try
     really_input ic head 0 (String.length magic);
     if Bytes.to_string head <> magic then begin
       incr dropped;
       rewrite := true;
       raise Exit
     end;
     let lenb = Bytes.create 2 and tail = Bytes.create (payload_len_certified + 8) in
     let rec loop () =
       (match input_char ic with
       | exception End_of_file -> raise Exit  (* clean end *)
       | c0 -> Bytes.set lenb 0 c0);
       Bytes.set lenb 1 (input_char ic);
       let len = Bytes.get_uint16_le lenb 0 in
       if len <> payload_len && len <> payload_len_certified then begin
         (* A corrupt length prefix means we no longer know where records
            start: drop the rest of the file. *)
         incr dropped;
         rewrite := true;
         raise Exit
       end;
       really_input ic tail 0 (len + 8);
       let payload = Bytes.sub_string tail 0 len in
       if Bytes.get_int64_le tail len <> checksum ~len payload then begin
         incr dropped;
         rewrite := true
       end
       else begin
         let sg = Bytes.get_int64_le tail 0 in
         let verdict =
           match Bytes.get_uint8 tail 8 with
           | 0 -> Some Detected
           | 1 -> Some Undetectable
           | _ -> None
         in
         match verdict with
         | None ->
             incr dropped;
             rewrite := true
         | Some v ->
             if len = payload_len then ok := (sg, v, false) :: !ok
             else if Bytes.get_int64_le tail 9 = cert_mark sg v then ok := (sg, v, true) :: !ok
             else begin
               (* Stale or corrupted certificate mark: the record survives as
                  an uncertified verdict at most — but since the mark is
                  derived from the very bytes that just checksummed clean,
                  a mismatch means the writer disagreed with us about the
                  certificate scheme.  Drop it entirely. *)
               incr dropped;
               rewrite := true
             end
       end;
       loop ()
     in
     loop ()
   with
  | Exit -> ()
  | End_of_file ->
      (* truncated mid-record *)
      incr dropped;
      rewrite := true);
  (List.rev !ok, !dropped, !rewrite)

let write_all path records =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  output_string oc magic;
  List.iter (fun (sg, v, certified) -> output_bytes oc (record_bytes ~certified sg v)) records

(* ---- store ---------------------------------------------------------- *)

(* Returns whether the entry needs a disk append: a fresh signature always
   does; a known signature only when this add upgrades it from uncertified
   to certified (the verdict itself never changes — same signature, same
   semantic fact). *)
let adopt t ~certified sg v =
  match Hashtbl.find_opt t.tbl sg with
  | None ->
      Hashtbl.replace t.tbl sg (v, certified);
      Queue.push sg t.order;
      if Hashtbl.length t.tbl > t.capacity then begin
        Hashtbl.remove t.tbl (Queue.pop t.order);
        t.evictions <- t.evictions + 1;
        Dfm_obs.Metrics.incr m_evictions
      end;
      true
  | Some (v0, false) when certified && v0 = v ->
      Hashtbl.replace t.tbl sg (v0, true);
      true
  | Some _ -> false

let create ?(capacity = 1_000_000) ?path ?(log = fun m -> Dfm_obs.Log.warn m) () =
  let t =
    {
      lock = Mutex.create ();
      tbl = Hashtbl.create 4096;
      order = Queue.create ();
      capacity = max 1 capacity;
      chan = None;
      log;
      hits = 0;
      misses = 0;
      stores = 0;
      evictions = 0;
      disk_loaded = 0;
      disk_dropped = 0;
      degraded = false;
    }
  in
  (match path with
  | None -> ()
  | Some path -> (
      try
        if Sys.file_exists path then begin
          let records, dropped, rewrite = load_file path in
          List.iter
            (fun (sg, v, certified) ->
              if adopt t ~certified sg v then t.disk_loaded <- t.disk_loaded + 1)
            records;
          t.disk_dropped <- dropped;
          if dropped > 0 then
            log
              (Printf.sprintf
                 "cache: recovered %s — kept %d record(s), dropped %d corrupted/truncated" path
                 (List.length records) dropped);
          if rewrite then write_all path records
        end
        else write_all path [];
        t.chan <- Some (open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path)
      with Sys_error e ->
        log (Printf.sprintf "cache: disk tier disabled (%s) — continuing memory-only" e);
        t.chan <- None;
        t.degraded <- true));
  t

let find t sg =
  Mutex.protect t.lock @@ fun () ->
  match Hashtbl.find_opt t.tbl sg with
  | Some (v, _) ->
      t.hits <- t.hits + 1;
      Dfm_obs.Metrics.incr_attr m_hits;
      Some v
  | None ->
      t.misses <- t.misses + 1;
      Dfm_obs.Metrics.incr_attr m_misses;
      None

(* Certified lookup: only entries published by a certified run (and whose
   on-disk certificate mark validated on load) are visible; an uncertified
   entry is a miss, so certified campaigns recompute rather than trust it. *)
let find_certified t sg =
  Mutex.protect t.lock @@ fun () ->
  match Hashtbl.find_opt t.tbl sg with
  | Some (v, true) ->
      t.hits <- t.hits + 1;
      Dfm_obs.Metrics.incr_attr m_hits;
      Some v
  | Some (_, false) | None ->
      t.misses <- t.misses + 1;
      Dfm_obs.Metrics.incr_attr m_misses;
      None

(* One failpoint check shared by the disk-tier failure sites: [store.append]
   models an append dying mid-call (exception, OS error, torn write);
   [store.enospc] models the disk filling up — same degradation path, named
   separately so the chaos matrix can target disk-full specifically. *)
let failpoint_site oc b name =
  match Dfm_util.Failpoint.check name with
  | Some Dfm_util.Failpoint.Raise -> raise (Dfm_util.Failpoint.Injected name)
  | Some Dfm_util.Failpoint.Io_error ->
      raise (Sys_error (Printf.sprintf "failpoint: %s: No space left on device" name))
  | Some Dfm_util.Failpoint.Partial_write ->
      output_bytes oc (Bytes.sub b 0 (Bytes.length b / 2));
      raise (Sys_error (Printf.sprintf "failpoint: %s (partial write)" name))
  | Some (Dfm_util.Failpoint.Delay s) -> Unix.sleepf s
  | None -> ()

let append_record oc b =
  failpoint_site oc b "store.enospc";
  failpoint_site oc b "store.append";
  output_bytes oc b

let add ?(certified = false) t sg v =
  Mutex.protect t.lock @@ fun () ->
  if adopt t ~certified sg v then begin
    t.stores <- t.stores + 1;
    match t.chan with
    | None -> ()
    | Some oc -> (
        try
          let b = record_bytes ~certified sg v in
          append_record oc b;
          Dfm_obs.Metrics.incr ~by:(Bytes.length b) m_disk_bytes
        with e -> disable_disk t (Printexc.to_string e))
  end

let mem_size t = Mutex.protect t.lock @@ fun () -> Hashtbl.length t.tbl

let stats t =
  Mutex.protect t.lock @@ fun () ->
  {
    hits = t.hits;
    misses = t.misses;
    stores = t.stores;
    evictions = t.evictions;
    disk_loaded = t.disk_loaded;
    disk_dropped = t.disk_dropped;
    degraded = t.degraded;
  }

let hit_rate t =
  Mutex.protect t.lock @@ fun () ->
  let n = t.hits + t.misses in
  if n = 0 then 0.0 else float_of_int t.hits /. float_of_int n

let flush t =
  Mutex.protect t.lock @@ fun () ->
  match t.chan with
  | None -> ()
  | Some oc -> ( try Stdlib.flush oc with e -> disable_disk t (Printexc.to_string e))

let close t =
  Mutex.protect t.lock @@ fun () ->
  match t.chan with
  | None -> ()
  | Some oc ->
      (try Stdlib.flush oc with Sys_error _ -> ());
      close_out_noerr oc;
      t.chan <- None

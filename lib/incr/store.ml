module H = Hash64

(* Registry-level cache metrics, aggregated across every store instance.
   The per-instance [stats] record below stays the source of truth for
   caller-visible accounting; these feed the Prometheus exposition. *)
let m_hits = Dfm_obs.Metrics.counter ~help:"Verdict-cache lookups that hit" "dfm_cache_hits_total"

let m_misses =
  Dfm_obs.Metrics.counter ~help:"Verdict-cache lookups that missed" "dfm_cache_misses_total"

let m_evictions =
  Dfm_obs.Metrics.counter ~help:"Verdict-cache FIFO evictions" "dfm_cache_evictions_total"

let m_disk_bytes =
  Dfm_obs.Metrics.counter ~help:"Bytes appended to the verdict-cache disk tier"
    "dfm_cache_disk_bytes_total"

type verdict = Detected | Undetectable

type stats = {
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  disk_loaded : int;
  disk_dropped : int;
  degraded : bool;
}

type t = {
  lock : Mutex.t;
      (* Serializes every public entry point.  The engine still consults
         the store from its coordinating domain only, but the serve daemon
         reads [stats] from its network thread while the executor thread
         runs jobs — cross-thread reads of the mutable counters must not
         tear.  Uncontended in the one-shot CLI, so the cost is noise. *)
  tbl : (int64, verdict) Hashtbl.t;
  order : int64 Queue.t;  (* insertion order, for FIFO eviction *)
  capacity : int;
  mutable chan : out_channel option;
  log : string -> unit;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable evictions : int;
  mutable disk_loaded : int;
  mutable disk_dropped : int;
  mutable degraded : bool;
}

(* Degrade to memory-only: log once, close the channel best-effort, keep
   serving lookups and stores from the memory tier.  A failing disk tier
   (ENOSPC, EACCES, a closed fd, a yanked mount) must never raise out of a
   campaign — losing persistence is recoverable, losing hours of
   resynthesis is not. *)
let disable_disk t reason =
  (match t.chan with
  | None -> ()
  | Some oc ->
      t.log (Printf.sprintf "cache: disk tier disabled (%s) — continuing memory-only" reason);
      close_out_noerr oc;
      t.chan <- None);
  t.degraded <- true

(* ---- disk format ----------------------------------------------------
   8-byte magic, then records: u16le payload length | payload | u64le
   checksum.  The payload of a v1 record is u64le signature + 1 verdict
   byte; the length prefix exists so a future version can grow the payload
   without breaking old readers. *)

let magic = "DFMVC01\n"
let payload_len = 9

let checksum ~len payload = H.mix (H.of_string payload) (H.of_int len)

let record_bytes sg v =
  let b = Bytes.create (2 + payload_len + 8) in
  Bytes.set_uint16_le b 0 payload_len;
  Bytes.set_int64_le b 2 sg;
  Bytes.set_uint8 b 10 (match v with Detected -> 0 | Undetectable -> 1);
  let payload = Bytes.sub_string b 2 payload_len in
  Bytes.set_int64_le b 11 (checksum ~len:payload_len payload);
  b

(* Best-effort load: returns surviving records in file order, how many were
   dropped, and whether the file must be compacted before appending (bad
   tail / corrupt record would otherwise leave the log mis-framed). *)
let load_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let ok = ref [] and dropped = ref 0 and rewrite = ref false in
  let head = Bytes.create (String.length magic) in
  (try
     really_input ic head 0 (String.length magic);
     if Bytes.to_string head <> magic then begin
       incr dropped;
       rewrite := true;
       raise Exit
     end;
     let lenb = Bytes.create 2 and tail = Bytes.create (payload_len + 8) in
     let rec loop () =
       (match input_char ic with
       | exception End_of_file -> raise Exit  (* clean end *)
       | c0 -> Bytes.set lenb 0 c0);
       Bytes.set lenb 1 (input_char ic);
       let len = Bytes.get_uint16_le lenb 0 in
       if len <> payload_len then begin
         (* A corrupt length prefix means we no longer know where records
            start: drop the rest of the file. *)
         incr dropped;
         rewrite := true;
         raise Exit
       end;
       really_input ic tail 0 (len + 8);
       let payload = Bytes.sub_string tail 0 len in
       if Bytes.get_int64_le tail len <> checksum ~len payload then begin
         incr dropped;
         rewrite := true
       end
       else begin
         let sg = Bytes.get_int64_le tail 0 in
         match Bytes.get_uint8 tail 8 with
         | 0 -> ok := (sg, Detected) :: !ok
         | 1 -> ok := (sg, Undetectable) :: !ok
         | _ ->
             incr dropped;
             rewrite := true
       end;
       loop ()
     in
     loop ()
   with
  | Exit -> ()
  | End_of_file ->
      (* truncated mid-record *)
      incr dropped;
      rewrite := true);
  (List.rev !ok, !dropped, !rewrite)

let write_all path records =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  output_string oc magic;
  List.iter (fun (sg, v) -> output_bytes oc (record_bytes sg v)) records

(* ---- store ---------------------------------------------------------- *)

let adopt t sg v =
  if not (Hashtbl.mem t.tbl sg) then begin
    Hashtbl.replace t.tbl sg v;
    Queue.push sg t.order;
    if Hashtbl.length t.tbl > t.capacity then begin
      Hashtbl.remove t.tbl (Queue.pop t.order);
      t.evictions <- t.evictions + 1;
      Dfm_obs.Metrics.incr m_evictions
    end;
    true
  end
  else false

let create ?(capacity = 1_000_000) ?path ?(log = fun m -> Dfm_obs.Log.warn m) () =
  let t =
    {
      lock = Mutex.create ();
      tbl = Hashtbl.create 4096;
      order = Queue.create ();
      capacity = max 1 capacity;
      chan = None;
      log;
      hits = 0;
      misses = 0;
      stores = 0;
      evictions = 0;
      disk_loaded = 0;
      disk_dropped = 0;
      degraded = false;
    }
  in
  (match path with
  | None -> ()
  | Some path -> (
      try
        if Sys.file_exists path then begin
          let records, dropped, rewrite = load_file path in
          List.iter (fun (sg, v) -> if adopt t sg v then t.disk_loaded <- t.disk_loaded + 1) records;
          t.disk_dropped <- dropped;
          if dropped > 0 then
            log
              (Printf.sprintf
                 "cache: recovered %s — kept %d record(s), dropped %d corrupted/truncated" path
                 (List.length records) dropped);
          if rewrite then write_all path records
        end
        else write_all path [];
        t.chan <- Some (open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path)
      with Sys_error e ->
        log (Printf.sprintf "cache: disk tier disabled (%s) — continuing memory-only" e);
        t.chan <- None;
        t.degraded <- true));
  t

let find t sg =
  Mutex.protect t.lock @@ fun () ->
  match Hashtbl.find_opt t.tbl sg with
  | Some v ->
      t.hits <- t.hits + 1;
      Dfm_obs.Metrics.incr m_hits;
      Some v
  | None ->
      t.misses <- t.misses + 1;
      Dfm_obs.Metrics.incr m_misses;
      None

(* One disk-tier append, with the [store.append] failpoint modeling every
   way a real append dies: an exception mid-call, an OS error, and a torn
   (partial) write that leaves a mis-framed tail for the next open's
   recovery pass to drop. *)
let append_record oc b =
  match Dfm_util.Failpoint.check "store.append" with
  | Some Dfm_util.Failpoint.Raise -> raise (Dfm_util.Failpoint.Injected "store.append")
  | Some Dfm_util.Failpoint.Io_error -> raise (Sys_error "failpoint: store.append")
  | Some Dfm_util.Failpoint.Partial_write ->
      output_bytes oc (Bytes.sub b 0 (Bytes.length b / 2));
      raise (Sys_error "failpoint: store.append (partial write)")
  | Some (Dfm_util.Failpoint.Delay s) ->
      Unix.sleepf s;
      output_bytes oc b
  | None -> output_bytes oc b

let add t sg v =
  Mutex.protect t.lock @@ fun () ->
  if adopt t sg v then begin
    t.stores <- t.stores + 1;
    match t.chan with
    | None -> ()
    | Some oc -> (
        try
          let b = record_bytes sg v in
          append_record oc b;
          Dfm_obs.Metrics.incr ~by:(Bytes.length b) m_disk_bytes
        with e -> disable_disk t (Printexc.to_string e))
  end

let mem_size t = Mutex.protect t.lock @@ fun () -> Hashtbl.length t.tbl

let stats t =
  Mutex.protect t.lock @@ fun () ->
  {
    hits = t.hits;
    misses = t.misses;
    stores = t.stores;
    evictions = t.evictions;
    disk_loaded = t.disk_loaded;
    disk_dropped = t.disk_dropped;
    degraded = t.degraded;
  }

let hit_rate t =
  Mutex.protect t.lock @@ fun () ->
  let n = t.hits + t.misses in
  if n = 0 then 0.0 else float_of_int t.hits /. float_of_int n

let flush t =
  Mutex.protect t.lock @@ fun () ->
  match t.chan with
  | None -> ()
  | Some oc -> ( try Stdlib.flush oc with e -> disable_disk t (Printexc.to_string e))

let close t =
  Mutex.protect t.lock @@ fun () ->
  match t.chan with
  | None -> ()
  | Some oc ->
      (try Stdlib.flush oc with Sys_error _ -> ());
      close_out_noerr oc;
      t.chan <- None

(** Incremental re-signature after a resynthesis step.

    [Netlist.replace] renumbers gates and nets, but keeps the {e names} of
    everything outside the replaced region (inserted gates/nets get fresh
    ["_r%d"]-suffixed names).  This module diffs the new netlist against the
    previous {!Signature.sweep} by name and recomputes support hashes only
    in the affected region: a net keeps its support hash iff its name-matched
    predecessor had the same driver shape — same source, same constant, or a
    combinational gate with the same truth table over name-identical,
    themselves-clean fanins — i.e. iff no replaced gate lies in its fanin
    cone.  Everything in the transitive fanout of a changed gate is
    recomputed.  The fanout side needs no per-net state to patch: per-fault
    cone hashes are derived on demand from the supports (memoized inside the
    sweep), so faults whose cone avoids the edited region automatically
    reproduce their old signatures.

    Names are only an acceleration key, never trusted for equality: every
    reused hash is justified by the structural driver match above, so a
    duplicate or recycled name can only reduce reuse (a net whose name is
    ambiguous in either netlist is always recomputed), not corrupt a
    signature — [resweep] is observationally identical to a full
    {!Signature.sweep}, which the property tests assert. *)

type stats = {
  nets_total : int;
  support_reused : int;      (** hashes adopted from the previous sweep *)
  support_recomputed : int;
}

val resweep :
  previous:Signature.sweep -> Dfm_netlist.Netlist.t -> Signature.sweep * stats

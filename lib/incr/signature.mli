(** Canonical cone signatures: a 64-bit structural hash of everything a
    fault's classification verdict can depend on.

    The ATPG's verdict for a fault is a pure function of the *detection
    miter* [Dfm_atpg.Encode] builds: the fault-model activation condition,
    the transitive fanout of the fault site through combinational gates
    (with its exact sharing/reconvergence structure), the fault-free
    functions of every side input of that fanout region, and which of the
    reached nets are observable.  Two faults whose miters are structurally
    equivalent are satisfiability-equivalent, so a complete solver gives
    them the same verdict.  The signature captures that equivalence class
    in two parts:

    - a forward levelized sweep computing a Merkle-style {e support hash}
      per net, shared by every fault on the netlist: cell truth table plus
      fanin hashes in pin order; primary inputs, constants and flip-flop Q
      nets are the free sources, labeled by net name.  Only the {e term}
      matters here — two good-side cones that denote the same expression
      over the same named sources compute the same Boolean function, so
      physical sharing on the good side is irrelevant;

    - a per-fault {e cone hash} over the fault's combinational fanout
      region, memoized per seed-net set within a sweep.  Here sharing is
      {e not} abstracted away: each cone net gets an index in cone-topo
      order and sinks refer to faulty fanins by index, so a reconvergent
      cone (the fault reaches a gate on two pins) never collides with
      duplicated logic (only one pin faulty) — those genuinely differ in
      detectability.  Side inputs are labeled by their support hash;
      observable cone nets contribute an unordered (clause-like) multiset
      of (cone index, support) pairs.

    [of_fault] mixes the per-model ingredients — the same ones
    [Encode.check] consumes, e.g. activation minterm {e contents} rather
    than UDFM entry indices — with {!params}.

    What is deliberately {e not} in the hash: gate/net ids and internal net
    names (signatures survive [Netlist.replace] renumbering), cell {e
    names} (cells with equal truth tables — e.g. drive-strength variants —
    are interchangeable for detection), placement/routing/timing, and the
    campaign's random seed and pattern-block count (random simulation can
    only discover a test the SAT phase would also find, never change a
    verdict).

    Caveat, stated for honesty and enforced by the store's policy of never
    caching [Aborted]: under a {e bounded} [max_conflicts] budget the
    resolved/Aborted boundary can depend on CNF variable ordering, which
    the signature abstracts away.  [max_conflicts] is part of {!params}, so
    bounded-budget entries never leak into runs with a different budget; at
    the default (unbounded, complete) setting the verdict is exactly
    determined by the signature. *)

type params = {
  semantics_version : int;
      (** bumped whenever detection semantics change (fault models, UDFM
          characterization, encoder shape); distinct versions never share
          cache entries *)
  max_conflicts : int option;
}

val current_semantics_version : int

val default_params : ?max_conflicts:int -> unit -> params
(** [semantics_version] pinned to {!current_semantics_version}. *)

type sweep
(** Per-netlist signature state: the support hash table plus the topology
    (topo positions, sink lists, observability bits) that per-fault cone
    hashes are computed from, and the cone-hash memo. *)

val sweep : Dfm_netlist.Netlist.t -> sweep

val sweep_reusing :
  Dfm_netlist.Netlist.t -> support_hint:(int -> int64 option) -> sweep * int
(** [sweep_reusing nl ~support_hint] computes a sweep but, for every net id
    where the hint returns [Some h], adopts [h] as the support hash instead
    of recomputing.  The caller (see [Invalidate]) must only offer hints
    equal to what the full sweep would compute; this function is the
    mechanism, the invalidation layer is the policy.  Also returns how many
    hashes were adopted from hints. *)

val netlist : sweep -> Dfm_netlist.Netlist.t

val support_hash : sweep -> int -> int64
(** Per-net forward (fanin-cone term) hash. *)

val of_fault : sweep -> params:params -> Dfm_faults.Fault.t -> int64
(** The fault's cone signature.  Cost: fanin arity + activation size, plus
    one walk of the fault's combinational fanout region the first time a
    given seed-net set is seen in this sweep. *)

module N = Dfm_netlist.Netlist
module Cell = Dfm_netlist.Cell
module F = Dfm_faults.Fault
module Tt = Dfm_logic.Truthtable
module Udfm = Dfm_cellmodel.Udfm
module H = Hash64

type params = { semantics_version : int; max_conflicts : int option }

(* Bump whenever anything the hash abstracts over changes meaning: fault
   detection semantics, UDFM characterization, the encoder's miter shape, or
   this module's own hashing scheme. *)
let current_semantics_version = 1

let default_params ?max_conflicts () =
  { semantics_version = current_semantics_version; max_conflicts }

(* Role tags keep structurally different ingredients from colliding even
   when their raw values coincide. *)
let tag_source = H.of_string "incr:source"
let tag_const0 = H.of_string "incr:const0"
let tag_const1 = H.of_string "incr:const1"
let tag_gate = H.of_string "incr:gate"
let tag_cone = H.of_string "incr:cone"
let tag_fref = H.of_string "incr:cone-faulty-fanin"
let tag_fgood = H.of_string "incr:cone-good-fanin"
let tag_diff = H.of_string "incr:cone-diff"
let tag_params = H.of_string "incr:params"
let tag_no_budget = H.of_string "incr:unbounded"
let tag_ctrl = H.of_string "incr:ctrl"
let tag_stuck_net = H.of_string "incr:stuck-net"
let tag_stuck_pin = H.of_string "incr:stuck-pin"
let tag_trans = H.of_string "incr:transition"
let tag_bridge = H.of_string "incr:bridge"
let tag_internal = H.of_string "incr:internal"
let tag_internal_seq = H.of_string "incr:internal-seq"

(* Cells are hashed by function, not by name: drive-strength variants with
   equal truth tables produce identical verdicts. *)
let tt_hash (c : Cell.t) =
  H.mix (H.of_int (Tt.arity c.Cell.func)) (Tt.bits c.Cell.func)

type sweep = {
  nl : N.t;
  support : int64 array;  (* per net *)
  obs : bool array;       (* per net: PO or flip-flop D *)
  topo_pos : int array;   (* per gate; non-comb gates keep max_int *)
  cone_memo : (int list, int64) Hashtbl.t;  (* seed net ids -> cone hash *)
}

let netlist sw = sw.nl

let support_hash sw n = sw.support.(n)

let is_seq_gate nl g = (N.gate nl g).N.cell.Cell.is_seq

(* Forward pass.  Free sources (PIs, flip-flop Q nets) are labeled by net
   name so that equal-name sources of two netlists unify; a duplicate name
   gets an id-order occurrence index, which restores injectivity within one
   netlist (soundness) at the price of order-dependence for the duplicates
   (a cache-miss risk only). *)
let compute_sweep ~support_hint nl =
  let nn = N.num_nets nl in
  let support = Array.make nn 0L in
  let reused = ref 0 in
  let adopt n =
    match support_hint n with
    | Some h ->
        support.(n) <- h;
        incr reused;
        true
    | None -> false
  in
  let name_occ = Hashtbl.create 64 in
  let source_label name =
    let occ = try Hashtbl.find name_occ name with Not_found -> 0 in
    Hashtbl.replace name_occ name (occ + 1);
    H.mix (H.mix tag_source (H.of_string name)) (H.of_int occ)
  in
  for n = 0 to nn - 1 do
    let net = N.net nl n in
    match net.N.driver with
    | N.Pi _ ->
        let l = source_label net.N.net_name in
        if not (adopt n) then support.(n) <- l
    | N.Const b -> if not (adopt n) then support.(n) <- (if b then tag_const1 else tag_const0)
    | N.Gate_out g ->
        if is_seq_gate nl g then begin
          let l = source_label net.N.net_name in
          if not (adopt n) then support.(n) <- l
        end
  done;
  let order = N.topo_order nl in
  Array.iter
    (fun gid ->
      let g = N.gate nl gid in
      let out = g.N.fanout in
      if not (adopt out) then
        support.(out) <-
          H.combine
            (H.mix tag_gate (tt_hash g.N.cell))
            (Array.to_list (Array.map (fun fn -> support.(fn)) g.N.fanins)))
    order;
  let topo_pos = Array.make (N.num_gates nl) max_int in
  Array.iteri (fun i gid -> topo_pos.(gid) <- i) order;
  let obs = Array.make nn false in
  List.iter (fun (_, n) -> obs.(n) <- true) (N.observe_nets nl);
  ({ nl; support; obs; topo_pos; cone_memo = Hashtbl.create 256 }, !reused)

let sweep nl = fst (compute_sweep ~support_hint:(fun _ -> None) nl)

let sweep_reusing nl ~support_hint = compute_sweep ~support_hint nl

(* Canonical hash of the fault's combinational fanout region, mirroring
   [Encode.build_cone_and_observe]: cone nets are numbered in cone-topo
   order (seeds first), gates refer to faulty fanins by that number and to
   fault-free side inputs by their support hash, and every observable cone
   net contributes a clause-style unordered (index, support) pair.  The
   numbering makes physical sharing part of the hash: a reconvergent cone
   and duplicated logic get different signatures, as they must. *)
let cone_hash sw seeds =
  match Hashtbl.find_opt sw.cone_memo seeds with
  | Some h -> h
  | None ->
      let nl = sw.nl in
      let cone_idx = Hashtbl.create 32 in
      List.iteri (fun i n -> Hashtbl.replace cone_idx n i) seeds;
      (* Reachable comb gates through sink edges; a gate whose output is a
         seed net keeps the seed's (caller-constrained) faulty value and is
         not re-evaluated, exactly as in the encoder. *)
      let seen = Hashtbl.create 32 in
      let gates = ref [] in
      let rec visit_net n =
        List.iter
          (fun (g, _) ->
            if (not (Hashtbl.mem seen g)) && not (is_seq_gate nl g) then begin
              Hashtbl.replace seen g ();
              let out = (N.gate nl g).N.fanout in
              if not (Hashtbl.mem cone_idx out) then begin
                gates := g :: !gates;
                visit_net out
              end
            end)
          (N.net nl n).N.sinks
      in
      List.iter visit_net seeds;
      let order = List.sort (fun a b -> compare sw.topo_pos.(a) sw.topo_pos.(b)) !gates in
      let next = ref (List.length seeds) in
      let h = ref tag_cone in
      List.iter
        (fun gid ->
          let g = N.gate nl gid in
          Hashtbl.replace cone_idx g.N.fanout !next;
          incr next;
          h := H.mix !h (tt_hash g.N.cell);
          Array.iter
            (fun fn ->
              match Hashtbl.find_opt cone_idx fn with
              | Some i -> h := H.mix !h (H.mix tag_fref (H.of_int i))
              | None -> h := H.mix !h (H.mix tag_fgood sw.support.(fn)))
            g.N.fanins)
        order;
      let diffs = ref [] in
      Hashtbl.iter
        (fun n i ->
          if sw.obs.(n) then
            diffs := H.mix (H.mix tag_diff (H.of_int i)) sw.support.(n) :: !diffs)
        cone_idx;
      let h = H.mix !h (H.combine_unordered !diffs) in
      Hashtbl.replace sw.cone_memo seeds h;
      h

let forced = function F.Sa0 -> false | F.Sa1 -> true

let ctrl_sig sw n value = H.combine tag_ctrl [ H.of_bool value; sw.support.(n) ]

let stuck_sig sw loc pol =
  let nl = sw.nl in
  match loc with
  | F.On_pin (g, pin) when is_seq_gate nl g ->
      (* Scan capture: detection is controllability of D to the opposite
         value, so the signature is the controllability signature. *)
      ctrl_sig sw (N.gate nl g).N.fanins.(pin) (not (forced pol))
  | F.On_net n ->
      H.combine tag_stuck_net
        [ H.of_bool (forced pol); sw.support.(n); cone_hash sw [ n ] ]
  | F.On_pin (g, pin) ->
      let gg = N.gate nl g in
      H.combine tag_stuck_pin
        (H.of_bool (forced pol) :: H.of_int pin :: tt_hash gg.N.cell
         :: Array.to_list (Array.map (fun fn -> sw.support.(fn)) gg.N.fanins)
        @ [ cone_hash sw [ gg.N.fanout ] ])

let loc_net nl = function
  | F.On_net n -> n
  | F.On_pin (g, pin) -> (N.gate nl g).N.fanins.(pin)

let kind_sig sw (k : F.kind) =
  let nl = sw.nl in
  match k with
  | F.Stuck (loc, pol) -> stuck_sig sw loc pol
  | F.Transition (loc, tr) ->
      let init_value, pol =
        match tr with F.Slow_to_rise -> (false, F.Sa0) | F.Slow_to_fall -> (true, F.Sa1)
      in
      H.combine tag_trans [ ctrl_sig sw (loc_net nl loc) init_value; stuck_sig sw loc pol ]
  | F.Bridge (n1, n2, bk) ->
      H.combine tag_bridge
        [
          H.of_int (match bk with F.Wired_and -> 0 | F.Wired_or -> 1);
          sw.support.(n1);
          sw.support.(n2);
          cone_hash sw [ n1; n2 ];
        ]
  | F.Internal (g, entry_idx) ->
      let gg = N.gate nl g in
      let u = Udfm.for_cell gg.N.cell.Cell.name in
      let activation = (List.nth u.Udfm.entries entry_idx).Udfm.activation in
      if gg.N.cell.Cell.is_seq then
        (* Activation reads only bit 0 of each minterm (the D value); hash
           what is consumed, not the entry index. *)
        H.combine tag_internal_seq
          [ H.of_int_list (List.map (fun m -> m land 1) activation);
            sw.support.(gg.N.fanins.(0));
          ]
      else
        H.combine tag_internal
          (H.of_int_list activation :: sw.support.(gg.N.fanout)
           :: Array.to_list (Array.map (fun fn -> sw.support.(fn)) gg.N.fanins)
          @ [ cone_hash sw [ gg.N.fanout ] ])

let params_hash p =
  H.combine tag_params
    [
      H.of_int p.semantics_version;
      (match p.max_conflicts with None -> tag_no_budget | Some c -> H.of_int c);
    ]

let of_fault sw ~params (f : F.t) = H.mix (params_hash params) (kind_sig sw f.F.kind)

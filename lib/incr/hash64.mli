(** 64-bit structural hashing primitives for content-addressed signatures.

    Everything in [dfm_incr] is keyed by 64-bit hashes built from these
    mixers.  The scheme is a splitmix64-style avalanche ({!finalize}) over an
    order-dependent accumulator ({!mix}), plus an order-*independent*
    combiner ({!combine_unordered}) for multisets such as the sink lists of a
    net.  All functions are pure and allocation-free on the hot path.

    These are content hashes, not cryptographic ones: collisions are
    possible in principle (probability ~n²/2⁶⁵ for n distinct keys) and the
    verdict store accepts that risk, as any content-addressed cache does. *)

val finalize : int64 -> int64
(** The splitmix64 finalizer: a bijective avalanche over 64 bits. *)

val mix : int64 -> int64 -> int64
(** [mix acc v] folds [v] into the accumulator; order-dependent. *)

val of_int : int -> int64

val of_bool : bool -> int64

val of_string : string -> int64
(** FNV-1a over the bytes, then avalanched. *)

val of_int_list : int list -> int64
(** Order-dependent hash of an int list (length included). *)

val combine : int64 -> int64 list -> int64
(** [combine seed hs] folds [hs] left-to-right into [seed] with {!mix}. *)

val combine_unordered : int64 list -> int64
(** Multiset hash: invariant under permutation of the list, sensitive to
    multiplicity.  Used where a canonical order would otherwise have to be
    invented (e.g. the sinks of a net). *)

val to_hex : int64 -> string
(** 16-digit lowercase hex, for logs and debugging. *)

(** Content-addressed fault-verdict store: signature → verdict.

    Only semantic verdicts are storable: {!verdict} has no [Aborted] case,
    because an abort is a property of one solver run (budget, variable
    order), not of the fault — caching it could change a later campaign's
    outcome, which the correctness invariant forbids.

    Two tiers.  The in-memory tier is a bounded hash table with FIFO
    eviction.  The optional on-disk tier is a single append-only file:
    every {!add} appends one length-prefixed, checksummed record, and
    {!create} loads the file best-effort — a record with a bad checksum is
    dropped and loading continues; a bad length prefix or a truncated tail
    drops the rest of the file; neither ever raises.  When anything was
    dropped the file is compacted from the surviving records before new
    appends, so the log is always well-framed afterwards.

    Entries published by a certified campaign ([add ~certified:true]) carry
    a certificate mark on disk — a keyed digest over the signature and the
    verdict, recomputed and compared on load.  {!find_certified} returns
    only such validated entries; a corrupted mark drops the record at load
    time, so a damaged certified entry degrades to a recompute, never to a
    wrongly trusted verdict.

    Disk-tier failures (ENOSPC, EACCES, torn writes — chaos-tested through
    the [store.append] and [store.enospc] failpoints) degrade the store to
    memory-only with a single logged warning and the [dfm_store_degraded]
    gauge set; they never raise out of a campaign.

    The engine consults the store from its coordinating domain only (see
    [Atpg.classify]), never from workers.  Every public entry point is
    nonetheless serialized by an internal mutex: the serve daemon reads
    {!stats} from its network thread for status/metrics replies while the
    executor thread runs jobs, and those cross-thread reads must see
    consistent counters.  The mutex is uncontended in one-shot runs. *)

type verdict = Detected | Undetectable

type stats = {
  hits : int;
  misses : int;
  stores : int;        (** entries added (after dedup) *)
  evictions : int;
  disk_loaded : int;   (** records adopted from the disk tier at open *)
  disk_dropped : int;  (** corrupted/truncated records discarded at open *)
  degraded : bool;
      (** the disk tier was disabled by an I/O failure (ENOSPC, EACCES, a
          closed fd, …) — logged once, after which the store runs
          memory-only; lookups and stores never raise for disk reasons *)
}

type t

val create : ?capacity:int -> ?path:string -> ?log:(string -> unit) -> unit -> t
(** [capacity] bounds the in-memory tier (default 1_000_000 entries).
    [path] enables the disk tier; the file is created when absent and
    loaded best-effort when present.  An unreadable/unwritable path
    degrades to memory-only operation.  Recovery and degradation are
    reported through [log] (default: a [Dfm_obs.Log.warn] record, silent
    until a log sink is installed) and the {!stats} counters. *)

val find : t -> int64 -> verdict option
(** Counts a hit or a miss. *)

val find_certified : t -> int64 -> verdict option
(** Like {!find}, but an entry not published by a certified run (or whose
    on-disk certificate mark failed validation at load) is a miss. *)

val add : ?certified:bool -> t -> int64 -> verdict -> unit
(** Idempotent on an existing signature (no re-append, no counter bump) —
    except that [~certified:true] upgrades an existing uncertified entry
    with the same verdict (one re-append, counted as a store). *)

val mem_size : t -> int

val stats : t -> stats

val hit_rate : t -> float
(** hits / (hits + misses), 0.0 when no lookups happened. *)

val flush : t -> unit

val close : t -> unit
(** Flush and close the disk tier; the store stays usable memory-only. *)

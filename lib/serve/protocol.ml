module W = Wire

type job_kind = Analyze | Resynth | Lint

let kind_to_string = function
  | Analyze -> "analyze"
  | Resynth -> "resynth"
  | Lint -> "lint"

let kind_of_string = function
  | "analyze" -> Some Analyze
  | "resynth" -> Some Resynth
  | "lint" -> Some Lint
  | _ -> None

type limits = {
  jobs : int option;
  max_conflicts : int option;
  max_seconds : float option;
}

let no_limits = { jobs = None; max_conflicts = None; max_seconds = None }

type submit = {
  client : string;
  kind : job_kind;
  name : string;
  netlist : string;
  limits : limits;
  static_filter : bool;
  sat_mode : string option;
  q_max : int option;
  p1 : float option;
}

(* A telemetry subscription: the connection starts receiving droppable
   [Telemetry] frames — span batches (NDJSON of Chrome "X" events) when
   [spans], and periodic Prometheus text snapshots when [metrics], filtered
   to families whose name starts with any of [families] ([] = all) and
   paced at [interval_ms] (metrics only; spans ship as they drain). *)
type telemetry_sub = {
  t_spans : bool;
  t_metrics : bool;
  t_families : string list;
  t_interval_ms : int option;
}

type request =
  | Submit of submit
  | Status of string option
  | Await of string
  | Cancel of string
  | Drain
  | Metrics
  | Telemetry_sub of telemetry_sub
  | Dump
  | Ping

type job_state = Pending | Running | Done | Failed | Cancelled

let state_to_string = function
  | Pending -> "pending"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"
  | Cancelled -> "cancelled"

let state_of_string = function
  | "pending" -> Some Pending
  | "running" -> Some Running
  | "done" -> Some Done
  | "failed" -> Some Failed
  | "cancelled" -> Some Cancelled
  | _ -> None

type job_view = {
  jv_id : string;
  jv_client : string;
  jv_kind : job_kind;
  jv_name : string;
  jv_state : job_state;
  jv_detail : string;
}

type client_view = {
  cv_client : string;
  cv_jobs : int;
  cv_service_s : float;
  cv_cache_hits : int;
  cv_cache_misses : int;
}

type result_payload = {
  r_job : string;
  r_outcome : string;
  r_report : string;
  r_sat_queries : int;
  r_cache_hits : int;
  r_accepted : int;
  r_netlist : string option;
}

type response =
  | Accepted of { job : string; position : int }
  | Event of { job : string; stream : string; data : string }
  | Telemetry of { stream : string; data : string }
      (** Droppable, connection-scoped (not per-job): [stream] is ["spans"]
          (NDJSON of Chrome "X" events) or ["metrics"] (Prometheus text). *)
  | Result of result_payload
  | Status_report of { draining : bool; jobs : job_view list; clients : client_view list }
  | Metrics_text of string
  | Drained of { completed : int }
  | Dumped of { trace : string; text : string }
      (** Flight-recorder dump written; daemon-side artifact paths. *)
  | Ok_resp
  | Pong
  | Error_msg of string

(* ------------------------------------------------------------------ *)
(* Encoding                                                             *)
(* ------------------------------------------------------------------ *)

let opt_int k = function Some i -> [ (k, W.Int i) ] | None -> []

let opt_float k = function Some f -> [ (k, W.Float f) ] | None -> []

let opt_str k = function Some s -> [ (k, W.String s) ] | None -> []

let request_to_json r =
  let v =
    match r with
    | Submit s ->
        W.Obj
          ([
             ("op", W.String "submit");
             ("client", W.String s.client);
             ("kind", W.String (kind_to_string s.kind));
             ("name", W.String s.name);
             ("netlist", W.String s.netlist);
             ("static_filter", W.Bool s.static_filter);
           ]
          @ opt_int "jobs" s.limits.jobs
          @ opt_int "max_conflicts" s.limits.max_conflicts
          @ opt_float "max_seconds" s.limits.max_seconds
          @ opt_str "sat_mode" s.sat_mode
          @ opt_int "q_max" s.q_max
          @ opt_float "p1" s.p1)
    | Status j -> W.Obj (("op", W.String "status") :: opt_str "job" j)
    | Await j -> W.Obj [ ("op", W.String "await"); ("job", W.String j) ]
    | Cancel j -> W.Obj [ ("op", W.String "cancel"); ("job", W.String j) ]
    | Drain -> W.Obj [ ("op", W.String "drain") ]
    | Metrics -> W.Obj [ ("op", W.String "metrics") ]
    | Telemetry_sub t ->
        W.Obj
          ([
             ("op", W.String "telemetry_sub");
             ("spans", W.Bool t.t_spans);
             ("metrics", W.Bool t.t_metrics);
             ("families", W.List (List.map (fun f -> W.String f) t.t_families));
           ]
          @ opt_int "interval_ms" t.t_interval_ms)
    | Dump -> W.Obj [ ("op", W.String "dump") ]
    | Ping -> W.Obj [ ("op", W.String "ping") ]
  in
  W.to_string v

let job_view_to_wire jv =
  W.Obj
    [
      ("id", W.String jv.jv_id);
      ("client", W.String jv.jv_client);
      ("kind", W.String (kind_to_string jv.jv_kind));
      ("name", W.String jv.jv_name);
      ("state", W.String (state_to_string jv.jv_state));
      ("detail", W.String jv.jv_detail);
    ]

let client_view_to_wire cv =
  W.Obj
    [
      ("client", W.String cv.cv_client);
      ("jobs", W.Int cv.cv_jobs);
      ("service_s", W.Float cv.cv_service_s);
      ("cache_hits", W.Int cv.cv_cache_hits);
      ("cache_misses", W.Int cv.cv_cache_misses);
    ]

let response_to_json r =
  let v =
    match r with
    | Accepted { job; position } ->
        W.Obj
          [ ("op", W.String "accepted"); ("job", W.String job); ("position", W.Int position) ]
    | Event { job; stream; data } ->
        W.Obj
          [
            ("op", W.String "event");
            ("job", W.String job);
            ("stream", W.String stream);
            ("data", W.String data);
          ]
    | Result p ->
        W.Obj
          ([
             ("op", W.String "result");
             ("job", W.String p.r_job);
             ("outcome", W.String p.r_outcome);
             ("report", W.String p.r_report);
             ("sat_queries", W.Int p.r_sat_queries);
             ("cache_hits", W.Int p.r_cache_hits);
             ("accepted", W.Int p.r_accepted);
           ]
          @ opt_str "netlist" p.r_netlist)
    | Status_report { draining; jobs; clients } ->
        W.Obj
          [
            ("op", W.String "status");
            ("draining", W.Bool draining);
            ("jobs", W.List (List.map job_view_to_wire jobs));
            ("clients", W.List (List.map client_view_to_wire clients));
          ]
    | Telemetry { stream; data } ->
        W.Obj
          [
            ("op", W.String "telemetry");
            ("stream", W.String stream);
            ("data", W.String data);
          ]
    | Metrics_text text -> W.Obj [ ("op", W.String "metrics"); ("text", W.String text) ]
    | Drained { completed } ->
        W.Obj [ ("op", W.String "drained"); ("completed", W.Int completed) ]
    | Dumped { trace; text } ->
        W.Obj
          [ ("op", W.String "dumped"); ("trace", W.String trace); ("text", W.String text) ]
    | Ok_resp -> W.Obj [ ("op", W.String "ok") ]
    | Pong -> W.Obj [ ("op", W.String "pong") ]
    | Error_msg m -> W.Obj [ ("op", W.String "error"); ("message", W.String m) ]
  in
  W.to_string v

(* ------------------------------------------------------------------ *)
(* Decoding                                                             *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let req_str k v =
  match W.str_field k v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or mistyped field %S" k)

let req_int k v =
  match W.int_field k v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "missing or mistyped field %S" k)

let req_bool k v =
  match W.bool_field k v with
  | Some b -> Ok b
  | None -> Error (Printf.sprintf "missing or mistyped field %S" k)

(* Optional fields distinguish absent (None) from present-but-mistyped
   (error): a submit carrying jobs:"four" should be rejected, not have its
   worker cap silently dropped. *)
let opt_of k conv v =
  match W.member k v with
  | None | Some W.Null -> Ok None
  | Some x -> (
      match conv x with
      | Some y -> Ok (Some y)
      | None -> Error (Printf.sprintf "mistyped field %S" k))

let decode_submit v =
  let* client = req_str "client" v in
  let* kind_s = req_str "kind" v in
  let* kind =
    match kind_of_string kind_s with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "unknown job kind %S" kind_s)
  in
  let* name = req_str "name" v in
  let* netlist = req_str "netlist" v in
  let* static_filter = req_bool "static_filter" v in
  let* jobs = opt_of "jobs" W.to_int v in
  let* max_conflicts = opt_of "max_conflicts" W.to_int v in
  let* max_seconds = opt_of "max_seconds" W.to_float v in
  let* sat_mode = opt_of "sat_mode" W.to_str v in
  let* q_max = opt_of "q_max" W.to_int v in
  let* p1 = opt_of "p1" W.to_float v in
  if client = "" then Error "empty client name"
  else if name = "" then Error "empty job name"
  else
    Ok
      (Submit
         {
           client;
           kind;
           name;
           netlist;
           limits = { jobs; max_conflicts; max_seconds };
           static_filter;
           sat_mode;
           q_max;
           p1;
         })

let request_of_json s =
  let* v = W.parse s in
  let* op = req_str "op" v in
  match op with
  | "submit" -> decode_submit v
  | "status" ->
      let* job = opt_of "job" W.to_str v in
      Ok (Status job)
  | "await" ->
      let* job = req_str "job" v in
      Ok (Await job)
  | "cancel" ->
      let* job = req_str "job" v in
      Ok (Cancel job)
  | "drain" -> Ok Drain
  | "metrics" -> Ok Metrics
  | "telemetry_sub" ->
      let* t_spans = req_bool "spans" v in
      let* t_metrics = req_bool "metrics" v in
      let* t_families =
        match W.member "families" v with
        | None | Some W.Null -> Ok []
        | Some (W.List items) ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                match W.to_str item with
                | Some s -> Ok (s :: acc)
                | None -> Error "mistyped entry in \"families\"")
              (Ok []) items
            |> Result.map List.rev
        | Some _ -> Error "mistyped field \"families\""
      in
      let* t_interval_ms = opt_of "interval_ms" W.to_int v in
      Ok (Telemetry_sub { t_spans; t_metrics; t_families; t_interval_ms })
  | "dump" -> Ok Dump
  | "ping" -> Ok Ping
  | other -> Error (Printf.sprintf "unknown request op %S" other)

let decode_job_view v =
  let* jv_id = req_str "id" v in
  let* jv_client = req_str "client" v in
  let* kind_s = req_str "kind" v in
  let* jv_kind =
    match kind_of_string kind_s with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "unknown job kind %S" kind_s)
  in
  let* jv_name = req_str "name" v in
  let* state_s = req_str "state" v in
  let* jv_state =
    match state_of_string state_s with
    | Some st -> Ok st
    | None -> Error (Printf.sprintf "unknown job state %S" state_s)
  in
  let* jv_detail = req_str "detail" v in
  Ok { jv_id; jv_client; jv_kind; jv_name; jv_state; jv_detail }

let decode_client_view v =
  let* cv_client = req_str "client" v in
  let* cv_jobs = req_int "jobs" v in
  let* cv_service_s =
    match W.float_field "service_s" v with
    | Some f -> Ok f
    | None -> Error "missing or mistyped field \"service_s\""
  in
  let* cv_cache_hits = req_int "cache_hits" v in
  let* cv_cache_misses = req_int "cache_misses" v in
  Ok { cv_client; cv_jobs; cv_service_s; cv_cache_hits; cv_cache_misses }

let decode_list k decode v =
  match W.member k v with
  | Some (W.List items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* x = decode item in
          Ok (x :: acc))
        (Ok []) items
      |> Result.map List.rev
  | _ -> Error (Printf.sprintf "missing or mistyped field %S" k)

let response_of_json s =
  let* v = W.parse s in
  let* op = req_str "op" v in
  match op with
  | "accepted" ->
      let* job = req_str "job" v in
      let* position = req_int "position" v in
      Ok (Accepted { job; position })
  | "event" ->
      let* job = req_str "job" v in
      let* stream = req_str "stream" v in
      let* data = req_str "data" v in
      Ok (Event { job; stream; data })
  | "result" ->
      let* r_job = req_str "job" v in
      let* r_outcome = req_str "outcome" v in
      let* r_report = req_str "report" v in
      let* r_sat_queries = req_int "sat_queries" v in
      let* r_cache_hits = req_int "cache_hits" v in
      let* r_accepted = req_int "accepted" v in
      let* r_netlist = opt_of "netlist" W.to_str v in
      Ok (Result { r_job; r_outcome; r_report; r_sat_queries; r_cache_hits; r_accepted; r_netlist })
  | "status" ->
      let* draining = req_bool "draining" v in
      let* jobs = decode_list "jobs" decode_job_view v in
      let* clients = decode_list "clients" decode_client_view v in
      Ok (Status_report { draining; jobs; clients })
  | "telemetry" ->
      let* stream = req_str "stream" v in
      let* data = req_str "data" v in
      Ok (Telemetry { stream; data })
  | "metrics" ->
      let* text = req_str "text" v in
      Ok (Metrics_text text)
  | "drained" ->
      let* completed = req_int "completed" v in
      Ok (Drained { completed })
  | "dumped" ->
      let* trace = req_str "trace" v in
      let* text = req_str "text" v in
      Ok (Dumped { trace; text })
  | "ok" -> Ok Ok_resp
  | "pong" -> Ok Pong
  | "error" ->
      let* message = req_str "message" v in
      Ok (Error_msg message)
  | other -> Error (Printf.sprintf "unknown response op %S" other)
